package preduce

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// End-to-end through the public API: simulate P-Reduce and All-Reduce on a
// heterogeneous cluster and check the paper's headline property.
func TestPublicSimulate(t *testing.T) {
	build := func() SimConfig {
		ds, err := GaussianMixture(MixtureConfig{
			Classes: 4, Dim: 16, Examples: 2400, Separation: 3.2, Noise: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		train, test := ds.Split(0.8)
		prof := Profile{Name: "demo", WireParams: 1_000_000, BatchCompute: 0.1, BytesPerParam: 4}
		return SimConfig{
			N:         8,
			Spec:      Spec{Inputs: 16, Hidden: []int{16}, Classes: 4},
			Seed:      5,
			Train:     train,
			Test:      test,
			BatchSize: 16,
			Optimizer: OptimizerConfig{LR: 0.05, Momentum: 0.9},
			Profile:   prof,
			Hetero:    GPUSharing(8, 3, 0.1, 0.1, 5),
			Net:       DefaultNetwork(),
			Threshold: 0.9,
		}
	}

	pr, err := Simulate(build(), NewPReduce(PReduceConfig{P: 3}))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Simulate(build(), NewAllReduce())
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Converged || !ar.Converged {
		t.Fatalf("unconverged: pr=%+v ar=%+v", pr, ar)
	}
	if pr.PerUpdate() >= ar.PerUpdate() {
		t.Fatalf("P-Reduce per-update %v !< AR %v under HL=3", pr.PerUpdate(), ar.PerUpdate())
	}
}

func TestPublicStrategyConstructors(t *testing.T) {
	names := map[string]Strategy{
		"CON P=3": NewPReduce(PReduceConfig{P: 3}),
		"DYN P=5": NewPReduce(PReduceConfig{P: 5, Weighting: Dynamic}),
		"AR":      NewAllReduce(),
		"ER":      NewEagerReduce(),
		"AD":      NewADPSGD(),
		"PS BSP":  NewPSBSP(),
		"PS ASP":  NewPSASP(),
		"PS HETE": NewPSHETE(),
		"PS BK-2": NewPSBK(2),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestPublicSpectral(t *testing.T) {
	d := GroupDist{
		N:      3,
		Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Probs:  []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	m, err := MeanW(d)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := Rho(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-0.5) > 1e-9 {
		t.Fatalf("rho=%v want 0.5", rho)
	}
	if RhoBar(0) != 0 {
		t.Fatal("RhoBar(0)")
	}
	if !LearningRateFeasible(1e-6, 1, 8, 3, rho) {
		t.Fatal("tiny gamma should be feasible")
	}
	if got := UniformGroups(4, 2); len(got.Groups) != 6 {
		t.Fatalf("UniformGroups(4,2): %d groups", len(got.Groups))
	}
}

func TestPublicLive(t *testing.T) {
	ds, err := GaussianMixture(MixtureConfig{
		Classes: 3, Dim: 10, Examples: 1200, Separation: 3.5, Noise: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	rep, err := RunLive(LiveConfig{
		N: 4, P: 2,
		Spec:      Spec{Inputs: 10, Hidden: []int{12}, Classes: 3},
		Seed:      9,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: OptimizerConfig{LR: 0.05, Momentum: 0.9},
		Iters:     80,
	}, NewMemWorld(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("live accuracy %.3f", rep.FinalAccuracy)
	}
}

func TestPublicProfiles(t *testing.T) {
	for _, p := range []Profile{ResNet18, ResNet34, VGG16, VGG19, DenseNet121} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if PaperOptimizer().LR != 0.1 {
		t.Fatal("paper optimizer LR")
	}
}

func TestPublicCheckpoint(t *testing.T) {
	m := Spec{Inputs: 4, Hidden: []int{5}, Classes: 3}.Build(1)
	opt := NewSGD(OptimizerConfig{LR: 0.1, Momentum: 0.9}, m.NumParams())
	// Take one step so there is real optimizer state.
	g := make([]float64, m.NumParams())
	for i := range g {
		g[i] = 0.01 * float64(i%7)
	}
	opt.Update(m.Params(), g, 1)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, opt, 42); err != nil {
		t.Fatal(err)
	}
	m2 := Spec{Inputs: 4, Hidden: []int{5}, Classes: 3}.Build(2)
	opt2 := NewSGD(OptimizerConfig{LR: 0.1, Momentum: 0.9}, m2.NumParams())
	ck, err := LoadCheckpoint(&buf, m2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Iter != 42 {
		t.Fatalf("iter: %d", ck.Iter)
	}
	for i, v := range m.Params() {
		if m2.Params()[i] != v {
			t.Fatal("params not restored")
		}
	}
	// Both optimizers continue identically.
	p1, p2 := m.Params().Clone(), m2.Params().Clone()
	opt.Update(p1, g, 1)
	opt2.Update(p2, g, 1)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored optimizer diverged")
		}
	}
}

func TestPublicCSVAndReplay(t *testing.T) {
	var buf bytes.Buffer
	r := &Result{Strategy: "AR", Curve: []Point{{Time: 1, Updates: 5, Accuracy: 0.4}}}
	if err := WriteCurvesCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummaryCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AR") {
		t.Fatal("CSV missing data")
	}
	h, err := ReplayTrace(strings.NewReader("0,0.5\n1,0.7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.ComputeTime(1, 0) != 0.7 {
		t.Fatal("replay trace wrong")
	}
}
