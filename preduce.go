// Package preduce is a from-scratch Go implementation of partial reduce
// (P-Reduce), the heterogeneity-aware synchronization primitive for
// distributed data-parallel SGD from "Heterogeneity-Aware Distributed
// Machine Learning Training via Partial Reduce" (SIGMOD 2021).
//
// Instead of an all-reduce barrier over all N workers, each worker sends a
// tiny ready signal to a controller after every local mini-batch step; as
// soon as P signals queue up, the controller forms a temporary group whose
// members average their models — with constant 1/P weights or dynamic
// staleness-aware EMA weights — and immediately continue. Groups overlap in
// time, no worker waits for a straggler, and a sync-graph group filter
// prevents isolated sub-clusters.
//
// The package exposes three layers:
//
//   - A simulation runtime (Simulate): N simulated workers with real model
//     replicas and real SGD on a deterministic discrete-event cluster, with
//     per-worker compute-time heterogeneity models and an α–β communication
//     cost model. This is how the paper's evaluation is reproduced; see the
//     Experiments index in DESIGN.md.
//   - A live runtime (RunLive): goroutine workers, a controller service, and
//     genuine ring all-reduce collectives over in-process channels or TCP.
//   - Analysis tools: the expected synchronization matrix E[W], its spectral
//     bound ρ, and Theorem 1's learning-rate condition.
//
// See examples/ for runnable programs and cmd/preduce-bench for the full
// paper-evaluation harness.
package preduce

import (
	"partialreduce/internal/baselines"
	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/core"
	"partialreduce/internal/data"
	"partialreduce/internal/hetero"
	"partialreduce/internal/live"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
	"partialreduce/internal/transport"
)

// Core types, re-exported from the implementation packages.
type (
	// SimConfig describes a simulated training run: workers, model, data,
	// optimizer, heterogeneity and network models, and stop conditions.
	SimConfig = cluster.Config
	// Strategy is a training algorithm over the simulated cluster.
	Strategy = cluster.Strategy
	// Result is a run's metrics: run time, #updates, per-update time,
	// accuracy curve.
	Result = metrics.Result
	// Point is one (time, updates, accuracy) sample of a run's curve.
	Point = metrics.Point

	// PReduceConfig configures the P-Reduce strategy.
	PReduceConfig = core.PReduceConfig
	// Weighting selects constant or dynamic (staleness-aware) aggregation.
	Weighting = controller.Weighting
	// ApproxRule selects how dynamic weighting fills missing EMA slots.
	ApproxRule = controller.ApproxRule
	// ControllerConfig configures a standalone controller.
	ControllerConfig = controller.Config
	// Group is a controller-formed partial-reduce group.
	Group = controller.Group

	// Dataset is a labelled classification dataset.
	Dataset = data.Dataset
	// MixtureConfig describes a synthetic Gaussian-mixture dataset.
	MixtureConfig = data.MixtureConfig
	// Model is a trainable classifier over flat parameters.
	Model = model.Model
	// Spec describes a proxy model architecture.
	Spec = model.Spec
	// ConvSpec describes the convolutional proxy model (1-D conv + ReLU +
	// global average pooling + softmax head).
	ConvSpec = model.ConvSpec
	// ModelBuilder constructs a model from a seed (Spec and ConvSpec both
	// qualify).
	ModelBuilder = model.Builder
	// Profile carries a paper CNN's parameter count and per-batch compute.
	Profile = model.Profile
	// OptimizerConfig is momentum-SGD hyperparameters.
	OptimizerConfig = optim.Config
	// HeteroModel samples per-worker batch durations.
	HeteroModel = hetero.Model
	// NetworkParams is the α–β communication cost model.
	NetworkParams = netmodel.Params
	// CrashEvent is one scheduled fail-stop (worker, time, optional rejoin)
	// in a simulated run.
	CrashEvent = hetero.CrashEvent
	// CrashSchedule is a deterministic fail-stop schedule for
	// SimConfig.Crashes; P-Reduce absorbs the losses, All-Reduce halts (§4).
	CrashSchedule = hetero.CrashSchedule

	// LiveConfig describes a live (goroutine + collective) run.
	LiveConfig = live.Config
	// LiveReport summarizes a live run.
	LiveReport = live.Report
	// Transport is a live message-passing endpoint.
	Transport = transport.Transport
)

// Aggregation weightings and approximation rules.
const (
	// Constant is the plain 1/P model average (§3.1).
	Constant = controller.Constant
	// Dynamic is the staleness-aware EMA weighting (§3.3).
	Dynamic = controller.Dynamic
	// InitialModel assigns missing EMA slots to the shared initial model —
	// the paper's conservative rule.
	InitialModel = controller.InitialModel
	// ClosestIteration assigns missing EMA slots to the nearest stored
	// version — the paper's alternative, and this library's recommended
	// default (see DESIGN.md).
	ClosestIteration = controller.ClosestIteration
)

// Strategy constructors.

// NewPReduce returns the partial-reduce strategy (the paper's contribution).
func NewPReduce(cfg PReduceConfig) Strategy { return core.NewPReduce(cfg) }

// NewAllReduce returns the bulk-synchronous ring all-reduce baseline.
func NewAllReduce() Strategy { return baselines.NewAllReduce() }

// NewEagerReduce returns the Eager-Reduce partial-collective baseline.
func NewEagerReduce() Strategy { return baselines.NewEagerReduce() }

// NewADPSGD returns the asynchronous decentralized SGD baseline.
func NewADPSGD() Strategy { return baselines.NewADPSGD() }

// NewPSBSP returns the bulk-synchronous parameter-server baseline.
func NewPSBSP() Strategy { return baselines.NewPSBSP() }

// NewPSASP returns the asynchronous parameter-server baseline.
func NewPSASP() Strategy { return baselines.NewPSASP() }

// NewPSHETE returns the staleness-aware asynchronous PS baseline.
func NewPSHETE() Strategy { return baselines.NewPSHETE() }

// NewPSBK returns synchronous SGD with b backup workers.
func NewPSBK(b int) Strategy { return baselines.NewPSBK(b) }

// Simulate runs strategy on a fresh simulated cluster built from cfg and
// returns its metrics.
func Simulate(cfg SimConfig, strategy Strategy) (*Result, error) {
	c, err := cluster.New(cfg, strategy.Name())
	if err != nil {
		return nil, err
	}
	return strategy.Run(c)
}

// RunLive trains with real goroutine workers and collectives over the given
// transport world (one endpoint per worker).
func RunLive(cfg LiveConfig, world []Transport) (*LiveReport, error) {
	return live.Run(cfg, world)
}

// NewMemWorld returns an n-worker in-process transport world.
func NewMemWorld(n int) []Transport {
	eps := transport.NewMem(n)
	world := make([]Transport, n)
	for i, e := range eps {
		world[i] = e
	}
	return world
}

// NewTCP joins a TCP transport world as the given rank; addrs lists every
// rank's listen address. It blocks until the full mesh connects.
func NewTCP(rank int, addrs []string) (Transport, error) {
	return transport.NewTCP(rank, addrs)
}

// Heterogeneity model constructors.

// Homogeneous gives every worker the same expected batch time.
func Homogeneous(n int, base, jitter float64, seed int64) HeteroModel {
	return hetero.NewHomogeneous(n, base, jitter, seed)
}

// GPUSharing packs hl workers onto one accelerator (the paper's synthetic
// heterogeneous environment, §5.2).
func GPUSharing(n, hl int, base, jitter float64, seed int64) HeteroModel {
	return hetero.NewGPUSharing(n, hl, base, jitter, seed)
}

// ProductionTrace gives each worker a regime-switching slowdown trace (the
// paper's shared production cluster, §5.3).
func ProductionTrace(n int, base float64, seed int64) HeteroModel {
	return hetero.NewTrace(n, base, seed)
}

// DefaultNetwork returns the calibrated α–β network parameters.
func DefaultNetwork() NetworkParams { return netmodel.Default() }

// RandomCrashes draws a seeded fail-stop schedule: each worker (except rank
// 0) independently crashes with probability rate at a time uniform in
// (0, horizon). The draw is a pure function of its arguments, so the same
// schedule replays on every run.
func RandomCrashes(n int, rate, horizon float64, seed int64) CrashSchedule {
	return hetero.RandomCrashes(n, rate, horizon, seed)
}

// GaussianMixture generates a synthetic classification dataset.
func GaussianMixture(cfg MixtureConfig) (*Dataset, error) { return data.GaussianMixture(cfg) }

// Paper CNN profiles (true parameter counts, calibrated compute).
var (
	ResNet18    = model.ResNet18
	ResNet34    = model.ResNet34
	VGG16       = model.VGG16
	VGG19       = model.VGG19
	DenseNet121 = model.DenseNet121
)

// PaperOptimizer returns the paper's SGD hyperparameters (lr 0.1, momentum
// 0.9, weight decay 1e-4).
func PaperOptimizer() OptimizerConfig { return optim.Paper() }

// RunLiveAllReduce trains the live All-Reduce baseline on the given world —
// the synchronous comparison point for RunLive.
func RunLiveAllReduce(cfg LiveConfig, world []Transport) (*LiveReport, error) {
	return live.RunAllReduce(cfg, world)
}

// Topology adds per-worker link speeds and geo-distributed zones to the
// simulated fabric (the paper's communication heterogeneity, Case 1).
type Topology = netmodel.Topology

// GeoTopology returns a two-zone topology splitting n workers evenly, with
// crossLat seconds of latency and a crossBW bytes/second cap between zones.
func GeoTopology(n int, crossLat, crossBW float64) *Topology {
	return netmodel.GeoDistributed(n, crossLat, crossBW)
}

// Sampler draws mini-batches from a dataset with its own RNG stream.
type Sampler = data.Sampler

// Batch is a mini-batch of examples.
type Batch = data.Batch

// NewSampler returns a sampler over ds seeded with seed.
func NewSampler(ds *Dataset, seed int64) *Sampler { return data.NewSampler(ds, seed) }

// Accuracy returns the fraction of ds classified correctly by m.
func Accuracy(m Model, ds *Dataset) float64 { return model.Accuracy(m, ds) }

// NewDPSGD returns the synchronous decentralized (ring gossip) baseline.
func NewDPSGD() Strategy { return baselines.NewDPSGD() }
