// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding experiment once per iteration
// in Quick mode and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the full evaluation. The cmd
// preduce-bench tool runs the same experiments at full scale and prints the
// paper-layout tables; EXPERIMENTS.md records paper-vs-measured numbers.
package preduce

import (
	"io"
	"strings"
	"testing"

	"partialreduce/internal/experiments"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(1 + i), Quick: true}
}

// BenchmarkTable1EndToEnd regenerates Table 1: the full CIFAR-10 grid
// (3 models × HL levels × 11 strategies). Reported metrics are the ResNet-34
// HL=3 headline: P-Reduce's total-runtime speedup over All-Reduce and the
// two per-update times.
func BenchmarkTable1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		blk := res.Blocks[0]
		ar := blk.Cells[3]["AR"]
		dyn := blk.Cells[3]["DYN P=3"]
		if ar != nil && dyn != nil && dyn.RunTime > 0 {
			b.ReportMetric(ar.RunTime/dyn.RunTime, "speedup-vs-AR")
			b.ReportMetric(ar.PerUpdate(), "AR-per-update-s")
			b.ReportMetric(dyn.PerUpdate(), "DYN-per-update-s")
		}
		res.Format(io.Discard)
	}
}

// BenchmarkFig4Spectral regenerates Figure 4: analytic and simulated
// spectral bounds for the homogeneous (ρ=0.5) and heterogeneous (ρ=0.625)
// 3-worker scenarios.
func BenchmarkFig4Spectral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].EmpiricalRho, "rho-homogeneous")
		b.ReportMetric(res.Rows[1].EmpiricalRho, "rho-heterogeneous")
	}
}

// BenchmarkFig7aConvergence regenerates Figure 7(a): VGG-19/CIFAR-10
// convergence curves at HL=3 for six methods.
func BenchmarkFig7aConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Fig7a(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if r := cs.Final["DYN P=3"]; r != nil {
			b.ReportMetric(r.RunTime, "DYN-runtime-s")
			b.ReportMetric(boolMetric(r.Converged), "DYN-converged")
		}
		cs.Format(io.Discard)
	}
}

// BenchmarkFig7bConvergence regenerates Figure 7(b): ResNet-34/CIFAR-100 on
// the production environment, N=16.
func BenchmarkFig7bConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Fig7b(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		ar, dyn := cs.Final["AR"], cs.Final["DYN P=4"]
		if ar != nil && dyn != nil && dyn.RunTime > 0 {
			b.ReportMetric(ar.RunTime/dyn.RunTime, "speedup-vs-AR")
		}
		cs.Format(io.Discard)
	}
}

// BenchmarkFig8PSweep regenerates Figure 8: per-update time, #updates, and
// total run time across P ∈ [2,8] for constant P-Reduce on VGG-19.
func BenchmarkFig8PSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.PerUpdate/first.PerUpdate, "per-update-growth-P2-P8")
		b.ReportMetric(float64(first.Updates)/float64(last.Updates), "updates-shrink-P2-P8")
		res.Format(io.Discard)
	}
}

// BenchmarkFig9Production regenerates Figure 9: the production-cluster
// comparison whose paper headline is ≈16.6× per-update and ≈2× total
// speedup of partial reduce over All-Reduce.
func BenchmarkFig9Production(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.AR != nil && res.DYN != nil && res.DYN.PerUpdate() > 0 {
			b.ReportMetric(res.AR.PerUpdate()/res.DYN.PerUpdate(), "per-update-speedup")
			b.ReportMetric(res.AR.RunTime/res.DYN.RunTime, "total-speedup")
		}
		res.Format(io.Discard)
	}
}

// BenchmarkFig10ImageNet regenerates Figure 10: ImageNet convergence curves
// for ResNet-18 and VGG-16 at N=32 on the production environment.
func BenchmarkFig10ImageNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sets, err := experiments.Fig10(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, cs := range sets {
			if ar, con := cs.Final["AR"], cs.Final["CON P=4"]; ar != nil && con != nil && con.RunTime > 0 {
				model := strings.Fields(cs.Title)[2] // "Fig 10: <model> on ..."
				b.ReportMetric(ar.RunTime/con.RunTime, "speedup-"+model)
			}
			cs.Format(io.Discard)
		}
	}
}

// BenchmarkFig11Scalability regenerates Figure 11: run-time speedup over one
// worker at N ∈ {1,4,8,16,32} for AR, PS BK(N/4), and P-Reduce (P=4).
func BenchmarkFig11Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig11(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Speedups["CON P=4"], "preduce-speedup-N32-"+res.Model)
			b.ReportMetric(last.Speedups["AR"], "AR-speedup-N32-"+res.Model)
			res.Format(io.Discard)
		}
	}
}

// BenchmarkAblationWeights compares constant weights against both dynamic
// approximation rules (DESIGN.md's weighting ablation).
func BenchmarkAblationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWeights(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Constant.Updates), "constant-updates")
		b.ReportMetric(float64(res.DynamicClosest.Updates), "dyn-closest-updates")
		b.ReportMetric(float64(res.DynamicInitial.Updates), "dyn-initial-updates")
	}
}

// BenchmarkAblationGroupFilter measures group-frozen avoidance on the
// adversarial two-clique arrival pattern (DESIGN.md's filter ablation).
func BenchmarkAblationGroupFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationGroupFilter(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithFilter, "worst-replica-with-filter")
		b.ReportMetric(res.WithoutFilter, "worst-replica-without")
		b.ReportMetric(float64(res.Interventions), "interventions")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkGeoDistributed measures the geo-distributed extension (paper
// Case 1): two data centers, slow inter-zone links, zone-affinity grouping.
func BenchmarkGeoDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.GeoStudy(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.AR != nil && res.Affinity != nil && res.Affinity.RunTime > 0 {
			b.ReportMetric(res.AR.RunTime/res.Affinity.RunTime, "affinity-speedup-vs-AR")
			b.ReportMetric(res.CON.RunTime/res.Affinity.RunTime, "affinity-speedup-vs-CON")
		}
	}
}

// BenchmarkAblationOverlap measures communication/computation overlapping
// (the paper's future-work pipelining) on a communication-bound profile.
func BenchmarkAblationOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		blocking, overlapped, err := experiments.AblationOverlap(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(blocking.PerUpdate(), "blocking-per-update-s")
		b.ReportMetric(overlapped.PerUpdate(), "overlap-per-update-s")
	}
}
