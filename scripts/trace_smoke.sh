#!/bin/sh
# trace-smoke: end-to-end check of the observability stack (make trace-smoke).
#
# 1. A seeded simulator run exports a virtual-clock Chrome trace.
# 2. A seeded three-rank live run exports wall-clock traces while serving
#    the telemetry endpoint; /metrics is scraped mid-run.
# 3. preduce-tracecheck validates every exported trace against the Chrome
#    trace-event schema, and the scraped metrics are grepped for the
#    instruments the endpoint must expose.
#
# Everything is stdlib + curl; the run takes a few seconds.
set -eu

GO=${GO:-go}
PORT=${TRACE_SMOKE_PORT:-19471}
BASE=${TRACE_SMOKE_BASE:-19461}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/trace-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

echo "trace-smoke: building binaries"
$GO build -o "$DIR/preduce-bench" ./cmd/preduce-bench
$GO build -o "$DIR/preduce-live" ./cmd/preduce-live
$GO build -o "$DIR/preduce-tracecheck" ./cmd/preduce-tracecheck

echo "trace-smoke: simulator trace"
"$DIR/preduce-bench" -trace "$DIR/sim.json" -trace-buf 32768 -quick -seed 1 > "$DIR/sim.out"
cat "$DIR/sim.out"

echo "trace-smoke: live run with telemetry on 127.0.0.1:$PORT"
ADDRS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1)),127.0.0.1:$((BASE+2))"
"$DIR/preduce-live" -rank 1 -addrs "$ADDRS" -iters 8000 -seed 1 -trace "$DIR/live.json" 2> "$DIR/r1.log" &
R1=$!
"$DIR/preduce-live" -rank 2 -addrs "$ADDRS" -iters 8000 -seed 1 -trace "$DIR/live.json" 2> "$DIR/r2.log" &
R2=$!
"$DIR/preduce-live" -rank 0 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -trace "$DIR/live.json" -telemetry-addr "127.0.0.1:$PORT" 2> "$DIR/r0.log" &
R0=$!

# Scrape /metrics while the run is in flight (retry while the mesh forms).
METRICS="$DIR/metrics.txt"
ok=0
for i in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$PORT/metrics" > "$METRICS" 2>/dev/null \
       && grep -q "preduce_groups_formed_total" "$METRICS"; then
        ok=1
        break
    fi
    sleep 0.1
done
curl -sf -o /dev/null "http://127.0.0.1:$PORT/debug/pprof/" || pprof_down=1

wait $R0 $R1 $R2
cat "$DIR/r0.log"

[ "$ok" = 1 ] || { echo "trace-smoke: FAILED to scrape /metrics mid-run"; exit 1; }
[ "${pprof_down:-0}" = 0 ] || { echo "trace-smoke: FAILED: /debug/pprof/ unreachable"; exit 1; }

echo "trace-smoke: /metrics instruments"
for metric in preduce_staleness_count preduce_queue_depth \
              preduce_barrier_wait_seconds_total preduce_sync_components \
              preduce_comm_ops_total; do
    grep -q "$metric" "$METRICS" || { echo "trace-smoke: FAILED: $metric missing from /metrics"; exit 1; }
    grep -m1 "^$metric" "$METRICS" || true
done

echo "trace-smoke: validating traces"
"$DIR/preduce-tracecheck" "$DIR/sim.json" \
    "$DIR/live.r0.json" "$DIR/live.r1.json" "$DIR/live.r2.json"

echo "trace-smoke: OK"
