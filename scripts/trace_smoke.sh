#!/bin/sh
# trace-smoke: end-to-end check of the observability stack (make trace-smoke).
#
# 1. A seeded simulator run exports a virtual-clock Chrome trace.
# 2. A seeded three-rank live run (with an injected straggler and the live
#    scoreboard enabled) exports per-rank JSONL traces while serving the
#    telemetry endpoint; /metrics is scraped mid-run.
# 3. preduce-tracecheck validates the Chrome traces against the trace-event
#    schema and the JSONL traces as a merged multi-rank timeline (clock
#    offsets, monotonicity, span integrity).
# 4. preduce-analyze merges the three rank traces, renders the blame report,
#    and re-exports a merged Chrome trace that is schema-checked too.
#
# Everything is stdlib + curl; the run takes a few seconds.
set -eu

GO=${GO:-go}
PORT=${TRACE_SMOKE_PORT:-19471}
BASE=${TRACE_SMOKE_BASE:-19461}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/trace-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

echo "trace-smoke: building binaries"
$GO build -o "$DIR/preduce-bench" ./cmd/preduce-bench
$GO build -o "$DIR/preduce-live" ./cmd/preduce-live
$GO build -o "$DIR/preduce-tracecheck" ./cmd/preduce-tracecheck
$GO build -o "$DIR/preduce-analyze" ./cmd/preduce-analyze

echo "trace-smoke: simulator trace"
"$DIR/preduce-bench" -trace "$DIR/sim.json" -trace-buf 32768 -quick -seed 1 > "$DIR/sim.out"
cat "$DIR/sim.out"

echo "trace-smoke: live run with telemetry on 127.0.0.1:$PORT"
ADDRS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1)),127.0.0.1:$((BASE+2))"
"$DIR/preduce-live" -rank 1 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -trace "$DIR/live.jsonl" -straggle 2:200us 2> "$DIR/r1.log" &
R1=$!
"$DIR/preduce-live" -rank 2 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -trace "$DIR/live.jsonl" -straggle 2:200us 2> "$DIR/r2.log" &
R2=$!
"$DIR/preduce-live" -rank 0 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -trace "$DIR/live.jsonl" -straggle 2:200us -scoreboard 2s \
    -telemetry-addr "127.0.0.1:$PORT" 2> "$DIR/r0.log" &
R0=$!

# Scrape /metrics while the run is in flight (retry while the mesh forms).
METRICS="$DIR/metrics.txt"
ok=0
for i in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$PORT/metrics" > "$METRICS" 2>/dev/null \
       && grep -q "preduce_groups_formed_total" "$METRICS"; then
        ok=1
        break
    fi
    sleep 0.1
done
curl -sf -o /dev/null "http://127.0.0.1:$PORT/debug/pprof/" || pprof_down=1

wait $R0 $R1 $R2
cat "$DIR/r0.log"

[ "$ok" = 1 ] || { echo "trace-smoke: FAILED to scrape /metrics mid-run"; exit 1; }
[ "${pprof_down:-0}" = 0 ] || { echo "trace-smoke: FAILED: /debug/pprof/ unreachable"; exit 1; }

echo "trace-smoke: /metrics instruments"
for metric in preduce_staleness_count preduce_queue_depth \
              preduce_barrier_wait_seconds_total preduce_sync_components \
              preduce_comm_ops_total preduce_worker_wait_seconds_total \
              preduce_worker_blame_seconds_total preduce_worker_blame_recent; do
    grep -q "$metric" "$METRICS" || { echo "trace-smoke: FAILED: $metric missing from /metrics"; exit 1; }
    grep -m1 "^$metric" "$METRICS" || true
done

echo "trace-smoke: scoreboard dump"
grep -q "straggler scoreboard" "$DIR/r0.log" \
    || { echo "trace-smoke: FAILED: no scoreboard dump on rank 0 stderr"; exit 1; }

echo "trace-smoke: validating traces (sim Chrome + merged live JSONL)"
"$DIR/preduce-tracecheck" "$DIR/sim.json" \
    "$DIR/live.r0.jsonl" "$DIR/live.r1.jsonl" "$DIR/live.r2.jsonl"

echo "trace-smoke: analyzing merged live traces"
"$DIR/preduce-analyze" -validate -top 3 -chrome "$DIR/merged.json" \
    "$DIR/live.r0.jsonl" "$DIR/live.r1.jsonl" "$DIR/live.r2.jsonl" > "$DIR/report.txt"
grep -q "Blame ledger" "$DIR/report.txt" \
    || { echo "trace-smoke: FAILED: analyzer report missing blame ledger"; cat "$DIR/report.txt"; exit 1; }
head -20 "$DIR/report.txt"
"$DIR/preduce-tracecheck" "$DIR/merged.json"

echo "trace-smoke: OK"
