#!/bin/sh
# benchgate: compare a fresh data-plane benchmark run against the committed
# BENCH_dataplane.json baseline and fail on a throughput regression larger
# than the tolerance or on ANY alloc-count increase (the zero-alloc data
# plane is a hard invariant; ns/op wobbles with the machine, allocs don't).
#
#   make benchgate                 # full run (default -benchtime 1s, 15% tolerance)
#   BENCH_QUICK=1 make benchgate   # fast ci mode (-benchtime 100ms, 60% tolerance)
#
# Short benchtimes are noisy (100ms runs wobble tens of percent on shared
# machines), so quick mode widens the throughput bound and acts chiefly as
# an alloc-increase and gross-slowdown smoke gate; the full run enforces
# the real 15% bound. Override either mode with BENCH_GATE_TOL=<percent>. The baseline
# refreshes via `make bench` (which rewrites BENCH_dataplane.json) — regenerate
# it on the machine that enforces the gate, since ns/op is machine-relative.
set -eu
cd "$(dirname "$0")/.."

GO=${GO:-go}
BASELINE=${BENCH_BASELINE:-BENCH_dataplane.json}
TOL=${BENCH_GATE_TOL:-}
if [ "${BENCH_QUICK:-0}" = "1" ]; then
    BT=${BENCHTIME:-100ms}
    [ -n "$TOL" ] || TOL=60
else
    BT=${BENCHTIME:-1s}
    [ -n "$TOL" ] || TOL=15
fi

if [ ! -f "$BASELINE" ]; then
    echo "benchgate: baseline $BASELINE missing (run 'make bench' and commit it)" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# -p 1 runs the three test binaries sequentially: concurrent binaries
# would contend for CPU (inflating ns/op) and interleave their output
# events in the json stream.
echo "benchgate: fresh run (-benchtime $BT, tolerance ${TOL}%) ..."
$GO test -p 1 ./internal/collective/ ./internal/transport/ ./internal/tensor/ \
    -run '^$' -bench 'BenchmarkAllReduceSum$|BenchmarkAllReduceSumTraced$|BenchmarkRingSegmented|BenchmarkEncodeFrame|BenchmarkSendRecvInto|BenchmarkAddScaled' \
    -benchmem -benchtime "$BT" -json > "$tmp/fresh.json"

# Pull "name ns_per_op allocs_per_op" triples out of a test2json stream.
# test2json usually splits a benchmark line across Output events — the name
# on one event (with a trailing tab), the measurements on the next — but can
# also deliver both on a single event. Events from different packages can
# interleave, so the pending name is tracked per package.
extract() {
    sed -nE 's/^.*"Package":"([^"]*)".*"Output":"([^"]*)".*$/\1\t\2/p' "$1" \
    | sed -e 's/\\t/ /g' -e 's/\\n//g' \
    | awk -F'\t' '
        $2 ~ /^Benchmark/ {
            split($2, f, " "); name[$1] = f[1]; sub(/-[0-9]+$/, "", name[$1])
        }
        $2 ~ /ns\/op/ {
            n = split($2, f, " ")
            ns = ""; allocs = ""
            for (i = 2; i <= n; i++) {
                if (f[i] == "ns/op")     ns = f[i-1]
                if (f[i] == "allocs/op") allocs = f[i-1]
            }
            if (name[$1] != "" && ns != "") print name[$1], ns, (allocs == "" ? 0 : allocs)
            name[$1] = ""
        }'
}

extract "$BASELINE" | sort > "$tmp/base"
extract "$tmp/fresh.json" | sort > "$tmp/new"

if [ ! -s "$tmp/base" ]; then
    echo "benchgate: no benchmark results parsed from $BASELINE" >&2
    exit 1
fi

awk -v tol="$TOL" '
    NR == FNR { base_ns[$1] = $2; base_al[$1] = $3; seen[$1] = 0; next }
    {
        if (!($1 in base_ns)) {
            printf "benchgate: note %-40s no baseline (new benchmark)\n", $1
            next
        }
        seen[$1] = 1
        limit = base_ns[$1] * (1 + tol / 100)
        if ($2 + 0 > limit) {
            printf "benchgate: FAIL %-40s %s ns/op vs baseline %s (>+%s%%)\n", $1, $2, base_ns[$1], tol
            bad = 1
        } else {
            printf "benchgate: ok   %-40s %s ns/op (baseline %s)\n", $1, $2, base_ns[$1]
        }
        if ($3 + 0 > base_al[$1] + 0) {
            printf "benchgate: FAIL %-40s %s allocs/op vs baseline %s (any increase fails)\n", $1, $3, base_al[$1]
            bad = 1
        }
    }
    END {
        for (n in seen) if (!seen[n]) {
            printf "benchgate: FAIL %-40s present in baseline but missing from the fresh run\n", n
            bad = 1
        }
        exit bad
    }
' "$tmp/base" "$tmp/new"

echo "benchgate: ok"
