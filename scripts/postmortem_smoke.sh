#!/bin/sh
# postmortem-smoke: end-to-end check of the health watchdog + flight
# recorder (make postmortem-smoke).
#
# 1. A seeded three-rank live run with an injected straggler arms the
#    watchdog (blame-spike SLO) and the flight recorder; /healthz is
#    polled until it flips to 503 with the firing rule in the body.
# 2. The run is left to finish; exactly one straggler bundle must be in
#    the postmortem directory.
# 3. preduce-postmortem -validate proves the bundle's CRCs and canonical
#    form, -list summarizes it, and the default rendering must include
#    the watchdog rule table, the straggler scoreboard, and the blame
#    report recomputed from the bundled trace ring.
#
# Everything is stdlib + curl; the run takes a few seconds.
set -eu

GO=${GO:-go}
PORT=${POSTMORTEM_SMOKE_PORT:-19481}
BASE=${POSTMORTEM_SMOKE_BASE:-19491}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/postmortem-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

echo "postmortem-smoke: building binaries"
$GO build -o "$DIR/preduce-live" ./cmd/preduce-live
$GO build -o "$DIR/preduce-postmortem" ./cmd/preduce-postmortem

echo "postmortem-smoke: live run with watchdog on 127.0.0.1:$PORT"
ADDRS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1)),127.0.0.1:$((BASE+2))"
"$DIR/preduce-live" -rank 1 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -straggle 2:200us 2> "$DIR/r1.log" &
R1=$!
"$DIR/preduce-live" -rank 2 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -straggle 2:200us 2> "$DIR/r2.log" &
R2=$!
"$DIR/preduce-live" -rank 0 -addrs "$ADDRS" -iters 8000 -seed 1 \
    -straggle 2:200us \
    -slo-blame-recent 0.0001 -watchdog-every 100ms \
    -postmortem-dir "$DIR/postmortems" \
    -telemetry-addr "127.0.0.1:$PORT" 2> "$DIR/r0.log" &
R0=$!

# Poll /healthz until the blame-spike rule fires (503 + rule in body).
HEALTH="$DIR/healthz.json"
fired=0
for i in $(seq 1 100); do
    code=$(curl -s -o "$HEALTH" -w '%{http_code}' "http://127.0.0.1:$PORT/healthz" 2>/dev/null || echo 000)
    if [ "$code" = 503 ] && grep -q "blame-spike" "$HEALTH"; then
        fired=1
        break
    fi
    sleep 0.1
done
curl -sf -o "$DIR/watchdog_metrics.txt" "http://127.0.0.1:$PORT/metrics" || metrics_down=1

wait $R0 $R1 $R2
cat "$DIR/r0.log"

[ "$fired" = 1 ] || { echo "postmortem-smoke: FAILED: /healthz never reported blame-spike firing"; cat "$HEALTH" 2>/dev/null || true; exit 1; }
[ "${metrics_down:-0}" = 0 ] || { echo "postmortem-smoke: FAILED: /metrics unreachable while firing"; exit 1; }
grep -q 'preduce_watchdog_firing{rule="blame-spike"} 1' "$DIR/watchdog_metrics.txt" \
    || { echo "postmortem-smoke: FAILED: watchdog series missing from /metrics"; exit 1; }

echo "postmortem-smoke: checking bundle count"
count=$(ls "$DIR/postmortems"/postmortem-*.tar | wc -l)
[ "$count" -eq 1 ] || { echo "postmortem-smoke: FAILED: $count bundles, want exactly 1"; ls "$DIR/postmortems"; exit 1; }

echo "postmortem-smoke: validating bundle"
"$DIR/preduce-postmortem" -validate "$DIR/postmortems"
"$DIR/preduce-postmortem" -list "$DIR/postmortems" | grep -q "blame-spike" \
    || { echo "postmortem-smoke: FAILED: -list does not name the firing rule"; exit 1; }

echo "postmortem-smoke: rendering bundle"
"$DIR/preduce-postmortem" -top 3 "$DIR/postmortems" > "$DIR/render.txt"
for want in "watchdog state" "straggler scoreboard" "Blame ledger"; do
    grep -q "$want" "$DIR/render.txt" \
        || { echo "postmortem-smoke: FAILED: rendering missing '$want'"; cat "$DIR/render.txt"; exit 1; }
done
head -25 "$DIR/render.txt"

echo "postmortem-smoke: OK"
