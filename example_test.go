package preduce_test

import (
	"fmt"
	"log"

	preduce "partialreduce"
)

// Train a model with partial reduce on a simulated heterogeneous cluster.
func ExampleSimulate() {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 4, Dim: 16, Examples: 2400, Separation: 3.2, Noise: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)

	res, err := preduce.Simulate(preduce.SimConfig{
		N:         8,
		Spec:      preduce.Spec{Inputs: 16, Hidden: []int{16}, Classes: 4},
		Seed:      7,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: preduce.OptimizerConfig{LR: 0.05, Momentum: 0.9},
		Profile:   preduce.ResNet34,
		Hetero:    preduce.GPUSharing(8, 3, preduce.ResNet34.BatchCompute, 0.1, 7),
		Net:       preduce.DefaultNetwork(),
		Threshold: 0.9,
	}, preduce.NewPReduce(preduce.PReduceConfig{P: 3}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	// Output: converged: true
}

// Compute the paper's Figure 4 spectral bounds analytically.
func ExampleRho() {
	homogeneous := preduce.GroupDist{
		N:      3,
		Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Probs:  []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	m, err := preduce.MeanW(homogeneous)
	if err != nil {
		log.Fatal(err)
	}
	rho, err := preduce.Rho(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rho = %.3f\n", rho)
	// Output: rho = 0.500
}

// The closed form for uniform group distributions.
func ExampleUniformRho() {
	for _, p := range []int{2, 4, 8} {
		fmt.Printf("N=8 P=%d: rho = %.3f\n", p, preduce.UniformRho(8, p))
	}
	// Output:
	// N=8 P=2: rho = 0.857
	// N=8 P=4: rho = 0.571
	// N=8 P=8: rho = 0.000
}

// Train with real goroutine workers and ring collectives.
func ExampleRunLive() {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 3, Dim: 10, Examples: 1200, Separation: 3.5, Noise: 1, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)

	rep, err := preduce.RunLive(preduce.LiveConfig{
		N: 4, P: 2,
		Spec:      preduce.Spec{Inputs: 10, Hidden: []int{12}, Classes: 3},
		Seed:      3,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: preduce.OptimizerConfig{LR: 0.05, Momentum: 0.9},
		Iters:     80,
	}, preduce.NewMemWorld(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained above 85%:", rep.FinalAccuracy > 0.85)
	// Output: trained above 85%: true
}
