// Command preduce-bench regenerates the paper's tables and figures on the
// simulated cluster and prints them in the paper's layout.
//
// Usage:
//
//	preduce-bench -exp table1            # Table 1 (CIFAR-10 end-to-end grid)
//	preduce-bench -exp fig9 -seed 3      # production-cluster comparison
//	preduce-bench -exp all -quick        # everything, reduced budgets
//
// Experiments: table1, fig4, fig7a, fig7b, fig8, fig9, fig10, fig11,
// ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"partialreduce/internal/experiments"
	"partialreduce/internal/metrics"
	"partialreduce/internal/policy"
	"partialreduce/internal/trace"
)

// outDir, when non-empty, receives plot-ready CSV exports per experiment.
var outDir string

// showComms, when set, prints each run's modeled data-plane traffic.
var showComms bool

// reportComms prints one modeled-traffic line per result (also exported in
// the summary CSV columns when -csv is set).
func reportComms(results ...*metrics.Result) {
	if !showComms {
		return
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		fmt.Printf("comms %-18s ops=%6d sent=%.1fMB recv=%.1fMB retries=%d timeouts=%d aborts=%d\n",
			r.Strategy, r.Comms.Ops,
			float64(r.Comms.BytesSent)/1e6, float64(r.Comms.BytesRecv)/1e6,
			r.Comms.Retries, r.Comms.Timeouts, r.Comms.Aborts)
	}
}

// exportCurves writes a curve CSV for a figure when -csv is set.
func exportCurves(name string, results ...*metrics.Result) {
	if outDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(outDir, name+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	if err := metrics.WriteCurvesCSV(f, results...); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
	}
}

// exportSummary writes a summary CSV for a table when -csv is set.
func exportSummary(name string, results ...*metrics.Result) {
	if outDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(outDir, name+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	if err := metrics.WriteSummaryCSV(f, results...); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig4|fig7a|fig7b|fig8|fig9|fig10|fig11|geo|seeds|crash|partition|adaptive|elastic|ablations|all")
	seed := flag.Int64("seed", 1, "master seed for datasets, initialization and timing draws")
	quickFlag := flag.Bool("quick", false, "reduced update budgets and thresholds")
	parallel := flag.Int("parallel", 0, "max concurrent cells (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "directory to write plot-ready CSV files into (curves and summaries)")
	comms := flag.Bool("comms", false, "print modeled data-plane traffic (ops, bytes) per run")
	tracePath := flag.String("trace", "",
		"instead of -exp, run one traced P-Reduce simulation (ResNet-34/CIFAR-10, production trace, CON P=4) and write its virtual-clock trace here (.json: Chrome trace-event, loadable in Perfetto; .jsonl: streaming event log)")
	traceBuf := flag.Int("trace-buf", 0,
		"trace event-ring capacity (0: default 65536; oldest events drop when full)")
	policyName := flag.String("policy", "",
		"group-formation policy retrofitted onto every P-Reduce run: static|adaptive-p|straggler-bias (empty: controller default)")
	pMin := flag.Int("p-min", 0, "adaptive-p lower group-size bound (0: default 2)")
	pMax := flag.Int("p-max", 0, "adaptive-p upper group-size bound (0: the strategy's configured P)")
	policyWindow := flag.Int("policy-window", 0, "formations between adaptive-p decisions (0: default 8)")
	flag.Parse()
	showComms = *comms
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	outDir = *csvDir

	opts := experiments.Options{
		Seed: *seed, Quick: *quickFlag, Parallelism: *parallel,
		Policy: policy.Spec{Name: *policyName, PMin: *pMin, PMax: *pMax, Window: *policyWindow},
	}

	if *tracePath != "" {
		if err := runTraced(*tracePath, *traceBuf, opts); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		return
	}

	runners := map[string]func(experiments.Options) error{
		"table1":    runTable1,
		"fig4":      runFig4,
		"fig7a":     runFig7a,
		"fig7b":     runFig7b,
		"fig8":      runFig8,
		"fig9":      runFig9,
		"fig10":     runFig10,
		"fig11":     runFig11,
		"ablations": runAblations,
		"geo":       runGeo,
		"seeds":     runSeeds,
		"crash":     runCrash,
		"partition": runPartition,
		"adaptive":  runAdaptive,
		"elastic":   runElastic,
	}
	order := []string{"fig4", "table1", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11", "geo", "seeds", "crash", "partition", "adaptive", "elastic", "ablations"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else if _, ok := runners[*exp]; ok {
		ids = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Printf("=== %s (seed=%d quick=%v) ===\n", id, *seed, *quickFlag)
		if err := runners[id](opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %s ---\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func runTable1(opts experiments.Options) error {
	res, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	// Walk the table in its printed order (block, HL, strategy) so the
	// summary CSV and comms lines are byte-identical across runs — ranging
	// over the Cells maps would randomize the rows.
	var all []*metrics.Result
	for _, blk := range res.Blocks {
		for _, hl := range blk.HLs {
			for _, s := range experiments.Table1Strategies {
				if r := blk.Cells[hl][s]; r != nil {
					all = append(all, r)
				}
			}
		}
	}
	exportSummary("table1", all...)
	reportComms(all...)
	for _, m := range []string{"resnet34", "vgg19", "densenet121"} {
		for _, hl := range []int{1, 2, 3} {
			if name, best := res.Best(m, hl); best != nil {
				fmt.Printf("best run time %s HL=%d: %s (%.0fs)\n", m, hl, name, best.RunTime)
			}
		}
	}
	return nil
}

func runFig4(opts experiments.Options) error {
	res, err := experiments.Fig4(opts)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

func runFig7a(opts experiments.Options) error {
	cs, err := experiments.Fig7a(opts)
	if err != nil {
		return err
	}
	cs.Format(os.Stdout)
	exportCurveSet("fig7a", cs)
	return nil
}

// exportCurveSet dumps every series of a figure.
func exportCurveSet(name string, cs *experiments.CurveSet) {
	var rs []*metrics.Result
	for _, s := range cs.Order {
		if r := cs.Final[s]; r != nil {
			rs = append(rs, r)
		}
	}
	exportCurves(name, rs...)
	reportComms(rs...)
}

func runFig7b(opts experiments.Options) error {
	cs, err := experiments.Fig7b(opts)
	if err != nil {
		return err
	}
	cs.Format(os.Stdout)
	exportCurveSet("fig7b", cs)
	return nil
}

func runFig8(opts experiments.Options) error {
	res, err := experiments.Fig8(opts)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

func runFig9(opts experiments.Options) error {
	res, err := experiments.Fig9(opts)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

func runFig10(opts experiments.Options) error {
	sets, err := experiments.Fig10(opts)
	if err != nil {
		return err
	}
	for i, cs := range sets {
		cs.Format(os.Stdout)
		exportCurveSet(fmt.Sprintf("fig10-%d", i), cs)
	}
	return nil
}

func runFig11(opts experiments.Options) error {
	results, err := experiments.Fig11(opts)
	if err != nil {
		return err
	}
	for _, res := range results {
		res.Format(os.Stdout)
	}
	return nil
}

func runGeo(opts experiments.Options) error {
	res, err := experiments.GeoStudy(opts)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

func runSeeds(opts experiments.Options) error {
	res, err := experiments.Robustness(opts, 5)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

func runCrash(opts experiments.Options) error {
	res, err := experiments.RobustnessCrash(opts, []float64{0, 0.15, 0.3, 0.45})
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

func runAdaptive(opts experiments.Options) error {
	res, err := experiments.RobustnessAdaptive(opts, 6)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	exportSummary("adaptive", res.Results...)
	reportComms(res.Results...)
	return nil
}

func runElastic(opts experiments.Options) error {
	res, err := experiments.RobustnessElastic(opts)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	exportSummary("elastic", res.Results()...)
	reportComms(res.Results()...)
	return nil
}

func runPartition(opts experiments.Options) error {
	res, err := experiments.RobustnessPartition(opts, []float64{0, 4, 12})
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	exportSummary("partition", res.Results...)
	reportComms(res.Results...)
	return nil
}

// runTraced executes one traced P-Reduce simulation and exports its
// virtual-clock trace: Chrome trace-event JSON by default, streaming JSONL
// when the path ends in ".jsonl". Same-seed replays write identical bytes.
func runTraced(path string, buf int, opts experiments.Options) error {
	start := time.Now()
	res, c, err := experiments.TracedRun(opts, buf)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events := c.Tracer.Events()
	if strings.HasSuffix(path, ".jsonl") {
		err = trace.WriteJSONL(f, events)
	} else {
		err = trace.WriteChrome(f, events)
	}
	if err != nil {
		return err
	}
	snap := c.Ins.Snapshot()
	fmt.Printf("traced run: %s acc=%.3f events=%d dropped=%d staleness p50=%d p95=%d max=%d (%s)\n",
		res.Strategy, res.FinalAccuracy, len(events), c.Tracer.Dropped(),
		snap.Staleness.Quantile(0.5), snap.Staleness.Quantile(0.95), snap.Staleness.Max(),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("trace written to %s\n", path)
	return nil
}

func runAblations(opts experiments.Options) error {
	w, err := experiments.AblationWeights(opts)
	if err != nil {
		return err
	}
	fmt.Println("Ablation: aggregation weighting (ResNet-34/CIFAR-10, production)")
	w.Format(os.Stdout)

	f, err := experiments.AblationGroupFilter(opts)
	if err != nil {
		return err
	}
	fmt.Println("Ablation: group-frozen avoidance (adversarial 2+2 cluster, P=2)")
	f.Format(os.Stdout)
	return nil
}
