// Command preduce-postmortem lists, validates, and renders the postmortem
// bundles the health watchdog's flight recorder captures (see
// internal/health): canonical tar archives holding the firing rules, the
// full metrics snapshot, the straggler scoreboard, the trace ring, the
// run config, and the controller snapshot at capture time.
//
//	preduce-postmortem bundle.tar               render one bundle (default)
//	preduce-postmortem -list dir/               one summary line per bundle
//	preduce-postmortem -validate dir/           CRC + canonical-form check
//
// Arguments may be bundle files or directories; a directory expands to
// every "postmortem-*.tar" inside it, name-sorted (capture order, since
// the recorder numbers bundles sequentially). The default rendering ends
// with the critical-path blame report computed from the bundled trace —
// the same analysis preduce-analyze runs on exported traces.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"partialreduce/internal/analyze"
	"partialreduce/internal/health"
)

func main() {
	list := flag.Bool("list", false, "print one summary line per bundle instead of rendering")
	validate := flag.Bool("validate", false, "verify each bundle's CRCs and canonical form; non-zero exit on any failure")
	top := flag.Int("top", 10, "groups shown in the blame report's top-groups table")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: preduce-postmortem [flags] bundle.tar|dir [...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	paths, err := expand(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no postmortem bundles found"))
	}

	failed := false
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		switch {
		case *validate:
			man, err := health.Validate(data)
			if err != nil {
				fmt.Printf("FAIL  %s: %v\n", path, err)
				failed = true
				continue
			}
			fmt.Printf("OK    %s  reason=%s rules=%s\n", path, man.Reason, rulesOrNone(man.Rules))
		case *list:
			man, _, err := health.ReadBundle(bytes.NewReader(data))
			if err != nil {
				fmt.Printf("FAIL  %s: %v\n", path, err)
				failed = true
				continue
			}
			fmt.Printf("%s  at=%.3fs reason=%s rules=%s parts=%d\n",
				path, man.At, man.Reason, rulesOrNone(man.Rules), len(man.Parts))
		default:
			if i > 0 {
				fmt.Println()
			}
			if err := render(path, data, *top); err != nil {
				fatal(err)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// expand resolves each argument to bundle files: files pass through,
// directories contribute their postmortem-*.tar entries name-sorted.
func expand(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "postmortem-*.tar"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	return out, nil
}

// watchdogPart mirrors the bundle's watchdog.json schema.
type watchdogPart struct {
	Reason   string `json:"reason"`
	At       float64
	Breaches []struct {
		Rule      string  `json:"rule"`
		Value     float64 `json:"value"`
		Threshold float64 `json:"threshold"`
		At        float64 `json:"at"`
		Seq       uint64  `json:"seq"`
	} `json:"breaches"`
	State health.State `json:"state"`
}

// render prints one bundle: manifest header, the breaches and rule table
// from watchdog.json, the scoreboard, the run config, and the blame
// report recomputed from the bundled trace ring.
func render(path string, data []byte, top int) error {
	man, parts, err := health.ReadBundle(bytes.NewReader(data))
	if err != nil {
		return err
	}
	fmt.Printf("postmortem bundle %s\n", path)
	fmt.Printf("  version %d  reason %s  at %.3fs  rules %s\n",
		man.Version, man.Reason, man.At, rulesOrNone(man.Rules))
	for _, pi := range man.Parts {
		fmt.Printf("  part %-15s %7d bytes  crc32 %08x\n", pi.Name, pi.Size, pi.CRC32)
	}

	var wp watchdogPart
	if err := json.Unmarshal(parts[health.PartWatchdog], &wp); err != nil {
		return fmt.Errorf("%s: parse %s: %w", path, health.PartWatchdog, err)
	}
	if len(wp.Breaches) > 0 {
		fmt.Println("\nbreaches:")
		for _, b := range wp.Breaches {
			fmt.Printf("  %-18s value %.3f >= threshold %.3f at %.3fs (eval #%d)\n",
				b.Rule, b.Value, b.Threshold, b.At, b.Seq)
		}
	}
	fmt.Printf("\nwatchdog state (%d evaluations, last at %.3fs):\n", wp.State.Evals, wp.State.LastEvalAt)
	fmt.Printf("  %-18s %-8s %-7s %10s %10s %6s\n", "rule", "enabled", "firing", "value", "threshold", "fires")
	for _, rs := range wp.State.Rules {
		fmt.Printf("  %-18s %-8t %-7t %10.3f %10.3f %6d\n",
			rs.Rule, rs.Enabled, rs.Firing, rs.Value, rs.Threshold, rs.Fires)
	}

	fmt.Println("\nstraggler scoreboard:")
	for _, line := range strings.Split(strings.TrimRight(string(parts[health.PartScoreboard]), "\n"), "\n") {
		fmt.Println("  " + line)
	}

	if cfg := strings.TrimSpace(string(parts[health.PartConfig])); cfg != "" && cfg != "{}" {
		fmt.Println("\nrun config:")
		for _, line := range strings.Split(cfg, "\n") {
			fmt.Println("  " + line)
		}
	}

	events, err := analyze.ParseJSONL(bytes.NewReader(parts[health.PartTrace]))
	if err != nil {
		return fmt.Errorf("%s: parse %s: %w", path, health.PartTrace, err)
	}
	if len(events) == 0 {
		fmt.Println("\n(no trace events in the ring; no blame report)")
		return nil
	}
	rank := -1
	for _, ev := range events {
		if ev.Origin >= 0 {
			rank = int(ev.Origin)
			break
		}
	}
	m, err := analyze.Merge([]analyze.RankTrace{{Rank: rank, Path: path, Events: events}})
	if err != nil {
		return fmt.Errorf("%s: merge trace: %w", path, err)
	}
	report, err := analyze.Analyze(m)
	if err != nil {
		return fmt.Errorf("%s: analyze trace: %w", path, err)
	}
	fmt.Println()
	return analyze.WriteReport(os.Stdout, report, top)
}

func rulesOrNone(rules []string) string {
	if len(rules) == 0 {
		return "(none)"
	}
	return strings.Join(rules, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preduce-postmortem:", err)
	os.Exit(1)
}
