// Command preduce-spectral computes the spectral quantities of §3.2: the
// expected synchronization matrix E[W_k], its bound ρ, and Theorem 1's ρ̄,
// for either the uniform group distribution (homogeneous environment) or a
// skewed distribution over pairs (heterogeneous). With no flags it
// reproduces Figure 4's two scenarios.
//
// Usage:
//
//	preduce-spectral                 # Figure 4 scenarios
//	preduce-spectral -n 8 -p 3      # uniform groups, 8 workers, P=3
//	preduce-spectral -n 3 -p 2 -skew 0.5   # fast pair twice as likely
package main

import (
	"flag"
	"fmt"
	"os"

	"partialreduce/internal/spectral"
)

func main() {
	n := flag.Int("n", 0, "workers (0 = reproduce Figure 4)")
	p := flag.Int("p", 2, "group size")
	skew := flag.Float64("skew", 0, "probability of the first pair (N=3, P=2 only); 0 = uniform")
	sweep := flag.Bool("sweep", false, "sweep P for fixed N: rho, rho-bar, Theorem 1's max feasible learning rate")
	flag.Parse()

	if *sweep {
		if *n < 2 {
			fail(fmt.Errorf("-sweep needs -n >= 2"))
		}
		sweepP(*n)
		return
	}
	if *n == 0 {
		fig4()
		return
	}
	var dist spectral.GroupDist
	if *skew > 0 {
		if *n != 3 || *p != 2 {
			fail(fmt.Errorf("-skew requires -n 3 -p 2"))
		}
		rest := (1 - *skew) / 2
		dist = spectral.GroupDist{
			N:      3,
			Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
			Probs:  []float64{*skew, rest, rest},
		}
	} else {
		if *p < 1 || *p > *n {
			fail(fmt.Errorf("need 1 <= p <= n"))
		}
		dist = spectral.UniformGroups(*n, *p)
	}
	report(fmt.Sprintf("N=%d P=%d (%d groups)", *n, *p, len(dist.Groups)), dist)
}

// sweepP prints how the spectral machinery of §3.2 changes with the group
// size under the uniform (homogeneous) distribution: ρ = 1 − (P−1)/(N−1)
// shrinks as P grows, ρ̄ follows, and Theorem 1's feasible learning-rate
// region widens — the theory behind Fig. 8's statistical-efficiency panel.
func sweepP(n int) {
	fmt.Printf("uniform groups, N=%d (L=1 assumed for the feasibility bound)\n", n)
	fmt.Printf("%4s %10s %12s %16s\n", "P", "rho", "rho-bar", "max feasible lr")
	for p := 2; p <= n; p++ {
		rho := spectral.UniformRho(n, p)
		// Binary-search the largest gamma satisfying Eq. (7).
		lo, hi := 0.0, 1e3
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if spectral.LearningRateFeasible(mid, 1, n, p, rho) {
				lo = mid
			} else {
				hi = mid
			}
		}
		fmt.Printf("%4d %10.4f %12.4f %16.6f\n", p, rho, spectral.RhoBar(rho), lo)
	}
}

func fig4() {
	report("Fig 4(a): homogeneous, N=3 P=2", spectral.GroupDist{
		N:      3,
		Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Probs:  []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
	})
	report("Fig 4(b): one worker 2x slower", spectral.GroupDist{
		N:      3,
		Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Probs:  []float64{0.5, 0.25, 0.25},
	})
}

func report(title string, dist spectral.GroupDist) {
	m, err := spectral.MeanW(dist)
	if err != nil {
		fail(err)
	}
	rho, err := spectral.Rho(m)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s\n", title)
	fmt.Printf("  E[W] =\n")
	for i := 0; i < m.Rows; i++ {
		fmt.Printf("   ")
		for j := 0; j < m.Cols; j++ {
			fmt.Printf(" %7.4f", m.At(i, j))
		}
		fmt.Println()
	}
	fmt.Printf("  rho = %.4f   spectral gap 1-rho = %.4f   rho-bar = %.4f\n\n",
		rho, 1-rho, spectral.RhoBar(rho))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
