// Command preduce-live runs one worker of a live P-Reduce training world.
// Start N processes (on one machine or several), each with its rank and the
// full address list; they connect a TCP mesh, train real model replicas on
// a shared synthetic dataset, and synchronize through P-Reduce groups with
// genuine ring all-reduce collectives.
//
// A three-worker world on one machine:
//
//	preduce-live -rank 0 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	preduce-live -rank 1 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	preduce-live -rank 2 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// Note: the live runtime's controller runs in the rank-0 process in this
// single-binary deployment, so rank 0 must be reachable by all. Every
// process must use identical -seed, -p, -iters, and dataset flags: the
// dataset and initialization derive deterministically from the seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	preduce "partialreduce"
	"partialreduce/internal/data"
	"partialreduce/internal/live"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/transport"
)

func main() {
	rank := flag.Int("rank", -1, "this worker's rank in [0, N)")
	addrs := flag.String("addrs", "", "comma-separated listen addresses, one per rank")
	p := flag.Int("p", 2, "P-Reduce group size")
	iters := flag.Int("iters", 200, "local iterations per worker")
	seed := flag.Int64("seed", 1, "shared seed (dataset, initialization)")
	dynamic := flag.Bool("dynamic", false, "use dynamic staleness-aware weights")
	meshTimeout := flag.Duration("mesh-timeout", 15*time.Second,
		"bound on TCP mesh formation; a missing rank fails the start instead of hanging")
	heartbeat := flag.Duration("heartbeat", 0,
		"heartbeat interval for peer liveness probing (0 disables; crashes are still caught via broken connections)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 0,
		"declare a peer dead after this long without traffic (default 10x -heartbeat)")
	crashAfter := flag.Int("crash-after", 0,
		"fault-injection demo: this rank fail-stops after the given local iteration (survivors keep training; rank 0 cannot crash)")
	failTimeout := flag.Duration("fail-timeout", 30*time.Second,
		"controller-side staleness backstop used when -crash-after is set")
	segmentSize := flag.Int("segment-size", 0,
		"collective pipeline segment size in float64 elements (0: default, negative: unsegmented)")
	commStats := flag.Bool("comm-stats", false,
		"print this rank's data-plane statistics (bytes, segments, per-phase time) on exit")
	flag.Parse()

	list := strings.Split(*addrs, ",")
	n := len(list)
	if *addrs == "" || n < 2 {
		fail(fmt.Errorf("need -addrs with at least two entries"))
	}
	if *rank < 0 || *rank >= n {
		fail(fmt.Errorf("need -rank in [0,%d)", n))
	}

	// Deterministic shared dataset: every process builds the same one.
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 10, Dim: 32, Examples: 6000, Separation: 3.5, Noise: 1, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	train, test := ds.Split(0.8)

	fmt.Fprintf(os.Stderr, "rank %d: connecting mesh over %d ranks...\n", *rank, n)
	tr, err := transport.NewTCPOpts(*rank, list, transport.TCPOptions{
		MeshTimeout:       *meshTimeout,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *heartbeatTimeout,
	})
	if err != nil {
		fail(err)
	}
	defer tr.Close()

	cfg := live.Config{
		N: n, P: *p,
		Spec:      model.Spec{Inputs: 32, Hidden: []int{24}, Classes: 10},
		Seed:      *seed,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer:    optim.Config{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		Iters:        *iters,
		SegmentElems: *segmentSize,
	}
	if *dynamic {
		cfg.Weighting = preduce.Dynamic
		cfg.Approx = preduce.ClosestIteration
	}
	if *crashAfter > 0 {
		// Only this process knows it will crash; peers detect the death at
		// the wire (broken connections / heartbeat loss) exactly as they
		// would a real failure.
		cfg.Crash = map[int]int{*rank: *crashAfter}
		cfg.FailTimeout = *failTimeout
	}

	start := time.Now()
	rep, err := live.RunWorker(cfg, tr, *rank == 0)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rank %d: done in %s\n", *rank, time.Since(start).Round(time.Millisecond))
	if *commStats {
		fmt.Fprintf(os.Stderr, "rank %d: comms %s\n", *rank, rep.Comms.String())
	}
	if *rank == 0 {
		fmt.Printf("averaged-model accuracy: %.3f  groups: %d\n", rep.FinalAccuracy, rep.Groups)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
