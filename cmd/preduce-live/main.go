// Command preduce-live runs one worker of a live P-Reduce training world.
// Start N processes (on one machine or several), each with its rank and the
// full address list; they connect a TCP mesh, train real model replicas on
// a shared synthetic dataset, and synchronize through P-Reduce groups with
// genuine ring all-reduce collectives.
//
// A three-worker world on one machine:
//
//	preduce-live -rank 0 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	preduce-live -rank 1 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	preduce-live -rank 2 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// Note: the live runtime's controller runs in the rank-0 process in this
// single-binary deployment, so rank 0 must be reachable by all. Every
// process must use identical -seed, -p, -iters, and dataset flags: the
// dataset and initialization derive deterministically from the seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	preduce "partialreduce"
	"partialreduce/internal/collective"
	"partialreduce/internal/data"
	"partialreduce/internal/health"
	"partialreduce/internal/hetero"
	"partialreduce/internal/live"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/policy"
	"partialreduce/internal/telemetry"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

func main() {
	rank := flag.Int("rank", -1, "this worker's rank in [0, N)")
	addrs := flag.String("addrs", "", "comma-separated listen addresses, one per rank")
	p := flag.Int("p", 2, "P-Reduce group size")
	iters := flag.Int("iters", 200, "local iterations per worker")
	seed := flag.Int64("seed", 1, "shared seed (dataset, initialization)")
	dynamic := flag.Bool("dynamic", false, "use dynamic staleness-aware weights")
	meshTimeout := flag.Duration("mesh-timeout", 15*time.Second,
		"bound on TCP mesh formation; a missing rank fails the start instead of hanging")
	heartbeat := flag.Duration("heartbeat", 0,
		"heartbeat interval for peer liveness probing (0 disables; crashes are still caught via broken connections)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 0,
		"declare a peer dead after this long without traffic (default 10x -heartbeat)")
	crashAfter := flag.Int("crash-after", 0,
		"fault-injection demo: this rank fail-stops after the given local iteration (survivors keep training; rank 0 cannot crash)")
	failTimeout := flag.Duration("fail-timeout", 30*time.Second,
		"controller-side staleness backstop used when -crash-after is set")
	segmentSize := flag.Int("segment-size", 0,
		"collective pipeline segment size in float64 elements (0: default, negative: unsegmented)")
	commStats := flag.Bool("comm-stats", false,
		"print this rank's data-plane statistics (bytes, segments, per-phase time) on exit")
	ctrlCrashAfter := flag.Int("ctrl-crash-after", 0,
		"failover demo: destroy the controller object after this many dispatched groups (needs -ctrl-timeout and -collective-timeout; warm snapshot restart unless -ctrl-cold)")
	ctrlCold := flag.Bool("ctrl-cold", false,
		"with -ctrl-crash-after: rebuild the controller cold from re-sent ready signals instead of restoring its snapshot")
	ctrlTimeout := flag.Duration("ctrl-timeout", 0,
		"bound a worker's wait for a group reply; on expiry the ready signal is re-sent (0: wait forever)")
	collTimeout := flag.Duration("collective-timeout", 0,
		"bound every receive inside group collectives so severed links surface as timeouts (0: wait forever)")
	retryMax := flag.Int("retry-max", 0,
		"collective attempts after a receive timeout before aborting the group (0 or 1: no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond,
		"base backoff before a collective retry; doubles per attempt with seeded jitter")
	partition := flag.String("partition", "",
		"timed data-plane partition, e.g. '1,2@3s:8s': cut ranks {1,2} off from the rest between 3s and 8s after start (omit ':8s' to never heal)")
	tracePath := flag.String("trace", "",
		"write this rank's wall-clock trace here on exit; '.r<rank>' is inserted before the extension so every rank can share the flag (.json: Chrome trace-event for Perfetto; .jsonl: streaming event log)")
	traceBuf := flag.Int("trace-buf", 0,
		"trace event-ring capacity (0: default 65536; oldest events drop when full)")
	telemetryAddr := flag.String("telemetry-addr", "",
		"serve Prometheus-text /metrics (staleness histogram, queue depth, barrier-wait, comm counters) and /debug/pprof/ on this address for the run's duration (e.g. 127.0.0.1:9090, or :0 for an ephemeral port)")
	initial := flag.Int("initial", 0,
		"elastic start: only ranks [0,initial) train from the beginning; the rest park until a scheduled join (0: everyone; -addrs still lists every rank)")
	joinAfter := flag.Int("join-after", 0,
		"elastic scale-out: admit the first parked rank once this many groups have dispatched, then one more per -scale-step (requires -initial < len(addrs))")
	drainAfter := flag.Int("drain-after", 0,
		"elastic scale-in: gracefully drain the highest rank once this many groups have dispatched, then one more per -scale-step, down to -scale-to")
	scaleTo := flag.Int("scale-to", 0,
		"elastic scale-in target membership (with -drain-after; 0: no drains)")
	scaleStep := flag.Int("scale-step", 5,
		"groups between consecutive elastic joins (after -join-after) and drains (after -drain-after)")
	policyName := flag.String("policy", "",
		"group-formation policy: static|adaptive-p|straggler-bias (empty: controller default)")
	pMin := flag.Int("p-min", 0, "adaptive-p lower group-size bound (0: default 2)")
	pMax := flag.Int("p-max", 0, "adaptive-p upper group-size bound (0: -p)")
	policyWindow := flag.Int("policy-window", 0, "formations between adaptive-p decisions (0: default 8)")
	scoreboard := flag.Duration("scoreboard", 0,
		"rank 0: dump the live straggler scoreboard (per-worker blame/wait, ranked by recent blame) to stderr at this interval, and once on exit (0 disables; implies instruments)")
	straggle := flag.String("straggle", "",
		"demo straggler injection 'rank:dur' (e.g. 1:30ms): that rank sleeps dur extra per iteration, so the scoreboard and blame gauges have someone to convict")
	sloStaleness := flag.Int64("slo-staleness-p95", 0,
		"watchdog: fire when 95th-percentile staleness reaches this many iterations (0 disables the rule)")
	sloBlame := flag.Float64("slo-blame-recent", 0,
		"watchdog: fire when any worker's recent-blame EWMA reaches this many seconds (0 disables)")
	sloRetryStorm := flag.Int64("slo-retry-storm", 0,
		"watchdog: fire when collective retries+timeouts grow by at least this many per evaluation (0 disables)")
	sloSyncComponents := flag.Int64("slo-sync-components", 0,
		"watchdog: fire when the windowed sync-graph splits into at least this many components (2 = any split; 0 disables)")
	sloQueueDepth := flag.Int64("slo-queue-depth", 0,
		"watchdog: fire when the controller's ready-queue depth reaches this many workers (0 disables)")
	sloEpochChurn := flag.Int64("slo-epoch-churn", 0,
		"watchdog: fire when the membership epoch advances by at least this many bumps per evaluation (0 disables)")
	sloSilence := flag.Duration("slo-silence", 0,
		"watchdog: fire when no group forms for this long while >= 2 workers are active (0 disables)")
	watchdogEvery := flag.Duration("watchdog-every", time.Second,
		"watchdog evaluation cadence on the controller host (rank 0)")
	postmortemDir := flag.String("postmortem-dir", "",
		"rank 0: write a postmortem bundle (trace ring, controller snapshot, metrics, scoreboard, firing rules, run config) here whenever a watchdog rule fires, and on SIGINT/SIGTERM; inspect with preduce-postmortem")
	flag.Parse()

	list := strings.Split(*addrs, ",")
	n := len(list)
	if *addrs == "" || n < 2 {
		fail(fmt.Errorf("need -addrs with at least two entries"))
	}
	if *rank < 0 || *rank >= n {
		fail(fmt.Errorf("need -rank in [0,%d)", n))
	}
	if *policyName != "" {
		// Fail fast: the controller re-validates the spec, but only after
		// the whole mesh has formed — a typo'd -policy should not cost a
		// mesh timeout on every rank.
		spec := policy.Spec{Name: *policyName, PMin: *pMin, PMax: *pMax, Window: *policyWindow}
		if err := spec.Validate(n, *p); err != nil {
			fail(err)
		}
	}

	// Deterministic shared dataset: every process builds the same one.
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 10, Dim: 32, Examples: 6000, Separation: 3.5, Noise: 1, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	train, test := ds.Split(0.8)

	// Observability is always on: the tracer ring and instruments are the
	// flight recorder's evidence, so they exist even when no -trace or
	// -telemetry-addr asks for them. Without -trace the ring stays small
	// (a bounded black box, last ~8k events) and is only ever read by a
	// postmortem capture; with -trace it gets the full export capacity.
	ringCap := *traceBuf
	if ringCap == 0 && *tracePath == "" {
		ringCap = 8192
	}
	tr2 := trace.New(trace.NewWallClock(), ringCap)
	// Stamp the recording rank into every event, so merged multi-rank
	// timelines self-identify without the .r<rank> file-name convention.
	tr2.SetOrigin(int32(*rank))
	ins := metrics.NewInstruments(n)

	// The health plane lives with the controller (rank 0 here): a
	// watchdog when any -slo-* rule is enabled or a -postmortem-dir asks
	// for operator-requested captures, and a flight recorder when the
	// bundle directory is set.
	slo := health.SLO{
		StalenessP95:   *sloStaleness,
		BlameRecent:    *sloBlame,
		RetryStorm:     *sloRetryStorm,
		SyncComponents: *sloSyncComponents,
		QueueDepth:     *sloQueueDepth,
		EpochChurn:     *sloEpochChurn,
		Silence:        sloSilence.Seconds(),
	}
	var wd *health.Watchdog
	var rec *health.Recorder
	if *rank == 0 && (slo != (health.SLO{}) || *postmortemDir != "") {
		wd = health.New(health.Config{SLO: slo})
		if *postmortemDir != "" {
			runCfg, err := json.MarshalIndent(struct {
				N             int        `json:"n"`
				P             int        `json:"p"`
				Iters         int        `json:"iters"`
				Seed          int64      `json:"seed"`
				Dynamic       bool       `json:"dynamic"`
				Policy        string     `json:"policy,omitempty"`
				Straggle      string     `json:"straggle,omitempty"`
				Partition     string     `json:"partition,omitempty"`
				SLO           health.SLO `json:"slo"`
				WatchdogEvery string     `json:"watchdog_every"`
			}{n, *p, *iters, *seed, *dynamic, *policyName, *straggle, *partition,
				slo, watchdogEvery.String()}, "", "  ")
			if err != nil {
				fail(err)
			}
			rec = health.NewRecorder(*postmortemDir, tr2, ins, runCfg)
		}
	}

	fmt.Fprintf(os.Stderr, "rank %d: connecting mesh over %d ranks...\n", *rank, n)
	tcp, err := transport.NewTCPOpts(*rank, list, transport.TCPOptions{
		MeshTimeout:       *meshTimeout,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *heartbeatTimeout,
	})
	if err != nil {
		fail(err)
	}
	defer tcp.Close()

	var tr transport.Transport = tcp
	if *partition != "" {
		part, err := parsePartition(*partition, n)
		if err != nil {
			fail(err)
		}
		ftr, err := transport.NewFaultyEndpoint(tcp, transport.FaultPlan{
			Seed:       *seed,
			Partitions: []transport.Partition{part},
		})
		if err != nil {
			fail(err)
		}
		ftr.SetTracer(tr2) // fault-plane events (drops, partition windows) share the timeline
		tr = ftr
	}

	cfg := live.Config{
		N: n, P: *p,
		Spec:         model.Spec{Inputs: 32, Hidden: []int{24}, Classes: 10},
		Seed:         *seed,
		Train:        train,
		Test:         test,
		BatchSize:    16,
		Optimizer:    optim.Config{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		Iters:        *iters,
		SegmentElems: *segmentSize,

		CtrlCrashAfter:    *ctrlCrashAfter,
		CtrlCold:          *ctrlCold,
		CtrlTimeout:       *ctrlTimeout,
		CollectiveTimeout: *collTimeout,

		Tracer:      tr2,
		Instruments: ins,

		Watchdog:      wd,
		WatchdogEvery: *watchdogEvery,
		Recorder:      rec,
	}
	if *retryMax > 1 {
		cfg.Retry = collective.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseDelay:   *retryBase,
			Multiplier:  2,
			Jitter:      0.2,
		}
	}
	if *dynamic {
		cfg.Weighting = preduce.Dynamic
		cfg.Approx = preduce.ClosestIteration
	}
	if *policyName != "" {
		cfg.Policy = policy.Spec{Name: *policyName, PMin: *pMin, PMax: *pMax, Window: *policyWindow}
	}
	if *initial > 0 || *joinAfter > 0 || *drainAfter > 0 {
		founders := *initial
		if founders == 0 {
			founders = n
		}
		cfg.Initial = *initial
		cfg.Elastic = elasticSchedule(n, founders, *joinAfter, *drainAfter, *scaleTo, *scaleStep)
		// Fail fast: every rank must agree on the schedule, and a bad one
		// should not cost a mesh timeout before being rejected.
		if err := cfg.Elastic.Validate(n, founders); err != nil {
			fail(err)
		}
	}
	if *straggle != "" {
		sRank, sDelay, err := parseStraggle(*straggle, n)
		if err != nil {
			fail(err)
		}
		cfg.ComputeDelay = func(worker, iter int) time.Duration {
			if worker == sRank {
				return sDelay
			}
			return 0
		}
	}
	if *crashAfter > 0 {
		// Only this process knows it will crash; peers detect the death at
		// the wire (broken connections / heartbeat loss) exactly as they
		// would a real failure.
		cfg.Crash = map[int]int{*rank: *crashAfter}
		cfg.FailTimeout = *failTimeout
	}

	if *telemetryAddr != "" {
		ep, err := telemetry.Serve(*telemetryAddr, cfg.Instruments, wd)
		if err != nil {
			fail(err)
		}
		defer ep.Close()
		fmt.Fprintf(os.Stderr, "rank %d: telemetry on http://%s/metrics (health on /healthz and /readyz, pprof under /debug/pprof/)\n", *rank, ep.Addr)
	}

	// The blame estimator lives in the controller's process (rank 0 in
	// this deployment), so only the host's scoreboard carries data.
	if *scoreboard > 0 && *rank == 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*scoreboard)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = telemetry.WriteScoreboard(os.Stderr, ins.Snapshot())
				}
			}
		}()
	}

	flushTrace := func() {
		if *tracePath == "" {
			return
		}
		path := rankPath(*tracePath, *rank)
		if err := writeTrace(path, tr2); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: trace write failed: %v\n", *rank, err)
			return
		}
		fmt.Fprintf(os.Stderr, "rank %d: trace (%d events, %d dropped) written to %s\n",
			*rank, tr2.Len(), tr2.Dropped(), path)
	}

	// Graceful shutdown: an operator's Ctrl-C (or a scheduler's SIGTERM)
	// used to kill the process with the black box unread. Now it flushes
	// an operator-requested postmortem bundle (rank 0 with -postmortem-dir)
	// and any requested trace before exiting with the conventional
	// 128+signal status.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "rank %d: %v: flushing flight recorder\n", *rank, sig)
		if rec != nil {
			if path, err := rec.Capture("operator-requested", tr2.Now(), nil, wd.State()); err != nil {
				fmt.Fprintf(os.Stderr, "rank %d: postmortem capture failed: %v\n", *rank, err)
			} else if path != "" {
				fmt.Fprintf(os.Stderr, "rank %d: postmortem bundle written to %s\n", *rank, path)
			}
		}
		flushTrace()
		code := 130 // SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()

	start := time.Now()
	rep, err := live.RunWorker(cfg, tr, *rank == 0)
	if err != nil {
		fail(err)
	}
	if *scoreboard > 0 && *rank == 0 {
		_ = telemetry.WriteScoreboard(os.Stderr, ins.Snapshot())
	}
	fmt.Fprintf(os.Stderr, "rank %d: done in %s\n", *rank, time.Since(start).Round(time.Millisecond))
	flushTrace()
	if rec != nil && len(rec.Written()) > 0 {
		fmt.Fprintf(os.Stderr, "rank %d: %d postmortem bundle(s) in %s (inspect with preduce-postmortem)\n",
			*rank, len(rec.Written()), *postmortemDir)
	}
	if *commStats {
		fmt.Fprintf(os.Stderr, "rank %d: comms %s\n", *rank, rep.Comms.String())
	}
	if *rank == 0 {
		fmt.Printf("averaged-model accuracy: %.3f  groups: %d\n", rep.FinalAccuracy, rep.Groups)
	}
}

// elasticSchedule builds the flag-driven membership schedule: parked ranks
// [initial, n) join one per step groups starting at joinAfter, and members
// drain highest-first down to scaleTo, one per step groups starting at
// drainAfter. The canonical 8→12→6 sweep over 12 addresses is
// `-initial 8 -join-after 20 -drain-after 60 -scale-to 6 -scale-step 10`.
func elasticSchedule(n, initial, joinAfter, drainAfter, scaleTo, step int) hetero.ElasticSchedule {
	if step <= 0 {
		return nil
	}
	var s hetero.ElasticSchedule
	if joinAfter > 0 {
		at := joinAfter
		for w := initial; w < n; w++ {
			s = append(s, hetero.ElasticEvent{Worker: w, AfterUpdates: at, Kind: hetero.ElasticJoin})
			at += step
		}
	}
	if drainAfter > 0 && scaleTo > 0 {
		at := drainAfter
		for w := n - 1; w >= scaleTo; w-- {
			s = append(s, hetero.ElasticEvent{Worker: w, AfterUpdates: at, Kind: hetero.ElasticDrain})
			at += step
		}
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].AfterUpdates < s[j].AfterUpdates })
	return s
}

// rankPath inserts ".r<rank>" before the path's extension ("out.json" →
// "out.r0.json"), so all ranks can share one -trace value without
// clobbering each other's file.
func rankPath(path string, rank int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.r%d%s", strings.TrimSuffix(path, ext), rank, ext)
}

// writeTrace exports the tracer: Chrome trace-event JSON by default,
// streaming JSONL when the path ends in ".jsonl".
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return trace.WriteJSONL(f, tr.Events())
	}
	return trace.WriteChrome(f, tr.Events())
}

// parseStraggle parses "rank:dur" (e.g. "1:30ms") into a straggler
// injection target.
func parseStraggle(s string, n int) (int, time.Duration, error) {
	rankSpec, durSpec, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("straggle %q: want rank:dur (e.g. 1:30ms)", s)
	}
	var r int
	if _, err := fmt.Sscanf(strings.TrimSpace(rankSpec), "%d", &r); err != nil {
		return 0, 0, fmt.Errorf("straggle rank %q: %v", rankSpec, err)
	}
	if r < 0 || r >= n {
		return 0, 0, fmt.Errorf("straggle rank %d outside [0,%d)", r, n)
	}
	d, err := time.ParseDuration(strings.TrimSpace(durSpec))
	if err != nil {
		return 0, 0, fmt.Errorf("straggle duration %q: %v", durSpec, err)
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("straggle duration must be positive")
	}
	return r, d, nil
}

// parsePartition parses "r1,r2,...@from[:until]" into a timed transport
// partition: the listed ranks are cut off from the rest of the world between
// the two offsets (relative to transport creation); omitting ":until" means
// the partition never heals.
func parsePartition(s string, n int) (transport.Partition, error) {
	var p transport.Partition
	ranksSpec, window, ok := strings.Cut(s, "@")
	if !ok {
		return p, fmt.Errorf("partition %q: want ranks@from[:until]", s)
	}
	for _, f := range strings.Split(ranksSpec, ",") {
		var r int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &r); err != nil {
			return p, fmt.Errorf("partition rank %q: %v", f, err)
		}
		if r < 0 || r >= n {
			return p, fmt.Errorf("partition rank %d outside [0,%d)", r, n)
		}
		p.Ranks = append(p.Ranks, r)
	}
	fromSpec, untilSpec, hasUntil := strings.Cut(window, ":")
	from, err := time.ParseDuration(fromSpec)
	if err != nil {
		return p, fmt.Errorf("partition start %q: %v", fromSpec, err)
	}
	p.From = from
	if hasUntil {
		until, err := time.ParseDuration(untilSpec)
		if err != nil {
			return p, fmt.Errorf("partition end %q: %v", untilSpec, err)
		}
		p.Until = until
	}
	return p, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
