// Command preduce-analyze merges per-rank JSONL traces (or one sim
// trace) onto an aligned timeline, runs the critical-path / blame
// analysis, and prints a byte-reproducible report.
//
//	preduce-analyze [flags] trace.jsonl [trace.r1.jsonl ...]
//
// Flags:
//
//	-top N        groups shown in the "top groups" table (default 10)
//	-csv DIR      also write iters.csv, groups.csv, blame.csv to DIR
//	-chrome FILE  also export the merged timeline as a Chrome trace
//	-validate     run the merged-timeline structural checks and fail
//	              on violation (same checks as preduce-tracecheck)
//	-slack SEC    clock-error slack for -validate (default 0.005)
//
// The report, CSVs and Chrome export are deterministic: identical
// input bytes produce identical output bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"partialreduce/internal/analyze"
	"partialreduce/internal/trace"
)

func main() {
	top := flag.Int("top", 10, "groups shown in the top-groups table")
	csvDir := flag.String("csv", "", "directory to write iters/groups/blame CSVs (created if missing)")
	chrome := flag.String("chrome", "", "write the merged timeline as a Chrome trace to this file")
	validate := flag.Bool("validate", false, "run merged-timeline structural checks and fail on violation")
	slack := flag.Float64("slack", 0, "clock-error slack in seconds for -validate (default 0.005)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: preduce-analyze [flags] trace.jsonl [trace.r1.jsonl ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	m, err := analyze.MergeFiles(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *validate {
		if _, err := analyze.ValidateMerged(m, *slack); err != nil {
			fatal(err)
		}
	}
	report, err := analyze.Analyze(m)
	if err != nil {
		fatal(err)
	}
	if err := analyze.WriteReport(os.Stdout, report, *top); err != nil {
		fatal(err)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, f := range []struct {
			name  string
			write func(*os.File) error
		}{
			{"iters.csv", func(f *os.File) error { return analyze.WriteIterCSV(f, report) }},
			{"groups.csv", func(f *os.File) error { return analyze.WriteGroupCSV(f, report) }},
			{"blame.csv", func(f *os.File) error { return analyze.WriteBlameCSV(f, report) }},
		} {
			if err := writeFile(filepath.Join(*csvDir, f.name), f.write); err != nil {
				fatal(err)
			}
		}
	}
	if *chrome != "" {
		if err := writeFile(*chrome, func(f *os.File) error {
			return trace.WriteChrome(f, m.Events)
		}); err != nil {
			fatal(err)
		}
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preduce-analyze:", err)
	os.Exit(1)
}
