// Command preduce-sim runs a single simulated training configuration and
// prints its metrics and accuracy curve.
//
// Usage:
//
//	preduce-sim -strategy "DYN P=3" -workload resnet34/cifar10 -n 8 -hl 3
//	preduce-sim -strategy AR -workload resnet18/imagenet -n 32 -env production
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"partialreduce/internal/cluster"
	"partialreduce/internal/experiments"
	"partialreduce/internal/model"
)

func main() {
	strategy := flag.String("strategy", "CON P=3",
		`strategy: AR | ER | AD | PS BSP | PS ASP | PS HETE | PS BK-<b> | CON P=<p> | DYN P=<p>`)
	workload := flag.String("workload", "resnet34/cifar10",
		"workload: <profile>/<dataset> with profile in {resnet18,resnet34,vgg16,vgg19,densenet121} and dataset in {cifar10,cifar100,imagenet}")
	n := flag.Int("n", 8, "number of workers")
	hl := flag.Int("hl", 1, "heterogeneity level (workers sharing one GPU)")
	env := flag.String("env", "hl", "environment: hl | production")
	seed := flag.Int64("seed", 1, "master seed")
	quickFlag := flag.Bool("quick", false, "reduced budget and threshold")
	curve := flag.Bool("curve", false, "print the full accuracy curve")
	flag.Parse()

	w, err := parseWorkload(*workload)
	if err != nil {
		fail(err)
	}
	opts := experiments.Options{Seed: *seed, Quick: *quickFlag}
	if *quickFlag {
		w = w.Quick()
	}
	_ = opts

	cell := experiments.Cell{Workload: w, N: *n, Seed: *seed}
	switch *env {
	case "hl":
		cell.Env, cell.HL = experiments.EnvHL, *hl
	case "production":
		cell.Env = experiments.EnvProduction
	default:
		fail(fmt.Errorf("unknown environment %q", *env))
	}

	s, err := experiments.StrategyFor(*strategy)
	if err != nil {
		fail(err)
	}
	cfg, err := cell.Build()
	if err != nil {
		fail(err)
	}
	c, err := cluster.New(cfg, s.Name())
	if err != nil {
		fail(err)
	}
	res, err := s.Run(c)
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload:   %s (threshold %.2f)\n", w.Name, w.Threshold)
	fmt.Printf("cluster:    N=%d, %s\n", *n, cfg.Hetero.Name())
	fmt.Printf("result:     %s\n", res)
	if *curve {
		fmt.Println("curve (time, updates, accuracy):")
		for _, p := range res.Curve {
			fmt.Printf("  %10.1f %8d %.4f\n", p.Time, p.Updates, p.Accuracy)
		}
	}
}

func parseWorkload(s string) (experiments.Workload, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return experiments.Workload{}, fmt.Errorf("workload %q: want <profile>/<dataset>", s)
	}
	prof, err := model.ProfileByName(parts[0])
	if err != nil {
		return experiments.Workload{}, err
	}
	switch parts[1] {
	case "cifar10":
		return experiments.CIFAR10Workload(prof), nil
	case "cifar100":
		return experiments.CIFAR100Workload(prof), nil
	case "imagenet":
		return experiments.ImageNetWorkload(prof), nil
	}
	return experiments.Workload{}, fmt.Errorf("unknown dataset %q", parts[1])
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
