// Command preduce-tracecheck validates an exported Chrome trace-event
// JSON file against the schema the repo's exporters guarantee (see
// trace.ValidateChrome): a {"traceEvents": […]} document whose events
// carry a name, a known phase, integer pid/tid, and non-negative
// timestamps/durations. It prints the event count on success and exits
// non-zero on any violation — `make trace-smoke` runs it over both the
// simulator and live traces.
//
// Usage:
//
//	preduce-tracecheck trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"partialreduce/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: preduce-tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad = true
			continue
		}
		n, err := trace.ValidateChrome(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok (%d events)\n", path, n)
	}
	if bad {
		os.Exit(1)
	}
}
