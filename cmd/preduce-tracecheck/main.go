// Command preduce-tracecheck validates exported traces.
//
// Chrome trace-event JSON files (.json) are checked against the schema
// the repo's exporters guarantee (see trace.ValidateChrome): a
// {"traceEvents": […]} document whose events carry a name, a known
// phase, integer pid/tid, and non-negative timestamps/durations.
//
// JSONL event logs (.jsonl) are parsed strictly (every line must be a
// known event), then all .jsonl arguments are merged onto one aligned
// timeline — estimating per-rank clock offsets when they come from
// different ranks — and the merged output is structurally validated
// (see analyze.ValidateMerged): monotone timestamps after offset
// correction, no orphan span ends, no orphan group membership, and
// matched ready instants inside their signal-wait spans.
//
// It prints per-file event counts on success and exits non-zero on any
// violation — `make trace-smoke` runs it over the simulator trace, each
// live rank's trace, and the merged multi-rank timeline.
//
// Usage:
//
//	preduce-tracecheck trace.json [more.json ...] [run.r0.jsonl run.r1.jsonl ...]
package main

import (
	"fmt"
	"os"
	"strings"

	"partialreduce/internal/analyze"
	"partialreduce/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: preduce-tracecheck <trace.json|trace.jsonl> [...]")
		os.Exit(2)
	}
	bad := false
	var jsonl []analyze.RankTrace
	for _, path := range os.Args[1:] {
		if strings.HasSuffix(path, ".jsonl") {
			t, err := analyze.ReadTraceFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
				bad = true
				continue
			}
			fmt.Printf("%s: ok (%d events, rank %d)\n", path, len(t.Events), t.Rank)
			jsonl = append(jsonl, t)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad = true
			continue
		}
		n, err := trace.ValidateChrome(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok (%d events)\n", path, n)
	}
	if len(jsonl) > 0 && !bad {
		m, err := analyze.Merge(jsonl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merge: INVALID: %v\n", err)
			os.Exit(1)
		}
		n, err := analyze.ValidateMerged(m, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merged timeline: INVALID: %v\n", err)
			os.Exit(1)
		}
		if len(jsonl) > 1 {
			offs := make([]string, 0, len(m.Offsets))
			for _, o := range m.Offsets {
				offs = append(offs, fmt.Sprintf("r%d:%+.6fs", o.Rank, o.Offset))
			}
			fmt.Printf("merged: ok (%d events, %d ranks, host %d, offsets %s)\n",
				n, len(m.Ranks), m.HostRank, strings.Join(offs, " "))
		} else {
			fmt.Printf("merged: ok (%d events, single trace)\n", n)
		}
	}
	if bad {
		os.Exit(1)
	}
}
