# Tier-1 verification (see ROADMAP.md): the full build + test sweep, plus a
# race-detector pass over the concurrency-heavy packages (transport mesh,
# collectives, live runtime, controller, public API). `make ci` is what a
# commit must keep green.

GO ?= go

# Packages whose tests exercise real goroutine concurrency and therefore run
# under the race detector as part of tier-1.
RACE_PKGS := ./internal/transport/ ./internal/collective/ ./internal/live/ ./internal/controller/ ./internal/policy/ ./internal/core/ ./internal/engine/ ./internal/tensor/ ./internal/bufpool/ ./internal/analyze/ ./internal/health/ .

.PHONY: ci vet build test race allocgate chaos trace-smoke postmortem-smoke chargeguard bench benchgate fuzz clean

ci: vet build test race allocgate chaos trace-smoke postmortem-smoke chargeguard benchgate-quick

# Charge-drift guard: the simulator's traffic accounting is folded into the
# engine's SimEnv (GroupRing/WorldRing/Exchanges), so a strategy that calls
# cluster.ChargeRing/ChargeExchange directly has bypassed the environment and
# its comm columns can silently diverge from the event timeline. Only
# internal/engine (the fold) and internal/cluster (the definitions and their
# tests) may mention the charge calls.
chargeguard:
	@bad=$$(grep -rnE '\.Charge(Ring|Exchange)\(' internal cmd examples \
		| grep -v '^internal/engine/' | grep -v '^internal/cluster/' || true); \
	if [ -n "$$bad" ]; then \
		echo "direct traffic charging outside internal/engine + internal/cluster:"; \
		echo "$$bad"; exit 1; \
	fi; echo "chargeguard: ok"

# staticcheck is optional tooling: run it when the binary is on PATH, skip
# quietly otherwise so ci stays green on minimal containers.
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Zero-allocation gate: the steady-state data plane (pool Get/Put, Mem
# Send/RecvInto round trip, full segmented AllReduceSum, kernel dispatch)
# must not touch the heap. The assertions skip themselves under -race (whose
# instrumentation allocates), so ci runs them in a dedicated non-race pass.
allocgate:
	$(GO) test ./internal/bufpool/ -run TestSteadyStateGetPutAllocFree -count 1
	$(GO) test ./internal/transport/ -run TestRecvIntoSteadyStateAllocFree -count 1
	$(GO) test ./internal/collective/ -run TestAllReduceSteadyStateAllocFree -count 1
	$(GO) test ./internal/tensor/ -run TestAddScaledDispatchAllocFree -count 1

# Seeded chaos soak: worker fail-stop + controller crash (warm and cold) +
# timed network partition + elastic join/drain staircase composed in one run,
# swept across seeds under the race detector. ci runs the default sweep;
# raise CHAOS_SEEDS for a longer soak. Any failure reproduces from the
# logged seed.
CHAOS_SEEDS ?= 4
chaos:
	PREDUCE_CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race ./internal/live/ -run TestChaosSoak -count 1
	$(GO) test -race ./internal/policy/ -count 1

# End-to-end observability smoke: a seeded simulator trace export, a seeded
# three-rank live run serving /metrics+pprof (scraped mid-run), and a Chrome
# trace-event schema check over every exported trace.
trace-smoke:
	sh scripts/trace_smoke.sh

# End-to-end health-plane smoke: a seeded three-rank live run with an
# injected straggler and the watchdog armed; /healthz must flip to 503 with
# blame-spike firing, exactly one postmortem bundle must land in the
# recorder directory, and preduce-postmortem must validate and render it
# (including the blame report recomputed from the bundled trace ring).
postmortem-smoke:
	sh scripts/postmortem_smoke.sh

# Data-plane benchmark sweep; machine-readable results land in
# BENCH_dataplane.json (test2json stream, one JSON object per line). The
# traced all-reduce benchmark is recorded alongside the untraced one, and
# the trace-overhead gate bounds the traced/untraced regression at <3%.
BENCHTIME ?= 1s
bench:
	$(GO) test -p 1 ./internal/collective/ ./internal/transport/ ./internal/tensor/ \
		-run '^$$' -bench 'BenchmarkAllReduceSum$$|BenchmarkAllReduceSumTraced$$|BenchmarkRingSegmented|BenchmarkEncodeFrame|BenchmarkSendRecvInto|BenchmarkAddScaled' \
		-benchmem -benchtime $(BENCHTIME) -json > BENCH_dataplane.json
	@grep -oE '"Output":"(Benchmark[^"]*|[^"]*ns/op[^"]*)"' BENCH_dataplane.json | \
		sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//' | \
		awk '/^Benchmark/ { name=$$0; next } /ns\/op/ { print name $$0 }'
	PREDUCE_TRACEGATE=1 $(GO) test ./internal/collective/ -run TestTraceOverheadGate -count 1 -v
	$(GO) test ./internal/policy/ -run '^$$' -bench BenchmarkPolicyDecide -benchmem -benchtime $(BENCHTIME)
	PREDUCE_POLICYGATE=1 $(GO) test ./internal/policy/ -run TestPolicyDecideGate -count 1 -v
	@echo "wrote BENCH_dataplane.json"

# Benchmark regression gate: rerun the data-plane sweep and compare against
# the committed BENCH_dataplane.json baseline. Fails on a throughput
# regression beyond the tolerance or on ANY allocs/op increase. ci runs the
# quick variant (100ms benchtime, widened tolerance — chiefly an alloc and
# gross-slowdown gate); run `make benchgate` for the enforcing 1s/15% pass.
benchgate:
	sh scripts/benchgate.sh

.PHONY: benchgate-quick
benchgate-quick:
	BENCH_QUICK=1 sh scripts/benchgate.sh

# Short fuzz pass over the wire codec (longer runs: raise FUZZTIME).
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzFrameCodec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/policy/ -run '^$$' -fuzz FuzzPolicyStateCodec -fuzztime $(FUZZTIME)

# BENCH_dataplane.json is the committed benchgate baseline, so clean
# leaves it alone; refresh it with `make bench`.
clean:
	$(GO) clean ./...
