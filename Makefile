# Tier-1 verification (see ROADMAP.md): the full build + test sweep, plus a
# race-detector pass over the concurrency-heavy packages (transport mesh,
# collectives, live runtime, controller, public API). `make ci` is what a
# commit must keep green.

GO ?= go

# Packages whose tests exercise real goroutine concurrency and therefore run
# under the race detector as part of tier-1.
RACE_PKGS := ./internal/transport/ ./internal/collective/ ./internal/live/ ./internal/controller/ ./internal/core/ .

.PHONY: ci vet build test race fuzz clean

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Short fuzz pass over the wire codec (longer runs: raise FUZZTIME).
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzFrameCodec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
