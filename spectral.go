package preduce

import (
	"partialreduce/internal/spectral"
	"partialreduce/internal/tensor"
)

// Spectral analysis, re-exported from internal/spectral (§3.2 of the paper).
type (
	// GroupDist is a probability distribution over P-Reduce groups.
	GroupDist = spectral.GroupDist
	// Matrix is a dense symmetric matrix (E[W] and friends).
	Matrix = tensor.Matrix
)

// MeanW builds the expected synchronization matrix E[W_k] of a group
// distribution (Eq. 4).
func MeanW(d GroupDist) (*Matrix, error) { return spectral.MeanW(d) }

// Rho returns the spectral bound ρ = max(|λ₂|, |λ_N|) of E[W] (Eq. 6).
func Rho(meanW *Matrix) (float64, error) { return spectral.Rho(meanW) }

// RhoBar returns Theorem 1's network-error coefficient ρ̄.
func RhoBar(rho float64) float64 { return spectral.RhoBar(rho) }

// UniformGroups returns the homogeneous-environment distribution where every
// P-subset of N workers is equally likely.
func UniformGroups(n, p int) GroupDist { return spectral.UniformGroups(n, p) }

// LearningRateFeasible checks Theorem 1's step-size condition (Eq. 7).
func LearningRateFeasible(gamma, lipschitz float64, n, p int, rho float64) bool {
	return spectral.LearningRateFeasible(gamma, lipschitz, n, p, rho)
}

// UniformRho returns the closed-form ρ = 1 − (P−1)/(N−1) of the uniform
// group distribution.
func UniformRho(n, p int) float64 { return spectral.UniformRho(n, p) }
