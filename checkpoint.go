package preduce

import (
	"io"

	"partialreduce/internal/checkpoint"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/optim"
)

// Checkpoint is a serializable training-state snapshot: model parameters,
// optimizer velocity, and counters.
type Checkpoint = checkpoint.State

// SGD is the momentum optimizer (exposed for checkpoint restore in custom
// training loops).
type SGD = optim.SGD

// NewSGD returns a momentum-SGD optimizer over n parameters.
func NewSGD(cfg OptimizerConfig, n int) *SGD { return optim.NewSGD(cfg, n) }

// SaveCheckpoint writes a model's (and optionally its optimizer's) state.
// Pass a nil optimizer for inference-only snapshots.
func SaveCheckpoint(w io.Writer, m Model, opt *SGD, iter int) error {
	s := &Checkpoint{Params: m.Params().Clone(), Iter: int64(iter)}
	if opt != nil {
		vel, step := opt.State()
		s.Velocity = vel
		s.Step = int64(step)
	}
	return checkpoint.Write(w, s)
}

// LoadCheckpoint reads a snapshot and restores it into m (and opt when both
// are non-nil and the snapshot carries optimizer state). It returns the
// snapshot for access to the counters.
func LoadCheckpoint(r io.Reader, m Model, opt *SGD) (*Checkpoint, error) {
	s, err := checkpoint.Read(r)
	if err != nil {
		return nil, err
	}
	m.SetParams(s.Params)
	if opt != nil && len(s.Velocity) > 0 {
		if err := opt.Restore(s.Velocity, int(s.Step)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WriteCurvesCSV exports run curves as CSV (strategy,time_s,updates,accuracy).
func WriteCurvesCSV(w io.Writer, results ...*Result) error {
	return metrics.WriteCurvesCSV(w, results...)
}

// WriteSummaryCSV exports one CSV row per run with the Table 1 metrics.
func WriteSummaryCSV(w io.Writer, results ...*Result) error {
	return metrics.WriteSummaryCSV(w, results...)
}

// ReplayTrace builds a heterogeneity model replaying recorded per-batch
// durations (CSV columns: worker,seconds).
func ReplayTrace(r io.Reader) (HeteroModel, error) {
	return hetero.ReadReplayCSV(r)
}
