package analyze

// End-to-end live differential: a real 3-rank multi-process run (Mem
// transport, one tracer and instrument set per rank, an injected
// straggler) must merge cleanly, convict the straggler in both the
// offline blame ledger and the online /metrics gauges, and reconcile
// the two estimates.

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"partialreduce/internal/data"
	"partialreduce/internal/live"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/telemetry"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

const straggler = 2

func runStragglerWorld(t *testing.T) ([]RankTrace, *metrics.Instruments) {
	t.Helper()
	const n, iters = 3, 50
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 4, Dim: 12, Examples: 1600, Separation: 3.2, Noise: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	base := live.Config{
		N: n, P: 2,
		Spec:      model.Spec{Inputs: 12, Hidden: []int{16}, Classes: 4},
		Seed:      9,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: optim.Config{LR: 0.05, Momentum: 0.9},
		Iters:     iters,
		ComputeDelay: func(worker, iter int) time.Duration {
			if worker == straggler {
				return 3 * time.Millisecond
			}
			return 0
		},
	}

	eps := transport.NewMem(n)
	tracers := make([]*trace.Tracer, n)
	instruments := make([]*metrics.Instruments, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		cfg := base
		tracers[r] = trace.New(trace.NewWallClock(), 0)
		tracers[r].SetOrigin(int32(r))
		instruments[r] = metrics.NewInstruments(n)
		cfg.Tracer = tracers[r]
		cfg.Instruments = instruments[r]
		r := r
		wg.Add(1)
		go func(cfg live.Config) {
			defer wg.Done()
			_, errs[r] = live.RunWorker(cfg, eps[r], r == 0)
		}(cfg)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	tracks := make([]RankTrace, n)
	for r := 0; r < n; r++ {
		tracks[r] = RankTrace{Rank: r, Events: tracers[r].Events()}
	}
	return tracks, instruments[0] // the controller ran in rank 0's process
}

func TestLiveThreeRankMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("live multi-rank run in -short mode")
	}
	tracks, hostIns := runStragglerWorld(t)

	m, err := Merge(tracks)
	if err != nil {
		t.Fatal(err)
	}
	if m.HostRank != 0 {
		t.Fatalf("host rank %d, want 0", m.HostRank)
	}
	if _, err := ValidateMerged(m, 0); err != nil {
		t.Fatal(err)
	}
	// All ranks shared one process clock, so the true offsets are zero;
	// the estimator must land within signal-latency distance of it.
	for _, o := range m.Offsets {
		if math.Abs(o.Offset) > 50e-3 {
			t.Fatalf("rank %d offset %.6fs, want ~0 (shared clock)", o.Rank, o.Offset)
		}
	}

	rep, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) == 0 {
		t.Fatal("no groups reconstructed")
	}

	// The injected straggler must top the blame ledger.
	var blames [3]float64
	var waits [3]float64
	for _, rs := range rep.Ranks {
		if rs.Rank >= 0 && rs.Rank < 3 {
			blames[rs.Rank] = rs.Blame
			waits[rs.Rank] = rs.Wait
		}
	}
	if blames[straggler] <= 0 {
		t.Fatalf("straggler blame = %v, want > 0", blames[straggler])
	}
	for r, b := range blames {
		if r != straggler && b >= blames[straggler] {
			t.Fatalf("rank %d blame %.6f >= straggler blame %.6f", r, b, blames[straggler])
		}
	}

	// Blame totals reconcile with the observed waiting: per group the
	// induced wait is the members' arrival-to-formation waits minus the
	// controller's (tiny) formation latency, so the two totals must
	// agree within a generous latency allowance.
	totalBlame, totalWait := 0.0, 0.0
	for _, g := range rep.Groups {
		totalBlame += g.Induced
	}
	for _, w := range waits {
		totalWait += w
	}
	if totalBlame > totalWait+1e-9 {
		t.Fatalf("blame %.6fs exceeds total observed wait %.6fs", totalBlame, totalWait)
	}
	if d := totalWait - totalBlame; d > 0.3*totalWait+0.05 {
		t.Fatalf("blame %.6fs vs observed group waits %.6fs: gap %.6fs exceeds tolerance", totalBlame, totalWait, d)
	}

	// Online estimator (controller-fed, rank 0's instruments) agrees
	// with the offline ledger and convicts the same rank.
	snap := hostIns.Snapshot()
	if len(snap.Blame) != 3 {
		t.Fatalf("online blame arity %d", len(snap.Blame))
	}
	if snap.Blame[straggler] <= 0 {
		t.Fatalf("online straggler blame = %v, want > 0", snap.Blame[straggler])
	}
	for r, b := range snap.Blame {
		if r != straggler && b >= snap.Blame[straggler] {
			t.Fatalf("online: rank %d blame %.6f >= straggler %.6f", r, b, snap.Blame[straggler])
		}
	}
	onlineTotal := 0.0
	for _, b := range snap.Blame {
		onlineTotal += b
	}
	if d := math.Abs(onlineTotal - totalBlame); d > 0.3*totalBlame+0.05 {
		t.Fatalf("online blame %.6fs vs offline %.6fs: gap %.6fs exceeds tolerance", onlineTotal, totalBlame, d)
	}

	// The Prometheus rendering exposes the gauges, nonzero, with the
	// straggler's series present.
	var sb strings.Builder
	if err := telemetry.WriteMetrics(&sb, snap); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, metric := range []string{
		"preduce_worker_wait_seconds_total",
		"preduce_worker_blame_seconds_total",
		"preduce_worker_blame_recent",
		"preduce_worker_critical_total",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("/metrics missing %s", metric)
		}
	}
	if strings.Contains(text, "preduce_worker_blame_seconds_total{worker=\"2\"} 0\n") {
		t.Fatal("/metrics shows zero blame for the injected straggler")
	}

	// And the scoreboard ranks the straggler first.
	sb.Reset()
	if err := telemetry.WriteScoreboard(&sb, snap); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("scoreboard too short:\n%s", sb.String())
	}
	first := strings.Fields(lines[2])
	if len(first) == 0 || first[0] != "2" {
		t.Fatalf("scoreboard top rank = %q, want straggler 2:\n%s", first, sb.String())
	}
}
