package analyze

// Byte-reproducible report writers. Everything is emitted in fixed
// order with fixed 'f'-format float precision — no maps are iterated,
// no locale, no timestamps of the analysis itself — so the same input
// trace always produces identical bytes (pinned by the golden tests).

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// fsec formats seconds with fixed nanosecond precision.
func fsec(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 9, 64)
}

// fpct formats a ratio as a fixed-precision percentage.
func fpct(num, den float64) string {
	if den <= 0 {
		return "-"
	}
	return strconv.FormatFloat(100*num/den, 'f', 1, 64) + "%"
}

type table struct {
	rows [][]string
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) error {
	widths := []int(nil)
	for _, r := range t.rows {
		for i, c := range r {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		var sb strings.Builder
		for i, c := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				// First column left-aligned, the rest right-aligned.
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			} else {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				sb.WriteString(c)
			}
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport renders the human-readable analysis. topGroups bounds the
// per-group table (≤0 means 10).
func WriteReport(w io.Writer, r *Report, topGroups int) error {
	if topGroups <= 0 {
		topGroups = 10
	}
	ew := &errWriter{w: w}
	p := func(format string, args ...any) { ew.printf(format, args...) }

	p("P-Reduce trace analysis\n=======================\n")
	p("events:      %d\n", len(r.Merged.Events))
	rankList := make([]string, 0, len(r.Merged.Ranks))
	for _, rk := range r.Merged.Ranks {
		rankList = append(rankList, strconv.Itoa(rk))
	}
	if len(r.Merged.Ranks) == 1 && r.Merged.Ranks[0] < 0 {
		p("traces:      1 (single, unstamped)\n")
	} else {
		p("traces:      %d (ranks %s)\n", len(r.Merged.Ranks), strings.Join(rankList, ","))
	}
	p("host rank:   %d\n", r.Merged.HostRank)
	p("groups:      %d\n", len(r.Groups))
	p("iterations:  %d worker-iteration buckets\n", len(r.Iters))
	if len(r.Merged.Ranks) > 1 {
		p("\nClock offsets (host clock − rank clock)\n")
		t := &table{}
		t.row("rank", "offset_s", "pairs", "agree", "bound_width_s")
		for _, o := range r.Merged.Offsets {
			if o.Rank == r.Merged.HostRank {
				t.row(strconv.Itoa(o.Rank), "host", "-", "-", "-")
				continue
			}
			t.row(strconv.Itoa(o.Rank), fsec(o.Offset),
				strconv.Itoa(o.Pairs), strconv.Itoa(o.Agree), fsec(o.Hi-o.Lo))
		}
		if ew.err == nil {
			ew.err = t.write(w)
		}
	}

	p("\nPer-rank phase totals (seconds)\n")
	t := &table{}
	t.row("rank", "compute", "comm", "retry", "group-wait", "signal-wait", "other", "total", "waiting")
	for _, rs := range r.Ranks {
		total := 0.0
		for _, v := range rs.Phases {
			total += v
		}
		waiting := rs.Phases[PhaseGroupWait] + rs.Phases[PhaseSignalWait]
		t.row(strconv.Itoa(rs.Rank),
			fsec(rs.Phases[PhaseCompute]), fsec(rs.Phases[PhaseComm]),
			fsec(rs.Phases[PhaseRetry]), fsec(rs.Phases[PhaseGroupWait]),
			fsec(rs.Phases[PhaseSignalWait]), fsec(rs.Phases[PhaseOther]),
			fsec(total), fpct(waiting, total))
	}
	if ew.err == nil {
		ew.err = t.write(w)
	}

	p("\nBlame ledger (seconds of other ranks' time each rank consumed)\n")
	blame := append([]RankStat(nil), r.Ranks...)
	sort.SliceStable(blame, func(i, j int) bool {
		if blame[i].Blame != blame[j].Blame {
			return blame[i].Blame > blame[j].Blame
		}
		return blame[i].Rank < blame[j].Rank
	})
	totalBlame := 0.0
	for _, rs := range blame {
		totalBlame += rs.Blame
	}
	t = &table{}
	t.row("rank", "groups", "critical", "blame_s", "share", "waited_s", "critpath_s")
	for _, rs := range blame {
		t.row(strconv.Itoa(rs.Rank), strconv.Itoa(rs.Groups),
			strconv.Itoa(rs.Critical), fsec(rs.Blame), fpct(rs.Blame, totalBlame),
			fsec(rs.Wait), fsec(rs.CritPath))
	}
	if ew.err == nil {
		ew.err = t.write(w)
	}

	p("\nRun critical path (%s → %s, attributed to last-arriving ranks)\n",
		fsec(r.Crit.Start), fsec(r.Crit.End))
	t = &table{}
	t.row("compute", "comm", "retry", "group-wait", "signal-wait", "other", "unattributed")
	t.row(fsec(r.Crit.Phases[PhaseCompute]), fsec(r.Crit.Phases[PhaseComm]),
		fsec(r.Crit.Phases[PhaseRetry]), fsec(r.Crit.Phases[PhaseGroupWait]),
		fsec(r.Crit.Phases[PhaseSignalWait]), fsec(r.Crit.Phases[PhaseOther]),
		fsec(r.Crit.Unattributed))
	if ew.err == nil {
		ew.err = t.write(w)
	}

	p("\nTop groups by induced wait (top %d of %d)\n", topGroups, len(r.Groups))
	top := append([]GroupStat(nil), r.Groups...)
	sort.SliceStable(top, func(i, j int) bool {
		if top[i].Induced != top[j].Induced {
			return top[i].Induced > top[j].Induced
		}
		return top[i].Seq < top[j].Seq
	})
	if len(top) > topGroups {
		top = top[:topGroups]
	}
	t = &table{}
	t.row("seq", "formed_s", "iter", "size", "critical", "induced_s", "defer_s", "members")
	for _, g := range top {
		mem := make([]string, len(g.Members))
		for i, mrk := range g.Members {
			mem[i] = strconv.Itoa(mrk)
		}
		t.row(strconv.FormatInt(g.Seq, 10), fsec(g.Formed), strconv.Itoa(g.Iter),
			strconv.Itoa(len(g.Members)), strconv.Itoa(g.Critical),
			fsec(g.Induced), fsec(g.Defer), strings.Join(mem, ","))
	}
	if ew.err == nil {
		ew.err = t.write(w)
	}
	return ew.err
}

// WriteIterCSV emits the per-(rank, iteration) phase partition.
func WriteIterCSV(w io.Writer, r *Report) error {
	ew := &errWriter{w: w}
	ew.printf("rank,iter,start_s,end_s,wall_s,compute_s,comm_s,retry_s,group_wait_s,signal_wait_s,other_s\n")
	for _, it := range r.Iters {
		ew.printf("%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			it.Rank, it.Iter, fsec(it.Start), fsec(it.End), fsec(it.Wall()),
			fsec(it.Phases[PhaseCompute]), fsec(it.Phases[PhaseComm]),
			fsec(it.Phases[PhaseRetry]), fsec(it.Phases[PhaseGroupWait]),
			fsec(it.Phases[PhaseSignalWait]), fsec(it.Phases[PhaseOther]))
	}
	return ew.err
}

// WriteGroupCSV emits the reconstructed groups with arrival detail.
func WriteGroupCSV(w io.Writer, r *Report) error {
	ew := &errWriter{w: w}
	ew.printf("seq,formed_s,iter,size,critical,induced_s,defer_s,members,waits_s\n")
	for _, g := range r.Groups {
		mem := make([]string, len(g.Members))
		waits := make([]string, len(g.Waits))
		for i := range g.Members {
			mem[i] = strconv.Itoa(g.Members[i])
			waits[i] = fsec(g.Waits[i])
		}
		ew.printf("%d,%s,%d,%d,%d,%s,%s,%s,%s\n",
			g.Seq, fsec(g.Formed), g.Iter, len(g.Members), g.Critical,
			fsec(g.Induced), fsec(g.Defer),
			strings.Join(mem, ";"), strings.Join(waits, ";"))
	}
	return ew.err
}

// WriteBlameCSV emits the per-rank ledger sorted by blame.
func WriteBlameCSV(w io.Writer, r *Report) error {
	ew := &errWriter{w: w}
	blame := append([]RankStat(nil), r.Ranks...)
	sort.SliceStable(blame, func(i, j int) bool {
		if blame[i].Blame != blame[j].Blame {
			return blame[i].Blame > blame[j].Blame
		}
		return blame[i].Rank < blame[j].Rank
	})
	ew.printf("rank,groups,critical,blame_s,waited_s,critpath_s,compute_s,comm_s,retry_s,group_wait_s,signal_wait_s,other_s\n")
	for _, rs := range blame {
		ew.printf("%d,%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			rs.Rank, rs.Groups, rs.Critical, fsec(rs.Blame), fsec(rs.Wait),
			fsec(rs.CritPath),
			fsec(rs.Phases[PhaseCompute]), fsec(rs.Phases[PhaseComm]),
			fsec(rs.Phases[PhaseRetry]), fsec(rs.Phases[PhaseGroupWait]),
			fsec(rs.Phases[PhaseSignalWait]), fsec(rs.Phases[PhaseOther]))
	}
	return ew.err
}

// errWriter mirrors the trace package's stick-on-first-error writer.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
