// Package analyze is the deterministic trace-analysis engine behind
// cmd/preduce-analyze: it parses the JSONL event logs the trace package
// exports, merges per-rank traces from multi-process live runs onto one
// aligned timeline (estimating each rank's clock offset from matched
// signal/ready and group-formed event pairs), partitions every worker
// iteration into phases (compute, communication, retry backoff, group
// wait, signal wait), reconstructs each P-Reduce group's arrival order,
// and attributes blocked time to the rank that caused it — the offline
// counterpart of the live blame instruments in internal/metrics.
//
// Everything is deterministic: the same input bytes produce the same
// Report, and the report writers use fixed ordering and fixed float
// formatting, so analyzer output is byte-reproducible (the property the
// golden tests pin).
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"partialreduce/internal/trace"
)

// RankTrace is one recording process's event stream: Rank identifies the
// process (-1 when unknown — a simulator trace, or a legacy file with no
// rank stamps), Events its parsed events in file order.
type RankTrace struct {
	Rank   int
	Path   string
	Events []trace.Event
}

// jsonlEvent mirrors one WriteJSONL line. Rank is a pointer so files
// written before the rank field existed parse as "unstamped".
type jsonlEvent struct {
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	Kind  string  `json:"kind"`
	Track int32   `json:"track"`
	Iter  int32   `json:"iter"`
	Rank  *int32  `json:"rank"`
	A     int64   `json:"a"`
	B     int64   `json:"b"`
}

// ParseJSONL parses a JSONL event log (the WriteJSONL format) back into
// events. Blank lines are ignored; an unknown kind name or malformed
// line is an error (the validator depends on strictness here).
func ParseJSONL(r io.Reader) ([]trace.Event, error) {
	var events []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			return nil, fmt.Errorf("analyze: line %d: %w", line, err)
		}
		kind, ok := trace.KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("analyze: line %d: unknown event kind %q", line, je.Kind)
		}
		if je.Dur < 0 {
			return nil, fmt.Errorf("analyze: line %d: negative duration %v", line, je.Dur)
		}
		origin := trace.NoOrigin
		if je.Rank != nil {
			origin = *je.Rank
		}
		events = append(events, trace.Event{
			TS: je.TS, Dur: je.Dur, Kind: kind,
			Track: je.Track, Iter: je.Iter, Origin: origin,
			A: je.A, B: je.B,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return events, nil
}

// rankSuffix matches the ".r<rank>" infix cmd/preduce-live inserts before
// the trace extension — the legacy rank carrier, used only when the
// events themselves are unstamped.
var rankSuffix = regexp.MustCompile(`\.r(\d+)\.[^.]+$`)

// RankFromPath extracts the rank from a ".r<rank>.<ext>" file name, or
// -1 when the name carries none.
func RankFromPath(path string) int {
	m := rankSuffix.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return -1
	}
	r, err := strconv.Atoi(m[1])
	if err != nil {
		return -1
	}
	return r
}

// ReadTraceFile parses one JSONL trace file into a RankTrace. The
// recording rank is taken from the events' rank stamps when present
// (satellite of the rank-stamping fix: the file name is only the
// fallback carrier), else from a ".r<rank>" infix in the file name,
// else -1 (single-trace mode).
func ReadTraceFile(path string) (RankTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return RankTrace{}, fmt.Errorf("analyze: %w", err)
	}
	defer f.Close()
	events, err := ParseJSONL(f)
	if err != nil {
		return RankTrace{}, fmt.Errorf("analyze: %s: %w", path, err)
	}
	rank := -1
	for _, ev := range events {
		if ev.Origin >= 0 {
			rank = int(ev.Origin)
			break
		}
	}
	if rank < 0 {
		rank = RankFromPath(path)
	}
	return RankTrace{Rank: rank, Path: path, Events: events}, nil
}
