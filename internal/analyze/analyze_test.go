package analyze

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"partialreduce/internal/trace"
)

func TestPhaseNames(t *testing.T) {
	for p := Phase(0); p < NumPhase; p++ {
		if p.String() == "" || strings.HasPrefix(p.String(), "phase(") {
			t.Fatalf("phase %d has no name", p)
		}
	}
}

func TestPartitionPrecedence(t *testing.T) {
	// compute [0,2) overlaps group-wait [1,4): compute wins the overlap.
	spans := []phaseSpan{
		{PhaseCompute, 0, 2},
		{PhaseGroupWait, 1, 4},
	}
	ph := partition(spans, 0, 5)
	if ph[PhaseCompute] != 2 {
		t.Fatalf("compute = %v, want 2", ph[PhaseCompute])
	}
	if ph[PhaseGroupWait] != 2 {
		t.Fatalf("group-wait = %v, want 2 (overlap yields to compute)", ph[PhaseGroupWait])
	}
	if ph[PhaseOther] != 1 {
		t.Fatalf("other = %v, want 1 (uncovered [4,5))", ph[PhaseOther])
	}
}

func TestPartitionSumsExactly(t *testing.T) {
	spans := []phaseSpan{
		{PhaseCompute, 0.1, 0.30000000007},
		{PhaseComm, 0.25, 0.4},
		{PhaseSignalWait, 0.4, 0.70000000013},
		{PhaseGroupWait, 0.65, 1.1},
		{PhaseRetry, 1.3, 1.9},
	}
	start, end := 0.05, 2.0000000003
	ph := partition(spans, start, end)
	sum := 0.0
	for _, v := range ph {
		sum += v
	}
	if d := math.Abs(sum - (end - start)); d > 1e-9 {
		t.Fatalf("phase sum off by %g", d)
	}
	// Spans clipped to the window, precedence respected.
	if ph[PhaseCompute] <= 0 || ph[PhaseComm] <= 0 || ph[PhaseRetry] <= 0 {
		t.Fatalf("unexpected zero phases: %+v", ph)
	}
}

func TestPartitionOutsideWindowClipped(t *testing.T) {
	spans := []phaseSpan{{PhaseCompute, -5, 100}}
	ph := partition(spans, 1, 3)
	if ph[PhaseCompute] != 2 {
		t.Fatalf("compute = %v, want full window 2", ph[PhaseCompute])
	}
}

func TestVoteOffset(t *testing.T) {
	ivs := []interval{{1, 2}, {1.5, 2.5}, {10, 11}}
	off, agree, lo, hi := voteOffset(ivs)
	if agree != 2 {
		t.Fatalf("agree = %d, want 2", agree)
	}
	if lo != 1.5 || hi != 2 {
		t.Fatalf("region [%v,%v], want [1.5,2]", lo, hi)
	}
	if off < 1.5 || off > 2 {
		t.Fatalf("offset %v outside agreed region", off)
	}
}

func TestVoteOffsetSingle(t *testing.T) {
	off, agree, _, _ := voteOffset([]interval{{3, 5}})
	if agree != 1 || off != 4 {
		t.Fatalf("got off=%v agree=%d, want midpoint 4 agree 1", off, agree)
	}
}

func TestRankFromPath(t *testing.T) {
	cases := map[string]int{
		"run.r0.jsonl":       0,
		"run.r12.jsonl":      12,
		"/tmp/a/run.r3.json": 3,
		"run.jsonl":          -1,
		"r4.jsonl":           -1,
		"run.r-1.jsonl":      -1,
	}
	for path, want := range cases {
		if got := RankFromPath(path); got != want {
			t.Errorf("RankFromPath(%q) = %d, want %d", path, got, want)
		}
	}
}

func TestParseJSONLRoundTrip(t *testing.T) {
	events := []trace.Event{
		{TS: 1.25, Dur: 0.5, Kind: trace.KCompute, Track: 2, Iter: 7, Origin: 2, A: 1, B: 2},
		{TS: 2, Kind: trace.KReady, Track: 0, Iter: 3, Origin: 0, A: 4},
		{TS: 3.000000001, Dur: 0, Kind: trace.KGroupFormed, Track: trace.ControllerTrack, Iter: 9, Origin: trace.NoOrigin, A: 17, B: 4},
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		w, g := events[i], got[i]
		if math.Abs(w.TS-g.TS) > 1e-9 || math.Abs(w.Dur-g.Dur) > 1e-9 {
			t.Fatalf("event %d timestamps drifted: %+v vs %+v", i, w, g)
		}
		if w.Kind != g.Kind || w.Track != g.Track || w.Iter != g.Iter || w.Origin != g.Origin || w.A != g.A || w.B != g.B {
			t.Fatalf("event %d fields drifted: %+v vs %+v", i, w, g)
		}
	}
}

func TestParseJSONLRejectsUnknownKind(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader(`{"ts":1,"dur":0,"kind":"nope","track":0,"iter":0,"rank":0,"a":0,"b":0}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// syntheticWorld builds a host trace and one worker trace with a known
// true clock offset: the worker's file is recorded on a clock that runs
// `skew` seconds behind the host's.
func syntheticWorld(skew float64) []RankTrace {
	var host, worker []trace.Event
	add := func(list *[]trace.Event, ev trace.Event) { *list = append(*list, ev) }
	// Ten iterations: worker signals at t, host accepts at t+0.001,
	// forms a group at t+0.002, worker observes release at t+0.004.
	for i := 0; i < 10; i++ {
		tsig := float64(i) * 0.1 // host clock
		add(&worker, trace.Event{
			TS: tsig - skew, Dur: 0.004, Kind: trace.KSignalWait,
			Track: 1, Iter: int32(i), Origin: 1, A: 0,
		})
		add(&host, trace.Event{TS: tsig + 0.001, Kind: trace.KReady, Track: 1, Iter: int32(i), Origin: 0})
		add(&host, trace.Event{TS: tsig + 0.002, Kind: trace.KGroupFormed, Track: trace.ControllerTrack, Iter: int32(i), Origin: 0, A: int64(i + 1), B: 2})
		add(&host, trace.Event{TS: tsig + 0.002, Kind: trace.KStaleness, Track: 1, Iter: int32(i), Origin: 0, A: 0, B: int64(i + 1)})
		add(&host, trace.Event{TS: tsig + 0.002, Kind: trace.KStaleness, Track: 0, Iter: int32(i), Origin: 0, A: 0, B: int64(i + 1)})
		add(&host, trace.Event{TS: tsig - 0.02, Dur: 0.025, Kind: trace.KSignalWait, Track: 0, Iter: int32(i), Origin: 0})
		add(&host, trace.Event{TS: tsig - 0.02, Kind: trace.KReady, Track: 0, Iter: int32(i), Origin: 0})
	}
	return []RankTrace{{Rank: 0, Events: host}, {Rank: 1, Events: worker}}
}

func TestMergeRecoversKnownOffset(t *testing.T) {
	const skew = 1.75 // worker clock runs 1.75s behind the host
	m, err := Merge(syntheticWorld(skew))
	if err != nil {
		t.Fatal(err)
	}
	if m.HostRank != 0 {
		t.Fatalf("host rank %d, want 0", m.HostRank)
	}
	got := m.Offset(1)
	// The feasible interval per pair is [ready−end, ready−start] =
	// [skew−0.003, skew+0.001]; the vote must land inside it.
	if got < skew-0.003 || got > skew+0.001 {
		t.Fatalf("recovered offset %v, want within [%v, %v]", got, skew-0.003, skew+0.001)
	}
	if _, err := ValidateMerged(m, 0); err != nil {
		t.Fatal(err)
	}
	// Merged stream must be globally ordered.
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].TS < m.Events[i-1].TS {
			t.Fatalf("merged events out of order at %d", i)
		}
	}
}

func TestMergeRejectsAmbiguity(t *testing.T) {
	w := syntheticWorld(0)
	if _, err := Merge([]RankTrace{w[0], {Rank: -1, Events: w[1].Events}}); err == nil {
		t.Fatal("rankless trace accepted in multi-trace merge")
	}
	if _, err := Merge([]RankTrace{w[0], {Rank: 0, Events: w[1].Events}}); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := Merge([]RankTrace{{Rank: 0, Events: w[1].Events}, {Rank: 1, Events: w[1].Events}}); err == nil {
		t.Fatal("merge without a controller trace accepted")
	}
}

func TestAnalyzeSyntheticBlame(t *testing.T) {
	m, err := Merge(syntheticWorld(0.5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 10 {
		t.Fatalf("reconstructed %d groups, want 10", len(rep.Groups))
	}
	// Rank 1 signals ~21ms after rank 0 every iteration, so it must be
	// the critical rank of every group and own all the blame.
	var blame0, blame1 float64
	for _, rs := range rep.Ranks {
		switch rs.Rank {
		case 0:
			blame0 = rs.Blame
		case 1:
			blame1 = rs.Blame
		}
	}
	if blame1 <= 0 {
		t.Fatalf("rank 1 blame = %v, want > 0", blame1)
	}
	if blame0 != 0 {
		t.Fatalf("rank 0 blame = %v, want 0", blame0)
	}
	for _, g := range rep.Groups {
		if g.Critical != 1 {
			t.Fatalf("group %d critical = %d, want 1", g.Seq, g.Critical)
		}
	}
	// Per-iteration phase partitions must close to the wall time.
	for _, it := range rep.Iters {
		sum := 0.0
		for _, v := range it.Phases {
			sum += v
		}
		if d := math.Abs(sum - it.Wall()); d > 1e-9 {
			t.Fatalf("rank %d iter %d: phase sum off by %g", it.Rank, it.Iter, d)
		}
	}
}

func TestValidateMergedCatchesDisorder(t *testing.T) {
	m, err := Merge(syntheticWorld(0))
	if err != nil {
		t.Fatal(err)
	}
	m.Events[0], m.Events[len(m.Events)-1] = m.Events[len(m.Events)-1], m.Events[0]
	if _, err := ValidateMerged(m, 0); err == nil {
		t.Fatal("disordered timeline accepted")
	}
}

func TestValidateMergedCatchesOrphanMembership(t *testing.T) {
	m, err := Merge(syntheticWorld(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Events {
		if m.Events[i].Kind == trace.KStaleness {
			m.Events[i].B = 9999
			break
		}
	}
	if _, err := ValidateMerged(m, 0); err == nil {
		t.Fatal("orphan staleness membership accepted")
	}
}
