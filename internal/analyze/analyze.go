package analyze

// The analysis pass proper. Three products from one merged timeline:
//
//  1. Phase partition — every worker's span events are swept into an
//     exclusive partition of its elapsed time. Span kinds overlap by
//     design (the sim's group-wait covers its ring phases; a live
//     collective span contains reduce-scatter, all-gather and backoff),
//     so where spans overlap the most specific phase wins, by fixed
//     precedence: compute > comm > retry-backoff > group-wait >
//     signal-wait. Uncovered time is "other". The partition is built
//     per (rank, iteration) bucket and closed with a residual, so the
//     phase columns sum to the bucket wall time exactly (within float
//     rounding, well inside the 1e-9 acceptance bound).
//
//  2. Group reconstruction + blame — each controller group-formed
//     instant plus its staleness membership records give the group's
//     members; each member's arrival is its last accepted ready instant
//     at or before formation. The critical member is the last to
//     arrive (tie → the later-queued member). Blame charges the
//     critical member with the sum of everyone else's arrival-to-
//     critical-arrival gaps — the seconds of other workers' time it
//     consumed; the formation-to-critical-arrival gap is controller
//     "defer" time, charged to nobody.
//
//  3. Critical path — the run is cut at group formations; the segment
//     ending at each formation is attributed to that group's critical
//     rank and decomposed by that rank's phase occupancy over the
//     segment. Summing gives "what the slowest-at-the-time worker was
//     doing" across the whole run — the offline scoreboard.

import (
	"fmt"
	"math"
	"sort"

	"partialreduce/internal/trace"
)

// Phase is one slice of a worker's elapsed time. Order is precedence:
// when spans overlap, the lowest-valued phase claims the time.
type Phase int

const (
	PhaseCompute Phase = iota
	PhaseComm
	PhaseRetry
	PhaseGroupWait
	PhaseSignalWait
	PhaseOther
	NumPhase
)

var phaseNames = [NumPhase]string{
	"compute", "comm", "retry", "group-wait", "signal-wait", "other",
}

func (p Phase) String() string {
	if p >= 0 && p < NumPhase {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// phaseOf maps span kinds to phases; non-span and controller kinds
// return false.
func phaseOf(k trace.Kind) (Phase, bool) {
	switch k {
	case trace.KCompute:
		return PhaseCompute, true
	case trace.KReduceScatter, trace.KAllGather:
		return PhaseComm, true
	case trace.KRetryBackoff:
		return PhaseRetry, true
	case trace.KGroupWait, trace.KCollective, trace.KBootstrap:
		return PhaseGroupWait, true
	case trace.KSignalWait:
		return PhaseSignalWait, true
	}
	return 0, false
}

// IterStat is one worker-iteration bucket: the time between the first
// and last span the worker recorded for that iteration, partitioned
// into phases.
type IterStat struct {
	Rank   int
	Iter   int
	Start  float64
	End    float64
	Phases [NumPhase]float64
}

// Wall is the bucket's elapsed time; the Phases array sums to it.
func (s *IterStat) Wall() float64 { return s.End - s.Start }

// GroupStat is one reconstructed P-Reduce group.
type GroupStat struct {
	Seq      int64
	Formed   float64
	Iter     int // group iteration (max member iter)
	Members  []int
	Iters    []int     // per-member signal iteration
	Arrivals []float64 // per-member ready instant; NaN when unmatched
	Waits    []float64 // per-member formation − arrival; NaN when unmatched
	Critical int       // rank of the last-arriving member, -1 unknown
	Induced  float64   // Σ over non-critical members of (critical arrival − arrival)
	Defer    float64   // formation − critical arrival (controller-side)
}

// RankStat is one rank's ledger across the run.
type RankStat struct {
	Rank     int
	Groups   int     // groups the rank was a member of
	Critical int     // groups where the rank arrived last
	Blame    float64 // seconds of other ranks' time this rank consumed
	Wait     float64 // seconds this rank spent arrived-but-waiting
	Phases   [NumPhase]float64
	CritPath float64 // seconds of run critical path attributed to this rank
}

// CriticalPath is the run-level decomposition: segments between
// consecutive group formations, each attributed to the later group's
// critical rank and decomposed by that rank's phase occupancy.
type CriticalPath struct {
	Start, End   float64
	Phases       [NumPhase]float64
	Unattributed float64 // segments whose group had no known critical rank
}

// Report is the full analysis product.
type Report struct {
	Merged *Merged
	Iters  []IterStat  // sorted by (rank, iter)
	Groups []GroupStat // sorted by seq
	Ranks  []RankStat  // sorted by rank
	Crit   CriticalPath
}

// partition sweeps spans into an exclusive phase decomposition of
// [start, end]; overlaps resolve to the lowest-valued phase, gaps to
// PhaseOther, and a final residual pins Σphases == end−start exactly.
func partition(spans []phaseSpan, start, end float64) [NumPhase]float64 {
	var out [NumPhase]float64
	if end <= start {
		return out
	}
	cuts := make([]float64, 0, 2*len(spans)+2)
	cuts = append(cuts, start, end)
	for _, sp := range spans {
		if sp.e <= start || sp.s >= end {
			continue
		}
		if sp.s > start {
			cuts = append(cuts, sp.s)
		}
		if sp.e < end {
			cuts = append(cuts, sp.e)
		}
	}
	sort.Float64s(cuts)
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		mid := a + (b-a)/2
		best := PhaseOther
		for _, sp := range spans {
			if sp.s <= mid && mid < sp.e && sp.phase < best {
				best = sp.phase
			}
		}
		out[best] += b - a
	}
	// Close the partition: fold float drift into "other" so the
	// columns sum to the wall time exactly.
	sum := 0.0
	for p := Phase(0); p < PhaseOther; p++ {
		sum += out[p]
	}
	out[PhaseOther] = (end - start) - sum
	if out[PhaseOther] < 0 {
		out[PhaseOther] = 0
	}
	return out
}

type phaseSpan struct {
	phase Phase
	s, e  float64
}

// Analyze runs the full pass over a merged timeline.
func Analyze(m *Merged) (*Report, error) {
	if m == nil || len(m.Events) == 0 {
		return nil, fmt.Errorf("analyze: empty timeline")
	}
	r := &Report{Merged: m}

	// --- per-(rank, iter) buckets and per-rank span lists ---
	type bucketKey struct {
		rank int32
		iter int32
	}
	buckets := map[bucketKey][]phaseSpan{}
	bounds := map[bucketKey][2]float64{}
	rankSpans := map[int32][]phaseSpan{}
	for _, ev := range m.Events {
		ph, ok := phaseOf(ev.Kind)
		if !ok || ev.Track < 0 {
			continue
		}
		sp := phaseSpan{ph, ev.TS, ev.TS + ev.Dur}
		k := bucketKey{ev.Track, ev.Iter}
		buckets[k] = append(buckets[k], sp)
		if b, ok := bounds[k]; ok {
			if sp.s < b[0] {
				b[0] = sp.s
			}
			if sp.e > b[1] {
				b[1] = sp.e
			}
			bounds[k] = b
		} else {
			bounds[k] = [2]float64{sp.s, sp.e}
		}
		rankSpans[ev.Track] = append(rankSpans[ev.Track], sp)
	}
	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].iter < keys[j].iter
	})
	rankStats := map[int]*RankStat{}
	rankStat := func(rank int) *RankStat {
		rs := rankStats[rank]
		if rs == nil {
			rs = &RankStat{Rank: rank}
			rankStats[rank] = rs
		}
		return rs
	}
	for _, k := range keys {
		b := bounds[k]
		st := IterStat{
			Rank: int(k.rank), Iter: int(k.iter),
			Start: b[0], End: b[1],
			Phases: partition(buckets[k], b[0], b[1]),
		}
		r.Iters = append(r.Iters, st)
		rs := rankStat(st.Rank)
		for p := Phase(0); p < NumPhase; p++ {
			rs.Phases[p] += st.Phases[p]
		}
	}

	// --- group reconstruction ---
	type formed struct {
		seq  int64
		ts   float64
		iter int32
		size int64
	}
	var forms []formed
	members := map[int64][]trace.Event{} // seq → KStaleness records, recording order
	readys := map[int32][]readyInstant{} // worker → accepted ready instants
	for _, ev := range m.Events {
		switch ev.Kind {
		case trace.KGroupFormed:
			forms = append(forms, formed{ev.A, ev.TS, ev.Iter, ev.B})
		case trace.KStaleness:
			members[ev.B] = append(members[ev.B], ev)
		case trace.KReady:
			readys[ev.Track] = append(readys[ev.Track], readyInstant{ev.Iter, ev.TS})
		}
	}
	sort.SliceStable(forms, func(i, j int) bool {
		if forms[i].ts != forms[j].ts {
			return forms[i].ts < forms[j].ts
		}
		return forms[i].seq < forms[j].seq
	})
	// arrival finds the last accepted ready of (worker, iter) at or
	// before the formation instant. Same-clock recording order
	// guarantees ready ≤ formed for the true match; offset-corrected
	// cross-rank stamps don't matter here because both events are
	// controller-side.
	arrival := func(worker, iter int32, formedTS float64) float64 {
		best := math.NaN()
		for _, ri := range readys[worker] {
			if ri.iter == iter && ri.ts <= formedTS {
				best = ri.ts
			}
		}
		return best
	}
	for _, f := range forms {
		g := GroupStat{Seq: f.seq, Formed: f.ts, Iter: int(f.iter), Critical: -1}
		for _, mev := range members[f.seq] {
			g.Members = append(g.Members, int(mev.Track))
			g.Iters = append(g.Iters, int(mev.Iter))
			a := arrival(mev.Track, mev.Iter, f.ts)
			g.Arrivals = append(g.Arrivals, a)
			if math.IsNaN(a) {
				g.Waits = append(g.Waits, math.NaN())
			} else {
				g.Waits = append(g.Waits, f.ts-a)
			}
		}
		// Critical member: latest arrival; ties go to the later-queued
		// member (higher index — FIFO pop order is queue order).
		critIdx, critAt := -1, math.Inf(-1)
		for i, a := range g.Arrivals {
			if !math.IsNaN(a) && a >= critAt {
				critAt, critIdx = a, i
			}
		}
		if critIdx >= 0 {
			g.Critical = g.Members[critIdx]
			g.Defer = g.Formed - critAt
			for i, a := range g.Arrivals {
				if i == critIdx || math.IsNaN(a) {
					continue
				}
				g.Induced += critAt - a
			}
		}
		r.Groups = append(r.Groups, g)
		for i, w := range g.Members {
			rs := rankStat(w)
			rs.Groups++
			if !math.IsNaN(g.Waits[i]) {
				rs.Wait += g.Waits[i]
			}
		}
		if g.Critical >= 0 {
			rs := rankStat(g.Critical)
			rs.Critical++
			rs.Blame += g.Induced
		}
	}

	// --- run critical path ---
	if len(forms) > 0 {
		for _, spans := range rankSpans {
			sort.SliceStable(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		}
		r.Crit.Start = m.Events[0].TS
		r.Crit.End = forms[len(forms)-1].ts
		prev := r.Crit.Start
		for i, f := range forms {
			if f.ts <= prev {
				continue
			}
			crit := r.Groups[i].Critical
			if crit < 0 {
				r.Crit.Unattributed += f.ts - prev
			} else {
				ph := partition(rankSpans[int32(crit)], prev, f.ts)
				for p := Phase(0); p < NumPhase; p++ {
					r.Crit.Phases[p] += ph[p]
				}
				rankStat(crit).CritPath += f.ts - prev
			}
			prev = f.ts
		}
	}

	ranks := make([]int, 0, len(rankStats))
	for rk := range rankStats {
		ranks = append(ranks, rk)
	}
	sort.Ints(ranks)
	for _, rk := range ranks {
		r.Ranks = append(r.Ranks, *rankStats[rk])
	}
	return r, nil
}
