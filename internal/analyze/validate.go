package analyze

// ValidateMerged is the structural check preduce-tracecheck runs over a
// merged multi-rank timeline (and trace_smoke.sh over every live run):
// offset correction must have produced a globally ordered stream whose
// cross-rank causal pairs still make sense.

import (
	"fmt"
	"math"

	"partialreduce/internal/trace"
)

// ValidateMerged checks a merged timeline:
//
//   - events sorted by timestamp, all spans with finite, non-negative
//     bounds (no orphan span ends — the complete-event format can only
//     produce one if a duration went negative or non-finite);
//   - same-kind spans on one (origin, track) lane never overlap by more
//     than slack (a lane is sequential by construction; gross overlap
//     means a wrong clock offset or corrupt file);
//   - every staleness membership record references a formed group
//     (no orphan membership);
//   - after offset correction, every matched controller ready instant
//     falls inside its worker's signal-wait span ± slack.
//
// slack absorbs residual clock error; ≤0 defaults to 5ms. Returns the
// event count.
func ValidateMerged(m *Merged, slack float64) (int, error) {
	if m == nil || len(m.Events) == 0 {
		return 0, fmt.Errorf("analyze: empty timeline")
	}
	if slack <= 0 {
		slack = 5e-3
	}
	prev := math.Inf(-1)
	type lane struct {
		origin int32
		track  int32
		kind   trace.Kind
	}
	laneEnd := map[lane]float64{}
	worstOverlap := 0.0
	seqs := map[int64]bool{}
	for i, ev := range m.Events {
		if math.IsNaN(ev.TS) || math.IsInf(ev.TS, 0) || math.IsNaN(ev.Dur) || math.IsInf(ev.Dur, 0) {
			return 0, fmt.Errorf("analyze: event %d: non-finite timestamp", i)
		}
		if ev.Dur < 0 {
			return 0, fmt.Errorf("analyze: event %d: negative duration %v (orphan span end)", i, ev.Dur)
		}
		if ev.TS < prev {
			return 0, fmt.Errorf("analyze: event %d: timestamps not monotone after offset correction (%.9f < %.9f)", i, ev.TS, prev)
		}
		prev = ev.TS
		if ev.Kind == trace.KGroupFormed {
			seqs[ev.A] = true
		}
		if ev.Dur > 0 {
			l := lane{ev.Origin, ev.Track, ev.Kind}
			if end, ok := laneEnd[l]; ok && end-ev.TS > worstOverlap {
				worstOverlap = end - ev.TS
			}
			if e := ev.TS + ev.Dur; e > laneEnd[l] {
				laneEnd[l] = e
			}
		}
	}
	if worstOverlap > slack {
		return 0, fmt.Errorf("analyze: same-kind spans overlap by %.6fs on one lane (> %.6fs slack): clock offsets look wrong", worstOverlap, slack)
	}
	for i, ev := range m.Events {
		if ev.Kind == trace.KStaleness && !seqs[ev.B] {
			return 0, fmt.Errorf("analyze: event %d: staleness record references unknown group seq %d", i, ev.B)
		}
	}
	// Causal check: matched ready instants inside signal-wait spans.
	if len(m.Ranks) > 1 {
		hv := indexHost(hostEvents(m))
		for _, rk := range m.Ranks {
			if rk == m.HostRank {
				continue
			}
			bad, total := 0, 0
			type span struct{ s, e float64 }
			waits := map[int32][]span{}
			for _, ev := range m.Events {
				if ev.Kind == trace.KSignalWait && ev.Track == int32(rk) && ev.Origin == int32(rk) {
					waits[ev.Iter] = append(waits[ev.Iter], span{ev.TS, ev.TS + ev.Dur})
				}
			}
			for iter, ws := range waits {
				rs := hv.readys[int32(rk)]
				var stamps []float64
				for _, ri := range rs {
					if ri.iter == iter {
						stamps = append(stamps, ri.ts)
					}
				}
				n := len(ws)
				if len(stamps) < n {
					n = len(stamps)
				}
				for k := 0; k < n; k++ {
					total++
					if stamps[k] < ws[k].s-slack || stamps[k] > ws[k].e+slack {
						bad++
					}
				}
			}
			// A stray mismatch from re-signals is tolerable; wholesale
			// misalignment is not.
			if total > 0 && bad*10 > total {
				return 0, fmt.Errorf("analyze: rank %d: %d/%d ready instants fall outside their signal-wait spans after offset correction", rk, bad, total)
			}
		}
	}
	return len(m.Events), nil
}

// hostEvents extracts the host rank's events from a merged timeline.
func hostEvents(m *Merged) []trace.Event {
	var out []trace.Event
	for _, ev := range m.Events {
		if int(ev.Origin) == m.HostRank || (m.HostRank < 0 && ev.Origin < 0) {
			out = append(out, ev)
		}
	}
	return out
}
