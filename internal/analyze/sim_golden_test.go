package analyze

// Golden-file test: the analyzer over a seeded simulator trace must be
// byte-reproducible — same seed, same report bytes — and its phase
// partitions must close to each iteration's wall time within 1e-9 (the
// acceptance bound). Regenerate the golden with
//
//	go test ./internal/analyze/ -run SimGolden -update
//
// after an intentional change to the sim, the tracer, or the report
// format.

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"partialreduce/internal/experiments"
	"partialreduce/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// simReport runs the seeded traced sim and pushes its events through
// the full pipeline exactly as preduce-analyze would: export to JSONL
// bytes, parse back, merge, analyze, render.
func simReport(t *testing.T) (string, *Report) {
	t.Helper()
	_, c, err := experiments.TracedRun(experiments.Options{Seed: 7, Quick: true}, -1)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := trace.WriteJSONL(&jsonl, c.Tracer.Events()); err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge([]RankTrace{{Rank: -1, Events: events}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateMerged(m, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WriteReport(&out, rep, 10); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteIterCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteGroupCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlameCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	return out.String() + "\n--- csv ---\n" + csv.String(), rep
}

func TestAnalyzeSimGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("traced sim run in -short mode")
	}
	got, rep := simReport(t)

	// Byte-reproducible: a second full pipeline run emits identical bytes.
	again, _ := simReport(t)
	if got != again {
		t.Fatal("analyzer output differs between two same-seed runs")
	}

	// Phase partitions close to the wall time within the acceptance bound.
	if len(rep.Iters) == 0 || len(rep.Groups) == 0 {
		t.Fatalf("degenerate report: %d iters, %d groups", len(rep.Iters), len(rep.Groups))
	}
	for _, it := range rep.Iters {
		sum := 0.0
		for _, v := range it.Phases {
			sum += v
		}
		if d := math.Abs(sum - it.Wall()); d > 1e-9 {
			t.Fatalf("rank %d iter %d: phase sum off by %g (> 1e-9)", it.Rank, it.Iter, d)
		}
	}

	golden := filepath.Join("testdata", "sim_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("report differs from %s (rerun with -update after intentional changes); got %d bytes, want %d", golden, len(got), len(want))
	}
}

// The sim's blame ledger must balance: every group's induced wait lands
// on exactly one rank, so per-rank blame sums to the per-group total.
func TestAnalyzeSimBlameBalances(t *testing.T) {
	if testing.Short() {
		t.Skip("traced sim run in -short mode")
	}
	_, rep := simReport(t)
	groupTotal := 0.0
	for _, g := range rep.Groups {
		groupTotal += g.Induced
	}
	rankTotal := 0.0
	criticals := 0
	for _, rs := range rep.Ranks {
		rankTotal += rs.Blame
		criticals += rs.Critical
	}
	if d := math.Abs(groupTotal - rankTotal); d > 1e-9 {
		t.Fatalf("blame imbalance: groups %v vs ranks %v", groupTotal, rankTotal)
	}
	attributed := 0
	for _, g := range rep.Groups {
		if g.Critical >= 0 {
			attributed++
		}
	}
	if criticals != attributed {
		t.Fatalf("critical counts %d != attributed groups %d", criticals, attributed)
	}
}
