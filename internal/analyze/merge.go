package analyze

// Multi-rank trace merge. Each live process records with its own wall
// clock, so before per-rank files can share a timeline every non-host
// rank needs a clock-offset estimate. The estimator uses matched event
// pairs that bracket a controller-side instant inside a worker-side
// span:
//
//   - a worker's signal-wait span [s, e] (worker clock) covers the
//     controller's ready instant h (host clock) for the same
//     (worker, iter): the round trip send→accept→reply gives
//     off ∈ [h − e, h − s] where off is host−worker;
//   - when the pairing is unambiguous, the group-formed instant f of
//     the group that released the signal tightens the lower bound to
//     f − e (the formation also happened inside the wait).
//
// Re-signals after aborts, bootstrap diversions (a ready served as a
// join donor never reaches the controller) and stale-epoch rejections
// can desynchronize the two event sequences, so instead of intersecting
// all intervals the estimator votes: it picks the point covered by the
// most intervals (max-coverage sweep, deterministic tie-break toward
// the earliest such region) and takes the midpoint of that region.
// Mismatched pairs land in the minority and are outvoted.

import (
	"fmt"
	"sort"

	"partialreduce/internal/trace"
)

// RankOffset is one rank's clock-offset estimate and its provenance.
type RankOffset struct {
	Rank   int
	Offset float64 // host − rank clock, seconds (0 for the host)
	Pairs  int     // matched intervals that voted
	Agree  int     // intervals covering the chosen point
	Lo, Hi float64 // the chosen max-coverage region
}

// Merged is a set of rank traces on one aligned timeline.
type Merged struct {
	// Events holds every input event with non-host timestamps shifted
	// by the rank's offset, sorted by timestamp (stable: equal-stamp
	// events keep per-rank recording order, ranks in ascending order).
	Events []trace.Event
	// Ranks lists the input ranks ascending; -1 alone means a single
	// unstamped trace (e.g. simulator export).
	Ranks []int
	// HostRank is the rank whose process hosted the controller (its
	// trace carries the ready/group-formed instants); -1 in
	// single-trace mode.
	HostRank int
	// Offsets holds one entry per rank in Ranks order.
	Offsets []RankOffset
}

// Offset returns the clock offset applied to rank's events.
func (m *Merged) Offset(rank int) float64 {
	for _, o := range m.Offsets {
		if o.Rank == rank {
			return o.Offset
		}
	}
	return 0
}

// interval is one candidate offset range [lo, hi] from a matched pair.
type interval struct{ lo, hi float64 }

// voteOffset picks the point covered by the most intervals. Sweep with
// starts ordered before ends at equal coordinates, so touching
// intervals count as overlapping; the first maximal region wins.
func voteOffset(ivs []interval) (off float64, agree int, lo, hi float64) {
	type edge struct {
		x     float64
		delta int // +1 start, -1 end
	}
	edges := make([]edge, 0, 2*len(ivs))
	for _, iv := range ivs {
		edges = append(edges, edge{iv.lo, +1}, edge{iv.hi, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].x != edges[j].x {
			return edges[i].x < edges[j].x
		}
		return edges[i].delta > edges[j].delta
	})
	depth, best := 0, 0
	for i, e := range edges {
		depth += e.delta
		if depth > best {
			best = depth
			lo = e.x
			// The region extends to the next edge coordinate.
			if i+1 < len(edges) {
				hi = edges[i+1].x
			} else {
				hi = e.x
			}
		}
	}
	return (lo + hi) / 2, best, lo, hi
}

// hostView indexes the controller-side instants of the host trace.
type hostView struct {
	// readys[worker] lists (iter, ts) of accepted ready signals in
	// recording order.
	readys map[int32][]readyInstant
	// formedBySeq maps group seq → formation timestamp.
	formedBySeq map[int64]float64
	// memberSeqs[worker][iter] lists the seqs of groups that include
	// (worker, iter), from KStaleness membership records.
	memberSeqs map[int32]map[int32][]int64
}

type readyInstant struct {
	iter int32
	ts   float64
}

func indexHost(events []trace.Event) hostView {
	hv := hostView{
		readys:      map[int32][]readyInstant{},
		formedBySeq: map[int64]float64{},
		memberSeqs:  map[int32]map[int32][]int64{},
	}
	for _, ev := range events {
		switch ev.Kind {
		case trace.KReady:
			hv.readys[ev.Track] = append(hv.readys[ev.Track], readyInstant{ev.Iter, ev.TS})
		case trace.KGroupFormed:
			hv.formedBySeq[ev.A] = ev.TS
		case trace.KStaleness:
			m := hv.memberSeqs[ev.Track]
			if m == nil {
				m = map[int32][]int64{}
				hv.memberSeqs[ev.Track] = m
			}
			m[ev.Iter] = append(m[ev.Iter], ev.B)
		}
	}
	return hv
}

// offsetIntervals builds the candidate intervals for one non-host rank
// from its signal-wait spans matched against the host's ready instants
// by (worker, iter) occurrence index.
func offsetIntervals(hv hostView, rank int, events []trace.Event) []interval {
	type span struct{ s, e float64 }
	waits := map[int32][]span{} // iter → spans, recording order
	for _, ev := range events {
		if ev.Kind == trace.KSignalWait && ev.Track == int32(rank) {
			waits[ev.Iter] = append(waits[ev.Iter], span{ev.TS, ev.TS + ev.Dur})
		}
	}
	readys := map[int32][]float64{} // iter → host ready stamps, recording order
	for _, ri := range hv.readys[int32(rank)] {
		readys[ri.iter] = append(readys[ri.iter], ri.ts)
	}
	var ivs []interval
	for iter, ws := range waits {
		rs := readys[iter]
		n := len(ws)
		if len(rs) < n {
			n = len(rs)
		}
		for k := 0; k < n; k++ {
			lo, hi := rs[k]-ws[k].e, rs[k]-ws[k].s
			// Unambiguous pairing (one wait, one ready, one group):
			// the formation instant also sits inside the wait span,
			// tightening the lower bound.
			if len(ws) == 1 && len(rs) == 1 {
				if seqs := hv.memberSeqs[int32(rank)][iter]; len(seqs) == 1 {
					if f, ok := hv.formedBySeq[seqs[0]]; ok && f-ws[k].e > lo {
						lo = f - ws[k].e
					}
				}
			}
			if lo <= hi {
				ivs = append(ivs, interval{lo, hi})
			}
		}
	}
	// Deterministic vote input regardless of map iteration order.
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	return ivs
}

// Merge aligns the given rank traces onto one timeline. A single trace
// passes through unshifted (offset estimation needs nothing); multiple
// traces require distinct non-negative ranks and exactly one host trace
// — the one carrying the controller's ready instants.
func Merge(tracks []RankTrace) (*Merged, error) {
	if len(tracks) == 0 {
		return nil, fmt.Errorf("analyze: no traces to merge")
	}
	if len(tracks) == 1 {
		t := tracks[0]
		m := &Merged{
			Events:   append([]trace.Event(nil), t.Events...),
			Ranks:    []int{t.Rank},
			HostRank: -1,
			Offsets:  []RankOffset{{Rank: t.Rank}},
		}
		if hasController(t.Events) {
			m.HostRank = t.Rank
		}
		sortEvents(m.Events)
		return m, nil
	}

	sorted := append([]RankTrace(nil), tracks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rank < sorted[j].Rank })
	seen := map[int]bool{}
	host := -1
	for _, t := range sorted {
		if t.Rank < 0 {
			return nil, fmt.Errorf("analyze: trace %q has no rank (stamp events with SetOrigin or use .r<rank> file names)", t.Path)
		}
		if seen[t.Rank] {
			return nil, fmt.Errorf("analyze: duplicate rank %d", t.Rank)
		}
		seen[t.Rank] = true
		if hasController(t.Events) {
			if host >= 0 {
				return nil, fmt.Errorf("analyze: controller events in both rank %d and rank %d traces", host, t.Rank)
			}
			host = t.Rank
		}
	}
	if host < 0 {
		return nil, fmt.Errorf("analyze: no trace carries controller ready events; cannot estimate clock offsets")
	}

	var hv hostView
	for _, t := range sorted {
		if t.Rank == host {
			hv = indexHost(t.Events)
		}
	}

	m := &Merged{HostRank: host}
	for _, t := range sorted {
		off := RankOffset{Rank: t.Rank}
		if t.Rank != host {
			ivs := offsetIntervals(hv, t.Rank, t.Events)
			off.Pairs = len(ivs)
			if len(ivs) == 0 {
				return nil, fmt.Errorf("analyze: rank %d: no matched signal/ready pairs against host rank %d", t.Rank, host)
			}
			off.Offset, off.Agree, off.Lo, off.Hi = voteOffset(ivs)
		}
		m.Ranks = append(m.Ranks, t.Rank)
		m.Offsets = append(m.Offsets, off)
		for _, ev := range t.Events {
			ev.TS += off.Offset
			if ev.Origin < 0 {
				ev.Origin = int32(t.Rank)
			}
			m.Events = append(m.Events, ev)
		}
	}
	sortEvents(m.Events)
	return m, nil
}

// MergeFiles reads and merges the given JSONL trace files.
func MergeFiles(paths []string) (*Merged, error) {
	tracks := make([]RankTrace, 0, len(paths))
	for _, p := range paths {
		t, err := ReadTraceFile(p)
		if err != nil {
			return nil, err
		}
		tracks = append(tracks, t)
	}
	return Merge(tracks)
}

// hasController reports whether the event stream carries controller
// ready instants — the signature of the process hosting the controller.
func hasController(events []trace.Event) bool {
	for _, ev := range events {
		if ev.Kind == trace.KReady {
			return true
		}
	}
	return false
}

// sortEvents orders by timestamp, stable so equal-stamp events (ubiquitous
// under the simulator's virtual clock) keep their recording order.
func sortEvents(events []trace.Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
}
