package controller

import (
	"fmt"
	"testing"
)

// The paper argues the controller cannot become a bottleneck (§4): each
// message is a few bytes and the work per signal is queue bookkeeping plus
// a windowed connectivity check. These benchmarks measure signals/second at
// cluster sizes far beyond the paper's 32 workers.
func BenchmarkControllerReady(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		for _, p := range []int{4, 16} {
			if p > n {
				continue
			}
			b.Run(fmt.Sprintf("N=%d/P=%d", n, p), func(b *testing.B) {
				c, err := New(Config{N: n, P: p})
				if err != nil {
					b.Fatal(err)
				}
				iters := make([]int, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w := i % n
					iters[w]++
					if _, err := c.Ready(Signal{Worker: w, Iter: iters[w]}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Dynamic weighting adds the EMA computation per group.
func BenchmarkControllerReadyDynamic(b *testing.B) {
	c, err := New(Config{N: 64, P: 8, Weighting: Dynamic, Approx: ClosestIteration})
	if err != nil {
		b.Fatal(err)
	}
	iters := make([]int, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := i % 64
		iters[w] += 1 + w%3 // staggered iteration numbers exercise the EMA path
		if _, err := c.Ready(Signal{Worker: w, Iter: iters[w]}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncGraphConnectivity(b *testing.B) {
	g := NewSyncGraph(512, 128)
	for i := 0; i < 128; i++ {
		g.Add([]int{i % 512, (i*7 + 1) % 512, (i*13 + 2) % 512})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Connected()
	}
}
