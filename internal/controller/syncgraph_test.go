package controller

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSyncGraphEmpty(t *testing.T) {
	g := NewSyncGraph(4, 3)
	if g.Full() || g.Len() != 0 {
		t.Fatal("fresh graph should be empty")
	}
	if g.NumComponents() != 4 {
		t.Fatalf("components %d, want 4 singletons", g.NumComponents())
	}
	if g.Connected() {
		t.Fatal("empty graph cannot be connected with n>1")
	}
}

func TestSyncGraphConnectivity(t *testing.T) {
	g := NewSyncGraph(4, 3)
	g.Add([]int{0, 1})
	g.Add([]int{2, 3})
	if g.Connected() {
		t.Fatal("two cliques should be disconnected")
	}
	if g.NumComponents() != 2 {
		t.Fatalf("components %d, want 2", g.NumComponents())
	}
	g.Add([]int{1, 2})
	if !g.Connected() {
		t.Fatal("bridge should connect the graph")
	}
	if !g.Full() {
		t.Fatal("window of 3 should be full after 3 adds")
	}
}

func TestSyncGraphEviction(t *testing.T) {
	g := NewSyncGraph(4, 2)
	g.Add([]int{0, 1})
	g.Add([]int{1, 2})
	g.Add([]int{2, 3}) // evicts {0,1}
	comp := g.Components()
	if comp[0] == comp[1] {
		t.Fatal("evicted edge still connects workers 0 and 1")
	}
	if comp[1] != comp[2] || comp[2] != comp[3] {
		t.Fatal("recent edges lost")
	}
}

func TestSyncGraphCopiesMembers(t *testing.T) {
	g := NewSyncGraph(3, 2)
	m := []int{0, 1}
	g.Add(m)
	m[1] = 2 // mutating the caller's slice must not corrupt history
	comp := g.Components()
	if comp[0] != comp[1] {
		t.Fatal("graph aliased caller slice")
	}
	if comp[0] == comp[2] {
		t.Fatal("phantom edge appeared")
	}
}

func TestSyncGraphLargerGroups(t *testing.T) {
	g := NewSyncGraph(6, 2)
	g.Add([]int{0, 1, 2})
	g.Add([]int{3, 4, 5})
	if g.NumComponents() != 2 {
		t.Fatalf("components %d, want 2", g.NumComponents())
	}
}

func TestSyncGraphValidation(t *testing.T) {
	for _, c := range []struct{ n, w int }{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d w=%d: expected panic", c.n, c.w)
				}
			}()
			NewSyncGraph(c.n, c.w)
		}()
	}
}

// Property: component ids form a valid partition (every worker labelled,
// ids contiguous from 0) and any two members of a windowed group share one.
func TestQuickSyncGraphPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		window := 1 + rng.Intn(6)
		g := NewSyncGraph(n, window)
		var recent [][]int
		for k := 0; k < 20; k++ {
			p := 2 + rng.Intn(n-1)
			members := rng.Perm(n)[:p]
			g.Add(members)
			recent = append(recent, members)
			if len(recent) > window {
				recent = recent[1:]
			}
			comp := g.Components()
			maxID := 0
			for _, id := range comp {
				if id < 0 {
					return false
				}
				if id > maxID {
					maxID = id
				}
			}
			if maxID+1 != g.NumComponents() {
				return false
			}
			for _, grp := range recent {
				for _, w := range grp[1:] {
					if comp[w] != comp[grp[0]] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
