package controller

// Controller snapshot/restore: the control plane's own fault tolerance. The
// paper's controller is deliberately lightweight — a queue of a few-byte
// signals, a window of recent groups, liveness bits — so its full state
// serializes in microseconds and a restarted controller process can resume
// exactly where the old one stopped (warm failover). When even the snapshot
// is lost, Rebuild reconstructs an equivalent controller purely from the
// workers re-sending their pending ready signals (cold failover): the queue
// order may differ from the lost original, but every invariant the algorithm
// relies on (one signal per worker, FIFO service, sync-graph warm-up) holds
// again, and liveness re-converges through the staleness detector.
//
// The encoding is versioned, deterministic (no map iteration), little-endian,
// and integrity-checked with CRC-64/ECMA, following internal/checkpoint.

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"

	"partialreduce/internal/trace"
)

// snapshotMagic identifies a controller snapshot ("PRCS").
const snapshotMagic uint32 = 0x50524353

// snapshotVersion is the current encoding version. Version 2 added the
// iteration-tracking state (lastIter/maxIter/lastNow/lastTog) and the
// formation-policy state blob: policies decide from them, so warm
// failover must carry them for the replacement to decide identically.
// Version 3 added elastic membership: cfg.Initial, the per-signal epoch,
// the membership/draining vectors, the world-view epoch, and the
// join/drain/decommission/stale-epoch counters.
const snapshotVersion uint32 = 3

var snapshotTable = crc64.MakeTable(crc64.ECMA)

type snapEncoder struct{ buf []byte }

func (e *snapEncoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *snapEncoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *snapEncoder) i64(v int)     { e.u64(uint64(int64(v))) }
func (e *snapEncoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *snapEncoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *snapEncoder) ints(v []int) {
	e.i64(len(v))
	for _, x := range v {
		e.i64(x)
	}
}
func (e *snapEncoder) bools(v []bool) {
	e.i64(len(v))
	for _, x := range v {
		e.boolean(x)
	}
}
func (e *snapEncoder) floats(v []float64) {
	e.i64(len(v))
	for _, x := range v {
		e.f64(x)
	}
}

type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("controller: snapshot: "+format, args...)
	}
}
func (d *snapDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}
func (d *snapDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *snapDecoder) i64() int     { return int(int64(d.u64())) }
func (d *snapDecoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *snapDecoder) boolean() bool {
	if d.err != nil {
		return false
	}
	if d.off+1 > len(d.buf) {
		d.fail("truncated")
		return false
	}
	v := d.buf[d.off] != 0
	d.off++
	return v
}
func (d *snapDecoder) count(max int) int {
	n := d.i64()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > max {
		d.fail("implausible length %d", n)
		return 0
	}
	return n
}
func (d *snapDecoder) ints(max int) []int {
	n := d.count(max)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}
func (d *snapDecoder) bools(max int) []bool {
	n := d.count(max)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.boolean()
	}
	return out
}
func (d *snapDecoder) floats(max int) []float64 {
	n := d.count(max)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// maxSnapshotLen bounds decoded slice lengths against corrupt headers.
const maxSnapshotLen = 1 << 24

// Snapshot serializes the controller's complete state: effective config,
// signal queue (in FIFO order), sync-graph window (ring storage, cursor,
// fill state), activity counters, liveness vector and heartbeat clocks,
// the group-history database, iteration tracking, and the attached
// formation policy's state. Two controllers with equal state produce
// byte-identical snapshots, so Snapshot→Restore→Snapshot is the round-trip
// equality check.
func (c *Controller) Snapshot() []byte {
	e := &snapEncoder{buf: make([]byte, 0, 256)}
	e.u32(snapshotMagic)
	e.u32(snapshotVersion)

	// Effective config.
	e.i64(c.cfg.N)
	e.i64(c.cfg.P)
	e.i64(c.cfg.Window)
	e.i64(int(c.cfg.Weighting))
	e.f64(c.cfg.Alpha)
	e.i64(int(c.cfg.Approx))
	e.boolean(c.cfg.DisableGroupFilter)
	e.boolean(c.cfg.RecordGroups)
	e.boolean(c.cfg.ZoneAffinity)
	e.ints(c.cfg.Zones)
	e.i64(c.cfg.Initial)

	// Signal queue (FIFO order).
	e.i64(len(c.queue))
	for _, s := range c.queue {
		e.i64(s.Worker)
		e.i64(s.Iter)
		e.f64(s.Now)
		e.u64(s.Epoch)
	}

	// Sync-graph window: ring storage order plus cursor and fill state.
	e.i64(c.graph.next)
	e.boolean(c.graph.filled)
	e.i64(len(c.graph.groups))
	for _, g := range c.graph.groups {
		e.ints(g)
	}

	// Activity counters.
	e.i64(c.stats.GroupsFormed)
	e.i64(c.stats.Interventions)
	e.i64(c.stats.FrozenChecks)
	e.i64(c.stats.Failures)
	e.i64(c.stats.Rejoins)
	e.i64(c.stats.GroupsAborted)
	e.i64(c.stats.Joins)
	e.i64(c.stats.Drains)
	e.i64(c.stats.Decommissions)
	e.i64(c.stats.StaleEpochs)

	// Liveness and elastic membership.
	e.bools(c.alive)
	e.floats(c.beat)
	e.bools(c.member)
	e.bools(c.draining)
	e.u64(c.epoch)

	// Group-history database.
	e.ints(c.inGroup)
	for _, row := range c.together {
		e.ints(row)
	}
	e.i64(len(c.log))
	for _, g := range c.log {
		e.ints(g)
	}

	// Iteration tracking and formation-policy state (v2). An attached
	// policy contributes its live state; a controller restored but not
	// yet given a policy passes the parked blob through unchanged, so
	// Snapshot→Restore→Snapshot is byte-identical with or without the
	// policy re-attached.
	e.ints(c.lastIter)
	e.i64(c.maxIter)
	e.f64(c.lastNow)
	for _, row := range c.lastTog {
		e.ints(row)
	}
	blob := c.polBlob
	if c.pol != nil {
		blob = c.pol.Snapshot()
	}
	e.i64(len(blob))
	e.buf = append(e.buf, blob...)

	e.u64(crc64.Checksum(e.buf, snapshotTable))
	c.tracer.Instant(trace.KCtrlSnapshot, trace.ControllerTrack, -1, int64(len(e.buf)), 0)
	return e.buf
}

// Restore reconstructs a controller from a Snapshot. The restored controller
// is behaviorally identical to the snapshotted one: same queue, window,
// liveness, counters, and history, so the next Ready/Fail/Drain sequence
// produces the same groups the lost controller would have produced.
func Restore(data []byte) (*Controller, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("controller: snapshot too short (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if crc64.Checksum(body, snapshotTable) != sum {
		return nil, fmt.Errorf("controller: snapshot checksum mismatch")
	}
	d := &snapDecoder{buf: body}
	if m := d.u32(); m != snapshotMagic {
		return nil, fmt.Errorf("controller: bad snapshot magic %#x", m)
	}
	if v := d.u32(); v != snapshotVersion {
		return nil, fmt.Errorf("controller: unsupported snapshot version %d", v)
	}

	var cfg Config
	cfg.N = d.i64()
	cfg.P = d.i64()
	cfg.Window = d.i64()
	cfg.Weighting = Weighting(d.i64())
	cfg.Alpha = d.f64()
	cfg.Approx = ApproxRule(d.i64())
	cfg.DisableGroupFilter = d.boolean()
	cfg.RecordGroups = d.boolean()
	cfg.ZoneAffinity = d.boolean()
	cfg.Zones = d.ints(maxSnapshotLen)
	cfg.Initial = d.i64()
	if d.err != nil {
		return nil, d.err
	}
	c, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("controller: snapshot config: %w", err)
	}

	qn := d.count(maxSnapshotLen)
	for i := 0; i < qn && d.err == nil; i++ {
		s := Signal{Worker: d.i64(), Iter: d.i64(), Now: d.f64(), Epoch: d.u64()}
		if s.Worker < 0 || s.Worker >= cfg.N {
			d.fail("queued worker %d out of range", s.Worker)
			break
		}
		if c.queued[s.Worker] {
			d.fail("worker %d queued twice", s.Worker)
			break
		}
		c.queue = append(c.queue, s)
		c.queued[s.Worker] = true
	}

	c.graph.next = d.i64()
	c.graph.filled = d.boolean()
	gn := d.count(maxSnapshotLen)
	c.graph.groups = c.graph.groups[:0]
	for i := 0; i < gn && d.err == nil; i++ {
		c.graph.groups = append(c.graph.groups, d.ints(maxSnapshotLen))
	}
	if d.err == nil {
		if gn > c.graph.window || c.graph.next < 0 || (gn > 0 && c.graph.next >= c.graph.window) {
			d.fail("sync-graph window state out of range")
		}
	}

	c.stats.GroupsFormed = d.i64()
	c.stats.Interventions = d.i64()
	c.stats.FrozenChecks = d.i64()
	c.stats.Failures = d.i64()
	c.stats.Rejoins = d.i64()
	c.stats.GroupsAborted = d.i64()
	c.stats.Joins = d.i64()
	c.stats.Drains = d.i64()
	c.stats.Decommissions = d.i64()
	c.stats.StaleEpochs = d.i64()

	alive := d.bools(maxSnapshotLen)
	beat := d.floats(maxSnapshotLen)
	member := d.bools(maxSnapshotLen)
	draining := d.bools(maxSnapshotLen)
	epoch := d.u64()
	inGroup := d.ints(maxSnapshotLen)
	if d.err == nil && (len(alive) != cfg.N || len(beat) != cfg.N || len(inGroup) != cfg.N ||
		len(member) != cfg.N || len(draining) != cfg.N) {
		d.fail("liveness/history length mismatch")
	}
	if d.err == nil && epoch == 0 {
		d.fail("world-view epoch 0")
	}
	if d.err == nil {
		copy(c.alive, alive)
		copy(c.beat, beat)
		copy(c.member, member)
		copy(c.draining, draining)
		copy(c.inGroup, inGroup)
		c.epoch = epoch
		c.aliveN = 0
		for i, a := range c.alive {
			if a && !c.member[i] {
				d.fail("rank %d alive but not a member", i)
				break
			}
			if a {
				c.aliveN++
			}
		}
	}
	for i := 0; i < cfg.N && d.err == nil; i++ {
		row := d.ints(maxSnapshotLen)
		if len(row) != cfg.N {
			d.fail("together row %d length %d", i, len(row))
			break
		}
		copy(c.together[i], row)
	}
	ln := d.count(maxSnapshotLen)
	for i := 0; i < ln && d.err == nil; i++ {
		c.log = append(c.log, d.ints(maxSnapshotLen))
	}

	// Iteration tracking and formation-policy state (v2).
	lastIter := d.ints(maxSnapshotLen)
	if d.err == nil && len(lastIter) != cfg.N {
		d.fail("iteration-tracking length mismatch")
	}
	if d.err == nil {
		copy(c.lastIter, lastIter)
	}
	c.maxIter = d.i64()
	c.lastNow = d.f64()
	for i := 0; i < cfg.N && d.err == nil; i++ {
		row := d.ints(maxSnapshotLen)
		if len(row) != cfg.N {
			d.fail("last-together row %d length %d", i, len(row))
			break
		}
		copy(c.lastTog[i], row)
	}
	bn := d.count(maxSnapshotLen)
	if d.err == nil && d.off+bn > len(body) {
		d.fail("truncated policy state")
	}
	if d.err == nil && bn > 0 {
		c.polBlob = append([]byte(nil), body[d.off:d.off+bn]...)
		d.off += bn
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("controller: snapshot has %d trailing bytes", len(body)-d.off)
	}
	return c, nil
}

// FlushGroups forms as many groups as the current queue supports — the
// public entry the failover path uses after a Restore or Rebuild to flush
// groups the lost controller might have been about to dispatch. (Graceful
// rank departure is Drain, in elastic.go.)
func (c *Controller) FlushGroups() []Group { return c.drainGroups() }

// IsQueued reports whether worker currently has a ready signal in the queue.
// The failover path uses it to recognize a retransmitted ready signal (the
// worker re-sent because its reply never came) as distinct from a duplicate.
func (c *Controller) IsQueued(worker int) bool {
	return worker >= 0 && worker < c.cfg.N && c.queued[worker]
}

// Rebuild is the cold-failover path: it reconstructs a controller for cfg
// purely from the ready signals workers re-send after noticing the old
// controller died, and returns it with any groups formed while replaying
// them. Duplicate signals from the same worker are tolerated (the first
// wins), since a worker that re-sends twice during the recovery window is
// expected. The rebuilt controller has a fresh sync-graph and empty history:
// frozen-avoidance warms up again, which is safe (the window must fill
// before the filter activates). Dead workers the lost controller knew about
// are re-detected by the staleness detector — a worker that never re-signals
// never lands in a group.
//
// Elasticity: a re-sent signal from a rank outside cfg's initial
// membership proves the lost controller had admitted it (it had already
// bootstrapped and signaled), so Rebuild re-admits it on the spot. Signal
// epochs are versions of the lost controller's world view and meaningless
// to the rebuilt one; they are stripped, and the fresh controller's first
// group replies re-issue the current epoch to everyone.
func Rebuild(cfg Config, signals []Signal) (*Controller, []Group, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	var groups []Group
	seen := make([]bool, c.cfg.N)
	for _, s := range signals {
		// "First wins" must survive group formation: once a worker's signal
		// lands in a group it is no longer queued, so the queued flag alone
		// would mistake a late retransmission for a fresh signal and group
		// the worker twice while it waits on a single reply.
		if s.Worker < 0 || s.Worker >= c.cfg.N || seen[s.Worker] || c.queued[s.Worker] {
			continue
		}
		seen[s.Worker] = true
		if !c.member[s.Worker] {
			if err := c.Join(s.Worker, s.Now); err != nil {
				return nil, nil, err
			}
		}
		s.Epoch = 0
		gs, err := c.Ready(s)
		if err != nil {
			return nil, nil, err
		}
		groups = append(groups, gs...)
	}
	return c, groups, nil
}
