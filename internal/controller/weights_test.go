package controller

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestConstantWeights(t *testing.T) {
	for p := 1; p <= 8; p++ {
		w := ConstantWeights(p)
		if len(w) != p {
			t.Fatalf("P=%d: %d weights", p, len(w))
		}
		for _, x := range w {
			if math.Abs(x-1/float64(p)) > 1e-15 {
				t.Fatalf("P=%d: weight %v", p, x)
			}
		}
	}
}

func TestDynamicEqualItersIsConstant(t *testing.T) {
	// All members at the same iteration: dynamic must degenerate to 1/P.
	w, init := DynamicWeights([]int{7, 7, 7}, 0.6, InitialModel)
	if init != 0 {
		t.Fatalf("init weight %v, want 0", init)
	}
	for _, x := range w {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Fatalf("weights %v, want uniform 1/3", w)
		}
	}
}

func TestDynamicFresherGetsMore(t *testing.T) {
	// Worker at iter 10 is fresher than the one at iter 7.
	w, init := DynamicWeights([]int{10, 7}, 0.6, InitialModel)
	if w[0] <= w[1] {
		t.Fatalf("fresh weight %v <= stale weight %v", w[0], w[1])
	}
	if got := sum(w) + init; math.Abs(got-1) > 1e-12 {
		t.Fatalf("weights+init sum to %v", got)
	}
	// Relative iters are 1 and 4, so slots 2,3 are missing: init weight must
	// be positive under the InitialModel rule.
	if init <= 0 {
		t.Fatalf("expected positive init weight, got %v", init)
	}
}

func TestDynamicTieSplitting(t *testing.T) {
	// Two members share relative iteration 1; one lags by one step. The tied
	// members split the fresh slot's weight equally (§3.3.3), and the fresh
	// slot as a whole outweighs the stale slot.
	w, _ := DynamicWeights([]int{5, 5, 4}, 0.6, InitialModel)
	if math.Abs(w[0]-w[1]) > 1e-12 {
		t.Fatalf("tied members got %v and %v", w[0], w[1])
	}
	if freshSlot, staleSlot := w[0]+w[1], w[2]; staleSlot >= freshSlot {
		t.Fatalf("stale slot %v >= fresh slot %v", staleSlot, freshSlot)
	}
}

func TestDynamicClosestIteration(t *testing.T) {
	// Relative iters 1 and 4: slots 2 and 3 are missing. Under
	// ClosestIteration, slot 2 goes to the fresh member (distance 1 each,
	// fresher wins tie... slot 2: |1-2|=1, |4-2|=2 → fresh; slot 3:
	// |1-3|=2, |4-3|=1 → stale).
	w, init := DynamicWeights([]int{10, 7}, 0.6, ClosestIteration)
	if init != 0 {
		t.Fatalf("init weight %v under ClosestIteration", init)
	}
	if math.Abs(sum(w)-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum(w))
	}
	alpha, kmax := 0.6, 4
	wantFresh := emaSlotWeight(alpha, 1, kmax) + emaSlotWeight(alpha, 2, kmax)
	wantStale := emaSlotWeight(alpha, 4, kmax) + emaSlotWeight(alpha, 3, kmax)
	if math.Abs(w[0]-wantFresh) > 1e-12 || math.Abs(w[1]-wantStale) > 1e-12 {
		t.Fatalf("got %v want [%v %v]", w, wantFresh, wantStale)
	}
}

func TestEmaSlotWeightsFormDistribution(t *testing.T) {
	for _, alpha := range []float64{0.3, 0.6, 0.9} {
		for kmax := 1; kmax <= 10; kmax++ {
			var s float64
			prev := math.Inf(1)
			for slot := 1; slot <= kmax; slot++ {
				w := emaSlotWeight(alpha, slot, kmax)
				if w <= 0 || w > 1 {
					t.Fatalf("alpha=%v kmax=%d slot=%d: weight %v", alpha, kmax, slot, w)
				}
				if w > prev {
					t.Fatalf("weights not decaying at slot %d", slot)
				}
				prev = w
				s += w
			}
			if math.Abs(s-1) > 1e-12 {
				t.Fatalf("alpha=%v kmax=%d: slots sum to %v", alpha, kmax, s)
			}
		}
	}
}

func TestDynamicWeightsEdgeCases(t *testing.T) {
	if w, init := DynamicWeights(nil, 0.6, InitialModel); w != nil || init != 0 {
		t.Fatal("empty group should produce no weights")
	}
	w, init := DynamicWeights([]int{3}, 0.6, InitialModel)
	if len(w) != 1 || math.Abs(w[0]-1) > 1e-12 || init != 0 {
		t.Fatalf("singleton group: w=%v init=%v", w, init)
	}
}

func TestDynamicInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v: expected panic", alpha)
				}
			}()
			DynamicWeights([]int{1, 2}, alpha, InitialModel)
		}()
	}
}

func TestWeightingStrings(t *testing.T) {
	if Constant.String() != "constant" || Dynamic.String() != "dynamic" {
		t.Fatal("Weighting strings")
	}
	if InitialModel.String() != "initial-model" || ClosestIteration.String() != "closest-iteration" {
		t.Fatal("ApproxRule strings")
	}
	if Weighting(9).String() == "" || ApproxRule(9).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

func TestSortedDescending(t *testing.T) {
	in := []int{3, 9, 1, 9}
	out := sortedDescending(in)
	want := []int{9, 9, 3, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v want %v", out, want)
		}
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}

// Property: for any group of iteration numbers and either rule, weights are
// a probability distribution, members at the same iteration weigh the same,
// and under the InitialModel rule the total weight of a fresher slot exceeds
// that of a staler one (the EMA decay the paper requires).
func TestQuickDynamicWeightInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 2 + r.Intn(6)
		iters := make([]int, p)
		base := r.Intn(100)
		for i := range iters {
			iters[i] = base + r.Intn(12)
		}
		alpha := 0.05 + 0.9*r.Float64()
		for _, rule := range []ApproxRule{InitialModel, ClosestIteration} {
			w, init := DynamicWeights(iters, alpha, rule)
			total := init
			for _, x := range w {
				if x < 0 || x > 1 || math.IsNaN(x) {
					return false
				}
				total += x
			}
			if math.Abs(total-1) > 1e-9 {
				return false
			}
			if rule == ClosestIteration && init != 0 {
				return false
			}
			// Equal iterations split their slot equally.
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					if iters[i] == iters[j] && math.Abs(w[i]-w[j]) > 1e-12 {
						return false
					}
				}
			}
			if rule == InitialModel {
				// Slot totals (member weight × tie count) decay with staleness.
				slotTotal := map[int]float64{}
				ties := map[int]int{}
				maxIter := iters[0]
				for _, k := range iters {
					if k > maxIter {
						maxIter = k
					}
				}
				for i, k := range iters {
					rel := maxIter - k + 1
					slotTotal[rel] += w[i]
					ties[rel]++
				}
				for ra, wa := range slotTotal {
					for rb, wb := range slotTotal {
						if ra < rb && wa <= wb-1e-12 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
