package controller

import (
	"errors"
	"testing"

	"partialreduce/internal/policy"
)

// A drain that lands while the queue is mid-formation must both finish the
// in-flight group (the shrunken active set can complete it immediately) and
// exclude the draining rank from all future formation.
func TestDrainDuringGroupFormation(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 4})
	ready(t, c, 0, 1)
	ready(t, c, 1, 1)
	ready(t, c, 2, 1) // three of four queued: the group is one signal short
	e0 := c.Epoch()

	gs, err := c.Drain(3)
	if err != nil {
		t.Fatal(err)
	}
	// The active set shrank to 3, so the pending trio forms right now.
	if len(gs) != 1 || len(gs[0].Members) != 3 {
		t.Fatalf("drain did not complete the pending group: %+v", gs)
	}
	for _, m := range gs[0].Members {
		if m == 3 {
			t.Fatal("draining rank grouped into a new formation")
		}
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("epoch %d after drain, want %d", c.Epoch(), e0+1)
	}
	// A draining rank may not start new work.
	if _, err := c.Ready(Signal{Worker: 3, Iter: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("ready from draining rank: %v, want ErrDraining", err)
	}
	if _, err := c.Decommission(3); err != nil {
		t.Fatal(err)
	}
	if c.IsMember(3) || c.ActiveCount() != 3 {
		t.Fatalf("decommission left member=%v active=%d", c.IsMember(3), c.ActiveCount())
	}
	st := c.Stats()
	if st.Drains != 1 || st.Decommissions != 1 || st.Failures != 0 {
		t.Fatalf("graceful departure miscounted: %+v", st)
	}
}

// A mid-run join must survive both failover paths: a warm restore carries the
// joined membership and epoch in the v3 snapshot, and a cold rebuild re-admits
// the rank because its re-sent signal proves the lost controller had admitted
// it.
func TestJoinAcrossSnapshotRestore(t *testing.T) {
	c := mustNew(t, Config{N: 6, P: 2, Initial: 4})
	ready(t, c, 0, 1) // one queued signal, one short of a P=2 group
	if err := c.Join(4, 1.5); err != nil {
		t.Fatal(err)
	}
	epoch := c.Epoch()

	// Warm: the snapshot round-trips membership, epoch, and elastic stats.
	r, err := Restore(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsMember(4) || r.IsMember(5) || r.Epoch() != epoch {
		t.Fatalf("restore lost elastic state: member4=%v member5=%v epoch=%d want %d",
			r.IsMember(4), r.IsMember(5), r.Epoch(), epoch)
	}
	if r.Stats().Joins != 1 {
		t.Fatalf("restore lost join count: %+v", r.Stats())
	}
	// The joiner is a first-class member of the restored world: its signal
	// under the current epoch groups normally.
	if gs, err := r.Ready(Signal{Worker: 4, Iter: 1, Epoch: r.Epoch()}); err != nil || len(gs) != 1 {
		t.Fatalf("joiner ready after restore: groups=%v err=%v", gs, err)
	}

	// Cold: a rebuilt controller has only the re-sent signals, and the
	// joiner's signal re-admits it on the spot (its old epoch is stripped,
	// not held against it).
	rb, groups, err := Rebuild(c.Config(), []Signal{
		{Worker: 0, Iter: 2, Now: 3},
		{Worker: 4, Iter: 2, Now: 3, Epoch: epoch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rb.IsMember(4) || rb.Stats().Joins != 1 {
		t.Fatalf("rebuild did not re-admit joiner: member=%v stats=%+v", rb.IsMember(4), rb.Stats())
	}
	if len(groups) != 1 || len(groups[0].Members) != 2 {
		t.Fatalf("rebuild replay groups: %+v", groups)
	}
}

// An epoch-stale ready signal is rejected deterministically — and harmlessly:
// the sender stays alive, uncondemned, and its refreshed signal is accepted.
func TestStaleEpochRejectedWithoutCondemning(t *testing.T) {
	c := mustNew(t, Config{N: 6, P: 2, Initial: 4})
	old := c.Epoch()
	if err := c.Join(4, 1); err != nil { // membership change: epoch moves on
		t.Fatal(err)
	}
	if _, err := c.Ready(Signal{Worker: 1, Iter: 1, Epoch: old}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale signal: %v, want ErrStaleEpoch", err)
	}
	if !c.IsAlive(1) || !c.IsMember(1) {
		t.Fatal("stale-epoch rejection condemned the sender")
	}
	st := c.Stats()
	if st.StaleEpochs != 1 || st.Failures != 0 {
		t.Fatalf("stale rejection miscounted: %+v", st)
	}
	// Refreshed (or unversioned) signals are accepted; nothing was lost.
	if _, err := c.Ready(Signal{Worker: 1, Iter: 1, Epoch: c.Epoch()}); err != nil {
		t.Fatalf("refreshed signal rejected: %v", err)
	}
	if c.QueueLen() != 1 {
		t.Fatalf("queue %d after refreshed signal, want 1", c.QueueLen())
	}
}

// The adaptive-P policy must re-normalize when membership changes mid-run:
// a straggler's cadence estimate drags P down to PMin while it is a member,
// and once the straggler drains out the dispersion is computed over the
// remaining (homogeneous) members only, so P recovers to the configured size.
func TestAdaptivePolicyRenormalizesOnMembershipChange(t *testing.T) {
	const n, p = 6, 4
	c := mustNew(t, Config{N: n, P: p, Window: MinWindow(n, 2)})
	pol, err := policy.New(policy.Spec{Name: policy.NameAdaptiveP, PMin: 2, PMax: p, Window: 4}, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}

	readyAt := func(w, iter int, now float64) []Group {
		t.Helper()
		gs, err := c.Ready(Signal{Worker: w, Iter: iter, Now: now})
		if err != nil {
			t.Fatalf("Ready(%d@%v): %v", w, now, err)
		}
		return gs
	}

	// Phase 1: ranks 0..4 signal once per unit of time; rank 5 at half that
	// cadence. Dispersion 2.0 clears the shrink threshold, so the decided P
	// walks down to PMin while the straggler is a member.
	minP := p
	var sizes []int
	for r := 1; r <= 16; r++ {
		for w := 0; w < 5; w++ {
			for _, g := range readyAt(w, r, float64(r)) {
				sizes = append(sizes, len(g.Members))
			}
		}
		if r%2 == 0 {
			for _, g := range readyAt(5, r/2, float64(r)) {
				sizes = append(sizes, len(g.Members))
			}
		}
	}
	for _, s := range sizes {
		if s < minP {
			minP = s
		}
	}
	if minP != 2 {
		t.Fatalf("straggler did not shrink groups to PMin: min size %d (sizes %v)", minP, sizes)
	}

	// Phase 2: the straggler drains out. Its stale cadence estimate must not
	// count against the new, smaller membership — dispersion over the five
	// homogeneous survivors is ~1, so P grows back to the configured size.
	if gs, err := c.Drain(5); err != nil {
		t.Fatal(err)
	} else if len(gs) > 0 {
		sizes = sizes[:0]
	}
	if _, err := c.Decommission(5); err != nil {
		t.Fatal(err)
	}
	last := 0
	for r := 17; r <= 40; r++ {
		for w := 0; w < 5; w++ {
			for _, g := range readyAt(w, r, float64(r)) {
				last = len(g.Members)
			}
		}
	}
	if last != p {
		t.Fatalf("P did not recover to %d after the straggler drained: last group size %d", p, last)
	}
}
