package controller

import (
	"fmt"
	"math"
	"sort"
)

// Weighting selects the model-aggregation rule of a P-Reduce group.
type Weighting int

const (
	// Constant is §3.1's plain average: every member weighs 1/P.
	Constant Weighting = iota
	// Dynamic is §3.3's staleness-aware rule: exponential-moving-average
	// weights over relative iteration numbers, penalizing delayed models.
	Dynamic
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case Constant:
		return "constant"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// ApproxRule chooses how Dynamic weighting handles relative iteration slots
// no group member occupies (§3.3.3).
type ApproxRule int

const (
	// InitialModel assigns missing slots' weight to the shared initial model
	// x₁ — the paper's "conservative approximation". The group result then
	// includes an InitWeight on x₁, which every worker holds a copy of.
	InitialModel ApproxRule = iota
	// ClosestIteration assigns each missing slot's weight to the member with
	// the nearest relative iteration number (ties to the fresher member) —
	// the paper's suggested alternative.
	ClosestIteration
)

// String implements fmt.Stringer.
func (r ApproxRule) String() string {
	switch r {
	case InitialModel:
		return "initial-model"
	case ClosestIteration:
		return "closest-iteration"
	default:
		return fmt.Sprintf("ApproxRule(%d)", int(r))
	}
}

// emaWeights distributes the EMA mass over relative iteration slots 1..kmax:
// slot ĵ (1 = freshest) receives (1−α)·α^(ĵ−1) / (1−α^kmax), Eq. (9) with
// the bias-corrected denominator.
func emaSlotWeight(alpha float64, slot, kmax int) float64 {
	if kmax == 1 {
		return 1
	}
	return (1 - alpha) * math.Pow(alpha, float64(slot-1)) / (1 - math.Pow(alpha, float64(kmax)))
}

// DynamicWeights computes the staleness-aware aggregation weights for a
// group whose members report iteration numbers iters. It returns one weight
// per member (aligned with iters) plus the weight assigned to the shared
// initial model under the InitialModel rule (0 under ClosestIteration).
// Weights plus initWeight always sum to 1.
func DynamicWeights(iters []int, alpha float64, rule ApproxRule) (weights []float64, initWeight float64) {
	p := len(iters)
	if p == 0 {
		return nil, 0
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("controller: EMA alpha must be in (0,1), got %v", alpha))
	}
	maxIter := iters[0]
	for _, k := range iters[1:] {
		if k > maxIter {
			maxIter = k
		}
	}
	// Relative iteration number k̂_i = max_j k_j − k_i + 1 ∈ [1, k̂max].
	rel := make([]int, p)
	kmax := 1
	for i, k := range iters {
		rel[i] = maxIter - k + 1
		if rel[i] > kmax {
			kmax = rel[i]
		}
	}

	// Members occupying each slot (workers with equal relative iteration
	// split the slot's weight equally, §3.3.3).
	bySlot := make(map[int][]int, p)
	for i, r := range rel {
		bySlot[r] = append(bySlot[r], i)
	}

	weights = make([]float64, p)
	for slot := 1; slot <= kmax; slot++ {
		w := emaSlotWeight(alpha, slot, kmax)
		if members, ok := bySlot[slot]; ok {
			share := w / float64(len(members))
			for _, i := range members {
				weights[i] += share
			}
			continue
		}
		// Missing slot: apply the approximation rule.
		switch rule {
		case InitialModel:
			initWeight += w
		case ClosestIteration:
			members := bySlot[closestSlot(rel, slot)]
			share := w / float64(len(members))
			for _, i := range members {
				weights[i] += share
			}
		default:
			panic(fmt.Sprintf("controller: unknown ApproxRule %d", rule))
		}
	}
	return weights, initWeight
}

// closestSlot returns the occupied relative iteration nearest to slot,
// preferring the fresher (smaller k̂) slot on distance ties.
func closestSlot(rel []int, slot int) int {
	best, bestDist := 0, math.MaxInt
	for _, r := range rel {
		d := r - slot
		if d < 0 {
			d = -d
		}
		if d < bestDist || (d == bestDist && r < best) {
			best, bestDist = r, d
		}
	}
	return best
}

// ConstantWeights returns the 1/P weights of constant partial reduce.
func ConstantWeights(p int) []float64 {
	w := make([]float64, p)
	for i := range w {
		w[i] = 1 / float64(p)
	}
	return w
}

// sortedDescending returns a copy of iters sorted descending — the order the
// paper's controller collects iteration numbers in (§3.3.3). Exported logic
// keeps group metadata deterministic for the history DB.
func sortedDescending(iters []int) []int {
	out := make([]int, len(iters))
	copy(out, iters)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
