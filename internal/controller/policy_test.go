package controller

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"partialreduce/internal/policy"
	"partialreduce/internal/trace"
)

// replayScript is a seeded random controller workload: ready signals with
// advancing iterations and clocks, interleaved failures and rejoins. The
// same seed always produces the same op sequence, so two controllers fed
// the same script are comparable event for event.
type replayOp struct {
	kind   int // 0: ready, 1: fail, 2: rejoin
	worker int
	iter   int
	now    float64
}

func replayScript(seed int64, n, steps int) []replayOp {
	rng := rand.New(rand.NewSource(seed))
	iters := make([]int, n)
	dead := make([]bool, n)
	deadN := 0
	now := 0.0
	var ops []replayOp
	for len(ops) < steps {
		now += 0.05 + rng.Float64()
		switch r := rng.Intn(20); {
		case r == 0 && deadN < n-2:
			w := rng.Intn(n)
			if !dead[w] {
				dead[w] = true
				deadN++
				ops = append(ops, replayOp{kind: 1, worker: w, now: now})
				continue
			}
		case r == 1 && deadN > 0:
			w := rng.Intn(n)
			if dead[w] {
				dead[w] = false
				deadN--
				ops = append(ops, replayOp{kind: 2, worker: w, now: now})
				continue
			}
		}
		w := rng.Intn(n)
		if dead[w] {
			continue
		}
		iters[w]++
		ops = append(ops, replayOp{kind: 0, worker: w, iter: iters[w], now: now})
	}
	return ops
}

// runScript replays ops against c, tolerating rejected signals (duplicate
// queue entries arise naturally from the random script), and returns
// every group formed.
func runScript(c *Controller, ops []replayOp) []Group {
	var out []Group
	for _, op := range ops {
		switch op.kind {
		case 0:
			if gs, err := c.Ready(Signal{Worker: op.worker, Iter: op.iter, Now: op.now}); err == nil {
				out = append(out, gs...)
			}
		case 1:
			out = append(out, c.Fail(op.worker)...)
		case 2:
			_ = c.Rejoin(op.worker)
		}
	}
	return out
}

// TestStaticPolicyBitIdentical is the metamorphic golden test: a
// controller with the static policy attached must produce exactly the
// groups AND exactly the trace events of a controller with no policy at
// all, across seeded replay scripts with failures and rejoins. This pins
// the whole policy code path — consultPolicy, deviation detection, bias
// plumbing — as a no-op for the static policy.
func TestStaticPolicyBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := Config{N: 6, P: 3, Weighting: Dynamic, Alpha: 0.5, RecordGroups: true}
		ops := replayScript(seed, cfg.N, 400)

		clock := 0.0
		newTraced := func() (*Controller, *trace.Tracer) {
			c := mustNew(t, cfg)
			tr := trace.New(trace.FuncClock(func() float64 { return clock }), 1<<14)
			c.SetTracer(tr)
			return c, tr
		}

		base, baseTr := newTraced()
		baseGroups := runScript(base, ops)

		pol, err := policy.New(policy.Spec{Name: policy.NameStatic}, cfg.N, cfg.P)
		if err != nil {
			t.Fatal(err)
		}
		withPol, polTr := newTraced()
		if err := withPol.SetPolicy(pol); err != nil {
			t.Fatal(err)
		}
		polGroups := runScript(withPol, ops)

		if !reflect.DeepEqual(baseGroups, polGroups) {
			t.Fatalf("seed %d: groups diverged:\n  nil policy: %d groups\n  static:     %d groups",
				seed, len(baseGroups), len(polGroups))
		}
		if !reflect.DeepEqual(baseTr.Events(), polTr.Events()) {
			t.Fatalf("seed %d: trace events diverged (%d vs %d events)",
				seed, baseTr.Len(), polTr.Len())
		}
		if base.Stats() != withPol.Stats() {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, base.Stats(), withPol.Stats())
		}
	}
}

// TestAdaptivePolicyRespectsFloors: even with an adaptive policy shrunk to
// its floor, every formed group has at least PMin members and never more
// than the alive worker count — the controller-side clamp property.
func TestAdaptivePolicyRespectsFloors(t *testing.T) {
	const pmin, pmax = 2, 4
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{N: 8, P: 4, Weighting: Dynamic, Alpha: 0.5, Window: MinWindow(8, pmin)}
		c := mustNew(t, cfg)
		pol, err := policy.New(policy.Spec{Name: policy.NameAdaptiveP, PMin: pmin, PMax: pmax, Window: 2}, cfg.N, cfg.P)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetPolicy(pol); err != nil {
			t.Fatal(err)
		}
		for _, g := range runScript(c, replayScript(seed, cfg.N, 600)) {
			if len(g.Members) < pmin || len(g.Members) > pmax {
				t.Fatalf("seed %d: group size %d outside [%d,%d]", seed, len(g.Members), pmin, pmax)
			}
		}
	}
}

// TestPolicyGroupWeightsSumToOne: groups formed under policy alpha
// overrides still carry weights summing to 1 within 1e-12 (together with
// the initial-model mass when the conservative approximation is in use).
func TestPolicyGroupWeightsSumToOne(t *testing.T) {
	for _, approx := range []ApproxRule{InitialModel, ClosestIteration} {
		cfg := Config{N: 8, P: 4, Weighting: Dynamic, Alpha: 0.5, Approx: approx}
		c := mustNew(t, cfg)
		// alphaOverride deviates from the configured decay on every group.
		if err := c.SetPolicy(alphaOverridePolicy{alpha: 0.3}); err != nil {
			t.Fatal(err)
		}
		groups := runScript(c, replayScript(3, cfg.N, 500))
		if len(groups) == 0 {
			t.Fatal("script formed no groups")
		}
		for _, g := range groups {
			sum := g.InitWeight
			for _, w := range g.Weights {
				sum += w
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("approx %v: group weights sum to %v (|Δ|=%g)", approx, sum, math.Abs(sum-1))
			}
		}
	}
}

// alphaOverridePolicy is a test double: static sizing, fixed alpha
// override.
type alphaOverridePolicy struct{ alpha float64 }

func (alphaOverridePolicy) Name() string                 { return "test-alpha" }
func (alphaOverridePolicy) OnSignal(_, _ int, _ float64) {}
func (p alphaOverridePolicy) Decide(in policy.Inputs) policy.Decision {
	n := in.ConfigP
	if in.Alive < n {
		n = in.Alive
	}
	return policy.Decision{P: n, Alpha: p.alpha}
}
func (alphaOverridePolicy) Snapshot() []byte {
	return policy.EncodeState(policy.State{Kind: "test-alpha"})
}
func (alphaOverridePolicy) Restore([]byte) error { return nil }
func (alphaOverridePolicy) Reset()               {}

// TestSnapshotCarriesPolicyState pins the v2 snapshot contract: policy
// state rides the controller snapshot, Snapshot∘Restore is the identity
// on bytes with or without a policy re-attached, and a fresh policy
// attached to a restored controller picks up exactly the old state.
func TestSnapshotCarriesPolicyState(t *testing.T) {
	cfg := Config{N: 6, P: 3, Weighting: Dynamic, Alpha: 0.5, Window: MinWindow(6, 2)}
	spec := policy.Spec{Name: policy.NameAdaptiveP, PMin: 2, PMax: 3, Window: 2}
	c := mustNew(t, cfg)
	pol, err := policy.New(spec, cfg.N, cfg.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	ops := replayScript(7, cfg.N, 300)
	runScript(c, ops)

	snap := c.Snapshot()

	// Restore without re-attaching a policy: the blob is parked and passed
	// through, so the re-snapshot is byte-identical.
	parked, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if again := parked.Snapshot(); !bytes.Equal(snap, again) {
		t.Fatal("Snapshot∘Restore without policy re-attach is not the identity")
	}

	// Restore and attach a fresh policy instance: SetPolicy applies the
	// parked blob, so the twin continues exactly like the original.
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := policy.New(spec, cfg.N, cfg.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SetPolicy(fresh); err != nil {
		t.Fatal(err)
	}
	if again := restored.Snapshot(); !bytes.Equal(snap, again) {
		t.Fatal("snapshot changed after policy re-attach (state was not applied exactly)")
	}

	cont := replayScript(11, cfg.N, 200)
	a := runScript(c, cont)
	b := runScript(restored, cont)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("continuations diverged after policy failover: %d vs %d groups", len(a), len(b))
	}
}

// TestIntrospectionDeadSentinels is the satellite-4 regression test:
// introspection accessors must not serve frozen values for
// condemned-but-not-yet-purged workers.
func TestIntrospectionDeadSentinels(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, Window: 3})
	// Workers 0..3 all report; 0 runs ahead.
	pairs := [][2]int{{0, 1}, {2, 3}, {0, 2}}
	iter := 0
	for _, p := range pairs {
		iter++
		ready(t, c, p[0], iter)
		ready(t, c, p[1], iter)
	}
	ready(t, c, 0, 10) // frontrunner pulls maxIter to 10, then queues

	// Worker 3 was fast-forwarded to iter 2 by the {2,3} group.
	if got := c.StalenessOf(3); got != 10-2 {
		t.Fatalf("pre-condemnation StalenessOf(3) = %d, want 8", got)
	}

	// Condemn the frontrunner: its own staleness reads -1, and the
	// surviving workers' staleness is measured against the best survivor,
	// not the corpse's frozen iteration.
	c.ReportFailure(0)
	if got := c.StalenessOf(0); got != -1 {
		t.Fatalf("condemned StalenessOf(0) = %d, want -1 sentinel", got)
	}
	if got := c.MaxIter(); got != 3 {
		t.Fatalf("MaxIter after frontrunner death = %d, want 3 (best survivor)", got)
	}
	// Best survivor is worker 2 at iter 3 (fast-forwarded by {0,2}).
	if got := c.StalenessOf(3); got != 1 {
		t.Fatalf("survivor StalenessOf(3) = %d, want 1 against surviving max", got)
	}

	// ContactAge: rows and columns of a condemned worker read -1, even for
	// pairs that synced before the death.
	age := c.ContactAge()
	for j := 1; j < 4; j++ {
		if age[0][j] != -1 || age[j][0] != -1 {
			t.Fatalf("condemned ContactAge row/col not sentineled: age[0][%d]=%d age[%d][0]=%d",
				j, age[0][j], j, age[j][0])
		}
	}
	if age[2][3] < 0 {
		t.Fatalf("alive pair {2,3} lost its contact age: %d", age[2][3])
	}

	// Rejoin restores live readings (staleness vs. the current max).
	if err := c.Rejoin(0); err != nil {
		t.Fatal(err)
	}
	if got := c.StalenessOf(0); got != 0 {
		t.Fatalf("rejoined StalenessOf(0) = %d, want 0 (it is the frontrunner again)", got)
	}
	if got := c.MaxIter(); got != 10 {
		t.Fatalf("MaxIter after rejoin = %d, want 10", got)
	}
}

// TestStragglerBiasReordersQueue: with the straggler-bias policy, a
// freshly-signaled high-staleness worker jumps ahead of earlier fresh
// signals into the next group, and the non-FIFO pop is recorded as a
// KPolicyDecision deviation.
func TestStragglerBiasReordersQueue(t *testing.T) {
	c := mustNew(t, Config{N: 6, P: 3, DisableGroupFilter: true})
	tr := trace.New(trace.FuncClock(func() float64 { return 0 }), 1<<10)
	c.SetTracer(tr)
	pol, err := policy.New(policy.Spec{Name: policy.NameStragglerBias}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	ready(t, c, 0, 9)       // maxIter 9, queue [0]
	ready(t, c, 1, 9)       // queue [0,1], both staleness 0
	gs := ready(t, c, 2, 2) // staleness 7: bias order [2,0,1] completes the group
	if len(gs) != 1 {
		t.Fatalf("expected group, got %v", gs)
	}
	if want := []int{2, 0, 1}; !reflect.DeepEqual(gs[0].Members, want) {
		t.Fatalf("members = %v, want straggler-first %v", gs[0].Members, want)
	}
	found := false
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KPolicyDecision {
			found = true
		}
	}
	if !found {
		t.Fatal("queue reorder was not recorded as a KPolicyDecision deviation")
	}
}
