package controller

import "testing"

func TestQueueDepth(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 3})
	if got := c.QueueDepth(); got != 0 {
		t.Fatalf("fresh QueueDepth = %d, want 0", got)
	}
	ready(t, c, 0, 1)
	if got := c.QueueDepth(); got != 1 {
		t.Fatalf("QueueDepth after one signal = %d, want 1", got)
	}
	ready(t, c, 1, 1)
	if got := c.QueueDepth(); got != 2 {
		t.Fatalf("QueueDepth after two signals = %d, want 2", got)
	}
	gs := ready(t, c, 2, 1) // completes the P=3 group
	if len(gs) != 1 {
		t.Fatalf("expected a group, got %v", gs)
	}
	if got := c.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after group formed = %d, want 0", got)
	}
}

func TestStalenessOf(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 4})
	if got := c.StalenessOf(-1); got != -1 {
		t.Fatalf("StalenessOf(-1) = %d, want -1", got)
	}
	if got := c.StalenessOf(4); got != -1 {
		t.Fatalf("StalenessOf(4) = %d, want -1", got)
	}
	if got := c.StalenessOf(0); got != 0 {
		t.Fatalf("fresh StalenessOf(0) = %d, want 0", got)
	}

	ready(t, c, 0, 5)
	if got := c.MaxIter(); got != 5 {
		t.Fatalf("MaxIter = %d, want 5", got)
	}
	if got := c.StalenessOf(0); got != 0 {
		t.Fatalf("StalenessOf(leader) = %d, want 0", got)
	}
	if got := c.StalenessOf(1); got != 5 {
		t.Fatalf("StalenessOf(silent worker) = %d, want 5", got)
	}

	ready(t, c, 1, 3)
	if got := c.StalenessOf(1); got != 2 {
		t.Fatalf("StalenessOf(1) = %d, want 2", got)
	}

	// Completing the group fast-forwards every member to the group max.
	ready(t, c, 2, 1)
	gs := ready(t, c, 3, 2)
	if len(gs) != 1 {
		t.Fatalf("expected a P=4 group, got %v", gs)
	}
	for w := 0; w < 4; w++ {
		if got := c.StalenessOf(w); got != 0 {
			t.Fatalf("post-group StalenessOf(%d) = %d, want 0", w, got)
		}
	}
}

func TestContactAge(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, Window: 3})

	// Cold start: nobody has met anybody.
	if got := c.MaxContactAge(); got != -1 {
		t.Fatalf("cold MaxContactAge = %d, want -1", got)
	}
	age := c.ContactAge()
	if age[0][0] != 0 || age[0][1] != -1 {
		t.Fatalf("cold ContactAge row: %v", age[0])
	}

	// Group {0,1}, then {2,3}, then {0,2}, {1,3}: all pairs meet within a
	// few groups in FIFO order.
	pairs := [][2]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 3}, {1, 2}}
	iter := 0
	for _, p := range pairs {
		iter++
		ready(t, c, p[0], iter)
		gs := ready(t, c, p[1], iter)
		if len(gs) != 1 {
			t.Fatalf("pair %v did not form a group (got %v)", p, gs)
		}
	}
	// Every pair has now met: the age matrix is dense and the max age
	// equals groups-formed since the earliest pair.
	if got := c.MaxContactAge(); got < 0 {
		t.Fatalf("MaxContactAge = %d after all pairs met", got)
	}
	age = c.ContactAge()
	if age[0][1] != 5 { // {0,1} was the first of 6 groups
		t.Fatalf("ContactAge[0][1] = %d, want 5", age[0][1])
	}
	if age[1][2] != 0 { // {1,2} was the last group
		t.Fatalf("ContactAge[1][2] = %d, want 0", age[1][2])
	}
	if age[0][1] != age[1][0] {
		t.Fatalf("ContactAge not symmetric: %d vs %d", age[0][1], age[1][0])
	}
	if got := c.MaxContactAge(); got != 5 {
		t.Fatalf("MaxContactAge = %d, want 5", got)
	}
}

func TestSyncComponentsAccessor(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, Window: 3})
	// Before any group the windowed graph has no edges: 4 components.
	if got := c.SyncComponents(); got != 4 {
		t.Fatalf("cold SyncComponents = %d, want 4", got)
	}
	ready(t, c, 0, 1)
	ready(t, c, 1, 1)
	if got := c.SyncComponents(); got != 3 {
		t.Fatalf("after {0,1}: SyncComponents = %d, want 3", got)
	}
}

// TestAccessorsDoNotMutate pins the read-only contract: interleaving
// accessor calls with signals must not change grouping decisions.
func TestAccessorsDoNotMutate(t *testing.T) {
	run := func(introspect bool) []Group {
		c := mustNew(t, Config{N: 4, P: 2})
		var got []Group
		for i := 1; i <= 8; i++ {
			for w := 0; w < 4; w++ {
				if introspect {
					_ = c.QueueDepth()
					_ = c.StalenessOf(w)
					_ = c.MaxIter()
					_ = c.ContactAge()
					_ = c.MaxContactAge()
					_ = c.SyncComponents()
				}
				gs, err := c.Ready(Signal{Worker: w, Iter: i})
				if err != nil {
					t.Fatalf("Ready: %v", err)
				}
				got = append(got, gs...)
			}
		}
		return got
	}
	plain, probed := run(false), run(true)
	if len(plain) != len(probed) {
		t.Fatalf("group counts differ: %d vs %d", len(plain), len(probed))
	}
	for i := range plain {
		if len(plain[i].Members) != len(probed[i].Members) {
			t.Fatalf("group %d differs", i)
		}
		for j := range plain[i].Members {
			if plain[i].Members[j] != probed[i].Members[j] {
				t.Fatalf("group %d member %d differs: %v vs %v", i, j, plain[i], probed[i])
			}
		}
	}
}
