package controller

// Read-only introspection accessors. The tracer and the telemetry
// endpoint (and tests) read controller state through these instead of
// reaching into fields; none of them mutate the controller, and all are
// O(1) except the contact-age scans, which are O(N²) and intended for
// sampling, not hot paths.

// QueueDepth returns the number of waiting ready signals — the quantity
// the controller's KReady trace events and queue-depth time series
// report. It is an alias of QueueLen under the telemetry-facing name.
func (c *Controller) QueueDepth() int { return len(c.queue) }

// StalenessOf returns worker rank's current staleness: the cluster
// maximum iteration minus the worker's latest known iteration (ready
// signals and group fast-forwards both advance it). Out-of-range ranks
// and dead workers return the -1 sentinel — a condemned worker's last
// reported iteration is frozen at its crash point, so reading it as a
// live staleness would feed policies and dashboards a stale value that
// only grows. Staleness is 0 when the worker is (tied for) the most
// advanced.
func (c *Controller) StalenessOf(rank int) int {
	if rank < 0 || rank >= c.cfg.N || !c.alive[rank] {
		return -1
	}
	return c.maxIter - c.lastIter[rank]
}

// MaxIter returns the maximum iteration the controller has observed
// across alive workers (0 before any signal). When the frontrunner dies,
// the maximum recedes to the best surviving worker, so survivors'
// staleness is measured against a peer that can still form groups.
func (c *Controller) MaxIter() int { return c.maxIter }

// refreshMaxIter recomputes maxIter over the alive workers — called on
// liveness transitions so a dead frontrunner stops inflating everyone
// else's staleness.
func (c *Controller) refreshMaxIter() {
	c.maxIter = 0
	for w := 0; w < c.cfg.N; w++ {
		if c.alive[w] && c.lastIter[w] > c.maxIter {
			c.maxIter = c.lastIter[w]
		}
	}
}

// ContactAge returns the iterations-since-last-contact matrix in group
// sequence numbers: age[i][j] is the number of groups formed since i
// and j last synchronized together, -1 if they never have — or if either
// endpoint is dead, since a condemned worker can never sync again and
// its frozen last-contact entry would otherwise read as an ordinary,
// ever-growing age. Diagonal entries are 0. The matrix is freshly
// allocated; callers may keep it.
func (c *Controller) ContactAge() [][]int {
	n := c.cfg.N
	seq := c.stats.GroupsFormed
	age := make([][]int, n)
	for i := range age {
		age[i] = make([]int, n)
		for j := range age[i] {
			if i == j {
				continue
			}
			if !c.alive[i] || !c.alive[j] {
				age[i][j] = -1
				continue
			}
			if last := c.lastTog[i][j]; last < 0 {
				age[i][j] = -1
			} else {
				age[i][j] = seq - last
			}
		}
	}
	return age
}

// MaxContactAge returns the contact age of the most estranged alive
// pair: the maximum over alive pairs (i,j) of groups formed since i and
// j last synced. It returns -1 when some alive pair has never met (the
// cold-start state, and the state after a partition outlives the
// window), and 0 when fewer than two workers are alive. This is the
// scalar the sync-graph connectivity gauge exports: the paper's
// group-frozen avoidance exists precisely to bound it.
func (c *Controller) MaxContactAge() int {
	seq := c.stats.GroupsFormed
	maxAge := 0
	for i := 0; i < c.cfg.N; i++ {
		if !c.alive[i] {
			continue
		}
		for j := i + 1; j < c.cfg.N; j++ {
			if !c.alive[j] {
				continue
			}
			last := c.lastTog[i][j]
			if last < 0 {
				return -1
			}
			if age := seq - last; age > maxAge {
				maxAge = age
			}
		}
	}
	return maxAge
}

// SyncComponents returns the number of connected components of the
// windowed sync-graph (1 when healthy).
func (c *Controller) SyncComponents() int { return c.graph.NumComponents() }
