package controller

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func ready(t *testing.T, c *Controller, worker, iter int) []Group {
	t.Helper()
	gs, err := c.Ready(Signal{Worker: worker, Iter: iter})
	if err != nil {
		t.Fatalf("Ready(%d): %v", worker, err)
	}
	return gs
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 1, P: 2},
		{N: 4, P: 1},
		{N: 4, P: 5},
		{N: 4, P: 2, Window: -1},
		{N: 8, P: 2, Window: 2}, // below MinWindow(8,2)=7
		{N: 4, P: 2, Alpha: 1},
		{N: 4, P: 2, Alpha: -0.5},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if err := (Config{N: 8, P: 3}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMinWindow(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{4, 2, 3}, {8, 2, 7}, {8, 3, 4}, {8, 5, 2}, {3, 2, 2}, {8, 8, 1},
	}
	for _, c := range cases {
		if got := MinWindow(c.n, c.p); got != c.want {
			t.Errorf("MinWindow(%d,%d)=%d want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestFIFOGrouping(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2})
	if gs := ready(t, c, 3, 1); len(gs) != 0 {
		t.Fatalf("group formed with one signal: %v", gs)
	}
	gs := ready(t, c, 1, 1)
	if len(gs) != 1 {
		t.Fatalf("expected one group, got %d", len(gs))
	}
	g := gs[0]
	if g.Members[0] != 3 || g.Members[1] != 1 {
		t.Fatalf("pop order not FIFO: %v", g.Members)
	}
	if len(g.Weights) != 2 || g.Weights[0] != 0.5 || g.Weights[1] != 0.5 {
		t.Fatalf("constant weights: %v", g.Weights)
	}
	if c.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", c.QueueLen())
	}
}

func TestReadyErrors(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 3})
	if _, err := c.Ready(Signal{Worker: -1}); err == nil {
		t.Error("negative worker accepted")
	}
	if _, err := c.Ready(Signal{Worker: 4}); err == nil {
		t.Error("out-of-range worker accepted")
	}
	ready(t, c, 2, 1)
	if _, err := c.Ready(Signal{Worker: 2}); err == nil {
		t.Error("duplicate signal accepted")
	}
}

func TestGroupIterFastForward(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 3})
	ready(t, c, 0, 5)
	ready(t, c, 1, 9)
	gs := ready(t, c, 2, 7)
	if len(gs) != 1 || gs[0].Iter != 9 {
		t.Fatalf("fast-forward iter: %+v", gs)
	}
}

func TestDefaultsResolved(t *testing.T) {
	c := mustNew(t, Config{N: 8, P: 3})
	if c.Config().Window != MinWindow(8, 3) {
		t.Fatalf("window default: %d", c.Config().Window)
	}
	if c.Config().Alpha != 0.6 {
		t.Fatalf("alpha default: %v", c.Config().Alpha)
	}
}

func TestStatsAndGroupLog(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, RecordGroups: true})
	for round := 0; round < 3; round++ {
		for w := 0; w < 4; w++ {
			ready(t, c, w, round)
		}
	}
	if got := c.Stats().GroupsFormed; got != 6 {
		t.Fatalf("groups formed: %d", got)
	}
	if got := len(c.Groups()); got != 6 {
		t.Fatalf("log length: %d", got)
	}
}

// Without the group filter, a pathological arrival order freezes two
// two-worker cliques forever; with the filter, the controller bridges them.
func TestGroupFrozenAvoidance(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, RecordGroups: true})
	// Arrival pattern 0,1,2,3 repeated would always pair (0,1) and (2,3).
	pairCount := map[[2]int]int{}
	for round := 0; round < 20; round++ {
		for w := 0; w < 4; w++ {
			for _, g := range ready(t, c, w, round) {
				key := [2]int{g.Members[0], g.Members[1]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				pairCount[key]++
			}
		}
	}
	if c.Stats().Interventions == 0 {
		t.Fatal("filter never intervened on a frozen pattern")
	}
	bridging := 0
	for pair, n := range pairCount {
		if (pair[0] < 2) != (pair[1] < 2) { // spans {0,1} x {2,3}
			bridging += n
		}
	}
	if bridging == 0 {
		t.Fatalf("no bridging groups formed: %v", pairCount)
	}
}

func TestGroupFilterDisabled(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, DisableGroupFilter: true})
	for round := 0; round < 20; round++ {
		for w := 0; w < 4; w++ {
			for _, g := range ready(t, c, w, round) {
				a, b := g.Members[0], g.Members[1]
				if (a < 2) != (b < 2) {
					t.Fatalf("round %d: bridging group %v formed with filter disabled", round, g.Members)
				}
			}
		}
	}
	if c.Stats().Interventions != 0 {
		t.Fatal("disabled filter reported interventions")
	}
}

// Deferral: when freeze is detected and no bridging signal waits, the
// controller holds the candidate until one arrives rather than forming a
// frozen group.
func TestFrozenDeferral(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2})
	// Build a frozen history: (0,1),(2,3),(0,1) fills the window of 3.
	ready(t, c, 0, 0)
	ready(t, c, 1, 0)
	ready(t, c, 2, 0)
	ready(t, c, 3, 0)
	ready(t, c, 0, 1)
	ready(t, c, 1, 1)
	// Window full, graph {0-1},{2-3} disconnected. Next same-component pair
	// must be deferred...
	if gs := ready(t, c, 0, 2); len(gs) != 0 {
		t.Fatalf("expected no group yet, got %v", gs)
	}
	if gs := ready(t, c, 1, 2); len(gs) != 0 {
		t.Fatalf("deferral failed: formed %v", gs)
	}
	if c.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2 held signals", c.QueueLen())
	}
	// ...and released as a bridging group when worker 2 shows up.
	gs := ready(t, c, 2, 1)
	if len(gs) != 1 {
		t.Fatalf("bridge group not formed: %v", gs)
	}
	g := gs[0]
	if !g.Bridged {
		t.Fatal("group not marked bridged")
	}
	span := (g.Members[0] < 2) != (g.Members[1] < 2)
	if !span {
		t.Fatalf("bridge group %v does not span components", g.Members)
	}
}

func TestMeanWProperties(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2})
	if c.MeanW() != nil {
		t.Fatal("MeanW before any group should be nil")
	}
	for round := 0; round < 50; round++ {
		for w := 0; w < 4; w++ {
			ready(t, c, (w+round)%4, round) // rotate arrivals to vary pairs
		}
	}
	m := c.MeanW()
	n := 4
	// Doubly stochastic: symmetric with unit row sums.
	if !m.IsSymmetric(1e-12) {
		t.Fatalf("E[W] not symmetric:\n%v", m)
	}
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if m.At(i, j) < 0 {
				t.Fatalf("negative entry at (%d,%d)", i, j)
			}
			row += m.At(i, j)
		}
		if math.Abs(row-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, row)
		}
	}
}

func TestMeanWAllReduceLimit(t *testing.T) {
	// P=N: every group is global, so E[W] must be the rank-one 1/N matrix.
	c := mustNew(t, Config{N: 4, P: 4})
	for round := 0; round < 5; round++ {
		for w := 0; w < 4; w++ {
			ready(t, c, w, round)
		}
	}
	m := c.MeanW()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(m.At(i, j)-0.25) > 1e-12 {
				t.Fatalf("E[W](%d,%d)=%v want 0.25", i, j, m.At(i, j))
			}
		}
	}
}

func TestZoneAffinityValidation(t *testing.T) {
	if (Config{N: 4, P: 2, ZoneAffinity: true}).Validate() == nil {
		t.Fatal("affinity without zones accepted")
	}
	if (Config{N: 4, P: 2, Zones: []int{0, 1}}).Validate() == nil {
		t.Fatal("wrong-length zones accepted")
	}
	if err := (Config{N: 4, P: 2, Zones: []int{0, 0, 1, 1}, ZoneAffinity: true}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// With zone affinity, interleaved cross-zone arrivals still produce mostly
// same-zone groups, while the frozen-avoidance filter periodically bridges
// zones to keep the sync-graph connected.
func TestZoneAffinityGrouping(t *testing.T) {
	c := mustNew(t, Config{
		N: 4, P: 2,
		Zones: []int{0, 1, 0, 1}, ZoneAffinity: true,
	})
	sameZone, crossZone := 0, 0
	for round := 0; round < 40; round++ {
		// Arrivals alternate zones: plain FIFO would always pair across.
		for _, w := range []int{0, 1, 2, 3} {
			for _, g := range ready(t, c, w, round) {
				if (g.Members[0] % 2) == (g.Members[1] % 2) { // zones are id parity
					sameZone++
				} else {
					crossZone++
				}
			}
		}
	}
	if sameZone == 0 {
		t.Fatal("affinity produced no same-zone groups")
	}
	if crossZone == 0 {
		t.Fatal("no cross-zone bridges formed; zones are isolated")
	}
	if sameZone < 2*crossZone {
		t.Fatalf("affinity too weak: %d same-zone vs %d cross-zone", sameZone, crossZone)
	}
}

// Without affinity the same arrival pattern pairs across zones every time.
func TestNoAffinityPairsAcross(t *testing.T) {
	c := mustNew(t, Config{N: 4, P: 2, Zones: []int{0, 1, 0, 1}})
	cross := 0
	for round := 0; round < 10; round++ {
		for _, w := range []int{0, 1, 2, 3} {
			for _, g := range ready(t, c, w, round) {
				if (g.Members[0] % 2) != (g.Members[1] % 2) {
					cross++
				}
			}
		}
	}
	if cross == 0 {
		t.Fatal("expected cross-zone FIFO pairs")
	}
}

// Property: under random arrival orders (simulating arbitrary heterogeneity)
// the controller maintains its invariants — every group has exactly P
// distinct members, each popped member had a queued signal, no worker is
// double-queued, the group's Iter is the member max, weights form a
// distribution, and every worker keeps participating (no starvation).
func TestQuickControllerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		p := 2 + rng.Intn(n-1)
		weighting := Constant
		if rng.Intn(2) == 1 {
			weighting = Dynamic
		}
		c, err := New(Config{N: n, P: p, Weighting: weighting, Approx: ClosestIteration})
		if err != nil {
			return false
		}
		iters := make([]int, n)
		participation := make([]int, n)
		// Workers that are "free" to send a signal (not queued, not in a
		// group in flight — groups resolve instantly in this model).
		free := make([]bool, n)
		for i := range free {
			free[i] = true
		}
		for step := 0; step < 400; step++ {
			// Pick a random free worker; if none, the controller is holding
			// everyone, which must be impossible while free workers exist.
			candidates := candidates(free)
			if len(candidates) == 0 {
				return false
			}
			w := candidates[rng.Intn(len(candidates))]
			iters[w]++
			groups, err := c.Ready(Signal{Worker: w, Iter: iters[w]})
			if err != nil {
				return false
			}
			free[w] = false
			for _, g := range groups {
				if len(g.Members) != p {
					return false
				}
				seen := map[int]bool{}
				maxIter := 0
				var wsum float64
				for i, m := range g.Members {
					if seen[m] || free[m] {
						return false // duplicate member or member not queued
					}
					seen[m] = true
					if g.Iters[i] > maxIter {
						maxIter = g.Iters[i]
					}
					if g.Weights[i] < 0 || g.Weights[i] > 1 {
						return false
					}
					wsum += g.Weights[i]
				}
				if g.Iter != maxIter {
					return false
				}
				if wsum+g.InitWeight < 1-1e-9 || wsum+g.InitWeight > 1+1e-9 {
					return false
				}
				for _, m := range g.Members {
					iters[m] = g.Iter
					free[m] = true
					participation[m]++
				}
			}
		}
		// No starvation: every worker ended up in some group.
		for w, k := range participation {
			if k == 0 && !freeCount(free, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func candidates(free []bool) []int {
	var out []int
	for w, f := range free {
		if f {
			out = append(out, w)
		}
	}
	return out
}

// freeCount reports whether worker w is merely waiting in the queue (not
// starved — its signal simply has not been grouped yet).
func freeCount(free []bool, w int) bool { return !free[w] }
