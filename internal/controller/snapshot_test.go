package controller

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// snapCfg is the reference configuration the snapshot tests drive.
func snapCfg() Config {
	return Config{N: 6, P: 3, Weighting: Dynamic, Alpha: 0.5, RecordGroups: true}
}

// drive replays a canned op sequence against c and returns every group it
// formed, in order.
func drive(t *testing.T, c *Controller, ops []func(c *Controller) ([]Group, error)) []Group {
	t.Helper()
	var out []Group
	for i, op := range ops {
		gs, err := op(c)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		out = append(out, gs...)
	}
	return out
}

func readyOp(w, iter int, now float64) func(*Controller) ([]Group, error) {
	return func(c *Controller) ([]Group, error) {
		return c.Ready(Signal{Worker: w, Iter: iter, Now: now})
	}
}

func failOp(w int) func(*Controller) ([]Group, error) {
	return func(c *Controller) ([]Group, error) { return c.Fail(w), nil }
}

// TestSnapshotRestoreRoundTrip: Snapshot→Restore→Snapshot is the identity on
// bytes, and the restored controller continues producing exactly the groups
// the original would have.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	build := func() *Controller {
		c, err := New(snapCfg())
		if err != nil {
			t.Fatal(err)
		}
		// Mid-flight state: one full group formed, a partial queue, one
		// death, heartbeats at distinct times.
		drive(t, c, []func(*Controller) ([]Group, error){
			readyOp(0, 1, 1.0), readyOp(1, 2, 1.1), readyOp(2, 1, 1.2), // group
			readyOp(3, 3, 1.3), // queued
			failOp(5),
			readyOp(4, 2, 1.4), // queued
		})
		c.Heartbeat(0, 2.5)
		return c
	}

	orig := build()
	snap := orig.Snapshot()
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if again := restored.Snapshot(); !bytes.Equal(snap, again) {
		t.Fatalf("Snapshot∘Restore not identity: %d vs %d bytes", len(snap), len(again))
	}
	if restored.Stats() != orig.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", restored.Stats(), orig.Stats())
	}
	if restored.QueueLen() != orig.QueueLen() || restored.AliveCount() != orig.AliveCount() {
		t.Fatal("queue or liveness diverged across restore")
	}

	// Behavioral equivalence: the same continuation produces the same groups.
	cont := []func(*Controller) ([]Group, error){
		readyOp(1, 3, 3.0), // fills a group with the queued {3,4}
		readyOp(0, 2, 3.1),
		readyOp(2, 2, 3.2),
		readyOp(3, 4, 3.3),
	}
	fresh := build() // orig was not mutated past the snapshot; replay on a twin
	a := drive(t, fresh, cont)
	b := drive(t, restored, cont)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("continuations diverged:\n  original %+v\n  restored %+v", a, b)
	}
}

// TestRestoreRejectsCorruption: bit flips and truncation fail the checksum
// or the structural decode — never a silent half-restore.
func TestRestoreRejectsCorruption(t *testing.T) {
	c, err := New(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, c, []func(*Controller) ([]Group, error){readyOp(0, 1, 1), readyOp(1, 1, 1)})
	snap := c.Snapshot()

	for _, i := range []int{0, 4, len(snap) / 2, len(snap) - 1} {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0x40
		if _, err := Restore(bad); err == nil {
			t.Fatalf("corrupted byte %d accepted", i)
		}
	}
	if _, err := Restore(snap[:len(snap)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// TestSnapshotQuickCheck drives random op sequences and checks the round
// trip property on every intermediate state.
func TestSnapshotQuickCheck(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{N: 5, P: 2, Window: 5})
		if err != nil {
			return false
		}
		iters := make([]int, 5)
		for i := 0; i < int(nOps%64); i++ {
			w := rng.Intn(5)
			switch rng.Intn(10) {
			case 0:
				c.Fail(w)
			case 1:
				if !c.IsAlive(w) {
					if err := c.Rejoin(w); err != nil {
						return false
					}
				}
			case 2:
				c.PurgeSignal(w)
			default:
				if c.IsAlive(w) && !c.IsQueued(w) {
					iters[w]++
					if _, err := c.Ready(Signal{Worker: w, Iter: iters[w], Now: float64(i)}); err != nil {
						return false
					}
				}
			}
		}
		snap := c.Snapshot()
		r, err := Restore(snap)
		if err != nil {
			return false
		}
		return bytes.Equal(snap, r.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRebuildFromSignals: the cold path reconstructs a working controller
// from re-sent signals, tolerating duplicates, and forms the same groups a
// fresh controller fed the deduplicated sequence would.
func TestRebuildFromSignals(t *testing.T) {
	cfg := Config{N: 4, P: 2}
	signals := []Signal{
		{Worker: 2, Iter: 5, Now: 1},
		{Worker: 0, Iter: 3, Now: 2},
		{Worker: 2, Iter: 5, Now: 3}, // duplicate re-send: ignored
		{Worker: 9, Iter: 1, Now: 4}, // out of range: ignored
		{Worker: 1, Iter: 4, Now: 5},
	}
	c, groups, err := Rebuild(cfg, signals)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("rebuilt controller formed %d groups, want 1", len(groups))
	}
	if got := groups[0].Members; !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("rebuilt group %v, want [2 0] (FIFO over deduped signals)", got)
	}
	if c.IsQueued(2) || c.IsQueued(0) {
		t.Fatal("grouped members still queued after rebuild")
	}
	if c.QueueLen() != 1 || !c.IsQueued(1) {
		t.Fatalf("want worker 1 queued after rebuild, queue len %d", c.QueueLen())
	}
	// An empty signal set cold-starts an empty controller.
	c2, groups2, err := Rebuild(cfg, nil)
	if err != nil || len(groups2) != 0 || c2.QueueLen() != 0 {
		t.Fatalf("empty rebuild: %v %d %d", err, len(groups2), c2.QueueLen())
	}
}

// TestRejoinEdgeCases: re-admitting a worker that never failed is an error
// (a tracking bug in the caller), as is an out-of-range id; a real rejoin
// works and is visible in liveness.
func TestRejoinEdgeCases(t *testing.T) {
	c, err := New(Config{N: 3, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rejoin(1); err == nil {
		t.Fatal("rejoin of an alive worker accepted")
	}
	if err := c.Rejoin(-1); err == nil {
		t.Fatal("rejoin of rank -1 accepted")
	}
	if err := c.Rejoin(3); err == nil {
		t.Fatal("rejoin beyond N accepted")
	}
	c.Fail(1)
	if c.IsAlive(1) || c.AliveCount() != 2 {
		t.Fatal("fail not recorded")
	}
	if err := c.Rejoin(1); err != nil {
		t.Fatal(err)
	}
	if !c.IsAlive(1) || c.AliveCount() != 3 {
		t.Fatal("rejoin not recorded")
	}
	if err := c.Rejoin(1); err == nil {
		t.Fatal("double rejoin accepted")
	}
}

// TestPurgeSignalMidGroup: purging removes exactly the queued signal — a
// worker whose signal was already consumed by group formation has nothing to
// purge, and purging must not break subsequent grouping.
func TestPurgeSignalMidGroup(t *testing.T) {
	c, err := New(Config{N: 4, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ready(Signal{Worker: 0, Iter: 1}); err != nil {
		t.Fatal(err)
	}
	if !c.IsQueued(0) {
		t.Fatal("signal not queued")
	}
	if !c.PurgeSignal(0) {
		t.Fatal("purge of a queued signal reported nothing removed")
	}
	if c.IsQueued(0) || c.QueueLen() != 0 {
		t.Fatal("purge left the signal behind")
	}
	if c.PurgeSignal(0) {
		t.Fatal("second purge removed a phantom signal")
	}
	// A purged worker may signal again without tripping the duplicate check.
	gs, err := c.Ready(Signal{Worker: 0, Iter: 2})
	if err != nil || len(gs) != 0 {
		t.Fatalf("re-signal after purge: %v %v", gs, err)
	}
	// Members of a formed group are no longer queued: nothing to purge.
	gs, err = c.Ready(Signal{Worker: 1, Iter: 1})
	if err != nil || len(gs) != 1 {
		t.Fatalf("group formation: %v %v", gs, err)
	}
	if c.PurgeSignal(0) || c.PurgeSignal(1) {
		t.Fatal("purged a signal already consumed by group formation")
	}
	// Out-of-range purge is a no-op, not a panic.
	if c.PurgeSignal(-1) || c.PurgeSignal(99) {
		t.Fatal("out-of-range purge reported success")
	}
}

// TestStaleWorkersTies: staleness is strict — a worker whose silence equals
// the timeout exactly is not yet stale, and identical heartbeat timestamps
// go stale together one tick later. Dead workers never re-report.
func TestStaleWorkersTies(t *testing.T) {
	c, err := New(Config{N: 3, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		c.Heartbeat(w, 10)
	}
	if got := c.StaleWorkers(20, 10); len(got) != 0 {
		t.Fatalf("now-beat == timeout flagged stale: %v", got)
	}
	if got := c.StaleWorkers(20.001, 10); len(got) != 3 {
		t.Fatalf("identical timestamps should go stale together, got %v", got)
	}
	// A stale heartbeat (earlier than the recorded one) must not rewind.
	c.Heartbeat(1, 5)
	if got := c.StaleWorkers(20.001, 10); len(got) != 3 {
		t.Fatalf("rewound heartbeat changed staleness: %v", got)
	}
	c.Fail(0)
	if got := c.StaleWorkers(100, 10); len(got) != 2 {
		t.Fatalf("dead worker still reported stale: %v", got)
	}
}

// TestIsQueuedDrain: IsQueued distinguishes a retransmitted signal (still in
// queue) from a consumed one, and Drain flushes whatever groups the current
// queue supports — the two primitives the failover path is built on.
func TestIsQueuedDrain(t *testing.T) {
	c, err := New(Config{N: 4, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.IsQueued(0) || c.IsQueued(-1) || c.IsQueued(7) {
		t.Fatal("phantom queued signals")
	}
	drive(t, c, []func(*Controller) ([]Group, error){readyOp(0, 1, 1), readyOp(1, 1, 1)})
	if !c.IsQueued(0) || !c.IsQueued(1) {
		t.Fatal("queued signals not visible")
	}
	if gs := c.FlushGroups(); len(gs) != 0 {
		t.Fatalf("drain formed a group from %d < P signals", 2)
	}
	// Shrinking the alive set (P clamps to survivors) makes the queue
	// formable; Fail's internal drain flushes it.
	if gs := c.Fail(3); len(gs) != 0 {
		t.Fatalf("first failure formed %+v with 2 signals < effective P", gs)
	}
	gs := c.Fail(2)
	if len(gs) != 1 || !reflect.DeepEqual(gs[0].Members, []int{0, 1}) {
		t.Fatalf("drain after shrink: %+v", gs)
	}
	if c.IsQueued(0) || c.IsQueued(1) {
		t.Fatal("drained members still queued")
	}
	if gs := c.FlushGroups(); len(gs) != 0 {
		t.Fatalf("drain on an empty queue formed %+v", gs)
	}
}
