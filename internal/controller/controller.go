// Package controller implements the paper's P-Reduce controller (Fig. 6): a
// signal queue collecting ready messages in FIFO order, a group filter that
// pops P signals and applies group-frozen avoidance over a sync-graph of
// recent groups, a weight generator producing constant or staleness-aware
// dynamic aggregation weights, a group history database, and the group
// broadcaster (the Group values returned to the runtime). The controller
// never touches model parameters or gradients — its messages are a few
// bytes, exactly as §4 requires.
package controller

import (
	"fmt"
	"math"

	"partialreduce/internal/metrics"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
)

// Config describes a controller.
type Config struct {
	N int // world capacity (maximum rank count)
	P int // group size, 2 ≤ P ≤ N
	// Initial is the number of ranks that are members at startup; ranks
	// [Initial, N) are capacity held for elastic scale-out joins. Zero
	// selects N (a fixed-size world, the pre-elastic behavior).
	Initial int
	// Window is the sync-graph history length T. Zero selects the paper's
	// minimum ⌈(N−1)/(P−1)⌉, below which disconnection cannot be
	// distinguished from an under-filled window (§4).
	Window int
	// Weighting selects constant (1/P) or dynamic (EMA staleness) weights.
	Weighting Weighting
	// Alpha is the EMA decay for dynamic weighting; zero selects 0.6.
	Alpha float64
	// Approx selects how dynamic weighting fills missing relative-iteration
	// slots; the default InitialModel is the paper's conservative rule.
	Approx ApproxRule
	// DisableGroupFilter turns group-frozen avoidance off (ablation only).
	DisableGroupFilter bool
	// RecordGroups keeps the full group log for offline analysis.
	RecordGroups bool
	// Zones optionally assigns each worker to a zone (geo-distributed data
	// centers). With ZoneAffinity set, the group filter prefers forming
	// groups within one zone — cheap intra-DC collectives — while the
	// group-frozen avoidance still periodically forces cross-zone groups,
	// keeping the sync-graph connected so updates flow between zones.
	Zones        []int
	ZoneAffinity bool
}

// MinWindow returns ⌈(n−1)/(p−1)⌉, the smallest history window that can
// witness a connected sync-graph.
func MinWindow(n, p int) int {
	return (n - 2 + p - 1) / (p - 1) // ceil((n-1)/(p-1))
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("controller: need N >= 2 workers, got %d", c.N)
	case c.P < 2 || c.P > c.N:
		return fmt.Errorf("controller: need 2 <= P <= N, got P=%d N=%d", c.P, c.N)
	case c.Initial < 0 || c.Initial > c.N:
		return fmt.Errorf("controller: need 0 <= Initial <= N, got Initial=%d N=%d", c.Initial, c.N)
	case c.Initial != 0 && c.Initial < 2:
		return fmt.Errorf("controller: need Initial >= 2 members at startup, got %d", c.Initial)
	case c.Window < 0:
		return fmt.Errorf("controller: negative window %d", c.Window)
	case c.Window > 0 && c.Window < MinWindow(c.N, c.P):
		return fmt.Errorf("controller: window %d below minimum %d for N=%d P=%d",
			c.Window, MinWindow(c.N, c.P), c.N, c.P)
	case c.Alpha < 0 || c.Alpha >= 1:
		return fmt.Errorf("controller: alpha must be in [0,1), got %v", c.Alpha)
	case c.ZoneAffinity && len(c.Zones) != c.N:
		return fmt.Errorf("controller: zone affinity needs %d zone assignments, got %d", c.N, len(c.Zones))
	case !c.ZoneAffinity && len(c.Zones) != 0 && len(c.Zones) != c.N:
		return fmt.Errorf("controller: %d zone assignments for %d workers", len(c.Zones), c.N)
	}
	if c.ZoneAffinity {
		// Every zone must be able to fill a group on its own, or its members
		// would starve waiting for same-zone partners.
		pop := map[int]int{}
		for _, z := range c.Zones {
			pop[z]++
		}
		for z, n := range pop {
			if n < c.P {
				return fmt.Errorf("controller: zone %d has %d workers, need >= P=%d for affinity", z, n, c.P)
			}
		}
	}
	return nil
}

// Signal is one worker's ready message. Iter is the worker's current
// iteration number; constant weighting ignores it. Now optionally carries
// the caller's clock (wall or virtual seconds) and feeds liveness tracking;
// zero is fine when staleness detection is unused.
type Signal struct {
	Worker int
	Iter   int
	Now    float64
	// Epoch is the sender's world-view epoch. Zero means unversioned
	// (always accepted — the pre-elastic wire format); a nonzero epoch
	// must match the controller's current epoch or Ready rejects the
	// signal with ErrStaleEpoch, without condemning the sender.
	Epoch uint64
}

// Group is the controller's reply to the members of a formed group.
type Group struct {
	// Members lists the worker ids in pop order.
	Members []int
	// Iters holds each member's reported iteration, aligned with Members.
	Iters []int
	// Weights holds each member's aggregation weight, aligned with Members.
	Weights []float64
	// InitWeight is the weight on the shared initial model x₁ under the
	// InitialModel approximation rule; zero otherwise.
	InitWeight float64
	// Iter is the group's maximum iteration number. After aggregating, every
	// member sets its iteration counter to Iter ("their models are the
	// latest", §3.3.3).
	Iter int
	// Bridged reports that the group filter rewrote this group to reconnect
	// a frozen sync-graph.
	Bridged bool
	// Epoch is the controller's world-view epoch at formation. Members
	// echo it in subsequent signals so membership changes invalidate
	// stale world views deterministically.
	Epoch uint64
}

// Stats summarizes controller activity.
type Stats struct {
	GroupsFormed  int
	Interventions int // groups rewritten by frozen avoidance
	FrozenChecks  int // times the filter inspected a full, disconnected graph
	Failures      int // workers declared dead (ReportFailure)
	Rejoins       int // workers re-admitted after a failure
	GroupsAborted int // groups torn down because a member died mid-collective
	Joins         int // ranks admitted by elastic scale-out
	Drains        int // ranks that entered graceful drain
	Decommissions int // drained ranks that completed their hand-off
	StaleEpochs   int // ready signals rejected for a stale epoch
}

// Controller is the P-Reduce controller. It is not safe for concurrent use;
// callers (the simulator's event loop or the live runtime's accept loop)
// serialize access.
type Controller struct {
	cfg    Config
	queue  []Signal
	queued []bool // queued[w] reports worker w has a signal in the queue
	graph  *SyncGraph
	stats  Stats

	// Liveness: alive[w] reports worker w is believed up; beat[w] is the
	// timestamp of its last sign of life (ready signal or heartbeat), in the
	// caller's clock (wall seconds live, virtual seconds simulated).
	alive  []bool
	aliveN int
	beat   []float64

	// Elastic membership: member[w] reports rank w belongs to the current
	// world view (ranks >= cfg.Initial start outside it and Join later);
	// draining[w] marks a member finishing its in-flight group before a
	// graceful hand-off. epoch is the world-view version, bumped by every
	// membership change (Join/Drain/Decommission/Fail/Rejoin) and stamped
	// into formed groups so stale views are rejected deterministically.
	// activeMask is Decide/filter scratch: member ∧ alive ∧ ¬draining.
	member     []bool
	draining   []bool
	epoch      uint64
	activeMask []bool

	// Group history database: co-occurrence counts sufficient to rebuild
	// the empirical E[W_k] exactly, plus the optional full log.
	together [][]int // together[i][j] = groups containing both i and j, i≠j
	inGroup  []int   // inGroup[i] = groups containing i
	log      [][]int // full group log when RecordGroups

	// Iteration tracking (snapshotted since v2 — formation policies read
	// it, so warm failover must carry it). lastIter[w] is worker w's
	// latest known iteration (ready signals and group fast-forwards),
	// maxIter the maximum across alive workers: StalenessOf is their
	// difference. lastTog[i][j] is the group sequence number at which i
	// and j last synced together (-1: never), the
	// iterations-since-last-contact matrix group-frozen avoidance bounds.
	// lastNow is the latest Signal.Now accepted.
	lastIter []int
	maxIter  int
	lastTog  [][]int
	lastNow  float64

	// Formation policy (optional). pol is wiring like the tracer — it is
	// re-attached after failover via SetPolicy — but its *state* rides
	// the snapshot: Snapshot embeds pol.Snapshot(), Restore parks the
	// blob in polBlob, and SetPolicy feeds it to the new incarnation's
	// policy. The pol* slices are Decide-call scratch, reused so the
	// policy path stays allocation-free.
	pol      policy.Policy
	polBlob  []byte
	polQueue []policy.QueuedSignal
	polSeen  []bool
	polSig   []Signal

	// Tracer and instruments are pure wiring, never snapshotted.
	tracer *trace.Tracer
	ins    *metrics.Instruments
}

// New returns a controller for cfg. Zero Window and Alpha select defaults.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window == 0 {
		cfg.Window = MinWindow(cfg.N, cfg.P)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.6
	}
	if cfg.Initial == 0 {
		cfg.Initial = cfg.N
	}
	c := &Controller{
		cfg:        cfg,
		queued:     make([]bool, cfg.N),
		graph:      NewSyncGraph(cfg.N, cfg.Window),
		inGroup:    make([]int, cfg.N),
		alive:      make([]bool, cfg.N),
		aliveN:     cfg.Initial,
		beat:       make([]float64, cfg.N),
		member:     make([]bool, cfg.N),
		draining:   make([]bool, cfg.N),
		epoch:      1,
		activeMask: make([]bool, cfg.N),
	}
	for i := 0; i < cfg.Initial; i++ {
		c.alive[i] = true
		c.member[i] = true
	}
	c.together = make([][]int, cfg.N)
	for i := range c.together {
		c.together[i] = make([]int, cfg.N)
	}
	c.lastIter = make([]int, cfg.N)
	c.lastTog = make([][]int, cfg.N)
	for i := range c.lastTog {
		c.lastTog[i] = make([]int, cfg.N)
		for j := range c.lastTog[i] {
			c.lastTog[i][j] = -1
		}
	}
	return c, nil
}

// SetTracer attaches a trace recorder for controller decision events
// (ready signals with queue depth, group formation with per-member
// staleness, frozen-avoidance triggers, liveness transitions). A nil
// tracer disables recording. The tracer is runtime wiring, not state:
// it does not survive Snapshot/Restore — re-attach after failover.
func (c *Controller) SetTracer(t *trace.Tracer) { c.tracer = t }

// SetInstruments attaches live instruments (staleness histogram,
// queue-depth series, sync-graph gauges). Like the tracer, instruments
// are wiring, not snapshotted state. Attaching instruments enables the
// per-group connectivity gauge computation (O(N²)), so leave them nil
// in tight parameter sweeps.
func (c *Controller) SetInstruments(in *metrics.Instruments) {
	c.ins = in
	in.SetEpoch(c.epoch)
}

// SetPolicy attaches a group-formation policy (internal/policy),
// consulted once per formation attempt for the next group's size,
// membership bias, and dynamic-weight decay. Like the tracer, the policy
// object is wiring and must be re-attached after failover — but its
// state is snapshotted: if this controller was built by Restore from a
// snapshot that carried policy state, SetPolicy restores that state into
// p before attaching it, so the new incarnation decides exactly as the
// old one would have. A nil p detaches (built-in behavior). Safe to call
// on a live controller between formation events.
func (c *Controller) SetPolicy(p policy.Policy) error {
	if p == nil {
		c.pol = nil
		return nil
	}
	if len(c.polBlob) > 0 {
		if err := p.Restore(c.polBlob); err != nil {
			return fmt.Errorf("controller: restoring policy state: %w", err)
		}
		c.polBlob = nil
	}
	if c.polQueue == nil {
		c.polQueue = make([]policy.QueuedSignal, 0, c.cfg.N)
		c.polSeen = make([]bool, c.cfg.N)
		c.polSig = make([]Signal, 0, c.cfg.N)
	}
	c.pol = p
	return nil
}

// Policy returns the attached formation policy (nil when detached).
func (c *Controller) Policy() policy.Policy { return c.pol }

// Config returns the effective configuration (defaults resolved).
func (c *Controller) Config() Config { return c.cfg }

// QueueLen returns the number of waiting ready signals.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Stats returns activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// Groups returns the recorded group log (nil unless RecordGroups).
func (c *Controller) Groups() [][]int { return c.log }

// Ready accepts a worker's ready signal and returns the groups formed as a
// result (zero or one under normal operation). It rejects out-of-range
// workers, non-members, drained workers, stale-epoch signals (without
// condemning the sender — see ErrStaleEpoch), and duplicate signals from a
// worker that is already queued: a worker sends exactly one ready per
// iteration and blocks for its group.
func (c *Controller) Ready(s Signal) ([]Group, error) {
	if s.Worker < 0 || s.Worker >= c.cfg.N {
		return nil, fmt.Errorf("controller: worker %d out of range [0,%d)", s.Worker, c.cfg.N)
	}
	if !c.member[s.Worker] {
		return nil, fmt.Errorf("controller: worker %d: %w", s.Worker, ErrNotMember)
	}
	if !c.alive[s.Worker] {
		return nil, fmt.Errorf("controller: worker %d is marked dead (rejoin first)", s.Worker)
	}
	if c.draining[s.Worker] {
		return nil, fmt.Errorf("controller: worker %d: %w", s.Worker, ErrDraining)
	}
	if s.Epoch != 0 && s.Epoch != c.epoch {
		c.stats.StaleEpochs++
		c.tracer.Instant(trace.KEpochStale, int32(s.Worker), int32(s.Iter), int64(s.Epoch), int64(c.epoch))
		return nil, fmt.Errorf("controller: worker %d signaled epoch %d, world is at %d: %w",
			s.Worker, s.Epoch, c.epoch, ErrStaleEpoch)
	}
	if c.queued[s.Worker] {
		return nil, fmt.Errorf("controller: worker %d already has a queued signal", s.Worker)
	}
	c.beat[s.Worker] = s.Now
	if s.Now > c.lastNow {
		c.lastNow = s.Now
	}
	if c.pol != nil {
		c.pol.OnSignal(s.Worker, s.Iter, s.Now)
	}
	c.queue = append(c.queue, s)
	c.queued[s.Worker] = true
	if s.Iter > c.lastIter[s.Worker] {
		c.lastIter[s.Worker] = s.Iter
		if s.Iter > c.maxIter {
			c.maxIter = s.Iter
		}
	}
	c.tracer.Instant(trace.KReady, int32(s.Worker), int32(s.Iter), int64(len(c.queue)), 0)
	if c.ins != nil {
		now := s.Now
		if c.tracer != nil {
			now = c.tracer.Now()
		}
		c.ins.RecordQueueDepth(now, len(c.queue))
	}
	return c.drainGroups(), nil
}

// drainGroups forms as many groups as the queue currently supports.
func (c *Controller) drainGroups() []Group {
	var groups []Group
	for {
		p := c.groupSize()
		alpha := 0.0
		if c.pol != nil {
			p, alpha = c.consultPolicy(p)
		}
		if p < 2 || len(c.queue) < p {
			break
		}
		g, ok := c.formGroup(p, alpha)
		if !ok {
			break
		}
		groups = append(groups, g)
	}
	return groups
}

// consultPolicy asks the attached policy for the next formation decision
// and applies it: the group size (clamped to the live worker count), an
// optional dynamic-weight decay override (0 keeps the configured decay),
// and an optional queue reorder (membership bias). A decision that
// deviates from the default — what the controller would do with no
// policy attached: def workers, FIFO order, configured decay — is
// recorded as a KPolicyDecision trace instant; the static policy never
// deviates, which keeps its runs bit-identical to the policy-free
// controller.
func (c *Controller) consultPolicy(def int) (int, float64) {
	q := c.polQueue[:0]
	for _, s := range c.queue {
		q = append(q, policy.QueuedSignal{
			Worker:    s.Worker,
			Iter:      s.Iter,
			Staleness: c.maxIter - s.Iter,
			Wait:      c.lastNow - s.Now,
		})
	}
	c.polQueue = q
	active := c.refreshActiveMask()
	d := c.pol.Decide(policy.Inputs{
		Now:          c.lastNow,
		ConfigP:      c.cfg.P,
		ConfigAlpha:  c.cfg.Alpha,
		Alive:        active,
		AliveMask:    c.activeMask,
		GroupsFormed: c.stats.GroupsFormed,
		Queue:        q,
	})
	p := d.P
	if p > active {
		p = active
	}
	alpha := d.Alpha
	if alpha <= 0 || alpha >= 1 || alpha == c.cfg.Alpha {
		alpha = 0 // out-of-range or no-op override: keep the configured decay
	}
	biased := c.applyBias(d.Bias, p)
	deviated := p != def || alpha != 0 || biased
	if deviated {
		c.tracer.Instant(trace.KPolicyDecision, trace.ControllerTrack, -1, int64(p), int64(def))
	}
	effAlpha := alpha
	if effAlpha == 0 {
		effAlpha = c.cfg.Alpha
	}
	c.ins.RecordPolicyDecision(p, effAlpha, deviated)
	return p, alpha
}

// applyBias reorders the signal queue so its first p entries follow the
// policy's preferred order: order must be a permutation of the current
// queue indices (invalid orders are ignored), the selected signals keep
// the policy's order, and the rest keep FIFO order. It reports whether
// the popped prefix actually changed.
func (c *Controller) applyBias(order []int, p int) bool {
	if order == nil || len(order) != len(c.queue) || p > len(c.queue) {
		return false
	}
	seen := c.polSeen
	for i := range seen {
		seen[i] = false
	}
	changed := false
	for i, idx := range order {
		if idx < 0 || idx >= len(c.queue) || seen[idx] {
			return false // not a permutation: ignore the bias
		}
		seen[idx] = true
		if i < p && idx != i {
			changed = true
		}
	}
	if !changed {
		return false
	}
	next := c.polSig[:0]
	for i := range seen {
		seen[i] = false
	}
	for _, idx := range order[:p] {
		next = append(next, c.queue[idx])
		seen[idx] = true // popped prefix: excluded from the FIFO tail below
	}
	for i, s := range c.queue {
		if !seen[i] {
			next = append(next, s)
		}
	}
	c.polSig = next
	c.queue = append(c.queue[:0], next...)
	return true
}

// groupSize returns the effective group size: the configured P, shrunk to
// the active worker count (members that are alive and not draining) so the
// controller keeps forming groups after failures and drains (§4: "the
// controller can simply exclude failed workers from future groups").
func (c *Controller) groupSize() int {
	if n := c.ActiveCount(); n < c.cfg.P {
		return n
	}
	return c.cfg.P
}

// formGroup pops p signals (FIFO), applies group-frozen avoidance, records
// the group, and generates its weights. alpha, when in (0,1), overrides
// the configured dynamic-weight decay for this one group (a policy
// decision); 0 keeps the configured decay. It returns ok=false when the
// filter defers formation to wait for a bridging signal.
func (c *Controller) formGroup(p int, alpha float64) (Group, bool) {
	bridged := false

	// Group-frozen avoidance (§4): with a full window and a disconnected
	// sync-graph, the filter forces the next group to span components. If
	// the FIFO candidate sits inside one component, it swaps in a waiting
	// signal from another component; if none is waiting, it defers the group
	// until one arrives. Deferral cannot deadlock: workers outside the
	// candidate's component are either computing or aggregating and always
	// send their next ready signal. Connectivity is judged over the active
	// worker set only — dead, draining, and departed workers cannot be
	// bridged to.
	c.refreshActiveMask()
	if !c.cfg.DisableGroupFilter && c.graph.Full() && !c.graph.ConnectedAmong(c.activeMask) {
		c.stats.FrozenChecks++
		comp := c.graph.Components()
		if sameComponent(c.queue[:p], comp) {
			home := comp[c.queue[0].Worker]
			bridgeAt := -1
			for i := p; i < len(c.queue); i++ {
				if comp[c.queue[i].Worker] != home {
					bridgeAt = i
					break
				}
			}
			if bridgeAt < 0 {
				c.tracer.Instant(trace.KDeferred, trace.ControllerTrack, -1, int64(len(c.queue)), 0)
				c.ins.CountDeferral()
				return Group{}, false // defer until a bridging signal arrives
			}
			c.queue[p-1], c.queue[bridgeAt] = c.queue[bridgeAt], c.queue[p-1]
			bridged = true
			c.stats.Interventions++
		}
	}

	// Zone affinity: when the graph is healthy, form groups inside one zone
	// so the collective stays inside one data center, deferring until some
	// zone has P signals queued (always resolvable: every zone has ≥ P
	// members, and queued workers' zone-mates are computing and will
	// signal). Bridged groups are exempt — they exist to cross zones.
	if c.cfg.ZoneAffinity && !bridged {
		if !c.gatherZone(p) {
			return Group{}, false
		}
	}

	members := make([]int, p)
	iters := make([]int, p)
	nows := make([]float64, p)
	maxIter := 0
	for i := 0; i < p; i++ {
		s := c.queue[i]
		members[i] = s.Worker
		iters[i] = s.Iter
		nows[i] = s.Now
		if s.Iter > maxIter {
			maxIter = s.Iter
		}
		c.queued[s.Worker] = false
	}
	c.queue = append(c.queue[:0], c.queue[p:]...)

	// History database update.
	c.graph.Add(members)
	c.stats.GroupsFormed++
	groupSeq := c.stats.GroupsFormed
	for _, w := range members {
		c.inGroup[w]++
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			c.together[members[i]][members[j]]++
			c.together[members[j]][members[i]]++
			c.lastTog[members[i]][members[j]] = groupSeq
			c.lastTog[members[j]][members[i]] = groupSeq
		}
	}

	// Telemetry: per-member staleness at formation (the group maximum
	// minus the member's reported iteration — the quantity the dynamic
	// weights discount), fast-forwarded iteration tracking, and the
	// connectivity gauges frozen avoidance bounds.
	if c.tracer != nil || c.ins != nil {
		c.tracer.Instant(trace.KGroupFormed, trace.ControllerTrack, int32(maxIter), int64(groupSeq), int64(p))
		for i := 0; i < p; i++ {
			st := maxIter - iters[i]
			c.tracer.Instant(trace.KStaleness, int32(members[i]), int32(iters[i]), int64(st), int64(groupSeq))
			c.ins.ObserveStaleness(int64(st))
		}
		if bridged {
			c.tracer.Instant(trace.KBridged, trace.ControllerTrack, int32(maxIter), int64(groupSeq), 0)
		}
		c.ins.CountGroup(bridged)
		if c.ins != nil {
			c.ins.SetSyncGauges(c.MaxContactAge(), c.graph.NumComponents())
		}
		// Online blame: each member queued at its signal's Now and is
		// released now (c.lastNow, the clock of the signal that
		// triggered formation — the group maximum by monotonicity).
		// The last-arriving member is the group's critical rank and
		// gets charged the other members' arrival gaps. Signals
		// without a clock (Now == 0, staleness tracking unused) can't
		// be placed in time, so such groups are skipped.
		if c.ins != nil {
			feed := true
			critical, critNow := -1, math.Inf(-1)
			waits := make([]float64, p)
			for i, now := range nows {
				if now <= 0 {
					feed = false
					break
				}
				if w := c.lastNow - now; w > 0 {
					waits[i] = w
				}
				if now >= critNow {
					critNow, critical = now, members[i]
				}
			}
			if feed {
				c.ins.AddGroupRelease(members, waits, critical)
			}
		}
	}
	for _, w := range members {
		// §3.3.3: members fast-forward to the group maximum.
		if maxIter > c.lastIter[w] {
			c.lastIter[w] = maxIter
		}
	}
	if maxIter > c.maxIter {
		c.maxIter = maxIter
	}
	if c.cfg.RecordGroups {
		logged := make([]int, p)
		copy(logged, members)
		c.log = append(c.log, logged)
	}

	g := Group{Members: members, Iters: iters, Iter: maxIter, Bridged: bridged, Epoch: c.epoch}
	switch c.cfg.Weighting {
	case Dynamic:
		a := c.cfg.Alpha
		if alpha > 0 {
			a = alpha
		}
		g.Weights, g.InitWeight = DynamicWeights(iters, a, c.cfg.Approx)
	default:
		g.Weights = ConstantWeights(p)
	}
	return g, true
}

// gatherZone stably moves p same-zone signals to the front of the queue,
// choosing the zone of the earliest signal whose zone has p signals waiting.
// It reports whether any zone could fill a group.
func (c *Controller) gatherZone(p int) bool {
	counts := map[int]int{}
	for _, s := range c.queue {
		counts[c.cfg.Zones[s.Worker]]++
	}
	zone, found := 0, false
	for _, s := range c.queue {
		if z := c.cfg.Zones[s.Worker]; counts[z] >= p {
			zone, found = z, true
			break
		}
	}
	if !found {
		return false
	}
	var same, other []Signal
	for _, s := range c.queue {
		if len(same) < p && c.cfg.Zones[s.Worker] == zone {
			same = append(same, s)
		} else {
			other = append(other, s)
		}
	}
	c.queue = c.queue[:0]
	c.queue = append(c.queue, same...)
	c.queue = append(c.queue, other...)
	return true
}

func sameComponent(signals []Signal, comp []int) bool {
	for _, s := range signals[1:] {
		if comp[s.Worker] != comp[signals[0].Worker] {
			return false
		}
	}
	return true
}

// MeanW returns the empirical average synchronization matrix E[W_k] over all
// groups formed so far (Eq. 4 averaged over k): off-diagonal (i,j) entries
// are count(i,j grouped)/(K·P); diagonals add 1/P per membership and 1 per
// non-membership. It returns nil before any group has formed.
func (c *Controller) MeanW() *tensor.Matrix {
	k := c.stats.GroupsFormed
	if k == 0 {
		return nil
	}
	n, p := c.cfg.N, float64(c.cfg.P)
	kf := float64(k)
	m := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				in := float64(c.inGroup[i])
				m.Set(i, i, (in/p+(kf-in))/kf)
				continue
			}
			m.Set(i, j, float64(c.together[i][j])/(p*kf))
		}
	}
	return m
}
