package controller

import (
	"fmt"

	"partialreduce/internal/trace"
)

// Liveness tracking and failure recovery. The paper's §4 observes that the
// central controller is the natural place for fault tolerance: because model
// data never flows through it, excluding a failed worker is a pure metadata
// operation — purge its queued signal, stop grouping it, and keep the
// sync-graph connectivity judgement to the survivors. These methods implement
// that, plus heartbeat-staleness detection and checkpoint-rejoin re-admission.

// ReportFailure declares worker dead: its queued signal (if any) is purged
// and it is excluded from all future groups. Idempotent; reports about an
// already-dead worker return false.
func (c *Controller) ReportFailure(worker int) bool {
	if worker < 0 || worker >= c.cfg.N || !c.alive[worker] {
		return false
	}
	c.alive[worker] = false
	c.aliveN--
	// A draining worker that dies mid-hand-off is a failure, not a clean
	// decommission.
	c.draining[worker] = false
	c.stats.Failures++
	c.PurgeSignal(worker)
	c.refreshMaxIter()
	c.bumpEpoch()
	c.tracer.Instant(trace.KWorkerDead, int32(worker), -1, 0, 0)
	return true
}

// Fail declares worker dead (as ReportFailure) and returns the groups formed
// as an immediate consequence: shrinking the surviving-worker count shrinks
// the effective group size, which can let an existing queue fill a group.
func (c *Controller) Fail(worker int) []Group {
	if !c.ReportFailure(worker) {
		return nil
	}
	return c.drainGroups()
}

// PurgeSignal removes worker's queued ready signal, if any, so the worker
// may signal again later without tripping the duplicate check. Runtimes use
// this when releasing stranded tail workers to proceed solo: the released
// worker recomputes and re-signals, and its stale signal must not linger in
// the queue (a stale entry could later form a group with a worker that is no
// longer waiting for one). Reports whether a signal was removed.
func (c *Controller) PurgeSignal(worker int) bool {
	if worker < 0 || worker >= c.cfg.N || !c.queued[worker] {
		return false
	}
	c.queued[worker] = false
	keep := c.queue[:0]
	for _, s := range c.queue {
		if s.Worker != worker {
			keep = append(keep, s)
		}
	}
	c.queue = keep
	return true
}

// AbortGroup records that a formed group g lost member dead mid-collective:
// the dead worker is excluded (as ReportFailure) and the abort is counted.
// The surviving members are expected to roll back to their pre-group state
// and re-signal ready; their signals will be accepted because group
// formation already cleared their queued flags. It returns the groups formed
// immediately as a consequence (the purge can unblock a deferred bridge
// group).
func (c *Controller) AbortGroup(g Group, dead int) []Group {
	c.stats.GroupsAborted++
	c.tracer.Instant(trace.KGroupAborted, trace.ControllerTrack, int32(g.Iter), int64(c.stats.GroupsFormed), int64(dead))
	c.ReportFailure(dead)
	return c.drainGroups()
}

// Rejoin re-admits worker after a checkpoint-based restart: it becomes
// eligible for grouping again the next time it signals ready. Re-admitting
// an alive worker is an error (it indicates a tracking bug in the caller).
func (c *Controller) Rejoin(worker int) error {
	if worker < 0 || worker >= c.cfg.N {
		return fmt.Errorf("controller: worker %d out of range [0,%d)", worker, c.cfg.N)
	}
	if !c.member[worker] {
		return fmt.Errorf("controller: rejoin: worker %d: %w (Join instead)", worker, ErrNotMember)
	}
	if c.alive[worker] {
		return fmt.Errorf("controller: worker %d is not dead", worker)
	}
	c.alive[worker] = true
	c.aliveN++
	c.stats.Rejoins++
	c.refreshMaxIter()
	c.bumpEpoch()
	c.tracer.Instant(trace.KWorkerRejoin, int32(worker), -1, 0, 0)
	return nil
}

// Heartbeat records a sign of life from worker at time now (same clock as
// Signal.Now). Ready signals count as heartbeats automatically.
func (c *Controller) Heartbeat(worker int, now float64) {
	if worker >= 0 && worker < c.cfg.N && now > c.beat[worker] {
		c.beat[worker] = now
	}
}

// StaleWorkers returns the alive workers whose last sign of life is older
// than timeout at time now — the controller-side failure detector. The
// caller decides whether to ReportFailure them (a long mini-batch is
// indistinguishable from a hang; choose timeout ≫ the slowest legitimate
// iteration).
func (c *Controller) StaleWorkers(now, timeout float64) []int {
	var stale []int
	for w := 0; w < c.cfg.N; w++ {
		if c.alive[w] && now-c.beat[w] > timeout {
			stale = append(stale, w)
		}
	}
	return stale
}

// IsAlive reports whether worker is currently believed up.
func (c *Controller) IsAlive(worker int) bool {
	return worker >= 0 && worker < c.cfg.N && c.alive[worker]
}

// AliveCount returns the number of workers believed up.
func (c *Controller) AliveCount() int { return c.aliveN }

// Alive returns a copy of the per-worker liveness vector.
func (c *Controller) Alive() []bool {
	out := make([]bool, len(c.alive))
	copy(out, c.alive)
	return out
}

// EffectiveP exposes the current effective group size (P shrunk to the
// surviving worker count).
func (c *Controller) EffectiveP() int { return c.groupSize() }
