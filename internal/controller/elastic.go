package controller

import (
	"errors"
	"fmt"

	"partialreduce/internal/trace"
)

// Elastic membership: the world view is a versioned set of member ranks
// inside a fixed capacity N. Ranks [Initial, N) start outside the
// membership and Join later after bootstrapping a model from a live peer;
// members leave either abruptly (Fail, PR 1) or gracefully, via
// Drain → Decommission: a draining rank finishes its in-flight group, is
// excluded from all future formation, and hands off without being counted
// as a failure. Every membership change bumps the epoch, which is stamped
// into formed groups and echoed in ready signals so a worker acting on a
// stale world view is rejected deterministically — and harmlessly: a
// stale-epoch rejection never condemns the sender.

// Sentinel errors Ready callers branch on with errors.Is. All three are
// recoverable conditions, not worker faults.
var (
	// ErrStaleEpoch rejects a ready signal stamped with an outdated
	// world-view epoch. The sender should refresh its view (the next
	// group reply carries the current epoch) and re-signal; it is not
	// condemned.
	ErrStaleEpoch = errors.New("stale world-view epoch")
	// ErrNotMember rejects a signal from a rank outside the current
	// membership (never joined, or already decommissioned).
	ErrNotMember = errors.New("not a member of the current world view")
	// ErrDraining rejects a new ready signal from a draining rank: its
	// in-flight group is finished and it must now decommission.
	ErrDraining = errors.New("worker is draining")
)

// Epoch returns the current world-view version. It starts at 1 and bumps
// on every membership change (Join, Drain, Decommission, Fail, Rejoin).
func (c *Controller) Epoch() uint64 { return c.epoch }

// bumpEpoch advances the world-view version and mirrors it into the
// attached instruments so the epoch-churn watchdog rule and the
// preduce_epoch gauge see membership changes without controller access.
func (c *Controller) bumpEpoch() {
	c.epoch++
	c.ins.SetEpoch(c.epoch)
}

// IsMember reports whether rank w belongs to the current world view.
func (c *Controller) IsMember(w int) bool {
	return w >= 0 && w < c.cfg.N && c.member[w]
}

// IsDraining reports whether member w is in graceful drain.
func (c *Controller) IsDraining(w int) bool {
	return w >= 0 && w < c.cfg.N && c.draining[w]
}

// ActiveCount returns the number of ranks eligible for group formation:
// members that are alive and not draining.
func (c *Controller) ActiveCount() int {
	n := 0
	for w := 0; w < c.cfg.N; w++ {
		if c.member[w] && c.alive[w] && !c.draining[w] {
			n++
		}
	}
	return n
}

// refreshActiveMask recomputes the member ∧ alive ∧ ¬draining scratch mask
// (group-filter connectivity and policy Decide read it) and returns the
// active count.
func (c *Controller) refreshActiveMask() int {
	n := 0
	for w := 0; w < c.cfg.N; w++ {
		a := c.member[w] && c.alive[w] && !c.draining[w]
		c.activeMask[w] = a
		if a {
			n++
		}
	}
	return n
}

// Join admits rank w into the membership at time now (same clock as
// Signal.Now; it seeds the heartbeat so the staleness detector does not
// condemn the newcomer before its first signal). The caller is expected to
// have bootstrapped the rank's model from a live peer already — a joined
// rank is immediately eligible for grouping once it signals ready. Joining
// a current member is an error; a decommissioned rank may Join again.
func (c *Controller) Join(w int, now float64) error {
	if w < 0 || w >= c.cfg.N {
		return fmt.Errorf("controller: join: rank %d out of range [0,%d)", w, c.cfg.N)
	}
	if c.member[w] {
		return fmt.Errorf("controller: join: rank %d is already a member", w)
	}
	c.member[w] = true
	c.alive[w] = true
	c.aliveN++
	c.draining[w] = false
	c.beat[w] = now
	if now > c.lastNow {
		c.lastNow = now
	}
	// A joiner's bootstrapped model starts at its donor's iteration, but
	// until its first signal reports one, treat it as current so it does
	// not read as infinitely stale.
	c.lastIter[w] = c.maxIter
	c.bumpEpoch()
	c.stats.Joins++
	c.tracer.Instant(trace.KWorkerJoin, int32(w), -1, int64(c.epoch), 0)
	return nil
}

// Drain begins a graceful hand-off for member w: it stays alive to finish
// any in-flight group (a signal already queued may still form one last
// group), but no new signal from it is accepted (ErrDraining) and it is
// excluded from effective group sizing and sync-graph connectivity.
// Shrinking the active set can let the existing queue fill a group, so
// Drain returns any groups formed as an immediate consequence.
func (c *Controller) Drain(w int) ([]Group, error) {
	if w < 0 || w >= c.cfg.N {
		return nil, fmt.Errorf("controller: drain: rank %d out of range [0,%d)", w, c.cfg.N)
	}
	if !c.member[w] {
		return nil, fmt.Errorf("controller: drain: rank %d: %w", w, ErrNotMember)
	}
	if !c.alive[w] {
		return nil, fmt.Errorf("controller: drain: rank %d is dead", w)
	}
	if c.draining[w] {
		return nil, fmt.Errorf("controller: drain: rank %d is already draining", w)
	}
	c.draining[w] = true
	c.bumpEpoch()
	c.stats.Drains++
	c.tracer.Instant(trace.KWorkerDrain, int32(w), -1, int64(c.epoch), 0)
	return c.drainGroups(), nil
}

// Decommission completes a draining rank's departure: it leaves the
// membership cleanly, without being counted as a failure, and its capacity
// slot becomes available for a future Join. Like Drain it returns any
// groups formed as a consequence.
func (c *Controller) Decommission(w int) ([]Group, error) {
	if w < 0 || w >= c.cfg.N {
		return nil, fmt.Errorf("controller: decommission: rank %d out of range [0,%d)", w, c.cfg.N)
	}
	if !c.member[w] {
		return nil, fmt.Errorf("controller: decommission: rank %d: %w", w, ErrNotMember)
	}
	if !c.draining[w] {
		return nil, fmt.Errorf("controller: decommission: rank %d is not draining", w)
	}
	c.member[w] = false
	c.draining[w] = false
	if c.alive[w] {
		c.alive[w] = false
		c.aliveN--
	}
	c.PurgeSignal(w)
	c.refreshMaxIter()
	c.bumpEpoch()
	c.stats.Decommissions++
	c.tracer.Instant(trace.KWorkerDecommission, int32(w), -1, int64(c.epoch), 0)
	return c.drainGroups(), nil
}
