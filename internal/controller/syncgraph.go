package controller

// SyncGraph tracks the "recently synchronized together" relation the group
// filter uses for group-frozen avoidance (§4). Workers are vertices; every
// P-Reduce group contributes a clique over its members; only the most recent
// Window groups count. The controller requires Window ≥ ⌈(N−1)/(P−1)⌉, the
// minimum number of P-sized groups whose union can connect N vertices, so a
// disconnected graph over a full window is evidence of isolated sub-clusters
// rather than of a window that is simply too short.
type SyncGraph struct {
	n      int
	window int
	groups [][]int // ring buffer of the most recent groups
	next   int     // ring cursor
	filled bool
}

// NewSyncGraph returns a graph over n workers remembering window groups.
func NewSyncGraph(n, window int) *SyncGraph {
	if n < 1 || window < 1 {
		panic("controller: SyncGraph needs n >= 1 and window >= 1")
	}
	return &SyncGraph{n: n, window: window, groups: make([][]int, 0, window)}
}

// Add records a formed group, evicting the oldest once the window is full.
func (g *SyncGraph) Add(members []int) {
	m := make([]int, len(members))
	copy(m, members)
	if len(g.groups) < g.window {
		g.groups = append(g.groups, m)
		if len(g.groups) == g.window {
			g.filled = true
		}
		return
	}
	g.groups[g.next] = m
	g.next = (g.next + 1) % g.window
}

// Full reports whether the window holds Window groups, the precondition for
// treating disconnection as group freeze.
func (g *SyncGraph) Full() bool { return g.filled }

// Len returns the number of groups currently in the window.
func (g *SyncGraph) Len() int { return len(g.groups) }

// Components labels each worker with a component id in [0, #components) via
// union-find over the windowed groups.
func (g *SyncGraph) Components() []int {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, grp := range g.groups {
		for i := 1; i < len(grp); i++ {
			union(grp[0], grp[i])
		}
	}
	ids := make([]int, g.n)
	next := 0
	seen := make(map[int]int, g.n)
	for i := 0; i < g.n; i++ {
		r := find(i)
		id, ok := seen[r]
		if !ok {
			id = next
			next++
			seen[r] = id
		}
		ids[i] = id
	}
	return ids
}

// NumComponents returns the number of connected components.
func (g *SyncGraph) NumComponents() int {
	ids := g.Components()
	maxID := 0
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	return maxID + 1
}

// Connected reports whether all workers are in one component.
func (g *SyncGraph) Connected() bool { return g.NumComponents() == 1 }

// ConnectedAmong reports whether every worker with alive[w] == true lies in
// one component — the connectivity that matters once failed workers are
// excluded from future groups (a dead worker is unreachable by construction
// and must not count as a frozen sub-cluster). A nil alive slice means all
// workers are alive.
func (g *SyncGraph) ConnectedAmong(alive []bool) bool {
	if alive == nil {
		return g.Connected()
	}
	ids := g.Components()
	first := -1
	for w, a := range alive {
		if !a {
			continue
		}
		if first == -1 {
			first = ids[w]
			continue
		}
		if ids[w] != first {
			return false
		}
	}
	return true
}
