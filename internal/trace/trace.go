// Package trace is the repo's low-overhead event/span recorder: a
// size-capped, pre-allocated ring buffer of fixed-size events behind a
// mutex, with a pluggable clock so the simulator records virtual-clock
// traces and the live runtime records wall-clock traces through the same
// API. A nil *Tracer is the disabled recorder — every method is
// nil-receiver-safe and returns immediately, so instrumented hot paths
// stay zero-allocation and branch-predictable when tracing is off (the
// data plane's allocgate keeps holding).
//
// The paper's argument is temporal: P-Reduce wins because of where time
// goes (wait-at-barrier vs. compute vs. communication) and because
// staleness and sync-graph connectivity stay bounded. End-of-run
// aggregates cannot show a straggler stall, a frozen-group near-miss, or
// a retry storm; a per-iteration timeline can. Events cover the worker
// iteration phases (compute, signal-wait, group-wait, reduce-scatter,
// all-gather, retries), the controller's decisions (ready-queue depth,
// group formation, staleness vectors, frozen-avoidance triggers,
// snapshot/restore/rebuild), and the fault plane (link sever/heal,
// partition windows, timeouts, aborts).
//
// Two exporters turn a recorded buffer into files (see export.go): Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing with one
// track per worker plus one for the controller, and a streaming JSONL
// event log for ad-hoc analysis.
package trace

import (
	"sync"
	"time"
)

// Clock supplies timestamps in seconds. The origin is arbitrary but must
// be fixed for the lifetime of a Tracer: the simulator passes its virtual
// clock (FuncClock(eng.Now)), the live runtime a monotonic wall clock.
type Clock interface {
	Now() float64
}

// FuncClock adapts a plain function — typically the simulator engine's
// Now — into a Clock.
type FuncClock func() float64

// Now implements Clock.
func (f FuncClock) Now() float64 { return f() }

// wallClock reports monotonic seconds since its creation.
type wallClock struct{ start time.Time }

// Now implements Clock.
func (w wallClock) Now() float64 { return time.Since(w.start).Seconds() }

// NewWallClock returns a Clock reporting monotonic seconds since this
// call. All tracks of one live run must share one wall clock, or their
// spans will not align.
func NewWallClock() Clock { return wallClock{start: time.Now()} }

// Kind enumerates the event vocabulary. Span kinds have a duration;
// instant kinds mark a point in time. Kind-specific integer arguments A
// and B ride along in the Event so no event ever allocates.
type Kind uint8

const (
	// Span kinds (Dur > 0 meaningful).

	// KCompute is one local mini-batch: sample, gradient, SGD step.
	KCompute Kind = iota
	// KSignalWait is the wait between sending a ready signal and
	// receiving the controller's group reply (A=1 when released solo).
	KSignalWait
	// KGroupWait is the simulator's span from group formation to group
	// completion (the modeled controller RTT + ring time).
	KGroupWait
	// KCollective is one whole group collective attempt set (A=opID,
	// B=group size).
	KCollective
	// KReduceScatter and KAllGather are the two ring phases (A=opID).
	KReduceScatter
	KAllGather
	// KRetryBackoff is the pause between collective attempts (A=opID,
	// B=attempt number).
	KRetryBackoff

	// Instant kinds (Dur is 0).

	// KReady marks a ready signal accepted by the controller
	// (Track=worker, Iter=reported iteration, A=queue depth after).
	KReady
	// KGroupFormed marks a controller group decision (controller track,
	// Iter=group max iteration, A=group sequence number, B=group size).
	KGroupFormed
	// KStaleness carries one member's staleness at group formation
	// (Track=member, A=staleness in iterations, B=group sequence).
	KStaleness
	// KBridged marks a group rewritten by frozen avoidance (A=group seq).
	KBridged
	// KDeferred marks the filter deferring a group to wait for a bridging
	// signal (A=queue depth).
	KDeferred
	// KGroupAborted marks a group torn down (A=opID, B=dead rank or -1).
	KGroupAborted
	// KRelease marks the controller releasing a stranded worker to
	// proceed solo (Track=worker).
	KRelease
	// KWorkerDead / KWorkerRejoin mark liveness transitions
	// (Track=worker).
	KWorkerDead
	KWorkerRejoin
	// KCtrlSnapshot / KCtrlRestore / KCtrlRebuild mark control-plane
	// failover (A=snapshot bytes for KCtrlSnapshot).
	KCtrlSnapshot
	KCtrlRestore
	KCtrlRebuild
	// KRetry marks a collective attempt re-run after a timeout (A=opID,
	// B=attempt number).
	KRetry
	// KTimeout marks a receive deadline firing inside a collective
	// (A=opID).
	KTimeout
	// KAbort marks a collective abandoned after exhausting its retry
	// budget (A=opID).
	KAbort
	// KCrash marks a worker fail-stop (Track=worker, Iter=iteration).
	KCrash
	// KLinkSever / KLinkHeal mark directed link faults (A=from, B=to;
	// A=B=-1 for heal-all).
	KLinkSever
	KLinkHeal
	// KLinkDrop marks a frame dropped by fault injection (A=from, B=to).
	KLinkDrop
	// KPartition / KPartitionHeal mark a timed partition window opening
	// and closing (A=first partitioned rank).
	KPartition
	KPartitionHeal
	// KPolicyDecision marks a formation-policy decision that deviated
	// from the static default (A=decided group size, B=default size).
	KPolicyDecision
	// KWorkerJoin marks a rank admitted into the membership
	// (Track=worker, A=new epoch).
	KWorkerJoin
	// KWorkerDrain marks a rank entering graceful drain (Track=worker,
	// A=new epoch).
	KWorkerDrain
	// KWorkerDecommission marks a drained rank leaving the membership
	// (Track=worker, A=new epoch).
	KWorkerDecommission
	// KEpochStale marks a ready signal rejected for carrying a stale
	// world-view epoch (Track=worker, A=signal epoch, B=current epoch).
	KEpochStale
	// KBootstrap marks a joining rank fetching the model from a live
	// donor (Track=joiner, A=donor rank, B=param count).
	KBootstrap

	kindCount // internal: table size
)

// kindNames maps kinds to the stable names exporters emit. Keep in sync
// with the Kind constants; tests cross-check the table.
var kindNames = [kindCount]string{
	KCompute:       "compute",
	KSignalWait:    "signal-wait",
	KGroupWait:     "group-wait",
	KCollective:    "collective",
	KReduceScatter: "reduce-scatter",
	KAllGather:     "all-gather",
	KRetryBackoff:  "retry-backoff",
	KReady:         "ready",
	KGroupFormed:   "group-formed",
	KStaleness:     "staleness",
	KBridged:       "group-bridged",
	KDeferred:      "group-deferred",
	KGroupAborted:  "group-aborted",
	KRelease:       "solo-release",
	KWorkerDead:    "worker-dead",
	KWorkerRejoin:  "worker-rejoin",
	KCtrlSnapshot:  "ctrl-snapshot",
	KCtrlRestore:   "ctrl-restore",
	KCtrlRebuild:   "ctrl-rebuild",
	KRetry:         "retry",
	KTimeout:       "timeout",
	KAbort:         "abort",
	KCrash:         "crash",
	KLinkSever:     "link-sever",
	KLinkHeal:      "link-heal",
	KLinkDrop:      "link-drop",
	KPartition:          "partition",
	KPartitionHeal:      "partition-heal",
	KPolicyDecision:     "policy-decision",
	KWorkerJoin:         "worker-join",
	KWorkerDrain:        "worker-drain",
	KWorkerDecommission: "worker-decommission",
	KEpochStale:         "epoch-stale",
	KBootstrap:          "bootstrap",
}

// String returns the exporter name of k ("kind-N" for unknown values).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "kind-?"
}

// kindByName is the exporter-name → Kind reverse of kindNames.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, kindCount)
	for k := Kind(0); k < kindCount; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// KindByName resolves an exporter name (the JSONL "kind" field) back to
// its Kind — the parsing half of the trace-analysis pipeline.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// ControllerTrack is the track id of controller-side events; worker
// events use the worker's rank (>= 0).
const ControllerTrack int32 = -1

// NoOrigin is the Origin value of events recorded by a tracer whose
// recording process was never identified with SetOrigin (the simulator's
// single shared tracer, unit tests).
const NoOrigin int32 = -1

// Event is one fixed-size trace record. It contains no pointers, so the
// ring buffer is a single flat allocation and recording never touches
// the heap.
type Event struct {
	TS    float64 // start time, clock seconds
	Dur   float64 // span duration in seconds; 0 for instants
	Kind  Kind
	Track int32 // worker rank, or ControllerTrack
	Iter  int32 // iteration context, -1 when not applicable
	// Origin is the rank of the process that recorded the event (the
	// tracer's SetOrigin value), or NoOrigin. It is what lets a merged
	// multi-rank timeline tell rank 2's events apart from rank 0's without
	// relying on the per-rank file name — in particular for events whose
	// Track is not the recording rank (ControllerTrack instants, link
	// faults).
	Origin int32
	A, B   int64 // kind-specific arguments
}

// DefaultCapacity is the ring size used when New is given cap <= 0:
// 64Ki events ≈ 3 MiB, several thousand iterations of a small world.
const DefaultCapacity = 1 << 16

// Tracer records events into a pre-allocated ring. The zero-capacity
// disabled form is a nil *Tracer: all methods are nil-safe no-ops.
// Tracer is safe for concurrent use by multiple goroutines.
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
	origin  int32
}

// New returns a tracer reading timestamps from clock and retaining the
// most recent cap events (cap <= 0 selects DefaultCapacity).
func New(clock Clock, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultCapacity
	}
	return &Tracer{clock: clock, buf: make([]Event, cap), origin: NoOrigin}
}

// SetOrigin stamps rank into the Origin of every event recorded from now
// on. A live multi-process runtime sets it to the process's rank so the
// exported trace self-identifies its recording process; the simulator's
// single tracer leaves it at NoOrigin. Nil-safe.
func (t *Tracer) SetOrigin(rank int32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.origin = rank
	t.mu.Unlock()
}

// Now returns the tracer's clock reading, or 0 on a nil tracer. Span
// call sites capture start := tr.Now() and pass it back to Span.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// record appends ev, overwriting the oldest event when full.
func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	ev.Origin = t.origin
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Span records a span of kind k that began at start (a prior Now reading)
// and ends now.
func (t *Tracer) Span(k Kind, track, iter int32, start float64, a, b int64) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	dur := now - start
	if dur < 0 {
		dur = 0
	}
	t.record(Event{TS: start, Dur: dur, Kind: k, Track: track, Iter: iter, A: a, B: b})
}

// SpanAt records a span with explicit start and duration — the
// simulator's form, where both endpoints are known virtual times.
func (t *Tracer) SpanAt(k Kind, track, iter int32, start, dur float64, a, b int64) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.record(Event{TS: start, Dur: dur, Kind: k, Track: track, Iter: iter, A: a, B: b})
}

// Instant records a point event at the current clock reading.
func (t *Tracer) Instant(k Kind, track, iter int32, a, b int64) {
	if t == nil {
		return
	}
	t.record(Event{TS: t.clock.Now(), Kind: k, Track: track, Iter: iter, A: a, B: b})
}

// InstantAt records a point event at an explicit time.
func (t *Tracer) InstantAt(k Kind, track, iter int32, ts float64, a, b int64) {
	if t == nil {
		return
	}
	t.record(Event{TS: ts, Kind: k, Track: track, Iter: iter, A: a, B: b})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.buf)
	}
	return t.next
}

// Dropped returns the number of events overwritten after the ring filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the retained events in recording order
// (oldest first). Recording order is chronological per track; across
// tracks it is the serialization order of the recorder.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}
