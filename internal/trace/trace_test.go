package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// stepClock is a deterministic clock advancing by one per reading.
type stepClock struct{ t float64 }

func (c *stepClock) Now() float64 { c.t++; return c.t }

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now = %v, want 0", got)
	}
	tr.Span(KCompute, 0, 0, 0, 0, 0)
	tr.SpanAt(KCompute, 0, 0, 0, 1, 0, 0)
	tr.Instant(KReady, 0, 0, 0, 0)
	tr.InstantAt(KReady, 0, 0, 0, 0, 0)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("nil tracer retained state: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

// TestDisabledTracerZeroAllocs pins the allocgate-preserving property: with
// tracing off (nil *Tracer), every recording call is a nil check and must
// not touch the heap.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Now()
		tr.Span(KCompute, 3, 7, start, 1, 2)
		tr.Instant(KReady, 3, 7, 1, 2)
		tr.SpanAt(KReduceScatter, 3, 7, 0, 0.5, 1, 2)
		tr.InstantAt(KTimeout, 3, 7, 1.5, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}

// TestEnabledTracerSteadyStateZeroAllocs: recording into the pre-allocated
// ring must not allocate either — the Event is pointer-free and copied by
// value.
func TestEnabledTracerSteadyStateZeroAllocs(t *testing.T) {
	tr := New(FuncClock(func() float64 { return 1 }), 128)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(KCompute, 0, 0, 0.5, 1, 2)
		tr.Instant(KReady, 0, 0, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer steady state allocates: %v allocs/op", allocs)
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	clk := &stepClock{}
	tr := New(clk, 4)
	for i := 0; i < 10; i++ {
		tr.Instant(KReady, int32(i), -1, int64(i), 0)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest-first order)", i, ev.A, want)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of chronological order at %d", i)
		}
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := New(FuncClock(func() float64 { return 1 }), 8)
	tr.Span(KCompute, 0, 0, 5 /* start after "now" */, 0, 0)
	tr.SpanAt(KCompute, 0, 0, 0, -3, 0, 0)
	for i, ev := range tr.Events() {
		if ev.Dur < 0 {
			t.Fatalf("event %d: negative duration %v survived", i, ev.Dur)
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "" || name == "kind-?" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if Kind(200).String() != "kind-?" {
		t.Fatalf("out-of-range kind should stringify as kind-?")
	}
}

func recordSample(tr *Tracer) {
	tr.SpanAt(KCompute, 0, 1, 0.5, 0.25, 0, 0)
	tr.SpanAt(KSignalWait, 1, 1, 0.75, 0, 1, 0) // zero-duration span stays "X"
	tr.InstantAt(KGroupFormed, ControllerTrack, 3, 1.0, 7, 2)
	tr.InstantAt(KStaleness, 1, 1, 1.0, 2, 7)
	tr.InstantAt(KCrash, 2, 9, 1.5, 0, 0)
}

func TestWriteChromeValidates(t *testing.T) {
	tr := New(FuncClock(func() float64 { return 0 }), 16)
	recordSample(tr)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChrome: %v\n%s", err, buf.String())
	}
	if n != 5 {
		t.Fatalf("ValidateChrome counted %d events, want 5", n)
	}
	out := buf.String()
	// Controller events land on tid 0, worker w on tid w+1, named tracks.
	for _, want := range []string{
		`{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"controller"}}`,
		`"name":"worker 2"`,
		`"name":"group-formed","ph":"i"`,
		`"name":"compute","ph":"X"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Chrome export missing %q:\n%s", want, out)
		}
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		``,
		`{}`,
		`{"traceEvents":[{"ph":"Z","name":"x","pid":0,"tid":0,"ts":0}]}`,
		`{"traceEvents":[{"ph":"X","name":"x","pid":0,"tid":0,"ts":-1,"dur":0}]}`,
		`{"traceEvents":[{"ph":"X","name":"","pid":0,"tid":0,"ts":0,"dur":0}]}`,
	} {
		if _, err := ValidateChrome([]byte(bad)); err == nil {
			t.Fatalf("ValidateChrome accepted %q", bad)
		}
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	tr := New(FuncClock(func() float64 { return 0 }), 16)
	recordSample(tr)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	for i, line := range lines {
		var obj struct {
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Kind  string  `json:"kind"`
			Track int32   `json:"track"`
			Iter  int32   `json:"iter"`
			A, B  int64
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v: %s", i, err, line)
		}
		if obj.Kind == "" {
			t.Fatalf("line %d: empty kind", i)
		}
	}
	if !strings.Contains(lines[2], `"kind":"group-formed","track":-1`) {
		t.Fatalf("controller event not on track -1: %s", lines[2])
	}
}

// TestExportDeterministic pins the byte-identical property both exporters
// guarantee for a fixed event stream (the foundation of the same-seed
// sim-replay trace test).
func TestExportDeterministic(t *testing.T) {
	build := func() []Event {
		tr := New(FuncClock(func() float64 { return 0 }), 32)
		recordSample(tr)
		return tr.Events()
	}
	var c1, c2, j1, j2 bytes.Buffer
	if err := WriteChrome(&c1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&c2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("Chrome export differs across identical event streams")
	}
	if err := WriteJSONL(&j1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&j2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSONL export differs across identical event streams")
	}
}

func TestNewDefaultCapacity(t *testing.T) {
	tr := New(FuncClock(func() float64 { return 0 }), 0)
	if len(tr.buf) != DefaultCapacity {
		t.Fatalf("cap %d, want DefaultCapacity %d", len(tr.buf), DefaultCapacity)
	}
}

// BenchmarkTracerDisabled measures the cost left on an instrumented hot
// path when tracing is off: one nil check per call.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := tr.Now()
		tr.Span(KCompute, 0, int32(i), start, 0, 0)
	}
}

// BenchmarkTracerEnabled measures the recording cost with the ring live.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := New(FuncClock(func() float64 { return 0 }), 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SpanAt(KCompute, 0, int32(i), 0, 1, 0, 0)
	}
}
