package trace

// Exporters. Both formats are written with a hand-rolled serializer in a
// fixed key order with fixed float formatting, so a deterministic event
// stream (same-seed simulator replay) produces byte-identical files —
// the property the seed-replay trace tests pin.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// usec converts clock seconds to the microsecond unit of the Chrome
// trace-event format, formatted with fixed nanosecond precision.
func usec(sec float64) string {
	return strconv.FormatFloat(sec*1e6, 'f', 3, 64)
}

// chromePid maps an event's recording process to a Chrome pid: events
// with a stamped origin rank render as that pid (a merged multi-rank
// timeline groups per process in Perfetto), unstamped events as pid 0.
func chromePid(ev Event) int {
	if ev.Origin >= 0 {
		return int(ev.Origin)
	}
	return 0
}

// chromeTid maps an event's track to a Chrome tid: controller events on
// tid 0, worker w on tid w+1, so the controller track sorts on top.
func chromeTid(ev Event) int {
	if ev.Track == ControllerTrack {
		return 0
	}
	return int(ev.Track) + 1
}

// WriteChrome renders events as Chrome trace-event JSON (the
// chrome://tracing / Perfetto "JSON object format"): spans become "X"
// complete events, instants "i" events, and thread-name metadata names
// every (process, track) pair present — one track per worker plus one
// for the controller. Events recorded with a stamped origin rank land in
// that rank's process group (see chromePid), so a merged multi-rank
// timeline keeps one process lane per rank.
func WriteChrome(w io.Writer, events []Event) error {
	bw := &errWriter{w: w}
	bw.str(`{"traceEvents":[`)

	// Thread-name metadata for every (pid, tid) pair present, in
	// deterministic ascending order.
	type lane struct{ pid, tid int }
	seen := map[lane]bool{}
	lanes := []lane(nil)
	for _, ev := range events {
		l := lane{chromePid(ev), chromeTid(ev)}
		if !seen[l] {
			seen[l] = true
			lanes = append(lanes, l)
		}
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})
	first := true
	for _, l := range lanes {
		if !first {
			bw.str(",")
		}
		first = false
		name := "controller"
		if l.tid > 0 {
			name = fmt.Sprintf("worker %d", l.tid-1)
		}
		bw.str(`{"ph":"M","pid":`)
		bw.str(strconv.Itoa(l.pid))
		bw.str(`,"tid":`)
		bw.str(strconv.Itoa(l.tid))
		bw.str(`,"name":"thread_name","args":{"name":"`)
		bw.str(name)
		bw.str(`"}}`)
	}

	for _, ev := range events {
		if !first {
			bw.str(",")
		}
		first = false
		pid, tid := chromePid(ev), chromeTid(ev)
		bw.str(`{"name":"`)
		bw.str(ev.Kind.String())
		if ev.Dur > 0 || isSpanKind(ev.Kind) {
			bw.str(`","ph":"X","pid":`)
			bw.str(strconv.Itoa(pid))
			bw.str(`,"tid":`)
			bw.str(strconv.Itoa(tid))
			bw.str(`,"ts":`)
			bw.str(usec(ev.TS))
			bw.str(`,"dur":`)
			bw.str(usec(ev.Dur))
		} else {
			bw.str(`","ph":"i","s":"t","pid":`)
			bw.str(strconv.Itoa(pid))
			bw.str(`,"tid":`)
			bw.str(strconv.Itoa(tid))
			bw.str(`,"ts":`)
			bw.str(usec(ev.TS))
		}
		bw.str(`,"args":{"iter":`)
		bw.str(strconv.FormatInt(int64(ev.Iter), 10))
		bw.str(`,"a":`)
		bw.str(strconv.FormatInt(ev.A, 10))
		bw.str(`,"b":`)
		bw.str(strconv.FormatInt(ev.B, 10))
		bw.str(`}}`)
	}
	bw.str("]}\n")
	return bw.err
}

// isSpanKind reports whether k is a span kind (rendered as a complete
// event even at zero duration, so instantaneous spans keep their track
// semantics).
func isSpanKind(k Kind) bool {
	switch k {
	case KCompute, KSignalWait, KGroupWait, KCollective, KReduceScatter, KAllGather, KRetryBackoff:
		return true
	}
	return false
}

// WriteJSONL renders one JSON object per line per event:
// {"ts":…,"dur":…,"kind":"…","track":…,"iter":…,"rank":…,"a":…,"b":…}.
// Timestamps are clock seconds; rank is the recording process's origin
// rank (-1 when never stamped), so a multi-rank trace self-identifies
// without relying on the per-rank file name. The format is fixed-order
// and deterministic, suitable for jq/awk streaming analysis and for the
// analyzer's ParseJSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := &errWriter{w: w}
	for _, ev := range events {
		bw.str(`{"ts":`)
		bw.str(strconv.FormatFloat(ev.TS, 'f', 9, 64))
		bw.str(`,"dur":`)
		bw.str(strconv.FormatFloat(ev.Dur, 'f', 9, 64))
		bw.str(`,"kind":"`)
		bw.str(ev.Kind.String())
		bw.str(`","track":`)
		bw.str(strconv.FormatInt(int64(ev.Track), 10))
		bw.str(`,"iter":`)
		bw.str(strconv.FormatInt(int64(ev.Iter), 10))
		bw.str(`,"rank":`)
		bw.str(strconv.FormatInt(int64(ev.Origin), 10))
		bw.str(`,"a":`)
		bw.str(strconv.FormatInt(ev.A, 10))
		bw.str(`,"b":`)
		bw.str(strconv.FormatInt(ev.B, 10))
		bw.str("}\n")
	}
	return bw.err
}

// errWriter sticks on the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// ValidateChrome is the tiny schema check `make trace-smoke` and the
// trace tests run over an exported Chrome trace: the document must be a
// {"traceEvents": […]} object whose every event has a name, a known
// phase ("M", "X", or "i"), integer pid/tid, a non-negative ts (and a
// non-negative dur for "X" events). It returns the number of non-metadata
// events.
func ValidateChrome(data []byte) (int, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	n := 0
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if err := unmarshalField(ev, "ph", &ph); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := unmarshalField(ev, "name", &name); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if name == "" {
			return 0, fmt.Errorf("trace: event %d: empty name", i)
		}
		var pid, tid float64
		if err := unmarshalField(ev, "pid", &pid); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := unmarshalField(ev, "tid", &tid); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		switch ph {
		case "M":
			continue
		case "X":
			var dur float64
			if err := unmarshalField(ev, "dur", &dur); err != nil {
				return 0, fmt.Errorf("trace: event %d: %w", i, err)
			}
			if dur < 0 {
				return 0, fmt.Errorf("trace: event %d: negative dur %v", i, dur)
			}
		case "i":
		default:
			return 0, fmt.Errorf("trace: event %d: unknown phase %q", i, ph)
		}
		var ts float64
		if err := unmarshalField(ev, "ts", &ts); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ts < 0 {
			return 0, fmt.Errorf("trace: event %d: negative ts %v", i, ts)
		}
		n++
	}
	return n, nil
}

func unmarshalField(ev map[string]json.RawMessage, key string, dst any) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("bad %q: %w", key, err)
	}
	return nil
}
