package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"partialreduce/internal/metrics"
)

func sampleInstruments() *metrics.Instruments {
	in := metrics.NewInstruments(3)
	in.ObserveStaleness(0)
	in.ObserveStaleness(0)
	in.ObserveStaleness(1)
	in.ObserveStaleness(3)
	in.RecordQueueDepth(1.0, 2)
	in.RecordQueueDepth(2.0, 5)
	in.AddBarrierWait(0, 0.5)
	in.AddBarrierWait(2, 1.25)
	in.SetSyncGauges(4, 1)
	in.CountGroup(false)
	in.CountGroup(true)
	in.CountDeferral()
	in.AddComms(metrics.CommStats{
		Ops: 7, BytesSent: 1000, BytesRecv: 900, Segments: 14,
		Retries: 1, Timeouts: 2, Aborts: 0,
		ReduceScatterS: 0.75, AllGatherS: 0.5,
	})
	return in
}

func TestWriteMetricsRendersEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, sampleInstruments().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE preduce_staleness histogram",
		`preduce_staleness_bucket{le="0"} 2`,
		`preduce_staleness_bucket{le="1"} 3`,
		`preduce_staleness_bucket{le="3"} 4`,
		`preduce_staleness_bucket{le="+Inf"} 4`,
		"preduce_staleness_sum 4",
		"preduce_staleness_count 4",
		"preduce_staleness_p50 0",
		"preduce_staleness_p95 3",
		"preduce_staleness_max 3",
		"preduce_queue_depth 5",
		`preduce_barrier_wait_seconds_total{worker="0"} 0.5`,
		`preduce_barrier_wait_seconds_total{worker="1"} 0`,
		`preduce_barrier_wait_seconds_total{worker="2"} 1.25`,
		"preduce_sync_max_contact_age 4",
		"preduce_sync_components 1",
		"preduce_groups_formed_total 2",
		"preduce_group_interventions_total 1",
		"preduce_group_deferrals_total 1",
		"preduce_comm_ops_total 7",
		"preduce_comm_sent_bytes_total 1000",
		"preduce_comm_recv_bytes_total 900",
		"preduce_comm_segments_total 14",
		"preduce_comm_retries_total 1",
		"preduce_comm_timeouts_total 2",
		"preduce_comm_aborts_total 0",
		"preduce_comm_reduce_scatter_seconds_total 0.75",
		"preduce_comm_all_gather_seconds_total 0.5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
	// No bucket is rendered past the maximum observed value.
	if strings.Contains(out, `preduce_staleness_bucket{le="4"}`) {
		t.Error("histogram rendered buckets past the max observation")
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	in := sampleInstruments()
	var a, b bytes.Buffer
	if err := WriteMetrics(&a, in.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&b, in.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("metrics rendering is not deterministic for a fixed snapshot")
	}
}

func TestWriteMetricsStopsOnWriteError(t *testing.T) {
	if err := WriteMetrics(failWriter{}, sampleInstruments().Snapshot()); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("sink full") }

func TestServeEndpoint(t *testing.T) {
	ep, err := Serve("127.0.0.1:0", sampleInstruments())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	resp, err := http.Get("http://" + ep.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "preduce_groups_formed_total 2") {
		t.Fatalf("/metrics body missing counters:\n%s", body)
	}

	resp, err = http.Get("http://" + ep.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	if err := ep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestHandlerNilInstruments: the endpoint stays serveable before the run
// wires instruments in — a nil *Instruments renders an all-zero snapshot.
func TestHandlerNilInstruments(t *testing.T) {
	ep, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	resp, err := http.Get("http://" + ep.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "preduce_staleness_count 0") {
		t.Fatalf("nil-instrument metrics unexpected:\n%s", body)
	}
}
