package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"partialreduce/internal/metrics"
)

func sampleInstruments() *metrics.Instruments {
	in := metrics.NewInstruments(3)
	in.ObserveStaleness(0)
	in.ObserveStaleness(0)
	in.ObserveStaleness(1)
	in.ObserveStaleness(3)
	in.RecordQueueDepth(1.0, 2)
	in.RecordQueueDepth(2.0, 5)
	in.AddBarrierWait(0, 0.5)
	in.AddBarrierWait(2, 1.25)
	in.SetSyncGauges(4, 1)
	in.CountGroup(false)
	in.CountGroup(true)
	in.CountDeferral()
	in.AddGroupRelease([]int{0, 2}, []float64{0.75, 0}, 2)
	in.AddComms(metrics.CommStats{
		Ops: 7, BytesSent: 1000, BytesRecv: 900, Segments: 14,
		Retries: 1, Timeouts: 2, Aborts: 0,
		ReduceScatterS: 0.75, AllGatherS: 0.5,
	})
	return in
}

func TestWriteMetricsRendersEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, sampleInstruments().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE preduce_staleness histogram",
		`preduce_staleness_bucket{le="0"} 2`,
		`preduce_staleness_bucket{le="1"} 3`,
		`preduce_staleness_bucket{le="3"} 4`,
		`preduce_staleness_bucket{le="+Inf"} 4`,
		"preduce_staleness_sum 4",
		"preduce_staleness_count 4",
		"preduce_staleness_p50 0",
		"preduce_staleness_p95 3",
		"preduce_staleness_max 3",
		"preduce_queue_depth 5",
		`preduce_barrier_wait_seconds_total{worker="0"} 0.5`,
		`preduce_barrier_wait_seconds_total{worker="1"} 0`,
		`preduce_barrier_wait_seconds_total{worker="2"} 1.25`,
		"preduce_sync_max_contact_age 4",
		"preduce_sync_components 1",
		"preduce_groups_formed_total 2",
		"preduce_group_interventions_total 1",
		"preduce_group_deferrals_total 1",
		"preduce_comm_ops_total 7",
		"preduce_comm_sent_bytes_total 1000",
		"preduce_comm_recv_bytes_total 900",
		"preduce_comm_segments_total 14",
		"preduce_comm_retries_total 1",
		"preduce_comm_timeouts_total 2",
		"preduce_comm_aborts_total 0",
		"preduce_comm_reduce_scatter_seconds_total 0.75",
		"preduce_comm_all_gather_seconds_total 0.5",
		`preduce_worker_wait_seconds_total{worker="0"} 0.75`,
		`preduce_worker_wait_seconds_total{worker="2"} 0`,
		`preduce_worker_blame_seconds_total{worker="2"} 0.75`,
		`preduce_worker_blame_seconds_total{worker="1"} 0`,
		`preduce_worker_critical_total{worker="2"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
	// The EWMA is (1−0.9)·0.75 with float rounding; assert the stable
	// prefix rather than the exact decimal tail.
	if !strings.Contains(out, `preduce_worker_blame_recent{worker="2"} 0.07`) {
		t.Error("missing recent-blame gauge for the critical worker")
	}
	// No bucket is rendered past the maximum observed value.
	if strings.Contains(out, `preduce_staleness_bucket{le="4"}`) {
		t.Error("histogram rendered buckets past the max observation")
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	in := sampleInstruments()
	var a, b bytes.Buffer
	if err := WriteMetrics(&a, in.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&b, in.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("metrics rendering is not deterministic for a fixed snapshot")
	}
}

func TestWriteScoreboard(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScoreboard(&buf, sampleInstruments().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, column row, then one line per worker with the blamed
	// worker (2) on top.
	if len(lines) != 5 {
		t.Fatalf("scoreboard has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "groups formed: 2") {
		t.Fatalf("missing group count header: %q", lines[0])
	}
	if fields := strings.Fields(lines[2]); len(fields) == 0 || fields[0] != "2" {
		t.Fatalf("top scoreboard rank = %v, want 2:\n%s", fields, out)
	}
	var again bytes.Buffer
	if err := WriteScoreboard(&again, sampleInstruments().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Fatal("scoreboard rendering is not deterministic")
	}

	// Empty snapshot degrades gracefully.
	buf.Reset()
	var nilIns *metrics.Instruments
	if err := WriteScoreboard(&buf, nilIns.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no per-worker blame data") {
		t.Fatalf("empty scoreboard: %q", buf.String())
	}
}

func TestWriteMetricsStopsOnWriteError(t *testing.T) {
	if err := WriteMetrics(failWriter{}, sampleInstruments().Snapshot()); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("sink full") }

func TestServeEndpoint(t *testing.T) {
	ep, err := Serve("127.0.0.1:0", sampleInstruments(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	resp, err := http.Get("http://" + ep.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "preduce_groups_formed_total 2") {
		t.Fatalf("/metrics body missing counters:\n%s", body)
	}

	resp, err = http.Get("http://" + ep.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	if err := ep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestHandlerNilInstruments: the endpoint stays serveable before the run
// wires instruments in — a nil *Instruments renders an all-zero snapshot.
func TestHandlerNilInstruments(t *testing.T) {
	ep, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	resp, err := http.Get("http://" + ep.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "preduce_staleness_count 0") {
		t.Fatalf("nil-instrument metrics unexpected:\n%s", body)
	}
}
