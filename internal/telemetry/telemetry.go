// Package telemetry serves a live run's instruments over HTTP: a
// Prometheus-text /metrics endpoint rendering the metrics.Instruments
// snapshot (staleness histogram with p50/p95/max, ready-queue depth,
// per-worker barrier-wait totals, sync-graph connectivity gauges, and the
// running CommStats counters), plus the standard net/http/pprof profiling
// handlers under /debug/pprof/. Everything is hand-rolled stdlib: the
// exposition format is plain text, so no client library is needed.
//
// The endpoint runs on its own mux — nothing is registered on
// http.DefaultServeMux — so embedding it never leaks handlers into the
// host process.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"partialreduce/internal/health"
	"partialreduce/internal/metrics"
)

// WriteMetrics renders a snapshot in the Prometheus text exposition format
// (version 0.0.4). The output is deterministic for a fixed snapshot: fixed
// metric order, workers ascending, buckets ascending.
func WriteMetrics(w io.Writer, snap *metrics.InstrumentsSnapshot) error {
	ew := &errw{w: w}

	// Staleness histogram: exact per-value buckets rendered cumulatively.
	ew.str("# HELP preduce_staleness Per-member staleness (group max iteration minus member iteration) observed at group formation.\n")
	ew.str("# TYPE preduce_staleness histogram\n")
	h := snap.Staleness
	counts, _ := h.Buckets() // overflow is folded into +Inf via Count
	last := -1
	for v, c := range counts {
		if c != 0 {
			last = v
		}
	}
	var cum int64
	for v := 0; v <= last; v++ {
		cum += counts[v]
		ew.str("preduce_staleness_bucket{le=\"")
		ew.str(strconv.Itoa(v))
		ew.str("\"} ")
		ew.i64(cum)
		ew.str("\n")
	}
	ew.str("preduce_staleness_bucket{le=\"+Inf\"} ")
	ew.i64(h.Count())
	ew.str("\npreduce_staleness_sum ")
	ew.i64(h.Sum())
	ew.str("\npreduce_staleness_count ")
	ew.i64(h.Count())
	ew.str("\n")

	gauge := func(name, help string, v float64) {
		ew.str("# HELP ")
		ew.str(name)
		ew.str(" ")
		ew.str(help)
		ew.str("\n# TYPE ")
		ew.str(name)
		ew.str(" gauge\n")
		ew.str(name)
		ew.str(" ")
		ew.f64(v)
		ew.str("\n")
	}
	counter := func(name, help string, v float64) {
		ew.str("# HELP ")
		ew.str(name)
		ew.str(" ")
		ew.str(help)
		ew.str("\n# TYPE ")
		ew.str(name)
		ew.str(" counter\n")
		ew.str(name)
		ew.str(" ")
		ew.f64(v)
		ew.str("\n")
	}

	gauge("preduce_staleness_p50", "Median observed staleness.", float64(h.Quantile(0.5)))
	gauge("preduce_staleness_p95", "95th-percentile observed staleness.", float64(h.Quantile(0.95)))
	gauge("preduce_staleness_max", "Maximum observed staleness.", float64(h.Max()))

	gauge("preduce_queue_depth", "Ready-queue depth at the latest sample.", snap.QueueDepthSample)
	gauge("preduce_queue_depth_samples", "Ready-queue depth samples retained.", float64(len(snap.QueueDepthV)))

	ew.str("# HELP preduce_barrier_wait_seconds_total Cumulative seconds each worker spent waiting for a group instead of computing.\n")
	ew.str("# TYPE preduce_barrier_wait_seconds_total counter\n")
	for i, s := range snap.BarrierWait {
		ew.str("preduce_barrier_wait_seconds_total{worker=\"")
		ew.str(strconv.Itoa(i))
		ew.str("\"} ")
		ew.f64(s)
		ew.str("\n")
	}

	// Online blame estimator (fed by the controller at each group
	// release): the live counterpart of preduce-analyze's blame ledger.
	perWorker := func(name, typ, help string, vals []float64) {
		if len(vals) == 0 {
			return
		}
		ew.str("# HELP ")
		ew.str(name)
		ew.str(" ")
		ew.str(help)
		ew.str("\n# TYPE ")
		ew.str(name)
		ew.str(" ")
		ew.str(typ)
		ew.str("\n")
		for i, v := range vals {
			ew.str(name)
			ew.str("{worker=\"")
			ew.str(strconv.Itoa(i))
			ew.str("\"} ")
			ew.f64(v)
			ew.str("\n")
		}
	}
	toF := func(vals []int64) []float64 {
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = float64(v)
		}
		return out
	}
	perWorker("preduce_worker_wait_seconds_total", "counter",
		"Cumulative seconds each worker spent queued waiting for its group to form.", snap.GroupWait)
	perWorker("preduce_worker_blame_seconds_total", "counter",
		"Cumulative seconds of other workers' time each worker consumed by arriving last to its groups.", snap.Blame)
	perWorker("preduce_worker_blame_recent", "gauge",
		"Exponential moving average of each worker's per-group blame (the straggler scoreboard signal).", snap.BlameEWMA)
	perWorker("preduce_worker_critical_total", "counter",
		"Groups in which each worker was the last arrival.", toF(snap.CriticalN))

	gauge("preduce_sync_max_contact_age", "Groups since the most estranged alive worker pair last synchronized (-1: some pair never met).", float64(snap.MaxContactAge))
	gauge("preduce_sync_components", "Connected components of the windowed sync-graph (1 = healthy).", float64(snap.SyncComponents))

	counter("preduce_groups_formed_total", "P-Reduce groups formed.", float64(snap.GroupsFormed))
	counter("preduce_group_interventions_total", "Groups rewritten by frozen avoidance.", float64(snap.Interventions))
	counter("preduce_group_deferrals_total", "Group formations deferred awaiting a bridging signal.", float64(snap.Deferrals))

	gauge("preduce_epoch", "Current membership world-view epoch (bumps on join/drain/decommission/fail/rejoin).", float64(snap.Epoch))

	gauge("preduce_policy_p", "Group size chosen at the latest formation-policy decision (0: no policy attached).", float64(snap.PolicyP))
	gauge("preduce_policy_alpha", "Dynamic-weight decay in effect at the latest formation-policy decision.", snap.PolicyAlpha)
	counter("preduce_policy_deviations_total", "Formation-policy decisions that deviated from the static default.", float64(snap.PolicyDeviations))

	cs := snap.Comms
	counter("preduce_comm_ops_total", "Collective operations executed.", float64(cs.Ops))
	counter("preduce_comm_sent_bytes_total", "Payload bytes sent across all workers.", float64(cs.BytesSent))
	counter("preduce_comm_recv_bytes_total", "Payload bytes received across all workers.", float64(cs.BytesRecv))
	counter("preduce_comm_segments_total", "Pipeline segments shipped.", float64(cs.Segments))
	counter("preduce_comm_retries_total", "Collective attempts re-run after a timeout.", float64(cs.Retries))
	counter("preduce_comm_timeouts_total", "Receive deadlines fired inside collectives.", float64(cs.Timeouts))
	counter("preduce_comm_aborts_total", "Collectives abandoned after exhausting the retry budget.", float64(cs.Aborts))
	counter("preduce_comm_reduce_scatter_seconds_total", "Cumulative seconds in the reduce-scatter phase across workers.", cs.ReduceScatterS)
	counter("preduce_comm_all_gather_seconds_total", "Cumulative seconds in the all-gather phase across workers.", cs.AllGatherS)

	return ew.err
}

// WriteWatchdog renders the watchdog's state in the Prometheus text
// exposition format: the evaluation counter plus per-rule firing/value/
// threshold gauges and a fires counter, labeled by rule slug. The rule
// set and order are fixed, so the output is deterministic for a fixed
// state.
func WriteWatchdog(w io.Writer, st health.State) error {
	ew := &errw{w: w}
	ew.str("# HELP preduce_watchdog_evals_total Watchdog evaluations completed.\n")
	ew.str("# TYPE preduce_watchdog_evals_total counter\n")
	ew.str("preduce_watchdog_evals_total ")
	ew.i64(int64(st.Evals))
	ew.str("\n")

	perRule := func(name, typ, help string, val func(health.RuleState) float64) {
		ew.str("# HELP ")
		ew.str(name)
		ew.str(" ")
		ew.str(help)
		ew.str("\n# TYPE ")
		ew.str(name)
		ew.str(" ")
		ew.str(typ)
		ew.str("\n")
		for _, rs := range st.Rules {
			ew.str(name)
			ew.str("{rule=\"")
			ew.str(rs.Rule)
			ew.str("\"} ")
			ew.f64(val(rs))
			ew.str("\n")
		}
	}
	perRule("preduce_watchdog_firing", "gauge",
		"Whether the rule is currently firing (1) or clear (0).",
		func(rs health.RuleState) float64 {
			if rs.Firing {
				return 1
			}
			return 0
		})
	perRule("preduce_watchdog_value", "gauge",
		"The rule's most recently evaluated value.",
		func(rs health.RuleState) float64 { return rs.Value })
	perRule("preduce_watchdog_threshold", "gauge",
		"The rule's configured SLO threshold (0: rule disabled).",
		func(rs health.RuleState) float64 {
			if !rs.Enabled {
				return 0
			}
			return rs.Threshold
		})
	perRule("preduce_watchdog_fires_total", "counter",
		"Times the rule has transitioned into firing.",
		func(rs health.RuleState) float64 { return float64(rs.Fires) })
	return ew.err
}

// WriteScoreboard renders the live straggler scoreboard: one line per
// worker, sorted by recent blame (the EWMA) descending with ties broken
// by cumulative blame then rank, so the current straggler tops the
// board. Deterministic for a fixed snapshot.
func WriteScoreboard(w io.Writer, snap *metrics.InstrumentsSnapshot) error {
	ew := &errw{w: w}
	n := len(snap.Blame)
	ew.str("straggler scoreboard (groups formed: ")
	ew.i64(snap.GroupsFormed)
	ew.str(")\n")
	if n == 0 {
		ew.str("  (no per-worker blame data)\n")
		return ew.err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if snap.BlameEWMA[i] != snap.BlameEWMA[j] {
			return snap.BlameEWMA[i] > snap.BlameEWMA[j]
		}
		if snap.Blame[i] != snap.Blame[j] {
			return snap.Blame[i] > snap.Blame[j]
		}
		return i < j
	})
	ew.str("  rank  recent_s  blame_s  waited_s  critical  groups\n")
	for _, i := range order {
		var crit, groups int64
		if i < len(snap.CriticalN) {
			crit = snap.CriticalN[i]
		}
		if i < len(snap.GroupCount) {
			groups = snap.GroupCount[i]
		}
		var wait float64
		if i < len(snap.GroupWait) {
			wait = snap.GroupWait[i]
		}
		ew.str(fmt.Sprintf("  %4d  %8.3f  %7.3f  %8.3f  %8d  %6d\n",
			i, snap.BlameEWMA[i], snap.Blame[i], wait, crit, groups))
	}
	return ew.err
}

// Handler returns the telemetry mux: /metrics renders ins (nil-safe — a nil
// Instruments serves an all-zero snapshot), /healthz and /readyz answer
// for the watchdog, and /debug/pprof/ serves the standard profiling
// endpoints.
//
// /healthz returns 200 while no watchdog rule fires and 503 while one
// does; either way the body is the watchdog state as JSON (firing rules,
// per-rule values and thresholds). A nil watchdog reads as healthy —
// monitoring off is not an outage. /readyz returns 503 until the
// watchdog has completed its first evaluation, then 200 subject to the
// same healthy check; with a nil watchdog it is always 200, so probes
// work unchanged on runs without a health plane.
func Handler(ins *metrics.Instruments, wd *health.Watchdog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, ins.Snapshot())
		if wd != nil {
			_ = WriteWatchdog(w, wd.State())
		}
	})
	writeState := func(w http.ResponseWriter, st health.State, ok bool) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		body, err := json.Marshal(st)
		if err != nil {
			body = []byte("{}")
		}
		_, _ = w.Write(append(body, '\n'))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := wd.State()
		writeState(w, st, wd == nil || st.Healthy())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := wd.State()
		writeState(w, st, wd == nil || (st.Ready() && st.Healthy()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Endpoint is a running telemetry server.
type Endpoint struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:9090", or ":0" for an ephemeral port)
// and serves Handler(ins, wd) in a background goroutine until Close.
func Serve(addr string, ins *metrics.Instruments, wd *health.Watchdog) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(ins, wd)}
	go func() { _ = srv.Serve(ln) }()
	return &Endpoint{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close shuts the endpoint down immediately.
func (e *Endpoint) Close() error { return e.srv.Close() }

// errw is a sticky-error writer with small formatting helpers.
type errw struct {
	w   io.Writer
	err error
}

func (e *errw) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errw) i64(v int64) { e.str(strconv.FormatInt(v, 10)) }

func (e *errw) f64(v float64) { e.str(strconv.FormatFloat(v, 'g', -1, 64)) }
