package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"partialreduce/internal/health"
	"partialreduce/internal/metrics"
)

// TestHealthEndpoints: /readyz is 503 until the watchdog's first
// evaluation; /healthz flips to 503 with the firing rule named in the
// JSON body when a rule fires; /metrics carries the watchdog series.
func TestHealthEndpoints(t *testing.T) {
	ins := sampleInstruments()
	wd := health.New(health.Config{
		SLO:       health.SLO{QueueDepth: 3},
		FireCount: 1, ClearCount: 2,
	})
	ep, err := Serve("127.0.0.1:0", ins, wd)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + ep.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	// Before the first evaluation: healthy but not ready.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before eval = %d, want 200", code)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before eval = %d, want 503", code)
	}
	var st struct {
		Evals  uint64   `json:"evals"`
		Firing []string `json:"firing"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/readyz body is not JSON: %v\n%s", err, body)
	}
	if st.Evals != 0 {
		t.Fatalf("/readyz evals = %d, want 0", st.Evals)
	}

	// A clean evaluation makes it ready and healthy.
	wd.Eval(1.0, health.Sample{Snap: ins.Snapshot(), QueueDepth: 0, Active: 3})
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after clean eval = %d, want 200", code)
	}

	// A breaching evaluation (FireCount=1) flips /healthz to 503 and
	// names the rule.
	wd.Eval(2.0, health.Sample{Snap: ins.Snapshot(), QueueDepth: 5, Active: 3})
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while firing = %d, want 503", code)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/healthz body is not JSON: %v\n%s", err, body)
	}
	if len(st.Firing) != 1 || st.Firing[0] != "queue-stall" {
		t.Fatalf("/healthz firing = %v, want [queue-stall]", st.Firing)
	}
	if code, _ = get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while firing = %d, want 503", code)
	}

	// The watchdog series ride along on /metrics.
	_, body = get("/metrics")
	for _, want := range []string{
		"preduce_watchdog_evals_total 2",
		`preduce_watchdog_firing{rule="queue-stall"} 1`,
		`preduce_watchdog_firing{rule="staleness-p95"} 0`,
		`preduce_watchdog_value{rule="queue-stall"} 5`,
		`preduce_watchdog_threshold{rule="queue-stall"} 3`,
		`preduce_watchdog_fires_total{rule="queue-stall"} 1`,
		"preduce_epoch 0",
	} {
		if !strings.Contains(string(body), want+"\n") {
			t.Errorf("missing %q in /metrics:\n%s", want, body)
		}
	}
}

// promSample is one parsed exposition sample: full series key
// (name{labels}) and value.
type promSample struct {
	base  string // metric family name (histogram suffixes folded)
	key   string // name plus label set, the monotonicity identity
	value float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// lintPromText parses Prometheus text exposition format strictly enough
// to catch the bugs hand-rolled writers actually produce: series without
// HELP/TYPE, malformed label syntax, unescaped label values, unparsable
// sample values, and unknown TYPE keywords. Returns the samples for
// cross-snapshot checks.
func lintPromText(t *testing.T, out string) []promSample {
	t.Helper()
	help := map[string]bool{}
	typ := map[string]string{}
	var samples []promSample
	fold := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typ[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, ok := strings.Cut(rest, " ")
			if !ok || text == "" {
				t.Errorf("line %d: HELP without text: %q", ln+1, line)
			}
			if !promNameRe.MatchString(name) {
				t.Errorf("line %d: bad metric name %q", ln+1, name)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown TYPE %q", ln+1, kind)
			}
			if !help[name] {
				t.Errorf("line %d: TYPE %s precedes its HELP", ln+1, name)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			t.Errorf("line %d: malformed sample %q", ln+1, line)
			continue
		}
		name := line[:nameEnd]
		rest := line[nameEnd:]
		key := name
		if strings.HasPrefix(rest, "{") {
			close := strings.Index(rest, "}")
			if close < 0 {
				t.Errorf("line %d: unterminated label set: %q", ln+1, line)
				continue
			}
			labels := rest[1:close]
			key = name + "{" + labels + "}"
			rest = rest[close+1:]
			for _, pair := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !promLabelRe.MatchString(k) {
					t.Errorf("line %d: bad label pair %q", ln+1, pair)
					continue
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Errorf("line %d: unquoted label value %q", ln+1, pair)
					continue
				}
				if strings.ContainsAny(v[1:len(v)-1], "\"\n\\") {
					t.Errorf("line %d: unescaped label value %q", ln+1, pair)
				}
			}
		}
		valStr := strings.TrimSpace(rest)
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("line %d: unparsable value %q", ln+1, valStr)
			continue
		}
		base := fold(name)
		if !promNameRe.MatchString(name) {
			t.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		if !help[base] || typ[base] == "" {
			t.Errorf("line %d: series %s has no HELP/TYPE for family %s", ln+1, name, base)
		}
		samples = append(samples, promSample{base: base, key: key, value: val})
	}
	return samples
}

// TestPromTextLint: the full exposition (metrics + watchdog series)
// passes the format lint, and every counter is monotone non-decreasing
// across two successive snapshots with activity in between.
func TestPromTextLint(t *testing.T) {
	ins := sampleInstruments()
	wd := health.New(health.Config{
		SLO:       health.SLO{QueueDepth: 3, StalenessP95: 100},
		FireCount: 1,
	})
	wd.Eval(1.0, health.Sample{Snap: ins.Snapshot(), QueueDepth: 5, Active: 3})

	render := func() string {
		var buf bytes.Buffer
		if err := WriteMetrics(&buf, ins.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := WriteWatchdog(&buf, wd.State()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	first := lintPromText(t, render())
	counterKinds := map[string]string{}
	for _, line := range strings.Split(render(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			counterKinds[name] = kind
		}
	}
	before := map[string]float64{}
	for _, s := range first {
		before[s.key] = s.value
	}

	// More activity: every counter should only grow (or hold).
	ins.ObserveStaleness(2)
	ins.CountGroup(true)
	ins.AddComms(metrics.CommStats{Ops: 3, BytesSent: 64, Retries: 2, Timeouts: 1})
	ins.AddGroupRelease([]int{0, 1}, []float64{0.25, 0}, 1)
	wd.Eval(2.0, health.Sample{Snap: ins.Snapshot(), QueueDepth: 5, Active: 3})

	second := lintPromText(t, render())
	for _, s := range second {
		if counterKinds[s.base] != "counter" {
			continue
		}
		if prev, ok := before[s.key]; ok && s.value < prev {
			t.Errorf("counter %s went backwards: %v -> %v", s.key, prev, s.value)
		}
	}
	// Sanity: the lint saw real content (histogram + counters + watchdog).
	if len(second) < 30 {
		t.Fatalf("lint parsed only %d samples, exposition suspiciously small", len(second))
	}
}
