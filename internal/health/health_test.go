package health

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partialreduce/internal/metrics"
	"partialreduce/internal/trace"
)

// snapWithBlame returns a snapshot whose worker 1 carries a recent-blame
// EWMA of about ewma seconds.
func snapWithBlame(ewma float64) *metrics.InstrumentsSnapshot {
	ins := metrics.NewInstruments(4)
	// One release where worker 1 arrived last charges it (1-decay)·induced
	// into the EWMA; release repeatedly until the EWMA crosses ewma.
	for i := 0; i < 200; i++ {
		ins.AddGroupRelease([]int{0, 1, 2}, []float64{10 * ewma, 0, 10 * ewma}, 1)
		if s := ins.Snapshot(); s.BlameEWMA[1] >= ewma {
			break
		}
	}
	return ins.Snapshot()
}

func TestWatchdogHysteresisFireAndClear(t *testing.T) {
	wd := New(Config{SLO: SLO{BlameRecent: 0.5}, FireCount: 2, ClearCount: 3})
	hot := Sample{Snap: snapWithBlame(1.0)}
	cold := Sample{Snap: snapWithBlame(0.0)}

	if br := wd.Eval(1, hot); len(br) != 0 {
		t.Fatalf("fired after 1 breaching eval (FireCount=2): %+v", br)
	}
	br := wd.Eval(2, hot)
	if len(br) != 1 || br[0].Rule != RBlameSpike {
		t.Fatalf("want blame-spike breach at eval 2, got %+v", br)
	}
	if br[0].At != 2 || br[0].Threshold != 0.5 || br[0].Value < 0.5 {
		t.Fatalf("breach fields wrong: %+v", br[0])
	}
	// Still breaching: no re-fire while the rule holds.
	for i := 0; i < 5; i++ {
		if br := wd.Eval(float64(3+i), hot); len(br) != 0 {
			t.Fatalf("re-fired while already firing: %+v", br)
		}
	}
	st := wd.State()
	if !st.Ready() || st.Healthy() {
		t.Fatalf("state should be ready and unhealthy: %+v", st)
	}
	if len(st.Firing) != 1 || st.Firing[0] != "blame-spike" {
		t.Fatalf("firing list wrong: %v", st.Firing)
	}

	// Two clean evals (< ClearCount=3) do not re-arm...
	wd.Eval(10, cold)
	wd.Eval(11, cold)
	if wd.State().Healthy() {
		t.Fatal("cleared before ClearCount consecutive clean evals")
	}
	// ...a breaching eval resets the clear streak...
	wd.Eval(12, hot)
	wd.Eval(13, cold)
	wd.Eval(14, cold)
	if wd.State().Healthy() {
		t.Fatal("clear streak should have reset on the breaching eval")
	}
	// ...and three consecutive clean evals finally re-arm.
	wd.Eval(15, cold)
	if !wd.State().Healthy() {
		t.Fatal("rule did not clear after ClearCount clean evals")
	}
	// Re-armed: a fresh anomaly fires again (a second bundle for a
	// genuinely new episode).
	wd.Eval(20, hot)
	br = wd.Eval(21, hot)
	if len(br) != 1 {
		t.Fatalf("re-armed rule did not fire on a new episode: %+v", br)
	}
	if got := wd.State().Rules[int(RBlameSpike)].Fires; got != 2 {
		t.Fatalf("fires counter = %d, want 2", got)
	}
}

func TestWatchdogDeltaRulesPrimeOnFirstEval(t *testing.T) {
	wd := New(Config{SLO: SLO{RetryStorm: 5, EpochChurn: 2}, FireCount: 1, ClearCount: 1})
	ins := metrics.NewInstruments(2)
	ins.AddComms(metrics.CommStats{Retries: 100, Timeouts: 100})
	ins.SetEpoch(50)
	// First eval seeds baselines: the pre-existing backlog must not fire.
	if br := wd.Eval(1, Sample{Snap: ins.Snapshot()}); len(br) != 0 {
		t.Fatalf("delta rules fired on priming eval: %+v", br)
	}
	// No change: still quiet.
	if br := wd.Eval(2, Sample{Snap: ins.Snapshot()}); len(br) != 0 {
		t.Fatalf("delta rules fired with zero delta: %+v", br)
	}
	// A storm between evals fires both.
	ins.AddComms(metrics.CommStats{Retries: 4, Timeouts: 3})
	ins.SetEpoch(53)
	br := wd.Eval(3, Sample{Snap: ins.Snapshot()})
	if len(br) != 2 || br[0].Rule != RRetryStorm || br[1].Rule != REpochChurn {
		t.Fatalf("want retry-storm + epoch-churn, got %+v", br)
	}
	if br[0].Value != 7 || br[1].Value != 3 {
		t.Fatalf("delta values wrong: %+v", br)
	}
}

func TestWatchdogSilenceGatedOnActive(t *testing.T) {
	wd := New(Config{SLO: SLO{Silence: 5}, FireCount: 1, ClearCount: 1})
	ins := metrics.NewInstruments(2)
	snap := func() Sample { return Sample{Snap: ins.Snapshot(), Active: 2} }
	wd.Eval(0, snap()) // primes progressAt=0
	// Progress resets the silence clock.
	ins.CountGroup(false)
	if br := wd.Eval(6, snap()); len(br) != 0 {
		t.Fatalf("silence fired despite fresh progress: %+v", br)
	}
	// 6 quiet seconds with 2 active workers: fires.
	if br := wd.Eval(12, snap()); len(br) != 1 || br[0].Rule != RHeartbeatSilence {
		t.Fatalf("want heartbeat-silence, got %+v", br)
	}
	// Same silence with the run winding down (Active < 2): gated.
	wd2 := New(Config{SLO: SLO{Silence: 5}, FireCount: 1, ClearCount: 1})
	wd2.Eval(0, Sample{Snap: ins.Snapshot(), Active: 1})
	if br := wd2.Eval(12, Sample{Snap: ins.Snapshot(), Active: 1}); len(br) != 0 {
		t.Fatalf("silence fired during wind-down: %+v", br)
	}
}

func TestWatchdogQueueAndPartitionRules(t *testing.T) {
	wd := New(Config{SLO: SLO{QueueDepth: 4, SyncComponents: 2, StalenessP95: 3}, FireCount: 1, ClearCount: 1})
	ins := metrics.NewInstruments(4)
	ins.SetSyncGauges(1, 3)
	for i := 0; i < 18; i++ {
		ins.ObserveStaleness(0)
	}
	ins.ObserveStaleness(8) // two 8s out of 20: the p95 rank (19) lands on 8
	ins.ObserveStaleness(8)
	br := wd.Eval(1, Sample{Snap: ins.Snapshot(), QueueDepth: 5})
	rules := make([]string, len(br))
	for i, b := range br {
		rules[i] = b.Rule.String()
	}
	got := strings.Join(rules, ",")
	if got != "staleness-p95,sync-partition,queue-stall" {
		t.Fatalf("rules = %s", got)
	}
}

func TestNilWatchdogAndRecorder(t *testing.T) {
	var wd *Watchdog
	if br := wd.Eval(1, Sample{}); br != nil {
		t.Fatal("nil watchdog evaluated")
	}
	if st := wd.State(); st.Ready() || !st.Healthy() {
		t.Fatalf("nil watchdog state: %+v", st)
	}
	var rec *Recorder
	if p, err := rec.Capture("x", 0, nil, State{}); p != "" || err != nil {
		t.Fatal("nil recorder captured")
	}
	rec.SetControllerSnapshot(nil)
	if rec.Written() != nil || rec.Dropped() != 0 {
		t.Fatal("nil recorder has state")
	}
}

// buildBundle assembles a representative in-memory bundle.
func buildBundle() *Bundle {
	ins := metrics.NewInstruments(3)
	ins.ObserveStaleness(1)
	ins.ObserveStaleness(2)
	ins.RecordQueueDepth(0.5, 2)
	ins.AddGroupRelease([]int{0, 1, 2}, []float64{0.4, 0, 0.2}, 1)
	ins.AddComms(metrics.CommStats{Ops: 3, Retries: 1, Timeouts: 2})
	ins.SetEpoch(4)
	now := 0.0
	tr := trace.New(trace.FuncClock(func() float64 { return now }), 16)
	tr.SetOrigin(0)
	now = 1.5
	tr.Instant(trace.KReady, 1, 7, 3, 0)
	tr.SpanAt(trace.KCompute, 0, 7, 1.0, 0.25, 0, 0)
	wd := New(Config{SLO: SLO{BlameRecent: 0.01}, FireCount: 1, ClearCount: 1})
	br := wd.Eval(2.0, Sample{Snap: ins.Snapshot(), QueueDepth: 1, Active: 3})
	return &Bundle{
		Reason:     "blame-spike",
		At:         2.0,
		Breaches:   br,
		State:      wd.State(),
		Snap:       ins.Snapshot(),
		Events:     tr.Events(),
		Config:     []byte(`{"n":3,"p":2}`),
		Controller: []byte{0xde, 0xad, 0xbe, 0xef},
	}
}

func TestBundleWriteValidateDeterministic(t *testing.T) {
	b := buildBundle()
	var one, two bytes.Buffer
	if err := WriteBundle(&one, b); err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(&two, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("bundle serialization is not deterministic")
	}
	man, err := Validate(one.Bytes())
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if man.Version != BundleVersion || man.Reason != "blame-spike" || man.At != 2.0 {
		t.Fatalf("manifest: %+v", man)
	}
	if len(man.Rules) != 1 || man.Rules[0] != "blame-spike" {
		t.Fatalf("manifest rules: %v", man.Rules)
	}
	if len(man.Parts) != 6 {
		t.Fatalf("manifest parts: %+v", man.Parts)
	}

	// Parts carry the expected payloads.
	_, parts, err := ReadBundle(bytes.NewReader(one.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parts[PartController], []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatal("controller blob mangled")
	}
	if !strings.HasPrefix(string(parts[PartScoreboard]), "rank,recent_s,blame_s,waited_s,critical,groups\n1,") {
		t.Fatalf("scoreboard should rank worker 1 first:\n%s", parts[PartScoreboard])
	}
	if lines := strings.Count(string(parts[PartTrace]), "\n"); lines != 2 {
		t.Fatalf("trace part holds %d events, want 2", lines)
	}
	if !strings.Contains(string(parts[PartMetrics]), `"epoch":4`) {
		t.Fatal("metrics part missing epoch")
	}
	if !strings.Contains(string(parts[PartWatchdog]), `"rule":"blame-spike"`) {
		t.Fatal("watchdog part missing breach")
	}

	// A flipped byte in any part fails validation.
	bad := append([]byte(nil), one.Bytes()...)
	// Locate the controller payload and flip it.
	i := bytes.Index(bad, []byte{0xde, 0xad, 0xbe, 0xef})
	if i < 0 {
		t.Fatal("controller payload not found in archive")
	}
	bad[i] ^= 0xff
	if _, err := Validate(bad); err == nil {
		t.Fatal("validate accepted a corrupted bundle")
	}
}

func TestRecorderCaptureAndCap(t *testing.T) {
	dir := t.TempDir()
	ins := metrics.NewInstruments(2)
	now := 3.0
	tr := trace.New(trace.FuncClock(func() float64 { return now }), 8)
	rec := NewRecorder(filepath.Join(dir, "pm"), tr, ins, []byte(`{"seed":1}`))
	rec.MaxBundles = 2
	rec.SetControllerSnapshot([]byte("ctrl"))

	p1, err := rec.Capture("blame-spike", 3.0, []Breach{{Rule: RBlameSpike, Value: 1, Threshold: 0.5, At: 3, Seq: 4}}, State{})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "postmortem-000-blame-spike.tar" {
		t.Fatalf("bundle name: %s", p1)
	}
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(data); err != nil {
		t.Fatalf("captured bundle invalid: %v", err)
	}
	if _, err := rec.Capture("Operator Requested!", 4.0, nil, State{}); err != nil {
		t.Fatal(err)
	}
	// Cap reached: silently dropped.
	p3, err := rec.Capture("retry-storm", 5.0, nil, State{})
	if err != nil || p3 != "" {
		t.Fatalf("capture past cap: %q %v", p3, err)
	}
	w := rec.Written()
	if len(w) != 2 || filepath.Base(w[1]) != "postmortem-001-operator-requested-.tar" {
		t.Fatalf("written: %v", w)
	}
	if rec.Dropped() != 1 {
		t.Fatalf("dropped = %d", rec.Dropped())
	}
	// No temp litter.
	entries, _ := os.ReadDir(filepath.Join(dir, "pm"))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
