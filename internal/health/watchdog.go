// Package health is the run's self-monitoring plane: a deterministic
// SLO rule engine (Watchdog) evaluated on a fixed cadence over
// metrics.Instruments snapshots plus controller introspection, and a
// flight recorder (Recorder) that captures a postmortem bundle — the
// always-on trace ring, a controller snapshot, the full metrics
// snapshot, the straggler scoreboard, the firing rule with its
// evaluated values, and the run config — the moment a rule fires.
//
// The paper's anomalies (straggler episodes, retry storms, sync-graph
// partitions) are transient: by the time an operator reacts to a
// dashboard, the evidence is gone. The watchdog closes that gap: it
// detects the anomaly itself and snapshots the black box while the
// anomaly is still in the ring. The engine is pure state machine — no
// clocks, no goroutines, no I/O — so the simulator drives it with the
// virtual clock (byte-reproducible firings under seed replay) and the
// live runtime drives it with the wall clock through the same Eval.
package health

import (
	"sync"

	"partialreduce/internal/metrics"
)

// Rule enumerates the watchdog's SLO rules. Each rule is enabled by a
// positive threshold in SLO and breaches when its evaluated value
// reaches the threshold (value >= threshold, uniformly).
type Rule uint8

const (
	// RStalenessP95 fires when the 95th-percentile observed staleness
	// reaches SLO.StalenessP95 iterations — the bounded-staleness claim
	// of the paper is being violated.
	RStalenessP95 Rule = iota
	// RBlameSpike fires when any worker's recent-blame EWMA (the
	// straggler scoreboard signal) reaches SLO.BlameRecent seconds — a
	// straggler episode is in progress right now.
	RBlameSpike
	// RRetryStorm fires when the collective retry+timeout count grows by
	// at least SLO.RetryStorm between consecutive evaluations — the
	// data plane is fighting a partition or a flapping link.
	RRetryStorm
	// RSyncPartition fires when the windowed sync-graph splits into at
	// least SLO.SyncComponents connected components — subsets of workers
	// have stopped synchronizing with each other (group freeze risk).
	RSyncPartition
	// RQueueStall fires when the controller's ready-queue depth reaches
	// SLO.QueueDepth — workers are signaling but groups are not forming.
	RQueueStall
	// REpochChurn fires when the membership epoch advances by at least
	// SLO.EpochChurn between consecutive evaluations — fail/rejoin or
	// join/drain thrash.
	REpochChurn
	// RHeartbeatSilence fires when no new group has formed for
	// SLO.Silence seconds while at least two workers are still active —
	// global progress has stopped.
	RHeartbeatSilence

	ruleCount // internal: table size
)

// ruleNames maps rules to the stable slugs used in bundle file names,
// /healthz bodies, and the preduce_watchdog_* rule label.
var ruleNames = [ruleCount]string{
	RStalenessP95:     "staleness-p95",
	RBlameSpike:       "blame-spike",
	RRetryStorm:       "retry-storm",
	RSyncPartition:    "sync-partition",
	RQueueStall:       "queue-stall",
	REpochChurn:       "epoch-churn",
	RHeartbeatSilence: "heartbeat-silence",
}

// String returns the stable slug of r ("rule-?" for unknown values).
func (r Rule) String() string {
	if int(r) < len(ruleNames) && ruleNames[r] != "" {
		return ruleNames[r]
	}
	return "rule-?"
}

// Rules returns every rule in evaluation order.
func Rules() []Rule {
	out := make([]Rule, ruleCount)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}

// SLO holds the declarative thresholds, one per rule. A zero (or
// negative) threshold disables its rule; every rule breaches when its
// evaluated value >= the threshold.
type SLO struct {
	StalenessP95   int64   // iterations: staleness p95 at or above this
	BlameRecent    float64 // seconds: any worker's recent-blame EWMA at or above this
	RetryStorm     int64   // events: retries+timeouts delta per evaluation at or above this
	SyncComponents int64   // components: sync-graph component count at or above this (2 = any split)
	QueueDepth     int64   // workers: ready-queue depth at or above this
	EpochChurn     int64   // bumps: membership-epoch delta per evaluation at or above this
	Silence        float64 // seconds: no group formed for this long with >= 2 active workers
}

// Config configures a Watchdog. FireCount consecutive breaching
// evaluations arm a rule into firing (default 2); ClearCount consecutive
// clean evaluations re-arm it (default 4). The asymmetry is the
// hysteresis: a flapping signal neither fires on one bad sample nor
// re-fires the instant it dips under the threshold.
type Config struct {
	SLO        SLO
	FireCount  int
	ClearCount int
}

// DefaultFireCount and DefaultClearCount are the hysteresis defaults
// used when Config leaves them <= 0.
const (
	DefaultFireCount  = 2
	DefaultClearCount = 4
)

// Sample is one evaluation's input: the instruments snapshot plus the
// two controller introspection values that must be read inside the
// controller's serialization domain.
type Sample struct {
	Snap       *metrics.InstrumentsSnapshot
	QueueDepth int // controller ready-queue depth now
	Active     int // live, unfinished workers (gates heartbeat-silence)
}

// Breach is one rule transitioning into the firing state: the rule, the
// value that armed it, its threshold, the evaluation clock time, and
// the evaluation sequence number.
type Breach struct {
	Rule      Rule
	Value     float64
	Threshold float64
	At        float64
	Seq       uint64
}

// RuleState is one rule's externally visible state, for /healthz and
// the preduce_watchdog_* series.
type RuleState struct {
	Rule      string  `json:"rule"`
	Enabled   bool    `json:"enabled"`
	Firing    bool    `json:"firing"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Fires     uint64  `json:"fires"`
	LastFired float64 `json:"last_fired"`
}

// State is a consistent copy of the watchdog's externally visible
// state.
type State struct {
	Evals      uint64      `json:"evals"`
	LastEvalAt float64     `json:"last_eval_at"`
	Firing     []string    `json:"firing"`
	Rules      []RuleState `json:"rules"`
}

// Healthy reports whether no rule is firing.
func (s State) Healthy() bool { return len(s.Firing) == 0 }

// Ready reports whether the watchdog has completed at least one
// evaluation (the /readyz signal).
func (s State) Ready() bool { return s.Evals > 0 }

// Watchdog is the deterministic rule engine. It holds no clock and
// performs no I/O: the host calls Eval on its own cadence with its own
// clock reading, and Eval returns the rules that newly fired this
// evaluation (empty almost always). All methods are safe for concurrent
// use; determinism requires only that Eval calls arrive in a
// deterministic order with deterministic inputs, which the simulator's
// event loop guarantees.
type Watchdog struct {
	mu  sync.Mutex
	cfg Config

	evals      uint64
	lastEvalAt float64

	breachStreak [ruleCount]int
	clearStreak  [ruleCount]int
	firing       [ruleCount]bool
	fires        [ruleCount]uint64
	lastValue    [ruleCount]float64
	lastFired    [ruleCount]float64

	// Baselines for the delta rules (retry-storm, epoch-churn) and the
	// progress clock for heartbeat-silence. primed is false until the
	// first Eval seeds them, so a run that starts with history (a
	// restored controller) does not fire on its backlog.
	primed       bool
	lastRetryish int64
	lastEpoch    int64
	lastGroups   int64
	progressAt   float64
}

// New returns a watchdog for cfg, with hysteresis defaults applied.
func New(cfg Config) *Watchdog {
	if cfg.FireCount <= 0 {
		cfg.FireCount = DefaultFireCount
	}
	if cfg.ClearCount <= 0 {
		cfg.ClearCount = DefaultClearCount
	}
	return &Watchdog{cfg: cfg}
}

// threshold returns r's configured threshold (<= 0 disables).
func (w *Watchdog) threshold(r Rule) float64 {
	switch r {
	case RStalenessP95:
		return float64(w.cfg.SLO.StalenessP95)
	case RBlameSpike:
		return w.cfg.SLO.BlameRecent
	case RRetryStorm:
		return float64(w.cfg.SLO.RetryStorm)
	case RSyncPartition:
		return float64(w.cfg.SLO.SyncComponents)
	case RQueueStall:
		return float64(w.cfg.SLO.QueueDepth)
	case REpochChurn:
		return float64(w.cfg.SLO.EpochChurn)
	case RHeartbeatSilence:
		return w.cfg.SLO.Silence
	}
	return 0
}

// Eval runs one evaluation at clock time now over s and returns the
// rules that newly transitioned into firing (one Breach each). A rule
// already firing does not re-breach until ClearCount consecutive clean
// evaluations re-arm it — the exactly-one-bundle-per-anomaly property.
// Nil-safe: a nil watchdog (monitoring off) returns nil.
func (w *Watchdog) Eval(now float64, s Sample) []Breach {
	if w == nil {
		return nil
	}
	snap := s.Snap
	if snap == nil {
		snap = (*metrics.Instruments)(nil).Snapshot()
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	retryish := snap.Comms.Retries + snap.Comms.Timeouts
	if !w.primed {
		w.primed = true
		w.lastRetryish = retryish
		w.lastEpoch = snap.Epoch
		w.lastGroups = snap.GroupsFormed
		w.progressAt = now
	}
	if snap.GroupsFormed > w.lastGroups {
		w.lastGroups = snap.GroupsFormed
		w.progressAt = now
	}

	maxEWMA := 0.0
	for _, v := range snap.BlameEWMA {
		if v > maxEWMA {
			maxEWMA = v
		}
	}

	values := [ruleCount]float64{
		RStalenessP95:     float64(snap.Staleness.Quantile(0.95)),
		RBlameSpike:       maxEWMA,
		RRetryStorm:       float64(retryish - w.lastRetryish),
		RSyncPartition:    float64(snap.SyncComponents),
		RQueueStall:       float64(s.QueueDepth),
		REpochChurn:       float64(snap.Epoch - w.lastEpoch),
		RHeartbeatSilence: now - w.progressAt,
	}
	w.lastRetryish = retryish
	w.lastEpoch = snap.Epoch

	w.evals++
	w.lastEvalAt = now

	var fired []Breach
	for r := Rule(0); r < ruleCount; r++ {
		thr := w.threshold(r)
		w.lastValue[r] = values[r]
		if thr <= 0 {
			continue
		}
		breaching := values[r] >= thr
		if r == RHeartbeatSilence && s.Active < 2 {
			// A run winding down (or solo) is not silent, it is done.
			breaching = false
		}
		if breaching {
			w.breachStreak[r]++
			w.clearStreak[r] = 0
			if !w.firing[r] && w.breachStreak[r] >= w.cfg.FireCount {
				w.firing[r] = true
				w.fires[r]++
				w.lastFired[r] = now
				fired = append(fired, Breach{
					Rule: r, Value: values[r], Threshold: thr, At: now, Seq: w.evals,
				})
			}
		} else {
			w.breachStreak[r] = 0
			w.clearStreak[r]++
			if w.firing[r] && w.clearStreak[r] >= w.cfg.ClearCount {
				w.firing[r] = false
			}
		}
	}
	return fired
}

// State returns a consistent copy of the watchdog's visible state.
// Nil-safe: a nil watchdog reports zero evaluations and no rules.
func (w *Watchdog) State() State {
	if w == nil {
		return State{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := State{Evals: w.evals, LastEvalAt: w.lastEvalAt}
	for r := Rule(0); r < ruleCount; r++ {
		thr := w.threshold(r)
		rs := RuleState{
			Rule:      r.String(),
			Enabled:   thr > 0,
			Firing:    w.firing[r],
			Value:     w.lastValue[r],
			Threshold: thr,
			Fires:     w.fires[r],
			LastFired: w.lastFired[r],
		}
		st.Rules = append(st.Rules, rs)
		if rs.Firing {
			st.Firing = append(st.Firing, rs.Rule)
		}
	}
	return st
}
