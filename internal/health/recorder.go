package health

// Recorder is the flight-recorder half of the health plane: it owns the
// capture sources (the always-on trace ring, the live instruments, the
// run config, and a cached controller snapshot refreshed at each
// watchdog evaluation) and writes postmortem bundles atomically into
// its directory. A nil *Recorder is the disabled form — Capture is a
// nil-safe no-op — so hosts wire it unconditionally and gate on flags.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"partialreduce/internal/metrics"
	"partialreduce/internal/trace"
)

// DefaultMaxBundles bounds a recorder's lifetime captures: once reached,
// further captures are dropped (counted, not written) so a firing storm
// cannot fill the disk.
const DefaultMaxBundles = 32

// Recorder captures postmortem bundles into a directory.
type Recorder struct {
	mu     sync.Mutex
	dir    string
	tracer *trace.Tracer
	ins    *metrics.Instruments
	config []byte
	ctrl   []byte

	// MaxBundles caps lifetime captures (set before first Capture;
	// <= 0 selects DefaultMaxBundles).
	MaxBundles int

	seq     int
	written []string
	dropped int
}

// NewRecorder returns a recorder writing bundles into dir, snapshotting
// tracer and ins at capture time, and embedding config (run-config
// JSON) verbatim in every bundle. dir is created on first capture.
func NewRecorder(dir string, tr *trace.Tracer, ins *metrics.Instruments, config []byte) *Recorder {
	return &Recorder{dir: dir, tracer: tr, ins: ins, config: config}
}

// SetControllerSnapshot caches the latest controller snapshot blob. The
// watchdog host refreshes it inside the controller's serialization
// domain at each evaluation, so an out-of-band capture (the SIGINT
// flush) has a recent blob without touching the controller. Nil-safe.
func (r *Recorder) SetControllerSnapshot(b []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ctrl = b
	r.mu.Unlock()
}

// slugify maps a capture reason onto a file-name-safe slug.
func slugify(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "capture"
	}
	return string(out)
}

// Capture writes one postmortem bundle for reason at clock time at,
// carrying breaches and st, and returns its path. The bundle snapshots
// the recorder's trace ring, instruments, cached controller blob, and
// config at this moment. Writes are atomic (temp file + rename). Once
// MaxBundles captures have been written, further captures are dropped
// and return ("", nil). Nil-safe: a nil recorder returns ("", nil).
func (r *Recorder) Capture(reason string, at float64, breaches []Breach, st State) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	max := r.MaxBundles
	if max <= 0 {
		max = DefaultMaxBundles
	}
	if r.seq >= max {
		r.dropped++
		return "", nil
	}
	b := &Bundle{
		Reason:     reason,
		At:         at,
		Breaches:   breaches,
		State:      st,
		Snap:       r.ins.Snapshot(),
		Events:     r.tracer.Events(),
		Config:     r.config,
		Controller: r.ctrl,
	}
	name := fmt.Sprintf("postmortem-%03d-%s.tar", r.seq, slugify(reason))
	if err := os.MkdirAll(r.dir, 0755); err != nil {
		return "", fmt.Errorf("health: recorder dir: %w", err)
	}
	path := filepath.Join(r.dir, name)
	tmp, err := os.CreateTemp(r.dir, ".tmp-postmortem-*")
	if err != nil {
		return "", fmt.Errorf("health: recorder temp: %w", err)
	}
	werr := WriteBundle(tmp, b)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("health: capture %s: %w", name, werr)
	}
	r.seq++
	r.written = append(r.written, path)
	return path, nil
}

// Written returns the paths of every bundle captured so far (oldest
// first). Nil-safe.
func (r *Recorder) Written() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.written))
	copy(out, r.written)
	return out
}

// Dropped returns the number of captures dropped after MaxBundles.
// Nil-safe.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
