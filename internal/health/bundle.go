package health

// Postmortem bundle format: one tar archive of deterministic parts,
// CRC-guarded by a manifest. The writer is canonical — fixed part
// order, zeroed tar header metadata (ModTime Unix(0,0), mode 0644,
// USTAR) and hand-ordered JSON — so a deterministic input (a same-seed
// simulator replay) produces a byte-identical bundle, and Validate can
// prove integrity by re-encoding the parsed parts and comparing bytes.
//
// Parts, in archive order:
//
//	manifest.json   version, reason, firing rules, part index with CRC32s
//	watchdog.json   the breaches that triggered capture + full rule state
//	metrics.json    the full instruments snapshot (buckets, per-worker ledgers)
//	scoreboard.csv  the straggler scoreboard, recent-blame descending
//	trace.jsonl     the flight-recorder ring, trace.WriteJSONL format
//	config.json     host-supplied run config (verbatim; "{}" when absent)
//	controller.bin  the controller snapshot blob (may be empty)

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"time"

	"partialreduce/internal/metrics"
	"partialreduce/internal/trace"
)

// BundleVersion is the manifest schema version this package writes.
const BundleVersion = 1

// Part names, in canonical archive order (manifest first).
const (
	PartManifest   = "manifest.json"
	PartWatchdog   = "watchdog.json"
	PartMetrics    = "metrics.json"
	PartScoreboard = "scoreboard.csv"
	PartTrace      = "trace.jsonl"
	PartConfig     = "config.json"
	PartController = "controller.bin"
)

// partOrder is the canonical order of the non-manifest parts.
var partOrder = []string{PartWatchdog, PartMetrics, PartScoreboard, PartTrace, PartConfig, PartController}

// PartInfo is one part's manifest entry.
type PartInfo struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"` // IEEE
}

// Manifest indexes a bundle: schema version, why and when it was
// captured, which rules were involved, and the CRC-guarded part list.
type Manifest struct {
	Version int        `json:"version"`
	Reason  string     `json:"reason"`
	At      float64    `json:"at"`
	Rules   []string   `json:"rules"`
	Parts   []PartInfo `json:"parts"`
}

// watchdogPart is the watchdog.json schema: the breaches that triggered
// this capture plus the full rule state at capture time.
type watchdogPart struct {
	Reason   string        `json:"reason"`
	At       float64       `json:"at"`
	Breaches []breachEntry `json:"breaches"`
	State    State         `json:"state"`
}

// breachEntry is a Breach with its rule rendered as the stable slug.
type breachEntry struct {
	Rule      string  `json:"rule"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	At        float64 `json:"at"`
	Seq       uint64  `json:"seq"`
}

// metricsPart is the metrics.json schema: the full instruments snapshot
// flattened to exported scalars and slices. It deliberately does not
// reuse telemetry's Prometheus rendering — the bundle is a data
// artifact, not a scrape.
type metricsPart struct {
	StalenessBuckets  []int64           `json:"staleness_buckets"`
	StalenessOverflow int64             `json:"staleness_overflow"`
	StalenessCount    int64             `json:"staleness_count"`
	StalenessSum      int64             `json:"staleness_sum"`
	StalenessMax      int64             `json:"staleness_max"`
	StalenessP50      int64             `json:"staleness_p50"`
	StalenessP95      int64             `json:"staleness_p95"`
	QueueDepthTS      []float64         `json:"queue_depth_ts"`
	QueueDepthV       []float64         `json:"queue_depth_v"`
	BarrierWait       []float64         `json:"barrier_wait"`
	GroupWait         []float64         `json:"group_wait"`
	Blame             []float64         `json:"blame"`
	BlameEWMA         []float64         `json:"blame_ewma"`
	CriticalN         []int64           `json:"critical_n"`
	GroupCount        []int64           `json:"group_count"`
	MaxContactAge     int64             `json:"max_contact_age"`
	SyncComponents    int64             `json:"sync_components"`
	GroupsFormed      int64             `json:"groups_formed"`
	Interventions     int64             `json:"interventions"`
	Deferrals         int64             `json:"deferrals"`
	Epoch             int64             `json:"epoch"`
	PolicyP           int64             `json:"policy_p"`
	PolicyAlpha       float64           `json:"policy_alpha"`
	PolicyDeviations  int64             `json:"policy_deviations"`
	Comms             metrics.CommStats `json:"comms"`
}

// Bundle is the in-memory form of one postmortem capture, ready to be
// serialized by WriteBundle.
type Bundle struct {
	Reason     string
	At         float64
	Breaches   []Breach
	State      State
	Snap       *metrics.InstrumentsSnapshot
	Events     []trace.Event
	Config     []byte // run config JSON, verbatim; nil renders as "{}"
	Controller []byte // controller snapshot blob; may be nil
}

// renderScoreboard renders the straggler scoreboard CSV: one row per
// worker sorted by recent blame descending (cumulative blame, then rank,
// break ties), with fixed 6-decimal floats for byte determinism.
func renderScoreboard(snap *metrics.InstrumentsSnapshot) []byte {
	var buf bytes.Buffer
	buf.WriteString("rank,recent_s,blame_s,waited_s,critical,groups\n")
	n := len(snap.Blame)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if snap.BlameEWMA[i] != snap.BlameEWMA[j] {
			return snap.BlameEWMA[i] > snap.BlameEWMA[j]
		}
		if snap.Blame[i] != snap.Blame[j] {
			return snap.Blame[i] > snap.Blame[j]
		}
		return i < j
	})
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, i := range order {
		var wait float64
		var crit, groups int64
		if i < len(snap.GroupWait) {
			wait = snap.GroupWait[i]
		}
		if i < len(snap.CriticalN) {
			crit = snap.CriticalN[i]
		}
		if i < len(snap.GroupCount) {
			groups = snap.GroupCount[i]
		}
		fmt.Fprintf(&buf, "%d,%s,%s,%s,%d,%d\n", i, f(snap.BlameEWMA[i]), f(snap.Blame[i]), f(wait), crit, groups)
	}
	return buf.Bytes()
}

// renderMetrics renders metrics.json from the snapshot.
func renderMetrics(snap *metrics.InstrumentsSnapshot) ([]byte, error) {
	counts, overflow := snap.Staleness.Buckets()
	mp := metricsPart{
		StalenessBuckets:  counts,
		StalenessOverflow: overflow,
		StalenessCount:    snap.Staleness.Count(),
		StalenessSum:      snap.Staleness.Sum(),
		StalenessMax:      snap.Staleness.Max(),
		StalenessP50:      snap.Staleness.Quantile(0.5),
		StalenessP95:      snap.Staleness.Quantile(0.95),
		QueueDepthTS:      snap.QueueDepthTS,
		QueueDepthV:       snap.QueueDepthV,
		BarrierWait:       snap.BarrierWait,
		GroupWait:         snap.GroupWait,
		Blame:             snap.Blame,
		BlameEWMA:         snap.BlameEWMA,
		CriticalN:         snap.CriticalN,
		GroupCount:        snap.GroupCount,
		MaxContactAge:     snap.MaxContactAge,
		SyncComponents:    snap.SyncComponents,
		GroupsFormed:      snap.GroupsFormed,
		Interventions:     snap.Interventions,
		Deferrals:         snap.Deferrals,
		Epoch:             snap.Epoch,
		PolicyP:           snap.PolicyP,
		PolicyAlpha:       snap.PolicyAlpha,
		PolicyDeviations:  snap.PolicyDeviations,
		Comms:             snap.Comms,
	}
	return json.Marshal(mp)
}

// parts renders every non-manifest part in canonical order.
func (b *Bundle) parts() (names []string, blobs [][]byte, err error) {
	snap := b.Snap
	if snap == nil {
		snap = (*metrics.Instruments)(nil).Snapshot()
	}
	entries := make([]breachEntry, 0, len(b.Breaches))
	for _, br := range b.Breaches {
		entries = append(entries, breachEntry{
			Rule: br.Rule.String(), Value: br.Value, Threshold: br.Threshold, At: br.At, Seq: br.Seq,
		})
	}
	wd, err := json.Marshal(watchdogPart{Reason: b.Reason, At: b.At, Breaches: entries, State: b.State})
	if err != nil {
		return nil, nil, err
	}
	mp, err := renderMetrics(snap)
	if err != nil {
		return nil, nil, err
	}
	var tb bytes.Buffer
	if err := trace.WriteJSONL(&tb, b.Events); err != nil {
		return nil, nil, err
	}
	cfg := b.Config
	if len(cfg) == 0 {
		cfg = []byte("{}")
	}
	ctl := b.Controller
	if ctl == nil {
		ctl = []byte{}
	}
	return partOrder, [][]byte{wd, mp, renderScoreboard(snap), tb.Bytes(), cfg, ctl}, nil
}

// writeTar writes the canonical tar: manifest first, then parts in the
// manifest's order, every header zeroed to the epoch.
func writeTar(w io.Writer, man *Manifest, names []string, blobs [][]byte) error {
	manJSON, err := json.Marshal(man)
	if err != nil {
		return err
	}
	tw := tar.NewWriter(w)
	put := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0644,
			Size:    int64(len(data)),
			ModTime: time.Unix(0, 0),
			Format:  tar.FormatUSTAR,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := put(PartManifest, manJSON); err != nil {
		return err
	}
	for i, name := range names {
		if err := put(name, blobs[i]); err != nil {
			return err
		}
	}
	return tw.Close()
}

// WriteBundle serializes b as a canonical postmortem tar.
func WriteBundle(w io.Writer, b *Bundle) error {
	names, blobs, err := b.parts()
	if err != nil {
		return fmt.Errorf("health: render bundle: %w", err)
	}
	man := &Manifest{Version: BundleVersion, Reason: b.Reason, At: b.At}
	for _, br := range b.Breaches {
		man.Rules = append(man.Rules, br.Rule.String())
	}
	for i, name := range names {
		man.Parts = append(man.Parts, PartInfo{
			Name: name, Size: int64(len(blobs[i])), CRC32: crc32.ChecksumIEEE(blobs[i]),
		})
	}
	if err := writeTar(w, man, names, blobs); err != nil {
		return fmt.Errorf("health: write bundle: %w", err)
	}
	return nil
}

// ReadBundle parses a bundle tar: the manifest plus every part's raw
// bytes. It verifies structure only (manifest present and first);
// Validate performs the CRC and canonical-form checks.
func ReadBundle(r io.Reader) (*Manifest, map[string][]byte, error) {
	tr := tar.NewReader(r)
	parts := map[string][]byte{}
	var man *Manifest
	first := true
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("health: read bundle: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, nil, fmt.Errorf("health: read bundle part %s: %w", hdr.Name, err)
		}
		if first {
			if hdr.Name != PartManifest {
				return nil, nil, fmt.Errorf("health: bundle does not start with %s (got %s)", PartManifest, hdr.Name)
			}
			man = &Manifest{}
			if err := json.Unmarshal(data, man); err != nil {
				return nil, nil, fmt.Errorf("health: parse manifest: %w", err)
			}
			first = false
		}
		if _, dup := parts[hdr.Name]; dup {
			return nil, nil, fmt.Errorf("health: duplicate bundle part %s", hdr.Name)
		}
		parts[hdr.Name] = data
	}
	if man == nil {
		return nil, nil, fmt.Errorf("health: empty bundle")
	}
	return man, parts, nil
}

// Validate fully checks a bundle: schema version, the exact canonical
// part set, per-part size and CRC32 against the manifest, a parseable
// trace part, and — the round-trip check — that re-encoding the parsed
// parts through the canonical writer reproduces data byte for byte.
func Validate(data []byte) (*Manifest, error) {
	man, parts, err := ReadBundle(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if man.Version != BundleVersion {
		return nil, fmt.Errorf("health: bundle version %d, want %d", man.Version, BundleVersion)
	}
	if len(man.Parts) != len(partOrder) {
		return nil, fmt.Errorf("health: manifest lists %d parts, want %d", len(man.Parts), len(partOrder))
	}
	for i, want := range partOrder {
		pi := man.Parts[i]
		if pi.Name != want {
			return nil, fmt.Errorf("health: manifest part %d is %s, want %s", i, pi.Name, want)
		}
		blob, ok := parts[pi.Name]
		if !ok {
			return nil, fmt.Errorf("health: bundle missing part %s", pi.Name)
		}
		if int64(len(blob)) != pi.Size {
			return nil, fmt.Errorf("health: part %s is %d bytes, manifest says %d", pi.Name, len(blob), pi.Size)
		}
		if crc := crc32.ChecksumIEEE(blob); crc != pi.CRC32 {
			return nil, fmt.Errorf("health: part %s CRC32 %08x, manifest says %08x", pi.Name, crc, pi.CRC32)
		}
	}
	if len(parts) != len(partOrder)+1 {
		return nil, fmt.Errorf("health: bundle holds %d parts, want %d", len(parts), len(partOrder)+1)
	}
	blobs := make([][]byte, len(partOrder))
	for i, name := range partOrder {
		blobs[i] = parts[name]
	}
	var re bytes.Buffer
	if err := writeTar(&re, man, partOrder, blobs); err != nil {
		return nil, fmt.Errorf("health: re-encode bundle: %w", err)
	}
	if !bytes.Equal(re.Bytes(), data) {
		return nil, fmt.Errorf("health: bundle is not in canonical form (re-encode differs)")
	}
	return man, nil
}
