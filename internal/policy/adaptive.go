package policy

// adaptive-p: bound the time fast workers burn waiting at group barriers
// by shrinking P when the cluster's compute speeds spread apart, and
// grow P back toward the configured size when they re-converge.
//
// The decision signal is per-worker signal-cadence dispersion. Each
// accepted ready signal updates an EMA of that worker's inter-signal gap
// (its end-to-end iteration period: compute + barrier wait +
// collective). The dispersion is the ratio of the slowest worker's gap
// to the median gap across alive workers. Staleness itself is useless
// here — P-Reduce's fast-forwarding (§3.3.3) caps observed staleness at
// ~1 regardless of how skewed the cluster is — but cadence survives
// fast-forwarding untouched: a worker sharing its accelerator with one
// neighbor signals ~1.45× slower than the median, with three neighbors
// ~1.9× slower, while homogeneous jitter keeps the ratio under ~1.15.
//
// Every Window formed groups the policy re-decides with hysteresis:
// dispersion ≥ hi shrinks P one step (never below PMin), dispersion ≤ lo
// grows it one step (never above PMax); in between, P holds. Extreme
// dispersion (beyond adaptCap) instead walks P back toward the
// configured size — see adaptCap below. P starts at the configured
// size, so a homogeneous run never deviates from static behavior at
// all. All state is a handful of ints and two float vectors, snapshot
// exactly by codec.go.

// Hysteresis thresholds on cadence dispersion (max gap / median gap).
// Homogeneous jitter stays below adaptLo; one straggler sharing an
// accelerator pushes dispersion past adaptHi. The dead band between them
// stops P from oscillating on a borderline cluster. (A depth-scaled
// band — requiring more dispersion evidence for each further step below
// the configured P — was tried and measured slower across the HL sweep:
// once dispersion clears adaptHi the barrier saving from each extra
// shrink step keeps outweighing the mixing cost, so flat thresholds win.)
const (
	adaptHi = 1.3
	adaptLo = 1.2
)

// adaptCap bounds the regime where shrinking makes sense. Group sizing
// helps against *mild, persistent* stragglers — workers slow enough to
// hold up barriers but fast enough to keep participating. Once the
// slowest worker's cadence blows past adaptCap× the median (production
// regime switches hit 5–18×), FIFO formation already routes around it —
// groups fill from whoever is ready — so shrinking buys no barrier time
// and only slows mixing. Above the cap the policy walks P back toward
// the configured size instead. Shared-accelerator dispersion tops out
// near 1.9 (HL=3), comfortably under the cap.
const adaptCap = 2.5

// gapKeep is the EMA retention for the per-worker inter-signal gap:
// gap ← gapKeep·gap + (1−gapKeep)·sample. 0.8 forgets a regime switch
// in a handful of iterations without chasing single-batch jitter.
const gapKeep = 0.8

type adaptive struct {
	n      int
	pmin   int
	pmax   int
	window int
	start  int // configured P: the initial and Reset group size

	cur       int       // current group size, always in [pmin, pmax]
	lastAdapt int       // GroupsFormed at the last re-decision
	lastSeen  []float64 // per worker: time of last ready signal, -1 before any
	gap       []float64 // per worker: EMA inter-signal gap, 0 before two signals

	scratch []float64 // sort buffer for the dispersion quantiles
}

func newAdaptive(spec Spec, n, configP int) *adaptive {
	a := &adaptive{
		n:        n,
		pmin:     spec.PMin,
		pmax:     spec.PMax,
		window:   spec.Window,
		start:    configP,
		cur:      configP,
		lastSeen: make([]float64, n),
		gap:      make([]float64, n),
		scratch:  make([]float64, n),
	}
	for i := range a.lastSeen {
		a.lastSeen[i] = -1
	}
	return a
}

func (a *adaptive) Name() string { return NameAdaptiveP }

// OnSignal folds one ready signal into the worker's cadence estimate.
// Clock-less callers (all signals at now=0) never produce a positive
// gap, so the estimates stay empty and the policy holds the configured P.
func (a *adaptive) OnSignal(worker, _ int, now float64) {
	if worker < 0 || worker >= a.n {
		return
	}
	if last := a.lastSeen[worker]; last >= 0 && now > last {
		g := now - last
		if a.gap[worker] == 0 {
			a.gap[worker] = g
		} else {
			a.gap[worker] = gapKeep*a.gap[worker] + (1-gapKeep)*g
		}
	}
	a.lastSeen[worker] = now
}

func (a *adaptive) Decide(in Inputs) Decision {
	if in.GroupsFormed-a.lastAdapt >= a.window {
		a.lastAdapt = in.GroupsFormed
		a.adapt(in.AliveMask)
	}
	p := a.cur
	if in.Alive < p {
		p = in.Alive
	}
	return Decision{P: p}
}

// adapt takes one hysteresis step on the cadence dispersion of the alive
// workers. Fewer than two warm estimates (cold start, clock-less caller)
// means no evidence: hold.
func (a *adaptive) adapt(alive []bool) {
	k := 0
	for w := 0; w < a.n; w++ {
		if a.gap[w] > 0 && (alive == nil || alive[w]) {
			a.scratch[k] = a.gap[w]
			k++
		}
	}
	if k < 2 {
		return
	}
	s := a.scratch[:k]
	for i := 1; i < k; i++ { // insertion sort: tiny k, zero allocations
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	median := s[k/2]
	if median <= 0 {
		return
	}
	switch dispersion := s[k-1] / median; {
	case dispersion > adaptCap:
		if a.cur < a.start { // extreme tail: recover, never shrink
			a.cur++
		}
	case dispersion >= adaptHi && a.cur > a.pmin:
		a.cur--
	case dispersion <= adaptLo && a.cur < a.pmax:
		a.cur++
	}
}

func (a *adaptive) Snapshot() []byte {
	return EncodeState(State{
		Kind:      NameAdaptiveP,
		Cur:       a.cur,
		LastAdapt: a.lastAdapt,
		LastSeen:  a.lastSeen,
		Gap:       a.gap,
	})
}

func (a *adaptive) Restore(blob []byte) error {
	st, err := DecodeState(blob)
	if err != nil {
		return err
	}
	if err := st.validateFor(NameAdaptiveP, a.n); err != nil {
		return err
	}
	if st.Cur < a.pmin || st.Cur > a.pmax {
		st.Cur = min(max(st.Cur, a.pmin), a.pmax)
	}
	a.cur = st.Cur
	a.lastAdapt = st.LastAdapt
	copy(a.lastSeen, st.LastSeen)
	copy(a.gap, st.Gap)
	return nil
}

func (a *adaptive) Reset() {
	a.cur = a.start
	a.lastAdapt = 0
	for i := range a.lastSeen {
		a.lastSeen[i] = -1
		a.gap[i] = 0
	}
}
