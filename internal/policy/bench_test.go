package policy

import (
	"os"
	"testing"
)

// benchInputs builds a warm 16-worker decision context: every worker has
// a cadence estimate and the queue holds one signal per worker — the
// worst case the decision path sees per formation event.
func benchInputs(pol Policy, n int) Inputs {
	now := 0.0
	for r := 1; r <= 8; r++ {
		for w := 0; w < n; w++ {
			now += 0.01
			pol.OnSignal(w, r, now+float64(w)*0.1)
		}
	}
	alive := make([]bool, n)
	queue := make([]QueuedSignal, n)
	for w := 0; w < n; w++ {
		alive[w] = true
		queue[w] = QueuedSignal{Worker: w, Iter: 8, Staleness: w % 3, Wait: float64(w) * 0.01}
	}
	return Inputs{
		Now: now, ConfigP: 4, ConfigAlpha: 0.5,
		Alive: n, AliveMask: alive, Queue: queue,
	}
}

// BenchmarkPolicyDecide measures the steady-state decision path for each
// shipped policy at N=16. make bench runs it with -benchmem; the gate
// below bounds it at 1µs and zero allocations per decision.
func BenchmarkPolicyDecide(b *testing.B) {
	for _, name := range []string{NameStatic, NameAdaptiveP, NameStragglerBias} {
		b.Run(name, func(b *testing.B) {
			pol, err := New(Spec{Name: name, PMin: 2, PMax: 8, Window: 4}, 16, 4)
			if err != nil {
				b.Fatal(err)
			}
			in := benchInputs(pol, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.GroupsFormed = i
				pol.Decide(in)
			}
		})
	}
}

// TestPolicyDecideGate bounds the decision path at 1µs and 0 allocs per
// op in steady state. Timing-sensitive, so it only runs when
// PREDUCE_POLICYGATE=1 (make bench sets it); best-of-three damps
// scheduler noise, as in the collective trace-overhead gate.
func TestPolicyDecideGate(t *testing.T) {
	if os.Getenv("PREDUCE_POLICYGATE") == "" {
		t.Skip("set PREDUCE_POLICYGATE=1 (make bench) to run the policy decision-path gate")
	}
	for _, name := range []string{NameStatic, NameAdaptiveP, NameStragglerBias} {
		pol, err := New(Spec{Name: name, PMin: 2, PMax: 8, Window: 4}, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		in := benchInputs(pol, 16)
		var bestNs float64
		var allocs int64
		for trial := 0; trial < 3; trial++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					in.GroupsFormed = i
					pol.Decide(in)
				}
			})
			ns := float64(r.NsPerOp())
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
				allocs = r.AllocsPerOp()
			}
		}
		t.Logf("%s: %.0f ns/op, %d allocs/op", name, bestNs, allocs)
		if bestNs > 1000 {
			t.Errorf("%s: decision path %.0f ns/op exceeds the 1µs budget", name, bestNs)
		}
		if allocs != 0 {
			t.Errorf("%s: decision path allocates (%d allocs/op), want 0", name, allocs)
		}
	}
}
