// Package policy is the controller's pluggable group-formation policy
// engine: per formation event it picks the next group's size P, an
// optional membership bias (which queued signals to pull forward), and an
// optional dynamic-weight decay override, all from controller
// introspection data (queue contents with per-signal staleness and wait,
// liveness, formation count, clock). Policies are deterministic pure
// state machines — the same signal sequence always yields the same
// decision sequence — so simulated runs stay byte-reproducible and a
// policy's state can ride the controller's snapshot through warm
// failover (Snapshot/Restore round-trips are exact; see codec.go).
//
// The package deliberately does not import internal/controller (the
// controller imports it); the Inputs struct carries everything a policy
// may read, and the controller clamps whatever comes back, so a buggy
// policy can degrade scheduling but never violate the grouping
// invariants (2 ≤ P ≤ alive workers, one signal per worker, FIFO
// service among un-biased signals).
//
// Three policies ship:
//
//   - static: today's behavior — P = min(configured P, alive workers),
//     FIFO membership, configured decay. Attached to a controller it is
//     bit-identical to running with no policy at all; it exists so the
//     policy plumbing itself is covered by the metamorphic tests.
//   - adaptive-p: shrinks or grows P between configured bounds from the
//     per-worker signal-cadence dispersion (see adaptive.go). Under
//     heterogeneity, smaller groups stop fast workers from waiting on
//     shared-accelerator stragglers; under homogeneity the configured P
//     amortizes communication best.
//   - straggler-bias: keeps P static but stably reorders the queue so the
//     highest-staleness workers enter groups first, generalizing
//     group-frozen avoidance's "pull the estranged worker in" move.
//
// Decision paths are allocation-free and run in well under a microsecond
// (make bench gates this), so consulting a policy per formation event is
// invisible next to a single model average.
package policy

import "fmt"

// Shipped policy names, as accepted by Spec.Name and the -policy flags.
const (
	NameStatic        = "static"
	NameAdaptiveP     = "adaptive-p"
	NameStragglerBias = "straggler-bias"
)

// Spec selects and parameterizes a policy. The zero value means "no
// policy" (the controller runs its built-in static behavior with zero
// overhead).
type Spec struct {
	// Name is one of NameStatic, NameAdaptiveP, NameStragglerBias.
	Name string
	// PMin and PMax bound adaptive-p's group size. Zero values resolve to
	// 2 and the configured P respectively. Other policies ignore them.
	PMin, PMax int
	// Window is the number of formed groups between adaptive-p
	// re-decisions; zero resolves to DefaultWindow.
	Window int
}

// DefaultWindow is adaptive-p's re-decision interval in formed groups:
// long enough for every worker's cadence estimate to absorb a few
// samples, short enough to track a regime switch within tens of groups.
const DefaultWindow = 8

// Enabled reports whether the spec names a policy.
func (s Spec) Enabled() bool { return s.Name != "" }

// Resolve fills the spec's defaults for a run with configured group size
// configP: PMin 2, PMax configP, Window DefaultWindow. Resolve is
// idempotent.
func (s Spec) Resolve(configP int) Spec {
	if s.PMin == 0 {
		s.PMin = 2
	}
	if s.PMax == 0 {
		s.PMax = configP
	}
	if s.Window == 0 {
		s.Window = DefaultWindow
	}
	return s
}

// Validate reports whether the resolved spec is usable for an n-worker
// run with configured group size configP.
func (s Spec) Validate(n, configP int) error {
	switch s.Name {
	case NameStatic, NameStragglerBias:
		return nil
	case NameAdaptiveP:
		r := s.Resolve(configP)
		switch {
		case r.PMin < 2:
			return fmt.Errorf("policy: p-min %d below 2", r.PMin)
		case r.PMax > n:
			return fmt.Errorf("policy: p-max %d above worker count %d", r.PMax, n)
		case r.PMin > r.PMax:
			return fmt.Errorf("policy: p-min %d above p-max %d", r.PMin, r.PMax)
		case configP < r.PMin || configP > r.PMax:
			return fmt.Errorf("policy: configured P=%d outside bounds [%d,%d]", configP, r.PMin, r.PMax)
		case r.Window < 1:
			return fmt.Errorf("policy: window %d below 1", r.Window)
		}
		return nil
	}
	return fmt.Errorf("policy: unknown policy %q", s.Name)
}

// QueuedSignal is the policy's view of one waiting ready signal.
type QueuedSignal struct {
	Worker    int
	Iter      int
	Staleness int     // cluster max iteration minus Iter
	Wait      float64 // seconds the signal has been queued (0 if clocks are unused)
}

// Inputs is the controller introspection snapshot a policy decides from.
// The slices are the controller's own scratch storage, valid only for
// the duration of the Decide call: policies must not retain or mutate
// them.
type Inputs struct {
	// Now is the controller's latest clock reading (virtual seconds in
	// the simulator, wall seconds live; 0 if the caller sends no clocks).
	Now float64
	// ConfigP and ConfigAlpha are the controller's configured group size
	// and dynamic-weight decay (defaults resolved).
	ConfigP     int
	ConfigAlpha float64
	// Alive is the number of workers currently believed up; AliveMask the
	// per-worker liveness vector (read-only).
	Alive     int
	AliveMask []bool
	// GroupsFormed counts groups formed so far.
	GroupsFormed int
	// Queue lists the waiting ready signals in FIFO order (read-only).
	Queue []QueuedSignal
}

// Decision is a policy's answer for the next formation event.
type Decision struct {
	// P is the group size to use. The controller clamps it to the alive
	// worker count; a value below 2 defers formation until more signals
	// or more workers arrive.
	P int
	// Alpha overrides the dynamic-weight decay for this group when in
	// (0,1); 0 keeps the configured decay.
	Alpha float64
	// Bias, when non-nil, is a permutation of the queue indices giving
	// the preferred service order; the controller reorders the queue to
	// match before popping the first P. Nil keeps FIFO order. The slice
	// is the policy's scratch storage, valid until its next Decide.
	Bias []int
}

// Policy is a deterministic group-formation state machine. Decide is
// consulted once per formation attempt; OnSignal observes every accepted
// ready signal (the cadence feed); Snapshot/Restore serialize the exact
// internal state for controller failover; Reset returns to the
// just-constructed state (cold failover, where no snapshot survived).
// Implementations are not safe for concurrent use — the controller
// serializes access, like its own methods.
type Policy interface {
	Name() string
	OnSignal(worker, iter int, now float64)
	Decide(in Inputs) Decision
	Snapshot() []byte
	Restore(blob []byte) error
	Reset()
}

// New constructs the policy named by spec for an n-worker run with
// configured group size configP, resolving spec defaults first.
func New(spec Spec, n, configP int) (Policy, error) {
	if err := spec.Validate(n, configP); err != nil {
		return nil, err
	}
	spec = spec.Resolve(configP)
	switch spec.Name {
	case NameStatic:
		return &static{}, nil
	case NameAdaptiveP:
		return newAdaptive(spec, n, configP), nil
	case NameStragglerBias:
		return newStragglerBias(n), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q", spec.Name)
}

// static reproduces the controller's built-in behavior exactly:
// P = min(configured P, alive workers), FIFO membership, configured
// decay. Its decisions never deviate from the default, so a run with the
// static policy attached is bit-identical to a run with no policy.
type static struct{}

func (*static) Name() string                { return NameStatic }
func (*static) OnSignal(_, _ int, _ float64) {}

func (*static) Decide(in Inputs) Decision {
	p := in.ConfigP
	if in.Alive < p {
		p = in.Alive
	}
	return Decision{P: p}
}

func (*static) Snapshot() []byte { return EncodeState(State{Kind: NameStatic}) }

func (*static) Restore(blob []byte) error {
	st, err := DecodeState(blob)
	if err != nil {
		return err
	}
	if st.Kind != NameStatic {
		return fmt.Errorf("policy: static: state blob is for %q", st.Kind)
	}
	return nil
}

func (*static) Reset() {}

// stragglerBias keeps the static group size but stably reorders the
// queue by staleness, highest first, so chronically late workers are
// pulled into groups as soon as they signal instead of waiting out the
// FIFO — the same instinct as group-frozen avoidance's bridging swap,
// applied continuously. Ties keep FIFO order, so a homogeneous run
// (all staleness equal) never deviates from the default.
type stragglerBias struct {
	bias []int // reused Decision.Bias storage
}

func newStragglerBias(n int) *stragglerBias {
	return &stragglerBias{bias: make([]int, 0, n)}
}

func (*stragglerBias) Name() string                { return NameStragglerBias }
func (*stragglerBias) OnSignal(_, _ int, _ float64) {}

func (s *stragglerBias) Decide(in Inputs) Decision {
	p := in.ConfigP
	if in.Alive < p {
		p = in.Alive
	}
	b := s.bias[:0]
	for i := range in.Queue {
		b = append(b, i)
	}
	// Stable insertion sort, staleness descending: strict > keeps equal
	// entries in FIFO order. Queues hold at most one signal per worker,
	// so this is O(N²) on tiny N — and allocation-free.
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && in.Queue[b[j]].Staleness > in.Queue[b[j-1]].Staleness; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
	s.bias = b
	return Decision{P: p, Bias: b}
}

func (s *stragglerBias) Snapshot() []byte { return EncodeState(State{Kind: NameStragglerBias}) }

func (s *stragglerBias) Restore(blob []byte) error {
	st, err := DecodeState(blob)
	if err != nil {
		return err
	}
	if st.Kind != NameStragglerBias {
		return fmt.Errorf("policy: straggler-bias: state blob is for %q", st.Kind)
	}
	return nil
}

func (s *stragglerBias) Reset() {}
