package policy

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSpecResolveValidate(t *testing.T) {
	s := Spec{Name: NameAdaptiveP}
	r := s.Resolve(4)
	if r.PMin != 2 || r.PMax != 4 || r.Window != DefaultWindow {
		t.Fatalf("Resolve defaults: %+v", r)
	}
	if again := r.Resolve(4); again != r {
		t.Fatalf("Resolve not idempotent: %+v vs %+v", again, r)
	}
	if err := s.Validate(8, 4); err != nil {
		t.Fatalf("valid adaptive spec rejected: %v", err)
	}
	for _, bad := range []struct {
		spec    Spec
		n, p    int
		wantErr string
	}{
		{Spec{Name: "nope"}, 8, 4, "unknown"},
		{Spec{Name: NameAdaptiveP, PMin: 1}, 8, 4, "p-min"},
		{Spec{Name: NameAdaptiveP, PMax: 9}, 8, 4, "p-max"},
		{Spec{Name: NameAdaptiveP, PMin: 5, PMax: 6}, 8, 4, "outside bounds"},
		{Spec{Name: NameAdaptiveP, PMin: 4, PMax: 3}, 8, 4, "above p-max"},
		{Spec{Name: NameAdaptiveP, Window: -1}, 8, 4, "window"},
	} {
		if err := bad.spec.Validate(bad.n, bad.p); err == nil {
			t.Errorf("Validate(%+v, n=%d, p=%d) accepted, want %s error", bad.spec, bad.n, bad.p, bad.wantErr)
		}
	}
	// static and straggler-bias ignore the bounds entirely.
	if err := (Spec{Name: NameStatic, PMin: 99}).Validate(4, 2); err != nil {
		t.Fatalf("static spec rejected: %v", err)
	}
	if !(Spec{Name: NameStatic}).Enabled() || (Spec{}).Enabled() {
		t.Fatal("Enabled misreports")
	}
}

func TestStaticDecideMatchesDefault(t *testing.T) {
	p, err := New(Spec{Name: NameStatic}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for alive := 1; alive <= 8; alive++ {
		d := p.Decide(Inputs{ConfigP: 4, Alive: alive})
		want := 4
		if alive < want {
			want = alive
		}
		if d.P != want || d.Alpha != 0 || d.Bias != nil {
			t.Fatalf("static Decide(alive=%d) = %+v, want P=%d FIFO", alive, d, want)
		}
	}
}

// TestDecideBoundsProperty: across random signal streams and liveness,
// every policy's chosen P stays within [PMin, PMax] and never exceeds the
// alive worker count (the satellite-1 bound property).
func TestDecideBoundsProperty(t *testing.T) {
	const n, configP, pmin, pmax = 8, 4, 2, 6
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, name := range []string{NameStatic, NameAdaptiveP, NameStragglerBias} {
			pol, err := New(Spec{Name: name, PMin: pmin, PMax: pmax, Window: 3}, n, configP)
			if err != nil {
				t.Fatal(err)
			}
			now := 0.0
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = true
			}
			aliveN := n
			formed := 0
			for step := 0; step < 300; step++ {
				w := rng.Intn(n)
				now += rng.Float64() * 3
				pol.OnSignal(w, step, now)
				if rng.Intn(10) == 0 && aliveN > 2 {
					k := rng.Intn(n)
					if alive[k] {
						alive[k] = false
						aliveN--
					}
				}
				qn := rng.Intn(aliveN + 1)
				queue := make([]QueuedSignal, qn)
				for i := range queue {
					queue[i] = QueuedSignal{Worker: i, Iter: step, Staleness: rng.Intn(3)}
				}
				d := pol.Decide(Inputs{
					Now: now, ConfigP: configP, ConfigAlpha: 0.5,
					Alive: aliveN, AliveMask: alive,
					GroupsFormed: formed, Queue: queue,
				})
				if d.P > pmax {
					t.Fatalf("%s: P=%d above PMax=%d", name, d.P, pmax)
				}
				if d.P > aliveN {
					t.Fatalf("%s: P=%d above alive=%d", name, d.P, aliveN)
				}
				if d.P < pmin && d.P != aliveN && name == NameAdaptiveP {
					t.Fatalf("%s: P=%d below PMin=%d with %d alive", name, d.P, pmin, aliveN)
				}
				if rng.Intn(2) == 0 {
					formed++
				}
			}
		}
	}
}

func TestStragglerBiasOrdering(t *testing.T) {
	pol, err := New(Spec{Name: NameStragglerBias}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	queue := []QueuedSignal{
		{Worker: 0, Staleness: 0},
		{Worker: 1, Staleness: 2},
		{Worker: 2, Staleness: 1},
		{Worker: 3, Staleness: 2},
	}
	d := pol.Decide(Inputs{ConfigP: 3, Alive: 6, Queue: queue})
	// Staleness descending, FIFO among ties: worker 1 (s=2), worker 3
	// (s=2, later), worker 2 (s=1), worker 0 (s=0).
	want := []int{1, 3, 2, 0}
	if !reflect.DeepEqual(d.Bias, want) {
		t.Fatalf("bias = %v, want %v", d.Bias, want)
	}

	// All-equal staleness: the bias must be the identity (no deviation
	// from FIFO, keeping homogeneous runs bit-identical).
	for i := range queue {
		queue[i].Staleness = 1
	}
	d = pol.Decide(Inputs{ConfigP: 3, Alive: 6, Queue: queue})
	if !reflect.DeepEqual(d.Bias, []int{0, 1, 2, 3}) {
		t.Fatalf("tie bias = %v, want identity", d.Bias)
	}
}

// feedCadence drives one signal round per worker with per-worker periods,
// then reports the policy's decision after enough formations to trigger a
// re-decision.
func feedCadence(t *testing.T, pol Policy, n, rounds int, period func(w int) float64) {
	t.Helper()
	now := 0.0
	for r := 1; r <= rounds; r++ {
		for w := 0; w < n; w++ {
			pol.OnSignal(w, r, now+float64(r)*period(w))
		}
	}
}

func TestAdaptiveShrinksAndGrows(t *testing.T) {
	const n, configP = 8, 4
	pol, err := New(Spec{Name: NameAdaptiveP, PMin: 2, PMax: 4, Window: 2}, n, configP)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	decide := func(formed int) int {
		d := pol.Decide(Inputs{ConfigP: configP, Alive: n, AliveMask: alive, GroupsFormed: formed})
		return d.P
	}

	// Dispersed cadence: worker 7 runs 2x slower than the rest.
	feedCadence(t, pol, n, 10, func(w int) float64 {
		if w == 7 {
			return 2.0
		}
		return 1.0
	})
	if got := decide(2); got != 3 {
		t.Fatalf("after dispersed cadence: P=%d, want one shrink step to 3", got)
	}
	if got := decide(4); got != 2 {
		t.Fatalf("second window: P=%d, want 2", got)
	}
	if got := decide(6); got != 2 {
		t.Fatalf("PMin floor: P=%d, want 2", got)
	}

	// Regime switch to uniform cadence: the EMA converges and P grows back.
	a := pol.(*adaptive)
	for i := range a.gap {
		a.gap[i] = 1.0 // uniform: dispersion 1.0 <= adaptLo
	}
	if got := decide(8); got != 3 {
		t.Fatalf("after re-convergence: P=%d, want grow to 3", got)
	}
	if got := decide(10); got != 4 {
		t.Fatalf("PMax ceiling approach: P=%d, want 4", got)
	}
	if got := decide(12); got != 4 {
		t.Fatalf("PMax ceiling: P=%d, want 4", got)
	}
}

// TestAdaptiveTailGuard pins the adaptCap behavior: once the slowest
// worker's cadence blows past the cap (heavy-tail regime, e.g. a 5×
// production straggler), shrinking is counterproductive — FIFO formation
// already routes around the straggler — so the policy walks P back
// toward the configured size instead of riding the floor.
func TestAdaptiveTailGuard(t *testing.T) {
	const n, configP = 8, 4
	pol, err := New(Spec{Name: NameAdaptiveP, PMin: 2, PMax: 4, Window: 2}, n, configP)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	decide := func(formed int) int {
		return pol.Decide(Inputs{ConfigP: configP, Alive: n, AliveMask: alive, GroupsFormed: formed}).P
	}

	// Start from a shrunken state (mild skew already reacted to), then
	// switch worker 7 to an extreme 5× tail: P must recover, not shrink.
	a := pol.(*adaptive)
	a.cur = 2
	for i := range a.gap {
		a.gap[i] = 1.0
	}
	a.gap[7] = 5.0
	if got := decide(2); got != 3 {
		t.Fatalf("extreme tail: P=%d, want recovery step to 3", got)
	}
	if got := decide(4); got != 4 {
		t.Fatalf("extreme tail second window: P=%d, want 4", got)
	}
	// At the configured size the guard holds rather than shrinking again.
	if got := decide(6); got != 4 {
		t.Fatalf("extreme tail at configured P: P=%d, want hold at 4", got)
	}
}

func TestAdaptiveHoldsWithoutEvidence(t *testing.T) {
	pol, err := New(Spec{Name: NameAdaptiveP, Window: 1}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Clock-less caller: every signal at now=0 → no positive gaps → hold.
	for r := 0; r < 20; r++ {
		for w := 0; w < 4; w++ {
			pol.OnSignal(w, r, 0)
		}
		if d := pol.Decide(Inputs{ConfigP: 3, Alive: 4, GroupsFormed: r}); d.P != 3 {
			t.Fatalf("clock-less round %d: P=%d, want configured 3", r, d.P)
		}
	}
}

// TestStateRoundTripQuick pins Restore(Snapshot(s)) = s at the codec
// level: decode ∘ encode is the identity on arbitrary states.
func TestStateRoundTripQuick(t *testing.T) {
	f := func(kind string, cur, lastAdapt int16, lastSeen, gap []float64) bool {
		st := State{
			Kind: kind, Cur: int(cur), LastAdapt: int(lastAdapt),
			LastSeen: lastSeen, Gap: gap,
		}
		blob := EncodeState(st)
		got, err := DecodeState(blob)
		if err != nil {
			return false
		}
		if len(got.LastSeen) == 0 {
			got.LastSeen = nil // canonical nil for empty
		}
		if len(got.Gap) == 0 {
			got.Gap = nil
		}
		if len(st.LastSeen) == 0 {
			st.LastSeen = nil
		}
		if len(st.Gap) == 0 {
			st.Gap = nil
		}
		return reflect.DeepEqual(st, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveSnapshotRestoreExact drives an adaptive policy through a
// random history, snapshots it, restores into a fresh instance, and pins
// both the internal state and the future decision stream as identical.
func TestAdaptiveSnapshotRestoreExact(t *testing.T) {
	const n, configP = 6, 4
	spec := Spec{Name: NameAdaptiveP, PMin: 2, PMax: 4, Window: 3}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		orig, err := New(spec, n, configP)
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		for step := 0; step < 200; step++ {
			w := rng.Intn(n)
			now += rng.Float64()
			orig.OnSignal(w, step, now)
			if step%4 == 0 {
				orig.Decide(Inputs{ConfigP: configP, Alive: n, GroupsFormed: step / 4})
			}
		}

		restored, err := New(spec, n, configP)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Restore(orig.Snapshot()); err != nil {
			t.Fatal(err)
		}
		a, b := orig.(*adaptive), restored.(*adaptive)
		if a.cur != b.cur || a.lastAdapt != b.lastAdapt ||
			!reflect.DeepEqual(a.lastSeen, b.lastSeen) || !reflect.DeepEqual(a.gap, b.gap) {
			t.Fatalf("seed %d: restored state differs:\n  %+v\n  %+v", seed, a, b)
		}

		// Identical continuations on both instances.
		for step := 0; step < 50; step++ {
			w := rng.Intn(n)
			now += rng.Float64()
			orig.OnSignal(w, step, now)
			restored.OnSignal(w, step, now)
			in := Inputs{ConfigP: configP, Alive: n, GroupsFormed: 50 + step}
			if da, db := orig.Decide(in), restored.Decide(in); !reflect.DeepEqual(da, db) {
				t.Fatalf("seed %d step %d: decisions diverged: %+v vs %+v", seed, step, da, db)
			}
		}

		// Snapshot of the restored twin is byte-identical to re-snapshot
		// of the original (codec canonicality at the policy level).
		sa, sb := orig.Snapshot(), restored.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("seed %d: post-continuation snapshots differ", seed)
		}
	}
}

func TestRestoreRejectsWrongKind(t *testing.T) {
	adp, _ := New(Spec{Name: NameAdaptiveP}, 4, 3)
	st, _ := New(Spec{Name: NameStatic}, 4, 3)
	if err := adp.Restore(st.Snapshot()); err == nil {
		t.Fatal("adaptive accepted a static blob")
	}
	if err := st.Restore(adp.Snapshot()); err == nil {
		t.Fatal("static accepted an adaptive blob")
	}
	if err := adp.Restore([]byte("garbage")); err == nil {
		t.Fatal("adaptive accepted garbage")
	}
	// Wrong worker count: the cadence vectors no longer fit.
	other, _ := New(Spec{Name: NameAdaptiveP}, 6, 3)
	other.OnSignal(0, 1, 1)
	if err := adp.Restore(other.Snapshot()); err == nil {
		t.Fatal("adaptive accepted a 6-worker blob on a 4-worker run")
	}
}

func TestResetReturnsToStart(t *testing.T) {
	pol, _ := New(Spec{Name: NameAdaptiveP, PMin: 2, PMax: 4, Window: 1}, 8, 4)
	feedCadence(t, pol, 8, 10, func(w int) float64 {
		if w == 0 {
			return 2.0
		}
		return 1.0
	})
	pol.Decide(Inputs{ConfigP: 4, Alive: 8, GroupsFormed: 5})
	a := pol.(*adaptive)
	if a.cur == 4 {
		t.Fatal("setup failed: policy never adapted")
	}
	pol.Reset()
	if a.cur != 4 || a.lastAdapt != 0 {
		t.Fatalf("Reset left cur=%d lastAdapt=%d", a.cur, a.lastAdapt)
	}
	for w := range a.lastSeen {
		if a.lastSeen[w] != -1 || a.gap[w] != 0 {
			t.Fatalf("Reset left cadence state for worker %d", w)
		}
	}
}
