package policy

// Policy-state codec: the serialized form a policy's state takes inside
// the controller snapshot. Same design rules as the controller snapshot
// itself (internal/controller/snapshot.go): versioned, deterministic
// little-endian layout with no map iteration, CRC-64/ECMA integrity
// trailer, canonical (decode ∘ encode is the identity on valid blobs —
// FuzzPolicyStateCodec pins this). State is a policy-neutral bag: every
// shipped policy round-trips through it, and a restored controller can
// hold the blob until a Policy is attached without knowing its shape.

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
)

// stateMagic identifies a policy-state blob ("PRPS").
const stateMagic uint32 = 0x50525053

// stateVersion is the current encoding version.
const stateVersion uint32 = 1

// maxStateLen bounds decoded lengths against corrupt headers.
const maxStateLen = 1 << 20

var stateTable = crc64.MakeTable(crc64.ECMA)

// State is the policy-neutral serialized state. Static and
// straggler-bias are stateless (Kind only); adaptive-p carries its
// group-size controller and per-worker cadence estimates.
type State struct {
	Kind      string
	Cur       int
	LastAdapt int
	LastSeen  []float64
	Gap       []float64
}

// validateFor checks a decoded state against the owning policy's
// identity and worker count. Empty vectors are accepted as "no cadence
// data" (a fresh policy's snapshot).
func (st State) validateFor(kind string, n int) error {
	if st.Kind != kind {
		return fmt.Errorf("policy: state blob is for %q, want %q", st.Kind, kind)
	}
	if len(st.LastSeen) != 0 && len(st.LastSeen) != n {
		return fmt.Errorf("policy: state has %d cadence slots, want %d", len(st.LastSeen), n)
	}
	if len(st.Gap) != len(st.LastSeen) {
		return fmt.Errorf("policy: state gap/lastSeen length mismatch (%d vs %d)", len(st.Gap), len(st.LastSeen))
	}
	return nil
}

// EncodeState serializes st. Equal states produce byte-identical blobs.
func EncodeState(st State) []byte {
	buf := make([]byte, 0, 64+16*len(st.LastSeen))
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	i64 := func(v int) { u64(uint64(int64(v))) }
	f64s := func(v []float64) {
		i64(len(v))
		for _, x := range v {
			u64(math.Float64bits(x))
		}
	}
	u32(stateMagic)
	u32(stateVersion)
	i64(len(st.Kind))
	buf = append(buf, st.Kind...)
	i64(st.Cur)
	i64(st.LastAdapt)
	f64s(st.LastSeen)
	f64s(st.Gap)
	u64(crc64.Checksum(buf, stateTable))
	return buf
}

// DecodeState parses a blob produced by EncodeState, verifying the CRC,
// magic, version, and length sanity. It never panics on corrupt input.
func DecodeState(blob []byte) (State, error) {
	var st State
	if len(blob) < 16 {
		return st, fmt.Errorf("policy: state blob too short (%d bytes)", len(blob))
	}
	body, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	if crc64.Checksum(body, stateTable) != sum {
		return st, fmt.Errorf("policy: state blob checksum mismatch")
	}
	off := 0
	var derr error
	fail := func(format string, args ...any) {
		if derr == nil {
			derr = fmt.Errorf("policy: state blob: "+format, args...)
		}
	}
	u32 := func() uint32 {
		if derr != nil {
			return 0
		}
		if off+4 > len(body) {
			fail("truncated")
			return 0
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		if derr != nil {
			return 0
		}
		if off+8 > len(body) {
			fail("truncated")
			return 0
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	count := func() int {
		n := int(int64(u64()))
		if derr != nil {
			return 0
		}
		if n < 0 || n > maxStateLen {
			fail("implausible length %d", n)
			return 0
		}
		return n
	}
	f64s := func() []float64 {
		n := count()
		if derr != nil || n == 0 {
			return nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(u64())
		}
		return out
	}

	if m := u32(); derr == nil && m != stateMagic {
		return st, fmt.Errorf("policy: bad state blob magic %#x", m)
	}
	if v := u32(); derr == nil && v != stateVersion {
		return st, fmt.Errorf("policy: unsupported state blob version %d", v)
	}
	kn := count()
	if derr == nil && off+kn > len(body) {
		fail("truncated")
	}
	if derr == nil {
		st.Kind = string(body[off : off+kn])
		off += kn
	}
	st.Cur = int(int64(u64()))
	st.LastAdapt = int(int64(u64()))
	st.LastSeen = f64s()
	st.Gap = f64s()
	if derr != nil {
		return State{}, derr
	}
	if off != len(body) {
		return State{}, fmt.Errorf("policy: state blob has %d trailing bytes", len(body)-off)
	}
	return st, nil
}
