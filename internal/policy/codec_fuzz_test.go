package policy

import (
	"bytes"
	"testing"
)

// FuzzPolicyStateCodec mirrors the transport's FuzzFrameCodec for the
// policy-state snapshot blob: DecodeState must never panic on arbitrary
// input, and every blob it accepts must be canonical — re-encoding the
// decoded state reproduces the input byte for byte (so a policy state
// riding a controller snapshot through Snapshot→Restore→Snapshot cannot
// drift).
func FuzzPolicyStateCodec(f *testing.F) {
	f.Add(EncodeState(State{Kind: NameStatic}))
	f.Add(EncodeState(State{Kind: NameStragglerBias}))
	f.Add(EncodeState(State{
		Kind: NameAdaptiveP, Cur: 3, LastAdapt: 17,
		LastSeen: []float64{-1, 0.5, 2.25}, Gap: []float64{0, 1.5, 0.75},
	}))
	adp, _ := New(Spec{Name: NameAdaptiveP, PMin: 2, PMax: 4}, 4, 3)
	adp.OnSignal(0, 1, 1.0)
	adp.OnSignal(0, 2, 2.5)
	f.Add(adp.Snapshot())
	f.Add([]byte{})
	f.Add([]byte("PRPS"))

	f.Fuzz(func(t *testing.T, blob []byte) {
		st, err := DecodeState(blob) // must not panic
		if err != nil {
			return
		}
		again := EncodeState(st)
		if !bytes.Equal(again, blob) {
			t.Fatalf("codec not canonical: %d-byte blob re-encodes to %d bytes", len(blob), len(again))
		}
	})
}
