// Package cluster is the shared substrate every training strategy runs on:
// N simulated workers, each holding a real model replica, an SGD optimizer
// with worker-local momentum, and a sampler over its data shard, all driven
// by one discrete-event engine. Strategies (P-Reduce and the baselines)
// schedule compute and communication events against this substrate; gradient
// math is executed for real, while durations come from the heterogeneity and
// network cost models. This is the simulator DESIGN.md documents as the
// substitute for the paper's GPU cluster.
package cluster

import (
	"fmt"

	"partialreduce/internal/data"
	"partialreduce/internal/health"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
	"partialreduce/internal/sim"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
)

// Config describes one training run.
type Config struct {
	N int // worker capacity (rank space)
	// Initial is the founding membership size: ranks [Initial, N) start
	// parked and only enter training when an Elastic join admits them. Zero
	// selects N (every rank is a founder — the non-elastic default).
	Initial   int
	Spec      model.Builder // proxy model architecture (model.Spec or model.ConvSpec)
	Seed      int64         // master seed (model init, samplers, strategy RNG)
	Train     *data.Dataset
	Test      *data.Dataset
	BatchSize int
	Optimizer optim.Config
	Profile   model.Profile   // wire size + reference compute time
	Hetero    hetero.Model    // per-worker compute durations
	Net       netmodel.Params // communication costs
	// Topology optionally adds per-worker link speeds and geo-distributed
	// zones (the paper's communication heterogeneity, Case 1); nil means a
	// flat fabric.
	Topology *netmodel.Topology
	// Crashes is a deterministic fail-stop schedule (§4). It takes effect
	// only for strategies that call ScheduleCrashes (P-Reduce excludes the
	// corpse and keeps training; All-Reduce halts, reproducing the paper's
	// asymmetry); other baselines ignore it.
	Crashes hetero.CrashSchedule
	// Partitions is a deterministic timed network-partition schedule: a group
	// collective whose members straddle an active partition cannot complete.
	// Strategies that model bounded-wait recovery (P-Reduce) retry per the
	// Retry model and abort when the budget is exhausted; strategies that
	// ignore it hang conceptually, which the MaxTime cutoff records as
	// non-convergence.
	Partitions hetero.PartitionSchedule
	// Retry models the live runtime's collective retry policy in virtual
	// seconds. The zero value gives one attempt with a one-batch timeout.
	Retry RetryModel
	// Elastic is a deterministic membership-change schedule: scale-out
	// joins bootstrap a parked rank from a live donor, graceful drains
	// retire a member at its next ready point. Strategies that understand
	// elasticity (P-Reduce) act on it; others ignore it.
	Elastic hetero.ElasticSchedule

	// TraceCap enables virtual-clock tracing: 0 disables it (the default —
	// parameter sweeps stay untraced), negative selects
	// trace.DefaultCapacity, positive sets the event-ring size. The tracer
	// reads the engine's virtual clock, so a same-seed replay records a
	// byte-identical trace.
	TraceCap int

	Threshold  float64 // stop when the averaged model reaches this accuracy
	EvalEvery  int     // evaluate every EvalEvery updates (default 25)
	MaxUpdates int     // safety cap (default 200000)
	MaxTime    float64 // virtual-second horizon (default 1e7)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("cluster: need N >= 1, got %d", c.N)
	case c.Train == nil || c.Test == nil:
		return fmt.Errorf("cluster: train and test datasets required")
	case c.Spec == nil:
		return fmt.Errorf("cluster: model builder required")
	case c.BatchSize < 1:
		return fmt.Errorf("cluster: batch size must be positive")
	case c.Hetero == nil:
		return fmt.Errorf("cluster: heterogeneity model required")
	case c.Threshold <= 0 || c.Threshold > 1:
		return fmt.Errorf("cluster: threshold must be in (0,1], got %v", c.Threshold)
	case c.Train.Len() < c.N:
		return fmt.Errorf("cluster: %d examples cannot shard across %d workers", c.Train.Len(), c.N)
	}
	if err := c.Optimizer.Validate(); err != nil {
		return err
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if err := c.Topology.Validate(c.N); err != nil {
		return err
	}
	if c.Initial != 0 && (c.Initial < 2 || c.Initial > c.N) {
		return fmt.Errorf("cluster: need 2 <= Initial <= N, got Initial=%d N=%d", c.Initial, c.N)
	}
	if len(c.Elastic) > 0 || c.Initial != 0 {
		if err := c.Elastic.Validate(c.N, c.InitialOr()); err != nil {
			return err
		}
	}
	if err := c.Crashes.Validate(c.N, 1); err != nil {
		return err
	}
	if err := c.Partitions.Validate(c.N); err != nil {
		return err
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	return c.Net.Validate()
}

// RetryModel is the simulator's mirror of collective.RetryPolicy, in virtual
// seconds and without jitter (the event engine is already deterministic, so a
// jitterless model keeps the fault trace byte-reproducible).
type RetryModel struct {
	// MaxAttempts bounds total attempts per collective (0 or 1: no retry).
	MaxAttempts int
	// Timeout is the virtual time a failing attempt blocks its members before
	// the deadline fires (0: one batch-compute, set at run time by the
	// strategy via TimeoutOr).
	Timeout float64
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier (<= 0: 1), capped at MaxDelay
	// (0: uncapped).
	BaseDelay  float64
	MaxDelay   float64
	Multiplier float64
}

// Validate reports whether the model is usable.
func (r RetryModel) Validate() error {
	switch {
	case r.MaxAttempts < 0:
		return fmt.Errorf("cluster: negative retry attempts")
	case r.Timeout < 0 || r.BaseDelay < 0 || r.MaxDelay < 0:
		return fmt.Errorf("cluster: negative retry duration")
	case r.Multiplier < 0:
		return fmt.Errorf("cluster: negative retry multiplier")
	}
	return nil
}

// Attempts returns the effective attempt budget (at least 1).
func (r RetryModel) Attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// TimeoutOr returns the effective attempt timeout, falling back to def.
func (r RetryModel) TimeoutOr(def float64) float64 {
	if r.Timeout > 0 {
		return r.Timeout
	}
	return def
}

// Backoff returns the delay before attempt k+1 (k >= 1 completed attempts).
func (r RetryModel) Backoff(k int) float64 {
	if r.BaseDelay <= 0 {
		return 0
	}
	m := r.Multiplier
	if m <= 0 {
		m = 1
	}
	d := r.BaseDelay
	for i := 1; i < k; i++ {
		d *= m
		if r.MaxDelay > 0 && d >= r.MaxDelay {
			return r.MaxDelay
		}
	}
	if r.MaxDelay > 0 && d > r.MaxDelay {
		return r.MaxDelay
	}
	return d
}

// PartitionSplits reports whether an active partition separates members at
// virtual time t.
func (c *Cluster) PartitionSplits(members []int, t float64) bool {
	return c.Cfg.Partitions.SplitsAt(members, t)
}

// InitialOr returns the effective founding membership size (N when Initial
// is zero).
func (c Config) InitialOr() int {
	if c.Initial == 0 {
		return c.N
	}
	return c.Initial
}

func (c *Config) applyDefaults() {
	if c.EvalEvery == 0 {
		c.EvalEvery = 25
	}
	if c.MaxUpdates == 0 {
		c.MaxUpdates = 200_000
	}
	if c.MaxTime == 0 {
		c.MaxTime = 1e7
	}
}

// Worker is one simulated training process.
type Worker struct {
	ID      int
	Model   model.Model
	Opt     *optim.SGD
	Sampler *data.Sampler
	Iter    int // completed local iterations

	grad     tensor.Vector
	snapshot tensor.Vector // params at compute start (for inconsistent reads)
	live     tensor.Vector // scratch for restoring params around a gradient
	batch    *data.Batch
}

// Params returns the worker's live parameter vector.
func (w *Worker) Params() tensor.Vector { return w.Model.Params() }

// Cluster binds workers, engine, dataset shards, and metrics for one run.
type Cluster struct {
	Cfg     Config
	Eng     *sim.Engine
	Workers []*Worker
	Init    tensor.Vector // the shared initial model x₁ (for dynamic P-Reduce)
	Track   *metrics.Tracker
	// Tracer records virtual-clock trace events when Config.TraceCap enables
	// it; nil otherwise (every recording site is nil-safe).
	Tracer *trace.Tracer
	// Ins aggregates the run's observability instruments (staleness
	// histogram, queue depth, sync-graph gauges) when tracing is enabled;
	// nil otherwise. Strategies that use the controller attach it there.
	Ins *metrics.Instruments

	// Health, when set alongside Recorder, arms the watchdog: strategies
	// that run the controller (P-Reduce) evaluate it every HealthEvery
	// virtual seconds over Ins snapshots plus controller introspection,
	// and capture a postmortem bundle through Recorder on each newly
	// firing rule. Both are optional wiring, set after New by the host
	// (CLI flags, tests); nil leaves monitoring off.
	Health      *health.Watchdog
	Recorder    *health.Recorder
	HealthEvery float64 // watchdog cadence in virtual seconds (<= 0: 1.0)

	// EvalOverride, when set, replaces the averaged-replica evaluation:
	// parameter-server strategies evaluate the server's global model, and
	// Eager-Reduce its reference model.
	EvalOverride func() float64

	// Dead marks fail-stopped workers. Dead replicas are excluded from
	// EvalAverage (their parameters are frozen corpse state, not trained
	// models). Strategies flip entries via Kill/Revive.
	Dead []bool

	evalModel model.Model   // scratch replica for evaluating averaged params
	evalBuf   tensor.Vector // scratch average buffer
	updates   int
}

// New builds a cluster: shards the training set, replicates the model with
// one shared initialization (every paper strategy starts all replicas at the
// same point), and seeds independent sampler streams.
func New(cfg Config, strategyName string) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()

	c := &Cluster{
		Cfg:   cfg,
		Eng:   &sim.Engine{},
		Track: metrics.NewTracker(strategyName, cfg.Profile.Name, cfg.Threshold),
	}
	if cfg.TraceCap != 0 {
		// The tracer shares the engine's virtual clock: a same-seed replay
		// schedules identical events at identical virtual times, so the
		// recorded trace is byte-identical across replays.
		c.Tracer = trace.New(trace.FuncClock(c.Eng.Now), cfg.TraceCap)
		c.Ins = metrics.NewInstruments(cfg.N)
	}
	base := cfg.Spec.Build(cfg.Seed)
	c.Init = base.Params().Clone()
	c.evalModel = base.Clone()
	c.evalBuf = tensor.NewVector(base.NumParams())

	c.Dead = make([]bool, cfg.N)
	// Ranks outside the founding membership park as dead until an elastic
	// join bootstraps and revives them; EvalAverage must not count their
	// untrained replicas.
	for i := cfg.InitialOr(); i < cfg.N; i++ {
		c.Dead[i] = true
	}
	shards := cfg.Train.Shard(cfg.N)
	c.Workers = make([]*Worker, cfg.N)
	for i := range c.Workers {
		c.Workers[i] = &Worker{
			ID:       i,
			Model:    base.Clone(),
			Opt:      optim.NewSGD(cfg.Optimizer, base.NumParams()),
			Sampler:  data.NewSampler(shards[i], mix(cfg.Seed, int64(i))),
			grad:     tensor.NewVector(base.NumParams()),
			snapshot: tensor.NewVector(base.NumParams()),
			live:     tensor.NewVector(base.NumParams()),
		}
	}
	return c, nil
}

func mix(seed, id int64) int64 { return seed*1_000_003 + id*7919 + 1 }

// SamplerSeed returns the sampler-stream seed New assigns worker id under
// master seed. Exported so the sim↔live differential test can feed a live
// worker the exact batch sequence its simulated twin draws.
func SamplerSeed(seed, id int64) int64 { return mix(seed, id) }

// ComputeTime samples the duration of the batch worker w starts now. Hetero
// models are constructed with the profile's BatchCompute as their base, so
// no rescaling happens here.
func (c *Cluster) ComputeTime(w *Worker) float64 {
	return c.Cfg.Hetero.ComputeTime(w.ID, c.Eng.Now())
}

// Snapshot records w's current parameters as the basis of its next gradient
// (the model version the worker "reads" when its batch starts). Strategies
// call it at compute-start; AD-PSGD's inconsistent averaging may change the
// live parameters before the gradient lands.
func (c *Cluster) Snapshot(w *Worker) { w.snapshot.CopyFrom(w.Params()) }

// Gradient computes w's mini-batch gradient at its snapshot into w's buffer
// and returns (gradient, loss). The returned vector is owned by the worker
// and valid until its next Gradient call.
func (c *Cluster) Gradient(w *Worker) (tensor.Vector, float64) {
	w.batch = w.Sampler.Sample(w.batch, c.Cfg.BatchSize)
	w.live.CopyFrom(w.Params())
	w.Model.SetParams(w.snapshot)
	loss := w.Model.Gradient(w.grad, w.batch)
	w.Model.SetParams(w.live)
	return w.grad, loss
}

// GradientAtCurrent computes w's gradient at its live parameters (used by
// synchronous strategies where no one mutates params mid-batch).
func (c *Cluster) GradientAtCurrent(w *Worker) (tensor.Vector, float64) {
	w.batch = w.Sampler.Sample(w.batch, c.Cfg.BatchSize)
	loss := w.Model.Gradient(w.grad, w.batch)
	return w.grad, loss
}

// WireBytes returns the message size of one model or gradient.
func (c *Cluster) WireBytes() int64 { return c.Cfg.Profile.WireBytes() }

// Communication cost helpers. Every strategy charges transfers through
// these, so a Topology (per-worker links, geo zones) transparently affects
// all of them.

// RingTime returns the duration of a ring all-reduce among members.
func (c *Cluster) RingTime(members []int) float64 {
	if c.Cfg.Topology != nil {
		return c.Cfg.Topology.RingAllReduce(c.Cfg.Net, members, c.WireBytes())
	}
	return c.Cfg.Net.RingAllReduce(len(members), c.WireBytes())
}

// RingTimeAll returns the duration of a full-cluster ring all-reduce.
func (c *Cluster) RingTimeAll() float64 {
	if c.Cfg.Topology == nil {
		return c.Cfg.Net.RingAllReduce(c.Cfg.N, c.WireBytes())
	}
	members := make([]int, c.Cfg.N)
	for i := range members {
		members[i] = i
	}
	return c.Cfg.Topology.RingAllReduce(c.Cfg.Net, members, c.WireBytes())
}

// PSTime returns worker w's parameter-server push/pull round trip.
func (c *Cluster) PSTime(w int) float64 {
	if c.Cfg.Topology != nil {
		return c.Cfg.Topology.PSExchange(c.Cfg.Net, w, c.WireBytes())
	}
	return c.Cfg.Net.PSExchange(c.WireBytes())
}

// PSTimeMax returns the slowest worker's PS round trip (the synchronous
// round cost).
func (c *Cluster) PSTimeMax() float64 {
	var m float64
	for w := 0; w < c.Cfg.N; w++ {
		if t := c.PSTime(w); t > m {
			m = t
		}
	}
	return m
}

// PairTime returns the duration of an atomic pairwise model average.
func (c *Cluster) PairTime(a, b int) float64 {
	if c.Cfg.Topology != nil {
		return c.Cfg.Topology.PairAverage(c.Cfg.Net, a, b, c.WireBytes())
	}
	return c.Cfg.Net.PairAverage(c.WireBytes())
}

// Modeled traffic accounting: strategies call these once per *executed*
// synchronization so the simulator's summary carries the same comm columns
// the live runtime measures. (The *Time helpers above stay pure cost
// queries — PSTimeMax, for instance, probes every worker to find the
// slowest, which must not count as N transfers.)

// ChargeRing records the traffic of one executed ring all-reduce among g
// members: every member ships 2(g−1)/g of the tensor in each direction, so
// the group total is 2(g−1)·WireBytes both sent and received. ring is the
// modeled duration of the collective (the same value the caller charges the
// event engine); each of the g members spends it split evenly between the
// two symmetric ring phases, so the run's ReduceScatterS/AllGatherS columns
// accumulate g·ring/2 cumulative seconds per phase — the modeled counterpart
// of the live runtime's measured phase wall time.
func (c *Cluster) ChargeRing(g int, ring float64) {
	if g < 2 {
		return
	}
	b := 2 * int64(g-1) * c.WireBytes()
	half := float64(g) * ring / 2
	c.Track.AddComms(metrics.CommStats{
		Ops: 1, BytesSent: b, BytesRecv: b,
		ReduceScatterS: half, AllGatherS: half,
	})
}

// ChargeExchange records n executed point-to-point model exchanges (a PS
// push/pull round trip, or one half of a pairwise average): each moves the
// full tensor both ways.
func (c *Cluster) ChargeExchange(n int) {
	if n < 1 {
		return
	}
	b := int64(n) * c.WireBytes()
	c.Track.AddComms(metrics.CommStats{Ops: 1, BytesSent: b, BytesRecv: b})
}

// RecordUpdate counts one synchronization update, evaluates the averaged
// model on schedule, and stops the engine when the run converges or exceeds
// its budgets. Strategies must call it once per update event.
func (c *Cluster) RecordUpdate() {
	c.updates++
	c.Track.Update(c.Eng.Now())
	if c.updates%c.Cfg.EvalEvery == 0 {
		if c.Track.Observe(c.Eng.Now(), c.eval()) {
			c.Eng.Stop()
			return
		}
	}
	if c.updates >= c.Cfg.MaxUpdates || c.Eng.Now() >= c.Cfg.MaxTime {
		c.Track.Cutoff(c.Eng.Now())
		c.Eng.Stop()
	}
}

// Updates returns the number of updates recorded so far.
func (c *Cluster) Updates() int { return c.updates }

func (c *Cluster) eval() float64 {
	if c.EvalOverride != nil {
		return c.EvalOverride()
	}
	return c.EvalAverage()
}

// EvalAverage evaluates the test accuracy of the average of the surviving
// worker models — the paper's inference model (Alg. 2 line 8). Dead replicas
// are excluded: their parameters froze at crash time.
func (c *Cluster) EvalAverage() float64 {
	c.evalBuf.Zero()
	alive := 0
	for _, w := range c.Workers {
		if c.Dead[w.ID] {
			continue
		}
		c.evalBuf.Add(w.Params())
		alive++
	}
	if alive == 0 {
		return 0
	}
	c.evalBuf.Scale(1 / float64(alive))
	return c.EvalParams(c.evalBuf)
}

// Kill marks worker w fail-stopped. Idempotent.
func (c *Cluster) Kill(w int) { c.Dead[w] = true }

// Revive clears w's fail-stop mark after a checkpoint restart.
func (c *Cluster) Revive(w int) { c.Dead[w] = false }

// AliveCount returns the number of workers not currently dead.
func (c *Cluster) AliveCount() int {
	n := 0
	for _, d := range c.Dead {
		if !d {
			n++
		}
	}
	return n
}

// ScheduleCrashes arms the configured fail-stop schedule on the event
// engine. For each event the worker is marked dead and onCrash fires; if the
// event rejoins, the worker is revived at its RejoinAt and onRejoin fires
// (the replica restarts from its crash-time parameters — the simulated
// equivalent of restoring the checkpoint written at death). Strategies that
// support faults call this once at the start of Run; strategies that never
// call it simply ignore the schedule.
func (c *Cluster) ScheduleCrashes(onCrash, onRejoin func(w int)) {
	for _, e := range c.Cfg.Crashes {
		e := e
		c.Eng.At(e.At, func() {
			if c.Dead[e.Worker] {
				return
			}
			c.Kill(e.Worker)
			c.Tracer.Instant(trace.KCrash, int32(e.Worker), int32(c.Workers[e.Worker].Iter), 0, 0)
			if onCrash != nil {
				onCrash(e.Worker)
			}
		})
		if e.Rejoins() {
			c.Eng.At(e.RejoinAt, func() {
				if !c.Dead[e.Worker] {
					return
				}
				c.Revive(e.Worker)
				if onRejoin != nil {
					onRejoin(e.Worker)
				}
			})
		}
	}
}

// EvalParams evaluates the test accuracy of an arbitrary parameter vector.
func (c *Cluster) EvalParams(p tensor.Vector) float64 {
	c.evalModel.SetParams(p)
	return model.Accuracy(c.evalModel, c.Cfg.Test)
}

// Finish seals and returns the run's result. Call after the engine stops.
func (c *Cluster) Finish() *metrics.Result {
	c.Track.Cutoff(c.Eng.Now())
	if !c.Track.Converged() {
		// Record a final point so curves always end at the cutoff state.
		c.Track.Observe(c.Eng.Now(), c.eval())
	}
	return c.Track.Result()
}

// Strategy is a training algorithm over the cluster substrate.
type Strategy interface {
	// Name identifies the strategy in results ("AR", "CON P=3", ...).
	Name() string
	// Run executes training to convergence or cutoff and returns the result.
	Run(c *Cluster) (*metrics.Result, error)
}
