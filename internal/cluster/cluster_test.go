package cluster

import (
	"math"
	"testing"

	"partialreduce/internal/data"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
	"partialreduce/internal/tensor"
)

func testConfig(t *testing.T, seed int64) Config {
	t.Helper()
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 3, Dim: 8, Examples: 600, Separation: 3, Noise: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	return Config{
		N:         4,
		Spec:      model.Spec{Inputs: 8, Hidden: []int{8}, Classes: 3},
		Seed:      seed,
		Train:     train,
		Test:      test,
		BatchSize: 8,
		Optimizer: optim.Config{LR: 0.05, Momentum: 0.9},
		Profile:   model.Profile{Name: "t", WireParams: 1000, BatchCompute: 0.1, BytesPerParam: 4},
		Hetero:    hetero.NewHomogeneous(4, 0.1, 0, seed),
		Net:       netmodel.Default(),
		Threshold: 0.9,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(t, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.Train = nil },
		func(c *Config) { c.Test = nil },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Hetero = nil },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Threshold = 1.5 },
		func(c *Config) { c.N = c.Train.Len() + 1 },
		func(c *Config) { c.Optimizer.LR = -1 },
		func(c *Config) { c.Profile.WireParams = 0 },
		func(c *Config) { c.Net.Bandwidth = 0 },
	}
	for i, mutate := range mutations {
		cfg := testConfig(t, 1)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestNewClusterSetup(t *testing.T) {
	cfg := testConfig(t, 2)
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workers) != 4 {
		t.Fatalf("workers: %d", len(c.Workers))
	}
	// All replicas share the initialization and equal Init.
	for _, w := range c.Workers {
		for i, v := range w.Params() {
			if v != c.Init[i] {
				t.Fatal("replica does not match shared init")
			}
		}
	}
	// Replicas are independent storage.
	c.Workers[0].Params().Fill(0)
	if c.Workers[1].Params().NormInf() == 0 {
		t.Fatal("replicas share storage")
	}
	if c.Init.NormInf() == 0 {
		t.Fatal("Init aliases a replica")
	}
}

func TestGradientSnapshotSemantics(t *testing.T) {
	cfg := testConfig(t, 3)
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	w := c.Workers[0]
	c.Snapshot(w)
	// Perturb live params after the snapshot (as AD-PSGD averaging would).
	w.Params().Fill(0)
	g1, _ := c.Gradient(w)
	// The gradient must reflect the snapshot, not the zeroed params: at the
	// Glorot init it cannot equal the all-zero-params gradient.
	w2 := c.Workers[1]
	w2.Params().Fill(0)
	c.Snapshot(w2)
	g2, _ := c.Gradient(w2)
	diff := g1.Clone()
	diff.Sub(g2)
	if diff.NormInf() == 0 {
		t.Fatal("gradient ignored the snapshot")
	}
	// Live params survive the gradient computation.
	if w.Params().NormInf() != 0 {
		t.Fatal("Gradient clobbered live params")
	}
}

func TestRecordUpdateStopsAtThreshold(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.EvalEvery = 1
	cfg.Threshold = 0.85
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	// Train worker 0 to high accuracy, copy to all, then record an update:
	// the engine must stop converged.
	w := c.Workers[0]
	g := tensor.NewVector(len(c.Init))
	for k := 0; k < 1500; k++ {
		c.Snapshot(w)
		grad, _ := c.Gradient(w)
		copy(g, grad)
		w.Opt.Update(w.Params(), g, 1)
	}
	for _, other := range c.Workers[1:] {
		other.Params().CopyFrom(w.Params())
	}
	c.Eng.At(0, func() { c.RecordUpdate() })
	c.Eng.Run()
	res := c.Finish()
	if !res.Converged {
		t.Fatalf("expected convergence, got %+v (acc=%v)", res, c.EvalAverage())
	}
}

func TestRecordUpdateCutoffs(t *testing.T) {
	cfg := testConfig(t, 5)
	cfg.MaxUpdates = 3
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	var tick func()
	tick = func() {
		c.RecordUpdate()
		if !c.Eng.Stopped() {
			c.Eng.After(1, tick)
		}
	}
	c.Eng.At(0, tick)
	c.Eng.Run()
	if c.Updates() != 3 {
		t.Fatalf("updates: %d, want cutoff at 3", c.Updates())
	}
	res := c.Finish()
	if res.Converged {
		t.Fatal("cutoff run marked converged")
	}
}

func TestMaxTimeCutoff(t *testing.T) {
	cfg := testConfig(t, 6)
	cfg.MaxTime = 10
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	var tick func()
	tick = func() {
		c.RecordUpdate()
		if !c.Eng.Stopped() {
			c.Eng.After(4, tick)
		}
	}
	c.Eng.At(0, tick)
	c.Eng.Run()
	if c.Eng.Now() < 10 || c.Eng.Now() > 14 {
		t.Fatalf("stopped at %v, want shortly after MaxTime=10", c.Eng.Now())
	}
}

func TestEvalOverride(t *testing.T) {
	cfg := testConfig(t, 7)
	cfg.EvalEvery = 1
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	c.EvalOverride = func() float64 { return 1.0 }
	c.Eng.At(0, func() { c.RecordUpdate() })
	c.Eng.Run()
	if !c.Finish().Converged {
		t.Fatal("eval override not used")
	}
}

func TestEvalParamsMatchesModelAccuracy(t *testing.T) {
	cfg := testConfig(t, 8)
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Spec.Build(cfg.Seed)
	got := c.EvalParams(m.Params())
	want := model.Accuracy(m, cfg.Test)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EvalParams %v != Accuracy %v", got, want)
	}
}

func TestWireBytes(t *testing.T) {
	cfg := testConfig(t, 9)
	c, err := New(cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	if c.WireBytes() != 4000 {
		t.Fatalf("WireBytes: %d", c.WireBytes())
	}
}
