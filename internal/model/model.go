// Package model provides the trainable models for the reproduction and the
// workload profiles that stand in for the paper's CNNs.
//
// Models expose their parameters as a single flat tensor.Vector so that
// collectives (all-reduce, partial reduce, PS push/pull) operate on one
// contiguous buffer, exactly as gradient buckets do in a real DDP stack.
// Layer weight matrices are views into that flat vector: reading Params()
// and writing through SetParams copy nothing structural.
//
// The statistical side of every experiment runs real stochastic gradient
// descent on these models; the hardware side (per-batch seconds, bytes on
// the wire) comes from Profile, which carries the true parameter counts of
// the paper's CNNs (ResNet-18/34, VGG-16/19, DenseNet-121).
package model

import (
	"fmt"
	"math/rand"

	"partialreduce/internal/data"
	"partialreduce/internal/tensor"
)

// Model is a trainable classifier over flat parameters.
type Model interface {
	// Params returns the flat parameter vector. The returned slice is the
	// live storage: mutating it mutates the model.
	Params() tensor.Vector
	// SetParams copies p into the model's parameters.
	SetParams(p tensor.Vector)
	// NumParams returns the trainable parameter count.
	NumParams() int
	// Gradient computes the average gradient of the cross-entropy loss over
	// the batch into dst (len NumParams) and returns the average loss.
	Gradient(dst tensor.Vector, b *data.Batch) float64
	// Loss returns the average cross-entropy loss over the batch.
	Loss(b *data.Batch) float64
	// Predict returns the predicted class for x.
	Predict(x tensor.Vector) int
	// Clone returns an independent deep copy.
	Clone() Model
}

// Accuracy returns the fraction of ds classified correctly by m.
func Accuracy(m Model, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		if m.Predict(x) == y {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Builder constructs a model from an initialization seed. Spec (MLP) and
// ConvSpec (convolutional) both implement it; cluster and live configs
// accept any Builder.
type Builder interface {
	Build(seed int64) Model
}

// Spec constructs a model; it is how experiments describe the proxy model
// independent of its random initialization.
type Spec struct {
	Inputs  int   // feature dimension
	Hidden  []int // hidden layer widths; empty means softmax regression
	Classes int
}

// Build constructs the model with Glorot initialization from seed.
func (s Spec) Build(seed int64) Model {
	return NewMLP(s, seed)
}

// MLP is a fully-connected network with ReLU hidden activations and a
// softmax cross-entropy output. Hidden may be empty, giving multinomial
// logistic regression.
type MLP struct {
	spec  Spec
	flat  tensor.Vector // all parameters, contiguous
	ws    []*tensor.Matrix
	bs    []tensor.Vector
	sizes []int // layer widths including input and output
	// scratch buffers reused across Gradient calls
	acts   []tensor.Vector // activations per layer (post-nonlinearity)
	deltas []tensor.Vector // backprop deltas per layer
	probs  tensor.Vector
}

// NewMLP builds an MLP per spec with Glorot-uniform weights seeded by seed.
func NewMLP(spec Spec, seed int64) *MLP {
	if spec.Inputs < 1 || spec.Classes < 2 {
		panic(fmt.Sprintf("model: invalid spec %+v", spec))
	}
	sizes := append([]int{spec.Inputs}, spec.Hidden...)
	sizes = append(sizes, spec.Classes)

	total := 0
	for l := 0; l+1 < len(sizes); l++ {
		total += sizes[l+1]*sizes[l] + sizes[l+1]
	}
	m := &MLP{spec: spec, flat: tensor.NewVector(total), sizes: sizes}
	m.bindViews()

	rng := rand.New(rand.NewSource(seed))
	for l, w := range m.ws {
		w.FillGlorot(rng, sizes[l], sizes[l+1])
	}
	m.initScratch()
	return m
}

// bindViews points ws/bs at slices of flat.
func (m *MLP) bindViews() {
	m.ws = m.ws[:0]
	m.bs = m.bs[:0]
	off := 0
	for l := 0; l+1 < len(m.sizes); l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		m.ws = append(m.ws, tensor.MatrixFrom(out, in, m.flat[off:off+out*in]))
		off += out * in
		m.bs = append(m.bs, m.flat[off:off+out])
		off += out
	}
}

func (m *MLP) initScratch() {
	m.acts = make([]tensor.Vector, len(m.sizes))
	m.deltas = make([]tensor.Vector, len(m.sizes))
	for l, sz := range m.sizes {
		m.acts[l] = tensor.NewVector(sz)
		m.deltas[l] = tensor.NewVector(sz)
	}
	m.probs = tensor.NewVector(m.spec.Classes)
}

// Params implements Model.
func (m *MLP) Params() tensor.Vector { return m.flat }

// SetParams implements Model.
func (m *MLP) SetParams(p tensor.Vector) { m.flat.CopyFrom(p) }

// NumParams implements Model.
func (m *MLP) NumParams() int { return len(m.flat) }

// Clone implements Model.
func (m *MLP) Clone() Model {
	c := &MLP{spec: m.spec, flat: m.flat.Clone(), sizes: m.sizes}
	c.bindViews()
	c.initScratch()
	return c
}

// forward runs the network on x, leaving logits in m.acts[last] and each
// layer's post-activation in m.acts.
func (m *MLP) forward(x tensor.Vector) tensor.Vector {
	m.acts[0].CopyFrom(x)
	last := len(m.sizes) - 1
	for l := 0; l < last; l++ {
		out := m.acts[l+1]
		m.ws[l].MulVec(out, m.acts[l])
		out.Add(m.bs[l])
		if l+1 < last { // ReLU on hidden layers only
			for i, v := range out {
				if v < 0 {
					out[i] = 0
				}
			}
		}
	}
	return m.acts[last]
}

// Predict implements Model.
func (m *MLP) Predict(x tensor.Vector) int {
	return m.forward(x).ArgMax()
}

// Loss implements Model.
func (m *MLP) Loss(b *data.Batch) float64 {
	if len(b.X) == 0 {
		return 0
	}
	var total float64
	for i, x := range b.X {
		logits := m.forward(x)
		total += tensor.LogSumExp(logits) - logits[b.Y[i]]
	}
	return total / float64(len(b.X))
}

// Gradient implements Model. dst receives the average gradient; the average
// loss is returned.
func (m *MLP) Gradient(dst tensor.Vector, b *data.Batch) float64 {
	if len(dst) != len(m.flat) {
		panic(fmt.Sprintf("model: gradient buffer %d, want %d", len(dst), len(m.flat)))
	}
	dst.Zero()
	if len(b.X) == 0 {
		return 0
	}

	// Gradient views into dst mirroring the parameter layout.
	gws := make([]*tensor.Matrix, len(m.ws))
	gbs := make([]tensor.Vector, len(m.bs))
	off := 0
	for l := range m.ws {
		in, out := m.sizes[l], m.sizes[l+1]
		gws[l] = tensor.MatrixFrom(out, in, dst[off:off+out*in])
		off += out * in
		gbs[l] = dst[off : off+out]
		off += out
	}

	last := len(m.sizes) - 1
	var totalLoss float64
	for i, x := range b.X {
		logits := m.forward(x)
		totalLoss += tensor.LogSumExp(logits) - logits[b.Y[i]]

		// Output delta: softmax(logits) - onehot(y).
		tensor.Softmax(m.probs, logits)
		d := m.deltas[last]
		d.CopyFrom(m.probs)
		d[b.Y[i]] -= 1

		// Backpropagate through layers.
		for l := last - 1; l >= 0; l-- {
			gws[l].AddOuter(1, m.deltas[l+1], m.acts[l])
			gbs[l].Add(m.deltas[l+1])
			if l > 0 {
				m.ws[l].MulVecT(m.deltas[l], m.deltas[l+1])
				// ReLU derivative on the hidden activation.
				for j, a := range m.acts[l] {
					if a <= 0 {
						m.deltas[l][j] = 0
					}
				}
			}
		}
	}
	dst.Scale(1 / float64(len(b.X)))
	return totalLoss / float64(len(b.X))
}
