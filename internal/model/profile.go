package model

import "fmt"

// Profile is the hardware-cost description of a paper workload. The proxy
// model above supplies the statistical behaviour (loss surface, gradients);
// the profile supplies the physical behaviour: how long one batch takes on a
// dedicated reference accelerator and how many parameters cross the wire at
// each synchronization. Parameter counts are the real counts of the paper's
// CNNs; compute times are calibrated so the simulated All-Reduce per-update
// times fall in the regime Table 1 reports.
type Profile struct {
	Name string
	// WireParams is the true parameter count of the paper model; it sets
	// message sizes in the communication cost model.
	WireParams int
	// BatchCompute is the seconds one reference worker needs to compute one
	// mini-batch gradient (forward+backward, batch 256) when it has a whole
	// accelerator to itself.
	BatchCompute float64
	// BytesPerParam is the wire width of one parameter (4 = float32, as in
	// the paper's Gloo deployment).
	BytesPerParam int
}

// WireBytes returns the size of one full model/gradient message.
func (p Profile) WireBytes() int64 {
	return int64(p.WireParams) * int64(p.BytesPerParam)
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.WireParams <= 0:
		return fmt.Errorf("model: profile %q needs positive WireParams", p.Name)
	case p.BatchCompute <= 0:
		return fmt.Errorf("model: profile %q needs positive BatchCompute", p.Name)
	case p.BytesPerParam <= 0:
		return fmt.Errorf("model: profile %q needs positive BytesPerParam", p.Name)
	}
	return nil
}

// Profiles for the five CNNs in the paper's evaluation. Compute times encode
// the paper's compute/communication balance: ResNets and DenseNet are
// compute-bound, VGGs are communication-bound (§5.3.2), and DenseNet-121 has
// the largest per-batch compute of the CIFAR trio (Table 1's AR per-update
// times order DenseNet > ResNet-34 > VGG-19 at HL=1).
var (
	ResNet34    = Profile{Name: "resnet34", WireParams: 21_800_000, BatchCompute: 0.410, BytesPerParam: 4}
	VGG19       = Profile{Name: "vgg19", WireParams: 143_700_000, BatchCompute: 0.160, BytesPerParam: 4}
	DenseNet121 = Profile{Name: "densenet121", WireParams: 8_000_000, BatchCompute: 0.800, BytesPerParam: 4}
	ResNet18    = Profile{Name: "resnet18", WireParams: 11_700_000, BatchCompute: 0.210, BytesPerParam: 4}
	VGG16       = Profile{Name: "vgg16", WireParams: 138_400_000, BatchCompute: 0.140, BytesPerParam: 4}
)

// ProfileByName returns the named built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range []Profile{ResNet34, VGG19, DenseNet121, ResNet18, VGG16} {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("model: unknown profile %q", name)
}
