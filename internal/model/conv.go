package model

import (
	"fmt"
	"math/rand"

	"partialreduce/internal/data"
	"partialreduce/internal/tensor"
)

// ConvSpec describes a small convolutional classifier: a 1-D convolution
// over the feature vector (treated as a length-Inputs sequence), ReLU,
// global average pooling per channel, and a dense softmax head. It is the
// CNN-shaped proxy model — weight sharing, locality, pooling — for
// experiments that want the paper's model family rather than an MLP.
type ConvSpec struct {
	Inputs   int // input sequence length
	Channels int // convolution output channels
	Kernel   int // kernel width (valid padding, stride 1)
	Classes  int
}

// Validate reports whether the spec is usable.
func (s ConvSpec) Validate() error {
	switch {
	case s.Inputs < 1 || s.Channels < 1 || s.Classes < 2:
		return fmt.Errorf("model: invalid conv spec %+v", s)
	case s.Kernel < 1 || s.Kernel > s.Inputs:
		return fmt.Errorf("model: kernel %d outside [1,%d]", s.Kernel, s.Inputs)
	}
	return nil
}

// Build constructs the model with Glorot initialization from seed.
func (s ConvSpec) Build(seed int64) Model { return NewConvNet(s, seed) }

// ConvNet implements Model for ConvSpec. Parameter layout in the flat
// vector: conv weights (Channels×Kernel), conv biases (Channels), dense
// weights (Classes×Channels), dense biases (Classes).
type ConvNet struct {
	spec ConvSpec
	flat tensor.Vector

	convW  *tensor.Matrix // Channels × Kernel view
	convB  tensor.Vector
	denseW *tensor.Matrix // Classes × Channels view
	denseB tensor.Vector

	// scratch
	fmap   *tensor.Matrix // Channels × T pre-activations
	pooled tensor.Vector  // Channels
	logits tensor.Vector
	probs  tensor.Vector
	dPool  tensor.Vector
}

// NewConvNet builds a ConvNet per spec, seeded by seed. It panics on an
// invalid spec (as Spec.Build does for the MLP).
func NewConvNet(spec ConvSpec, seed int64) *ConvNet {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	c, k, cls := spec.Channels, spec.Kernel, spec.Classes
	total := c*k + c + cls*c + cls
	m := &ConvNet{spec: spec, flat: tensor.NewVector(total)}
	m.bindViews()

	rng := rand.New(rand.NewSource(seed))
	m.convW.FillGlorot(rng, k, c)
	m.denseW.FillGlorot(rng, c, cls)
	m.initScratch()
	return m
}

func (m *ConvNet) bindViews() {
	c, k, cls := m.spec.Channels, m.spec.Kernel, m.spec.Classes
	off := 0
	m.convW = tensor.MatrixFrom(c, k, m.flat[off:off+c*k])
	off += c * k
	m.convB = m.flat[off : off+c]
	off += c
	m.denseW = tensor.MatrixFrom(cls, c, m.flat[off:off+cls*c])
	off += cls * c
	m.denseB = m.flat[off : off+cls]
}

func (m *ConvNet) initScratch() {
	t := m.timeSteps()
	m.fmap = tensor.NewMatrix(m.spec.Channels, t)
	m.pooled = tensor.NewVector(m.spec.Channels)
	m.logits = tensor.NewVector(m.spec.Classes)
	m.probs = tensor.NewVector(m.spec.Classes)
	m.dPool = tensor.NewVector(m.spec.Channels)
}

func (m *ConvNet) timeSteps() int { return m.spec.Inputs - m.spec.Kernel + 1 }

// Params implements Model.
func (m *ConvNet) Params() tensor.Vector { return m.flat }

// SetParams implements Model.
func (m *ConvNet) SetParams(p tensor.Vector) { m.flat.CopyFrom(p) }

// NumParams implements Model.
func (m *ConvNet) NumParams() int { return len(m.flat) }

// Clone implements Model.
func (m *ConvNet) Clone() Model {
	c := &ConvNet{spec: m.spec, flat: m.flat.Clone()}
	c.bindViews()
	c.initScratch()
	return c
}

// forward computes the logits for x, leaving pre-activations in fmap and
// pooled activations in pooled.
func (m *ConvNet) forward(x tensor.Vector) tensor.Vector {
	t := m.timeSteps()
	invT := 1 / float64(t)
	for c := 0; c < m.spec.Channels; c++ {
		w := m.convW.Row(c)
		b := m.convB[c]
		row := m.fmap.Row(c)
		var pool float64
		for i := 0; i < t; i++ {
			s := b
			for k, wk := range w {
				s += wk * x[i+k]
			}
			row[i] = s
			if s > 0 { // ReLU folded into pooling
				pool += s
			}
		}
		m.pooled[c] = pool * invT
	}
	m.denseW.MulVec(m.logits, m.pooled)
	m.logits.Add(m.denseB)
	return m.logits
}

// Predict implements Model.
func (m *ConvNet) Predict(x tensor.Vector) int { return m.forward(x).ArgMax() }

// Loss implements Model.
func (m *ConvNet) Loss(b *data.Batch) float64 {
	if len(b.X) == 0 {
		return 0
	}
	var total float64
	for i, x := range b.X {
		logits := m.forward(x)
		total += tensor.LogSumExp(logits) - logits[b.Y[i]]
	}
	return total / float64(len(b.X))
}

// Gradient implements Model.
func (m *ConvNet) Gradient(dst tensor.Vector, b *data.Batch) float64 {
	if len(dst) != len(m.flat) {
		panic(fmt.Sprintf("model: gradient buffer %d, want %d", len(dst), len(m.flat)))
	}
	dst.Zero()
	if len(b.X) == 0 {
		return 0
	}
	c, k, cls := m.spec.Channels, m.spec.Kernel, m.spec.Classes
	off := 0
	gConvW := tensor.MatrixFrom(c, k, dst[off:off+c*k])
	off += c * k
	gConvB := dst[off : off+c]
	off += c
	gDenseW := tensor.MatrixFrom(cls, c, dst[off:off+cls*c])
	off += cls * c
	gDenseB := dst[off : off+cls]

	t := m.timeSteps()
	invT := 1 / float64(t)
	var totalLoss float64
	for n, x := range b.X {
		logits := m.forward(x)
		totalLoss += tensor.LogSumExp(logits) - logits[b.Y[n]]

		tensor.Softmax(m.probs, logits)
		m.probs[b.Y[n]] -= 1 // dLogits

		// Dense head.
		gDenseW.AddOuter(1, m.probs, m.pooled)
		gDenseB.Add(m.probs)
		m.denseW.MulVecT(m.dPool, m.probs)

		// Through pooling and ReLU into the convolution.
		for ch := 0; ch < c; ch++ {
			d := m.dPool[ch] * invT
			if d == 0 {
				continue
			}
			row := m.fmap.Row(ch)
			gw := gConvW.Row(ch)
			var db float64
			for i := 0; i < t; i++ {
				if row[i] <= 0 {
					continue
				}
				db += d
				for kk := 0; kk < k; kk++ {
					gw[kk] += d * x[i+kk]
				}
			}
			gConvB[ch] += db
		}
	}
	dst.Scale(1 / float64(len(b.X)))
	return totalLoss / float64(len(b.X))
}
