package model

import (
	"math"
	"math/rand"
	"testing"

	"partialreduce/internal/data"
	"partialreduce/internal/tensor"
)

func smallBatch(rng *rand.Rand, dim, classes, n int) *data.Batch {
	b := &data.Batch{}
	for i := 0; i < n; i++ {
		x := tensor.NewVector(dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, rng.Intn(classes))
	}
	return b
}

func TestParamLayout(t *testing.T) {
	m := NewMLP(Spec{Inputs: 4, Hidden: []int{5}, Classes: 3}, 1)
	want := 5*4 + 5 + 3*5 + 3
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	if len(m.Params()) != want {
		t.Fatalf("Params len = %d, want %d", len(m.Params()), want)
	}
	// Params is live storage: writing through it changes predictions.
	x := tensor.Vector{1, 2, 3, 4}
	before := m.forward(x).Clone()
	m.Params().Fill(0)
	after := m.forward(x)
	if before.Sub(after); before.NormInf() == 0 {
		t.Fatal("zeroing Params did not change the forward pass")
	}
}

func TestSetParamsCopies(t *testing.T) {
	m := NewMLP(Spec{Inputs: 2, Classes: 2}, 1)
	p := m.Params().Clone()
	p.Fill(0.5)
	m.SetParams(p)
	p.Fill(-1) // must not leak into the model
	for _, v := range m.Params() {
		if v != 0.5 {
			t.Fatal("SetParams aliased caller storage")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMLP(Spec{Inputs: 3, Hidden: []int{4}, Classes: 2}, 2)
	c := m.Clone().(*MLP)
	c.Params().Fill(0)
	if m.Params().NormInf() == 0 {
		t.Fatal("Clone shares parameter storage")
	}
	// Clone's views must be bound to its own flat vector.
	rng := rand.New(rand.NewSource(3))
	b := smallBatch(rng, 3, 2, 8)
	g := tensor.NewVector(c.NumParams())
	c.Gradient(g, b)
	if m.Params().NormInf() == 0 {
		t.Fatal("gradient on clone corrupted original")
	}
}

// Finite-difference gradient check: the backprop gradient must match
// numerical differentiation of the loss.
func TestGradientFiniteDifference(t *testing.T) {
	specs := []Spec{
		{Inputs: 5, Classes: 3},                   // softmax regression
		{Inputs: 5, Hidden: []int{7}, Classes: 3}, // one hidden layer
		{Inputs: 4, Hidden: []int{6, 5}, Classes: 4},
	}
	rng := rand.New(rand.NewSource(4))
	for si, spec := range specs {
		m := NewMLP(spec, int64(si)+10)
		b := smallBatch(rng, spec.Inputs, spec.Classes, 6)
		g := tensor.NewVector(m.NumParams())
		m.Gradient(g, b)

		const h = 1e-5
		p := m.Params()
		// Check a deterministic sample of coordinates (all, for small nets).
		step := 1
		if m.NumParams() > 200 {
			step = m.NumParams() / 97
		}
		for i := 0; i < m.NumParams(); i += step {
			orig := p[i]
			p[i] = orig + h
			lp := m.Loss(b)
			p[i] = orig - h
			lm := m.Loss(b)
			p[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("spec %d coord %d: backprop %.8f vs numeric %.8f", si, i, g[i], num)
			}
		}
	}
}

func TestGradientReturnsLoss(t *testing.T) {
	m := NewMLP(Spec{Inputs: 3, Hidden: []int{4}, Classes: 3}, 5)
	rng := rand.New(rand.NewSource(6))
	b := smallBatch(rng, 3, 3, 10)
	g := tensor.NewVector(m.NumParams())
	if got, want := m.Gradient(g, b), m.Loss(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Gradient loss %v != Loss %v", got, want)
	}
	if m.Gradient(g, &data.Batch{}) != 0 {
		t.Fatal("empty batch should produce zero loss")
	}
	if g.NormInf() != 0 {
		t.Fatal("empty batch should produce zero gradient")
	}
}

func TestGradientBufferMismatchPanics(t *testing.T) {
	m := NewMLP(Spec{Inputs: 2, Classes: 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong gradient buffer size")
		}
	}()
	m.Gradient(tensor.NewVector(1), &data.Batch{})
}

// SGD on a separable mixture must reach high accuracy: end-to-end sanity for
// forward, backward, and prediction together.
func TestTrainingConverges(t *testing.T) {
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 3, Dim: 8, Examples: 900, Separation: 4, Noise: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	m := NewMLP(Spec{Inputs: 8, Hidden: []int{16}, Classes: 3}, 8)
	s := data.NewSampler(train, 9)
	g := tensor.NewVector(m.NumParams())
	var b *data.Batch
	for k := 0; k < 400; k++ {
		b = s.Sample(b, 32)
		m.Gradient(g, b)
		m.Params().Axpy(-0.1, g)
	}
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Fatalf("accuracy after training = %.3f, want >= 0.9", acc)
	}
}

func TestSoftmaxRegressionMatchesClosedForm(t *testing.T) {
	// For a single example and zero weights, the CE gradient of the output
	// layer is (softmax(0) - onehot) xᵀ = (1/C - onehot) xᵀ.
	m := NewMLP(Spec{Inputs: 2, Classes: 2}, 1)
	m.Params().Zero()
	b := &data.Batch{X: []tensor.Vector{{1, 2}}, Y: []int{0}}
	g := tensor.NewVector(m.NumParams())
	m.Gradient(g, b)
	// Layout: W(2x2) then b(2). Row 0 = class 0.
	want := []float64{-0.5, -1.0, 0.5, 1.0, -0.5, 0.5}
	for i, w := range want {
		if math.Abs(g[i]-w) > 1e-12 {
			t.Fatalf("closed-form grad mismatch at %d: got %v want %v", i, g[i], w)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := NewMLP(Spec{Inputs: 2, Classes: 2}, 1)
	empty := &data.Dataset{X: tensor.NewMatrix(0, 2), Y: nil, Classes: 2}
	if Accuracy(m, empty) != 0 {
		t.Fatal("accuracy on empty dataset should be 0")
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{ResNet34, VGG19, DenseNet121, ResNet18, VGG16} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.WireBytes() != int64(p.WireParams)*4 {
			t.Errorf("%s: WireBytes mismatch", p.Name)
		}
		got, err := ProfileByName(p.Name)
		if err != nil || got.WireParams != p.WireParams {
			t.Errorf("ProfileByName(%s) failed: %v", p.Name, err)
		}
	}
	if _, err := ProfileByName("alexnet"); err == nil {
		t.Error("expected error for unknown profile")
	}
	bad := Profile{Name: "x"}
	if bad.Validate() == nil {
		t.Error("zero profile should not validate")
	}
	// The paper's compute/communication split: VGGs are comm-bound relative
	// to ResNets (more wire bytes per compute second).
	if VGG19.BatchCompute/float64(VGG19.WireParams) >= ResNet34.BatchCompute/float64(ResNet34.WireParams) {
		t.Error("VGG-19 should be more communication-bound than ResNet-34")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewMLP(Spec{Inputs: 4, Hidden: []int{8}, Classes: 3}, 42)
	b := NewMLP(Spec{Inputs: 4, Hidden: []int{8}, Classes: 3}, 42)
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("same seed produced different init")
		}
	}
	c := NewMLP(Spec{Inputs: 4, Hidden: []int{8}, Classes: 3}, 43)
	diff := false
	for i := range a.Params() {
		if a.Params()[i] != c.Params()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical init")
	}
}
