package model

import (
	"math"
	"math/rand"
	"testing"

	"partialreduce/internal/data"
	"partialreduce/internal/tensor"
)

func TestConvSpecValidate(t *testing.T) {
	bad := []ConvSpec{
		{Inputs: 0, Channels: 2, Kernel: 1, Classes: 2},
		{Inputs: 8, Channels: 0, Kernel: 1, Classes: 2},
		{Inputs: 8, Channels: 2, Kernel: 0, Classes: 2},
		{Inputs: 8, Channels: 2, Kernel: 9, Classes: 2},
		{Inputs: 8, Channels: 2, Kernel: 3, Classes: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, s)
		}
	}
	good := ConvSpec{Inputs: 8, Channels: 4, Kernel: 3, Classes: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConvParamLayout(t *testing.T) {
	s := ConvSpec{Inputs: 10, Channels: 4, Kernel: 3, Classes: 5}
	m := NewConvNet(s, 1)
	want := 4*3 + 4 + 5*4 + 5
	if m.NumParams() != want {
		t.Fatalf("NumParams %d want %d", m.NumParams(), want)
	}
	// Views are live.
	x := tensor.NewVector(10)
	x.Fill(1)
	before := m.forward(x).Clone()
	m.Params().Fill(0)
	after := m.forward(x)
	if before.Sub(after); before.NormInf() == 0 {
		t.Fatal("zeroing params did not change forward pass")
	}
}

// Finite-difference gradient check across conv and dense parameters.
func TestConvGradientFiniteDifference(t *testing.T) {
	s := ConvSpec{Inputs: 9, Channels: 3, Kernel: 4, Classes: 3}
	m := NewConvNet(s, 5)
	rng := rand.New(rand.NewSource(6))
	b := &data.Batch{}
	for i := 0; i < 6; i++ {
		x := tensor.NewVector(s.Inputs)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, rng.Intn(s.Classes))
	}
	g := tensor.NewVector(m.NumParams())
	m.Gradient(g, b)

	const h = 1e-5
	p := m.Params()
	for i := 0; i < m.NumParams(); i++ {
		orig := p[i]
		p[i] = orig + h
		lp := m.Loss(b)
		p[i] = orig - h
		lm := m.Loss(b)
		p[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-g[i]) > 2e-4*(1+math.Abs(num)) {
			t.Fatalf("coord %d: backprop %.8f vs numeric %.8f", i, g[i], num)
		}
	}
}

func TestConvGradientReturnsLoss(t *testing.T) {
	s := ConvSpec{Inputs: 8, Channels: 2, Kernel: 3, Classes: 3}
	m := NewConvNet(s, 7)
	rng := rand.New(rand.NewSource(8))
	b := smallBatch(rng, s.Inputs, s.Classes, 5)
	g := tensor.NewVector(m.NumParams())
	if got, want := m.Gradient(g, b), m.Loss(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Gradient loss %v != Loss %v", got, want)
	}
	if m.Gradient(g, &data.Batch{}) != 0 || g.NormInf() != 0 {
		t.Fatal("empty batch should produce zero loss and gradient")
	}
}

func TestConvCloneIndependence(t *testing.T) {
	m := NewConvNet(ConvSpec{Inputs: 6, Channels: 2, Kernel: 2, Classes: 2}, 9)
	c := m.Clone().(*ConvNet)
	c.Params().Fill(0)
	if m.Params().NormInf() == 0 {
		t.Fatal("clone shares storage")
	}
	x := tensor.NewVector(6)
	x.Fill(0.5)
	_ = c.Predict(x) // clone's scratch must be its own
	if m.Params().NormInf() == 0 {
		t.Fatal("clone forward corrupted original")
	}
}

// End-to-end: the conv proxy trains to high accuracy on a mixture whose
// class signal lives in local patterns (which the conv + pooling can use).
func TestConvTrainingConverges(t *testing.T) {
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 3, Dim: 16, Examples: 900, Separation: 4, Noise: 1, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	m := NewConvNet(ConvSpec{Inputs: 16, Channels: 12, Kernel: 5, Classes: 3}, 11)
	s := data.NewSampler(train, 12)
	g := tensor.NewVector(m.NumParams())
	var b *data.Batch
	for k := 0; k < 1500; k++ {
		b = s.Sample(b, 32)
		m.Gradient(g, b)
		m.Params().Axpy(-0.05, g)
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Fatalf("conv accuracy after training = %.3f", acc)
	}
}

func TestConvBuildPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConvNet(ConvSpec{Inputs: 2, Channels: 1, Kernel: 5, Classes: 2}, 1)
}

func TestConvGradientBufferMismatchPanics(t *testing.T) {
	m := NewConvNet(ConvSpec{Inputs: 4, Channels: 1, Kernel: 2, Classes: 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Gradient(tensor.NewVector(1), &data.Batch{})
}
