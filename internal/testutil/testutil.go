// Package testutil provides the shared small workload used by strategy and
// integration tests: an 8-worker cluster on a 4-class Gaussian mixture with
// a compact MLP, sized so every strategy converges in well under a second of
// host time while still exhibiting the statistical effects (staleness,
// dilution) the experiments measure.
package testutil

import (
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/data"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
)

// Profile is a small wire/compute profile for tests (1M params on the wire,
// 0.1 s/batch reference compute).
var Profile = model.Profile{Name: "test", WireParams: 1_000_000, BatchCompute: 0.1, BytesPerParam: 4}

// Config returns a ready-to-run cluster config over a fresh dataset. The
// returned config uses homogeneous compute; tests override Hetero as needed.
func Config(t *testing.T, seed int64) cluster.Config {
	t.Helper()
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 4, Dim: 16, Examples: 2400, Separation: 3.2, Noise: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	return cluster.Config{
		N:          8,
		Spec:       model.Spec{Inputs: 16, Hidden: []int{16}, Classes: 4},
		Seed:       seed,
		Train:      train,
		Test:       test,
		BatchSize:  16,
		Optimizer:  optim.Config{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4},
		Profile:    Profile,
		Hetero:     hetero.NewHomogeneous(8, Profile.BatchCompute, 0.05, seed),
		Net:        netmodel.Default(),
		Threshold:  0.9,
		EvalEvery:  20,
		MaxUpdates: 40_000,
		MaxTime:    1e6,
	}
}

// Run builds a cluster for cfg and executes the strategy, failing the test
// on error.
func Run(t *testing.T, cfg cluster.Config, s cluster.Strategy) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cfg, s.Name())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	return c
}
