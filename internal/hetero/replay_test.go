package hetero

import (
	"strings"
	"testing"
)

func TestReplayCycles(t *testing.T) {
	r, err := NewReplay([][]float64{{0.1, 0.2}, {0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0.1, 0.2}
	for i, w := range want {
		if got := r.ComputeTime(0, float64(i)); got != w {
			t.Fatalf("worker 0 call %d: %v want %v", i, got, w)
		}
	}
	for i := 0; i < 3; i++ {
		if got := r.ComputeTime(1, 0); got != 0.5 {
			t.Fatalf("worker 1: %v", got)
		}
	}
	if r.Workers() != 2 || r.Name() != "replay" {
		t.Fatal("metadata")
	}
}

func TestNewReplayValidation(t *testing.T) {
	cases := [][][]float64{
		{},
		{{}},
		{{0.1}, {}},
		{{0.1, -0.5}},
		{{0}},
	}
	for i, ds := range cases {
		if _, err := NewReplay(ds); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadReplayCSV(t *testing.T) {
	csvData := `worker,seconds
0,0.41
1,0.82
0,0.45
1,0.79
`
	r, err := ReadReplayCSV(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers() != 2 {
		t.Fatalf("workers: %d", r.Workers())
	}
	if got := r.ComputeTime(0, 0); got != 0.41 {
		t.Fatalf("first sample: %v", got)
	}
	if got := r.ComputeTime(0, 0); got != 0.45 {
		t.Fatalf("second sample: %v", got)
	}
	if got := r.ComputeTime(1, 0); got != 0.82 {
		t.Fatalf("worker 1: %v", got)
	}
}

func TestReadReplayCSVNoHeader(t *testing.T) {
	r, err := ReadReplayCSV(strings.NewReader("0,0.3\n0,0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ComputeTime(0, 0); got != 0.3 {
		t.Fatalf("got %v", got)
	}
}

func TestReadReplayCSVErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"worker,seconds\n", // header only
		"0,0.3\nx,y\n",     // bad row past header
		"-1,0.5\n",         // negative worker
		"0,0.5,extra\n",    // wrong column count
		"0,0.1\n2,0.2\n",   // worker 1 missing (gap)
	}
	for i, data := range cases {
		if _, err := ReadReplayCSV(strings.NewReader(data)); err == nil {
			t.Errorf("case %d: expected error for %q", i, data)
		}
	}
}
