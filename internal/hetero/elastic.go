package hetero

import "fmt"

// Elastic membership schedules. Like CrashSchedule, an ElasticSchedule is
// pure data: the same schedule value replayed against any backend produces
// the same joins and drains. Events trigger on the cluster-wide applied
// update count (AfterUpdates) rather than on a clock — an update count is
// observable identically in the simulator's virtual time and the live
// runtime's wall time, which is what lets one seeded 8→12→6 schedule run
// through both backends and land on the same update totals.

// ElasticKind distinguishes scale-out joins from graceful departures.
type ElasticKind uint8

const (
	// ElasticJoin admits a new rank: it bootstraps the freshest
	// checkpointed model from a live donor, then starts training.
	ElasticJoin ElasticKind = iota
	// ElasticDrain gracefully removes a rank: it finishes its in-flight
	// group, is excluded from formation, and decommissions cleanly.
	ElasticDrain
)

// String names the kind.
func (k ElasticKind) String() string {
	if k == ElasticJoin {
		return "join"
	}
	return "drain"
}

// ElasticEvent is one membership change: Kind fires for Worker once the
// cluster-wide applied update count reaches AfterUpdates.
type ElasticEvent struct {
	Worker       int
	AfterUpdates int
	Kind         ElasticKind
}

// ElasticSchedule is a deterministic membership-change schedule, kept
// sorted by trigger count (ties: joins before drains, then by worker).
type ElasticSchedule []ElasticEvent

// Validate checks the schedule for a world of capacity n whose ranks
// [0, initial) are founding members: joins must name capacity ranks that
// are not currently members, drains must name current members (a joined
// rank may later drain; a drained slot may be re-joined), and the active
// count must never fall below 2 (a group needs two). Events must be
// ordered by AfterUpdates.
func (s ElasticSchedule) Validate(n, initial int) error {
	if initial < 2 || initial > n {
		return fmt.Errorf("hetero: elastic schedule needs 2 <= initial <= n, got initial=%d n=%d", initial, n)
	}
	member := make([]bool, n)
	for w := 0; w < initial; w++ {
		member[w] = true
	}
	active := initial
	lastAt := 0
	for i, e := range s {
		if e.Worker < 0 || e.Worker >= n {
			return fmt.Errorf("hetero: elastic event %d: worker %d outside [0,%d)", i, e.Worker, n)
		}
		if e.AfterUpdates <= 0 {
			return fmt.Errorf("hetero: elastic event %d: trigger %d must be positive", i, e.AfterUpdates)
		}
		if e.AfterUpdates < lastAt {
			return fmt.Errorf("hetero: elastic events out of order at %d (%d < %d)", i, e.AfterUpdates, lastAt)
		}
		lastAt = e.AfterUpdates
		switch e.Kind {
		case ElasticJoin:
			if member[e.Worker] {
				return fmt.Errorf("hetero: elastic event %d: join of existing member %d", i, e.Worker)
			}
			member[e.Worker] = true
			active++
		case ElasticDrain:
			if !member[e.Worker] {
				return fmt.Errorf("hetero: elastic event %d: drain of non-member %d", i, e.Worker)
			}
			member[e.Worker] = false
			active--
			if active < 2 {
				return fmt.Errorf("hetero: elastic event %d: drain of %d leaves %d active, need >= 2", i, e.Worker, active)
			}
		default:
			return fmt.Errorf("hetero: elastic event %d: unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// ScaleSchedule builds the canonical initial→peak→final staircase: ranks
// [initial, peak) join one per step updates starting at afterUpdates, then
// once the joins are in, members drain one per step (highest first, never
// below final). ScaleSchedule(8, 12, 6, 20, 10) is the paper-style
// 8→12→6 elasticity sweep. Returns nil when the parameters describe no
// change.
func ScaleSchedule(initial, peak, final, afterUpdates, step int) ElasticSchedule {
	if step <= 0 || afterUpdates <= 0 {
		return nil
	}
	var s ElasticSchedule
	at := afterUpdates
	for w := initial; w < peak; w++ {
		s = append(s, ElasticEvent{Worker: w, AfterUpdates: at, Kind: ElasticJoin})
		at += step
	}
	for w := peak - 1; w >= final; w-- {
		s = append(s, ElasticEvent{Worker: w, AfterUpdates: at, Kind: ElasticDrain})
		at += step
	}
	return s
}
