package hetero

import "testing"

func TestElasticScheduleValidate(t *testing.T) {
	cases := []struct {
		name    string
		s       ElasticSchedule
		n, init int
		ok      bool
	}{
		{"empty", nil, 8, 8, true},
		{"join capacity rank", ElasticSchedule{{Worker: 8, AfterUpdates: 10, Kind: ElasticJoin}}, 12, 8, true},
		{"join existing member", ElasticSchedule{{Worker: 3, AfterUpdates: 10, Kind: ElasticJoin}}, 12, 8, false},
		{"drain member", ElasticSchedule{{Worker: 3, AfterUpdates: 10, Kind: ElasticDrain}}, 8, 8, true},
		{"drain non-member", ElasticSchedule{{Worker: 9, AfterUpdates: 10, Kind: ElasticDrain}}, 12, 8, false},
		{"join then drain same rank", ElasticSchedule{
			{Worker: 8, AfterUpdates: 10, Kind: ElasticJoin},
			{Worker: 8, AfterUpdates: 20, Kind: ElasticDrain},
		}, 12, 8, true},
		{"drain then rejoin slot", ElasticSchedule{
			{Worker: 2, AfterUpdates: 10, Kind: ElasticDrain},
			{Worker: 2, AfterUpdates: 20, Kind: ElasticJoin},
		}, 4, 4, true},
		{"out of order", ElasticSchedule{
			{Worker: 8, AfterUpdates: 20, Kind: ElasticJoin},
			{Worker: 9, AfterUpdates: 10, Kind: ElasticJoin},
		}, 12, 8, false},
		{"zero trigger", ElasticSchedule{{Worker: 8, AfterUpdates: 0, Kind: ElasticJoin}}, 12, 8, false},
		{"worker out of range", ElasticSchedule{{Worker: 12, AfterUpdates: 5, Kind: ElasticJoin}}, 12, 8, false},
		{"drains below two active", ElasticSchedule{
			{Worker: 0, AfterUpdates: 5, Kind: ElasticDrain},
			{Worker: 1, AfterUpdates: 10, Kind: ElasticDrain},
		}, 3, 3, false},
		{"bad initial", nil, 8, 1, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate(tc.n, tc.init)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestScaleSchedule(t *testing.T) {
	s := ScaleSchedule(8, 12, 6, 20, 10)
	if err := s.Validate(12, 8); err != nil {
		t.Fatalf("canonical 8→12→6 staircase invalid: %v", err)
	}
	// 4 joins (ranks 8..11), then 6 drains (ranks 11 down to 6).
	if len(s) != 10 {
		t.Fatalf("want 10 events, got %d: %v", len(s), s)
	}
	for i := 0; i < 4; i++ {
		e := s[i]
		if e.Kind != ElasticJoin || e.Worker != 8+i || e.AfterUpdates != 20+10*i {
			t.Fatalf("join %d wrong: %+v", i, e)
		}
	}
	for i := 0; i < 6; i++ {
		e := s[4+i]
		if e.Kind != ElasticDrain || e.Worker != 11-i || e.AfterUpdates != 60+10*i {
			t.Fatalf("drain %d wrong: %+v", i, e)
		}
	}
	if ScaleSchedule(8, 12, 6, 0, 10) != nil || ScaleSchedule(8, 12, 6, 20, 0) != nil {
		t.Fatal("degenerate parameters should yield nil")
	}
}
