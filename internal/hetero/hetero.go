// Package hetero models where per-update time variance comes from in the
// paper's three heterogeneity cases (§1): hardware sharing, communication
// differences, and resource contention in shared clouds. A hetero.Model maps
// (worker, virtual time) to the seconds that worker needs to compute one
// mini-batch gradient. All models are deterministic given their seed, and
// each worker draws from its own RNG stream (the paper's analysis assumes
// independent per-worker update-time distributions, §2.3).
package hetero

import (
	"fmt"
	"math"
	"math/rand"

	"partialreduce/internal/sim"
)

// Model samples per-batch compute durations.
type Model interface {
	// ComputeTime returns the seconds worker i needs for the batch that
	// starts at virtual time now. Calls must be monotone in now per worker.
	ComputeTime(worker int, now sim.Time) float64
	// Name identifies the model in experiment output.
	Name() string
}

// lognormal returns a multiplicative jitter factor with E[factor]=1:
// exp(sigma·Z − sigma²/2).
func lognormal(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
}

// Homogeneous gives every worker the same base time with small independent
// jitter — the paper's HL=1 setting ("each GPU is monopolized by a worker").
type Homogeneous struct {
	Base   float64 // dedicated-accelerator seconds per batch
	Jitter float64 // lognormal sigma, e.g. 0.05
	rngs   []*rand.Rand
	seed   int64
}

// NewHomogeneous returns a homogeneous model for n workers.
func NewHomogeneous(n int, base, jitter float64, seed int64) *Homogeneous {
	h := &Homogeneous{Base: base, Jitter: jitter, seed: seed}
	h.rngs = workerStreams(n, seed)
	return h
}

// ComputeTime implements Model.
func (h *Homogeneous) ComputeTime(worker int, _ sim.Time) float64 {
	return h.Base * lognormal(h.rngs[worker], h.Jitter)
}

// Name implements Model.
func (h *Homogeneous) Name() string { return "homogeneous" }

// GPUSharing reproduces the paper's synthetic heterogeneous environment
// (§5.2): HL of the N workers are containers packed onto one physical GPU
// and contend for its cores and PCIe bandwidth, so each runs ≈HL× slower
// (plus contention noise); the other N−HL workers each own a device.
// HL=1 degenerates to Homogeneous.
type GPUSharing struct {
	Base       float64
	HL         int     // workers sharing the first GPU
	Jitter     float64 // lognormal sigma on every worker
	Contention float64 // extra sigma on the shared workers
	IdleChance float64 // probability a shared worker's batch runs contention-free
	rngs       []*rand.Rand
}

// NewGPUSharing returns a GPU-sharing model for n workers with hl sharers.
// It panics if hl is outside [1, n].
func NewGPUSharing(n, hl int, base, jitter float64, seed int64) *GPUSharing {
	if hl < 1 || hl > n {
		panic(fmt.Sprintf("hetero: HL=%d outside [1,%d]", hl, n))
	}
	return &GPUSharing{
		Base: base, HL: hl, Jitter: jitter, Contention: 0.15, IdleChance: 0.25,
		rngs: workerStreams(n, seed),
	}
}

// ComputeTime implements Model. Sharing slows the co-located workers by
// 1 + 0.45·(HL−1): kernels from co-located containers interleave rather
// than fully serialize, so the penalty is sub-linear in HL — calibrated to
// Table 1's observed AR per-update inflation (≈1.9× at HL=3, ≈1.5× at
// HL=2). Contention is bursty: with probability IdleChance the co-tenants
// happen to be idle for this batch and the worker runs at solo speed, which
// is what occasionally lets a shared worker beat a solo one (and lets PS BK
// include shared workers' shards in some rounds).
func (g *GPUSharing) ComputeTime(worker int, _ sim.Time) float64 {
	t := g.Base * lognormal(g.rngs[worker], g.Jitter)
	if worker < g.HL && g.HL > 1 {
		if g.rngs[worker].Float64() >= g.IdleChance {
			slowdown := 1 + 0.45*float64(g.HL-1)
			t *= slowdown * lognormal(g.rngs[worker], g.Contention)
		}
	}
	return t
}

// Name implements Model.
func (g *GPUSharing) Name() string { return fmt.Sprintf("gpu-sharing(HL=%d)", g.HL) }

// Trace models the paper's production cluster (§5.3): each worker is a
// container on shared machines whose effective speed switches between
// regimes (normal, loaded, heavily loaded, thrashing) as co-located jobs
// come and go. Regime dwell times are exponential; slowdowns are sampled
// per regime. This produces the long-tailed per-update distribution behind
// Fig. 9's 16.6× per-update gap between P-Reduce and All-Reduce.
type Trace struct {
	Base      float64
	Slowdowns []float64 // regime multipliers, e.g. {1, 2, 4, 12}
	Weights   []float64 // stationary probabilities of the regimes
	MeanDwell float64   // mean seconds per regime residence
	Jitter    float64

	rngs  []*rand.Rand
	state []int
	until []sim.Time
}

// NewTrace returns a production-trace model for n workers with the default
// regime structure.
func NewTrace(n int, base float64, seed int64) *Trace {
	t := &Trace{
		Base:      base,
		Slowdowns: []float64{1, 2, 5, 18},
		Weights:   []float64{0.50, 0.25, 0.15, 0.10},
		MeanDwell: 30,
		Jitter:    0.12,
		rngs:      workerStreams(n, seed),
		state:     make([]int, n),
		until:     make([]sim.Time, n),
	}
	for i := range t.state {
		t.advance(i, 0)
	}
	return t
}

func (t *Trace) advance(worker int, now sim.Time) {
	rng := t.rngs[worker]
	u := rng.Float64()
	acc := 0.0
	t.state[worker] = len(t.Slowdowns) - 1
	for s, w := range t.Weights {
		acc += w
		if u < acc {
			t.state[worker] = s
			break
		}
	}
	t.until[worker] = now + rng.ExpFloat64()*t.MeanDwell
}

// ComputeTime implements Model.
func (t *Trace) ComputeTime(worker int, now sim.Time) float64 {
	for now >= t.until[worker] {
		t.advance(worker, t.until[worker])
	}
	return t.Base * t.Slowdowns[t.state[worker]] * lognormal(t.rngs[worker], t.Jitter)
}

// Name implements Model.
func (t *Trace) Name() string { return "production-trace" }

// Fixed assigns each worker a constant multiplier over Base — useful for
// tests and for reproducing Fig. 4(b)'s "one worker is two times slower"
// construction exactly.
type Fixed struct {
	Base        float64
	Multipliers []float64
}

// ComputeTime implements Model.
func (f *Fixed) ComputeTime(worker int, _ sim.Time) float64 {
	return f.Base * f.Multipliers[worker]
}

// Name implements Model.
func (f *Fixed) Name() string { return "fixed" }

func workerStreams(n int, seed int64) []*rand.Rand {
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = sim.Stream(seed, int64(i))
	}
	return rngs
}
