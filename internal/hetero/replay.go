package hetero

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"partialreduce/internal/sim"
)

// Replay plays back recorded per-batch durations — the hook for driving the
// simulator with measured production traces instead of synthetic models.
// Each worker has its own sequence of durations (seconds per batch),
// consumed one per ComputeTime call and wrapped cyclically.
type Replay struct {
	durations [][]float64
	cursor    []int
}

// NewReplay builds a replay model from per-worker duration sequences. Every
// worker needs at least one sample.
func NewReplay(durations [][]float64) (*Replay, error) {
	if len(durations) == 0 {
		return nil, fmt.Errorf("hetero: replay needs at least one worker")
	}
	for w, ds := range durations {
		if len(ds) == 0 {
			return nil, fmt.Errorf("hetero: worker %d has no samples", w)
		}
		for i, d := range ds {
			if d <= 0 {
				return nil, fmt.Errorf("hetero: worker %d sample %d is %v, want positive", w, i, d)
			}
		}
	}
	return &Replay{durations: durations, cursor: make([]int, len(durations))}, nil
}

// ReadReplayCSV parses a trace in CSV form: one row per observation with
// columns "worker,seconds" (a header row is skipped if present). Rows may
// arrive in any order; each worker's samples keep file order.
func ReadReplayCSV(r io.Reader) (*Replay, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	byWorker := map[int][]float64{}
	maxWorker := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hetero: trace csv: %w", err)
		}
		line++
		w, werr := strconv.Atoi(rec[0])
		d, derr := strconv.ParseFloat(rec[1], 64)
		if werr != nil || derr != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("hetero: trace csv line %d: bad row %v", line, rec)
		}
		if w < 0 {
			return nil, fmt.Errorf("hetero: trace csv line %d: negative worker %d", line, w)
		}
		byWorker[w] = append(byWorker[w], d)
		if w > maxWorker {
			maxWorker = w
		}
	}
	if maxWorker < 0 {
		return nil, fmt.Errorf("hetero: trace csv has no data rows")
	}
	durations := make([][]float64, maxWorker+1)
	for w := range durations {
		durations[w] = byWorker[w]
	}
	return NewReplay(durations)
}

// ComputeTime implements Model.
func (r *Replay) ComputeTime(worker int, _ sim.Time) float64 {
	ds := r.durations[worker]
	d := ds[r.cursor[worker]%len(ds)]
	r.cursor[worker]++
	return d
}

// Name implements Model.
func (r *Replay) Name() string { return "replay" }

// Workers returns the number of workers the trace covers.
func (r *Replay) Workers() int { return len(r.durations) }
