package hetero

import (
	"fmt"
	"sort"

	"partialreduce/internal/sim"
)

// CrashEvent is one scheduled fail-stop in a simulated run: worker dies at
// virtual time At; if RejoinAt > At the worker restarts from its checkpoint
// (its crash-time model state) at that time. Crashes are part of the workload
// description, not the strategy: the same schedule replayed against P-Reduce
// and All-Reduce exposes the paper's §4 asymmetry — partial reduce excludes
// the corpse and keeps training, a global collective cannot.
type CrashEvent struct {
	Worker   int
	At       sim.Time
	RejoinAt sim.Time // 0 (or <= At) means the worker never comes back
}

// Rejoins reports whether the event schedules a checkpoint restart.
func (e CrashEvent) Rejoins() bool { return e.RejoinAt > e.At }

// CrashSchedule is a deterministic fail-stop schedule. It is data, so the
// same schedule value always produces the same simulated faults regardless
// of seed or host — the property the seed-replay tests pin down.
type CrashSchedule []CrashEvent

// Validate checks the schedule against a cluster of n workers: events must
// name valid workers at non-negative times, a worker may crash at most once,
// and at least minAlive workers must survive (rejoining workers count as
// survivors, since they come back).
func (s CrashSchedule) Validate(n, minAlive int) error {
	seen := make(map[int]bool, len(s))
	permanent := 0
	for _, e := range s {
		if e.Worker < 0 || e.Worker >= n {
			return fmt.Errorf("hetero: crash worker %d outside [0,%d)", e.Worker, n)
		}
		if e.At < 0 {
			return fmt.Errorf("hetero: crash time %v is negative", e.At)
		}
		if seen[e.Worker] {
			return fmt.Errorf("hetero: worker %d crashes twice", e.Worker)
		}
		seen[e.Worker] = true
		if !e.Rejoins() {
			permanent++
		}
	}
	if n-permanent < minAlive {
		return fmt.Errorf("hetero: schedule leaves %d workers alive, need >= %d",
			n-permanent, minAlive)
	}
	return nil
}

// RandomCrashes draws a seeded schedule: each of the n workers independently
// crashes with probability rate, at a time uniform in (0, horizon). Worker 0
// is spared so at least one worker always survives even at rate 1. The draw
// is a pure function of (n, rate, horizon, seed); events are returned sorted
// by time so the schedule is also stable under iteration.
func RandomCrashes(n int, rate, horizon float64, seed int64) CrashSchedule {
	if rate <= 0 || horizon <= 0 {
		return nil
	}
	var s CrashSchedule
	for w := 1; w < n; w++ {
		rng := sim.Stream(seed, int64(w)+0x7C4A)
		if rng.Float64() < rate {
			s = append(s, CrashEvent{Worker: w, At: rng.Float64() * horizon})
		}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].At != s[j].At {
			return s[i].At < s[j].At
		}
		return s[i].Worker < s[j].Worker
	})
	return s
}
