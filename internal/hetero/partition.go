package hetero

import (
	"fmt"

	"partialreduce/internal/sim"
)

// PartitionEvent is one timed network partition in a simulated run: from
// virtual time From until Until, the workers in Ranks cannot exchange model
// data with the workers outside it. A P-Reduce group whose members straddle
// the boundary cannot complete its collective while the partition is active —
// the simulated counterpart of the live transport's timed Partition fault.
// The control plane is assumed reachable (the paper's controller carries a
// few bytes and can be replicated); only the bulky data plane is cut.
type PartitionEvent struct {
	Ranks []int
	From  sim.Time
	Until sim.Time // 0 means the partition never heals
}

// Active reports whether the partition is in force at virtual time t.
func (e PartitionEvent) Active(t sim.Time) bool {
	return t >= e.From && (e.Until == 0 || t < e.Until)
}

// Splits reports whether members straddle the partition boundary: at least
// one member inside Ranks and at least one outside.
func (e PartitionEvent) Splits(members []int) bool {
	in := make(map[int]bool, len(e.Ranks))
	for _, r := range e.Ranks {
		in[r] = true
	}
	var inside, outside bool
	for _, m := range members {
		if in[m] {
			inside = true
		} else {
			outside = true
		}
		if inside && outside {
			return true
		}
	}
	return false
}

// PartitionSchedule is a deterministic partition schedule. Like
// CrashSchedule it is data: the same value always produces the same simulated
// faults, which is what makes the partition sweeps byte-reproducible.
type PartitionSchedule []PartitionEvent

// Validate checks the schedule against a cluster of n workers: every event
// must name a non-empty set of distinct valid workers, start at a
// non-negative time, and either never heal (Until == 0) or heal strictly
// after it starts.
func (s PartitionSchedule) Validate(n int) error {
	for i, e := range s {
		if len(e.Ranks) == 0 {
			return fmt.Errorf("hetero: partition %d has no ranks", i)
		}
		seen := make(map[int]bool, len(e.Ranks))
		for _, r := range e.Ranks {
			if r < 0 || r >= n {
				return fmt.Errorf("hetero: partition %d rank %d outside [0,%d)", i, r, n)
			}
			if seen[r] {
				return fmt.Errorf("hetero: partition %d lists rank %d twice", i, r)
			}
			seen[r] = true
		}
		if e.From < 0 {
			return fmt.Errorf("hetero: partition %d starts at negative time %v", i, e.From)
		}
		if e.Until != 0 && e.Until <= e.From {
			return fmt.Errorf("hetero: partition %d heals at %v, not after start %v", i, e.Until, e.From)
		}
	}
	return nil
}

// SplitsAt reports whether any active partition separates members at time t.
func (s PartitionSchedule) SplitsAt(members []int, t sim.Time) bool {
	for _, e := range s {
		if e.Active(t) && e.Splits(members) {
			return true
		}
	}
	return false
}
