package hetero

import (
	"math"
	"testing"
)

func meanComputeTime(m Model, worker, samples int) float64 {
	var sum float64
	for i := 0; i < samples; i++ {
		sum += m.ComputeTime(worker, float64(i))
	}
	return sum / float64(samples)
}

func TestHomogeneousMean(t *testing.T) {
	h := NewHomogeneous(4, 0.5, 0.05, 1)
	for w := 0; w < 4; w++ {
		m := meanComputeTime(h, w, 2000)
		if math.Abs(m-0.5) > 0.02 {
			t.Fatalf("worker %d mean %v, want ~0.5", w, m)
		}
	}
	if h.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestHomogeneousNoJitterIsExact(t *testing.T) {
	h := NewHomogeneous(2, 0.3, 0, 1)
	for i := 0; i < 10; i++ {
		if h.ComputeTime(0, 0) != 0.3 {
			t.Fatal("zero jitter should give exact base")
		}
	}
}

func TestHomogeneousDeterminism(t *testing.T) {
	a := NewHomogeneous(3, 0.5, 0.1, 7)
	b := NewHomogeneous(3, 0.5, 0.1, 7)
	for i := 0; i < 50; i++ {
		for w := 0; w < 3; w++ {
			if a.ComputeTime(w, 0) != b.ComputeTime(w, 0) {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestGPUSharingSlowdown(t *testing.T) {
	g := NewGPUSharing(8, 3, 0.4, 0.05, 2)
	shared := meanComputeTime(g, 0, 2000)
	solo := meanComputeTime(g, 5, 2000)
	// Expected ratio: IdleChance at solo speed, the rest at 1.9x.
	want := g.IdleChance + (1-g.IdleChance)*(1+0.45*2)
	ratio := shared / solo
	if math.Abs(ratio-want) > 0.15 {
		t.Fatalf("shared/solo ratio %v, want ~%v (HL=3)", ratio, want)
	}
	if g.Name() != "gpu-sharing(HL=3)" {
		t.Fatalf("name %q", g.Name())
	}
}

func TestGPUSharingHL1IsHomogeneous(t *testing.T) {
	g := NewGPUSharing(4, 1, 0.4, 0.05, 3)
	for w := 0; w < 4; w++ {
		m := meanComputeTime(g, w, 2000)
		if math.Abs(m-0.4) > 0.02 {
			t.Fatalf("HL=1 worker %d mean %v, want ~0.4", w, m)
		}
	}
}

func TestGPUSharingValidation(t *testing.T) {
	for _, hl := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HL=%d: expected panic", hl)
				}
			}()
			NewGPUSharing(8, hl, 0.4, 0.05, 1)
		}()
	}
}

func TestTraceRegimes(t *testing.T) {
	tr := NewTrace(4, 0.2, 5)
	// Sampling across a long horizon must hit slow regimes: the max observed
	// slowdown should exceed 4x base and the mean should exceed base.
	var maxT, sum float64
	n := 0
	for now := 0.0; now < 5000; now += 1.0 {
		ct := tr.ComputeTime(1, now)
		if ct > maxT {
			maxT = ct
		}
		sum += ct
		n++
	}
	mean := sum / float64(n)
	if maxT < 0.2*4 {
		t.Fatalf("max compute time %v never hit a slow regime", maxT)
	}
	if mean < 0.2*1.2 {
		t.Fatalf("mean %v too close to base; regimes not applied", mean)
	}
	if tr.Name() != "production-trace" {
		t.Fatalf("name %q", tr.Name())
	}
}

func TestTraceMonotoneTimeAdvance(t *testing.T) {
	// Queries at increasing times must not panic and must keep the regime
	// machinery consistent even with large jumps.
	tr := NewTrace(2, 0.1, 9)
	times := []float64{0, 0.5, 100, 100.1, 5000}
	for _, now := range times {
		if ct := tr.ComputeTime(0, now); ct <= 0 {
			t.Fatalf("non-positive compute time %v at %v", ct, now)
		}
	}
}

func TestTraceWorkersIndependent(t *testing.T) {
	tr := NewTrace(2, 0.1, 11)
	same := true
	for now := 0.0; now < 200; now += 1 {
		if tr.ComputeTime(0, now) != tr.ComputeTime(1, now) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two workers produced identical traces")
	}
}

func TestFixed(t *testing.T) {
	f := &Fixed{Base: 0.5, Multipliers: []float64{1, 2, 1}}
	if f.ComputeTime(1, 0) != 1.0 {
		t.Fatalf("fixed worker 1: %v", f.ComputeTime(1, 0))
	}
	if f.ComputeTime(0, 99) != 0.5 {
		t.Fatalf("fixed worker 0: %v", f.ComputeTime(0, 99))
	}
	if f.Name() != "fixed" {
		t.Fatalf("name %q", f.Name())
	}
}

func TestLognormalMeanOne(t *testing.T) {
	rng := workerStreams(1, 42)[0]
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += lognormal(rng, 0.3)
	}
	if m := sum / n; math.Abs(m-1) > 0.02 {
		t.Fatalf("lognormal mean %v, want ~1", m)
	}
	if lognormal(rng, 0) != 1 {
		t.Fatal("sigma=0 must return exactly 1")
	}
}
