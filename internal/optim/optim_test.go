package optim

import (
	"math"
	"testing"

	"partialreduce/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LR: 0},
		{LR: -1},
		{LR: 0.1, Momentum: 1},
		{LR: 0.1, Momentum: -0.1},
		{LR: 0.1, WeightDecay: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
	if err := Paper().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
}

func TestPlainSGDStep(t *testing.T) {
	o := NewSGD(Config{LR: 0.5}, 2)
	p := tensor.Vector{1, 2}
	g := tensor.Vector{2, -2}
	o.Update(p, g, 1)
	if p[0] != 0 || p[1] != 3 {
		t.Fatalf("plain step: got %v", p)
	}
	if o.Step() != 1 {
		t.Fatalf("step count %d", o.Step())
	}
}

func TestMomentumAccumulates(t *testing.T) {
	o := NewSGD(Config{LR: 1, Momentum: 0.5}, 1)
	p := tensor.Vector{0}
	g := tensor.Vector{1}
	o.Update(p, g, 1) // v=1, p=-1
	o.Update(p, g, 1) // v=1.5, p=-2.5
	if math.Abs(p[0]-(-2.5)) > 1e-12 {
		t.Fatalf("momentum: got %v want -2.5", p[0])
	}
}

func TestWeightDecay(t *testing.T) {
	o := NewSGD(Config{LR: 1, WeightDecay: 0.1}, 1)
	p := tensor.Vector{10}
	g := tensor.Vector{0}
	o.Update(p, g, 1) // effective grad = 0 + 0.1*10 = 1
	if math.Abs(p[0]-9) > 1e-12 {
		t.Fatalf("weight decay: got %v want 9", p[0])
	}
}

func TestScaleAffectsSingleUpdate(t *testing.T) {
	o := NewSGD(Config{LR: 1}, 1)
	p := tensor.Vector{0}
	o.Update(p, tensor.Vector{1}, 0.25)
	if p[0] != -0.25 {
		t.Fatalf("scaled update: got %v", p[0])
	}
	o.Update(p, tensor.Vector{1}, 1)
	if p[0] != -1.25 {
		t.Fatalf("followup update: got %v", p[0])
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Every: 10, Factor: 0.1}
	cases := map[int]float64{0: 1, 9: 1, 10: 0.1, 19: 0.1, 20: 0.01}
	for step, want := range cases {
		if got := s.Multiplier(step); math.Abs(got-want) > 1e-15 {
			t.Errorf("Multiplier(%d)=%v want %v", step, got, want)
		}
	}
	if (StepDecay{Every: 0, Factor: 0.1}).Multiplier(100) != 1 {
		t.Error("Every=0 should disable decay")
	}
}

func TestScheduledLR(t *testing.T) {
	o := NewSGD(Config{LR: 0.1, Schedule: StepDecay{Every: 2, Factor: 0.5}}, 1)
	p := tensor.Vector{0}
	g := tensor.Vector{1}
	if o.LR() != 0.1 {
		t.Fatalf("initial LR %v", o.LR())
	}
	o.Update(p, g, 1)
	o.Update(p, g, 1)
	if math.Abs(o.LR()-0.05) > 1e-15 {
		t.Fatalf("LR after 2 steps %v, want 0.05", o.LR())
	}
}

func TestResetAndClone(t *testing.T) {
	o := NewSGD(Config{LR: 1, Momentum: 0.9}, 2)
	p := tensor.Vector{0, 0}
	o.Update(p, tensor.Vector{1, 1}, 1)
	c := o.Clone()
	if c.Step() != 1 {
		t.Fatal("clone lost step count")
	}
	o.Reset()
	if o.Step() != 0 || o.velocity.NormInf() != 0 {
		t.Fatal("reset incomplete")
	}
	if c.velocity.NormInf() == 0 {
		t.Fatal("reset leaked into clone")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	o := NewSGD(Config{LR: 1}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched sizes")
		}
	}()
	o.Update(tensor.Vector{1}, tensor.Vector{1, 2}, 1)
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid config")
		}
	}()
	NewSGD(Config{LR: -1}, 1)
}

// Momentum SGD on a quadratic must converge to the minimum.
func TestQuadraticConvergence(t *testing.T) {
	o := NewSGD(Config{LR: 0.1, Momentum: 0.9}, 1)
	p := tensor.Vector{5}
	g := tensor.NewVector(1)
	for k := 0; k < 500; k++ {
		g[0] = 2 * p[0] // d/dx x^2
		o.Update(p, g, 1)
	}
	if math.Abs(p[0]) > 1e-6 {
		t.Fatalf("did not converge: %v", p[0])
	}
}

func TestStateRestore(t *testing.T) {
	o := NewSGD(Config{LR: 1, Momentum: 0.9}, 2)
	o.Update(tensor.Vector{0, 0}, tensor.Vector{1, 2}, 1)
	vel, step := o.State()
	if step != 1 || vel[1] != 2 {
		t.Fatalf("state: %v %d", vel, step)
	}
	// State returns a copy.
	vel[0] = 99
	if v2, _ := o.State(); v2[0] == 99 {
		t.Fatal("State aliased internal buffer")
	}

	o2 := NewSGD(Config{LR: 1, Momentum: 0.9}, 2)
	if err := o2.Restore(tensor.Vector{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	// Restored optimizer continues identically to the original.
	p1, p2 := tensor.Vector{0, 0}, tensor.Vector{0, 0}
	o.Restore(tensor.Vector{1, 2}, 1)
	o.Update(p1, tensor.Vector{1, 1}, 1)
	o2.Update(p2, tensor.Vector{1, 1}, 1)
	if p1[0] != p2[0] || p1[1] != p2[1] {
		t.Fatalf("restored optimizer diverged: %v vs %v", p1, p2)
	}
	if err := o2.Restore(tensor.Vector{1}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := o2.Restore(nil, -1); err == nil {
		t.Fatal("negative step accepted")
	}
	if err := o2.Restore(nil, 0); err != nil {
		t.Fatal(err)
	}
	if v, s := o2.State(); s != 0 || v.NormInf() != 0 {
		t.Fatal("nil restore did not zero state")
	}
}
