// Package optim implements the optimizer used throughout the paper's
// evaluation: mini-batch SGD with Nesterov-free momentum, L2 weight decay,
// and a step-decay learning-rate schedule (the paper trains with lr 0.1,
// momentum 0.9, weight decay 1e-4, and for ImageNet decays the rate 10× every
// 20 epochs). A staleness-aware scaling hook supports the PS HETE baseline,
// which shrinks the learning rate for delayed gradients.
package optim

import (
	"fmt"

	"partialreduce/internal/tensor"
)

// Config describes an SGD optimizer.
type Config struct {
	LR          float64 // base learning rate
	Momentum    float64 // in [0,1)
	WeightDecay float64 // L2 coefficient applied to the gradient
	// Schedule optionally maps the update index to a multiplier on LR.
	// Nil means constant.
	Schedule Schedule
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.LR <= 0:
		return fmt.Errorf("optim: learning rate must be positive, got %v", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("optim: momentum must be in [0,1), got %v", c.Momentum)
	case c.WeightDecay < 0:
		return fmt.Errorf("optim: weight decay must be non-negative, got %v", c.WeightDecay)
	}
	return nil
}

// Paper returns the paper's SGD hyperparameters (§5.1).
func Paper() Config {
	return Config{LR: 0.1, Momentum: 0.9, WeightDecay: 1e-4}
}

// Schedule maps an update index to a learning-rate multiplier.
type Schedule interface {
	Multiplier(step int) float64
}

// StepDecay multiplies the rate by Factor every Every steps, the paper's
// ImageNet schedule ("start from 0.1 and decay by 10 every 20 epochs").
type StepDecay struct {
	Every  int     // steps between decays (> 0)
	Factor float64 // per-decay multiplier, e.g. 0.1
}

// Multiplier implements Schedule.
func (s StepDecay) Multiplier(step int) float64 {
	if s.Every <= 0 {
		return 1
	}
	m := 1.0
	for k := s.Every; k <= step; k += s.Every {
		m *= s.Factor
	}
	return m
}

// SGD applies momentum SGD updates to one model replica. Each worker owns an
// SGD instance; the velocity buffer is worker-local state, as in PyTorch DDP.
type SGD struct {
	cfg      Config
	velocity tensor.Vector
	step     int
}

// NewSGD returns an optimizer for a parameter vector of length n. It panics
// if cfg is invalid.
func NewSGD(cfg Config, n int) *SGD {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &SGD{cfg: cfg, velocity: tensor.NewVector(n)}
}

// Step returns the number of updates applied so far.
func (o *SGD) Step() int { return o.step }

// LR returns the learning rate the next update will use.
func (o *SGD) LR() float64 {
	lr := o.cfg.LR
	if o.cfg.Schedule != nil {
		lr *= o.cfg.Schedule.Multiplier(o.step)
	}
	return lr
}

// Update applies one SGD step: v ← μv + (g + λw); w ← w − lr·v.
// Scale multiplies the effective learning rate for this single update; the
// PS HETE baseline passes its staleness penalty here, all other strategies
// pass 1.
func (o *SGD) Update(params, grad tensor.Vector, scale float64) {
	if len(params) != len(o.velocity) || len(grad) != len(o.velocity) {
		panic(fmt.Sprintf("optim: size mismatch params=%d grad=%d velocity=%d",
			len(params), len(grad), len(o.velocity)))
	}
	lr := o.LR() * scale
	mu, wd := o.cfg.Momentum, o.cfg.WeightDecay
	for i := range params {
		g := grad[i] + wd*params[i]
		o.velocity[i] = mu*o.velocity[i] + g
		params[i] -= lr * o.velocity[i]
	}
	o.step++
}

// Reset zeroes the velocity and step counter.
func (o *SGD) Reset() {
	o.velocity.Zero()
	o.step = 0
}

// Clone returns an independent copy (velocity included), used when a worker
// replica is forked in tests.
func (o *SGD) Clone() *SGD {
	return &SGD{cfg: o.cfg, velocity: o.velocity.Clone(), step: o.step}
}

// State returns a copy of the optimizer's velocity buffer and its step
// counter, for checkpointing.
func (o *SGD) State() (velocity tensor.Vector, step int) {
	return o.velocity.Clone(), o.step
}

// Restore replaces the optimizer's velocity and step counter from a
// checkpoint. A nil velocity zeroes the buffer.
func (o *SGD) Restore(velocity tensor.Vector, step int) error {
	if step < 0 {
		return fmt.Errorf("optim: negative step %d", step)
	}
	if velocity == nil {
		o.velocity.Zero()
	} else {
		if len(velocity) != len(o.velocity) {
			return fmt.Errorf("optim: velocity length %d, want %d", len(velocity), len(o.velocity))
		}
		o.velocity.CopyFrom(velocity)
	}
	o.step = step
	return nil
}
