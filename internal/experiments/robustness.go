package experiments

import (
	"fmt"
	"io"

	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// RobustnessResult aggregates the headline comparison across seeds: the
// total-runtime speedup of dynamic partial reduce over All-Reduce on the
// heterogeneous CIFAR-10 cell, per seed.
type RobustnessResult struct {
	Seeds    []int64
	Speedups []float64 // aligned with Seeds; 0 when either side failed
	ARFail   int       // seeds where AR missed the threshold
	DYNFail  int       // seeds where DYN missed the threshold
}

// Robustness reruns the headline AR-vs-DYN comparison (ResNet-34/CIFAR-10,
// HL=3, N=8) across several seeds — dataset, initialization, and timing
// draws all change — and reports the per-seed speedups. The paper's claim
// band is 1.21×–2×.
func Robustness(opts Options, seeds int) (*RobustnessResult, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	out := &RobustnessResult{}

	type pair struct{ ar, dyn *metrics.Result }
	results := make([]pair, seeds)
	var jobs []job
	for i := 0; i < seeds; i++ {
		i := i
		seed := opts.Seed + int64(i)
		out.Seeds = append(out.Seeds, seed)
		cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: seed}
		jobs = append(jobs,
			job{cell: cell, strategy: "AR", store: func(r *metrics.Result) { results[i].ar = r }},
			job{cell: cell, strategy: "DYN P=3", store: func(r *metrics.Result) { results[i].dyn = r }},
		)
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	out.Speedups = make([]float64, seeds)
	for i, p := range results {
		if p.ar == nil || !p.ar.Converged {
			out.ARFail++
			continue
		}
		if p.dyn == nil || !p.dyn.Converged {
			out.DYNFail++
			continue
		}
		out.Speedups[i] = p.ar.RunTime / p.dyn.RunTime
	}
	return out, nil
}

// Format renders per-seed speedups and the min/mean/max band.
func (r *RobustnessResult) Format(w io.Writer) {
	fmt.Fprintf(w, "DYN P=3 total-runtime speedup over AR (ResNet-34/CIFAR-10, HL=3):\n")
	var sum, minV, maxV float64
	count := 0
	for i, s := range r.Speedups {
		if s == 0 {
			fmt.Fprintf(w, "  seed %-3d  (did not converge)\n", r.Seeds[i])
			continue
		}
		fmt.Fprintf(w, "  seed %-3d  %.2fx\n", r.Seeds[i], s)
		sum += s
		if count == 0 || s < minV {
			minV = s
		}
		if s > maxV {
			maxV = s
		}
		count++
	}
	if count > 0 {
		fmt.Fprintf(w, "band: min %.2fx  mean %.2fx  max %.2fx over %d seeds (paper: 1.21x-2x)\n",
			minV, sum/float64(count), maxV, count)
	}
}
