package experiments

import (
	"fmt"
	"io"

	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// RobustnessResult aggregates the headline comparison across seeds: the
// total-runtime speedup of dynamic partial reduce over All-Reduce on the
// heterogeneous CIFAR-10 cell, per seed.
type RobustnessResult struct {
	Seeds    []int64
	Speedups []float64 // aligned with Seeds; 0 when either side failed
	ARFail   int       // seeds where AR missed the threshold
	DYNFail  int       // seeds where DYN missed the threshold
}

// Robustness reruns the headline AR-vs-DYN comparison (ResNet-34/CIFAR-10,
// HL=3, N=8) across several seeds — dataset, initialization, and timing
// draws all change — and reports the per-seed speedups. The paper's claim
// band is 1.21×–2×.
func Robustness(opts Options, seeds int) (*RobustnessResult, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	out := &RobustnessResult{}

	type pair struct{ ar, dyn *metrics.Result }
	results := make([]pair, seeds)
	var jobs []job
	for i := 0; i < seeds; i++ {
		i := i
		seed := opts.Seed + int64(i)
		out.Seeds = append(out.Seeds, seed)
		cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: seed}
		jobs = append(jobs,
			job{cell: cell, strategy: "AR", store: func(r *metrics.Result) { results[i].ar = r }},
			job{cell: cell, strategy: "DYN P=3", store: func(r *metrics.Result) { results[i].dyn = r }},
		)
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	out.Speedups = make([]float64, seeds)
	for i, p := range results {
		if p.ar == nil || !p.ar.Converged {
			out.ARFail++
			continue
		}
		if p.dyn == nil || !p.dyn.Converged {
			out.DYNFail++
			continue
		}
		out.Speedups[i] = p.ar.RunTime / p.dyn.RunTime
	}
	return out, nil
}

// CrashSweepResult compares DYN P=3 against AR under deterministic
// fail-stop schedules of increasing crash rate (§4's fault-tolerance claim).
type CrashSweepResult struct {
	Rates        []float64
	Crashes      []int // scheduled crashes per rate
	DYNConverged []bool
	DYNAccuracy  []float64
	DYNTime      []float64 // virtual seconds to threshold (0 if missed)
	ARConverged  []bool
}

// RobustnessCrash sweeps crash rates on the headline heterogeneous cell
// (ResNet-34/CIFAR-10, HL=3, N=8). For each rate a seeded schedule is drawn
// once and replayed against both strategies, so the comparison is apples to
// apples: P-Reduce excludes the corpses and keeps training, while All-Reduce
// halts at the first fail-stop and is recorded as not converged. The whole
// sweep is a pure function of (opts.Seed, rates).
func RobustnessCrash(opts Options, rates []float64) (*CrashSweepResult, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("experiments: need at least one crash rate")
	}
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	// Crashes land inside the first ~40 batch-times. Both strategies need
	// several times that long to reach the threshold (AR pays ~2 batch-times
	// per round under HL=3, DYN ~100 partial reduces), so every scheduled
	// crash fires while training is still in progress: All-Reduce halts
	// mid-run while P-Reduce has to absorb the loss, not outrun it.
	horizon := w.Profile.BatchCompute * 40

	out := &CrashSweepResult{}
	type pair struct{ ar, dyn *metrics.Result }
	results := make([]pair, len(rates))
	var jobs []job
	for i, rate := range rates {
		i := i
		sched := hetero.RandomCrashes(8, rate, horizon, opts.Seed+int64(i)*101)
		out.Rates = append(out.Rates, rate)
		out.Crashes = append(out.Crashes, len(sched))
		cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: opts.Seed, Crashes: sched}
		jobs = append(jobs,
			job{cell: cell, strategy: "AR", store: func(r *metrics.Result) { results[i].ar = r }},
			job{cell: cell, strategy: "DYN P=3", store: func(r *metrics.Result) { results[i].dyn = r }},
		)
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	for _, p := range results {
		out.ARConverged = append(out.ARConverged, p.ar != nil && p.ar.Converged)
		dynOK := p.dyn != nil && p.dyn.Converged
		out.DYNConverged = append(out.DYNConverged, dynOK)
		acc, t := 0.0, 0.0
		if p.dyn != nil {
			acc = p.dyn.FinalAccuracy
			if dynOK {
				t = p.dyn.RunTime
			}
		}
		out.DYNAccuracy = append(out.DYNAccuracy, acc)
		out.DYNTime = append(out.DYNTime, t)
	}
	return out, nil
}

// Format renders the crash sweep as a table.
func (r *CrashSweepResult) Format(w io.Writer) {
	fmt.Fprintf(w, "crash-rate sweep (ResNet-34/CIFAR-10, HL=3, N=8):\n")
	fmt.Fprintf(w, "  %-6s %-8s %-12s %-10s %-10s %s\n",
		"rate", "crashes", "DYN P=3", "acc", "time(s)", "AR")
	for i := range r.Rates {
		dyn, ar := "missed", "halted"
		if r.DYNConverged[i] {
			dyn = "converged"
		}
		if r.ARConverged[i] {
			ar = "converged"
		}
		fmt.Fprintf(w, "  %-6.2f %-8d %-12s %-10.3f %-10.0f %s\n",
			r.Rates[i], r.Crashes[i], dyn, r.DYNAccuracy[i], r.DYNTime[i], ar)
	}
}

// Format renders per-seed speedups and the min/mean/max band.
func (r *RobustnessResult) Format(w io.Writer) {
	fmt.Fprintf(w, "DYN P=3 total-runtime speedup over AR (ResNet-34/CIFAR-10, HL=3):\n")
	var sum, minV, maxV float64
	count := 0
	for i, s := range r.Speedups {
		if s == 0 {
			fmt.Fprintf(w, "  seed %-3d  (did not converge)\n", r.Seeds[i])
			continue
		}
		fmt.Fprintf(w, "  seed %-3d  %.2fx\n", r.Seeds[i], s)
		sum += s
		if count == 0 || s < minV {
			minV = s
		}
		if s > maxV {
			maxV = s
		}
		count++
	}
	if count > 0 {
		fmt.Fprintf(w, "band: min %.2fx  mean %.2fx  max %.2fx over %d seeds (paper: 1.21x-2x)\n",
			minV, sum/float64(count), maxV, count)
	}
}
