package experiments

import (
	"fmt"
	"io"

	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// AdaptiveRow is one cell of the adaptive-policy sweep: static DYN P=4
// versus ADP P=4 (adaptive-p, bounds [2,4]) on the same seeds.
type AdaptiveRow struct {
	Label        string // "HL=0", "HL=2", "HL=3", "production"
	Seeds        []int64
	StaticTime   []float64 // virtual seconds to threshold; 0 when missed
	AdaptiveTime []float64
	StaticFail   int
	AdaptiveFail int
}

// Speedup returns static/adaptive mean time-to-threshold over the seeds
// where both sides converged (ok=false when no seed qualifies). A value
// above 1 means the adaptive policy was faster.
func (r *AdaptiveRow) Speedup() (float64, bool) {
	var s, a float64
	n := 0
	for i := range r.Seeds {
		if r.StaticTime[i] > 0 && r.AdaptiveTime[i] > 0 {
			s += r.StaticTime[i]
			a += r.AdaptiveTime[i]
			n++
		}
	}
	if n == 0 || a == 0 {
		return 0, false
	}
	return s / a, true
}

// AdaptiveSweepResult is the full static-vs-adaptive comparison, plus every
// raw run result for CSV export (Workload is rewritten to
// "<name>/<row>/seed<k>" so summary rows stay unique).
type AdaptiveSweepResult struct {
	Rows    []AdaptiveRow
	Results []*metrics.Result
}

// RobustnessAdaptive compares static dynamic-weight P-Reduce ("DYN P=4")
// against the adaptive-p formation policy ("ADP P=4", group-size bounds
// [2,4]) on ResNet-34/CIFAR-10 with N=8, across heterogeneity levels and a
// regime-switching production trace, over several seeds. The claim under
// test: shrinking groups when the signal-cadence dispersion is high buys
// time-to-threshold at HL>=2 without giving anything up in the
// near-homogeneous cell. The whole sweep is a pure function of
// (opts, seeds).
func RobustnessAdaptive(opts Options, seeds int) (*AdaptiveSweepResult, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	rows := []struct {
		label string
		env   EnvKind
		hl    int
	}{
		{"HL=0", EnvHL, 0}, // no accelerator sharing: the homogeneous control
		{"HL=2", EnvHL, 2},
		{"HL=3", EnvHL, 3},
		{"production", EnvProduction, 0},
	}

	out := &AdaptiveSweepResult{}
	type pair struct{ static, adaptive *metrics.Result }
	results := make([][]pair, len(rows))
	var jobs []job
	for ri, row := range rows {
		ri := ri
		results[ri] = make([]pair, seeds)
		r := AdaptiveRow{Label: row.label}
		for i := 0; i < seeds; i++ {
			i := i
			seed := opts.Seed + int64(i)
			r.Seeds = append(r.Seeds, seed)
			cell := Cell{Workload: w, N: 8, Env: row.env, HL: row.hl, Seed: seed}
			jobs = append(jobs,
				job{cell: cell, strategy: "DYN P=4", store: func(res *metrics.Result) { results[ri][i].static = res }},
				job{cell: cell, strategy: "ADP P=4", store: func(res *metrics.Result) { results[ri][i].adaptive = res }},
			)
		}
		out.Rows = append(out.Rows, r)
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	for ri := range rows {
		r := &out.Rows[ri]
		r.StaticTime = make([]float64, seeds)
		r.AdaptiveTime = make([]float64, seeds)
		for i, p := range results[ri] {
			for _, side := range []struct {
				res  *metrics.Result
				time *float64
				fail *int
			}{
				{p.static, &r.StaticTime[i], &r.StaticFail},
				{p.adaptive, &r.AdaptiveTime[i], &r.AdaptiveFail},
			} {
				if side.res == nil {
					*side.fail++
					continue
				}
				// Uniquify the CSV key: one summary row per (strategy,
				// row, seed).
				side.res.Workload = fmt.Sprintf("%s/%s/seed%d", side.res.Workload, r.Label, r.Seeds[i])
				out.Results = append(out.Results, side.res)
				if side.res.Converged {
					*side.time = side.res.RunTime
				} else {
					*side.fail++
				}
			}
		}
	}
	return out, nil
}

// Format renders the sweep as a per-row table with the mean speedup band.
func (r *AdaptiveSweepResult) Format(w io.Writer) {
	fmt.Fprintf(w, "adaptive-p vs static P-Reduce (ResNet-34/CIFAR-10, N=8, DYN P=4 vs ADP P=4 [2,4]):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-10s", row.Label)
		for i := range row.Seeds {
			st, ad := row.StaticTime[i], row.AdaptiveTime[i]
			switch {
			case st == 0 || ad == 0:
				fmt.Fprintf(w, "  seed %d: n/a", row.Seeds[i])
			default:
				fmt.Fprintf(w, "  seed %d: %.0fs/%.0fs", row.Seeds[i], st, ad)
			}
		}
		if sp, ok := row.Speedup(); ok {
			fmt.Fprintf(w, "  mean speedup %.2fx", sp)
		}
		if row.StaticFail > 0 || row.AdaptiveFail > 0 {
			fmt.Fprintf(w, "  (missed: static %d, adaptive %d)", row.StaticFail, row.AdaptiveFail)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "times are static/adaptive virtual seconds to the accuracy threshold; >1x means adaptive is faster\n")
}
