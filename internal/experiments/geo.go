package experiments

import (
	"fmt"
	"io"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/core"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
)

// GeoResult compares strategies on a geo-distributed two-data-center
// cluster (the paper's communication-heterogeneity Case 1): inter-zone
// links are an order of magnitude slower than intra-zone ones.
type GeoResult struct {
	AR       *metrics.Result // All-Reduce: every ring spans both zones
	CON      *metrics.Result // plain P-Reduce: most random groups span zones
	Affinity *metrics.Result // zone-affinity P-Reduce: intra-zone groups,
	// with frozen-avoidance bridges carrying updates across
	Interventions int // cross-zone bridges forced by the group filter
}

// GeoStudy runs the geo-distributed comparison: VGG-19-class workload
// (communication-bound), 16 workers split across two zones, 10 GbE between
// zones versus the intra-zone fabric.
func GeoStudy(opts Options) (*GeoResult, error) {
	w := opts.workload(CIFAR10Workload(model.VGG19))
	topo := netmodel.GeoDistributed(16, 20e-3, 1.25e9)

	build := func(name string) (*cluster.Cluster, error) {
		cell := Cell{Workload: w, N: 16, Env: EnvHL, HL: 1, Seed: opts.Seed}
		cfg, err := cell.Build()
		if err != nil {
			return nil, err
		}
		cfg.Topology = topo
		return cluster.New(cfg, name)
	}

	out := &GeoResult{}

	c, err := build("AR")
	if err != nil {
		return nil, err
	}
	if out.AR, err = StrategyMust("AR").Run(c); err != nil {
		return nil, err
	}

	if c, err = build("CON P=4"); err != nil {
		return nil, err
	}
	if out.CON, err = StrategyMust("CON P=4").Run(c); err != nil {
		return nil, err
	}

	if c, err = build("CON P=4 +zone"); err != nil {
		return nil, err
	}
	affinity := core.NewPReduce(core.PReduceConfig{P: 4, ZoneAffinity: true,
		Weighting: controller.Constant})
	res, stats, err := affinity.RunWithStats(c)
	if err != nil {
		return nil, err
	}
	res.Strategy = "CON P=4 +zone"
	out.Affinity = res
	out.Interventions = stats.Interventions
	return out, nil
}

// StrategyMust resolves a known strategy name, panicking on typos — for
// experiment code whose names are compile-time constants.
func StrategyMust(name string) cluster.Strategy {
	s, err := StrategyFor(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Format renders the geo comparison.
func (g *GeoResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Two zones (8+8 workers), 20 ms / 1.25 GB/s between zones:\n")
	for _, r := range []*metrics.Result{g.AR, g.CON, g.Affinity} {
		fmt.Fprintf(w, "  %s\n", r)
	}
	if g.CON != nil && g.Affinity != nil && g.Affinity.RunTime > 0 {
		fmt.Fprintf(w, "zone affinity vs plain P-Reduce: %.2fx faster (%d forced cross-zone bridges)\n",
			g.CON.RunTime/g.Affinity.RunTime, g.Interventions)
	}
	if g.AR != nil && g.Affinity != nil && g.Affinity.RunTime > 0 {
		fmt.Fprintf(w, "zone affinity vs All-Reduce:    %.2fx faster\n", g.AR.RunTime/g.Affinity.RunTime)
	}
}

// AblationOverlap compares blocking and overlapped (pipelined) P-Reduce on
// the communication-bound VGG-19 profile at a fixed update budget, isolating
// how much group-communication time the pipelining hides.
func AblationOverlap(opts Options) (blocking, overlapped *metrics.Result, err error) {
	w := opts.workload(CIFAR10Workload(model.VGG19))
	run := func(overlap bool, name string) (*metrics.Result, error) {
		cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 1, Seed: opts.Seed}
		cfg, err := cell.Build()
		if err != nil {
			return nil, err
		}
		cfg.Threshold = 0.999 // run to the budget: compare pace
		cfg.MaxUpdates = 1200
		c, err := cluster.New(cfg, name)
		if err != nil {
			return nil, err
		}
		res, err := core.NewPReduce(core.PReduceConfig{P: 3, Overlap: overlap}).Run(c)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	if blocking, err = run(false, "CON P=3"); err != nil {
		return nil, nil, err
	}
	if overlapped, err = run(true, "CON+OV P=3"); err != nil {
		return nil, nil, err
	}
	return blocking, overlapped, nil
}
