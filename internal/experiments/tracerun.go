package experiments

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/core"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// TracedRun executes one representative P-Reduce simulation with the
// virtual-clock tracer enabled and returns both the run's result and the
// cluster (whose Tracer/Ins fields hold the recorded events and
// instruments). It backs `preduce-bench -trace`: a ResNet-34/CIFAR-10 cell
// on the production heterogeneity trace with the consistent strategy at
// P=4 — the paper's headline configuration — small enough to trace in
// seconds yet busy enough to exercise every span kind.
//
// traceCap sizes the event ring (negative selects trace.DefaultCapacity).
// The run is fully deterministic in opts.Seed: a same-seed replay records a
// byte-identical trace (see TestTracedRunDeterministic).
func TracedRun(opts Options, traceCap int) (*metrics.Result, *cluster.Cluster, error) {
	if traceCap == 0 {
		traceCap = -1
	}
	cell := Cell{
		Workload: opts.workload(CIFAR10Workload(model.ResNet34)),
		N:        8,
		Env:      EnvProduction,
		Seed:     opts.Seed,
	}
	strategy := "CON P=4"
	s, err := StrategyFor(strategy)
	if err != nil {
		return nil, nil, err
	}
	if pr, ok := s.(*core.PReduce); ok && opts.Policy.Enabled() {
		s = pr.WithPolicy(opts.Policy)
	}
	cfg, err := cell.Build()
	if err != nil {
		return nil, nil, err
	}
	cfg.TraceCap = traceCap
	c, err := cluster.New(cfg, strategy)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Run(c)
	if err != nil {
		return nil, nil, err
	}
	return res, c, nil
}
