package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"partialreduce/internal/model"
)

var quick = Options{Seed: 1, Quick: true}

func TestStrategyFor(t *testing.T) {
	known := []string{
		"AR", "ER", "AD", "PS BSP", "PS ASP", "PS HETE", "PS BK-3",
		"CON P=3", "DYN P=5",
	}
	for _, name := range known {
		s, err := StrategyFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(s.Name(), strings.Split(name, "-")[0][:2]) {
			t.Fatalf("%s resolved to %s", name, s.Name())
		}
	}
	for _, bad := range []string{"", "XX", "CON", "CON P=x", "PS"} {
		if _, err := StrategyFor(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestWorkloadPresets(t *testing.T) {
	for _, w := range []Workload{
		CIFAR10Workload(mustProfile(t, "resnet34")),
		CIFAR100Workload(mustProfile(t, "resnet34")),
		ImageNetWorkload(mustProfile(t, "resnet18")),
	} {
		cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 1, Seed: 1}
		cfg, err := cell.Build()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
	q := CIFAR10Workload(mustProfile(t, "vgg19")).Quick()
	if q.Threshold >= 0.90 || q.MaxUpdates >= 60_000 {
		t.Fatalf("Quick did not shrink: %+v", q)
	}
}

func TestCellEnvironments(t *testing.T) {
	w := CIFAR10Workload(mustProfile(t, "resnet34"))
	prod := Cell{Workload: w, N: 4, Env: EnvProduction, Seed: 1}
	cfg, err := prod.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hetero.Name() != "production-trace" {
		t.Fatalf("production env built %q", cfg.Hetero.Name())
	}
	if prod.envString() != "production" {
		t.Fatalf("envString: %q", prod.envString())
	}
	hl := Cell{Workload: w, N: 4, Env: EnvHL, HL: 2, Seed: 1}
	cfg, err = hl.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hetero.Name() != "gpu-sharing(HL=2)" {
		t.Fatalf("HL env built %q", cfg.Hetero.Name())
	}
}

// Fig. 4: analytic rho values are exact; the simulated run must land close.
func TestFig4(t *testing.T) {
	res, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if math.Abs(res.Rows[0].AnalyticRho-0.5) > 1e-9 {
		t.Fatalf("homogeneous analytic rho %v", res.Rows[0].AnalyticRho)
	}
	if math.Abs(res.Rows[1].AnalyticRho-0.625) > 1e-9 {
		t.Fatalf("heterogeneous analytic rho %v", res.Rows[1].AnalyticRho)
	}
	if math.Abs(res.Rows[0].EmpiricalRho-0.5) > 0.08 {
		t.Fatalf("homogeneous empirical rho %v", res.Rows[0].EmpiricalRho)
	}
	if res.Rows[1].EmpiricalRho <= res.Rows[0].EmpiricalRho {
		t.Fatalf("heterogeneity did not raise empirical rho: %+v", res.Rows)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "rho") {
		t.Fatal("Format produced no output")
	}
}

// Fig. 8: per-update time grows with P and #updates shrinks.
func TestFig8Shapes(t *testing.T) {
	res, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PerUpdate <= res.Rows[i-1].PerUpdate {
			t.Fatalf("per-update not increasing at P=%d: %+v", res.Rows[i].P, res.Rows)
		}
	}
	if res.Rows[len(res.Rows)-1].Updates > res.Rows[0].Updates {
		t.Fatalf("updates did not shrink from P=2 to P=8: %+v", res.Rows)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "per-update") {
		t.Fatal("Format produced no output")
	}
}

// Fig. 7(a): curves exist for every strategy, accuracies are monotone-ish
// (final >= first), and P-Reduce converges.
func TestFig7a(t *testing.T) {
	cs, err := Fig7a(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cs.Order {
		pts := cs.Series[name]
		if len(pts) == 0 {
			t.Fatalf("%s: empty curve", name)
		}
		if last := pts[len(pts)-1]; last.Accuracy < pts[0].Accuracy {
			t.Fatalf("%s: accuracy decreased overall (%v -> %v)", name, pts[0].Accuracy, last.Accuracy)
		}
	}
	for _, name := range []string{"CON P=3", "DYN P=3"} {
		if !cs.Final[name].Converged {
			t.Fatalf("%s did not converge: %+v", name, cs.Final[name])
		}
	}
	var buf bytes.Buffer
	cs.Format(&buf)
	if !strings.Contains(buf.String(), "Fig 7(a)") {
		t.Fatal("Format produced no output")
	}
}

// Fig. 9: partial reduce beats All-Reduce on the production trace, both per
// update and in total run time — the paper's headline production result.
func TestFig9Speedups(t *testing.T) {
	res, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CON.Converged || !res.DYN.Converged || !res.AR.Converged {
		t.Fatalf("not converged: %+v %+v %+v", res.AR, res.CON, res.DYN)
	}
	if res.AR.PerUpdate() <= 3*res.DYN.PerUpdate() {
		t.Fatalf("per-update speedup too small: AR %v vs DYN %v", res.AR.PerUpdate(), res.DYN.PerUpdate())
	}
	if res.AR.RunTime <= 1.2*res.DYN.RunTime {
		t.Fatalf("total speedup too small: AR %v vs DYN %v", res.AR.RunTime, res.DYN.RunTime)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("Format produced no output")
	}
}

// Table 1 (one block in quick mode, exercised fully by the bench harness):
// shapes on the ResNet-34 block.
func TestTable1ResNetBlock(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 block is expensive")
	}
	res, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 3 {
		t.Fatalf("blocks: %d", len(res.Blocks))
	}
	blk := res.Blocks[0]
	for _, hl := range blk.HLs {
		ar := blk.Cells[hl]["AR"]
		con := blk.Cells[hl]["CON P=3"]
		if ar == nil || con == nil || !ar.Converged || !con.Converged {
			t.Fatalf("HL=%d: AR/CON missing or unconverged: %+v %+v", hl, ar, con)
		}
		// Hardware efficiency: P-Reduce updates are much cheaper than AR's.
		if con.PerUpdate() >= ar.PerUpdate() {
			t.Fatalf("HL=%d: CON per-update %v !< AR %v", hl, con.PerUpdate(), ar.PerUpdate())
		}
		// Statistical efficiency: partial synchronization needs more updates.
		if con.Updates <= ar.Updates {
			t.Fatalf("HL=%d: CON updates %d !> AR %d", hl, con.Updates, ar.Updates)
		}
	}
	// Heterogeneity widens AR's per-update time but barely moves P-Reduce's.
	arInflation := blk.Cells[3]["AR"].PerUpdate() / blk.Cells[1]["AR"].PerUpdate()
	conInflation := blk.Cells[3]["CON P=3"].PerUpdate() / blk.Cells[1]["CON P=3"].PerUpdate()
	if arInflation <= conInflation {
		t.Fatalf("heterogeneity tolerance inverted: AR x%v vs CON x%v", arInflation, conInflation)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "resnet34") {
		t.Fatal("Format produced no output")
	}
	if name, best := res.Best("resnet34", 3); name == "" || best == nil {
		t.Fatal("Best found nothing")
	}
}

func TestAblationWeights(t *testing.T) {
	res, err := AblationWeights(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Constant.Converged || !res.DynamicClosest.Converged {
		t.Fatalf("ablation runs unconverged: %+v %+v", res.Constant, res.DynamicClosest)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "dyn/closest") {
		t.Fatal("Format produced no output")
	}
}

// The group filter must keep the worst replica close to the best when FIFO
// grouping would otherwise freeze two sub-clusters.
func TestAblationGroupFilter(t *testing.T) {
	res, err := AblationGroupFilter(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interventions == 0 {
		t.Fatal("filter never intervened in the adversarial setting")
	}
	if res.BridgingWith == 0 {
		t.Fatal("no bridging groups with the filter enabled")
	}
	if res.BridgingWithout != 0 {
		t.Fatalf("bridging groups appeared with the filter disabled: %d", res.BridgingWithout)
	}
	if res.WithFilter <= res.WithoutFilter {
		t.Fatalf("filter did not improve the worst replica: with=%v without=%v",
			res.WithFilter, res.WithoutFilter)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "worst replica") {
		t.Fatal("Format produced no output")
	}
}

func mustProfile(t *testing.T, name string) model.Profile {
	t.Helper()
	prof, err := model.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// Geo study: zone-affinity P-Reduce beats both plain P-Reduce and AR when
// inter-zone links are slow; bridges still fire so zones stay coupled.
func TestGeoStudy(t *testing.T) {
	res, err := GeoStudy(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Affinity.Converged {
		t.Fatalf("affinity run did not converge: %+v", res.Affinity)
	}
	if res.Affinity.RunTime >= res.CON.RunTime {
		t.Fatalf("zone affinity (%.0fs) not faster than plain P-Reduce (%.0fs)",
			res.Affinity.RunTime, res.CON.RunTime)
	}
	if res.Affinity.RunTime >= res.AR.RunTime {
		t.Fatalf("zone affinity (%.0fs) not faster than AR (%.0fs)",
			res.Affinity.RunTime, res.AR.RunTime)
	}
	if res.Interventions == 0 {
		t.Fatal("no cross-zone bridges: zones trained in isolation")
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "zone affinity") {
		t.Fatal("Format produced no output")
	}
}

// Crash-rate sweep: DYN P=3 keeps converging under fail-stops that halt
// All-Reduce (§4's asymmetry, simulated end to end).
func TestRobustnessCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is expensive")
	}
	res, err := RobustnessCrash(quick, []float64{0, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes[0] != 0 {
		t.Fatalf("rate 0 scheduled %d crashes", res.Crashes[0])
	}
	if res.Crashes[1] == 0 {
		t.Fatal("rate 0.45 scheduled no crashes; pick a different seed offset")
	}
	for i := range res.Rates {
		if !res.DYNConverged[i] {
			t.Fatalf("DYN P=3 missed the threshold at rate %v: %+v", res.Rates[i], res)
		}
		wantAR := res.Crashes[i] == 0
		if res.ARConverged[i] != wantAR {
			t.Fatalf("AR converged=%v with %d crashes", res.ARConverged[i], res.Crashes[i])
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "crash-rate sweep") {
		t.Fatal("Format produced no output")
	}
}

// The headline speedup holds across seeds, not just seed 1.
func TestRobustnessAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is expensive")
	}
	res, err := Robustness(quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	converged := 0
	for _, s := range res.Speedups {
		if s > 0 {
			converged++
			if s < 1.0 {
				t.Fatalf("a seed inverted the speedup: %+v", res.Speedups)
			}
		}
	}
	if converged < 3 {
		t.Fatalf("too few converged seeds: %+v (AR fail %d, DYN fail %d)",
			res.Speedups, res.ARFail, res.DYNFail)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "band:") {
		t.Fatal("Format produced no output")
	}
}
