// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5), plus the ablations DESIGN.md calls out. Each
// runner builds the workload (dataset substitute, proxy model, CNN cost
// profile), sweeps the paper's parameter grid across strategies, and formats
// rows/series in the paper's layout. Cells run in parallel; each cell is an
// independent deterministic simulation.
package experiments

import (
	"fmt"

	"partialreduce/internal/cluster"
	"partialreduce/internal/data"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
)

// Workload pairs a dataset substitute with a proxy model and a paper CNN's
// cost profile, and carries the experiment's convergence threshold.
type Workload struct {
	Name      string // e.g. "ResNet-34/CIFAR-10"
	Profile   model.Profile
	Spec      model.Spec
	Dataset   func(seed int64) (*data.Dataset, error)
	Threshold float64
	BatchSize int
	Optimizer optim.Config
	EvalEvery int
	// MaxUpdates/MaxTime bound runs that never reach the threshold (how ER's
	// N/A cells arise).
	MaxUpdates int
	MaxTime    float64
	// TestCap subsamples the held-out set to bound evaluation cost
	// (0 = use all).
	TestCap int
	// LabelNoise corrupts this fraction of training labels. It injects the
	// irreducible gradient variance real image datasets have — without it,
	// single stale gradients are as informative as averaged fresh ones and
	// every asynchronous baseline is unrealistically sample-efficient.
	LabelNoise float64
}

// Quick shrinks the statistical work for smoke tests and benchmarks: a
// looser threshold and a halved update budget, preserving every comparative
// shape.
func (w Workload) Quick() Workload {
	w.Threshold *= 0.92
	w.MaxUpdates /= 2
	return w
}

// CIFAR10Workload returns the named CNN profile on the CIFAR-10 substitute
// (10-class mixture, 90% threshold as in §5.1).
func CIFAR10Workload(profile model.Profile) Workload {
	return Workload{
		Name:       profile.Name + "/cifar10",
		Profile:    profile,
		Spec:       model.Spec{Inputs: 32, Hidden: []int{24}, Classes: 10},
		Dataset:    data.CIFAR10Sub,
		Threshold:  0.90,
		BatchSize:  16,
		Optimizer:  optim.Config{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		EvalEvery:  20,
		MaxUpdates: 24_000,
		MaxTime:    2e6,
		LabelNoise: 0.12,
	}
}

// CIFAR100Workload returns the named profile on the CIFAR-100 substitute
// (100-class mixture, 70% threshold as in §5.1).
func CIFAR100Workload(profile model.Profile) Workload {
	return Workload{
		Name:       profile.Name + "/cifar100",
		Profile:    profile,
		Spec:       model.Spec{Inputs: 64, Hidden: []int{48}, Classes: 100},
		Dataset:    data.CIFAR100Sub,
		Threshold:  0.70,
		BatchSize:  24,
		Optimizer:  optim.Config{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		EvalEvery:  50,
		MaxUpdates: 24_000,
		MaxTime:    2e6,
		TestCap:    1500,
		LabelNoise: 0.12,
	}
}

// ImageNetWorkload returns the named profile on the ImageNet substitute
// (1000-class mixture) with the paper's step-decay schedule.
func ImageNetWorkload(profile model.Profile) Workload {
	return Workload{
		Name:      profile.Name + "/imagenet",
		Profile:   profile,
		Spec:      model.Spec{Inputs: 96, Hidden: []int{48}, Classes: 300},
		Dataset:   data.ImageNetSub,
		Threshold: 0.52,
		BatchSize: 32,
		Optimizer: optim.Config{
			LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
			Schedule: optim.StepDecay{Every: 2500, Factor: 0.1},
		},
		EvalEvery:  100,
		MaxUpdates: 8_000,
		MaxTime:    5e6,
		TestCap:    1000,
		LabelNoise: 0.10,
	}
}

// EnvKind selects the heterogeneity environment of a cell.
type EnvKind int

const (
	// EnvHL is the synthetic GPU-sharing environment of §5.2 at a given
	// heterogeneity level.
	EnvHL EnvKind = iota
	// EnvProduction is the regime-switching shared-cluster trace of §5.3.
	EnvProduction
)

// Cell fully describes one simulation run.
type Cell struct {
	Workload Workload
	N        int
	Env      EnvKind
	HL       int // used when Env == EnvHL
	Seed     int64
	// Crashes is an optional deterministic fail-stop schedule (§4); the same
	// schedule replays identically across strategies and repeated runs.
	Crashes hetero.CrashSchedule
	// Partitions is an optional deterministic timed network-partition
	// schedule; Retry models the bounded-wait recovery policy applied when a
	// group straddles an active partition (zero value: single attempt).
	Partitions hetero.PartitionSchedule
	Retry      cluster.RetryModel
	// Initial and Elastic make the cell's membership elastic: only ranks
	// [0, Initial) train from the start (0: all N), and Elastic joins and
	// drains fire on the applied-update count mid-run.
	Initial int
	Elastic hetero.ElasticSchedule
}

// Build constructs the cluster config for the cell.
func (c Cell) Build() (cluster.Config, error) {
	ds, err := c.Workload.Dataset(c.Seed)
	if err != nil {
		return cluster.Config{}, err
	}
	train, test := ds.Split(0.8)
	train.CorruptLabels(c.Workload.LabelNoise, c.Seed+7)
	if cap := c.Workload.TestCap; cap > 0 && test.Len() > cap {
		test, _ = test.Split(float64(cap) / float64(test.Len()))
	}
	var h hetero.Model
	switch c.Env {
	case EnvProduction:
		h = hetero.NewTrace(c.N, c.Workload.Profile.BatchCompute, c.Seed+1)
	default:
		hl := c.HL
		if hl < 1 {
			hl = 1
		}
		// Jitter 0.15 matches real per-batch variance on shared hosts and
		// desynchronizes worker arrivals, so P-Reduce groups form without
		// phase-locked queue waits (the regime the paper measures).
		h = hetero.NewGPUSharing(c.N, hl, c.Workload.Profile.BatchCompute, 0.15, c.Seed+1)
	}
	return cluster.Config{
		N:          c.N,
		Spec:       c.Workload.Spec,
		Seed:       c.Seed,
		Train:      train,
		Test:       test,
		BatchSize:  c.Workload.BatchSize,
		Optimizer:  c.Workload.Optimizer,
		Profile:    c.Workload.Profile,
		Hetero:     h,
		Net:        netmodel.Default(),
		Threshold:  c.Workload.Threshold,
		EvalEvery:  c.Workload.EvalEvery,
		MaxUpdates: c.Workload.MaxUpdates,
		MaxTime:    c.Workload.MaxTime,
		Crashes:    c.Crashes,
		Partitions: c.Partitions,
		Retry:      c.Retry,
		Initial:    c.Initial,
		Elastic:    c.Elastic,
	}, nil
}

// envString names the environment for output.
func (c Cell) envString() string {
	if c.Env == EnvProduction {
		return "production"
	}
	return fmt.Sprintf("HL=%d", c.HL)
}
