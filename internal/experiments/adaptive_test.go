package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/core"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/policy"
	"partialreduce/internal/trace"
)

// runAdaptiveTraced runs one quick adaptive-p cell with tracing enabled.
// restartEvery > 0 warm-restarts the controller (Snapshot→Restore, policy
// state riding the blob) every that-many dispatched groups.
func runAdaptiveTraced(t *testing.T, seed int64, restartEvery int) (*metrics.Result, *cluster.Cluster) {
	t.Helper()
	opts := Options{Seed: seed, Quick: true}
	cell := Cell{
		Workload: opts.workload(CIFAR10Workload(model.ResNet34)),
		N:        8, Env: EnvHL, HL: 2, Seed: seed,
	}
	cfg, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceCap = 1 << 15
	c, err := cluster.New(cfg, "ADP P=4")
	if err != nil {
		t.Fatal(err)
	}
	strat := core.NewPReduce(core.PReduceConfig{
		P: 4, Weighting: controller.Dynamic, Approx: controller.ClosestIteration,
		Policy:           policy.Spec{Name: policy.NameAdaptiveP, PMin: 2, PMax: 4},
		CtrlRestartEvery: restartEvery,
	})
	res, err := strat.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return res, c
}

// TestAdaptiveSeedReplayDeterministic is the satellite-2 replay pin: two
// same-seed adaptive-p runs — each warm-restarting the controller mid-run
// — export byte-identical summary CSV and trace JSONL. Any
// non-determinism in the policy (map iteration, wall clocks, lossy
// snapshot state) would diverge the group stream and break this.
func TestAdaptiveSeedReplayDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		res, c := runAdaptiveTraced(t, 3, 5)
		events := c.Tracer.Events()
		if len(events) == 0 {
			t.Fatal("no trace events")
		}
		var csv, jsonl bytes.Buffer
		if err := metrics.WriteSummaryCSV(&csv, res); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteJSONL(&jsonl, events); err != nil {
			t.Fatal(err)
		}
		return csv.Bytes(), jsonl.Bytes()
	}
	c1, j1 := run()
	c2, j2 := run()
	if !bytes.Equal(c1, c2) {
		t.Fatalf("same-seed adaptive runs wrote different summary CSVs:\n%s\nvs\n%s", c1, c2)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("same-seed adaptive runs exported different JSONL traces")
	}
}

// TestAdaptiveSurvivesWarmRestore pins that a mid-run controller warm
// restore is invisible to training: the run with periodic
// Snapshot→Restore cycles produces exactly the result of the run without
// them. If any adaptive-policy state (group-size controller, cadence
// EMAs) were lost or approximated across the restore, the group stream —
// and with it the result — would diverge.
func TestAdaptiveSurvivesWarmRestore(t *testing.T) {
	plain, _ := runAdaptiveTraced(t, 4, 0)
	restarted, c := runAdaptiveTraced(t, 4, 5)

	restores := 0
	for _, ev := range c.Tracer.Events() {
		if ev.Kind == trace.KCtrlRestore {
			restores++
		}
	}
	if restores == 0 {
		t.Fatal("restart harness never fired (CtrlRestartEvery ignored)")
	}
	if !reflect.DeepEqual(plain, restarted) {
		t.Fatalf("warm restores changed the training result:\n  plain:     %+v\n  restarted: %+v",
			plain, restarted)
	}
}

// TestAdaptiveDecisionsDeviate sanity-checks that the adaptive policy
// actually does something on a heterogeneous cell: at HL=2 the cadence
// dispersion crosses the shrink threshold, so at least one formed group
// must be smaller than the configured P, and the deviation counter must
// be nonzero.
func TestAdaptiveDecisionsDeviate(t *testing.T) {
	_, c := runAdaptiveTraced(t, 1, 0)
	deviations := 0
	smaller := false
	for _, ev := range c.Tracer.Events() {
		switch ev.Kind {
		case trace.KPolicyDecision:
			deviations++
		case trace.KGroupFormed:
			if ev.B < 4 && ev.B >= 2 {
				smaller = true
			}
		}
	}
	if deviations == 0 {
		t.Fatal("adaptive-p never deviated from static on an HL=2 cell")
	}
	if !smaller {
		t.Fatal("no group smaller than the configured P was formed")
	}
	if snap := c.Ins.Snapshot(); snap.PolicyDeviations == 0 {
		t.Fatal("instruments did not count the policy deviations")
	}
}

// TestStaticPolicyMatchesBaselineResult is the end-to-end half of the
// metamorphic golden test: retrofitting the static policy via
// Options.Policy (the -policy flag path) onto a DYN run reproduces the
// policy-free result exactly.
func TestStaticPolicyMatchesBaselineResult(t *testing.T) {
	cell := Cell{
		Workload: Options{Quick: true}.workload(CIFAR10Workload(model.ResNet34)),
		N:        8, Env: EnvHL, HL: 2, Seed: 2,
	}
	base, err := runCell(Options{Seed: 2, Quick: true}, cell, "DYN P=4")
	if err != nil {
		t.Fatal(err)
	}
	with, err := runCell(Options{Seed: 2, Quick: true, Policy: policy.Spec{Name: policy.NameStatic}}, cell, "DYN P=4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, with) {
		t.Fatalf("static policy changed the run result:\n  baseline: %+v\n  static:   %+v", base, with)
	}
}
