package experiments

import (
	"fmt"
	"io"
	"sync"

	"partialreduce/internal/baselines"
	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/core"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// ElasticRow is one strategy of the elastic sweep with its membership
// counters (zero for strategies that never change membership).
type ElasticRow struct {
	Strategy      string
	Schedule      string
	Joins         int
	Drains        int
	Decommissions int
	StaleEpochs   int
	Failures      int
	Result        *metrics.Result
}

// ElasticSweepResult compares P-Reduce riding the canonical 8→12→6
// staircase against static-membership references. Everything here is a pure
// function of opts.Seed — the schedule triggers on deterministic update
// counts and the simulator's clock is virtual — so two same-seed runs
// produce byte-identical summary CSVs.
type ElasticSweepResult struct {
	Rows []ElasticRow
}

// Results returns the rows' metric results in printed order (for CSV export).
func (r *ElasticSweepResult) Results() []*metrics.Result {
	var out []*metrics.Result
	for _, row := range r.Rows {
		if row.Result != nil {
			out = append(out, row.Result)
		}
	}
	return out
}

// RobustnessElastic runs the elastic-membership sweep on the headline
// heterogeneous cell (ResNet-34/CIFAR-10, HL=3): P-Reduce trains through a
// seeded 8→12→6 staircase — four ranks bootstrap-join mid-run, then six
// members gracefully drain — while the static references (P-Reduce and
// All-Reduce on the founding eight) show what elasticity buys and costs.
// All-Reduce cannot scale at all: its barrier needs a fixed world, which is
// exactly the §4 asymmetry the paper's recovery story extends to planned
// membership change.
func RobustnessElastic(opts Options) (*ElasticSweepResult, error) {
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	// Fixed-budget runs: every strategy executes exactly the same number of
	// updates (the threshold is unreachable), so the comparison is accuracy
	// and virtual time at equal synchronization work — the regime where the
	// staircase is guaranteed to complete and leave a reconvergence tail.
	w.Threshold = 0.999
	w.MaxUpdates = 400
	if opts.Quick {
		w.MaxUpdates = 200
	}
	// Joins start an eighth of the way in, one per budget/40 updates; the
	// six drains follow at the same cadence. Full budget: joins at
	// 50,60,70,80 and drains at 90..140, leaving 260 updates on the final 6.
	after := w.MaxUpdates / 8
	step := w.MaxUpdates / 40
	schedule := hetero.ScaleSchedule(8, 12, 6, after, step)

	type spec struct {
		strategy string
		schedule string
		cell     Cell
		preduce  bool
	}
	specs := []spec{
		{
			strategy: "DYN P=4", schedule: "8→12→6", preduce: true,
			cell: Cell{Workload: w, N: 12, Env: EnvHL, HL: 3, Seed: opts.Seed,
				Initial: 8, Elastic: schedule},
		},
		{
			strategy: "DYN P=4", schedule: "static 8", preduce: true,
			cell: Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: opts.Seed},
		},
		{
			strategy: "AR", schedule: "static 8",
			cell: Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: opts.Seed},
		},
	}

	out := &ElasticSweepResult{Rows: make([]ElasticRow, len(specs))}
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, sp := range specs {
		i, sp := i, sp
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			row, err := runElasticCell(opts, sp.cell, sp.strategy, sp.preduce)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s (%s): %w", sp.strategy, sp.schedule, err)
				}
				return
			}
			row.Schedule = sp.schedule
			out.Rows[i] = row
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runElasticCell runs one cell, surfacing the controller's membership
// counters for P-Reduce strategies (baselines have no controller).
func runElasticCell(opts Options, cell Cell, strategy string, preduce bool) (ElasticRow, error) {
	row := ElasticRow{Strategy: strategy}
	cfg, err := cell.Build()
	if err != nil {
		return row, err
	}
	c, err := cluster.New(cfg, strategy)
	if err != nil {
		return row, err
	}
	if !preduce {
		row.Result, err = baselines.NewAllReduce().Run(c)
		return row, err
	}
	s, err := StrategyFor(strategy)
	if err != nil {
		return row, err
	}
	pr := s.(*core.PReduce)
	if opts.Policy.Enabled() {
		pr = pr.WithPolicy(opts.Policy)
	}
	var st controller.Stats
	row.Result, st, err = pr.RunWithStats(c)
	if err != nil {
		return row, err
	}
	row.Joins, row.Drains, row.Decommissions = st.Joins, st.Drains, st.Decommissions
	row.StaleEpochs, row.Failures = st.StaleEpochs, st.Failures
	return row, nil
}

// Format renders the elastic sweep as a table.
func (r *ElasticSweepResult) Format(w io.Writer) {
	fmt.Fprintf(w, "elastic membership sweep (ResNet-34/CIFAR-10, HL=3, capacity 12, fixed update budget):\n")
	fmt.Fprintf(w, "  %-10s %-10s %-7s %-9s %-8s %-13s %-6s %-6s %s\n",
		"strategy", "schedule", "acc", "time(s)", "updates",
		"join/drain/dc", "stale", "failed", "per-update(s)")
	for _, row := range r.Rows {
		res := row.Result
		if res == nil {
			continue
		}
		fmt.Fprintf(w, "  %-10s %-10s %-7.3f %-9.0f %-8d %2d/%2d/%2d      %-6d %-6d %.3f\n",
			row.Strategy, row.Schedule, res.FinalAccuracy, res.RunTime,
			res.Updates, row.Joins, row.Drains, row.Decommissions,
			row.StaleEpochs, row.Failures, res.PerUpdate())
	}
}
