package experiments

import (
	"bytes"
	"testing"

	"partialreduce/internal/trace"
)

// TestTracedRunDeterministic pins the simulator-trace replay guarantee:
// two runs with the same seed must export byte-identical Chrome trace
// JSON (the observability analogue of TestRobustnessPartitionDeterministic
// — the tracer reads the engine's virtual clock and the exporters use
// fixed key order and float formatting, so nothing may differ).
func TestTracedRunDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		_, c, err := TracedRun(Options{Seed: 5, Quick: true}, -1)
		if err != nil {
			t.Fatal(err)
		}
		events := c.Tracer.Events()
		if len(events) == 0 {
			t.Fatal("traced run recorded no events")
		}
		var chrome, jsonl bytes.Buffer
		if err := trace.WriteChrome(&chrome, events); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteJSONL(&jsonl, events); err != nil {
			t.Fatal(err)
		}
		return chrome.Bytes(), jsonl.Bytes()
	}
	c1, j1 := run()
	c2, j2 := run()
	if !bytes.Equal(c1, c2) {
		t.Fatal("same-seed sim runs exported different Chrome traces")
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("same-seed sim runs exported different JSONL traces")
	}
	n, err := trace.ValidateChrome(c1)
	if err != nil {
		t.Fatalf("sim trace fails the schema check: %v", err)
	}
	if n == 0 {
		t.Fatal("sim trace contains no events after metadata")
	}
}

// TestTracedRunCoverage checks the sim timeline carries every layer the
// tentpole instruments: worker compute/wait/phase spans, controller
// decisions, and the satellite-1 modeled phase seconds in CommStats.
func TestTracedRunCoverage(t *testing.T) {
	res, c, err := TracedRun(Options{Seed: 1, Quick: true}, -1)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	ctrlEvents := 0
	for _, ev := range c.Tracer.Events() {
		kinds[ev.Kind]++
		if ev.Track == trace.ControllerTrack {
			ctrlEvents++
		}
	}
	for _, k := range []trace.Kind{
		trace.KCompute, trace.KSignalWait, trace.KGroupWait,
		trace.KReduceScatter, trace.KAllGather,
		trace.KReady, trace.KGroupFormed, trace.KStaleness,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in the sim trace", k)
		}
	}
	if ctrlEvents == 0 {
		t.Error("no controller-track events")
	}

	// Satellite 1: the simulator populates the per-phase comm seconds from
	// its ring cost model (g·ring/2 per phase, symmetric phases).
	if res.Comms.ReduceScatterS <= 0 || res.Comms.AllGatherS <= 0 {
		t.Fatalf("sim phase seconds not populated: rs=%v ag=%v",
			res.Comms.ReduceScatterS, res.Comms.AllGatherS)
	}
	if res.Comms.ReduceScatterS != res.Comms.AllGatherS {
		t.Fatalf("ring phases should be symmetric: rs=%v ag=%v",
			res.Comms.ReduceScatterS, res.Comms.AllGatherS)
	}

	// The controller-attached instruments observed the same run.
	snap := c.Ins.Snapshot()
	if snap.GroupsFormed == 0 || snap.Staleness.Count() == 0 {
		t.Fatalf("sim instruments empty: groups=%d staleness=%d",
			snap.GroupsFormed, snap.Staleness.Count())
	}
	if snap.SyncComponents != 1 {
		t.Errorf("sync graph unhealthy at end of clean run: %d components", snap.SyncComponents)
	}
}
