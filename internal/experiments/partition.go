package experiments

import (
	"fmt"
	"io"

	"partialreduce/internal/cluster"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// PartitionSweepResult reports DYN P=3 under timed two-rank network
// partitions of increasing length, against the same cell with no partition.
// Because the simulator, the schedule, and the jitterless retry model are all
// deterministic, the whole sweep — including the retry/timeout/abort trace in
// Comms — is a pure function of (opts.Seed, durations): running it twice
// yields byte-identical summary CSVs.
type PartitionSweepResult struct {
	Durations []float64 // partition length in batch-compute multiples
	Converged []bool
	Accuracy  []float64
	Time      []float64 // virtual seconds to threshold (0 if missed)
	Retries   []int64
	Timeouts  []int64
	Aborts    []int64
	Results   []*metrics.Result // aligned with Durations, for CSV export
}

// RobustnessPartition sweeps partition lengths on the headline heterogeneous
// cell (ResNet-34/CIFAR-10, HL=3, N=8): ranks {6,7} are cut off from the rest
// of the cluster for a window starting a few batches into the run. Groups
// that straddle the cut time out, back off, retry, and finally abort with
// nobody condemned — the controller's bounded-wait recovery path — while
// same-side groups keep training; after the heal the cluster reconverges.
func RobustnessPartition(opts Options, durations []float64) (*PartitionSweepResult, error) {
	if len(durations) == 0 {
		return nil, fmt.Errorf("experiments: need at least one partition duration")
	}
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	batch := w.Profile.BatchCompute

	out := &PartitionSweepResult{Results: make([]*metrics.Result, len(durations))}
	var jobs []job
	for i, dur := range durations {
		i := i
		out.Durations = append(out.Durations, dur)
		cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: opts.Seed}
		if dur > 0 {
			cell.Partitions = hetero.PartitionSchedule{{
				Ranks: []int{6, 7},
				From:  5 * batch,
				Until: (5 + dur) * batch,
			}}
			// The live defaults scaled to virtual time: generous per-attempt
			// timeout, exponential backoff, three attempts before the abort.
			cell.Retry = cluster.RetryModel{
				MaxAttempts: 3,
				Timeout:     2 * batch,
				BaseDelay:   0.25 * batch,
				MaxDelay:    batch,
				Multiplier:  2,
			}
		}
		jobs = append(jobs, job{cell: cell, strategy: "DYN P=3",
			store: func(r *metrics.Result) { out.Results[i] = r }})
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	for _, r := range out.Results {
		ok := r != nil && r.Converged
		out.Converged = append(out.Converged, ok)
		acc, t := 0.0, 0.0
		var re, to, ab int64
		if r != nil {
			acc = r.FinalAccuracy
			re, to, ab = r.Comms.Retries, r.Comms.Timeouts, r.Comms.Aborts
			if ok {
				t = r.RunTime
			}
		}
		out.Accuracy = append(out.Accuracy, acc)
		out.Time = append(out.Time, t)
		out.Retries = append(out.Retries, re)
		out.Timeouts = append(out.Timeouts, to)
		out.Aborts = append(out.Aborts, ab)
	}
	return out, nil
}

// Format renders the partition sweep as a table.
func (r *PartitionSweepResult) Format(w io.Writer) {
	fmt.Fprintf(w, "partition sweep (ranks {6,7} cut, ResNet-34/CIFAR-10, HL=3, N=8):\n")
	fmt.Fprintf(w, "  %-10s %-12s %-8s %-10s %-8s %-9s %s\n",
		"len(batch)", "DYN P=3", "acc", "time(s)", "retries", "timeouts", "aborts")
	for i := range r.Durations {
		state := "missed"
		if r.Converged[i] {
			state = "converged"
		}
		fmt.Fprintf(w, "  %-10.1f %-12s %-8.3f %-10.0f %-8d %-9d %d\n",
			r.Durations[i], state, r.Accuracy[i], r.Time[i],
			r.Retries[i], r.Timeouts[i], r.Aborts[i])
	}
}
