package experiments

import (
	"fmt"
	"io"
	"strings"

	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
)

// Table1Strategies are the paper's columns in order: three collective
// methods, four parameter-server methods, and partial reduce at P=3 and P=5
// with constant and dynamic weighting. BK uses 3 backup workers of N=8, as
// in §5.2.1.
var Table1Strategies = []string{
	"AR", "ER", "AD",
	"PS BSP", "PS ASP", "PS HETE", "PS BK-3",
	"CON P=3", "DYN P=3", "CON P=5", "DYN P=5",
}

// Table1Block is one model's rows: every strategy at every heterogeneity
// level.
type Table1Block struct {
	Model string
	HLs   []int
	// Cells[hl][strategy] holds the run result.
	Cells map[int]map[string]*metrics.Result
}

// Table1Result is the full table.
type Table1Result struct {
	Blocks []Table1Block
}

// Table1 reproduces the end-to-end CIFAR-10 comparison (§5.2): N=8 workers,
// ResNet-34 and VGG-19 at HL ∈ {1,3}, DenseNet-121 at HL ∈ {1,2}, reporting
// run time, #updates, and per-update time per strategy.
func Table1(opts Options) (*Table1Result, error) {
	type blockSpec struct {
		profile model.Profile
		hls     []int
	}
	specs := []blockSpec{
		{model.ResNet34, []int{1, 3}},
		{model.VGG19, []int{1, 3}},
		{model.DenseNet121, []int{1, 2}},
	}

	out := &Table1Result{}
	var jobs []job
	for _, spec := range specs {
		w := opts.workload(CIFAR10Workload(spec.profile))
		block := Table1Block{Model: spec.profile.Name, HLs: spec.hls, Cells: map[int]map[string]*metrics.Result{}}
		out.Blocks = append(out.Blocks, block)
		bi := len(out.Blocks) - 1
		for _, hl := range spec.hls {
			out.Blocks[bi].Cells[hl] = map[string]*metrics.Result{}
			for _, strat := range Table1Strategies {
				hl, strat := hl, strat
				jobs = append(jobs, job{
					cell:     Cell{Workload: w, N: 8, Env: EnvHL, HL: hl, Seed: opts.Seed},
					strategy: strat,
					store:    func(r *metrics.Result) { out.Blocks[bi].Cells[hl][strat] = r },
				})
			}
		}
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the table in the paper's row layout (run time, #updates,
// per-update time per model × HL). Unconverged cells print N/A, matching
// the paper's treatment of ER.
func (t *Table1Result) Format(w io.Writer) {
	head := fmt.Sprintf("%-12s %-14s %3s", "Model", "Metric", "HL")
	for _, s := range Table1Strategies {
		head += fmt.Sprintf(" %9s", s)
	}
	fmt.Fprintln(w, head)
	fmt.Fprintln(w, strings.Repeat("-", len(head)))
	for _, b := range t.Blocks {
		for _, metric := range []string{"run time (s)", "#updates", "per-update(s)"} {
			for _, hl := range b.HLs {
				row := fmt.Sprintf("%-12s %-14s %3d", b.Model, metric, hl)
				for _, s := range Table1Strategies {
					res := b.Cells[hl][s]
					row += fmt.Sprintf(" %9s", table1Cell(res, metric))
				}
				fmt.Fprintln(w, row)
			}
		}
		fmt.Fprintln(w)
	}
}

func table1Cell(r *metrics.Result, metric string) string {
	if r == nil {
		return "-"
	}
	if !r.Converged {
		return "N/A"
	}
	switch metric {
	case "run time (s)":
		return fmt.Sprintf("%.0f", r.RunTime)
	case "#updates":
		return fmt.Sprintf("%d", r.Updates)
	default:
		return fmt.Sprintf("%.3f", r.PerUpdate())
	}
}

// Best returns the strategy with the lowest converged run time for a block
// and HL, mirroring the paper's bold-font marking.
func (t *Table1Result) Best(modelName string, hl int) (string, *metrics.Result) {
	for _, b := range t.Blocks {
		if b.Model != modelName {
			continue
		}
		var bestName string
		var best *metrics.Result
		for _, s := range Table1Strategies {
			r := b.Cells[hl][s]
			if r == nil || !r.Converged {
				continue
			}
			if best == nil || r.RunTime < best.RunTime {
				best, bestName = r, s
			}
		}
		return bestName, best
	}
	return "", nil
}
