package experiments

import (
	"fmt"
	"io"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/core"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/spectral"
)

// --- Figure 4: spectral gap under homogeneous vs heterogeneous timing ----

// Fig4Row is one scenario's analytic and empirical spectral bound.
type Fig4Row struct {
	Scenario     string
	AnalyticRho  float64
	EmpiricalRho float64
	RhoBar       float64
}

// Fig4Result holds both of the paper's N=3, P=2 scenarios.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 reproduces the paper's spectral-gap illustration: analytically,
// homogeneous timing gives ρ = 0.5 and a 2×-slower worker gives ρ = 0.625;
// empirically, a simulated P-Reduce run's group history must produce an
// E[W_k] whose ρ approaches the analytic value.
func Fig4(opts Options) (*Fig4Result, error) {
	out := &Fig4Result{}
	scenarios := []struct {
		name  string
		dist  spectral.GroupDist
		speed []float64
	}{
		{
			name: "homogeneous",
			dist: spectral.GroupDist{
				N:      3,
				Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
				Probs:  []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
			},
			speed: []float64{1, 1, 1},
		},
		{
			name: "one 2x slower",
			dist: spectral.GroupDist{
				N:      3,
				Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
				Probs:  []float64{0.5, 0.25, 0.25},
			},
			speed: []float64{1, 1, 2},
		},
	}
	for _, sc := range scenarios {
		m, err := spectral.MeanW(sc.dist)
		if err != nil {
			return nil, err
		}
		analytic, err := spectral.Rho(m)
		if err != nil {
			return nil, err
		}
		empirical, err := fig4Empirical(opts, sc.speed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig4Row{
			Scenario:     sc.name,
			AnalyticRho:  analytic,
			EmpiricalRho: empirical,
			RhoBar:       spectral.RhoBar(analytic),
		})
	}
	return out, nil
}

// fig4Empirical runs constant P-Reduce (N=3, P=2) under fixed worker speeds
// with small jitter and extracts ρ from the controller's group history. The
// group filter is disabled so the measured distribution is the natural one.
func fig4Empirical(opts Options, speed []float64) (float64, error) {
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	cell := Cell{Workload: w, N: 3, Env: EnvHL, HL: 1, Seed: opts.Seed}
	cfg, err := cell.Build()
	if err != nil {
		return 0, err
	}
	cfg.N = 3
	// Small jitter breaks ties so the group distribution matches the paper's
	// timing diagram rather than a deterministic phase-locked cycle.
	cfg.Hetero = &jitteredFixed{
		fixed:  hetero.Fixed{Base: w.Profile.BatchCompute, Multipliers: speed},
		jitter: hetero.NewHomogeneous(3, 1, 0.08, opts.Seed+3),
	}
	cfg.Threshold = 0.999 // run to the update budget; we want group counts
	cfg.MaxUpdates = 4000
	c, err := cluster.New(cfg, "fig4")
	if err != nil {
		return 0, err
	}
	strat := core.NewPReduce(core.PReduceConfig{P: 2, DisableGroupFilter: true})
	info, err := strat.RunDetailed(c)
	if err != nil {
		return 0, err
	}
	if info.MeanW == nil {
		return 0, fmt.Errorf("experiments: no groups formed in fig4 run")
	}
	return spectral.Rho(info.MeanW)
}

// jitteredFixed multiplies fixed per-worker speeds with small lognormal
// jitter.
type jitteredFixed struct {
	fixed  hetero.Fixed
	jitter *hetero.Homogeneous
}

func (j *jitteredFixed) ComputeTime(worker int, now float64) float64 {
	return j.fixed.ComputeTime(worker, now) * j.jitter.ComputeTime(worker, now)
}

func (j *jitteredFixed) Name() string { return "fixed+jitter" }

// Format renders the Fig. 4 comparison.
func (f *Fig4Result) Format(w io.Writer) {
	fmt.Fprintf(w, "%-16s %12s %12s %12s\n", "Scenario", "rho(analytic)", "rho(sim)", "rho-bar")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-16s %12.4f %12.4f %12.4f\n", r.Scenario, r.AnalyticRho, r.EmpiricalRho, r.RhoBar)
	}
}

// --- Figures 7 & 10: convergence curves ----------------------------------

// CurveSet holds accuracy-vs-time series per strategy.
type CurveSet struct {
	Title  string
	Series map[string][]metrics.Point
	Final  map[string]*metrics.Result
	Order  []string
}

// Format renders each series as (time, accuracy) pairs, downsampled to at
// most 12 points, followed by the summary line.
func (cs *CurveSet) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", cs.Title)
	for _, name := range cs.Order {
		pts := downsample(cs.Series[name], 12)
		fmt.Fprintf(w, "%-10s", name)
		for _, p := range pts {
			fmt.Fprintf(w, " (%.0fs,%.3f)", p.Time, p.Accuracy)
		}
		fmt.Fprintln(w)
	}
	for _, name := range cs.Order {
		if r := cs.Final[name]; r != nil {
			fmt.Fprintf(w, "  %s\n", r)
		}
	}
}

func downsample(pts []metrics.Point, max int) []metrics.Point {
	if len(pts) <= max {
		return pts
	}
	out := make([]metrics.Point, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, pts[i*(len(pts)-1)/(max-1)])
	}
	return out
}

func curves(opts Options, title string, cell Cell, strategies []string) (*CurveSet, error) {
	cs := &CurveSet{
		Title:  title,
		Series: map[string][]metrics.Point{},
		Final:  map[string]*metrics.Result{},
		Order:  strategies,
	}
	var jobs []job
	for _, s := range strategies {
		s := s
		jobs = append(jobs, job{cell: cell, strategy: s, store: func(r *metrics.Result) {
			cs.Series[s] = r.Curve
			cs.Final[s] = r
		}})
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	return cs, nil
}

// Fig7a reproduces the CIFAR-10 convergence comparison (VGG-19, HL=3, N=8).
func Fig7a(opts Options) (*CurveSet, error) {
	w := opts.workload(CIFAR10Workload(model.VGG19))
	cell := Cell{Workload: w, N: 8, Env: EnvHL, HL: 3, Seed: opts.Seed}
	return curves(opts, "Fig 7(a): VGG-19 on CIFAR-10 (HL=3)", cell,
		[]string{"AR", "ER", "AD", "PS BSP", "CON P=3", "DYN P=3"})
}

// Fig7b reproduces the CIFAR-100 convergence comparison on the production
// environment (ResNet-34, N=16).
func Fig7b(opts Options) (*CurveSet, error) {
	w := opts.workload(CIFAR100Workload(model.ResNet34))
	cell := Cell{Workload: w, N: 16, Env: EnvProduction, Seed: opts.Seed}
	return curves(opts, "Fig 7(b): ResNet-34 on CIFAR-100 (production)", cell,
		[]string{"AR", "CON P=4", "DYN P=4"})
}

// Fig10 reproduces the ImageNet convergence curves (N=32, production):
// ResNet-18 and VGG-16, All-Reduce vs dynamic partial reduce.
func Fig10(opts Options) ([]*CurveSet, error) {
	var out []*CurveSet
	for _, prof := range []model.Profile{model.ResNet18, model.VGG16} {
		w := opts.workload(ImageNetWorkload(prof))
		cell := Cell{Workload: w, N: 32, Env: EnvProduction, Seed: opts.Seed}
		cs, err := curves(opts, fmt.Sprintf("Fig 10: %s on ImageNet (N=32)", prof.Name),
			cell, []string{"AR", "CON P=4", "DYN P=4"})
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// --- Figure 8: impact of group size P -------------------------------------

// Fig8Row is one P's metrics.
type Fig8Row struct {
	P         int
	PerUpdate float64
	Updates   int
	RunTime   float64
	Converged bool
}

// Fig8Result is the P sweep.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 reproduces the group-size study (§5.2.3): constant P-Reduce on
// VGG-19/CIFAR-10 at HL=1, P ∈ [2, 8]. Per-update time grows with P,
// #updates shrinks, and total time has interior minima.
func Fig8(opts Options) (*Fig8Result, error) {
	w := opts.workload(CIFAR10Workload(model.VGG19))
	out := &Fig8Result{Rows: make([]Fig8Row, 0, 7)}
	var jobs []job
	for p := 2; p <= 8; p++ {
		p := p
		out.Rows = append(out.Rows, Fig8Row{P: p})
		idx := len(out.Rows) - 1
		jobs = append(jobs, job{
			cell:     Cell{Workload: w, N: 8, Env: EnvHL, HL: 1, Seed: opts.Seed},
			strategy: fmt.Sprintf("CON P=%d", p),
			store: func(r *metrics.Result) {
				out.Rows[idx] = Fig8Row{
					P: p, PerUpdate: r.PerUpdate(), Updates: r.Updates,
					RunTime: r.RunTime, Converged: r.Converged,
				}
			},
		})
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the three panels of Fig. 8 as columns.
func (f *Fig8Result) Format(w io.Writer) {
	fmt.Fprintf(w, "%4s %14s %10s %12s\n", "P", "per-update(s)", "#updates", "run time(s)")
	for _, r := range f.Rows {
		status := ""
		if !r.Converged {
			status = "  (N/A)"
		}
		fmt.Fprintf(w, "%4d %14.3f %10d %12.1f%s\n", r.P, r.PerUpdate, r.Updates, r.RunTime, status)
	}
}

// --- Figure 9: production-cluster comparison ------------------------------

// Fig9Result compares AR with partial reduce on the production environment.
type Fig9Result struct {
	AR, CON, DYN *metrics.Result
}

// Fig9 reproduces the production-cluster study (§5.3.1): ResNet-34 on
// CIFAR-100, 16 workers on the regime-switching trace. The paper reports
// P-Reduce ≈16.6× faster per update and ≈2× total.
func Fig9(opts Options) (*Fig9Result, error) {
	w := opts.workload(CIFAR100Workload(model.ResNet34))
	cell := Cell{Workload: w, N: 16, Env: EnvProduction, Seed: opts.Seed}
	out := &Fig9Result{}
	jobs := []job{
		{cell: cell, strategy: "AR", store: func(r *metrics.Result) { out.AR = r }},
		{cell: cell, strategy: "CON P=4", store: func(r *metrics.Result) { out.CON = r }},
		{cell: cell, strategy: "DYN P=4", store: func(r *metrics.Result) { out.DYN = r }},
	}
	if err := runAll(opts, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the three bars plus the headline ratios.
func (f *Fig9Result) Format(w io.Writer) {
	for _, r := range []*metrics.Result{f.AR, f.CON, f.DYN} {
		fmt.Fprintf(w, "  %s\n", r)
	}
	if f.AR != nil && f.DYN != nil && f.DYN.PerUpdate() > 0 {
		fmt.Fprintf(w, "per-update speedup (AR/DYN): %.1fx\n", f.AR.PerUpdate()/f.DYN.PerUpdate())
		if f.DYN.RunTime > 0 {
			fmt.Fprintf(w, "total speedup (AR/DYN): %.2fx\n", f.AR.RunTime/f.DYN.RunTime)
		}
	}
}

// --- Figure 11: scalability -----------------------------------------------

// Fig11Row is one worker count's speedups.
type Fig11Row struct {
	N        int
	Speedups map[string]float64 // strategy -> runtime(1)/runtime(N)
}

// Fig11Result is one model's scalability series.
type Fig11Result struct {
	Model string
	Rows  []Fig11Row
}

// Fig11Strategies are the scalability contenders: All-Reduce, backup
// workers with N/4 backups, and constant P-Reduce with P=4.
var Fig11Strategies = []string{"AR", "BK(N/4)", "CON P=4"}

// Fig11 reproduces the scalability study (§5.3.2): run-time speedup over a
// single worker at N ∈ {1,4,8,16,32} on the ImageNet substitute in the
// shared (production) environment, for ResNet-18 and VGG-16.
func Fig11(opts Options) ([]*Fig11Result, error) {
	ns := []int{1, 4, 8, 16, 32}
	var out []*Fig11Result
	for _, prof := range []model.Profile{model.ResNet18, model.VGG16} {
		w := opts.workload(ImageNetWorkload(prof))
		res := &Fig11Result{Model: prof.Name}
		results := map[int]map[string]*metrics.Result{}
		var jobs []job
		for _, n := range ns {
			n := n
			results[n] = map[string]*metrics.Result{}
			for _, label := range Fig11Strategies {
				label := label
				strat := fig11Strategy(label, n)
				jobs = append(jobs, job{
					cell:     Cell{Workload: w, N: n, Env: EnvProduction, Seed: opts.Seed},
					strategy: strat,
					store:    func(r *metrics.Result) { results[n][label] = r },
				})
			}
		}
		if err := runAll(opts, jobs); err != nil {
			return nil, err
		}
		base := results[1]["AR"]
		for _, n := range ns {
			row := Fig11Row{N: n, Speedups: map[string]float64{}}
			for _, label := range Fig11Strategies {
				if r := results[n][label]; r != nil && r.RunTime > 0 {
					row.Speedups[label] = base.RunTime / r.RunTime
				}
			}
			res.Rows = append(res.Rows, row)
		}
		out = append(out, res)
	}
	return out, nil
}

// fig11Strategy degenerates gracefully at small N: a single worker is plain
// sequential SGD for every method, and P-Reduce needs P ≤ N.
func fig11Strategy(label string, n int) string {
	if n == 1 {
		return "AR"
	}
	switch label {
	case "BK(N/4)":
		b := n / 4
		if b < 1 {
			b = 1
		}
		return fmt.Sprintf("PS BK-%d", b)
	case "CON P=4":
		if n < 4 {
			return fmt.Sprintf("CON P=%d", n)
		}
		return "CON P=4"
	default:
		return label
	}
}

// Format renders the speedup series.
func (f *Fig11Result) Format(w io.Writer) {
	fmt.Fprintf(w, "== Fig 11: %s on ImageNet (speedup vs 1 worker) ==\n", f.Model)
	fmt.Fprintf(w, "%4s", "N")
	for _, s := range Fig11Strategies {
		fmt.Fprintf(w, " %10s", s)
	}
	fmt.Fprintln(w)
	for _, row := range f.Rows {
		fmt.Fprintf(w, "%4d", row.N)
		for _, s := range Fig11Strategies {
			fmt.Fprintf(w, " %10.2f", row.Speedups[s])
		}
		fmt.Fprintln(w)
	}
}

// --- Ablations -------------------------------------------------------------

// AblationWeightsResult compares aggregation rules on the same cell.
type AblationWeightsResult struct {
	Constant, DynamicClosest, DynamicInitial *metrics.Result
}

// AblationWeights compares constant weights against both dynamic-weight
// approximation rules on the heterogeneous CIFAR-10 cell (ResNet-34, HL=3).
func AblationWeights(opts Options) (*AblationWeightsResult, error) {
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	cell := Cell{Workload: w, N: 8, Env: EnvProduction, Seed: opts.Seed}
	out := &AblationWeightsResult{}

	run := func(pcfg core.PReduceConfig, name string) (*metrics.Result, error) {
		cfg, err := cell.Build()
		if err != nil {
			return nil, err
		}
		c, err := cluster.New(cfg, name)
		if err != nil {
			return nil, err
		}
		return core.NewPReduce(pcfg).Run(c)
	}
	var err error
	if out.Constant, err = run(core.PReduceConfig{P: 3}, "CON"); err != nil {
		return nil, err
	}
	if out.DynamicClosest, err = run(core.PReduceConfig{
		P: 3, Weighting: controller.Dynamic, Approx: controller.ClosestIteration,
	}, "DYN/closest"); err != nil {
		return nil, err
	}
	if out.DynamicInitial, err = run(core.PReduceConfig{
		P: 3, Weighting: controller.Dynamic, Approx: controller.InitialModel,
	}, "DYN/initial"); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the three rules side by side.
func (a *AblationWeightsResult) Format(w io.Writer) {
	fmt.Fprintf(w, "  constant:     %s\n", a.Constant)
	fmt.Fprintf(w, "  dyn/closest:  %s\n", a.DynamicClosest)
	fmt.Fprintf(w, "  dyn/initial:  %s\n", a.DynamicInitial)
}

// AblationGroupFilterResult measures group-frozen avoidance.
type AblationGroupFilterResult struct {
	// WorstAccuracy is the worst single-replica accuracy at the end of the
	// run, with and without the filter.
	WithFilter, WithoutFilter float64
	// Interventions counts filter rewrites in the enabled run.
	Interventions int
	// BridgingGroups counts groups spanning the two speed classes.
	BridgingWith, BridgingWithout int
}

// AblationGroupFilter constructs the pathological case of §4: two fast and
// two slow workers with P=2 and no jitter, so FIFO grouping always pairs
// fast with fast and slow with slow — two frozen sub-clusters training on
// half the data each. The filter must bridge them; without it the worst
// replica stays measurably worse.
func AblationGroupFilter(opts Options) (*AblationGroupFilterResult, error) {
	w := opts.workload(CIFAR10Workload(model.ResNet34))
	out := &AblationGroupFilterResult{}

	run := func(disable bool) (float64, int, int, error) {
		cell := Cell{Workload: w, N: 4, Env: EnvHL, HL: 1, Seed: opts.Seed}
		cfg, err := cell.Build()
		if err != nil {
			return 0, 0, 0, err
		}
		cfg.N = 4
		cfg.Hetero = &hetero.Fixed{
			Base:        w.Profile.BatchCompute,
			Multipliers: []float64{1, 1, 2.5, 2.5},
		}
		cfg.Threshold = 0.999
		cfg.MaxUpdates = 2000
		c, err := cluster.New(cfg, "ablation-filter")
		if err != nil {
			return 0, 0, 0, err
		}
		strat := core.NewPReduce(core.PReduceConfig{P: 2, DisableGroupFilter: disable})
		info, err := strat.RunDetailed(c)
		if err != nil {
			return 0, 0, 0, err
		}
		worst := 1.0
		for _, wk := range c.Workers {
			if acc := c.EvalParams(wk.Params()); acc < worst {
				worst = acc
			}
		}
		// Bridging groups join {0,1} with {2,3}: read them off E[W].
		bridging := 0
		if m := info.MeanW; m != nil {
			for i := 0; i < 2; i++ {
				for j := 2; j < 4; j++ {
					if m.At(i, j) > 0 {
						bridging++
					}
				}
			}
		}
		return worst, info.Stats.Interventions, bridging, nil
	}

	var err error
	var iv int
	if out.WithFilter, iv, out.BridgingWith, err = run(false); err != nil {
		return nil, err
	}
	out.Interventions = iv
	if out.WithoutFilter, _, out.BridgingWithout, err = run(true); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the filter ablation.
func (a *AblationGroupFilterResult) Format(w io.Writer) {
	fmt.Fprintf(w, "  with filter:    worst replica accuracy %.3f (interventions=%d, bridging pairs=%d)\n",
		a.WithFilter, a.Interventions, a.BridgingWith)
	fmt.Fprintf(w, "  without filter: worst replica accuracy %.3f (bridging pairs=%d)\n",
		a.WithoutFilter, a.BridgingWithout)
}
