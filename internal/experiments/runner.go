package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"partialreduce/internal/baselines"
	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/core"
	"partialreduce/internal/metrics"
	"partialreduce/internal/policy"
)

// Options tune an experiment run.
type Options struct {
	// Seed drives every dataset, initialization, and duration draw.
	Seed int64
	// Quick shrinks workloads for smoke tests and benchmarks.
	Quick bool
	// Parallelism bounds concurrent cells; zero selects GOMAXPROCS.
	Parallelism int
	// Policy optionally retrofits a group-formation policy (see
	// internal/policy) onto every P-Reduce strategy an experiment runs;
	// non-P-Reduce baselines are unaffected. The zero Spec is a no-op, and
	// Spec{Name: policy.NameStatic} reproduces the policy-free controller
	// byte for byte (the metamorphic baseline).
	Policy policy.Spec
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) workload(w Workload) Workload {
	if o.Quick {
		return w.Quick()
	}
	return w
}

// StrategyFor builds the strategy named like Table 1's columns: "AR", "ER",
// "AD", "PS BSP", "PS ASP", "PS HETE", "PS BK-<b>", "CON P=<p>",
// "DYN P=<p>".
func StrategyFor(name string) (cluster.Strategy, error) {
	var p, b int
	switch {
	case name == "AR":
		return baselines.NewAllReduce(), nil
	case name == "ER":
		return baselines.NewEagerReduce(), nil
	case name == "AD":
		return baselines.NewADPSGD(), nil
	case name == "D-PSGD":
		return baselines.NewDPSGD(), nil
	case name == "PS BSP":
		return baselines.NewPSBSP(), nil
	case name == "PS ASP":
		return baselines.NewPSASP(), nil
	case name == "PS HETE":
		return baselines.NewPSHETE(), nil
	case matchInt(name, "PS BK-%d", &b):
		return baselines.NewPSBK(b), nil
	case matchInt(name, "CON P=%d", &p):
		return core.NewPReduce(core.PReduceConfig{P: p}), nil
	case matchInt(name, "DYN P=%d", &p):
		// Dynamic weighting uses the closest-iteration approximation for
		// missing EMA slots (§3.3.3's alternative): the literal
		// initial-model rule shifts weight mass onto x₁ when staleness is
		// large, which measurably degrades convergence in our reproduction
		// (see the ablation in experiments tests and DESIGN.md).
		return core.NewPReduce(core.PReduceConfig{
			P: p, Weighting: controller.Dynamic, Approx: controller.ClosestIteration,
		}), nil
	case matchInt(name, "ADP P=%d", &p):
		// Dynamic P-Reduce with the adaptive-p formation policy: the
		// configured P is the upper bound, groups shrink toward PMin=2 when
		// the signal-cadence dispersion says the cell is heterogeneous.
		return core.NewPReduce(core.PReduceConfig{
			P: p, Weighting: controller.Dynamic, Approx: controller.ClosestIteration,
			Policy: policy.Spec{Name: policy.NameAdaptiveP, PMin: 2, PMax: p},
		}), nil
	case matchInt(name, "SBIAS P=%d", &p):
		// Dynamic P-Reduce with the straggler-bias formation policy: the
		// highest-staleness queued workers are preferred into each group.
		return core.NewPReduce(core.PReduceConfig{
			P: p, Weighting: controller.Dynamic, Approx: controller.ClosestIteration,
			Policy: policy.Spec{Name: policy.NameStragglerBias},
		}), nil
	}
	return nil, fmt.Errorf("experiments: unknown strategy %q", name)
}

func matchInt(s, format string, out *int) bool {
	n, err := fmt.Sscanf(s, format, out)
	return err == nil && n == 1
}

// job is one (cell, strategy) run.
type job struct {
	cell     Cell
	strategy string
	// store receives the result.
	store func(*metrics.Result)
}

// runAll executes jobs with bounded parallelism; the first error aborts the
// batch (in-flight cells complete).
func runAll(opts Options, jobs []job) error {
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := runCell(opts, j.cell, j.strategy)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("%s on %s (%s): %w",
						j.strategy, j.cell.Workload.Name, j.cell.envString(), err)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			j.store(res)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return firstErr
}

// runCell executes one simulation, applying opts.Policy to P-Reduce
// strategies.
func runCell(opts Options, cell Cell, strategy string) (*metrics.Result, error) {
	s, err := StrategyFor(strategy)
	if err != nil {
		return nil, err
	}
	if pr, ok := s.(*core.PReduce); ok && opts.Policy.Enabled() {
		s = pr.WithPolicy(opts.Policy)
	}
	cfg, err := cell.Build()
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(cfg, strategy)
	if err != nil {
		return nil, err
	}
	return s.Run(c)
}
