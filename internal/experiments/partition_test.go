package experiments

import (
	"bytes"
	"strings"
	"testing"

	"partialreduce/internal/metrics"
)

// Partition sweep: the no-partition cell sees no retry traffic, the
// partitioned cell times out and retries but still converges with nobody
// condemned — §4's bounded-wait recovery simulated end to end.
func TestRobustnessPartitionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("partition sweep is expensive")
	}
	res, err := RobustnessPartition(quick, []float64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries[0] != 0 || res.Timeouts[0] != 0 || res.Aborts[0] != 0 {
		t.Fatalf("no-partition cell recorded retry traffic: retries=%d timeouts=%d aborts=%d",
			res.Retries[0], res.Timeouts[0], res.Aborts[0])
	}
	if res.Timeouts[1] == 0 || res.Retries[1] == 0 {
		t.Fatalf("partition never bit: retries=%d timeouts=%d", res.Retries[1], res.Timeouts[1])
	}
	for i := range res.Durations {
		if !res.Converged[i] {
			t.Fatalf("DYN P=3 missed the threshold at duration %v", res.Durations[i])
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "partition sweep") {
		t.Fatal("Format produced no output")
	}

	// A negative control for the sweep contract itself.
	if _, err := RobustnessPartition(quick, nil); err == nil {
		t.Fatal("empty duration list accepted")
	}
}

// The acceptance property: the whole sweep — including the fault/retry trace
// in the Comms columns — is a pure function of (seed, durations). Two runs
// with the same seed export byte-identical summary CSVs.
func TestRobustnessPartitionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check runs the sweep twice")
	}
	csvOf := func() string {
		t.Helper()
		res, err := RobustnessPartition(quick, []float64{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WriteSummaryCSV(&buf, res.Results...); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := csvOf(), csvOf()
	if a != b {
		t.Fatalf("same seed produced different fault/retry CSV traces:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	// The trace must actually contain retry evidence, or determinism is vacuous.
	if !strings.Contains(a, "retries") {
		t.Fatalf("summary CSV has no comms columns:\n%s", a)
	}
}
