package baselines

import (
	"fmt"
	"sort"

	"partialreduce/internal/cluster"
	"partialreduce/internal/engine"
	"partialreduce/internal/metrics"
	"partialreduce/internal/optim"
	"partialreduce/internal/tensor"
)

// psServer is the sharded parameter-server state: one global model updated
// by one optimizer, plus a version counter for staleness accounting.
type psServer struct {
	params  tensor.Vector
	opt     *optim.SGD
	version int
}

func newPSServer(c *cluster.Cluster) *psServer {
	return &psServer{
		params: c.Init.Clone(),
		opt:    optim.NewSGD(c.Cfg.Optimizer, len(c.Init)),
	}
}

// PSBSP is bulk-synchronous parameter-server training: every round all
// workers push gradients, the server applies the averaged update, and all
// workers pull the new model. Hardware-wise it behaves like All-Reduce with
// the (slightly slower) PS exchange cost.
type PSBSP struct{}

// NewPSBSP returns the PS BSP baseline.
func NewPSBSP() *PSBSP { return &PSBSP{} }

// Name implements cluster.Strategy.
func (*PSBSP) Name() string { return "PS BSP" }

// Run implements cluster.Strategy.
func (*PSBSP) Run(c *cluster.Cluster) (*metrics.Result, error) {
	env := engine.NewSimEnv(c)
	srv := newPSServer(c)
	c.EvalOverride = func() float64 { return c.EvalParams(srv.params) }
	avg := tensor.NewVector(len(c.Init))
	weights := engine.UniformWeights(c.Cfg.N)
	grads := make([]tensor.Vector, c.Cfg.N)
	machine := engine.NewMachine(c.Cfg.N)

	var round func()
	round = func() {
		var maxDt float64
		for _, w := range c.Workers {
			machine.To(w.ID, engine.StateCompute)
			if dt := c.ComputeTime(w); dt > maxDt {
				maxDt = dt
			}
		}
		dur := maxDt + c.PSTimeMax()
		env.Exchanges(c.Cfg.N) // every worker pushes and pulls
		c.Eng.After(dur, func() {
			for i, w := range c.Workers {
				machine.To(w.ID, engine.StateReduce)
				grads[i], _ = c.GradientAtCurrent(w)
			}
			tensor.WeightedAverage(avg, weights, grads)
			srv.opt.Update(srv.params, avg, 1)
			srv.version++
			for _, w := range c.Workers {
				machine.To(w.ID, engine.StateApply)
				w.Params().CopyFrom(srv.params)
				w.Iter++
			}
			c.RecordUpdate()
			if !c.Eng.Stopped() {
				round()
			}
		})
	}
	c.Eng.At(0, round)
	c.Eng.Run()
	return c.Finish(), nil
}

// PSAsync implements the asynchronous parameter-server baselines. Each
// worker loops independently: pull the global model, compute a gradient,
// push it; the server applies it immediately. Staleness is real — the model
// a gradient was computed on may be many versions behind by the time it
// lands — which is exactly why ASP needs more updates to converge (Table 1).
// With Hete set, the server scales each update's learning rate by
// 1/(staleness+1), Jiang et al.'s heterogeneity-aware rule [20].
type PSAsync struct {
	Hete bool
}

// NewPSASP returns the PS ASP baseline.
func NewPSASP() *PSAsync { return &PSAsync{} }

// NewPSHETE returns the staleness-aware PS HETE baseline.
func NewPSHETE() *PSAsync { return &PSAsync{Hete: true} }

// Name implements cluster.Strategy.
func (p *PSAsync) Name() string {
	if p.Hete {
		return "PS HETE"
	}
	return "PS ASP"
}

// Run implements cluster.Strategy.
func (p *PSAsync) Run(c *cluster.Cluster) (*metrics.Result, error) {
	env := engine.NewSimEnv(c)
	srv := newPSServer(c)
	c.EvalOverride = func() float64 { return c.EvalParams(srv.params) }
	pulled := make([]int, c.Cfg.N) // server version each worker last pulled
	machine := engine.NewMachine(c.Cfg.N)

	var start func(w *cluster.Worker)
	start = func(w *cluster.Worker) {
		machine.To(w.ID, engine.StateCompute)
		c.Snapshot(w)
		c.Eng.After(c.ComputeTime(w), func() {
			grad, _ := c.Gradient(w) // at the pulled snapshot
			machine.To(w.ID, engine.StateReduce)
			env.Exchanges(1)
			c.Eng.After(c.PSTime(w.ID), func() {
				scale := 1.0
				if p.Hete {
					staleness := srv.version - pulled[w.ID]
					scale = 1 / float64(staleness+1)
				}
				machine.To(w.ID, engine.StateApply)
				srv.opt.Update(srv.params, grad, scale)
				srv.version++
				w.Params().CopyFrom(srv.params) // pull
				pulled[w.ID] = srv.version
				w.Iter++
				c.RecordUpdate()
				if !c.Eng.Stopped() {
					start(w)
				}
			})
		})
	}
	for _, w := range c.Workers {
		w := w
		c.Eng.At(0, func() { start(w) })
	}
	c.Eng.Run()
	return c.Finish(), nil
}

// PSBK is synchronous SGD with backup workers [8]: every round all N workers
// race, the server aggregates only the first N−Backup gradients, and the
// stragglers' work is dropped (they adopt the new model and move on). The
// round advances at the pace of the (N−Backup)-th fastest worker, but the
// dropped workers contribute nothing — the resource-utilization dilemma
// §5.2.1 contrasts with P-Reduce.
type PSBK struct {
	Backup int // number of backup (droppable) workers
}

// NewPSBK returns the backup-worker baseline with b backups.
func NewPSBK(b int) *PSBK { return &PSBK{Backup: b} }

// Name implements cluster.Strategy.
func (p *PSBK) Name() string { return fmt.Sprintf("PS BK-%d", p.Backup) }

// Run implements cluster.Strategy.
func (p *PSBK) Run(c *cluster.Cluster) (*metrics.Result, error) {
	if p.Backup < 0 || p.Backup >= c.Cfg.N {
		return nil, fmt.Errorf("baselines: %d backup workers need 0 <= b < N=%d", p.Backup, c.Cfg.N)
	}
	env := engine.NewSimEnv(c)
	srv := newPSServer(c)
	c.EvalOverride = func() float64 { return c.EvalParams(srv.params) }
	k := c.Cfg.N - p.Backup
	avg := tensor.NewVector(len(c.Init))
	weights := engine.UniformWeights(k)
	grads := make([]tensor.Vector, k)
	machine := engine.NewMachine(c.Cfg.N)

	type arrival struct {
		dt float64
		w  *cluster.Worker
	}
	arrivals := make([]arrival, c.Cfg.N)

	var round func()
	round = func() {
		for i, w := range c.Workers {
			machine.To(w.ID, engine.StateCompute)
			arrivals[i] = arrival{dt: c.ComputeTime(w), w: w}
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].dt < arrivals[j].dt })
		dur := arrivals[k-1].dt + c.PSTimeMax()
		env.Exchanges(c.Cfg.N) // k gradients land, everyone pulls
		c.Eng.After(dur, func() {
			for _, w := range c.Workers {
				machine.To(w.ID, engine.StateReduce)
			}
			for i, a := range arrivals[:k] { // stragglers' gradients dropped
				grads[i], _ = c.GradientAtCurrent(a.w)
			}
			tensor.WeightedAverage(avg, weights, grads)
			srv.opt.Update(srv.params, avg, 1)
			srv.version++
			for _, w := range c.Workers {
				machine.To(w.ID, engine.StateApply)
				w.Params().CopyFrom(srv.params)
				w.Iter++
			}
			c.RecordUpdate()
			if !c.Eng.Stopped() {
				round()
			}
		})
	}
	c.Eng.At(0, round)
	c.Eng.Run()
	return c.Finish(), nil
}
