package baselines

import (
	"math/rand"
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/testutil"
)

func runStrategy(t *testing.T, cfg cluster.Config, s cluster.Strategy) *metrics.Result {
	t.Helper()
	c := testutil.Run(t, cfg, s)
	return c.Track.Result()
}

func TestNamesStable(t *testing.T) {
	cases := map[string]cluster.Strategy{
		"AR":      NewAllReduce(),
		"ER":      NewEagerReduce(),
		"AD":      NewADPSGD(),
		"PS BSP":  NewPSBSP(),
		"PS ASP":  NewPSASP(),
		"PS HETE": NewPSHETE(),
		"PS BK-3": NewPSBK(3),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestAllStrategiesConvergeHomogeneous(t *testing.T) {
	strategies := []cluster.Strategy{
		NewAllReduce(),
		NewADPSGD(),
		NewPSBSP(),
		NewPSASP(),
		NewPSHETE(),
		NewPSBK(3),
	}
	for _, s := range strategies {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := testutil.Config(t, 11)
			res := runStrategy(t, cfg, s)
			if !res.Converged {
				t.Fatalf("%s did not converge: %+v", s.Name(), res)
			}
			if res.Updates <= 0 || res.RunTime <= 0 {
				t.Fatalf("%s: degenerate metrics %+v", s.Name(), res)
			}
		})
	}
}

func TestPSBKValidation(t *testing.T) {
	cfg := testutil.Config(t, 12)
	c, err := cluster.New(cfg, "bk")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPSBK(-1).Run(c); err == nil {
		t.Fatal("negative backups accepted")
	}
	if _, err := NewPSBK(cfg.N).Run(c); err == nil {
		t.Fatal("all-backup configuration accepted")
	}
}

// Statistical efficiency: asynchronous PS needs more updates than
// synchronous BSP (staleness), the core Table 1 shape.
func TestASPNeedsMoreUpdatesThanBSP(t *testing.T) {
	cfg := testutil.Config(t, 13)
	bsp := runStrategy(t, cfg, NewPSBSP())
	cfg2 := testutil.Config(t, 13)
	asp := runStrategy(t, cfg2, NewPSASP())
	if !bsp.Converged || !asp.Converged {
		t.Fatalf("baselines did not converge: bsp=%+v asp=%+v", bsp, asp)
	}
	if asp.Updates <= bsp.Updates {
		t.Fatalf("ASP updates (%d) should exceed BSP updates (%d)", asp.Updates, bsp.Updates)
	}
	// Hardware efficiency: ASP's per-update time is far lower.
	if asp.PerUpdate() >= bsp.PerUpdate() {
		t.Fatalf("ASP per-update (%v) should beat BSP (%v)", asp.PerUpdate(), bsp.PerUpdate())
	}
}

// Straggler sensitivity: AR's run time under GPU sharing degrades roughly
// with the slowdown factor, while BK rides the fast majority.
func TestBKToleratesStragglers(t *testing.T) {
	cfgAR := testutil.Config(t, 14)
	cfgAR.Hetero = hetero.NewGPUSharing(cfgAR.N, 3, testutil.Profile.BatchCompute, 0.05, 14)
	ar := runStrategy(t, cfgAR, NewAllReduce())

	cfgBK := testutil.Config(t, 14)
	cfgBK.Hetero = hetero.NewGPUSharing(cfgBK.N, 3, testutil.Profile.BatchCompute, 0.05, 14)
	bk := runStrategy(t, cfgBK, NewPSBK(3))

	if !ar.Converged || !bk.Converged {
		t.Fatalf("did not converge: ar=%+v bk=%+v", ar, bk)
	}
	if bk.PerUpdate() >= ar.PerUpdate() {
		t.Fatalf("BK per-update (%v) should beat AR (%v) under HL=3", bk.PerUpdate(), ar.PerUpdate())
	}
}

// AD-PSGD's per-update time is the lowest of the decentralized methods but
// its inconsistent updates cost statistical efficiency vs AR.
func TestADShapes(t *testing.T) {
	cfg := testutil.Config(t, 15)
	ad := runStrategy(t, cfg, NewADPSGD())
	cfg2 := testutil.Config(t, 15)
	ar := runStrategy(t, cfg2, NewAllReduce())
	if !ad.Converged || !ar.Converged {
		t.Fatalf("did not converge: ad=%+v ar=%+v", ad, ar)
	}
	if ad.PerUpdate() >= ar.PerUpdate() {
		t.Fatalf("AD per-update (%v) should beat AR (%v)", ad.PerUpdate(), ar.PerUpdate())
	}
	if ad.Updates <= ar.Updates {
		t.Fatalf("AD updates (%d) should exceed AR updates (%d)", ad.Updates, ar.Updates)
	}
}

// ER rounds advance at majority pace, so its per-update time must undercut
// AR's full barrier under heterogeneity.
func TestERFasterRoundsThanAR(t *testing.T) {
	cfgER := testutil.Config(t, 16)
	cfgER.Hetero = hetero.NewGPUSharing(cfgER.N, 3, testutil.Profile.BatchCompute, 0.05, 16)
	cfgER.Threshold = 0.999 // compare pace, not convergence
	cfgER.MaxUpdates = 500
	er := runStrategy(t, cfgER, NewEagerReduce())

	cfgAR := testutil.Config(t, 16)
	cfgAR.Hetero = hetero.NewGPUSharing(cfgAR.N, 3, testutil.Profile.BatchCompute, 0.05, 16)
	cfgAR.Threshold = 0.999
	cfgAR.MaxUpdates = 500
	ar := runStrategy(t, cfgAR, NewAllReduce())

	if er.PerUpdate() >= ar.PerUpdate() {
		t.Fatalf("ER per-update (%v) should beat AR (%v) under HL=3", er.PerUpdate(), ar.PerUpdate())
	}
}

func TestHETEAtLeastAsStatisticallyEfficientAsASP(t *testing.T) {
	cfg := testutil.Config(t, 17)
	cfg.Hetero = hetero.NewGPUSharing(cfg.N, 3, testutil.Profile.BatchCompute, 0.05, 17)
	asp := runStrategy(t, cfg, NewPSASP())

	cfg2 := testutil.Config(t, 17)
	cfg2.Hetero = hetero.NewGPUSharing(cfg2.N, 3, testutil.Profile.BatchCompute, 0.05, 17)
	hete := runStrategy(t, cfg2, NewPSHETE())

	if !asp.Converged || !hete.Converged {
		t.Fatalf("did not converge: asp=%+v hete=%+v", asp, hete)
	}
	// The staleness-aware rule should not need substantially more updates.
	if float64(hete.Updates) > 1.5*float64(asp.Updates) {
		t.Fatalf("HETE updates (%d) much worse than ASP (%d)", hete.Updates, asp.Updates)
	}
}

func TestPickNeighborNeverSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 6; n++ {
		for self := 0; self < n; self++ {
			seen := map[int]bool{}
			for i := 0; i < 200; i++ {
				j := pickNeighbor(rng, n, self)
				if j == self || j < 0 || j >= n {
					t.Fatalf("pickNeighbor(n=%d, self=%d) = %d", n, self, j)
				}
				seen[j] = true
			}
			if len(seen) != n-1 {
				t.Fatalf("pickNeighbor(n=%d, self=%d) covered %d of %d neighbors", n, self, len(seen), n-1)
			}
		}
	}
}

// D-PSGD: synchronous gossip — per-update time between AD-PSGD's pairwise
// exchange and AR's full ring, statistical efficiency worse than AR (ring
// mixing is slow), and every replica still reaches good accuracy.
func TestDPSGDShapes(t *testing.T) {
	cfg := testutil.Config(t, 18)
	dp := runStrategy(t, cfg, NewDPSGD())
	cfg2 := testutil.Config(t, 18)
	ar := runStrategy(t, cfg2, NewAllReduce())
	if !dp.Converged || !ar.Converged {
		t.Fatalf("did not converge: dpsgd=%+v ar=%+v", dp, ar)
	}
	if dp.PerUpdate() >= ar.PerUpdate() {
		t.Fatalf("D-PSGD per-update (%v) should beat AR (%v): neighbor messages only", dp.PerUpdate(), ar.PerUpdate())
	}
	if dp.Updates < ar.Updates {
		t.Fatalf("D-PSGD updates (%d) below AR (%d): ring mixing cannot beat global averaging", dp.Updates, ar.Updates)
	}
	if NewDPSGD().Name() != "D-PSGD" {
		t.Fatal("name")
	}
}

// All replicas end close together: gossip keeps the ring coupled.
func TestDPSGDReplicasCoupled(t *testing.T) {
	cfg := testutil.Config(t, 19)
	c := testutil.Run(t, cfg, NewDPSGD())
	if !c.Track.Result().Converged {
		t.Fatalf("did not converge: %+v", c.Track.Result())
	}
	for _, w := range c.Workers {
		if acc := c.EvalParams(w.Params()); acc < 0.8 {
			t.Fatalf("worker %d replica at %.3f", w.ID, acc)
		}
	}
}
