// Package baselines implements the seven comparison systems of the paper's
// evaluation (§5.1): the collective-operation methods All-Reduce,
// Eager-Reduce and AD-PSGD, and the parameter-server methods BSP, ASP, HETE
// (staleness-aware learning rates) and BK (backup workers). Each runs real
// SGD on the shared cluster substrate; only the synchronization structure
// and the communication cost model differ. The synchronization step itself
// — and all traffic accounting — lives in internal/engine: every baseline
// builds a SimEnv and either delegates to a shared driver (All-Reduce) or
// drives the step machine and aggregation rules directly.
package baselines

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/engine"
	"partialreduce/internal/metrics"
)

// AllReduce is bulk-synchronous ring all-reduce training: every iteration,
// all N workers barrier, average gradients with a ring all-reduce, and apply
// the identical update. The round takes as long as the slowest worker — the
// straggler sensitivity the paper targets.
type AllReduce struct{}

// NewAllReduce returns the AR baseline.
func NewAllReduce() *AllReduce { return &AllReduce{} }

// Name implements cluster.Strategy.
func (*AllReduce) Name() string { return "AR" }

// Run implements cluster.Strategy by delegating to the shared step engine:
// RunAllReduceSim executes the same compute → reduce → apply step as the
// live RunAllReduceWorker, on the simulated Environment.
func (*AllReduce) Run(c *cluster.Cluster) (*metrics.Result, error) {
	return engine.RunAllReduceSim(engine.NewSimEnv(c))
}
