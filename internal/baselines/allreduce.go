// Package baselines implements the seven comparison systems of the paper's
// evaluation (§5.1): the collective-operation methods All-Reduce,
// Eager-Reduce and AD-PSGD, and the parameter-server methods BSP, ASP, HETE
// (staleness-aware learning rates) and BK (backup workers). Each runs real
// SGD on the shared cluster substrate; only the synchronization structure
// and the communication cost model differ.
package baselines

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/metrics"
	"partialreduce/internal/tensor"
)

// AllReduce is bulk-synchronous ring all-reduce training: every iteration,
// all N workers barrier, average gradients with a ring all-reduce, and apply
// the identical update. The round takes as long as the slowest worker — the
// straggler sensitivity the paper targets.
type AllReduce struct{}

// NewAllReduce returns the AR baseline.
func NewAllReduce() *AllReduce { return &AllReduce{} }

// Name implements cluster.Strategy.
func (*AllReduce) Name() string { return "AR" }

// Run implements cluster.Strategy. All-Reduce honors a crash schedule the
// only way a global collective can (§4): the first fail-stop halts training
// — every subsequent round would block forever on the dead rank — and the
// run is recorded as not converged.
func (*AllReduce) Run(c *cluster.Cluster) (*metrics.Result, error) {
	n := float64(c.Cfg.N)
	avg := tensor.NewVector(len(c.Init))
	c.ScheduleCrashes(func(int) { c.Eng.Stop() }, nil)

	var round func()
	round = func() {
		// The barrier waits for the slowest worker's batch, then the group
		// pays one full-cluster ring all-reduce.
		var maxDt float64
		for _, w := range c.Workers {
			if dt := c.ComputeTime(w); dt > maxDt {
				maxDt = dt
			}
		}
		ring := c.RingTimeAll()
		dur := maxDt + ring
		c.ChargeRing(c.Cfg.N, ring)
		c.Eng.After(dur, func() {
			avg.Zero()
			for _, w := range c.Workers {
				g, _ := c.GradientAtCurrent(w)
				avg.Axpy(1/n, g)
			}
			for _, w := range c.Workers {
				w.Opt.Update(w.Params(), avg, 1)
				w.Iter++
			}
			c.RecordUpdate()
			if !c.Eng.Stopped() {
				round()
			}
		})
	}
	c.Eng.At(0, round)
	c.Eng.Run()
	return c.Finish(), nil
}
