package baselines

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/engine"
	"partialreduce/internal/metrics"
	"partialreduce/internal/tensor"
)

// DPSGD is synchronous decentralized parallel SGD [28] (§2.2): workers sit
// on a ring; every iteration each worker computes a gradient, then averages
// its model with its two ring neighbors (gossip with the standard 1/3
// mixing weights) and applies the gradient. Like All-Reduce it is
// bulk-synchronous — the round waits for the slowest worker — but each
// round moves only neighbor-sized messages, so its per-update time is
// cheaper while its mixing (and hence statistical efficiency at a given
// accuracy) is weaker: updates take Θ(N) rounds to traverse the ring.
type DPSGD struct{}

// NewDPSGD returns the D-PSGD baseline.
func NewDPSGD() *DPSGD { return &DPSGD{} }

// Name implements cluster.Strategy.
func (*DPSGD) Name() string { return "D-PSGD" }

// Run implements cluster.Strategy.
func (*DPSGD) Run(c *cluster.Cluster) (*metrics.Result, error) {
	env := engine.NewSimEnv(c)
	n := c.Cfg.N
	next := make([]tensor.Vector, n) // post-gossip models, built per round
	for i := range next {
		next[i] = tensor.NewVector(len(c.Init))
	}
	weights := engine.UniformWeights(3) // ring gossip: left, self, right
	neighbors := make([]tensor.Vector, 3)
	machine := engine.NewMachine(n)

	var round func()
	round = func() {
		// Synchronous round: barrier on the slowest compute, then one
		// neighbor exchange (each worker sends its model both ways and
		// receives two — two point-to-point transfers that overlap, so the
		// round pays one pairwise exchange).
		var maxDt float64
		for _, w := range c.Workers {
			machine.To(w.ID, engine.StateCompute)
			if dt := c.ComputeTime(w); dt > maxDt {
				maxDt = dt
			}
		}
		worst := 0.0
		for i := range c.Workers {
			if t := c.PairTime(i, (i+1)%n); t > worst {
				worst = t
			}
		}
		env.Exchanges(n) // one bidirectional model exchange per ring link
		c.Eng.After(maxDt+worst, func() {
			// Gossip averaging with ring weights 1/3–1/3–1/3, then the local
			// gradient (computed at the pre-gossip model, as in D-PSGD).
			for i, w := range c.Workers {
				machine.To(w.ID, engine.StateReduce)
				neighbors[0] = c.Workers[(i-1+n)%n].Params()
				neighbors[1] = w.Params()
				neighbors[2] = c.Workers[(i+1)%n].Params()
				tensor.WeightedAverage(next[i], weights, neighbors)
			}
			for i, w := range c.Workers {
				machine.To(w.ID, engine.StateApply)
				g, _ := c.GradientAtCurrent(w)
				w.Params().CopyFrom(next[i])
				w.Opt.Update(w.Params(), g, 1)
				w.Iter++
			}
			c.RecordUpdate()
			if !c.Eng.Stopped() {
				round()
			}
		})
	}
	c.Eng.At(0, round)
	c.Eng.Run()
	return c.Finish(), nil
}
