package baselines

import (
	"math/rand"

	"partialreduce/internal/cluster"
	"partialreduce/internal/engine"
	"partialreduce/internal/metrics"
	"partialreduce/internal/sim"
	"partialreduce/internal/tensor"
)

// ADPSGD is asynchronous decentralized parallel SGD [29]: when a worker
// finishes a batch it atomically averages models with one uniformly random
// neighbor — without regard to the neighbor's state — then applies its
// gradient. The neighbor keeps computing while its model changes under it,
// so the gradient it eventually applies was computed on parameters that no
// longer exist: the inconsistent update that loosens AD-PSGD's convergence
// bound (§5.2.2). On the step machine only the initiator moves through
// reduce/apply — the neighbor's state is untouched mid-compute, which is
// precisely the inconsistency.
type ADPSGD struct{}

// NewADPSGD returns the AD-PSGD baseline.
func NewADPSGD() *ADPSGD { return &ADPSGD{} }

// Name implements cluster.Strategy.
func (*ADPSGD) Name() string { return "AD" }

// Run implements cluster.Strategy.
func (*ADPSGD) Run(c *cluster.Cluster) (*metrics.Result, error) {
	env := engine.NewSimEnv(c)
	rng := sim.Stream(c.Cfg.Seed, 0xAD)
	avg := tensor.NewVector(len(c.Init))
	weights := engine.UniformWeights(2)
	pair := make([]tensor.Vector, 2)
	machine := engine.NewMachine(c.Cfg.N)

	var start func(w *cluster.Worker)
	start = func(w *cluster.Worker) {
		machine.To(w.ID, engine.StateCompute)
		c.Snapshot(w)
		c.Eng.After(c.ComputeTime(w), func() {
			grad, _ := c.Gradient(w) // at the snapshot, possibly stale by now
			j := pickNeighbor(rng, c.Cfg.N, w.ID)
			machine.To(w.ID, engine.StateReduce)
			env.Exchanges(1)
			c.Eng.After(c.PairTime(w.ID, j), func() {
				neighbor := c.Workers[j]
				// Atomic pairwise average; the neighbor is not interrupted.
				machine.To(w.ID, engine.StateApply)
				pair[0] = w.Params()
				pair[1] = neighbor.Params()
				tensor.WeightedAverage(avg, weights, pair)
				w.Params().CopyFrom(avg)
				neighbor.Params().CopyFrom(avg)
				// Gradient lands on the averaged model, not the one it was
				// computed on.
				w.Opt.Update(w.Params(), grad, 1)
				w.Iter++
				c.RecordUpdate()
				if !c.Eng.Stopped() {
					start(w)
				}
			})
		})
	}
	for _, w := range c.Workers {
		w := w
		c.Eng.At(0, func() { start(w) })
	}
	c.Eng.Run()
	return c.Finish(), nil
}

func pickNeighbor(rng *rand.Rand, n, self int) int {
	j := rng.Intn(n - 1)
	if j >= self {
		j++
	}
	return j
}
