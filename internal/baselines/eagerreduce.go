package baselines

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/engine"
	"partialreduce/internal/metrics"
	"partialreduce/internal/tensor"
)

// EagerReduce models partial collective operations (Eager-SGD, [25]):
// gradient aggregation rounds that fire as soon as a majority of workers
// have contributed, with three properties the paper's critique rests on:
//
//   - Non-blocking workers: a worker deposits its gradient, applies the most
//     recently completed round's aggregate to its replica, and immediately
//     keeps computing — nobody waits for stragglers, so rounds advance at
//     the majority's pace.
//   - Cached stale gradients: a worker that missed a round is represented by
//     its last deposited gradient, which the collective re-applies until a
//     fresh one replaces it ("accumulated/empty gradients").
//   - Missed aggregates are never recovered: a replica only applies the
//     aggregates of rounds it is present for, so slow replicas drift from
//     the fast majority.
//
// Stale replays bias the aggregate and replica drift degrades the averaged
// model, which is why ER fails to reach the paper's accuracy thresholds
// under heterogeneity (Fig. 7a; "N/A" in Table 1).
type EagerReduce struct {
	// Quorum is the number of fresh contributions that closes a round; zero
	// selects the majority ⌊N/2⌋+1.
	Quorum int
}

// NewEagerReduce returns the ER baseline with the majority quorum.
func NewEagerReduce() *EagerReduce { return &EagerReduce{} }

// Name implements cluster.Strategy.
func (*EagerReduce) Name() string { return "ER" }

// Run implements cluster.Strategy. ER is the one baseline that does not
// ride the step machine or tensor.WeightedAverage: its rounds are decoupled
// from the worker loops (a worker deposits and keeps going, so no worker is
// ever "in" the collective), and its aggregate is a sum-then-scale over all
// N cached slots — including stale replays — not a convex combination of
// fresh contributions. Only the traffic accounting goes through the engine
// Environment.
func (e *EagerReduce) Run(c *cluster.Cluster) (*metrics.Result, error) {
	env := engine.NewSimEnv(c)
	quorum := e.Quorum
	if quorum == 0 {
		quorum = c.Cfg.N/2 + 1
	}
	n := float64(c.Cfg.N)

	// cached[i] is worker i's most recent gradient (zero until it first
	// contributes); lastAgg is the most recently completed aggregate.
	cached := make([]tensor.Vector, c.Cfg.N)
	for i := range cached {
		cached[i] = tensor.NewVector(len(c.Init))
	}
	lastAgg := tensor.NewVector(len(c.Init))
	haveAgg := false
	aggRound := 0
	applied := make([]int, c.Cfg.N) // last aggregate round worker applied
	fresh := 0
	inFlight := false

	var start func(w *cluster.Worker)
	var maybeLaunch func()

	finishRound := func() {
		lastAgg.Zero()
		for i := range cached {
			lastAgg.Add(cached[i])
		}
		lastAgg.Scale(1 / n)
		haveAgg = true
		aggRound++
		fresh = 0
		inFlight = false
		c.RecordUpdate()
		if !c.Eng.Stopped() {
			maybeLaunch() // deposits may have accumulated during the flight
		}
	}

	maybeLaunch = func() {
		if inFlight || fresh < quorum {
			return
		}
		inFlight = true
		ring := env.WorldRing()
		c.Eng.After(ring, finishRound)
	}

	start = func(w *cluster.Worker) {
		c.Snapshot(w)
		c.Eng.After(c.ComputeTime(w), func() {
			grad, _ := c.Gradient(w)
			cached[w.ID].CopyFrom(grad)
			fresh++
			// Apply only the latest completed aggregate; aggregates of
			// rounds this worker missed are lost to it (replica drift).
			if haveAgg && applied[w.ID] < aggRound {
				w.Opt.Update(w.Params(), lastAgg, 1)
				applied[w.ID] = aggRound
				w.Iter++
			}
			maybeLaunch()
			if !c.Eng.Stopped() {
				start(w)
			}
		})
	}

	for _, w := range c.Workers {
		w := w
		c.Eng.At(0, func() { start(w) })
	}
	c.Eng.Run()
	return c.Finish(), nil
}
