package live

import (
	"bytes"
	"os"
	"testing"
	"time"

	"partialreduce/internal/health"
	"partialreduce/internal/metrics"
	"partialreduce/internal/trace"
)

// TestLiveWatchdogCapturesStragglerBundle: a straggling rank pushes its
// recent-blame EWMA over the SLO, the watchdog (evaluated on the
// controller service's own goroutine) fires blame-spike exactly once,
// and the flight recorder leaves one valid postmortem bundle with the
// trace ring inside.
func TestLiveWatchdogCapturesStragglerBundle(t *testing.T) {
	cfg := liveConfig(t, 9)
	cfg.Iters = 150
	cfg.ComputeDelay = func(worker, iter int) time.Duration {
		if worker == 1 {
			return 5 * time.Millisecond
		}
		return 0
	}
	cfg.Tracer = trace.New(trace.NewWallClock(), 2048)
	cfg.Instruments = metrics.NewInstruments(cfg.N)
	wd := health.New(health.Config{SLO: health.SLO{BlameRecent: 0.0005}})
	dir := t.TempDir()
	rec := health.NewRecorder(dir, cfg.Tracer, cfg.Instruments, []byte(`{"test":"live-watchdog"}`))
	cfg.Watchdog = wd
	cfg.WatchdogEvery = 10 * time.Millisecond
	cfg.Recorder = rec

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups == 0 {
		t.Fatal("no groups executed")
	}

	written := rec.Written()
	if len(written) != 1 {
		t.Fatalf("recorder wrote %d bundles %v, want exactly 1 (hysteresis must hold the firing rule)", len(written), written)
	}
	data, err := os.ReadFile(written[0])
	if err != nil {
		t.Fatal(err)
	}
	man, err := health.Validate(data)
	if err != nil {
		t.Fatalf("bundle failed validation: %v", err)
	}
	if len(man.Rules) != 1 || man.Rules[0] != "blame-spike" {
		t.Fatalf("bundle rules %v, want [blame-spike]", man.Rules)
	}
	_, parts, err := health.ReadBundle(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[health.PartTrace]) == 0 {
		t.Fatal("bundle trace ring is empty")
	}
	if len(parts[health.PartController]) == 0 {
		t.Fatal("bundle controller snapshot is empty")
	}
	st := wd.State()
	if !st.Ready() {
		t.Fatal("watchdog never evaluated")
	}
	if st.Healthy() {
		t.Fatal("blame-spike should still be firing at run end (the straggler never recovered)")
	}
}

// TestLiveWatchdogQuietRunStaysClean: with generous SLOs nothing fires
// and no bundle is written, but the watchdog still evaluates (readiness).
func TestLiveWatchdogQuietRunStaysClean(t *testing.T) {
	cfg := liveConfig(t, 10)
	cfg.Iters = 60
	cfg.Tracer = trace.New(trace.NewWallClock(), 2048)
	cfg.Instruments = metrics.NewInstruments(cfg.N)
	wd := health.New(health.Config{SLO: health.SLO{
		BlameRecent: 1e6, QueueDepth: 1e6, RetryStorm: 1e6,
	}})
	rec := health.NewRecorder(t.TempDir(), cfg.Tracer, cfg.Instruments, nil)
	cfg.Watchdog = wd
	cfg.WatchdogEvery = 5 * time.Millisecond
	cfg.Recorder = rec

	if _, err := Run(cfg, memWorld(cfg.N)); err != nil {
		t.Fatal(err)
	}
	if w := rec.Written(); len(w) != 0 {
		t.Fatalf("quiet run wrote bundles: %v", w)
	}
	st := wd.State()
	if !st.Ready() || !st.Healthy() {
		t.Fatalf("quiet run state: ready=%t healthy=%t, want true/true", st.Ready(), st.Healthy())
	}
}
