package live

import (
	"fmt"
	"sync"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/transport"
)

// RunAllReduce is the live All-Reduce baseline: every iteration all N
// workers compute a gradient and average it with one full-world ring
// all-reduce — the synchronous barrier P-Reduce removes. Each goroutine runs
// engine.RunAllReduceWorker, the same step loop the simulated AR baseline
// drives on virtual time. Comparing its wall time against Run on the same
// world (with the same injected ComputeDelay stragglers) demonstrates the
// heterogeneity tolerance live, not just in simulation. Config.P is ignored.
//
// Config.Crash is honored the hard way: the crashed worker simply stops
// participating, and because every iteration requires all N workers, the
// survivors' collectives fail and the whole run errors out. That asymmetry —
// P-Reduce's Run recovers from the same crash schedule, RunAllReduce cannot —
// is the fault-tolerance claim of §4 made executable.
func RunAllReduce(cfg Config, world []transport.Transport) (*Report, error) {
	if cfg.N < 2 || cfg.Train == nil || cfg.Test == nil || cfg.BatchSize < 1 || cfg.Iters < 1 {
		return nil, fmt.Errorf("live: invalid all-reduce config")
	}
	if err := cfg.Optimizer.Validate(); err != nil {
		return nil, err
	}
	if len(world) != cfg.N {
		return nil, fmt.Errorf("live: %d transports for %d workers", len(world), cfg.N)
	}

	base := cfg.Spec.Build(cfg.Seed)
	shards := cfg.Train.Shard(cfg.N)
	group := make([]int, cfg.N)
	for i := range group {
		group[i] = i
	}

	start := time.Now()
	models := make([]model.Model, cfg.N)
	iters := make([]int, cfg.N)
	runErr := make(chan error, cfg.N)
	var commMu sync.Mutex
	var comms collective.OpStats
	var wg sync.WaitGroup
	for id := 0; id < cfg.N; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := base.Clone()
			models[id] = m
			var local collective.OpStats
			defer func() {
				commMu.Lock()
				comms.Merge(local)
				commMu.Unlock()
			}()
			env := engine.NewLiveEnv(id, world[id], collective.Options{
				SegmentElems: cfg.SegmentElems,
				Stats:        &local,
			}, nil, nil)
			w := &engine.LiveWorker{
				Env:          env,
				Model:        m,
				Opt:          optim.NewSGD(cfg.Optimizer, m.NumParams()),
				Sampler:      data.NewSampler(shards[id], cfg.Seed*31+int64(id)),
				Iters:        cfg.Iters,
				BatchSize:    cfg.BatchSize,
				ComputeDelay: cfg.ComputeDelay,
				CrashAt:      cfg.Crash[id], // zero when id never crashes
				OnIter:       func(it int) { iters[id] = it },
			}
			if _, err := engine.RunAllReduceWorker(w, world, group); err != nil {
				runErr <- fmt.Errorf("live: worker %d all-reduce: %w", id, err)
				for _, t := range world {
					t.Close()
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-runErr:
		return nil, err
	default:
	}

	// All replicas are identical; evaluate worker 0's.
	return &Report{
		FinalAccuracy: model.Accuracy(models[0], cfg.Test),
		Groups:        cfg.Iters,
		WallTime:      time.Since(start),
		WorkerIters:   iters,
		Comms:         comms,
	}, nil
}
