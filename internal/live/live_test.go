package live

import (
	"net"
	"sync"
	"testing"
	"time"

	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/transport"
)

func liveConfig(t *testing.T, seed int64) Config {
	t.Helper()
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 4, Dim: 12, Examples: 1600, Separation: 3.2, Noise: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	return Config{
		N:         4,
		P:         2,
		Spec:      model.Spec{Inputs: 12, Hidden: []int{16}, Classes: 4},
		Seed:      seed,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: optim.Config{LR: 0.05, Momentum: 0.9},
		Iters:     120,
	}
}

func memWorld(n int) []transport.Transport {
	eps := transport.NewMem(n)
	world := make([]transport.Transport, n)
	for i, e := range eps {
		world[i] = e
	}
	return world
}

func TestConfigValidate(t *testing.T) {
	good := liveConfig(t, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.N = 1 },
		func(c *Config) { c.P = 1 },
		func(c *Config) { c.P = c.N + 1 },
		func(c *Config) { c.Train = nil },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Iters = 0 },
		func(c *Config) { c.Optimizer.LR = 0 },
	}
	for i, mutate := range mutations {
		cfg := liveConfig(t, 1)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunRejectsWorldMismatch(t *testing.T) {
	cfg := liveConfig(t, 2)
	if _, err := Run(cfg, memWorld(2)); err == nil {
		t.Fatal("world size mismatch accepted")
	}
}

func TestLiveTrainingConverges(t *testing.T) {
	cfg := liveConfig(t, 3)
	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.9 {
		t.Fatalf("live accuracy %.3f, want >= 0.9", rep.FinalAccuracy)
	}
	if rep.Groups == 0 {
		t.Fatal("no groups executed")
	}
	for id, it := range rep.WorkerIters {
		if it < cfg.Iters {
			t.Fatalf("worker %d stopped at %d/%d iterations", id, it, cfg.Iters)
		}
	}
}

func TestLiveDynamicWeighting(t *testing.T) {
	cfg := liveConfig(t, 4)
	cfg.Weighting = controller.Dynamic
	// Make worker 0 a straggler so dynamic weights actually engage.
	cfg.ComputeDelay = func(worker, iter int) time.Duration {
		if worker == 0 {
			return 2 * time.Millisecond
		}
		return 0
	}
	cfg.Iters = 60
	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("dynamic live accuracy %.3f", rep.FinalAccuracy)
	}
}

func TestLiveLargerGroups(t *testing.T) {
	cfg := liveConfig(t, 5)
	cfg.N, cfg.P = 6, 3
	rep, err := Run(cfg, memWorld(6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.9 {
		t.Fatalf("P=3 live accuracy %.3f", rep.FinalAccuracy)
	}
}

// The full prototype over real sockets: 3 workers, TCP mesh, P=2.
func TestLiveOverTCP(t *testing.T) {
	cfg := liveConfig(t, 6)
	cfg.N, cfg.P = 3, 2
	cfg.Iters = 60

	addrs := make([]string, cfg.N)
	lns := make([]interface{ Close() error }, 0, cfg.N)
	for i := range addrs {
		ln, err := listenFree()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		lns = append(lns, ln)
	}
	for _, ln := range lns {
		ln.Close()
	}

	world := make([]transport.Transport, cfg.N)
	errc := make(chan error, cfg.N)
	done := make(chan int, cfg.N)
	for i := range world {
		i := i
		go func() {
			tcp, err := transport.NewTCP(i, addrs)
			if err != nil {
				errc <- err
				return
			}
			world[i] = tcp
			done <- i
		}()
	}
	for range world {
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-done:
		}
	}
	defer func() {
		for _, w := range world {
			w.Close()
		}
	}()

	rep, err := Run(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("TCP live accuracy %.3f", rep.FinalAccuracy)
	}
	if rep.Groups == 0 {
		t.Fatal("no groups over TCP")
	}
}

func listenFree() (interface {
	Close() error
	Addr() net.Addr
}, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestLiveAllReduceConverges(t *testing.T) {
	cfg := liveConfig(t, 30)
	cfg.Iters = 100
	rep, err := RunAllReduce(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.9 {
		t.Fatalf("live AR accuracy %.3f", rep.FinalAccuracy)
	}
	if rep.Groups != cfg.Iters {
		t.Fatalf("rounds: %d want %d", rep.Groups, cfg.Iters)
	}
}

func TestLiveAllReduceValidation(t *testing.T) {
	cfg := liveConfig(t, 31)
	if _, err := RunAllReduce(cfg, memWorld(2)); err == nil {
		t.Fatal("world mismatch accepted")
	}
	bad := cfg
	bad.Iters = 0
	if _, err := RunAllReduce(bad, memWorld(cfg.N)); err == nil {
		t.Fatal("zero iters accepted")
	}
}

// The headline property, live: with a straggler injected, P-Reduce finishes
// the same per-worker iteration count in less wall time than All-Reduce,
// because only AR's barrier waits for the slow worker.
func TestLiveStragglerTolerance(t *testing.T) {
	delay := func(worker, iter int) time.Duration {
		if worker == 0 {
			return 2 * time.Millisecond
		}
		return time.Microsecond
	}
	cfg := liveConfig(t, 32)
	cfg.Iters = 40
	cfg.ComputeDelay = delay

	arRep, err := RunAllReduce(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	prRep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	// AR pays the straggler's delay every round (~80ms minimum); P-Reduce
	// lets the fast workers proceed. Allow generous scheduling noise.
	if prRep.WallTime >= arRep.WallTime {
		t.Fatalf("P-Reduce (%v) not faster than AR (%v) with a live straggler",
			prRep.WallTime, arRep.WallTime)
	}
}

// Failure injection: closing every endpoint mid-run must fail collectives
// and unblock all workers rather than deadlocking the run.
func TestLiveTransportFailureDoesNotHang(t *testing.T) {
	cfg := liveConfig(t, 33)
	cfg.Iters = 5000 // long enough that the close lands mid-run
	world := memWorld(cfg.N)

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = Run(cfg, world)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	for _, w := range world {
		w.Close()
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run hung after transport failure")
	}
	// Either the run failed cleanly, or it had already finished.
	if runErr == nil && rep == nil {
		t.Fatal("no report and no error")
	}
}

func runWorkerWorld(t *testing.T, cfg Config, world []transport.Transport) []*Report {
	t.Helper()
	reports := make([]*Report, cfg.N)
	errs := make([]error, cfg.N)
	var wg sync.WaitGroup
	for r := 0; r < cfg.N; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[r], errs[r] = RunWorker(cfg, world[r], r == 0)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return reports
}

// The multi-process worker protocol (controller over the transport) trains
// to the same quality as the in-process runtime.
func TestRunWorkerProtocol(t *testing.T) {
	cfg := liveConfig(t, 40)
	cfg.Iters = 100
	reports := runWorkerWorld(t, cfg, memWorld(cfg.N))
	if reports[0].FinalAccuracy < 0.9 {
		t.Fatalf("multi-process accuracy %.3f", reports[0].FinalAccuracy)
	}
	total := 0
	for _, rep := range reports {
		total += rep.Groups
	}
	if total == 0 {
		t.Fatal("no groups executed")
	}
	if total%cfg.P != 0 {
		t.Fatalf("total member-group participations %d not divisible by P=%d", total, cfg.P)
	}
}

func TestRunWorkerDynamicOverTCP(t *testing.T) {
	cfg := liveConfig(t, 41)
	cfg.N, cfg.P = 3, 2
	cfg.Iters = 60
	cfg.Weighting = controller.Dynamic
	cfg.Approx = controller.ClosestIteration

	addrs := make([]string, cfg.N)
	for i := range addrs {
		ln, err := listenFree()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	world := make([]transport.Transport, cfg.N)
	var wg sync.WaitGroup
	for i := range world {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tcp, err := transport.NewTCP(i, addrs)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			world[i] = tcp
		}()
	}
	wg.Wait()
	for _, w := range world {
		if w == nil {
			t.Fatal("mesh incomplete")
		}
	}
	defer func() {
		for _, w := range world {
			w.Close()
		}
	}()
	reports := runWorkerWorld(t, cfg, world)
	if reports[0].FinalAccuracy < 0.85 {
		t.Fatalf("TCP multi-process accuracy %.3f", reports[0].FinalAccuracy)
	}
}

func TestRunWorkerValidation(t *testing.T) {
	cfg := liveConfig(t, 42)
	world := memWorld(cfg.N + 1)
	if _, err := RunWorker(cfg, world[0], true); err == nil {
		t.Fatal("world size mismatch accepted")
	}
	// Controller must be hosted on rank 0.
	w2 := memWorld(cfg.N)
	if _, err := RunWorker(cfg, w2[1], true); err == nil {
		t.Fatal("controller on rank 1 accepted")
	}
}

func TestGroupCodec(t *testing.T) {
	g := controller.Group{
		Members:    []int{3, 1, 4},
		Weights:    []float64{0.5, 0.25, 0.25},
		InitWeight: 0.1,
		Iter:       17,
	}
	got, err := decodeDirective(encodeDirective(engine.Directive{Group: g, OpID: 9, Epoch: 5}))
	if err != nil || got.Skip || got.OpID != 9 || got.Epoch != 5 {
		t.Fatalf("decode: %v %+v", err, got)
	}
	if got.Group.Iter != 17 || got.Group.InitWeight != 0.1 || len(got.Group.Members) != 3 || got.Group.Members[0] != 3 {
		t.Fatalf("round trip: %+v", got.Group)
	}
	got, err = decodeDirective(encodeDirective(engine.Directive{Skip: true, Epoch: 2}))
	if err != nil || !got.Skip || got.Epoch != 2 {
		t.Fatalf("skip reply: %v %+v", err, got)
	}
	got, err = decodeDirective(encodeDirective(engine.Directive{Drain: true, Epoch: 7}))
	if err != nil || !got.Drain || got.Epoch != 7 {
		t.Fatalf("drain reply: %v %+v", err, got)
	}
	got, err = decodeDirective(encodeDirective(engine.Directive{Refresh: true, Epoch: 3}))
	if err != nil || !got.Refresh || got.Epoch != 3 {
		t.Fatalf("refresh reply: %v %+v", err, got)
	}
	got, err = decodeDirective(encodeDirective(engine.Directive{
		Bootstrap: true, BootstrapFor: 11, BootstrapOp: bootOpBase + 4, Epoch: 9,
	}))
	if err != nil || !got.Bootstrap || got.BootstrapFor != 11 || got.BootstrapOp != bootOpBase+4 || got.Epoch != 9 {
		t.Fatalf("bootstrap reply: %v %+v", err, got)
	}
	if _, err := decodeDirective([]float64{1}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := decodeDirective([]float64{0, 1, 2, 0, 1, 0, 2, 0}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := decodeDirective([]float64{9, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
