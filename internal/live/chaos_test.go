package live

import (
	"os"
	"strconv"
	"testing"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/hetero"
	"partialreduce/internal/transport"
)

// chaosSeeds returns how many seeds the soak sweeps. The default keeps
// `make ci` quick; `make chaos` (or PREDUCE_CHAOS_SEEDS=n) widens the sweep.
func chaosSeeds(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("PREDUCE_CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("PREDUCE_CHAOS_SEEDS=%q is not a positive integer", s)
		}
		return n
	}
	return 2
}

// TestChaosSoak throws every fault in the repertoire at the same run:
// a fail-stop worker, a controller crash (warm on even seeds, cold on odd),
// a timed two-rank network partition, and a seeded elastic 4→6→4 staircase
// (two ranks bootstrap-join mid-run, then both drain back out), all on one
// seeded Faulty world. The invariants are the ones each fault guarantees
// alone — exactly the injected death is condemned, the controller restarts
// exactly once, every membership change completes without condemning anyone,
// the surviving founders complete every iteration, and nothing hangs — and
// the soak asserts they still compose. A bootstrap transfer that straddles
// the partition times out and aborts cleanly (the joiner is un-joined via
// drain+decommission), so the drain counters hold under every interleaving.
// Each seed is fully deterministic, so a failure reproduces with
// PREDUCE_CHAOS_SEEDS and the logged seed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a timed sweep")
	}
	seeds := chaosSeeds(t)
	for s := 0; s < seeds; s++ {
		seed := int64(70 + s)
		cold := s%2 == 1
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			cfg := liveConfig(t, seed)
			cfg.N = 6
			cfg.Initial = 4
			// Joins at 8 and 14 dispatched groups, drains at 20 and 26: the
			// whole staircase lands after the controller crash (at 4 groups)
			// and interleaves with the partition window and the rank-1 crash.
			cfg.Elastic = hetero.ScaleSchedule(4, 6, 4, 8, 6)
			cfg.CtrlCrashAfter = 4
			cfg.CtrlCold = cold
			cfg.CtrlTimeout = 100 * time.Millisecond
			cfg.CollectiveTimeout = 150 * time.Millisecond
			cfg.Retry = collective.RetryPolicy{
				MaxAttempts: 4, BaseDelay: 20 * time.Millisecond,
				MaxDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: seed,
			}
			// Rank 1 fail-stops mid-run; it is outside the partitioned pair so
			// its death is detectable while the links are cut. FailTimeout
			// comfortably exceeds the partition, so a cut-off worker is never
			// mistaken for a dead one.
			cfg.Crash = map[int]int{1: 20 + 3*int(seed%5)}
			cfg.FailTimeout = 3 * time.Second
			cfg.ComputeDelay = func(worker, iter int) time.Duration { return 2 * time.Millisecond }

			world, _ := faultyWorld(t, cfg.N, transport.FaultPlan{
				Seed: seed,
				Partitions: []transport.Partition{{
					Ranks: []int{2, 3},
					From:  40 * time.Millisecond,
					Until: 300 * time.Millisecond,
				}},
			})

			rep := runBounded(t, cfg, world)
			if rep.CtrlRestarts != 1 {
				t.Fatalf("controller restarts = %d, want 1", rep.CtrlRestarts)
			}
			if rep.Failures != 1 {
				t.Fatalf("failures = %d, want exactly the injected fail-stop", rep.Failures)
			}
			// Both joiners are admitted, and both leave again — by the
			// scheduled drain, or by the clean un-join when their bootstrap
			// straddled a fault. Either way nobody is condemned and every
			// drain hand-off decommissions.
			if rep.Joins != 2 {
				t.Fatalf("joins = %d, want both scheduled admissions", rep.Joins)
			}
			if rep.Drains != 2 || rep.Decommissions != 2 {
				t.Fatalf("drains/decommissions = %d/%d, want 2/2",
					rep.Drains, rep.Decommissions)
			}
			for _, id := range []int{0, 2, 3} {
				if !rep.Completed[id] {
					t.Fatalf("survivor %d did not complete (iters %d/%d)",
						id, rep.WorkerIters[id], cfg.Iters)
				}
				if rep.WorkerIters[id] < cfg.Iters {
					t.Fatalf("survivor %d stopped at %d/%d", id, rep.WorkerIters[id], cfg.Iters)
				}
			}
			if rep.Completed[1] {
				t.Fatal("the fail-stopped worker reported completion")
			}
			for _, id := range []int{4, 5} {
				if rep.Completed[id] {
					t.Fatalf("drained joiner %d reported completion", id)
				}
			}
			if rep.FinalAccuracy < 0.80 {
				t.Fatalf("accuracy %.3f after crash + failover + partition", rep.FinalAccuracy)
			}
		})
	}
}
