package live

import (
	"bytes"
	"testing"

	"partialreduce/internal/metrics"
	"partialreduce/internal/trace"
)

// TestRunTraced is the in-process trace smoke test: a short live run with
// tracing and instruments enabled must produce a schema-valid Chrome
// trace carrying worker spans and controller decisions, and populated
// instruments (staleness histogram, barrier-wait totals, comm counters).
func TestRunTraced(t *testing.T) {
	cfg := liveConfig(t, 11)
	tr := trace.New(trace.NewWallClock(), 1<<14)
	ins := metrics.NewInstruments(cfg.N)
	cfg.Tracer = tr
	cfg.Instruments = ins

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups == 0 {
		t.Fatal("no groups executed")
	}

	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("traced live run recorded no events")
	}
	kinds := map[trace.Kind]int{}
	ctrlEvents := 0
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Track == trace.ControllerTrack {
			ctrlEvents++
		}
	}
	for _, k := range []trace.Kind{
		trace.KCompute, trace.KSignalWait, trace.KCollective,
		trace.KReduceScatter, trace.KAllGather,
		trace.KReady, trace.KGroupFormed, trace.KStaleness,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in the live trace", k)
		}
	}
	if ctrlEvents == 0 {
		t.Error("no controller-track events")
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	n, err := trace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("live trace fails the schema check: %v", err)
	}
	if n != len(events) {
		t.Fatalf("schema check counted %d events, tracer recorded %d", n, len(events))
	}

	snap := ins.Snapshot()
	if snap.GroupsFormed == 0 || snap.Staleness.Count() == 0 {
		t.Fatalf("live instruments empty: groups=%d staleness=%d",
			snap.GroupsFormed, snap.Staleness.Count())
	}
	if snap.Comms.Ops == 0 || snap.Comms.BytesSent == 0 {
		t.Fatalf("live comm instruments empty: %+v", snap.Comms)
	}
	var waited float64
	for _, s := range snap.BarrierWait {
		waited += s
	}
	if waited <= 0 {
		t.Fatal("no barrier-wait time recorded")
	}
}

// TestRunTracedMultiProcessPath drives the RunWorker (wire control-plane)
// path with tracing enabled, covering the per-process worker loop and the
// hosted controller service.
func TestRunTracedMultiProcessPath(t *testing.T) {
	cfg := liveConfig(t, 13)
	cfg.Iters = 60
	tr := trace.New(trace.NewWallClock(), 1<<14)
	ins := metrics.NewInstruments(cfg.N)
	cfg.Tracer = tr
	cfg.Instruments = ins

	world := memWorld(cfg.N)
	type out struct {
		rep *Report
		err error
	}
	outs := make(chan out, cfg.N)
	for r := 0; r < cfg.N; r++ {
		r := r
		go func() {
			rep, err := RunWorker(cfg, world[r], r == 0)
			outs <- out{rep, err}
		}()
	}
	for i := 0; i < cfg.N; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
	}

	kinds := map[trace.Kind]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []trace.Kind{
		trace.KCompute, trace.KSignalWait, trace.KCollective,
		trace.KReady, trace.KGroupFormed,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events on the RunWorker path", k)
		}
	}
	snap := ins.Snapshot()
	if snap.GroupsFormed == 0 || snap.Comms.Ops == 0 {
		t.Fatalf("RunWorker instruments empty: groups=%d comms=%+v",
			snap.GroupsFormed, snap.Comms)
	}
}
