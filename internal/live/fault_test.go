package live

import (
	"sync"
	"testing"
	"time"

	"partialreduce/internal/controller"
	"partialreduce/internal/transport"
)

// The headline fault-tolerance property (§4): a worker crashing mid-training
// — with its ready signal in flight, so the controller forms a group
// containing the corpse — must not stop the run. The survivors detect the
// death inside the collective, roll back, re-signal, and finish training to
// full quality.
func TestLiveCrashSurvivors(t *testing.T) {
	cfg := liveConfig(t, 50)
	cfg.Crash = map[int]int{3: 10}
	cfg.FailTimeout = 2 * time.Second

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalAccuracy < 0.9 {
		t.Fatalf("accuracy %.3f after crash, want >= 0.9", rep.FinalAccuracy)
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rep.Failures)
	}
	if rep.Alive[3] {
		t.Fatal("crashed worker still marked alive")
	}
	if rep.Completed[3] {
		t.Fatal("crashed worker marked completed")
	}
	if rep.WorkerIters[3] >= cfg.Iters {
		t.Fatalf("crashed worker ran %d iters, want < %d", rep.WorkerIters[3], cfg.Iters)
	}
	for id := 0; id < 3; id++ {
		if !rep.Completed[id] {
			t.Fatalf("survivor %d did not complete", id)
		}
		if rep.WorkerIters[id] < cfg.Iters {
			t.Fatalf("survivor %d stopped at %d/%d", id, rep.WorkerIters[id], cfg.Iters)
		}
	}
	if rep.Aborts < 1 {
		t.Fatalf("aborts = %d, want >= 1 (a group formed with the corpse must be torn down)", rep.Aborts)
	}
	if rep.Rejoins != 0 {
		t.Fatalf("rejoins = %d, want 0", rep.Rejoins)
	}
}

// Two concurrent crashes with P=2 over N=4: the two survivors keep grouping
// with each other and finish.
func TestLiveTwoCrashes(t *testing.T) {
	cfg := liveConfig(t, 51)
	cfg.Crash = map[int]int{1: 8, 3: 14}
	cfg.FailTimeout = 2 * time.Second

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 2 {
		t.Fatalf("failures = %d, want 2", rep.Failures)
	}
	if !rep.Completed[0] || !rep.Completed[2] {
		t.Fatalf("survivors incomplete: %v", rep.Completed)
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("accuracy %.3f after two crashes", rep.FinalAccuracy)
	}
}

// A crash with P > 2: the remaining group shrinks to the effective size
// min(P, survivors) and the run still completes.
func TestLiveCrashShrinksGroupSize(t *testing.T) {
	cfg := liveConfig(t, 52)
	cfg.N, cfg.P = 4, 3
	cfg.Crash = map[int]int{0: 12}
	cfg.FailTimeout = 2 * time.Second

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rep.Failures)
	}
	for id := 1; id < cfg.N; id++ {
		if !rep.Completed[id] {
			t.Fatalf("survivor %d did not complete", id)
		}
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("accuracy %.3f", rep.FinalAccuracy)
	}
}

// Checkpoint-based rejoin: the crashed worker restarts from its snapshot,
// re-enters the cluster, and finishes its iterations like everyone else.
func TestLiveCrashRejoin(t *testing.T) {
	cfg := liveConfig(t, 53)
	cfg.Crash = map[int]int{2: 10}
	cfg.Rejoin = map[int]time.Duration{2: 30 * time.Millisecond}
	cfg.FailTimeout = 2 * time.Second

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 || rep.Rejoins != 1 {
		t.Fatalf("failures=%d rejoins=%d, want 1/1", rep.Failures, rep.Rejoins)
	}
	if !rep.Alive[2] {
		t.Fatal("rejoined worker not alive at the end")
	}
	for id := 0; id < cfg.N; id++ {
		if !rep.Completed[id] {
			t.Fatalf("worker %d did not complete (rejoin should restore full strength)", id)
		}
		if rep.WorkerIters[id] < cfg.Iters {
			t.Fatalf("worker %d stopped at %d/%d", id, rep.WorkerIters[id], cfg.Iters)
		}
	}
	if rep.FinalAccuracy < 0.9 {
		t.Fatalf("accuracy %.3f after rejoin", rep.FinalAccuracy)
	}
}

// Crash under dynamic weighting: the staleness-aware weight generator must
// keep working as the survivor set shrinks.
func TestLiveCrashDynamicWeighting(t *testing.T) {
	cfg := liveConfig(t, 54)
	cfg.Weighting = controller.Dynamic
	cfg.Crash = map[int]int{1: 15}
	cfg.FailTimeout = 2 * time.Second
	cfg.Iters = 80

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d", rep.Failures)
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("dynamic accuracy %.3f after crash", rep.FinalAccuracy)
	}
}

// Config validation of the fault-injection knobs.
func TestFaultConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Crash = map[int]int{9: 5} },                                          // out of range
		func(c *Config) { c.Crash = map[int]int{1: 0} },                                          // iter < 1
		func(c *Config) { c.Crash = map[int]int{1: c.Iters + 1} },                                // iter > Iters
		func(c *Config) { c.Crash = map[int]int{1: 5} },                                          // no FailTimeout
		func(c *Config) { c.Rejoin = map[int]time.Duration{1: time.Millisecond} },                // rejoin w/o crash
		func(c *Config) { c.FailTimeout = -time.Second },                                         // negative timeout
		func(c *Config) { c.Crash = map[int]int{0: 1, 1: 1, 2: 1}; c.FailTimeout = time.Second }, // too many
		func(c *Config) { // negative rejoin delay
			c.Crash = map[int]int{1: 5}
			c.FailTimeout = time.Second
			c.Rejoin = map[int]time.Duration{1: -time.Millisecond}
		},
	}
	for i, mutate := range mutations {
		cfg := liveConfig(t, 55)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("fault mutation %d accepted", i)
		}
	}
	good := liveConfig(t, 55)
	good.Crash = map[int]int{1: 5}
	good.Rejoin = map[int]time.Duration{1: time.Millisecond}
	good.FailTimeout = time.Second
	if err := good.Validate(); err != nil {
		t.Fatalf("valid fault config rejected: %v", err)
	}
}

// The multi-process protocol under a crash: a non-host rank fails stop with
// its ready signal in flight; the host's receive loops and the survivors'
// failure reports converge on excluding it; the final gather runs over the
// survivor roster.
func TestRunWorkerCrash(t *testing.T) {
	cfg := liveConfig(t, 57)
	cfg.Crash = map[int]int{2: 10}
	cfg.FailTimeout = 2 * time.Second

	world := memWorld(cfg.N)
	reports := make([]*Report, cfg.N)
	errs := make([]error, cfg.N)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < cfg.N; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				reports[r], errs[r] = RunWorker(cfg, world[r], r == 0)
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("multi-process run hung after crash")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if reports[2].Completed[0] {
		t.Fatal("crashed rank reported completion")
	}
	if reports[2].WorkerIters[0] >= cfg.Iters {
		t.Fatalf("crashed rank ran %d iters", reports[2].WorkerIters[0])
	}
	for _, r := range []int{0, 1, 3} {
		if !reports[r].Completed[0] {
			t.Fatalf("survivor %d did not complete", r)
		}
		if reports[r].WorkerIters[0] < cfg.Iters {
			t.Fatalf("survivor %d stopped at %d/%d", r, reports[r].WorkerIters[0], cfg.Iters)
		}
	}
	if reports[0].FinalAccuracy < 0.85 {
		t.Fatalf("multi-process accuracy %.3f after crash", reports[0].FinalAccuracy)
	}
}

// The host rank must refuse to crash, and multi-process rejoin is rejected.
func TestRunWorkerFaultValidation(t *testing.T) {
	cfg := liveConfig(t, 58)
	cfg.Crash = map[int]int{0: 5}
	cfg.FailTimeout = time.Second
	world := memWorld(cfg.N)
	if _, err := RunWorker(cfg, world[0], true); err == nil {
		t.Fatal("controller-host crash accepted")
	}
	cfg = liveConfig(t, 58)
	cfg.Crash = map[int]int{1: 5}
	cfg.Rejoin = map[int]time.Duration{1: time.Millisecond}
	cfg.FailTimeout = time.Second
	if _, err := RunWorker(cfg, world[1], false); err == nil {
		t.Fatal("multi-process rejoin accepted")
	}
}

// The §4 asymmetry, executable: the same crash schedule that P-Reduce
// recovers from (TestLiveCrashSurvivors) kills the live All-Reduce baseline,
// because every All-Reduce iteration needs all N workers at the barrier. The
// run must fail with a peer-down error — and fail promptly, not hang.
func TestLiveAllReduceCrashFails(t *testing.T) {
	cfg := liveConfig(t, 50) // same seed and schedule as the P-Reduce test
	cfg.Crash = map[int]int{3: 10}
	cfg.FailTimeout = 2 * time.Second

	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		rep, err = RunAllReduce(cfg, memWorld(cfg.N))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("all-reduce hung on a crashed worker instead of failing")
	}
	if err == nil {
		t.Fatalf("all-reduce survived a worker crash (report: %+v); it must not", rep)
	}
	if !transport.IsFailure(err) {
		t.Fatalf("all-reduce failed with %v, want a peer-down failure", err)
	}
}

// A crash over the fault-injecting transport wrapper: the FaultyTransport's
// CrashAfterSends schedule kills a rank from below (mid-collective, not at
// the polite post-signal point), and the runtime still recovers via the
// peer-down/abort path plus the staleness backstop.
func TestLiveCrashViaFaultyTransport(t *testing.T) {
	cfg := liveConfig(t, 56)
	cfg.FailTimeout = 1500 * time.Millisecond

	inner := memWorld(cfg.N)
	eps, err := transport.NewFaultyWorld(inner, transport.FaultPlan{
		Seed:            56,
		CrashAfterSends: map[int]int{3: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	world := make([]transport.Transport, cfg.N)
	for i, e := range eps {
		world[i] = e
	}

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = Run(cfg, world)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run hung after transport-level crash")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Failures < 1 {
		t.Fatalf("failures = %d, want >= 1", rep.Failures)
	}
	if rep.Completed[3] {
		t.Fatal("crashed rank marked completed")
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("accuracy %.3f", rep.FinalAccuracy)
	}
}
