// Package live is the runtime counterpart of the simulator: real goroutine
// workers training real model replicas, a controller service mediating
// ready signals over channels, and P-Reduce groups executing genuine ring
// all-reduce collectives over an in-process or TCP transport. It follows the
// paper's prototype (§4): the controller carries only worker ids and
// iteration numbers — a few bytes — while model data moves exclusively
// through the group collectives.
//
// The training step itself is not defined here: workers execute
// engine.RunPReduceWorker — the same step state machine the simulator
// drives — over a LiveEnv (wall clock, real collectives) and a
// channel-backed engine.Control. This package owns only the substrate: the
// controller service goroutine, crash/checkpoint/rejoin choreography, and
// run assembly.
//
// The runtime is fault tolerant in the sense of §4: a worker crash is
// detected by its group peers (the collective fails with a typed peer-down
// error), the survivors roll back to their pre-group models and re-signal
// ready, and the controller excludes the dead worker from all future groups.
// Because no model data flows through the controller, exclusion is a pure
// metadata operation. Crashed workers can rejoin from a checkpoint.
package live

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"partialreduce/internal/checkpoint"
	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/health"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

// Config describes a live P-Reduce run.
type Config struct {
	N         int
	P         int
	Spec      model.Builder
	Seed      int64
	Train     *data.Dataset
	Test      *data.Dataset
	BatchSize int
	Optimizer optim.Config
	Weighting controller.Weighting
	Alpha     float64
	Approx    controller.ApproxRule
	// Policy selects a group-formation policy (see internal/policy). The
	// zero Spec leaves the controller's static behavior untouched. The
	// adaptive-p policy can shrink groups to Policy.PMin, so the controller
	// window is sized for PMin to keep the frozen-avoidance guarantee.
	Policy policy.Spec
	// Iters is the number of local iterations each worker performs.
	Iters int
	// ComputeDelay optionally injects artificial per-batch latency to
	// emulate heterogeneity on real hardware (nil for full speed).
	ComputeDelay func(worker, iter int) time.Duration
	// SegmentElems is the collective pipeline segment size in float64
	// elements: 0 selects collective.DefaultSegmentElems, negative disables
	// segmentation (one message per ring step).
	SegmentElems int

	// Initial is the number of founding members: ranks [Initial, N) park —
	// no worker goroutine, no controller membership — until an Elastic join
	// event admits them. Zero selects N (every rank is a founder). N is thus
	// the cluster's capacity, not its population.
	Initial int
	// Elastic is the membership-change schedule: join events admit parked
	// ranks (bootstrapping model state from a live donor first), drain
	// events retire members gracefully (the drain lands at the worker's
	// next ready signal; it is never condemned). Events trigger on the
	// cluster-wide dispatched-group count, the live counterpart of the
	// simulator's applied-update count.
	Elastic hetero.ElasticSchedule

	// Crash maps worker id -> local iteration at which the worker crashes.
	// The crash lands at the worst possible moment for the protocol: the
	// worker dies immediately after sending that iteration's ready signal,
	// so the controller (not yet knowing) can form a group containing the
	// corpse and the surviving members must detect the failure inside the
	// collective and recover — exactly the hazard §4 describes.
	Crash map[int]int
	// Rejoin maps a crashed worker id -> delay after its crash at which it
	// restarts from its last checkpoint and re-enters the cluster. Only
	// workers present in Crash may appear here.
	Rejoin map[int]time.Duration
	// FailTimeout enables the controller-side staleness detector: a worker
	// with no sign of life for this long is declared dead. It is the
	// backstop for crashes that peers cannot observe through a collective
	// (e.g. a worker whose queued signal can no longer fill a group).
	// Required when Crash is non-empty; choose it well above the slowest
	// legitimate iteration. Zero disables the detector.
	FailTimeout time.Duration

	// CtrlCrashAfter crashes the controller after that many groups have been
	// dispatched (0: never). The in-flight group replies are lost with it;
	// workers recover by re-sending their ready signals after CtrlTimeout.
	// Restart is warm (Snapshot/Restore) unless CtrlCold is set, in which
	// case the replacement controller is rebuilt purely from the re-sent
	// signals (plus the service-side failure detector re-reporting known
	// deaths as they go stale again).
	CtrlCrashAfter int
	// CtrlCold selects the cold-rebuild failover path.
	CtrlCold bool
	// CtrlTimeout bounds a worker's wait for a group reply: on expiry the
	// worker re-sends its ready signal (idempotent — the service recognizes
	// retransmissions). Required when CtrlCrashAfter > 0; zero means wait
	// forever (safe only when the controller cannot crash).
	CtrlTimeout time.Duration

	// Tracer, when non-nil, records the run's timeline: worker iteration
	// spans (compute, signal-wait, collectives with their ring phases),
	// controller decisions, and failover events, all on one shared wall
	// clock (trace.NewWallClock). Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Instruments, when non-nil, maintains the live queryable instruments
	// (staleness histogram, queue-depth series, per-worker barrier-wait
	// totals, sync-graph gauges, running CommStats) the telemetry endpoint
	// serves. Nil disables them at zero cost.
	Instruments *metrics.Instruments

	// Watchdog, when non-nil, arms the health plane: the controller
	// service evaluates it every WatchdogEvery (<= 0: 1s) inside the
	// controller's serialization domain — Instruments snapshot plus
	// queue depth and active count — and each newly firing rule captures
	// a postmortem bundle through Recorder. Evaluation reads the shared
	// wall clock (the Tracer's when one is attached, so breach times and
	// trace timestamps share an origin). Capture failures are
	// best-effort: monitoring must never kill training.
	Watchdog      *health.Watchdog
	WatchdogEvery time.Duration
	// Recorder is the flight recorder Watchdog breaches capture through;
	// nil records nothing (the watchdog still drives /healthz).
	Recorder *health.Recorder

	// CollectiveTimeout bounds every receive inside group collectives, so a
	// severed link or partition surfaces as a timeout instead of a hang.
	// Zero disables deadlines (and with them, retry).
	CollectiveTimeout time.Duration
	// Retry governs collective retry after timeouts (see
	// collective.RetryPolicy). Zero value: one attempt. A zero Retry.Seed is
	// replaced by Seed so the retry trace is reproducible per run seed.
	Retry collective.RetryPolicy
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("live: need N >= 2, got %d", c.N)
	case c.P < 2 || c.P > c.N:
		return fmt.Errorf("live: need 2 <= P <= N, got P=%d", c.P)
	case c.Spec == nil:
		return fmt.Errorf("live: model builder required")
	case c.Train == nil || c.Test == nil:
		return fmt.Errorf("live: train and test datasets required")
	case c.BatchSize < 1:
		return fmt.Errorf("live: batch size must be positive")
	case c.Iters < 1:
		return fmt.Errorf("live: need at least one iteration")
	case c.FailTimeout < 0:
		return fmt.Errorf("live: negative fail timeout")
	}
	for w, it := range c.Crash {
		if w < 0 || w >= c.N {
			return fmt.Errorf("live: crash worker %d out of range [0,%d)", w, c.N)
		}
		if it < 1 || it > c.Iters {
			return fmt.Errorf("live: crash iteration %d for worker %d outside [1,%d]", it, w, c.Iters)
		}
	}
	if len(c.Crash) > 0 && c.FailTimeout == 0 {
		return fmt.Errorf("live: crashes configured but FailTimeout unset (the staleness backstop is required)")
	}
	if len(c.Crash) >= c.N-1 {
		return fmt.Errorf("live: %d crashes leave fewer than 2 of %d workers", len(c.Crash), c.N)
	}
	if c.CtrlCrashAfter < 0 {
		return fmt.Errorf("live: negative CtrlCrashAfter")
	}
	if c.CtrlTimeout < 0 || c.CollectiveTimeout < 0 {
		return fmt.Errorf("live: negative timeout")
	}
	if c.CtrlCrashAfter > 0 && c.CtrlTimeout == 0 {
		return fmt.Errorf("live: CtrlCrashAfter needs CtrlTimeout (workers must re-send lost signals)")
	}
	if c.CtrlCrashAfter > 0 && c.CollectiveTimeout == 0 {
		return fmt.Errorf("live: CtrlCrashAfter needs CollectiveTimeout (a crash can strand a dispatched group; bounded collectives are the recovery path)")
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	for w, d := range c.Rejoin {
		if _, ok := c.Crash[w]; !ok {
			return fmt.Errorf("live: rejoin for worker %d which never crashes", w)
		}
		if d < 0 {
			return fmt.Errorf("live: negative rejoin delay for worker %d", w)
		}
	}
	if c.Policy.Enabled() {
		if err := c.Policy.Resolve(c.P).Validate(c.N, c.P); err != nil {
			return err
		}
	}
	if c.Initial != 0 && (c.Initial < 2 || c.Initial > c.N) {
		return fmt.Errorf("live: Initial %d outside [2,%d]", c.Initial, c.N)
	}
	if len(c.Elastic) > 0 || c.Initial != 0 {
		if err := c.Elastic.Validate(c.N, c.initialOr()); err != nil {
			return err
		}
	}
	return c.Optimizer.Validate()
}

// initialOr resolves the founding-member count: Initial, or N when zero.
func (c Config) initialOr() int {
	if c.Initial == 0 {
		return c.N
	}
	return c.Initial
}

// Report summarizes a live run.
type Report struct {
	FinalAccuracy float64 // accuracy of the averaged model (completed workers)
	Groups        int     // P-Reduce groups executed to completion
	Aborts        int     // groups torn down because a member died mid-collective
	Failures      int     // workers declared dead
	Rejoins       int     // workers re-admitted from a checkpoint
	Joins         int     // elastic scale-out admissions
	Drains        int     // graceful drain hand-offs started
	Decommissions int     // drains completed (member retired)
	StaleEpochs   int     // ready signals rejected for a stale world view
	CtrlRestarts  int     // controller crash/restart cycles survived
	WallTime      time.Duration
	WorkerIters   []int  // local iterations completed per worker
	Alive         []bool // final controller liveness vector
	Completed     []bool // workers that finished all their iterations
	// Comms aggregates data-plane statistics over every collective the run
	// executed (all workers, including aborted attempts' partial traffic).
	Comms collective.OpStats
}

// groupMsg carries the controller's answer to a ready signal: a formed
// group, or one of the control outcomes — skip ("proceed without
// averaging": tail release, or a signal the controller rejected), drain
// (graceful hand-off complete; exit cleanly), refresh (stale world-view
// epoch; adopt epoch and re-signal), or a bootstrap donor assignment.
// Every answer carries the controller's current epoch.
type groupMsg struct {
	group controller.Group
	opID  uint32
	skip  bool

	drain        bool
	refresh      bool
	bootstrap    bool
	bootstrapFor int
	bootstrapOp  uint32
	epoch        uint64
}

// svcKind enumerates messages on the controller service's inbox.
type svcKind int

const (
	kindReady     svcKind = iota // worker finished an iteration and wants a group
	kindDone                     // worker finished all iterations
	kindFail                     // worker observed a peer die inside a collective
	kindRejoin                   // crashed worker asks to re-enter from checkpoint
	kindStuck                    // worker's collective timed out with no peer death
	kindJoin                     // bootstrapped elastic rank asks to be admitted
	kindJoinAbort                // bootstrap transfer failed; re-queue the join
)

// svcMsg is one message to the controller service.
type svcMsg struct {
	kind   svcKind
	worker int
	iter   int
	seq    uint64         // kindReady: per-worker signal sequence number
	epoch  uint64         // kindReady: sender's world-view epoch (0: unversioned)
	reply  chan *groupMsg // kindReady: where to deliver the group
	dead   int            // kindFail: the peer observed down
	group  controller.Group
	opID   uint32        // kindFail/kindStuck: the failing collective op
	admit  chan struct{} // kindRejoin/kindJoin: closed once the worker is admitted
}

// runtime bundles the state shared by the service, the workers, and the
// rejoin goroutines of one Run.
type runtime struct {
	cfg    Config
	world  []transport.Transport
	base   model.Model
	init   tensor.Vector
	shards []*data.Dataset

	svcCh  chan svcMsg
	runErr chan error
	wg     sync.WaitGroup

	iters  []int
	models []model.Model

	// readySeq[i] is worker i's last issued ready-signal sequence number.
	// Each index is touched only by the worker's current incarnation (crash →
	// rejoin hand-off is ordered by goroutine creation), so no lock is needed.
	readySeq []uint64

	commMu sync.Mutex
	comms  collective.OpStats

	// Written by the service goroutine before ctrlDone closes; read by Run
	// afterwards (the channel close is the happens-before edge).
	finalStats   controller.Stats
	finalAlive   []bool
	ctrlRestarts int
}

// addComms folds a worker's local data-plane stats into the run total.
func (rt *runtime) addComms(s *collective.OpStats) {
	rt.commMu.Lock()
	rt.comms.Merge(*s)
	rt.commMu.Unlock()
}

// Run trains with cfg over the given transport world (len(world) == N; entry
// i is worker i's endpoint). It blocks until every surviving worker completes
// its iterations and returns the report.
func Run(cfg Config, world []transport.Transport) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(world) != cfg.N {
		return nil, fmt.Errorf("live: %d transports for %d workers", len(world), cfg.N)
	}
	ctrlCfg := controller.Config{
		N: cfg.N, P: cfg.P, Initial: cfg.Initial,
		Weighting: cfg.Weighting, Alpha: cfg.Alpha, Approx: cfg.Approx,
	}
	var pol policy.Policy
	if cfg.Policy.Enabled() {
		spec := cfg.Policy.Resolve(cfg.P)
		if spec.Name == policy.NameAdaptiveP && spec.PMin < cfg.P {
			// Adaptive groups can shrink to PMin; the sync window must be
			// sized for the smallest group or frozen avoidance would reject
			// them.
			ctrlCfg.Window = controller.MinWindow(cfg.N, spec.PMin)
		}
		var perr error
		if pol, perr = policy.New(cfg.Policy, cfg.N, cfg.P); perr != nil {
			return nil, perr
		}
	}
	ctrl, err := controller.New(ctrlCfg)
	if err != nil {
		return nil, err
	}
	ctrl.SetTracer(cfg.Tracer)
	ctrl.SetInstruments(cfg.Instruments)
	if pol != nil {
		if err := ctrl.SetPolicy(pol); err != nil {
			return nil, err
		}
	}

	base := cfg.Spec.Build(cfg.Seed)
	rt := &runtime{
		cfg:    cfg,
		world:  world,
		base:   base,
		init:   base.Params().Clone(),
		shards: cfg.Train.Shard(cfg.N),
		svcCh:  make(chan svcMsg, 4*cfg.N),
		runErr: make(chan error, 2*cfg.N),
		iters:  make([]int, cfg.N),
		models: make([]model.Model, cfg.N),

		readySeq: make([]uint64, cfg.N),
	}

	completed := make([]bool, cfg.N)
	stop := make(chan struct{})
	ctrlDone := make(chan struct{})
	go rt.service(ctrl, completed, stop, ctrlDone)

	start := time.Now()
	// Ranks [initialOr, N) park: no goroutine until a join event admits them
	// (rt.join spawns the worker after the bootstrap transfer lands).
	for id := 0; id < cfg.initialOr(); id++ {
		id := id
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			m := base.Clone()
			rt.models[id] = m
			opt := optim.NewSGD(cfg.Optimizer, m.NumParams())
			sampler := data.NewSampler(rt.shards[id], cfg.Seed*31+int64(id))
			rt.worker(id, m, opt, sampler, 0, true)
		}()
	}

	rt.wg.Wait()
	close(stop)
	<-ctrlDone
	select {
	case err := <-rt.runErr:
		return nil, err
	default:
	}

	// Average the completed replicas for inference (Alg. 2 line 8). Workers
	// that died and never rejoined hold stale models and are excluded.
	avg := tensor.NewVector(len(rt.init))
	n := 0
	for id, m := range rt.models {
		if completed[id] {
			avg.Add(m.Params())
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("live: no worker completed its iterations")
	}
	avg.Scale(1 / float64(n))
	base.SetParams(avg)

	stats := rt.finalStats
	return &Report{
		FinalAccuracy: model.Accuracy(base, cfg.Test),
		Groups:        stats.GroupsFormed - stats.GroupsAborted,
		Aborts:        stats.GroupsAborted,
		Failures:      stats.Failures,
		Rejoins:       stats.Rejoins,
		Joins:         stats.Joins,
		Drains:        stats.Drains,
		Decommissions: stats.Decommissions,
		StaleEpochs:   stats.StaleEpochs,
		CtrlRestarts:  rt.ctrlRestarts,
		WallTime:      time.Since(start),
		WorkerIters:   rt.iters,
		Alive:         rt.finalAlive,
		Completed:     completed,
		Comms:         rt.comms,
	}, nil
}

// service serializes all controller access. It owns liveness bookkeeping:
// which workers are waiting for a group, which are inside a dispatched
// collective, and when each was last heard from. It runs until stop closes
// (after every worker goroutine has exited), so a sender can never block on
// a vanished service.
//
// The service also hosts the controller-failover harness: with
// Config.CtrlCrashAfter set, the controller object is destroyed after that
// many dispatched groups and replaced — warm from a crash-point Snapshot, or
// cold from scratch, to be repopulated by the ready signals workers re-send
// when their bounded reply waits expire. Service-side bookkeeping (who is
// dead, who completed, transport-level abort marks) survives the crash, as a
// real deployment's failure detector and fabric state would: only the
// controller's queue/graph/weights state is lost and recovered.
func (rt *runtime) service(ctrl *controller.Controller, completed []bool, stop, ctrlDone chan struct{}) {
	cfg := rt.cfg
	carry := controller.Stats{} // stats of pre-crash controller incarnations
	defer func() {
		st := ctrl.Stats()
		fin := carry
		fin.GroupsFormed += st.GroupsFormed
		fin.Interventions += st.Interventions
		fin.FrozenChecks += st.FrozenChecks
		fin.Failures += st.Failures
		fin.Rejoins += st.Rejoins
		fin.GroupsAborted += st.GroupsAborted
		fin.Joins += st.Joins
		fin.Drains += st.Drains
		fin.Decommissions += st.Decommissions
		fin.StaleEpochs += st.StaleEpochs
		rt.finalStats = fin
		rt.finalAlive = ctrl.Alive()
		close(ctrlDone)
	}()

	waiting := make(map[int]chan *groupMsg, cfg.N)
	waitSeq := make(map[int]uint64, cfg.N) // seq of the signal awaiting reply
	answered := make([]uint64, cfg.N)      // last seq answered per worker
	lastOp := make(map[int]controller.Group, cfg.N)
	lastOpID := make(map[int]uint32, cfg.N)
	lastHeard := make([]time.Time, cfg.N)
	now := time.Now()
	for i := range lastHeard {
		lastHeard[i] = now
	}
	aborted := make(map[uint32]bool)
	deadSet := make(map[int]bool) // service-side memory of detected deaths
	active := cfg.initialOr()     // workers believed alive and not yet finished
	opSeq := uint32(0)
	ctrlGroups := 0 // groups dispatched, for the crash and elastic triggers
	crashed := false

	// Elastic membership state. Events trigger on ctrlGroups, the dispatched
	// group count — the live counterpart of the simulator's applied-update
	// counter (identical under lockstep, where every group is one cluster
	// iteration). A join waits in pendingJoins until the next ready signal
	// from an eligible donor, which is answered with a bootstrap assignment
	// instead of being queued; a drain waits in drainPending until the
	// draining worker's own next ready signal, so it always lands between
	// groups, never inside one.
	elastic := cfg.Elastic
	nextElastic := 0
	pendingJoins := []int(nil)
	drainPending := make([]bool, cfg.N)
	drained := make([]bool, cfg.N)
	// Bootstrap transfers use op ids from a disjoint space so a group-op
	// abort can never collide with one (group ops count up from 1).
	bootOp := uint32(0x40000000)
	checkElastic := func() {
		for nextElastic < len(elastic) && elastic[nextElastic].AfterUpdates <= ctrlGroups {
			ev := elastic[nextElastic]
			nextElastic++
			switch ev.Kind {
			case hetero.ElasticJoin:
				pendingJoins = append(pendingJoins, ev.Worker)
			case hetero.ElasticDrain:
				drainPending[ev.Worker] = true
			}
		}
	}

	answer := func(w int, gm *groupMsg) {
		if ch, ok := waiting[w]; ok {
			if gm.epoch == 0 {
				gm.epoch = ctrl.Epoch()
			}
			ch <- gm
			answered[w] = waitSeq[w]
			delete(waiting, w)
			delete(waitSeq, w)
		}
	}
	handleGroups := func(groups []controller.Group) {
		for _, g := range groups {
			opSeq++
			ctrlGroups++
			for _, member := range g.Members {
				lastOp[member] = g
				lastOpID[member] = opSeq
				answer(member, &groupMsg{group: g, opID: opSeq})
			}
		}
		checkElastic()
	}
	release := func() {
		// Every still-active worker is queued and the controller formed no
		// group for them (fewer than the effective group size remain, or the
		// filter is deferring for a bridge signal that can no longer
		// arrive): no progress is possible without releasing them to proceed
		// solo. Their queued signals are purged so the re-signal after the
		// solo step is accepted cleanly.
		if len(waiting) > 0 && len(waiting) == active {
			for id := range waiting {
				ctrl.PurgeSignal(id)
				answer(id, &groupMsg{skip: true})
			}
		}
	}
	// markDead excludes dead from all future grouping and aborts the
	// collective it may be blocking. g/opID describe a group op a survivor
	// observed failing (opID 0: no such observation — the worker went dark
	// between collectives and we abort its last op as a precaution; aborting
	// a completed op is harmless because op ids are never reused). After a
	// cold controller restart, the replacement controller believes everyone
	// is alive again; deadSet keeps the service-side accounting (active,
	// reply wakeups) idempotent while the death is re-reported to it.
	markDead := func(dead int, g controller.Group, opID uint32) {
		if drained[dead] || !ctrl.IsMember(dead) {
			// A drained (or never-joined) rank is not a member: it cannot be
			// condemned. Late death reports against it — a peer observing its
			// clean exit as a transport hiccup — are dropped.
			return
		}
		first := !deadSet[dead]
		if !first && !ctrl.IsAlive(dead) {
			return
		}
		if first {
			deadSet[dead] = true
			active--
			answer(dead, &groupMsg{skip: true}) // wakes a falsely-accused worker
		}
		var groups []controller.Group
		if opID != 0 && !aborted[opID] {
			aborted[opID] = true
			groups = ctrl.AbortGroup(g, dead)
			transport.AbortOpEverywhere(rt.world, g.Members, opID, dead)
		} else {
			groups = ctrl.Fail(dead)
			if lg, ok := lastOp[dead]; ok {
				if id := lastOpID[dead]; !aborted[id] {
					aborted[id] = true
					transport.AbortOpEverywhere(rt.world, lg.Members, id, dead)
				}
			}
		}
		handleGroups(groups)
		release()
	}
	// maybeCrash is the failover harness: destroy and replace the controller
	// between two message handlings. Replies in flight at the crash point are
	// lost (waiting is dropped) and recovered by worker retransmission.
	maybeCrash := func() {
		if crashed || cfg.CtrlCrashAfter <= 0 || ctrlGroups < cfg.CtrlCrashAfter {
			return
		}
		crashed = true
		pol := ctrl.Policy()
		if cfg.CtrlCold {
			// Cold: only the effective config survives; queue, sync-graph,
			// liveness, and counters are rebuilt from worker re-signals and
			// the staleness detector.
			st := ctrl.Stats()
			carry.GroupsFormed += st.GroupsFormed
			carry.Interventions += st.Interventions
			carry.FrozenChecks += st.FrozenChecks
			carry.Failures += st.Failures
			carry.Rejoins += st.Rejoins
			carry.GroupsAborted += st.GroupsAborted
			carry.Joins += st.Joins
			carry.Drains += st.Drains
			carry.Decommissions += st.Decommissions
			carry.StaleEpochs += st.StaleEpochs
			next, _, err := controller.Rebuild(ctrl.Config(), nil)
			if err != nil {
				rt.runErr <- fmt.Errorf("live: controller cold rebuild: %w", err)
				return
			}
			ctrl = next
			cfg.Tracer.Instant(trace.KCtrlRebuild, trace.ControllerTrack, -1, 0, 0)
		} else {
			// Warm: restore from the crash-point snapshot.
			next, err := controller.Restore(ctrl.Snapshot())
			if err != nil {
				rt.runErr <- fmt.Errorf("live: controller restore: %w", err)
				return
			}
			ctrl = next
			cfg.Tracer.Instant(trace.KCtrlRestore, trace.ControllerTrack, -1, 0, 0)
		}
		// Telemetry is wiring, not snapshotted state: re-attach it to the
		// replacement incarnation (as a restarted controller process would
		// re-open its trace sink).
		ctrl.SetTracer(cfg.Tracer)
		ctrl.SetInstruments(cfg.Instruments)
		if pol != nil {
			// The policy object is wiring too, but its state is not: a warm
			// restore carries it in the snapshot blob (SetPolicy applies
			// it); a cold rebuild loses it along with the queue.
			if cfg.CtrlCold {
				pol.Reset()
			}
			if err := ctrl.SetPolicy(pol); err != nil {
				rt.runErr <- fmt.Errorf("live: controller failover policy: %w", err)
				return
			}
		}
		for w := range waiting {
			delete(waiting, w)
			delete(waitSeq, w)
		}
		rt.ctrlRestarts++
	}

	var tick <-chan time.Time
	if cfg.FailTimeout > 0 {
		ticker := time.NewTicker(cfg.FailTimeout / 2)
		defer ticker.Stop()
		tick = ticker.C
	}

	// Watchdog cadence. Evaluated here, inside the controller's
	// serialization domain, so snapshotting never races group formation.
	// Capture errors are swallowed: the flight recorder is best-effort
	// and must never abort training.
	var wdTick <-chan time.Time
	wdStart := time.Now()
	if cfg.Watchdog != nil {
		every := cfg.WatchdogEvery
		if every <= 0 {
			every = time.Second
		}
		wdTicker := time.NewTicker(every)
		defer wdTicker.Stop()
		wdTick = wdTicker.C
	}
	evalWatchdog := func() {
		now := time.Since(wdStart).Seconds()
		if cfg.Tracer != nil {
			now = cfg.Tracer.Now()
		}
		breaches := cfg.Watchdog.Eval(now, health.Sample{
			Snap:       cfg.Instruments.Snapshot(),
			QueueDepth: ctrl.QueueDepth(),
			Active:     active,
		})
		if cfg.Recorder == nil {
			return
		}
		cfg.Recorder.SetControllerSnapshot(ctrl.Snapshot())
		if len(breaches) == 0 {
			return
		}
		st := cfg.Watchdog.State()
		for _, br := range breaches {
			_, _ = cfg.Recorder.Capture(br.Rule.String(), now, []health.Breach{br}, st)
		}
	}

	handle := func(msg svcMsg) {
		w := msg.worker
		lastHeard[w] = time.Now()
		switch msg.kind {
		case kindReady:
			if msg.seq <= answered[w] {
				// Stale retransmission: the answer raced the worker's timeout
				// and already sits in its (buffered) reply channel.
				return
			}
			if deadSet[w] || !ctrl.IsAlive(w) {
				// Dead-marked sender: release it to proceed solo.
				msg.reply <- &groupMsg{skip: true}
				answered[w] = msg.seq
				return
			}
			waiting[w] = msg.reply
			waitSeq[w] = msg.seq
			if ctrl.IsQueued(w) {
				// Retransmission of a signal the controller still holds (the
				// original reply died with a crashed controller incarnation):
				// re-attach the reply channel, don't re-queue.
				handleGroups(ctrl.FlushGroups())
				release()
				return
			}
			if drainPending[w] {
				// The drain lands here, at the worker's own ready point:
				// between groups by construction, so no in-flight collective
				// is torn down and nobody is condemned. Shrinking the active
				// set may let the queue fill a group immediately — dispatch
				// those before the hand-off acknowledgment.
				drainPending[w] = false
				groups, err := ctrl.Drain(w)
				if err != nil {
					rt.runErr <- fmt.Errorf("live: drain worker %d: %w", w, err)
					answer(w, &groupMsg{skip: true})
					return
				}
				handleGroups(groups)
				more, err := ctrl.Decommission(w)
				if err != nil {
					rt.runErr <- fmt.Errorf("live: decommission worker %d: %w", w, err)
					answer(w, &groupMsg{skip: true})
					return
				}
				handleGroups(more)
				drained[w] = true
				active--
				answer(w, &groupMsg{drain: true})
				release()
				return
			}
			if len(pendingJoins) > 0 && ctrl.IsMember(w) && !ctrl.IsDraining(w) {
				// A join is waiting for a donor, and w — a live member at its
				// ready point, model state stable — just volunteered. Answer
				// with the bootstrap assignment instead of queueing the
				// signal; w re-signals the same iteration after serving. The
				// joiner is admitted right now: the epoch bumps here, and
				// group formation deterministically waits for the joiner's
				// first signal instead of racing its bootstrap (the same rule
				// the simulator applies, which keeps the sim↔live
				// differential's update counts equal).
				j := pendingJoins[0]
				pendingJoins = pendingJoins[1:]
				if err := ctrl.Join(j, float64(time.Now().UnixNano())/1e9); err != nil {
					rt.runErr <- fmt.Errorf("live: join worker %d: %w", j, err)
					answer(w, &groupMsg{skip: true})
					return
				}
				drained[j] = false
				delete(deadSet, j)
				active++
				lastHeard[j] = time.Now()
				bootOp++
				op := bootOp
				rt.wg.Add(1)
				go rt.join(j, w, op)
				answer(w, &groupMsg{bootstrap: true, bootstrapFor: j, bootstrapOp: op})
				return
			}
			groups, err := ctrl.Ready(controller.Signal{
				Worker: w, Iter: msg.iter, Epoch: msg.epoch,
				Now: float64(time.Now().UnixNano()) / 1e9,
			})
			if err != nil {
				if errors.Is(err, controller.ErrStaleEpoch) {
					// The signal carried an outdated world view: deterministic
					// rejection, not condemnation. The worker adopts the
					// epoch from the answer and re-signals the same iteration.
					answer(w, &groupMsg{refresh: true})
					return
				}
				// Rejected sender (tracking mismatch): release it to proceed
				// solo; it is not grouped.
				answer(w, &groupMsg{skip: true})
				return
			}
			handleGroups(groups)
			release()
		case kindDone:
			if !deadSet[w] && !completed[w] {
				completed[w] = true
				active--
			}
			release()
		case kindFail:
			markDead(msg.dead, msg.group, msg.opID)
		case kindStuck:
			// A collective timed out with no dead peer in sight (severed
			// link, partition, delay spike beyond the retry budget). Abort
			// the op for every member so the stuck ones roll back and
			// re-signal; nobody is declared dead — if a worker really is
			// gone, the staleness sweep will say so.
			if !aborted[msg.opID] {
				aborted[msg.opID] = true
				carry.GroupsAborted++
				transport.AbortOpEverywhere(rt.world, msg.group.Members, msg.opID, -1)
			}
			release()
		case kindRejoin:
			// The worker may have died undetected (its group never formed
			// and the staleness timer has not fired): reconcile before
			// re-admitting, or the controller would see a rejoin of a live
			// worker.
			markDead(w, controller.Group{}, 0)
			transport.RevivePeerEverywhere(rt.world, w)
			if err := ctrl.Rejoin(w); err != nil {
				rt.runErr <- fmt.Errorf("live: rejoin worker %d: %w", w, err)
			} else {
				delete(deadSet, w)
				active++
			}
			close(msg.admit)
		case kindJoin:
			// Bootstrapped elastic rank reporting in: admission already
			// happened at donor-assignment time; this message just refreshes
			// the liveness beat before its first (possibly slow) batch.
			close(msg.admit)
		case kindJoinAbort:
			// The bootstrap transfer failed (donor lost mid-send). The rank
			// was already admitted at assignment time and will never signal:
			// un-join it cleanly — it never trained, so a graceful drain +
			// decommission releases its slot without condemning anyone.
			if ctrl.IsMember(w) && !ctrl.IsDraining(w) && ctrl.IsAlive(w) {
				if groups, err := ctrl.Drain(w); err == nil {
					handleGroups(groups)
				}
				if more, err := ctrl.Decommission(w); err == nil {
					handleGroups(more)
				}
				drained[w] = true
				active--
				release()
			}
		}
	}

	for {
		select {
		case <-stop:
			// stop closes only after every worker goroutine exited, but their
			// final messages (kindDone, mostly) may still sit in the inbox;
			// drain them so the completed vector is accurate.
			for {
				select {
				case msg := <-rt.svcCh:
					handle(msg)
				default:
					return
				}
			}
		case now := <-tick:
			// The sweep covers workers blocked in collectives too: a stuck
			// collective normally resolves through the peer-down/abort path
			// long before the timeout, so a member still silent after
			// FailTimeout is dead (or the timeout was chosen too tight —
			// pick it well above an iteration plus a collective). After a
			// cold controller restart the sweep also re-reports known deaths
			// to the replacement controller (deadSet workers with a live
			// ctrl mark fall through markDead's idempotence guard).
			for w := 0; w < cfg.N; w++ {
				if ctrl.IsAlive(w) && !completed[w] &&
					now.Sub(lastHeard[w]) > cfg.FailTimeout {
					markDead(w, controller.Group{}, 0)
				}
			}
			maybeCrash()
		case <-wdTick:
			evalWatchdog()
		case msg := <-rt.svcCh:
			handle(msg)
			maybeCrash()
		}
	}
}

// chanControl implements engine.Control over the in-process service channel:
// ready signals (with idempotent retransmission on controller failover) go
// through rt.signalReady; failure reports and completion are plain service
// messages. Sends to svcCh cannot fail, so only Signal can ever error — and
// here it cannot either (the service outlives every worker goroutine).
type chanControl struct {
	rt *runtime
	id int
	// epoch is the last world-view version the controller answered with;
	// stamped into every outgoing signal (0 until the first answer:
	// unversioned signals are always accepted).
	epoch uint64
}

func (c *chanControl) Signal(iter int) (engine.Directive, error) {
	gm := c.rt.signalReady(c.id, iter, c.epoch)
	if gm.epoch != 0 {
		// Adopt the controller's world view from every answer, so the next
		// signal is stamped with a current epoch (refresh answers exist
		// precisely to deliver this).
		c.epoch = gm.epoch
	}
	return engine.Directive{
		Group: gm.group, OpID: gm.opID, Skip: gm.skip,
		Drain: gm.drain, Refresh: gm.refresh, Epoch: gm.epoch,
		Bootstrap: gm.bootstrap, BootstrapFor: gm.bootstrapFor, BootstrapOp: gm.bootstrapOp,
	}, nil
}

func (c *chanControl) SignalNoWait(iter int) {
	rt := c.rt
	rt.readySeq[c.id]++
	reply := make(chan *groupMsg, 1) // abandoned: the corpse never reads it
	rt.svcCh <- svcMsg{kind: kindReady, worker: c.id, iter: iter, seq: rt.readySeq[c.id], reply: reply}
}

func (c *chanControl) ReportDeath(dead int, g controller.Group, opID uint32) error {
	c.rt.svcCh <- svcMsg{kind: kindFail, worker: c.id, dead: dead, group: g, opID: opID}
	return nil
}

func (c *chanControl) ReportStuck(g controller.Group, opID uint32) error {
	c.rt.svcCh <- svcMsg{kind: kindStuck, worker: c.id, group: g, opID: opID}
	return nil
}

func (c *chanControl) Finished() error {
	c.rt.svcCh <- svcMsg{kind: kindDone, worker: c.id}
	return nil
}

// worker runs one training loop from startIter: it assembles the engine
// LiveWorker (env, model, optimizer, crash schedule) and hands the step loop
// to engine.RunPReduceWorker, then owns the runtime-specific epilogue —
// run-wide teardown on a hard error, checkpoint/rejoin choreography on a
// crash, silence when declared dead. allowCrash arms the configured crash
// injection (disarmed for the post-rejoin incarnation).
func (rt *runtime) worker(id int, m model.Model, opt *optim.SGD, sampler *data.Sampler, startIter int, allowCrash bool) {
	cfg := rt.cfg
	var comms collective.OpStats
	defer rt.addComms(&comms)
	pol := cfg.Retry
	if pol.Seed == 0 {
		pol.Seed = cfg.Seed
	}
	env := engine.NewLiveEnv(id, rt.world[id], collective.Options{
		SegmentElems: cfg.SegmentElems,
		Stats:        &comms,
		Timeout:      cfg.CollectiveTimeout,
		Retry:        pol,
		Tracer:       cfg.Tracer,
		TraceTrack:   int32(id),
		TraceIter:    -1,
	}, cfg.Tracer, cfg.Instruments)
	crashAt := 0
	if allowCrash {
		crashAt = cfg.Crash[id] // zero when id never crashes
	}
	w := &engine.LiveWorker{
		Env:          env,
		Model:        m,
		Opt:          opt,
		Sampler:      sampler,
		Init:         rt.init,
		Iters:        cfg.Iters,
		StartIter:    startIter,
		BatchSize:    cfg.BatchSize,
		ComputeDelay: cfg.ComputeDelay,
		CrashAt:      crashAt,
		OnIter:       func(it int) { rt.iters[id] = it },
	}
	out, err := engine.RunPReduceWorker(w, &chanControl{rt: rt, id: id})
	switch {
	case err != nil:
		// Hard transport error (e.g. endpoint closed): abort the whole run,
		// unblocking peers first.
		rt.runErr <- fmt.Errorf("live: worker %d collective: %w", id, err)
		for _, t := range rt.world {
			t.Close()
		}
		rt.svcCh <- svcMsg{kind: kindDone, worker: id}
	case out.Crashed:
		rt.crash(id, m, opt, out.Iter)
		// No done message: the cluster must detect the death.
	case out.DeadErr != nil:
		// We ourselves were declared dead; fall silent.
	case out.Drained:
		// Graceful elastic exit: the service already decommissioned us and
		// adjusted its accounting. No done message — a drained rank did not
		// complete its iterations and is excluded from the final average.
	}
}

// join bootstraps parked rank id from the donor's served model state (under
// bootstrap op id op), performs the admission handshake with the service,
// and runs the worker loop from the donor's iteration. It executes on its
// own goroutine, spawned by the service at donor-assignment time.
func (rt *runtime) join(id, donor int, op uint32) {
	defer rt.wg.Done()
	var comms collective.OpStats
	st, err := collective.BootstrapRecv(rt.world[id], donor, op, collective.Options{
		Timeout: rt.cfg.CollectiveTimeout,
		Stats:   &comms,
	})
	rt.addComms(&comms)
	if err != nil {
		if transport.IsFailure(err) {
			// The donor died mid-transfer: hand the join back to the service
			// so the next eligible ready signal serves it with a new donor.
			rt.svcCh <- svcMsg{kind: kindJoinAbort, worker: id}
			return
		}
		rt.runErr <- fmt.Errorf("live: worker %d bootstrap from %d: %w", id, donor, err)
		return
	}
	m := rt.base.Clone()
	m.SetParams(tensor.Vector(st.Params))
	opt := optim.NewSGD(rt.cfg.Optimizer, m.NumParams())
	if err := opt.Restore(tensor.Vector(st.Velocity), st.Step); err != nil {
		rt.runErr <- fmt.Errorf("live: worker %d bootstrap restore: %w", id, err)
		return
	}

	// Admission happened at donor-assignment time; this handshake just
	// refreshes the liveness beat so the staleness sweep never counts the
	// bootstrap transfer against the first batch.
	admit := make(chan struct{})
	rt.svcCh <- svcMsg{kind: kindJoin, worker: id, admit: admit}
	<-admit
	rt.cfg.Tracer.Instant(trace.KBootstrap, int32(id), int32(st.Iter), int64(donor), int64(len(st.Params)))

	// The joiner's sampler stream is its own (the rank never sampled before).
	sampler := data.NewSampler(rt.shards[id], rt.cfg.Seed*31+int64(id))
	rt.models[id] = m
	rt.worker(id, m, opt, sampler, st.Iter, false)
}

// signalReady sends worker id's ready signal for iter and waits for the group
// reply. With CtrlTimeout set the wait is bounded: on expiry the same signal
// (same sequence number) is re-sent, so a controller crash that swallowed the
// in-flight reply cannot strand the worker, while a reply that merely raced
// the timer is recognized by the service as already answered and consumed from
// the buffered channel here.
func (rt *runtime) signalReady(id, iter int, epoch uint64) *groupMsg {
	rt.readySeq[id]++
	reply := make(chan *groupMsg, 1)
	msg := svcMsg{kind: kindReady, worker: id, iter: iter, seq: rt.readySeq[id], epoch: epoch, reply: reply}
	rt.svcCh <- msg
	if rt.cfg.CtrlTimeout <= 0 {
		return <-reply
	}
	timer := time.NewTimer(rt.cfg.CtrlTimeout)
	defer timer.Stop()
	for {
		select {
		case gm := <-reply:
			return gm
		case <-timer.C:
			// The answer may have raced the timer into the buffer.
			select {
			case gm := <-reply:
				return gm
			default:
			}
			rt.svcCh <- msg // idempotent retransmission: same seq, same reply
			timer.Reset(rt.cfg.CtrlTimeout)
		}
	}
}

// crash completes a fail-stop crash of worker id: the engine loop already
// emitted the crash trace instant and left the ready signal for iter in
// flight (SignalNoWait), so the controller may form a group containing the
// corpse. If a rejoin is configured, the state at the crash point is
// checkpointed first (standing in for the periodic checkpoint a real
// deployment would have on disk) and a restart goroutine is scheduled.
func (rt *runtime) crash(id int, m model.Model, opt *optim.SGD, iter int) {
	delay, willRejoin := rt.cfg.Rejoin[id]
	var snap []byte
	if willRejoin {
		vel, step := opt.State()
		var buf bytes.Buffer
		err := checkpoint.Write(&buf, &checkpoint.State{
			Params:   m.Params().Clone(),
			Velocity: vel,
			Iter:     int64(iter),
			Step:     int64(step),
		})
		if err != nil {
			rt.runErr <- fmt.Errorf("live: worker %d checkpoint: %w", id, err)
			willRejoin = false
		}
		snap = buf.Bytes()
	}

	transport.FailPeerEverywhere(rt.world, id)

	if willRejoin {
		rt.wg.Add(1)
		go rt.rejoin(id, snap, delay)
	}
}

// rejoin restarts a crashed worker from its checkpoint after delay: it
// rebuilds the model and optimizer from the snapshot, performs the
// re-admission handshake with the controller service (which reconciles the
// death if still undetected and lifts the transport down-marks), and resumes
// training from the checkpointed iteration.
func (rt *runtime) rejoin(id int, snap []byte, delay time.Duration) {
	defer rt.wg.Done()
	time.Sleep(delay)

	st, err := checkpoint.Read(bytes.NewReader(snap))
	if err != nil {
		rt.runErr <- fmt.Errorf("live: worker %d restore: %w", id, err)
		return
	}
	m := rt.base.Clone()
	m.SetParams(tensor.Vector(st.Params))
	opt := optim.NewSGD(rt.cfg.Optimizer, m.NumParams())
	if err := opt.Restore(tensor.Vector(st.Velocity), int(st.Step)); err != nil {
		rt.runErr <- fmt.Errorf("live: worker %d restore: %w", id, err)
		return
	}

	admit := make(chan struct{})
	rt.svcCh <- svcMsg{kind: kindRejoin, worker: id, admit: admit}
	<-admit

	// A fresh sampler stream: the pre-crash stream died with the old
	// incarnation, and reusing its seed would replay the same batches.
	sampler := data.NewSampler(rt.shards[id], rt.cfg.Seed*31+int64(id)+9973)
	rt.models[id] = m
	rt.worker(id, m, opt, sampler, int(st.Iter), false)
}
