// Package live is the runtime counterpart of the simulator: real goroutine
// workers training real model replicas, a controller service mediating
// ready signals over channels, and P-Reduce groups executing genuine ring
// all-reduce collectives over an in-process or TCP transport. It mirrors the
// paper's prototype (§4): the controller carries only worker ids and
// iteration numbers — a few bytes — while model data moves exclusively
// through the group collectives.
package live

import (
	"fmt"
	"sync"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/tensor"
	"partialreduce/internal/transport"
)

// Config describes a live P-Reduce run.
type Config struct {
	N         int
	P         int
	Spec      model.Builder
	Seed      int64
	Train     *data.Dataset
	Test      *data.Dataset
	BatchSize int
	Optimizer optim.Config
	Weighting controller.Weighting
	Alpha     float64
	Approx    controller.ApproxRule
	// Iters is the number of local iterations each worker performs.
	Iters int
	// ComputeDelay optionally injects artificial per-batch latency to
	// emulate heterogeneity on real hardware (nil for full speed).
	ComputeDelay func(worker, iter int) time.Duration
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("live: need N >= 2, got %d", c.N)
	case c.P < 2 || c.P > c.N:
		return fmt.Errorf("live: need 2 <= P <= N, got P=%d", c.P)
	case c.Spec == nil:
		return fmt.Errorf("live: model builder required")
	case c.Train == nil || c.Test == nil:
		return fmt.Errorf("live: train and test datasets required")
	case c.BatchSize < 1:
		return fmt.Errorf("live: batch size must be positive")
	case c.Iters < 1:
		return fmt.Errorf("live: need at least one iteration")
	}
	return c.Optimizer.Validate()
}

// Report summarizes a live run.
type Report struct {
	FinalAccuracy float64 // accuracy of the averaged model
	Groups        int     // P-Reduce groups executed
	WallTime      time.Duration
	WorkerIters   []int // local iterations completed per worker
}

// readyMsg is a worker's signal to the controller service.
type readyMsg struct {
	worker int
	iter   int
	reply  chan *groupMsg
}

// groupMsg carries a formed group to its members; nil group means "proceed
// without averaging" (tail release at shutdown).
type groupMsg struct {
	group controller.Group
	opID  uint32
	skip  bool
}

// Run trains with cfg over the given transport world (len(world) == N; entry
// i is worker i's endpoint). It blocks until every worker completes its
// iterations and returns the report.
func Run(cfg Config, world []transport.Transport) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(world) != cfg.N {
		return nil, fmt.Errorf("live: %d transports for %d workers", len(world), cfg.N)
	}
	ctrl, err := controller.New(controller.Config{
		N: cfg.N, P: cfg.P,
		Weighting: cfg.Weighting, Alpha: cfg.Alpha, Approx: cfg.Approx,
	})
	if err != nil {
		return nil, err
	}

	base := cfg.Spec.Build(cfg.Seed)
	init := base.Params().Clone()
	shards := cfg.Train.Shard(cfg.N)

	readyCh := make(chan readyMsg, cfg.N)
	doneCh := make(chan int, cfg.N)
	ctrlDone := make(chan struct{})

	// Controller service: serializes Ready calls, replies to group members,
	// and releases stranded tail workers once the remaining signals can no
	// longer fill a group.
	go func() {
		defer close(ctrlDone)
		waiting := make(map[int]chan *groupMsg, cfg.N)
		finished := 0
		opSeq := uint32(0)
		release := func() {
			// Every still-active worker is queued and the controller formed
			// no group for them (fewer than P remain, or the group filter is
			// deferring for a bridge signal that can no longer arrive): no
			// progress is possible without releasing them to proceed solo.
			if len(waiting) > 0 && len(waiting) == cfg.N-finished {
				for id, ch := range waiting {
					ch <- &groupMsg{skip: true}
					delete(waiting, id)
				}
			}
		}
		for finished < cfg.N {
			select {
			case <-doneCh:
				finished++
				release()
			case msg := <-readyCh:
				waiting[msg.worker] = msg.reply
				groups, err := ctrl.Ready(controller.Signal{Worker: msg.worker, Iter: msg.iter})
				if err != nil {
					// Protocol violation; release the sender with an error
					// marker (skip) — tests assert this cannot happen.
					msg.reply <- &groupMsg{skip: true}
					delete(waiting, msg.worker)
					continue
				}
				for _, g := range groups {
					opSeq++
					for _, member := range g.Members {
						waiting[member] <- &groupMsg{group: g, opID: opSeq}
						delete(waiting, member)
					}
				}
				release()
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	iters := make([]int, cfg.N)
	models := make([]model.Model, cfg.N)
	var groupsMu sync.Mutex
	groupsRun := 0

	runErr := make(chan error, cfg.N)
	for id := 0; id < cfg.N; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { doneCh <- id }()

			m := base.Clone()
			models[id] = m
			opt := optim.NewSGD(cfg.Optimizer, m.NumParams())
			sampler := data.NewSampler(shards[id], cfg.Seed*31+int64(id))
			grad := tensor.NewVector(m.NumParams())
			var batch *data.Batch
			tr := world[id]
			// The paper's loop counter: fast-forwarded to the group max after
			// every partial reduce (§3.3.3), so stragglers skip caught-up work.
			iter := 0

			for iter < cfg.Iters {
				if cfg.ComputeDelay != nil {
					if d := cfg.ComputeDelay(id, iter); d > 0 {
						time.Sleep(d)
					}
				}
				batch = sampler.Sample(batch, cfg.BatchSize)
				m.Gradient(grad, batch)
				opt.Update(m.Params(), grad, 1)
				iter++
				iters[id] = iter

				reply := make(chan *groupMsg, 1)
				readyCh <- readyMsg{worker: id, iter: iter, reply: reply}
				gm := <-reply
				if gm.skip {
					continue
				}
				g := gm.group
				var weight float64
				for i, member := range g.Members {
					if member == id {
						weight = g.Weights[i]
						break
					}
				}
				if err := collective.WeightedAverage(tr, g.Members, gm.opID, m.Params(), weight); err != nil {
					runErr <- fmt.Errorf("live: worker %d collective: %w", id, err)
					// Unblock peers waiting on this rank before exiting.
					for _, t := range world {
						t.Close()
					}
					return
				}
				if g.InitWeight > 0 {
					m.Params().Axpy(g.InitWeight, init)
				}
				iter = maxInt(iter, g.Iter)
				iters[id] = iter
				groupsMu.Lock()
				groupsRun++
				groupsMu.Unlock()
			}
		}()
	}

	wg.Wait()
	<-ctrlDone
	select {
	case err := <-runErr:
		return nil, err
	default:
	}

	// Average the replicas for inference (Alg. 2 line 8).
	avg := tensor.NewVector(len(init))
	for _, m := range models {
		avg.Add(m.Params())
	}
	avg.Scale(1 / float64(cfg.N))
	base.SetParams(avg)

	// Each group op was counted once per member; normalize to group count.
	return &Report{
		FinalAccuracy: model.Accuracy(base, cfg.Test),
		Groups:        groupsRun / cfg.P,
		WallTime:      time.Since(start),
		WorkerIters:   iters,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
