package live

import (
	"strings"
	"sync"
	"testing"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/transport"
)

// runBounded runs Run with a wall-clock bound so a broken recovery path
// fails the test instead of hanging it.
func runBounded(t *testing.T, cfg Config, world []transport.Transport) *Report {
	t.Helper()
	var rep *Report
	var err error
	done := make(chan struct{})
	go func() {
		rep, err = Run(cfg, world)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("run hung")
	}
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// faultyWorld wraps a Mem world with the given fault plan.
func faultyWorld(t *testing.T, n int, plan transport.FaultPlan) ([]transport.Transport, []*transport.Faulty) {
	t.Helper()
	eps, err := transport.NewFaultyWorld(memWorld(n), plan)
	if err != nil {
		t.Fatal(err)
	}
	world := make([]transport.Transport, n)
	for i, e := range eps {
		world[i] = e
	}
	return world, eps
}

// ctrlFailoverConfig arms the controller-crash harness on the standard test
// cluster.
func ctrlFailoverConfig(t *testing.T, seed int64, cold bool) Config {
	t.Helper()
	cfg := liveConfig(t, seed)
	cfg.CtrlCrashAfter = 3
	cfg.CtrlCold = cold
	cfg.CtrlTimeout = 100 * time.Millisecond
	cfg.CollectiveTimeout = 2 * time.Second
	return cfg
}

// The tentpole property, warm path: the controller object is destroyed
// mid-run (in-flight replies lost with it) and replaced from its snapshot.
// Workers notice only as a bounded wait plus a retransmission; training
// completes at full quality.
func TestLiveCtrlFailoverWarm(t *testing.T) {
	base := runBounded(t, liveConfig(t, 60), memWorld(4))

	cfg := ctrlFailoverConfig(t, 60, false)
	rep := runBounded(t, cfg, memWorld(cfg.N))
	if rep.CtrlRestarts != 1 {
		t.Fatalf("controller restarts = %d, want 1", rep.CtrlRestarts)
	}
	for id := 0; id < cfg.N; id++ {
		if !rep.Completed[id] {
			t.Fatalf("worker %d did not complete across the failover", id)
		}
		if rep.WorkerIters[id] < cfg.Iters {
			t.Fatalf("worker %d stopped at %d/%d", id, rep.WorkerIters[id], cfg.Iters)
		}
	}
	if rep.Failures != 0 {
		t.Fatalf("failover condemned %d workers; a controller crash kills nobody", rep.Failures)
	}
	if rep.FinalAccuracy < base.FinalAccuracy-0.05 {
		t.Fatalf("failover accuracy %.3f fell out of the no-fault band (%.3f)",
			rep.FinalAccuracy, base.FinalAccuracy)
	}
}

// Cold path: the replacement controller starts from nothing but the config
// and is repopulated by the ready signals workers re-send.
func TestLiveCtrlFailoverCold(t *testing.T) {
	base := runBounded(t, liveConfig(t, 61), memWorld(4))

	cfg := ctrlFailoverConfig(t, 61, true)
	rep := runBounded(t, cfg, memWorld(cfg.N))
	if rep.CtrlRestarts != 1 {
		t.Fatalf("controller restarts = %d, want 1", rep.CtrlRestarts)
	}
	for id := 0; id < cfg.N; id++ {
		if !rep.Completed[id] {
			t.Fatalf("worker %d did not complete across the cold failover", id)
		}
	}
	if rep.Failures != 0 {
		t.Fatalf("cold failover condemned %d workers", rep.Failures)
	}
	if rep.FinalAccuracy < base.FinalAccuracy-0.05 {
		t.Fatalf("cold failover accuracy %.3f fell out of the no-fault band (%.3f)",
			rep.FinalAccuracy, base.FinalAccuracy)
	}
}

// A controller crash while a worker also fail-stops: the service-side death
// memory must survive the controller's (warm) reincarnation, and the
// survivors still finish.
func TestLiveCtrlFailoverWithWorkerCrash(t *testing.T) {
	cfg := ctrlFailoverConfig(t, 62, false)
	cfg.Crash = map[int]int{3: 10}
	cfg.FailTimeout = 2 * time.Second

	rep := runBounded(t, cfg, memWorld(cfg.N))
	if rep.CtrlRestarts != 1 {
		t.Fatalf("controller restarts = %d, want 1", rep.CtrlRestarts)
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want exactly the injected crash", rep.Failures)
	}
	for id := 0; id < 3; id++ {
		if !rep.Completed[id] {
			t.Fatalf("survivor %d did not complete", id)
		}
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("accuracy %.3f after crash + failover", rep.FinalAccuracy)
	}
}

// The failover knobs are validated: a crashing controller without bounded
// worker waits (or bounded collectives) would be unrecoverable.
func TestCtrlFailoverConfigValidate(t *testing.T) {
	cfg := liveConfig(t, 63)
	cfg.CtrlCrashAfter = 1
	if cfg.Validate() == nil {
		t.Fatal("CtrlCrashAfter without CtrlTimeout accepted")
	}
	cfg.CtrlTimeout = time.Millisecond
	if cfg.Validate() == nil {
		t.Fatal("CtrlCrashAfter without CollectiveTimeout accepted")
	}
	cfg.CollectiveTimeout = time.Millisecond
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.CtrlCrashAfter = -1
	if cfg.Validate() == nil {
		t.Fatal("negative CtrlCrashAfter accepted")
	}
	cfg = liveConfig(t, 63)
	cfg.CtrlTimeout = -time.Second
	if cfg.Validate() == nil {
		t.Fatal("negative CtrlTimeout accepted")
	}
	cfg = liveConfig(t, 63)
	cfg.Retry.Jitter = 2
	if cfg.Validate() == nil {
		t.Fatal("invalid retry policy accepted")
	}
}

// A timed two-rank partition mid-run: groups that straddle the cut time
// out, retry, and finally abort with nobody condemned; same-side groups keep
// training; after the heal the cluster reconverges and every worker
// completes.
func TestLivePartitionRecovery(t *testing.T) {
	cfg := liveConfig(t, 64)
	cfg.CollectiveTimeout = 100 * time.Millisecond
	cfg.Retry = collective.RetryPolicy{
		MaxAttempts: 3, BaseDelay: 20 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
	}
	// Slow the batches down so the run reliably spans the partition window
	// (an unthrottled in-memory run finishes in milliseconds).
	cfg.ComputeDelay = func(worker, iter int) time.Duration { return 2 * time.Millisecond }
	world, _ := faultyWorld(t, cfg.N, transport.FaultPlan{
		Seed: 64,
		Partitions: []transport.Partition{{
			Ranks: []int{2, 3},
			From:  30 * time.Millisecond,
			Until: 330 * time.Millisecond,
		}},
	})

	rep := runBounded(t, cfg, world)
	for id := 0; id < cfg.N; id++ {
		if !rep.Completed[id] {
			t.Fatalf("worker %d did not complete through the partition", id)
		}
		if rep.WorkerIters[id] < cfg.Iters {
			t.Fatalf("worker %d stopped at %d/%d", id, rep.WorkerIters[id], cfg.Iters)
		}
	}
	if rep.Failures != 0 {
		t.Fatalf("partition condemned %d workers; links were cut, nobody died", rep.Failures)
	}
	if rep.Comms.Timeouts == 0 {
		t.Fatal("no collective timeouts recorded: the partition never bit (shift the window?)")
	}
	if rep.FinalAccuracy < 0.85 {
		t.Fatalf("accuracy %.3f after partition recovery", rep.FinalAccuracy)
	}
}

// Controller failover and a network partition in the same run — the
// acceptance scenario: warm restart mid-run while ranks {2,3} are cut off
// for a window, and the run still completes with no one condemned.
func TestLiveFailoverPlusPartition(t *testing.T) {
	for _, cold := range []bool{false, true} {
		cfg := ctrlFailoverConfig(t, 65, cold)
		cfg.CollectiveTimeout = 100 * time.Millisecond
		cfg.Retry = collective.RetryPolicy{
			MaxAttempts: 3, BaseDelay: 20 * time.Millisecond,
			MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		}
		cfg.ComputeDelay = func(worker, iter int) time.Duration { return 2 * time.Millisecond }
		world, _ := faultyWorld(t, cfg.N, transport.FaultPlan{
			Seed: 65,
			Partitions: []transport.Partition{{
				Ranks: []int{2, 3},
				From:  30 * time.Millisecond,
				Until: 280 * time.Millisecond,
			}},
		})
		rep := runBounded(t, cfg, world)
		if rep.CtrlRestarts != 1 {
			t.Fatalf("cold=%v: controller restarts = %d, want 1", cold, rep.CtrlRestarts)
		}
		if rep.Failures != 0 {
			t.Fatalf("cold=%v: %d workers condemned", cold, rep.Failures)
		}
		for id := 0; id < cfg.N; id++ {
			if !rep.Completed[id] {
				t.Fatalf("cold=%v: worker %d did not complete", cold, id)
			}
		}
		if rep.FinalAccuracy < 0.85 {
			t.Fatalf("cold=%v: accuracy %.3f", cold, rep.FinalAccuracy)
		}
	}
}

// The multi-process no-deadlock property: a worker whose link to the
// controller rank is severed must not hang — it re-sends its signal a
// bounded number of times, then withdraws with an error, and the rest of
// the cluster finishes without it.
func TestRunWorkerCtrlLinkSevered(t *testing.T) {
	n := 3
	baseCfg := liveConfig(t, 66)
	baseCfg.N, baseCfg.P = n, 2

	world, eps := faultyWorld(t, n, transport.FaultPlan{Seed: 66})
	// Cut the control-plane link between rank 2 and the controller (rank 0)
	// in both directions before anyone starts.
	eps[0].SeverLink(2, 0)
	eps[0].SeverLink(0, 2)

	reports := make([]*Report, n)
	errs := make([]error, n)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			r := r
			cfg := baseCfg
			// Rank 2 gives up quickly; the healthy ranks use a laxer bound so
			// they never come close to their own withdrawal limit.
			if r == 2 {
				cfg.CtrlTimeout = 50 * time.Millisecond
			} else {
				cfg.CtrlTimeout = 500 * time.Millisecond
			}
			cfg.CollectiveTimeout = 2 * time.Second
			wg.Add(1)
			go func() {
				defer wg.Done()
				reports[r], errs[r] = RunWorker(cfg, world[r], r == 0)
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("severed controller link deadlocked the cluster")
	}

	if errs[2] == nil {
		t.Fatal("rank 2 reported success with its controller link severed")
	}
	if !strings.Contains(errs[2].Error(), "controller unreachable") {
		t.Fatalf("rank 2 error %v, want controller-unreachable withdrawal", errs[2])
	}
	for _, r := range []int{0, 1} {
		if errs[r] != nil {
			t.Fatalf("healthy rank %d: %v", r, errs[r])
		}
		if !reports[r].Completed[0] {
			t.Fatalf("healthy rank %d did not complete", r)
		}
	}
}
