package live

import (
	"sync"
	"testing"
	"time"

	"partialreduce/internal/cluster"
	"partialreduce/internal/core"
	"partialreduce/internal/data"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
)

// TestLiveElasticScaleOutAndDrain runs the in-process runtime through a
// 4→6→3 staircase with small groups (P=2, the non-lockstep regime): two
// parked ranks bootstrap in mid-run, then three members drain back out.
// Every membership change must complete and none may be condemned.
func TestLiveElasticScaleOutAndDrain(t *testing.T) {
	cfg := liveConfig(t, 21)
	cfg.N = 6
	cfg.P = 2
	cfg.Initial = 4
	cfg.Elastic = hetero.ScaleSchedule(4, 6, 3, 10, 5)
	cfg.Iters = 60

	rep, err := Run(cfg, memWorld(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins != 2 || rep.Drains != 3 || rep.Decommissions != 3 {
		t.Fatalf("membership changes incomplete: joins=%d drains=%d decommissions=%d",
			rep.Joins, rep.Drains, rep.Decommissions)
	}
	if rep.Failures != 0 {
		t.Fatalf("graceful churn condemned %d workers", rep.Failures)
	}
	// Drains retire ranks 5, 4, 3: the three lowest founders finish.
	for id, done := range rep.Completed {
		if want := id < 3; done != want {
			t.Fatalf("worker %d completed=%v, want %v", id, done, want)
		}
	}
	alive := 0
	for _, a := range rep.Alive {
		if a {
			alive++
		}
	}
	if alive != 3 {
		t.Fatalf("want 3 members alive at the end, got %d", alive)
	}
	if rep.FinalAccuracy < 0.5 {
		t.Fatalf("final accuracy %.3f: training broken by churn", rep.FinalAccuracy)
	}
}

// TestMultiProcessElastic runs the same 4→6→3 staircase through the
// wire-protocol deployment: one RunWorker per rank, controller hosted on
// rank 0, control plane on transport tags. Ranks 4 and 5 start parked on the
// join stream, bootstrap from a donor mid-run, train, drain back out with
// rank 3, and are dismissed at shutdown. Nobody may error or hang.
func TestMultiProcessElastic(t *testing.T) {
	cfg := liveConfig(t, 23)
	cfg.N = 6
	cfg.P = 2
	cfg.Initial = 4
	cfg.Elastic = hetero.ScaleSchedule(4, 6, 3, 10, 5)
	cfg.Iters = 60

	world := memWorld(cfg.N)
	reports := make([]*Report, cfg.N)
	errs := make([]error, cfg.N)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < cfg.N; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				reports[r], errs[r] = RunWorker(cfg, world[r], r == 0)
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("multi-process elastic run hung")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Drains retire ranks 5, 4, 3; the three lowest founders finish.
	for r := 0; r < cfg.N; r++ {
		if want := r < 3; reports[r].Completed[0] != want {
			t.Fatalf("rank %d completed=%v, want %v", r, reports[r].Completed[0], want)
		}
	}
	// The joiners must actually have trained between admission and drain.
	for _, r := range []int{4, 5} {
		if reports[r].Groups == 0 || reports[r].WorkerIters[0] == 0 {
			t.Fatalf("joiner %d never trained: groups=%d iter=%d",
				r, reports[r].Groups, reports[r].WorkerIters[0])
		}
	}
	if reports[0].FinalAccuracy < 0.5 {
		t.Fatalf("final accuracy %.3f: training broken by churn", reports[0].FinalAccuracy)
	}
}

// TestSimLiveElasticDifferential pushes the same seeded 8→12→6 schedule
// through both backends — the event-driven simulator and the in-process
// live runtime — at P = capacity, the lockstep regime where every group is
// one cluster-wide iteration. Both must report identical join / drain /
// decommission counts, zero condemned workers, and the same number of
// synchronization updates: each of the four joins collapses exactly one
// round via iteration fast-forward (the joiner's first signal is one ahead
// of the cohort), so a 60-iteration live run executes 56 groups and the sim
// is budgeted to exactly that.
func TestSimLiveElasticDifferential(t *testing.T) {
	const (
		seed     = 7
		capacity = 12
		initial  = 8
		final    = 6
		iters    = 60
		joins    = capacity - initial
		updates  = iters - joins // one round collapsed per join
	)
	schedule := hetero.ScaleSchedule(initial, capacity, final, 10, 4)

	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 4, Dim: 12, Examples: 1600, Separation: 3.2, Noise: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	spec := model.Spec{Inputs: 12, Hidden: []int{16}, Classes: 4}
	opt := optim.Config{LR: 0.05, Momentum: 0.9}

	// Live: in-process runtime over a memory transport, Iters budget.
	liveCfg := Config{
		N: capacity, P: capacity, Initial: initial, Elastic: schedule,
		Spec: spec, Seed: seed, Train: train, Test: test,
		BatchSize: 16, Optimizer: opt, Iters: iters,
	}
	rep, err := Run(liveCfg, memWorld(capacity))
	if err != nil {
		t.Fatal(err)
	}

	// Sim: same schedule, same workload, update budget matching the live
	// group count.
	profile := model.Profile{Name: "diff", WireParams: 100_000, BatchCompute: 0.1, BytesPerParam: 4}
	simCfg := cluster.Config{
		N: capacity, Initial: initial, Elastic: schedule,
		Spec: spec, Seed: seed, Train: train, Test: test,
		BatchSize: 16, Optimizer: opt,
		Profile:   profile,
		Hetero:    hetero.NewHomogeneous(capacity, profile.BatchCompute, 0.05, seed),
		Net:       netmodel.Default(),
		Threshold: 0.999, // unreachable: run to the update budget
		EvalEvery: 20, MaxUpdates: updates, MaxTime: 1e6,
	}
	c, err := cluster.New(simCfg, "elastic-diff")
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.NewPReduce(core.PReduceConfig{P: capacity}).RunDetailed(c)
	if err != nil {
		t.Fatal(err)
	}
	st := info.Stats

	if rep.Groups != updates || c.Updates() != updates {
		t.Fatalf("update counts diverge: live groups=%d sim updates=%d want %d",
			rep.Groups, c.Updates(), updates)
	}
	if rep.Joins != st.Joins || rep.Drains != st.Drains || rep.Decommissions != st.Decommissions {
		t.Fatalf("membership counts diverge: live %d/%d/%d sim %d/%d/%d",
			rep.Joins, rep.Drains, rep.Decommissions, st.Joins, st.Drains, st.Decommissions)
	}
	if rep.Joins != joins || rep.Drains != capacity-final || rep.Decommissions != capacity-final {
		t.Fatalf("schedule incomplete: joins=%d drains=%d decommissions=%d",
			rep.Joins, rep.Drains, rep.Decommissions)
	}
	if rep.Failures != 0 || st.Failures != 0 {
		t.Fatalf("elastic churn condemned workers: live=%d sim=%d", rep.Failures, st.Failures)
	}
	// The six survivors (ranks 0..5) complete on the live side; the same
	// six are the sim's final membership.
	for id, done := range rep.Completed {
		if want := id < final; done != want {
			t.Fatalf("live worker %d completed=%v, want %v", id, done, want)
		}
	}
	if got := c.AliveCount(); got != final {
		t.Fatalf("sim final membership %d, want %d", got, final)
	}
}
