package live

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/health"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

// Multi-process deployment: each rank runs RunWorker in its own process;
// rank 0 additionally hosts the controller. Control-plane messages travel
// over the same transport as the collectives, in the prototype's spirit:
// a ready signal is one float64 triple, a group reply a couple dozen — a
// few bytes against megabytes of model traffic.
//
// Fault tolerance works as in the in-process runtime, but over the wire:
// the host's per-worker receive loops double as failure detectors (a broken
// connection fails the pending receive with a peer-down error), survivors
// report peer deaths through their ready stream, and the host pushes abort
// notifications so group members blocked behind a corpse wake up. The final
// model average runs over a host-broadcast roster of survivors instead of
// the full world. Checkpoint rejoin is an in-process-runtime feature only: a
// real rejoining process needs a fresh transport mesh, which the prototype's
// fixed mesh cannot provide.
//
// Tag space: the high bits carried by collective operations never use the
// ctrl prefix below, so control and data planes cannot collide.
const (
	ctrlReadyTag  uint64 = 0xC0_000000_000000
	ctrlReplyTag  uint64 = 0xC1_000000_000000
	ctrlAbortTag  uint64 = 0xC2_000000_000000
	ctrlRosterTag uint64 = 0xC3_000000_000000
	ctrlJoinTag   uint64 = 0xC4_000000_000000
	gatherOpID    uint32 = 0xFFFFFF
	barrierOpID   uint32 = 0xFFFFFE
)

// bootOpBase is the first bootstrap-transfer op id: a disjoint space from the
// group ops (which count up from 1), so an op abort can never collide with an
// in-flight bootstrap.
const bootOpBase uint32 = 0x40000000

// ctrlResendLimit bounds how many times a worker re-sends a ready signal whose
// reply timed out (CtrlTimeout) before concluding the controller is
// unreachable and withdrawing from the cluster.
const ctrlResendLimit = 8

func readyTag(seq int) uint64 { return ctrlReadyTag | uint64(seq) }
func replyTag(seq int) uint64 { return ctrlReplyTag | uint64(seq) }
func abortTag(seq int) uint64 { return ctrlAbortTag | uint64(seq) }
func joinTag(seq int) uint64  { return ctrlJoinTag | uint64(seq) }

// Ready-stream control markers (payload[0] values that are not iterations).
const (
	readyFinished  = -1 // worker completed all iterations
	readyFailure   = -2 // payload: [-2, deadRank, opID] — peer death report
	readyJoinAbort = -3 // elastic joiner's bootstrap transfer failed; un-join it
)

// Join-stream message kinds (payload[0] of a joinTag message, host → rank).
const (
	joinAssign  = 0 // payload: [0, donor, bootstrapOp] — bootstrap and train
	joinDismiss = 1 // payload: [1, 0, 0] — run over; exit without training
)

// RunWorker runs this process's share of a live P-Reduce world: the worker
// loop for rank tr.Rank(), plus the controller service when host is true
// (exactly one rank — conventionally 0 — must host). It returns the final
// report; non-host ranks get a report without the averaged-model accuracy.
// A rank configured to crash returns a nil-error report marked Completed[0]
// == false once it has "died".
func RunWorker(cfg Config, tr transport.Transport, host bool) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.Size() != cfg.N {
		return nil, fmt.Errorf("live: transport world %d != N %d", tr.Size(), cfg.N)
	}
	ctrlRank := 0
	if _, ok := cfg.Crash[ctrlRank]; ok {
		return nil, fmt.Errorf("live: rank %d hosts the controller and cannot crash (run the controller on a reliable node, or replicate it)", ctrlRank)
	}
	if len(cfg.Rejoin) > 0 {
		return nil, fmt.Errorf("live: checkpoint rejoin requires the in-process runtime (a rejoining process needs a fresh mesh)")
	}

	ctrlErr := make(chan error, 1)
	if host {
		if tr.Rank() != ctrlRank {
			return nil, fmt.Errorf("live: controller must run on rank %d", ctrlRank)
		}
		go func() { ctrlErr <- runControllerService(cfg, tr) }()
	}

	rep, err := runWorkerLoop(cfg, tr, ctrlRank, host)
	if err != nil {
		return nil, err
	}
	if host {
		if cerr := <-ctrlErr; cerr != nil {
			return nil, cerr
		}
	}
	return rep, nil
}

// runControllerService hosts the controller: one receive loop per worker
// feeds a serializing channel, exactly like the in-process service but over
// the transport. The receive loops double as failure detectors: a worker
// whose connection breaks fails its pending receive with a peer-down error,
// which the loop reports as a death event.
func runControllerService(cfg Config, tr transport.Transport) error {
	ctrlCfg := controller.Config{
		N: cfg.N, P: cfg.P, Initial: cfg.Initial,
		Weighting: cfg.Weighting, Alpha: cfg.Alpha, Approx: cfg.Approx,
	}
	var pol policy.Policy
	if cfg.Policy.Enabled() {
		spec := cfg.Policy.Resolve(cfg.P)
		if spec.Name == policy.NameAdaptiveP && spec.PMin < cfg.P {
			ctrlCfg.Window = controller.MinWindow(cfg.N, spec.PMin)
		}
		var perr error
		if pol, perr = policy.New(cfg.Policy, cfg.N, cfg.P); perr != nil {
			return perr
		}
	}
	ctrl, err := controller.New(ctrlCfg)
	if err != nil {
		return err
	}
	ctrl.SetTracer(cfg.Tracer)
	ctrl.SetInstruments(cfg.Instruments)
	if pol != nil {
		if err := ctrl.SetPolicy(pol); err != nil {
			return err
		}
	}

	type event struct {
		worker int
		iter   int // readyFinished / readyFailure / readyJoinAbort are control markers
		seq    int
		epoch  uint64 // the world-view version the signal was sent under
		dead   int    // readyFailure: the rank reported down
		opID   uint32 // readyFailure: the collective that broke
		lost   bool   // the receive loop itself saw the worker go down
	}
	events := make(chan event, 2*cfg.N)
	for w := 0; w < cfg.N; w++ {
		w := w
		go func() {
			for seq := 0; ; seq++ {
				payload, err := tr.Recv(w, readyTag(seq))
				if err != nil {
					if transport.IsFailure(err) {
						events <- event{worker: w, lost: true}
					}
					return // otherwise: transport closed, service shutting down
				}
				if len(payload) == 0 {
					continue
				}
				switch payload[0] {
				case readyFinished:
					events <- event{worker: w, iter: readyFinished, seq: seq}
					return
				case readyFailure:
					if len(payload) == 3 {
						events <- event{
							worker: w, iter: readyFailure, seq: seq,
							dead: int(payload[1]), opID: uint32(payload[2]),
						}
					}
				case readyJoinAbort:
					events <- event{worker: w, iter: readyJoinAbort, seq: seq}
				default:
					e := event{worker: w, iter: int(payload[0]), seq: seq}
					if len(payload) >= 2 {
						e.epoch = uint64(payload[1])
					}
					events <- e
				}
			}
		}()
	}

	waiting := map[int]int{} // worker -> reply seq
	opGroups := map[uint32]controller.Group{}
	lastOpID := map[int]uint32{}
	abortedOps := map[uint32]bool{}
	deadSet := map[int]bool{} // host-side memory of deaths (survives ctrl crashes)
	abortSeq := make([]int, cfg.N)
	completed := make([]bool, cfg.N)
	active := cfg.initialOr()
	opSeq := uint32(0)
	ctrlGroups := 0 // groups dispatched: failover-harness and elastic triggers
	crashed := false

	// Elastic membership: schedule events fire on the dispatched-group count.
	// Joins queue until an eligible ready signal donates its sender as the
	// bootstrap source; drains land at the target's next ready point, which by
	// construction is between groups.
	elastic := cfg.Elastic
	nextElastic := 0
	pendingJoins := []int(nil)
	drainPending := map[int]bool{}
	drained := make([]bool, cfg.N)
	bootOp := bootOpBase
	joinSeq := make([]int, cfg.N)
	checkElastic := func() {
		for nextElastic < len(elastic) && elastic[nextElastic].AfterUpdates <= ctrlGroups {
			ev := elastic[nextElastic]
			nextElastic++
			if ev.Kind == hetero.ElasticJoin {
				pendingJoins = append(pendingJoins, ev.Worker)
			} else {
				drainPending[ev.Worker] = true
			}
		}
	}

	// sendAbort tells worker w to abort collective op locally; returns the
	// rank as a new death suspect if even that message cannot be delivered.
	sendAbort := func(w int, op uint32, dead int) (suspect int) {
		if err := tr.Send(w, abortTag(abortSeq[w]), []float64{float64(op), float64(dead)}); err != nil {
			if transport.IsFailure(err) {
				return w
			}
			return -1
		}
		abortSeq[w]++
		return -1
	}

	var dispatch func(groups []controller.Group) error
	var markDead func(dead int, opID uint32) error

	// markDead excludes dead from future groups, aborts the collective it
	// may be blocking (opID 0: none observed — its last dispatched op is
	// aborted as a precaution), and dispatches any groups the shrunken
	// effective group size unblocks. Abort notifications that fail expose
	// further deaths, handled iteratively.
	markDead = func(dead int, opID uint32) error {
		suspects := []event{{worker: dead, opID: opID}}
		for len(suspects) > 0 {
			s := suspects[0]
			suspects = suspects[1:]
			if drained[s.worker] || !ctrl.IsMember(s.worker) {
				// Graceful departures and never-admitted parked ranks are not
				// deaths: nothing to condemn or abort.
				continue
			}
			first := !deadSet[s.worker]
			if !first && !ctrl.IsAlive(s.worker) {
				continue
			}
			if first {
				deadSet[s.worker] = true
				active--
				delete(waiting, s.worker)
			}
			op := s.opID
			if op == 0 {
				op = lastOpID[s.worker]
			}
			var groups []controller.Group
			if g, ok := opGroups[op]; ok && op != 0 && !abortedOps[op] {
				abortedOps[op] = true
				groups = ctrl.AbortGroup(g, s.worker)
				for _, mem := range g.Members {
					if mem == s.worker || !ctrl.IsAlive(mem) {
						continue
					}
					if sus := sendAbort(mem, op, s.worker); sus >= 0 {
						suspects = append(suspects, event{worker: sus})
					}
				}
			} else {
				groups = ctrl.Fail(s.worker)
			}
			if err := dispatch(groups); err != nil {
				return err
			}
		}
		return nil
	}

	dispatch = func(groups []controller.Group) error {
		for _, g := range groups {
			opSeq++
			ctrlGroups++
			checkElastic()
			op := opSeq
			opGroups[op] = g
			var suspects []int
			for _, m := range g.Members {
				lastOpID[m] = op
				seq, ok := waiting[m]
				if !ok {
					if cfg.CtrlCrashAfter > 0 {
						// The member's reply bookkeeping died in a controller
						// crash and it has not retransmitted yet: it cannot
						// join this op. The present members' collectives time
						// out and the stuck-abort path dissolves the group;
						// everyone re-signals.
						continue
					}
					return fmt.Errorf("live: controller grouped worker %d with no pending signal", m)
				}
				if err := tr.Send(m, replyTag(seq), encodeDirective(engine.Directive{Group: g, OpID: op, Epoch: ctrl.Epoch()})); err != nil {
					if !transport.IsFailure(err) {
						return err
					}
					suspects = append(suspects, m)
				}
				delete(waiting, m)
			}
			for _, s := range suspects {
				if err := markDead(s, op); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// maybeCrash is the controller-failover harness: after CtrlCrashAfter
	// dispatched groups the controller object is destroyed and replaced —
	// warm from a crash-point snapshot, or cold from the bare config. The
	// reply bookkeeping (waiting) dies with the incarnation; workers whose
	// replies were lost re-send their signals after CtrlTimeout and the
	// retransmissions re-attach (warm) or re-queue (cold). Host-side failure
	// memory (deadSet) survives and is re-taught to a cold controller.
	maybeCrash := func() error {
		if crashed || cfg.CtrlCrashAfter <= 0 || ctrlGroups < cfg.CtrlCrashAfter {
			return nil
		}
		crashed = true
		svcPol := ctrl.Policy()
		if cfg.CtrlCold {
			next, _, err := controller.Rebuild(ctrl.Config(), nil)
			if err != nil {
				return fmt.Errorf("live: controller cold rebuild: %w", err)
			}
			ctrl = next
			for w := range deadSet {
				ctrl.Fail(w) // the fresh controller believes everyone is alive
			}
			cfg.Tracer.Instant(trace.KCtrlRebuild, trace.ControllerTrack, -1, 0, 0)
		} else {
			next, err := controller.Restore(ctrl.Snapshot())
			if err != nil {
				return fmt.Errorf("live: controller restore: %w", err)
			}
			ctrl = next
			cfg.Tracer.Instant(trace.KCtrlRestore, trace.ControllerTrack, -1, 0, 0)
		}
		// Telemetry is wiring, not snapshotted state: re-attach it to the
		// replacement incarnation.
		ctrl.SetTracer(cfg.Tracer)
		ctrl.SetInstruments(cfg.Instruments)
		if svcPol != nil {
			// Warm restores carry policy state in the snapshot blob; a cold
			// rebuild loses it along with the queue.
			if cfg.CtrlCold {
				svcPol.Reset()
			}
			if err := ctrl.SetPolicy(svcPol); err != nil {
				return fmt.Errorf("live: controller failover policy: %w", err)
			}
		}
		for w := range waiting {
			delete(waiting, w)
		}
		return nil
	}

	// retire gracefully removes member w from the world with no hand-off
	// reply: the revert path when a freshly admitted joiner turns out to be
	// unreachable (assignment undeliverable, or its bootstrap transfer died).
	retire := func(w int) error {
		gs, err := ctrl.Drain(w)
		if err != nil {
			return nil // not a member or already draining: nothing to revert
		}
		if err := dispatch(gs); err != nil {
			return err
		}
		if gs, err = ctrl.Decommission(w); err == nil {
			if err := dispatch(gs); err != nil {
				return err
			}
		}
		drained[w] = true
		active--
		return nil
	}

	// admitJoin admits parked rank j at the donor's ready point: the epoch
	// bumps now, so under lockstep the next group deterministically waits for
	// the joiner's first signal. Returns false when the joiner is unreachable
	// and the admission was reverted (the donor should proceed normally).
	admitJoin := func(j, donor int) (bool, error) {
		if err := ctrl.Join(j, float64(time.Now().UnixNano())/1e9); err != nil {
			return false, err
		}
		drained[j] = false
		delete(deadSet, j)
		active++
		bootOp++
		err := tr.Send(j, joinTag(joinSeq[j]), []float64{joinAssign, float64(donor), float64(bootOp)})
		joinSeq[j]++
		if err != nil {
			if !transport.IsFailure(err) {
				return false, err
			}
			// The joiner's process is gone before it ever trained: revert.
			if rerr := retire(j); rerr != nil {
				return false, rerr
			}
			return false, nil
		}
		return true, nil
	}

	release := func() error {
		if len(waiting) > 0 && len(waiting) == active {
			for w, seq := range waiting {
				ctrl.PurgeSignal(w)
				if err := tr.Send(w, replyTag(seq), encodeDirective(engine.Directive{Skip: true, Epoch: ctrl.Epoch()})); err != nil {
					if !transport.IsFailure(err) {
						return err
					}
					delete(waiting, w)
					if err := markDead(w, 0); err != nil {
						return err
					}
					continue
				}
				delete(waiting, w)
			}
		}
		return nil
	}

	// Watchdog cadence, same serialization discipline as the in-process
	// service: evaluated on the event loop so controller reads never race
	// dispatch. Capture errors are swallowed — the flight recorder is
	// best-effort and must never abort training.
	var wdTick <-chan time.Time
	wdStart := time.Now()
	if cfg.Watchdog != nil {
		every := cfg.WatchdogEvery
		if every <= 0 {
			every = time.Second
		}
		wdTicker := time.NewTicker(every)
		defer wdTicker.Stop()
		wdTick = wdTicker.C
	}
	evalWatchdog := func() {
		now := time.Since(wdStart).Seconds()
		if cfg.Tracer != nil {
			now = cfg.Tracer.Now()
		}
		breaches := cfg.Watchdog.Eval(now, health.Sample{
			Snap:       cfg.Instruments.Snapshot(),
			QueueDepth: ctrl.QueueDepth(),
			Active:     active,
		})
		if cfg.Recorder == nil {
			return
		}
		cfg.Recorder.SetControllerSnapshot(ctrl.Snapshot())
		if len(breaches) == 0 {
			return
		}
		st := cfg.Watchdog.State()
		for _, br := range breaches {
			_, _ = cfg.Recorder.Capture(br.Rule.String(), now, []health.Breach{br}, st)
		}
	}

	for active > 0 {
		var ev event
		select {
		case ev = <-events:
		case <-wdTick:
			evalWatchdog()
			continue
		}
		switch {
		case ev.lost:
			if err := markDead(ev.worker, 0); err != nil {
				return err
			}
		case ev.iter == readyFinished:
			if !deadSet[ev.worker] && !completed[ev.worker] {
				completed[ev.worker] = true
				active--
			}
		case ev.iter == readyFailure && ev.dead < 0:
			// Stuck collective (timeout with no peer known dead — severed link,
			// partition, delay spike beyond the retry budget): abort the op for
			// every member so the stuck ones roll back and re-signal. Nobody is
			// condemned; a worker that really is gone breaks its connection and
			// the receive loops report it.
			if op := ev.opID; op != 0 && !abortedOps[op] {
				abortedOps[op] = true
				if g, ok := opGroups[op]; ok {
					for _, mem := range g.Members {
						if deadSet[mem] {
							continue
						}
						if sus := sendAbort(mem, op, -1); sus >= 0 {
							if err := markDead(sus, 0); err != nil {
								return err
							}
						}
					}
				}
			}
		case ev.iter == readyFailure:
			if err := markDead(ev.dead, ev.opID); err != nil {
				return err
			}
		case ev.iter == readyJoinAbort:
			// The joiner's bootstrap transfer died with its donor: un-join it
			// so the cohort stops waiting for a first signal that will never
			// come. The rank goes back to parked and may be re-assigned.
			if ctrl.IsMember(ev.worker) && !ctrl.IsDraining(ev.worker) && ctrl.IsAlive(ev.worker) {
				if err := retire(ev.worker); err != nil {
					return err
				}
			}
		default:
			waiting[ev.worker] = ev.seq
			if ctrl.IsQueued(ev.worker) {
				// Retransmission of a signal the controller still holds (the
				// reply bookkeeping died with a crashed controller
				// incarnation): re-attach the reply seq, don't re-queue.
				if err := dispatch(ctrl.FlushGroups()); err != nil {
					return err
				}
				break
			}
			if drainPending[ev.worker] && ctrl.IsMember(ev.worker) && !ctrl.IsDraining(ev.worker) {
				// Graceful drain lands at the target's ready point — between
				// groups by construction, so no in-flight collective is cut.
				delete(drainPending, ev.worker)
				gs, derr := ctrl.Drain(ev.worker)
				if derr != nil {
					return derr
				}
				if err := dispatch(gs); err != nil {
					return err
				}
				if gs, derr = ctrl.Decommission(ev.worker); derr != nil {
					return derr
				}
				if err := dispatch(gs); err != nil {
					return err
				}
				drained[ev.worker] = true
				active--
				delete(waiting, ev.worker)
				if err := tr.Send(ev.worker, replyTag(ev.seq), encodeDirective(engine.Directive{Drain: true, Epoch: ctrl.Epoch()})); err != nil && !transport.IsFailure(err) {
					return err
				}
				break
			}
			if len(pendingJoins) > 0 && ctrl.IsMember(ev.worker) && !ctrl.IsDraining(ev.worker) && !deadSet[ev.worker] {
				// Divert this ready into a bootstrap assignment: the sender's
				// state is stable here, so it donates a snapshot to the joiner
				// and re-signals the same iteration afterwards.
				j := pendingJoins[0]
				pendingJoins = pendingJoins[1:]
				ok, jerr := admitJoin(j, ev.worker)
				if jerr != nil {
					return jerr
				}
				if ok {
					delete(waiting, ev.worker)
					d := engine.Directive{Bootstrap: true, BootstrapFor: j, BootstrapOp: bootOp, Epoch: ctrl.Epoch()}
					if err := tr.Send(ev.worker, replyTag(ev.seq), encodeDirective(d)); err != nil {
						if !transport.IsFailure(err) {
							return err
						}
						// Donor died before serving; its dead connection fails
						// the joiner's transfer, which then reports join-abort.
						if err := markDead(ev.worker, 0); err != nil {
							return err
						}
					}
					break
				}
				// Admission reverted (joiner unreachable): the donor's signal
				// proceeds normally below.
			}
			groups, err := ctrl.Ready(controller.Signal{
				Worker: ev.worker, Iter: ev.iter, Epoch: ev.epoch,
				Now: float64(time.Now().UnixNano()) / 1e9,
			})
			if err != nil {
				delete(waiting, ev.worker)
				if errors.Is(err, controller.ErrStaleEpoch) {
					// The signal predates a membership change: hand the sender
					// the current epoch and let it re-signal. Nobody is
					// condemned for having an out-of-date world view.
					if serr := tr.Send(ev.worker, replyTag(ev.seq), encodeDirective(engine.Directive{Refresh: true, Epoch: ctrl.Epoch()})); serr != nil && !transport.IsFailure(serr) {
						return serr
					}
					break
				}
				// Dead-marked or duplicate sender: release it to proceed solo.
				if serr := tr.Send(ev.worker, replyTag(ev.seq), encodeDirective(engine.Directive{Skip: true, Epoch: ctrl.Epoch()})); serr != nil && !transport.IsFailure(serr) {
					return serr
				}
				continue
			}
			if err := dispatch(groups); err != nil {
				return err
			}
		}
		if err := release(); err != nil {
			return err
		}
		if err := maybeCrash(); err != nil {
			return err
		}
	}

	// Shutdown: dismiss parked ranks first (never admitted, or drained back
	// out — they are waiting on the join stream and exit without training),
	// then stop each survivor's abort listener and broadcast the roster of
	// completed workers for the final gather.
	for w := 0; w < cfg.N; w++ {
		if completed[w] || deadSet[w] || ctrl.IsMember(w) {
			continue
		}
		if err := tr.Send(w, joinTag(joinSeq[w]), []float64{joinDismiss, 0, 0}); err != nil && !transport.IsFailure(err) {
			return err
		}
		joinSeq[w]++
	}
	roster := make([]float64, 0, cfg.N)
	for w := 0; w < cfg.N; w++ {
		if completed[w] {
			roster = append(roster, float64(w))
		}
	}
	for w := 0; w < cfg.N; w++ {
		if !completed[w] {
			continue
		}
		if sus := sendAbort(w, 0, -1); sus >= 0 {
			return fmt.Errorf("live: worker %d lost at shutdown", w)
		}
		if err := tr.Send(w, ctrlRosterTag, roster); err != nil {
			return fmt.Errorf("live: roster to worker %d: %w", w, err)
		}
	}
	return nil
}

// Reply modes (payload[0] of a replyTag message).
const (
	modeGroup     = 0 // reduce with the encoded group
	modeSkip      = 1 // proceed solo this iteration
	modeDrain     = 2 // graceful hand-off complete; exit cleanly
	modeRefresh   = 3 // stale epoch; adopt the reply's epoch and re-signal
	modeBootstrap = 4 // serve model state to rank aux under op opID, re-signal
)

// encodeDirective flattens a controller directive into a float64 payload:
// [mode, opID, iter, initWeight, epoch, aux, P, members..., weights...].
// aux carries the joiner rank for modeBootstrap and is zero otherwise.
func encodeDirective(d engine.Directive) []float64 {
	g := d.Group
	p := len(g.Members)
	out := make([]float64, 0, 7+2*p)
	mode, aux, opID := float64(modeGroup), 0.0, d.OpID
	switch {
	case d.Skip:
		mode = modeSkip
	case d.Drain:
		mode = modeDrain
	case d.Refresh:
		mode = modeRefresh
	case d.Bootstrap:
		mode = modeBootstrap
		aux = float64(d.BootstrapFor)
		opID = d.BootstrapOp
	}
	out = append(out, mode, float64(opID), float64(g.Iter), g.InitWeight,
		float64(d.Epoch), aux, float64(p))
	for _, m := range g.Members {
		out = append(out, float64(m))
	}
	out = append(out, g.Weights...)
	return out
}

func decodeDirective(payload []float64) (engine.Directive, error) {
	var d engine.Directive
	if len(payload) < 7 {
		return d, fmt.Errorf("live: short group reply")
	}
	mode := int(payload[0])
	d.Epoch = uint64(payload[4])
	switch mode {
	case modeGroup:
	case modeSkip:
		d.Skip = true
	case modeDrain:
		d.Drain = true
	case modeRefresh:
		d.Refresh = true
	case modeBootstrap:
		d.Bootstrap = true
		d.BootstrapFor = int(payload[5])
		d.BootstrapOp = uint32(payload[1])
	default:
		return d, fmt.Errorf("live: unknown reply mode %d", mode)
	}
	if mode != modeGroup {
		if len(payload) != 7+2*int(payload[6]) {
			return d, fmt.Errorf("live: group reply length %d for P=%v", len(payload), payload[6])
		}
		return d, nil
	}
	d.OpID = uint32(payload[1])
	d.Group.Iter = int(payload[2])
	d.Group.InitWeight = payload[3]
	p := int(payload[6])
	if len(payload) != 7+2*p {
		return d, fmt.Errorf("live: group reply length %d for P=%d", len(payload), p)
	}
	d.Group.Members = make([]int, p)
	for i := 0; i < p; i++ {
		v := payload[7+i]
		if v != math.Trunc(v) || v < 0 {
			return d, fmt.Errorf("live: bad member id %v", v)
		}
		d.Group.Members[i] = int(v)
	}
	d.Group.Weights = append([]float64{}, payload[7+p:]...)
	return d, nil
}

// wireControl implements engine.Control over the transport's control-tag
// message space: ready signals and failure reports ride readyTag(seq)
// messages to the controller rank, group replies come back on replyTag(seq).
// The host's per-worker receive loop matches consecutive sequence numbers,
// so every send below advances seq exactly as the host expects.
type wireControl struct {
	cfg      Config
	tr       transport.Transport
	ctrlRank int
	id       int
	seq      int
	// epoch is the last world-view version the controller answered with,
	// stamped into every outgoing signal (0 until the first answer:
	// unversioned signals are always accepted).
	epoch    uint64
	replyBuf []float64
}

func (c *wireControl) Signal(iter int) (engine.Directive, error) {
	sig := []float64{float64(iter), float64(c.epoch)}
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), sig); err != nil {
		return engine.Directive{}, err
	}
	var reply []float64
	for resends := 0; ; {
		n, err := transport.RecvIntoDeadline(c.tr, c.ctrlRank, replyTag(c.seq), c.replyBuf, c.cfg.CtrlTimeout)
		if err == nil {
			reply = c.replyBuf[:n]
			break
		}
		if !transport.IsTimeout(err) {
			return engine.Directive{}, err
		}
		// The reply was lost with a crashed controller incarnation (or
		// is merely late): re-send the signal on the next sequence
		// number — the host recognizes retransmissions — and wait
		// there. After ctrlResendLimit misses the controller is
		// unreachable (severed link, dead host): withdraw from the
		// cluster so peers and the host detect the departure through
		// the transport instead of everyone hanging.
		resends++
		if resends > ctrlResendLimit {
			if sf, ok := c.tr.(transport.SelfFailer); ok {
				sf.FailSelf()
			} else {
				c.tr.Close()
			}
			return engine.Directive{}, fmt.Errorf("live: worker %d: controller unreachable after %d signals: %w", c.id, resends, err)
		}
		c.seq++
		if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), sig); err != nil {
			return engine.Directive{}, err
		}
	}
	c.seq++
	d, err := decodeDirective(reply)
	if err != nil {
		return engine.Directive{}, err
	}
	if d.Epoch != 0 {
		// Adopt the controller's world view from every answer (refresh
		// replies exist precisely to deliver this).
		c.epoch = d.Epoch
	}
	return d, nil
}

func (c *wireControl) SignalNoWait(iter int) {
	// Crash injection: the signal goes out and the sender dies without
	// reading the reply, so the send error (if any) is irrelevant.
	_ = c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{float64(iter), float64(c.epoch)})
}

func (c *wireControl) ReportDeath(dead int, g controller.Group, opID uint32) error {
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyFailure, float64(dead), float64(opID)}); err != nil {
		return err
	}
	c.seq++
	return nil
}

func (c *wireControl) ReportStuck(g controller.Group, opID uint32) error {
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyFailure, -1, float64(opID)}); err != nil {
		return err
	}
	c.seq++
	return nil
}

func (c *wireControl) Finished() error {
	return c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyFinished})
}

// ReportJoinAbort tells the host this rank's bootstrap transfer failed: the
// host un-joins it (nobody condemned) and the rank goes back to parked.
func (c *wireControl) ReportJoinAbort() error {
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyJoinAbort}); err != nil {
		return err
	}
	c.seq++
	return nil
}

// runWorkerLoop is the per-process worker: it assembles the engine
// LiveWorker and wire-backed Control, hands the training loop to
// engine.RunPReduceWorker (the same step machine the in-process runtime and
// the simulator drive), then runs the roster-wide gather that lets the host
// evaluate the averaged model. An abort-listener goroutine applies the
// host's abort notifications to the local transport, waking this worker if
// it is blocked in a collective behind a dead peer.
func runWorkerLoop(cfg Config, tr transport.Transport, ctrlRank int, host bool) (*Report, error) {
	id := tr.Rank()
	base := cfg.Spec.Build(cfg.Seed)
	init := base.Params().Clone()
	shards := cfg.Train.Shard(cfg.N)

	m := base.Clone()
	opt := optim.NewSGD(cfg.Optimizer, m.NumParams())
	sampler := data.NewSampler(shards[id], cfg.Seed*31+int64(id))

	// Abort listener: the host numbers abort notifications per worker; op 0
	// is the shutdown sentinel. Errors end the listener (the transport is
	// closing, or we have been declared dead — either way no more aborts).
	if oa, ok := tr.(transport.OpAborter); ok {
		go func() {
			for seq := 0; ; seq++ {
				payload, err := tr.Recv(ctrlRank, abortTag(seq))
				if err != nil || len(payload) < 1 || payload[0] <= 0 {
					return
				}
				oa.AbortOp(uint32(payload[0]))
			}
		}()
	}

	start := time.Now()
	var comms collective.OpStats
	pol := cfg.Retry
	if pol.Seed == 0 {
		pol.Seed = cfg.Seed
	}
	env := engine.NewLiveEnv(id, tr, collective.Options{
		SegmentElems: cfg.SegmentElems,
		Stats:        &comms,
		Timeout:      cfg.CollectiveTimeout,
		Retry:        pol,
		Tracer:       cfg.Tracer,
		TraceTrack:   int32(id),
		TraceIter:    -1,
	}, cfg.Tracer, cfg.Instruments)
	ctl := &wireControl{cfg: cfg, tr: tr, ctrlRank: ctrlRank, id: id, replyBuf: make([]float64, 7+2*cfg.N)}

	// Elastic lifecycle: ranks beyond the founding set park on the join
	// stream until the host assigns them a donor (bootstrap, then train from
	// the donor's iteration) or dismisses them at shutdown. A drained rank
	// parks again — eligible for re-admission, dismissed when the run ends.
	parked := id >= cfg.initialOr()
	joinSeq := 0
	startIter := 0
	groupsTotal := 0
	var out engine.Outcome
	for {
		if parked {
			payload, err := tr.Recv(ctrlRank, joinTag(joinSeq))
			if err != nil {
				return nil, err
			}
			joinSeq++
			if len(payload) < 3 || payload[0] == joinDismiss {
				return &Report{
					Groups:      groupsTotal,
					WallTime:    time.Since(start),
					WorkerIters: []int{startIter},
					Completed:   []bool{false},
					Comms:       comms,
				}, nil
			}
			donor, op := int(payload[1]), uint32(payload[2])
			st, berr := collective.BootstrapRecv(tr, donor, op, env.Copts)
			if berr != nil {
				if transport.IsFailure(berr) {
					// Donor died mid-transfer: hand the join back to the host
					// and wait parked for a new assignment (or dismissal).
					if rerr := ctl.ReportJoinAbort(); rerr != nil {
						return nil, rerr
					}
					continue
				}
				return nil, fmt.Errorf("live: worker %d bootstrap from %d: %w", id, donor, berr)
			}
			m.SetParams(tensor.Vector(st.Params))
			opt = optim.NewSGD(cfg.Optimizer, m.NumParams())
			if err := opt.Restore(tensor.Vector(st.Velocity), st.Step); err != nil {
				return nil, fmt.Errorf("live: worker %d bootstrap restore: %w", id, err)
			}
			cfg.Tracer.Instant(trace.KBootstrap, int32(id), int32(st.Iter), int64(donor), int64(len(st.Params)))
			startIter = st.Iter
			parked = false
		}

		w := &engine.LiveWorker{
			Env:          env,
			Model:        m,
			Opt:          opt,
			Sampler:      sampler,
			Init:         init,
			Iters:        cfg.Iters,
			StartIter:    startIter,
			BatchSize:    cfg.BatchSize,
			ComputeDelay: cfg.ComputeDelay,
			CrashAt:      cfg.Crash[id], // zero when this rank never crashes
		}
		var err error
		out, err = engine.RunPReduceWorker(w, ctl)
		switch {
		case err != nil:
			return nil, err
		case out.DeadErr != nil:
			return nil, fmt.Errorf("live: worker %d declared dead: %w", id, out.DeadErr)
		case out.Crashed:
			// The engine already sent the in-flight ready signal; complete the
			// fail-stop so peers and the host observe the death.
			if sf, ok := tr.(transport.SelfFailer); ok {
				sf.FailSelf()
			} else {
				tr.Close()
			}
			return &Report{
				WallTime:    time.Since(start),
				WorkerIters: []int{out.Iter},
				Completed:   []bool{false},
			}, nil
		}
		groupsTotal += out.Groups
		if out.Drained {
			startIter = out.Iter
			parked = true
			continue
		}
		break
	}
	iter, groups := out.Iter, groupsTotal

	// The host broadcasts the survivor roster; the final average runs over
	// it (a full-world gather would block on the dead ranks forever).
	rosterPayload, err := tr.Recv(ctrlRank, ctrlRosterTag)
	if err != nil {
		return nil, err
	}
	roster := make([]int, len(rosterPayload))
	for i, v := range rosterPayload {
		roster[i] = int(v)
	}
	sort.Ints(roster)

	// The tail collectives reuse env.Copts: its TraceIter still carries the
	// last group op's iteration tag, the behavior the trace goldens pin.
	all, err := collective.GatherOpts(tr, roster, gatherOpID, ctrlRank, m.Params(), env.Copts)
	if err != nil {
		return nil, err
	}
	// Hold every surviving process until the roster is done: a rank that
	// exits early (iteration fast-forward can finish it first) would tear
	// down its transport under peers still training.
	if err := collective.BarrierOpts(tr, roster, barrierOpID, env.Copts); err != nil {
		return nil, err
	}
	rep := &Report{
		Groups:      groups,
		WallTime:    time.Since(start),
		WorkerIters: []int{iter},
		Completed:   []bool{true},
		Comms:       comms,
	}
	if host {
		avg := tensor.NewVector(len(init))
		for _, p := range all {
			avg.Add(p)
		}
		avg.Scale(1 / float64(len(all)))
		base.SetParams(avg)
		rep.FinalAccuracy = model.Accuracy(base, cfg.Test)
	}
	return rep, nil
}
