package live

import (
	"fmt"
	"math"
	"sort"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

// Multi-process deployment: each rank runs RunWorker in its own process;
// rank 0 additionally hosts the controller. Control-plane messages travel
// over the same transport as the collectives, in the prototype's spirit:
// a ready signal is one float64 triple, a group reply a couple dozen — a
// few bytes against megabytes of model traffic.
//
// Fault tolerance works as in the in-process runtime, but over the wire:
// the host's per-worker receive loops double as failure detectors (a broken
// connection fails the pending receive with a peer-down error), survivors
// report peer deaths through their ready stream, and the host pushes abort
// notifications so group members blocked behind a corpse wake up. The final
// model average runs over a host-broadcast roster of survivors instead of
// the full world. Checkpoint rejoin is an in-process-runtime feature only: a
// real rejoining process needs a fresh transport mesh, which the prototype's
// fixed mesh cannot provide.
//
// Tag space: the high bits carried by collective operations never use the
// ctrl prefix below, so control and data planes cannot collide.
const (
	ctrlReadyTag  uint64 = 0xC0_000000_000000
	ctrlReplyTag  uint64 = 0xC1_000000_000000
	ctrlAbortTag  uint64 = 0xC2_000000_000000
	ctrlRosterTag uint64 = 0xC3_000000_000000
	gatherOpID    uint32 = 0xFFFFFF
	barrierOpID   uint32 = 0xFFFFFE
)

// ctrlResendLimit bounds how many times a worker re-sends a ready signal whose
// reply timed out (CtrlTimeout) before concluding the controller is
// unreachable and withdrawing from the cluster.
const ctrlResendLimit = 8

func readyTag(seq int) uint64 { return ctrlReadyTag | uint64(seq) }
func replyTag(seq int) uint64 { return ctrlReplyTag | uint64(seq) }
func abortTag(seq int) uint64 { return ctrlAbortTag | uint64(seq) }

// Ready-stream control markers (payload[0] values that are not iterations).
const (
	readyFinished = -1 // worker completed all iterations
	readyFailure  = -2 // payload: [-2, deadRank, opID] — peer death report
)

// RunWorker runs this process's share of a live P-Reduce world: the worker
// loop for rank tr.Rank(), plus the controller service when host is true
// (exactly one rank — conventionally 0 — must host). It returns the final
// report; non-host ranks get a report without the averaged-model accuracy.
// A rank configured to crash returns a nil-error report marked Completed[0]
// == false once it has "died".
func RunWorker(cfg Config, tr transport.Transport, host bool) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.Size() != cfg.N {
		return nil, fmt.Errorf("live: transport world %d != N %d", tr.Size(), cfg.N)
	}
	ctrlRank := 0
	if _, ok := cfg.Crash[ctrlRank]; ok {
		return nil, fmt.Errorf("live: rank %d hosts the controller and cannot crash (run the controller on a reliable node, or replicate it)", ctrlRank)
	}
	if len(cfg.Rejoin) > 0 {
		return nil, fmt.Errorf("live: checkpoint rejoin requires the in-process runtime (a rejoining process needs a fresh mesh)")
	}

	ctrlErr := make(chan error, 1)
	if host {
		if tr.Rank() != ctrlRank {
			return nil, fmt.Errorf("live: controller must run on rank %d", ctrlRank)
		}
		go func() { ctrlErr <- runControllerService(cfg, tr) }()
	}

	rep, err := runWorkerLoop(cfg, tr, ctrlRank, host)
	if err != nil {
		return nil, err
	}
	if host {
		if cerr := <-ctrlErr; cerr != nil {
			return nil, cerr
		}
	}
	return rep, nil
}

// runControllerService hosts the controller: one receive loop per worker
// feeds a serializing channel, exactly like the in-process service but over
// the transport. The receive loops double as failure detectors: a worker
// whose connection breaks fails its pending receive with a peer-down error,
// which the loop reports as a death event.
func runControllerService(cfg Config, tr transport.Transport) error {
	ctrlCfg := controller.Config{
		N: cfg.N, P: cfg.P,
		Weighting: cfg.Weighting, Alpha: cfg.Alpha, Approx: cfg.Approx,
	}
	var pol policy.Policy
	if cfg.Policy.Enabled() {
		spec := cfg.Policy.Resolve(cfg.P)
		if spec.Name == policy.NameAdaptiveP && spec.PMin < cfg.P {
			ctrlCfg.Window = controller.MinWindow(cfg.N, spec.PMin)
		}
		var perr error
		if pol, perr = policy.New(cfg.Policy, cfg.N, cfg.P); perr != nil {
			return perr
		}
	}
	ctrl, err := controller.New(ctrlCfg)
	if err != nil {
		return err
	}
	ctrl.SetTracer(cfg.Tracer)
	ctrl.SetInstruments(cfg.Instruments)
	if pol != nil {
		if err := ctrl.SetPolicy(pol); err != nil {
			return err
		}
	}

	type event struct {
		worker int
		iter   int // readyFinished / readyFailure are control markers
		seq    int
		dead   int    // readyFailure: the rank reported down
		opID   uint32 // readyFailure: the collective that broke
		lost   bool   // the receive loop itself saw the worker go down
	}
	events := make(chan event, 2*cfg.N)
	for w := 0; w < cfg.N; w++ {
		w := w
		go func() {
			for seq := 0; ; seq++ {
				payload, err := tr.Recv(w, readyTag(seq))
				if err != nil {
					if transport.IsFailure(err) {
						events <- event{worker: w, lost: true}
					}
					return // otherwise: transport closed, service shutting down
				}
				if len(payload) == 0 {
					continue
				}
				switch payload[0] {
				case readyFinished:
					events <- event{worker: w, iter: readyFinished, seq: seq}
					return
				case readyFailure:
					if len(payload) == 3 {
						events <- event{
							worker: w, iter: readyFailure, seq: seq,
							dead: int(payload[1]), opID: uint32(payload[2]),
						}
					}
				default:
					events <- event{worker: w, iter: int(payload[0]), seq: seq}
				}
			}
		}()
	}

	waiting := map[int]int{} // worker -> reply seq
	opGroups := map[uint32]controller.Group{}
	lastOpID := map[int]uint32{}
	abortedOps := map[uint32]bool{}
	deadSet := map[int]bool{} // host-side memory of deaths (survives ctrl crashes)
	abortSeq := make([]int, cfg.N)
	completed := make([]bool, cfg.N)
	active := cfg.N
	opSeq := uint32(0)
	ctrlGroups := 0 // groups dispatched, for the failover-harness trigger
	crashed := false

	// sendAbort tells worker w to abort collective op locally; returns the
	// rank as a new death suspect if even that message cannot be delivered.
	sendAbort := func(w int, op uint32, dead int) (suspect int) {
		if err := tr.Send(w, abortTag(abortSeq[w]), []float64{float64(op), float64(dead)}); err != nil {
			if transport.IsFailure(err) {
				return w
			}
			return -1
		}
		abortSeq[w]++
		return -1
	}

	var dispatch func(groups []controller.Group) error
	var markDead func(dead int, opID uint32) error

	// markDead excludes dead from future groups, aborts the collective it
	// may be blocking (opID 0: none observed — its last dispatched op is
	// aborted as a precaution), and dispatches any groups the shrunken
	// effective group size unblocks. Abort notifications that fail expose
	// further deaths, handled iteratively.
	markDead = func(dead int, opID uint32) error {
		suspects := []event{{worker: dead, opID: opID}}
		for len(suspects) > 0 {
			s := suspects[0]
			suspects = suspects[1:]
			first := !deadSet[s.worker]
			if !first && !ctrl.IsAlive(s.worker) {
				continue
			}
			if first {
				deadSet[s.worker] = true
				active--
				delete(waiting, s.worker)
			}
			op := s.opID
			if op == 0 {
				op = lastOpID[s.worker]
			}
			var groups []controller.Group
			if g, ok := opGroups[op]; ok && op != 0 && !abortedOps[op] {
				abortedOps[op] = true
				groups = ctrl.AbortGroup(g, s.worker)
				for _, mem := range g.Members {
					if mem == s.worker || !ctrl.IsAlive(mem) {
						continue
					}
					if sus := sendAbort(mem, op, s.worker); sus >= 0 {
						suspects = append(suspects, event{worker: sus})
					}
				}
			} else {
				groups = ctrl.Fail(s.worker)
			}
			if err := dispatch(groups); err != nil {
				return err
			}
		}
		return nil
	}

	dispatch = func(groups []controller.Group) error {
		for _, g := range groups {
			opSeq++
			ctrlGroups++
			op := opSeq
			opGroups[op] = g
			var suspects []int
			for _, m := range g.Members {
				lastOpID[m] = op
				seq, ok := waiting[m]
				if !ok {
					if cfg.CtrlCrashAfter > 0 {
						// The member's reply bookkeeping died in a controller
						// crash and it has not retransmitted yet: it cannot
						// join this op. The present members' collectives time
						// out and the stuck-abort path dissolves the group;
						// everyone re-signals.
						continue
					}
					return fmt.Errorf("live: controller grouped worker %d with no pending signal", m)
				}
				if err := tr.Send(m, replyTag(seq), encodeGroup(g, op, false)); err != nil {
					if !transport.IsFailure(err) {
						return err
					}
					suspects = append(suspects, m)
				}
				delete(waiting, m)
			}
			for _, s := range suspects {
				if err := markDead(s, op); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// maybeCrash is the controller-failover harness: after CtrlCrashAfter
	// dispatched groups the controller object is destroyed and replaced —
	// warm from a crash-point snapshot, or cold from the bare config. The
	// reply bookkeeping (waiting) dies with the incarnation; workers whose
	// replies were lost re-send their signals after CtrlTimeout and the
	// retransmissions re-attach (warm) or re-queue (cold). Host-side failure
	// memory (deadSet) survives and is re-taught to a cold controller.
	maybeCrash := func() error {
		if crashed || cfg.CtrlCrashAfter <= 0 || ctrlGroups < cfg.CtrlCrashAfter {
			return nil
		}
		crashed = true
		svcPol := ctrl.Policy()
		if cfg.CtrlCold {
			next, _, err := controller.Rebuild(ctrl.Config(), nil)
			if err != nil {
				return fmt.Errorf("live: controller cold rebuild: %w", err)
			}
			ctrl = next
			for w := range deadSet {
				ctrl.Fail(w) // the fresh controller believes everyone is alive
			}
			cfg.Tracer.Instant(trace.KCtrlRebuild, trace.ControllerTrack, -1, 0, 0)
		} else {
			next, err := controller.Restore(ctrl.Snapshot())
			if err != nil {
				return fmt.Errorf("live: controller restore: %w", err)
			}
			ctrl = next
			cfg.Tracer.Instant(trace.KCtrlRestore, trace.ControllerTrack, -1, 0, 0)
		}
		// Telemetry is wiring, not snapshotted state: re-attach it to the
		// replacement incarnation.
		ctrl.SetTracer(cfg.Tracer)
		ctrl.SetInstruments(cfg.Instruments)
		if svcPol != nil {
			// Warm restores carry policy state in the snapshot blob; a cold
			// rebuild loses it along with the queue.
			if cfg.CtrlCold {
				svcPol.Reset()
			}
			if err := ctrl.SetPolicy(svcPol); err != nil {
				return fmt.Errorf("live: controller failover policy: %w", err)
			}
		}
		for w := range waiting {
			delete(waiting, w)
		}
		return nil
	}

	release := func() error {
		if len(waiting) > 0 && len(waiting) == active {
			for w, seq := range waiting {
				ctrl.PurgeSignal(w)
				if err := tr.Send(w, replyTag(seq), encodeGroup(controller.Group{}, 0, true)); err != nil {
					if !transport.IsFailure(err) {
						return err
					}
					delete(waiting, w)
					if err := markDead(w, 0); err != nil {
						return err
					}
					continue
				}
				delete(waiting, w)
			}
		}
		return nil
	}

	for active > 0 {
		ev := <-events
		switch {
		case ev.lost:
			if err := markDead(ev.worker, 0); err != nil {
				return err
			}
		case ev.iter == readyFinished:
			if !deadSet[ev.worker] && !completed[ev.worker] {
				completed[ev.worker] = true
				active--
			}
		case ev.iter == readyFailure && ev.dead < 0:
			// Stuck collective (timeout with no peer known dead — severed link,
			// partition, delay spike beyond the retry budget): abort the op for
			// every member so the stuck ones roll back and re-signal. Nobody is
			// condemned; a worker that really is gone breaks its connection and
			// the receive loops report it.
			if op := ev.opID; op != 0 && !abortedOps[op] {
				abortedOps[op] = true
				if g, ok := opGroups[op]; ok {
					for _, mem := range g.Members {
						if deadSet[mem] {
							continue
						}
						if sus := sendAbort(mem, op, -1); sus >= 0 {
							if err := markDead(sus, 0); err != nil {
								return err
							}
						}
					}
				}
			}
		case ev.iter == readyFailure:
			if err := markDead(ev.dead, ev.opID); err != nil {
				return err
			}
		default:
			waiting[ev.worker] = ev.seq
			if ctrl.IsQueued(ev.worker) {
				// Retransmission of a signal the controller still holds (the
				// reply bookkeeping died with a crashed controller
				// incarnation): re-attach the reply seq, don't re-queue.
				if err := dispatch(ctrl.Drain()); err != nil {
					return err
				}
				break
			}
			groups, err := ctrl.Ready(controller.Signal{
				Worker: ev.worker, Iter: ev.iter,
				Now: float64(time.Now().UnixNano()) / 1e9,
			})
			if err != nil {
				// Dead-marked or duplicate sender: release it to proceed solo.
				delete(waiting, ev.worker)
				if serr := tr.Send(ev.worker, replyTag(ev.seq), encodeGroup(controller.Group{}, 0, true)); serr != nil && !transport.IsFailure(serr) {
					return serr
				}
				continue
			}
			if err := dispatch(groups); err != nil {
				return err
			}
		}
		if err := release(); err != nil {
			return err
		}
		if err := maybeCrash(); err != nil {
			return err
		}
	}

	// Shutdown: stop each survivor's abort listener, then broadcast the
	// roster of completed workers for the final gather.
	roster := make([]float64, 0, cfg.N)
	for w := 0; w < cfg.N; w++ {
		if completed[w] {
			roster = append(roster, float64(w))
		}
	}
	for w := 0; w < cfg.N; w++ {
		if !completed[w] {
			continue
		}
		if sus := sendAbort(w, 0, -1); sus >= 0 {
			return fmt.Errorf("live: worker %d lost at shutdown", w)
		}
		if err := tr.Send(w, ctrlRosterTag, roster); err != nil {
			return fmt.Errorf("live: roster to worker %d: %w", w, err)
		}
	}
	return nil
}

// encodeGroup flattens a group reply into a float64 payload:
// [skip, opID, iter, initWeight, P, members..., weights...].
func encodeGroup(g controller.Group, opID uint32, skip bool) []float64 {
	p := len(g.Members)
	out := make([]float64, 0, 5+2*p)
	s := 0.0
	if skip {
		s = 1
	}
	out = append(out, s, float64(opID), float64(g.Iter), g.InitWeight, float64(p))
	for _, m := range g.Members {
		out = append(out, float64(m))
	}
	out = append(out, g.Weights...)
	return out
}

func decodeGroup(payload []float64) (g controller.Group, opID uint32, skip bool, err error) {
	if len(payload) < 5 {
		return g, 0, false, fmt.Errorf("live: short group reply")
	}
	skip = payload[0] == 1
	opID = uint32(payload[1])
	g.Iter = int(payload[2])
	g.InitWeight = payload[3]
	p := int(payload[4])
	if len(payload) != 5+2*p {
		return g, 0, false, fmt.Errorf("live: group reply length %d for P=%d", len(payload), p)
	}
	g.Members = make([]int, p)
	for i := 0; i < p; i++ {
		v := payload[5+i]
		if v != math.Trunc(v) || v < 0 {
			return g, 0, false, fmt.Errorf("live: bad member id %v", v)
		}
		g.Members[i] = int(v)
	}
	g.Weights = append([]float64{}, payload[5+p:]...)
	return g, opID, skip, nil
}

// wireControl implements engine.Control over the transport's control-tag
// message space: ready signals and failure reports ride readyTag(seq)
// messages to the controller rank, group replies come back on replyTag(seq).
// The host's per-worker receive loop matches consecutive sequence numbers,
// so every send below advances seq exactly as the host expects.
type wireControl struct {
	cfg      Config
	tr       transport.Transport
	ctrlRank int
	id       int
	seq      int
	replyBuf []float64
}

func (c *wireControl) Signal(iter int) (engine.Directive, error) {
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{float64(iter)}); err != nil {
		return engine.Directive{}, err
	}
	var reply []float64
	for resends := 0; ; {
		n, err := transport.RecvIntoDeadline(c.tr, c.ctrlRank, replyTag(c.seq), c.replyBuf, c.cfg.CtrlTimeout)
		if err == nil {
			reply = c.replyBuf[:n]
			break
		}
		if !transport.IsTimeout(err) {
			return engine.Directive{}, err
		}
		// The reply was lost with a crashed controller incarnation (or
		// is merely late): re-send the signal on the next sequence
		// number — the host recognizes retransmissions — and wait
		// there. After ctrlResendLimit misses the controller is
		// unreachable (severed link, dead host): withdraw from the
		// cluster so peers and the host detect the departure through
		// the transport instead of everyone hanging.
		resends++
		if resends > ctrlResendLimit {
			if sf, ok := c.tr.(transport.SelfFailer); ok {
				sf.FailSelf()
			} else {
				c.tr.Close()
			}
			return engine.Directive{}, fmt.Errorf("live: worker %d: controller unreachable after %d signals: %w", c.id, resends, err)
		}
		c.seq++
		if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{float64(iter)}); err != nil {
			return engine.Directive{}, err
		}
	}
	c.seq++
	g, opID, skip, err := decodeGroup(reply)
	if err != nil {
		return engine.Directive{}, err
	}
	return engine.Directive{Group: g, OpID: opID, Skip: skip}, nil
}

func (c *wireControl) SignalNoWait(iter int) {
	// Crash injection: the signal goes out and the sender dies without
	// reading the reply, so the send error (if any) is irrelevant.
	_ = c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{float64(iter)})
}

func (c *wireControl) ReportDeath(dead int, g controller.Group, opID uint32) error {
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyFailure, float64(dead), float64(opID)}); err != nil {
		return err
	}
	c.seq++
	return nil
}

func (c *wireControl) ReportStuck(g controller.Group, opID uint32) error {
	if err := c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyFailure, -1, float64(opID)}); err != nil {
		return err
	}
	c.seq++
	return nil
}

func (c *wireControl) Finished() error {
	return c.tr.Send(c.ctrlRank, readyTag(c.seq), []float64{readyFinished})
}

// runWorkerLoop is the per-process worker: it assembles the engine
// LiveWorker and wire-backed Control, hands the training loop to
// engine.RunPReduceWorker (the same step machine the in-process runtime and
// the simulator drive), then runs the roster-wide gather that lets the host
// evaluate the averaged model. An abort-listener goroutine applies the
// host's abort notifications to the local transport, waking this worker if
// it is blocked in a collective behind a dead peer.
func runWorkerLoop(cfg Config, tr transport.Transport, ctrlRank int, host bool) (*Report, error) {
	id := tr.Rank()
	base := cfg.Spec.Build(cfg.Seed)
	init := base.Params().Clone()
	shards := cfg.Train.Shard(cfg.N)

	m := base.Clone()
	opt := optim.NewSGD(cfg.Optimizer, m.NumParams())
	sampler := data.NewSampler(shards[id], cfg.Seed*31+int64(id))

	// Abort listener: the host numbers abort notifications per worker; op 0
	// is the shutdown sentinel. Errors end the listener (the transport is
	// closing, or we have been declared dead — either way no more aborts).
	if oa, ok := tr.(transport.OpAborter); ok {
		go func() {
			for seq := 0; ; seq++ {
				payload, err := tr.Recv(ctrlRank, abortTag(seq))
				if err != nil || len(payload) < 1 || payload[0] <= 0 {
					return
				}
				oa.AbortOp(uint32(payload[0]))
			}
		}()
	}

	start := time.Now()
	var comms collective.OpStats
	pol := cfg.Retry
	if pol.Seed == 0 {
		pol.Seed = cfg.Seed
	}
	env := engine.NewLiveEnv(id, tr, collective.Options{
		SegmentElems: cfg.SegmentElems,
		Stats:        &comms,
		Timeout:      cfg.CollectiveTimeout,
		Retry:        pol,
		Tracer:       cfg.Tracer,
		TraceTrack:   int32(id),
		TraceIter:    -1,
	}, cfg.Tracer, cfg.Instruments)
	w := &engine.LiveWorker{
		Env:          env,
		Model:        m,
		Opt:          opt,
		Sampler:      sampler,
		Init:         init,
		Iters:        cfg.Iters,
		BatchSize:    cfg.BatchSize,
		ComputeDelay: cfg.ComputeDelay,
		CrashAt:      cfg.Crash[id], // zero when this rank never crashes
	}
	ctl := &wireControl{cfg: cfg, tr: tr, ctrlRank: ctrlRank, id: id, replyBuf: make([]float64, 5+2*cfg.N)}
	out, err := engine.RunPReduceWorker(w, ctl)
	switch {
	case err != nil:
		return nil, err
	case out.DeadErr != nil:
		return nil, fmt.Errorf("live: worker %d declared dead: %w", id, out.DeadErr)
	case out.Crashed:
		// The engine already sent the in-flight ready signal; complete the
		// fail-stop so peers and the host observe the death.
		if sf, ok := tr.(transport.SelfFailer); ok {
			sf.FailSelf()
		} else {
			tr.Close()
		}
		return &Report{
			WallTime:    time.Since(start),
			WorkerIters: []int{out.Iter},
			Completed:   []bool{false},
		}, nil
	}
	iter, groups := out.Iter, out.Groups

	// The host broadcasts the survivor roster; the final average runs over
	// it (a full-world gather would block on the dead ranks forever).
	rosterPayload, err := tr.Recv(ctrlRank, ctrlRosterTag)
	if err != nil {
		return nil, err
	}
	roster := make([]int, len(rosterPayload))
	for i, v := range rosterPayload {
		roster[i] = int(v)
	}
	sort.Ints(roster)

	// The tail collectives reuse env.Copts: its TraceIter still carries the
	// last group op's iteration tag, the behavior the trace goldens pin.
	all, err := collective.GatherOpts(tr, roster, gatherOpID, ctrlRank, m.Params(), env.Copts)
	if err != nil {
		return nil, err
	}
	// Hold every surviving process until the roster is done: a rank that
	// exits early (iteration fast-forward can finish it first) would tear
	// down its transport under peers still training.
	if err := collective.BarrierOpts(tr, roster, barrierOpID, env.Copts); err != nil {
		return nil, err
	}
	rep := &Report{
		Groups:      groups,
		WallTime:    time.Since(start),
		WorkerIters: []int{iter},
		Completed:   []bool{true},
		Comms:       comms,
	}
	if host {
		avg := tensor.NewVector(len(init))
		for _, p := range all {
			avg.Add(p)
		}
		avg.Scale(1 / float64(len(all)))
		base.SetParams(avg)
		rep.FinalAccuracy = model.Accuracy(base, cfg.Test)
	}
	return rep, nil
}
