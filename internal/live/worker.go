package live

import (
	"fmt"
	"math"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/tensor"
	"partialreduce/internal/transport"
)

// Multi-process deployment: each rank runs RunWorker in its own process;
// rank 0 additionally hosts the controller. Control-plane messages travel
// over the same transport as the collectives, in the prototype's spirit:
// a ready signal is one float64 triple, a group reply a couple dozen — a
// few bytes against megabytes of model traffic.
//
// Tag space: the high bits carried by collective operations never use the
// ctrl prefix below, so control and data planes cannot collide.
const (
	ctrlReadyTag uint64 = 0xC0_000000_000000
	ctrlReplyTag uint64 = 0xC1_000000_000000
	gatherOpID   uint32 = 0xFFFFFF
	barrierOpID  uint32 = 0xFFFFFE
)

func readyTag(seq int) uint64 { return ctrlReadyTag | uint64(seq) }
func replyTag(seq int) uint64 { return ctrlReplyTag | uint64(seq) }

// RunWorker runs this process's share of a live P-Reduce world: the worker
// loop for rank tr.Rank(), plus the controller service when host is true
// (exactly one rank — conventionally 0 — must host). It returns the final
// report; non-host ranks get a report without the averaged-model accuracy.
func RunWorker(cfg Config, tr transport.Transport, host bool) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.Size() != cfg.N {
		return nil, fmt.Errorf("live: transport world %d != N %d", tr.Size(), cfg.N)
	}
	ctrlRank := 0

	ctrlErr := make(chan error, 1)
	if host {
		if tr.Rank() != ctrlRank {
			return nil, fmt.Errorf("live: controller must run on rank %d", ctrlRank)
		}
		go func() { ctrlErr <- runControllerService(cfg, tr) }()
	}

	rep, err := runWorkerLoop(cfg, tr, ctrlRank, host)
	if err != nil {
		return nil, err
	}
	if host {
		if cerr := <-ctrlErr; cerr != nil {
			return nil, cerr
		}
	}
	return rep, nil
}

// runControllerService hosts the controller: one receive loop per worker
// feeds a serializing channel, exactly like the in-process service but over
// the transport.
func runControllerService(cfg Config, tr transport.Transport) error {
	ctrl, err := controller.New(controller.Config{
		N: cfg.N, P: cfg.P,
		Weighting: cfg.Weighting, Alpha: cfg.Alpha, Approx: cfg.Approx,
	})
	if err != nil {
		return err
	}

	type event struct {
		worker int
		iter   int // -1 = worker finished
		seq    int
	}
	events := make(chan event, cfg.N)
	for w := 0; w < cfg.N; w++ {
		w := w
		go func() {
			for seq := 0; ; seq++ {
				payload, err := tr.Recv(w, readyTag(seq))
				if err != nil {
					return // transport closed; service is shutting down
				}
				iter := int(payload[0])
				events <- event{worker: w, iter: iter, seq: seq}
				if iter < 0 {
					return
				}
			}
		}()
	}

	waiting := map[int]int{} // worker -> reply seq
	finished := 0
	opSeq := uint32(0)

	release := func() error {
		if len(waiting) > 0 && len(waiting) == cfg.N-finished {
			for w, seq := range waiting {
				if err := tr.Send(w, replyTag(seq), encodeGroup(controller.Group{}, 0, true)); err != nil {
					return err
				}
				delete(waiting, w)
			}
		}
		return nil
	}

	for finished < cfg.N {
		ev := <-events
		if ev.iter < 0 {
			finished++
			if err := release(); err != nil {
				return err
			}
			continue
		}
		waiting[ev.worker] = ev.seq
		groups, err := ctrl.Ready(controller.Signal{Worker: ev.worker, Iter: ev.iter})
		if err != nil {
			return err
		}
		for _, g := range groups {
			opSeq++
			for _, m := range g.Members {
				seq, ok := waiting[m]
				if !ok {
					return fmt.Errorf("live: controller grouped worker %d with no pending signal", m)
				}
				if err := tr.Send(m, replyTag(seq), encodeGroup(g, opSeq, false)); err != nil {
					return err
				}
				delete(waiting, m)
			}
		}
		if err := release(); err != nil {
			return err
		}
	}
	return nil
}

// encodeGroup flattens a group reply into a float64 payload:
// [skip, opID, iter, initWeight, P, members..., weights...].
func encodeGroup(g controller.Group, opID uint32, skip bool) []float64 {
	p := len(g.Members)
	out := make([]float64, 0, 5+2*p)
	s := 0.0
	if skip {
		s = 1
	}
	out = append(out, s, float64(opID), float64(g.Iter), g.InitWeight, float64(p))
	for _, m := range g.Members {
		out = append(out, float64(m))
	}
	out = append(out, g.Weights...)
	return out
}

func decodeGroup(payload []float64) (g controller.Group, opID uint32, skip bool, err error) {
	if len(payload) < 5 {
		return g, 0, false, fmt.Errorf("live: short group reply")
	}
	skip = payload[0] == 1
	opID = uint32(payload[1])
	g.Iter = int(payload[2])
	g.InitWeight = payload[3]
	p := int(payload[4])
	if len(payload) != 5+2*p {
		return g, 0, false, fmt.Errorf("live: group reply length %d for P=%d", len(payload), p)
	}
	g.Members = make([]int, p)
	for i := 0; i < p; i++ {
		v := payload[5+i]
		if v != math.Trunc(v) || v < 0 {
			return g, 0, false, fmt.Errorf("live: bad member id %v", v)
		}
		g.Members[i] = int(v)
	}
	g.Weights = append([]float64{}, payload[5+p:]...)
	return g, opID, skip, nil
}

// runWorkerLoop is the per-process worker: compute, signal rank ctrlRank,
// aggregate with the replied group, repeat; then a final full-world gather
// lets the host evaluate the averaged model.
func runWorkerLoop(cfg Config, tr transport.Transport, ctrlRank int, host bool) (*Report, error) {
	id := tr.Rank()
	base := cfg.Spec.Build(cfg.Seed)
	init := base.Params().Clone()
	shards := cfg.Train.Shard(cfg.N)

	m := base.Clone()
	opt := optim.NewSGD(cfg.Optimizer, m.NumParams())
	sampler := data.NewSampler(shards[id], cfg.Seed*31+int64(id))
	grad := tensor.NewVector(m.NumParams())
	var batch *data.Batch

	start := time.Now()
	groups := 0
	// iter is the paper's loop counter k: it fast-forwards to the group max
	// after every partial reduce (§3.3.3), so stragglers skip caught-up work.
	iter := 0
	seq := 0
	for iter < cfg.Iters {
		if cfg.ComputeDelay != nil {
			if d := cfg.ComputeDelay(id, iter); d > 0 {
				time.Sleep(d)
			}
		}
		batch = sampler.Sample(batch, cfg.BatchSize)
		m.Gradient(grad, batch)
		opt.Update(m.Params(), grad, 1)
		iter++

		if err := tr.Send(ctrlRank, readyTag(seq), []float64{float64(iter)}); err != nil {
			return nil, err
		}
		reply, err := tr.Recv(ctrlRank, replyTag(seq))
		if err != nil {
			return nil, err
		}
		seq++
		g, opID, skip, err := decodeGroup(reply)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		var weight float64
		for i, member := range g.Members {
			if member == id {
				weight = g.Weights[i]
				break
			}
		}
		if err := collective.WeightedAverage(tr, g.Members, opID, m.Params(), weight); err != nil {
			return nil, err
		}
		if g.InitWeight > 0 {
			m.Params().Axpy(g.InitWeight, init)
		}
		if g.Iter > iter {
			iter = g.Iter
		}
		groups++
	}
	if err := tr.Send(ctrlRank, readyTag(seq), []float64{-1}); err != nil {
		return nil, err
	}

	// Final gather at the host: average every replica for inference.
	world := make([]int, cfg.N)
	for i := range world {
		world[i] = i
	}
	all, err := collective.Gather(tr, world, gatherOpID, ctrlRank, m.Params())
	if err != nil {
		return nil, err
	}
	// Hold every process until the whole world is done: a rank that exits
	// early (iteration fast-forward can finish it first) would tear down its
	// transport under peers still training.
	if err := collective.Barrier(tr, world, barrierOpID); err != nil {
		return nil, err
	}
	rep := &Report{Groups: groups, WallTime: time.Since(start), WorkerIters: []int{iter}}
	if host {
		avg := tensor.NewVector(len(init))
		for _, p := range all {
			avg.Add(p)
		}
		avg.Scale(1 / float64(cfg.N))
		base.SetParams(avg)
		rep.FinalAccuracy = model.Accuracy(base, cfg.Test)
	}
	return rep, nil
}
