// Package netmodel provides the communication cost models the simulator
// charges for collective and parameter-server traffic. Costs follow the
// standard latency–bandwidth (α–β) model that governs ring-based collectives
// in Gloo/NCCL: a transfer of b bytes over one hop costs α + b/B, and a ring
// all-reduce among P members moving d bytes costs 2(P−1)·α + 2·(P−1)/P·d/B
// (reduce-scatter plus all-gather, Patarasuk & Yuan 2009 — the paper's
// reference [34]).
package netmodel

import "fmt"

// Params describes the cluster fabric.
type Params struct {
	// Latency is the per-hop message latency α in seconds.
	Latency float64
	// Bandwidth is the per-link bandwidth B in bytes/second.
	Bandwidth float64
	// PSBandwidth is the effective per-round bandwidth of the sharded
	// parameter server in bytes/second. PS rounds move the full model twice
	// (push gradients, pull weights); the default makes a PS round slightly
	// slower than ring all-reduce, matching Table 1 (BSP ≈ 1.1× AR) and the
	// CPU-side aggregation overhead §1 describes.
	PSBandwidth float64
	// CtrlRTT is the round-trip time of a controller message. Controller
	// traffic is a few bytes ("it will not involve any communication
	// overheads", §4), so only latency matters.
	CtrlRTT float64
}

// Default returns parameters calibrated to the paper's testbed: 8 V100s per
// node with PCIe/NVLink-class intra-node links, 10 GbE between nodes, and a
// sub-millisecond controller round trip.
func Default() Params {
	return Params{
		Latency:     50e-6,
		Bandwidth:   8e9,
		PSBandwidth: 5.6e9,
		CtrlRTT:     300e-6,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Latency < 0 || p.CtrlRTT < 0 {
		return fmt.Errorf("netmodel: negative latency")
	}
	if p.Bandwidth <= 0 || p.PSBandwidth <= 0 {
		return fmt.Errorf("netmodel: bandwidth must be positive")
	}
	return nil
}

// RingAllReduce returns the seconds a ring all-reduce among group members
// needs to combine bytes of data. A group of one is free.
func (p Params) RingAllReduce(group int, bytes int64) float64 {
	if group <= 1 {
		return 0
	}
	g := float64(group)
	steps := 2 * (g - 1)
	return steps*p.Latency + (steps/g)*float64(bytes)/p.Bandwidth
}

// PointToPoint returns the seconds one direct transfer of bytes takes.
func (p Params) PointToPoint(bytes int64) float64 {
	return p.Latency + float64(bytes)/p.Bandwidth
}

// Broadcast returns the seconds a binomial-tree broadcast of bytes to group
// members takes.
func (p Params) Broadcast(group int, bytes int64) float64 {
	if group <= 1 {
		return 0
	}
	// ceil(log2(group)) rounds, each a point-to-point transfer.
	rounds := 0
	for n := 1; n < group; n <<= 1 {
		rounds++
	}
	return float64(rounds) * p.PointToPoint(bytes)
}

// PSExchange returns the seconds one worker needs for a push-gradient /
// pull-model round trip against the sharded parameter server.
func (p Params) PSExchange(bytes int64) float64 {
	return 2*p.Latency + 2*float64(bytes)/p.PSBandwidth
}

// PairAverage returns the seconds an atomic pairwise model average takes
// (AD-PSGD's primitive): ship the model one way, averaged result back.
func (p Params) PairAverage(bytes int64) float64 {
	return 2 * p.PointToPoint(bytes)
}
