package netmodel

import (
	"math"
	"testing"
)

func TestTopologyValidate(t *testing.T) {
	var nilTopo *Topology
	if err := nilTopo.Validate(4); err != nil {
		t.Fatalf("nil topology should validate: %v", err)
	}
	bad := []*Topology{
		{LinkSpeed: []float64{1, 1}},       // wrong length for n=4
		{LinkSpeed: []float64{1, 0, 1, 1}}, // non-positive speed
		{Zone: []int{0, 1}},                // wrong length
		{CrossLatency: -1},                 // negative
		{CrossBandwidth: -1},               // negative
	}
	for i, topo := range bad {
		if topo.Validate(4) == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	good := &Topology{
		LinkSpeed:    []float64{1, 0.5, 1, 1},
		Zone:         []int{0, 0, 1, 1},
		CrossLatency: 20e-3, CrossBandwidth: 1e9,
	}
	if err := good.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestNilTopologyMatchesFlatParams(t *testing.T) {
	p := Default()
	var topo *Topology
	members := []int{0, 1, 2, 3}
	if got, want := topo.RingAllReduce(p, members, 1<<26), p.RingAllReduce(4, 1<<26); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ring: %v vs %v", got, want)
	}
	if got, want := topo.PSExchange(p, 2, 1<<26), p.PSExchange(1<<26); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ps: %v vs %v", got, want)
	}
	if got, want := topo.PairAverage(p, 0, 1, 1<<26), p.PairAverage(1<<26); math.Abs(got-want) > 1e-12 {
		t.Fatalf("pair: %v vs %v", got, want)
	}
}

func TestSlowLinkBoundsRing(t *testing.T) {
	p := Default()
	topo := &Topology{LinkSpeed: []float64{1, 1, 0.25, 1}}
	fast := topo.RingAllReduce(p, []int{0, 1, 3}, 1<<28)
	slow := topo.RingAllReduce(p, []int{0, 1, 2}, 1<<28)
	if slow <= fast {
		t.Fatalf("slow link did not bound the ring: %v vs %v", slow, fast)
	}
	// Bandwidth term scales by 1/0.25 = 4x.
	flat := p.RingAllReduce(3, 1<<28)
	wantBW := (flat - 4*p.Latency) * 4
	gotBW := slow - 4*p.Latency
	if math.Abs(gotBW-wantBW) > 1e-9*wantBW {
		t.Fatalf("bandwidth term %v, want %v", gotBW, wantBW)
	}
}

func TestCrossZoneCosts(t *testing.T) {
	p := Default()
	topo := GeoDistributed(4, 20e-3, 1e9) // zones {0,0,1,1}
	intra := topo.RingAllReduce(p, []int{0, 1}, 1<<28)
	cross := topo.RingAllReduce(p, []int{1, 2}, 1<<28)
	if cross <= intra {
		t.Fatalf("cross-zone ring not slower: %v vs %v", cross, intra)
	}
	// Cross pair pays cross latency and capped bandwidth.
	pairIntra := topo.PairAverage(p, 0, 1, 1<<28)
	pairCross := topo.PairAverage(p, 0, 3, 1<<28)
	if pairCross <= pairIntra {
		t.Fatalf("cross-zone pair not slower: %v vs %v", pairCross, pairIntra)
	}
	// PS (zone 0 by convention): zone-1 workers pay more.
	psLocal := topo.PSExchange(p, 0, 1<<28)
	psRemote := topo.PSExchange(p, 3, 1<<28)
	if psRemote <= psLocal {
		t.Fatalf("remote-zone PS not slower: %v vs %v", psRemote, psLocal)
	}
}

func TestGeoDistributedSplit(t *testing.T) {
	topo := GeoDistributed(5, 1e-3, 1e9)
	zones := map[int]int{}
	for w := 0; w < 5; w++ {
		zones[topo.ZoneOf(w)]++
	}
	if zones[0] != 2 || zones[1] != 3 {
		t.Fatalf("zone split: %v", zones)
	}
	if !topo.spansZones([]int{1, 3}) || topo.spansZones([]int{0, 1}) {
		t.Fatal("spansZones wrong")
	}
	if topo.spansZones([]int{2}) {
		t.Fatal("singleton cannot span zones")
	}
}

func TestZoneOfNil(t *testing.T) {
	var topo *Topology
	if topo.ZoneOf(3) != 0 {
		t.Fatal("nil topology should put everyone in zone 0")
	}
}
