package netmodel

import "fmt"

// Topology models the paper's communication heterogeneity (Case 1, §1):
// workers have different link speeds (NICs, PCIe switches, hierarchy) and
// may sit in different zones (geo-distributed data centers), where
// intra-zone communication can be an order of magnitude faster than
// inter-zone. A nil *Topology means the flat, homogeneous fabric of Params.
type Topology struct {
	// LinkSpeed multiplies Params.Bandwidth per worker (1 = full speed).
	// Empty means every worker runs at full speed.
	LinkSpeed []float64
	// Zone assigns each worker to a zone (data center). Empty means one
	// zone.
	Zone []int
	// CrossLatency is the per-hop latency between zones; zero keeps
	// Params.Latency.
	CrossLatency float64
	// CrossBandwidth caps the bandwidth of any transfer that crosses zones;
	// zero keeps Params.Bandwidth.
	CrossBandwidth float64
}

// Validate reports whether the topology is consistent for n workers.
func (t *Topology) Validate(n int) error {
	if t == nil {
		return nil
	}
	if len(t.LinkSpeed) != 0 && len(t.LinkSpeed) != n {
		return fmt.Errorf("netmodel: %d link speeds for %d workers", len(t.LinkSpeed), n)
	}
	for i, s := range t.LinkSpeed {
		if s <= 0 {
			return fmt.Errorf("netmodel: worker %d link speed %v must be positive", i, s)
		}
	}
	if len(t.Zone) != 0 && len(t.Zone) != n {
		return fmt.Errorf("netmodel: %d zones for %d workers", len(t.Zone), n)
	}
	if t.CrossLatency < 0 || t.CrossBandwidth < 0 {
		return fmt.Errorf("netmodel: negative cross-zone parameters")
	}
	return nil
}

// speed returns worker w's link-speed multiplier.
func (t *Topology) speed(w int) float64 {
	if t == nil || len(t.LinkSpeed) == 0 {
		return 1
	}
	return t.LinkSpeed[w]
}

// ZoneOf returns worker w's zone (0 when unzoned).
func (t *Topology) ZoneOf(w int) int {
	if t == nil || len(t.Zone) == 0 {
		return 0
	}
	return t.Zone[w]
}

// spansZones reports whether members sit in more than one zone.
func (t *Topology) spansZones(members []int) bool {
	if t == nil || len(t.Zone) == 0 || len(members) < 2 {
		return false
	}
	z := t.ZoneOf(members[0])
	for _, m := range members[1:] {
		if t.ZoneOf(m) != z {
			return true
		}
	}
	return false
}

// RingAllReduce returns the seconds a ring all-reduce among members takes:
// the bandwidth term is bounded by the group's slowest link (and by the
// cross-zone cap when the ring spans zones), the latency term by the
// cross-zone latency.
func (t *Topology) RingAllReduce(p Params, members []int, bytes int64) float64 {
	g := len(members)
	if g <= 1 {
		return 0
	}
	bw := p.Bandwidth
	if t != nil {
		minSpeed := 1.0
		for _, m := range members {
			if s := t.speed(m); s < minSpeed {
				minSpeed = s
			}
		}
		bw *= minSpeed
	}
	lat := p.Latency
	if t.spansZones(members) {
		if t.CrossLatency > 0 {
			lat = t.CrossLatency
		}
		if t.CrossBandwidth > 0 && t.CrossBandwidth < bw {
			bw = t.CrossBandwidth
		}
	}
	gf := float64(g)
	steps := 2 * (gf - 1)
	return steps*lat + (steps/gf)*float64(bytes)/bw
}

// PSExchange returns worker w's push/pull round trip against the sharded
// parameter server through its own link (crossing zones if the server
// placement — zone 0 by convention — differs from w's zone).
func (t *Topology) PSExchange(p Params, w int, bytes int64) float64 {
	bw := p.PSBandwidth
	lat := p.Latency
	if t != nil {
		bw *= t.speed(w)
		if t.ZoneOf(w) != 0 {
			if t.CrossLatency > 0 {
				lat = t.CrossLatency
			}
			if t.CrossBandwidth > 0 && t.CrossBandwidth < bw {
				bw = t.CrossBandwidth
			}
		}
	}
	return 2*lat + 2*float64(bytes)/bw
}

// PairAverage returns the seconds an atomic pairwise model average between
// workers a and b takes.
func (t *Topology) PairAverage(p Params, a, b int, bytes int64) float64 {
	bw := p.Bandwidth
	lat := p.Latency
	if t != nil {
		s := t.speed(a)
		if sb := t.speed(b); sb < s {
			s = sb
		}
		bw *= s
		if t.ZoneOf(a) != t.ZoneOf(b) {
			if t.CrossLatency > 0 {
				lat = t.CrossLatency
			}
			if t.CrossBandwidth > 0 && t.CrossBandwidth < bw {
				bw = t.CrossBandwidth
			}
		}
	}
	return 2 * (lat + float64(bytes)/bw)
}

// GeoDistributed returns a two-zone topology splitting n workers evenly,
// with inter-zone transfers paying crossLat seconds per hop and capped at
// crossBW bytes/second — the paper's geo-distributed data-center case.
func GeoDistributed(n int, crossLat, crossBW float64) *Topology {
	zone := make([]int, n)
	for i := n / 2; i < n; i++ {
		zone[i] = 1
	}
	return &Topology{Zone: zone, CrossLatency: crossLat, CrossBandwidth: crossBW}
}
