package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Latency: -1, Bandwidth: 1, PSBandwidth: 1},
		{Latency: 0, Bandwidth: 0, PSBandwidth: 1},
		{Latency: 0, Bandwidth: 1, PSBandwidth: 0},
		{Latency: 0, Bandwidth: 1, PSBandwidth: 1, CtrlRTT: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRingAllReduceFormula(t *testing.T) {
	p := Params{Latency: 1e-3, Bandwidth: 1e9, PSBandwidth: 1e9}
	// P=4, 1 GB: 2*3*1ms + (6/4)*1s = 6ms + 1.5s
	got := p.RingAllReduce(4, 1e9)
	want := 6e-3 + 1.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestRingAllReduceDegenerateGroups(t *testing.T) {
	p := Default()
	if p.RingAllReduce(1, 1<<30) != 0 {
		t.Fatal("group of 1 should be free")
	}
	if p.RingAllReduce(0, 1<<30) != 0 {
		t.Fatal("group of 0 should be free")
	}
}

func TestRingBandwidthTermApproaches2x(t *testing.T) {
	// As the group grows, the bandwidth term approaches 2·d/B — the classic
	// bandwidth-optimality property of ring all-reduce.
	p := Params{Latency: 0, Bandwidth: 1e9, PSBandwidth: 1e9}
	d := int64(1e9)
	small := p.RingAllReduce(2, d)  // 2*(1/2) = 1.0s
	large := p.RingAllReduce(64, d) // 2*(63/64) ≈ 1.969s
	if math.Abs(small-1.0) > 1e-9 {
		t.Fatalf("P=2: %v", small)
	}
	if large <= small || large >= 2.0 {
		t.Fatalf("P=64: %v, want in (1, 2)", large)
	}
}

func TestBroadcastRounds(t *testing.T) {
	p := Params{Latency: 1, Bandwidth: 1, PSBandwidth: 1} // 1 byte/s: PointToPoint(0)=1s
	if got := p.Broadcast(1, 0); got != 0 {
		t.Fatalf("self broadcast: %v", got)
	}
	// group=2 -> 1 round; 3..4 -> 2; 5..8 -> 3
	cases := map[int]float64{2: 1, 3: 2, 4: 2, 5: 3, 8: 3}
	for g, rounds := range cases {
		if got := p.Broadcast(g, 0); got != rounds {
			t.Errorf("Broadcast(%d): %v rounds, want %v", g, got, rounds)
		}
	}
}

func TestPSExchangeVsRing(t *testing.T) {
	p := Default()
	d := int64(87_200_000) // ResNet-34 float32 bytes
	ring := p.RingAllReduce(8, d)
	ps := p.PSExchange(d)
	if ps <= ring {
		t.Fatalf("PS round (%v) should be slower than ring all-reduce (%v)", ps, ring)
	}
	if ps > 2*ring {
		t.Fatalf("PS round (%v) should stay within ~2x of ring (%v)", ps, ring)
	}
}

func TestPairAverage(t *testing.T) {
	p := Params{Latency: 1e-3, Bandwidth: 1e6, PSBandwidth: 1e6}
	got := p.PairAverage(1e6)
	want := 2 * (1e-3 + 1.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

// Property: all costs are non-negative and monotone in bytes.
func TestQuickCostMonotonicity(t *testing.T) {
	p := Default()
	f := func(bytesA, bytesB uint32, group uint8) bool {
		a, b := int64(bytesA), int64(bytesB)
		if a > b {
			a, b = b, a
		}
		g := int(group%16) + 2
		return p.RingAllReduce(g, a) <= p.RingAllReduce(g, b) &&
			p.PointToPoint(a) <= p.PointToPoint(b) &&
			p.PSExchange(a) <= p.PSExchange(b) &&
			p.Broadcast(g, a) <= p.Broadcast(g, b) &&
			p.RingAllReduce(g, a) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ring cost is monotone in group size for fixed bytes (more hops,
// more latency; bandwidth term also grows with (P-1)/P).
func TestQuickRingMonotoneInGroup(t *testing.T) {
	p := Default()
	for g := 2; g < 64; g++ {
		if p.RingAllReduce(g+1, 1<<26) < p.RingAllReduce(g, 1<<26) {
			t.Fatalf("ring cost decreased from P=%d to P=%d", g, g+1)
		}
	}
}

// Calibration guard: with default parameters and paper model sizes, the
// simulated AR per-update times must land in the regime Table 1 reports
// (compute+ring ≈ 0.43 / 0.29 / 0.81 seconds for ResNet-34 / VGG-19 /
// DenseNet-121 at HL=1). This pins the calibration DESIGN.md documents.
func TestCalibrationAgainstTable1(t *testing.T) {
	p := Default()
	cases := []struct {
		name        string
		bytes       int64
		compute     float64
		paperUpdate float64
	}{
		{"resnet34", 21_800_000 * 4, 0.410, 0.432},
		{"vgg19", 143_700_000 * 4, 0.160, 0.286},
		{"densenet121", 8_000_000 * 4, 0.800, 0.820},
	}
	for _, c := range cases {
		got := c.compute + p.RingAllReduce(8, c.bytes)
		if math.Abs(got-c.paperUpdate)/c.paperUpdate > 0.10 {
			t.Errorf("%s: simulated AR update %.3fs vs paper %.3fs (>10%% off)", c.name, got, c.paperUpdate)
		}
	}
}
