// Package tensor provides the dense float64 linear algebra used by the
// training stack: vectors, row-major matrices, and the handful of BLAS-like
// kernels (axpy, gemv, gemm, softmax, norms) that model forward/backward
// passes need. Everything is allocation-conscious: operations write into
// caller-provided destinations so hot training loops can reuse buffers.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector. The zero value is an empty vector.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// CopyFrom copies src into v. It panics if lengths differ.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Add adds w to v element-wise, in place. It panics if lengths differ.
// Large vectors run on the AddScaled kernel's worker pool.
func (v Vector) Add(w Vector) { AddScaled(v, w, 1) }

// Sub subtracts w from v element-wise, in place.
func (v Vector) Sub(w Vector) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale multiplies v by c in place.
func (v Vector) Scale(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Axpy computes v += a*w in place. It panics if lengths differ.
// Large vectors run on the AddScaled kernel's worker pool.
func (v Vector) Axpy(a float64, w Vector) { AddScaled(v, w, a) }

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute element of v, or 0 for an empty vector.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// ArgMax returns the index of the largest element of v, or -1 if v is empty.
// Ties resolve to the lowest index.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// Softmax writes softmax(v) into dst using the max-shift trick for numerical
// stability. dst may alias v. It panics if lengths differ.
func Softmax(dst, v Vector) {
	checkLen(len(dst), len(v))
	if len(v) == 0 {
		return
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	var z float64
	for i, x := range v {
		e := math.Exp(x - m)
		dst[i] = e
		z += e
	}
	inv := 1 / z
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(sum_i exp(v_i)) computed stably.
func LogSumExp(v Vector) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	var z float64
	for _, x := range v {
		z += math.Exp(x - m)
	}
	return m + math.Log(z)
}

// WeightedAverage writes the combination sum_i weights[i]*vs[i] into dst.
// All vectors must share dst's length and len(weights) must equal len(vs).
// Every aggregation rule in the codebase — group model averages, barrier
// gradient means, gossip mixing — is a convex instance of this (weights
// summing to 1), and they all share this exact accumulation order (zero,
// then one Axpy per input, in input order): same-seed replays are
// byte-identical only because the float rounding sequence never varies.
func WeightedAverage(dst Vector, weights []float64, vs []Vector) {
	if len(weights) != len(vs) {
		panic(fmt.Sprintf("tensor: WeightedAverage %d weights for %d vectors", len(weights), len(vs)))
	}
	dst.Zero()
	for i, v := range vs {
		dst.Axpy(weights[i], v)
	}
}

// Mean writes the element-wise mean of vs into dst. It panics if vs is empty
// or lengths differ.
func Mean(dst Vector, vs []Vector) {
	if len(vs) == 0 {
		panic("tensor: Mean of no vectors")
	}
	dst.Zero()
	for _, v := range vs {
		dst.Add(v)
	}
	dst.Scale(1 / float64(len(vs)))
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", a, b))
	}
}
