package tensor

import (
	"runtime"
	"sync"
)

// ParallelThreshold is the element count above which the AddScaled-family
// kernels split their work across the package worker pool. Below it the
// fixed cost of waking workers exceeds the arithmetic; the collectives'
// default segment size sits below this on purpose, so the ring inner loop
// stays on the calling goroutine while the live runtime's full-model
// averages (hundreds of thousands of parameters) parallelize.
const ParallelThreshold = 1 << 16

// maxKernelWorkers caps the pool: element-wise kernels are memory-bound, and
// beyond a few cores extra workers only fight over bandwidth.
const maxKernelWorkers = 8

// span is one worker's half-open index range.
type span struct{ lo, hi int }

// kernelPool is a persistent worker pool for element-wise kernels. One
// kernel call runs at a time (mu); the shared operand fields plus per-worker
// span channels keep the dispatch allocation-free — nothing escapes, no
// closures, no per-call WaitGroup.
type kernelPool struct {
	mu   sync.Mutex
	wg   sync.WaitGroup
	dst  []float64
	src  []float64
	a    float64
	reqs []chan span
}

var (
	pool     kernelPool
	poolOnce sync.Once
)

func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n > maxKernelWorkers {
		n = maxKernelWorkers
	}
	if n < 1 {
		n = 1
	}
	pool.reqs = make([]chan span, n)
	for i := range pool.reqs {
		ch := make(chan span, 1)
		pool.reqs[i] = ch
		go func() {
			for s := range ch {
				addScaledSerial(pool.dst[s.lo:s.hi], pool.src[s.lo:s.hi], pool.a)
				pool.wg.Done()
			}
		}()
	}
}

// addScaledSerial is the scalar inner loop: dst += a*src (dst = dst + src
// when a == 1, the reduce-scatter case, taking the multiply off the path).
func addScaledSerial(dst, src []float64, a float64) {
	if a == 1 {
		for i, v := range src {
			dst[i] += v
		}
		return
	}
	for i, v := range src {
		dst[i] += a * v
	}
}

// AddScaled computes dst += a*src element-wise. It panics if lengths differ.
// Above ParallelThreshold the work is split across the package worker pool;
// because every element is computed independently, the parallel result is
// bit-identical to the serial one — the property the collectives' determinism
// tests rely on. The steady-state dispatch performs no heap allocation.
func AddScaled(dst, src []float64, a float64) {
	checkLen(len(dst), len(src))
	n := len(dst)
	if n < ParallelThreshold {
		addScaledSerial(dst, src, a)
		return
	}
	poolOnce.Do(startPool)
	w := len(pool.reqs)
	if w <= 1 {
		addScaledSerial(dst, src, a)
		return
	}

	pool.mu.Lock()
	pool.dst, pool.src, pool.a = dst, src, a
	// Dispatch: worker i takes [i*per, min((i+1)*per, n)).
	per := (n + w - 1) / w
	pool.wg.Add(w)
	for i := 0; i < w; i++ {
		lo := i * per
		hi := min(lo+per, n)
		if lo >= n {
			pool.wg.Done() // nothing left for this worker
			continue
		}
		pool.reqs[i] <- span{lo: lo, hi: hi}
	}
	pool.wg.Wait()
	pool.dst, pool.src = nil, nil
	pool.mu.Unlock()
}
