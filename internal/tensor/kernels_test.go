package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestAddScaledSmall(t *testing.T) {
	dst := []float64{1, 2, 3}
	src := []float64{10, 20, 30}
	AddScaled(dst, src, 0.5)
	want := []float64{6, 12, 18}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAddScaledUnitFastPath(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, []float64{3, 4}, 1)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestAddScaledLenMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	AddScaled(make([]float64, 3), make([]float64, 4), 1)
}

// TestAddScaledParallelBitIdentical pins the property the segmented
// collectives rely on: the parallel path produces bit-identical results to
// the serial inner loop, because every element is computed independently.
func TestAddScaledParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{ParallelThreshold, ParallelThreshold + 1, 4*ParallelThreshold + 13} {
		dst := make([]float64, n)
		src := make([]float64, n)
		for i := range dst {
			dst[i] = rng.NormFloat64()
			src[i] = rng.NormFloat64()
		}
		ref := make([]float64, n)
		copy(ref, dst)
		a := rng.NormFloat64()

		addScaledSerial(ref, src, a) // ground truth, never parallel
		AddScaled(dst, src, a)       // over threshold: pool path
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("n=%d: dst[%d] = %x, want %x (not bit-identical)", n, i, dst[i], ref[i])
			}
		}
	}
}

// TestAddScaledConcurrentCallers exercises the kernel pool from many
// goroutines at once (run under -race in make ci): the pool serializes
// kernel dispatches, so concurrent callers must neither race nor mix
// operands.
func TestAddScaledConcurrentCallers(t *testing.T) {
	const callers = 8
	n := ParallelThreshold + 257
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, n)
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(c + 1)
			}
			for rep := 0; rep < 10; rep++ {
				AddScaled(dst, src, 1)
			}
			for i := range dst {
				if dst[i] != 10*float64(c+1) {
					t.Errorf("caller %d: dst[%d] = %v, want %v", c, i, dst[i], 10*float64(c+1))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestAddScaledDispatchAllocFree(t *testing.T) {
	n := 4 * ParallelThreshold
	dst := make([]float64, n)
	src := make([]float64, n)
	AddScaled(dst, src, 2) // warm the pool
	avg := testing.AllocsPerRun(50, func() { AddScaled(dst, src, 2) })
	if avg > 0.5 {
		t.Errorf("parallel AddScaled allocates %.1f times per call, want 0", avg)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			dst := make([]float64, n)
			src := make([]float64, n)
			b.SetBytes(int64(16 * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AddScaled(dst, src, 0.5)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<16:
		return "64K"
	default:
		return "4K"
	}
}
