package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorBasics(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}

	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: v=%v", v)
	}

	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[2] != 3 {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(2)
	if v[1] != 4 {
		t.Fatalf("Scale: got %v", v)
	}
	v.Fill(7)
	if v.Sum() != 21 {
		t.Fatalf("Fill/Sum: got %v sum %v", v, v.Sum())
	}
	v.Zero()
	if v.Norm2() != 0 {
		t.Fatalf("Zero: got %v", v)
	}
}

func TestVectorAxpyDot(t *testing.T) {
	v := Vector{1, 1}
	w := Vector{2, 3}
	v.Axpy(2, w)
	if v[0] != 5 || v[1] != 7 {
		t.Fatalf("Axpy: got %v", v)
	}
	if got := w.Dot(Vector{1, -1}); got != -1 {
		t.Fatalf("Dot: got %v", got)
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if !almostEq(v.Norm2(), 5, 1e-12) {
		t.Fatalf("Norm2: got %v", v.Norm2())
	}
	if v.NormInf() != 4 {
		t.Fatalf("NormInf: got %v", v.NormInf())
	}
	var empty Vector
	if empty.NormInf() != 0 || empty.Norm2() != 0 {
		t.Fatal("empty vector norms should be 0")
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{Vector{}, -1},
		{Vector{1}, 0},
		{Vector{1, 3, 2}, 1},
		{Vector{5, 5, 5}, 0}, // ties -> lowest index
		{Vector{-2, -1, -3}, 1},
	}
	for _, c := range cases {
		if got := c.v.ArgMax(); got != c.want {
			t.Errorf("ArgMax(%v)=%d want %d", c.v, got, c.want)
		}
	}
}

func TestSoftmax(t *testing.T) {
	v := Vector{1, 2, 3}
	dst := NewVector(3)
	Softmax(dst, v)
	if !almostEq(dst.Sum(), 1, 1e-12) {
		t.Fatalf("softmax sums to %v", dst.Sum())
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax not monotone: %v", dst)
	}
	// Stability: huge logits must not overflow.
	big := Vector{1000, 1001, 1002}
	Softmax(dst, big)
	if math.IsNaN(dst.Sum()) || !almostEq(dst.Sum(), 1, 1e-9) {
		t.Fatalf("softmax unstable on large inputs: %v", dst)
	}
	// Aliasing: dst == v is allowed.
	Softmax(big, big)
	if !almostEq(big.Sum(), 1, 1e-9) {
		t.Fatalf("aliased softmax: %v", big)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(Vector{0, 0}); !almostEq(got, math.Log(2), 1e-12) {
		t.Fatalf("LogSumExp: got %v", got)
	}
	if got := LogSumExp(Vector{1000, 1000}); !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp overflow: got %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(empty): got %v", got)
	}
}

func TestWeightedAverageAndMean(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}, {5, 6}}
	dst := NewVector(2)
	WeightedAverage(dst, []float64{0.5, 0.25, 0.25}, vs)
	if !almostEq(dst[0], 2.5, 1e-12) || !almostEq(dst[1], 3.5, 1e-12) {
		t.Fatalf("WeightedAverage: got %v", dst)
	}
	Mean(dst, vs)
	if !almostEq(dst[0], 3, 1e-12) || !almostEq(dst[1], 4, 1e-12) {
		t.Fatalf("Mean: got %v", dst)
	}
}

// TestWeightedAverageConvexIdentity is the convex-combination property: for
// any weight vector summing to 1, the weighted average of copies of a
// constant vector is that vector, within 1e-12 per element.
func TestWeightedAverageConvexIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		c := rng.NormFloat64() * 10
		weights := make([]float64, n)
		sum := 0.0
		for i := range weights {
			weights[i] = rng.Float64()
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = Vector{c, c, c}
		}
		dst := NewVector(3)
		WeightedAverage(dst, weights, vs)
		for j, got := range dst {
			if !almostEq(got, c, 1e-12*math.Max(1, math.Abs(c))) {
				t.Fatalf("trial %d: weights %v over constant %v: dst[%d]=%v", trial, weights, c, j, got)
			}
		}
	}
}

func TestMismatchPanics(t *testing.T) {
	assertPanics(t, "Add", func() { Vector{1}.Add(Vector{1, 2}) })
	assertPanics(t, "CopyFrom", func() { Vector{1}.CopyFrom(Vector{1, 2}) })
	assertPanics(t, "Dot", func() { Vector{1}.Dot(Vector{1, 2}) })
	assertPanics(t, "WeightedAverage", func() { WeightedAverage(NewVector(1), []float64{1}, nil) })
	assertPanics(t, "Mean", func() { Mean(NewVector(1), nil) })
	assertPanics(t, "MatrixFrom", func() { MatrixFrom(2, 2, Vector{1}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestMatrixMulVec(t *testing.T) {
	m := MatrixFrom(2, 3, Vector{1, 2, 3, 4, 5, 6})
	x := Vector{1, 0, -1}
	dst := NewVector(2)
	m.MulVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec: got %v", dst)
	}
	y := Vector{1, 1}
	dt := NewVector(3)
	m.MulVecT(dt, y)
	if dt[0] != 5 || dt[1] != 7 || dt[2] != 9 {
		t.Fatalf("MulVecT: got %v", dt)
	}
}

func TestMatrixAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter: got %v want %v", m.Data, want)
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFrom(2, 3, Vector{1, 2, 3, 4, 5, 6})
	b := MatrixFrom(3, 2, Vector{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	Mul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("Mul: got %v want %v", dst.Data, want)
		}
	}
}

func TestTransposeSymmetric(t *testing.T) {
	m := MatrixFrom(2, 3, Vector{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose: got %v", tr)
	}
	s := MatrixFrom(2, 2, Vector{1, 2, 2, 1})
	if !s.IsSymmetric(0) {
		t.Fatal("IsSymmetric false negative")
	}
	ns := MatrixFrom(2, 2, Vector{1, 2, 3, 1})
	if ns.IsSymmetric(0.5) {
		t.Fatal("IsSymmetric false positive")
	}
	if m.IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestGlorotInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(50, 40)
	m.FillGlorot(rng, 40, 50)
	limit := math.Sqrt(6.0 / 90.0)
	for _, x := range m.Data {
		if math.Abs(x) > limit {
			t.Fatalf("Glorot out of range: %v > %v", x, limit)
		}
	}
	if m.Data.NormInf() == 0 {
		t.Fatal("Glorot produced all zeros")
	}
}

// Property: axpy then inverse axpy is identity (within float tolerance).
func TestQuickAxpyInverse(t *testing.T) {
	f := func(xs []float64, a float64) bool {
		if len(xs) == 0 || math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		v := Vector(xs).Clone()
		w := v.Clone()
		v.Axpy(a, w)
		v.Axpy(-a, w)
		for i := range v {
			if !almostEq(v[i], w[i], 1e-6*(1+math.Abs(w[i]))*(1+math.Abs(a))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any finite input.
func TestQuickSoftmaxDistribution(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		dst := NewVector(len(xs))
		Softmax(dst, xs)
		var sum float64
		for _, p := range dst {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestQuickDotSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		v, w := NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			v[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		if !almostEq(v.Dot(w), w.Dot(v), 1e-9) {
			t.Fatalf("Dot not symmetric")
		}
		v2 := v.Clone()
		v2.Scale(2)
		if !almostEq(v2.Dot(w), 2*v.Dot(w), 1e-8*(1+math.Abs(v.Dot(w)))) {
			t.Fatalf("Dot not linear")
		}
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ on random shapes.
func TestQuickMulTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		ab := NewMatrix(m, n)
		Mul(ab, a, b)
		btat := NewMatrix(n, m)
		Mul(btat, b.Transpose(), a.Transpose())
		abt := ab.Transpose()
		for i := range abt.Data {
			if !almostEq(abt.Data[i], btat.Data[i], 1e-9) {
				t.Fatalf("(AB)^T != B^T A^T")
			}
		}
	}
}

// Property: MulVec agrees with Mul against a 1-column matrix.
func TestQuickMulVecConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		m, k := 1+rng.Intn(8), 1+rng.Intn(8)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		x := NewVector(k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dst := NewVector(m)
		a.MulVec(dst, x)
		xm := MatrixFrom(k, 1, x.Clone())
		prod := NewMatrix(m, 1)
		Mul(prod, a, xm)
		for i := 0; i < m; i++ {
			if !almostEq(dst[i], prod.At(i, 0), 1e-9) {
				t.Fatalf("MulVec disagrees with Mul")
			}
		}
	}
}
