package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix backed by a single contiguous slice.
type Matrix struct {
	Rows, Cols int
	Data       Vector // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix negative dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// MatrixFrom wraps data as a rows×cols matrix without copying. It panics if
// len(data) != rows*cols.
func MatrixFrom(rows, cols int, data Vector) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatrixFrom %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a vector sharing m's backing storage.
func (m *Matrix) Row(i int) Vector { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// Zero sets every element to 0.
func (m *Matrix) Zero() { m.Data.Zero() }

// MulVec writes m·x into dst. dst must have length m.Rows and x length
// m.Cols; dst must not alias x.
func (m *Matrix) MulVec(dst, x Vector) {
	checkLen(len(dst), m.Rows)
	checkLen(len(x), m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MulVecT writes mᵀ·x into dst. dst must have length m.Cols and x length
// m.Rows; dst must not alias x.
func (m *Matrix) MulVecT(dst, x Vector) {
	checkLen(len(dst), m.Cols)
	checkLen(len(x), m.Rows)
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		dst.Axpy(x[i], m.Row(i))
	}
}

// AddOuter accumulates the rank-1 update m += a · x·yᵀ where x has length
// m.Rows and y length m.Cols.
func (m *Matrix) AddOuter(a float64, x, y Vector) {
	checkLen(len(x), m.Rows)
	checkLen(len(y), m.Cols)
	for i := 0; i < m.Rows; i++ {
		m.Row(i).Axpy(a*x[i], y)
	}
}

// Mul writes a·b into dst (dst = a×b). Shapes must agree and dst must not
// alias a or b.
func Mul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Mul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			dr.Axpy(av, b.Row(k))
		}
	}
}

// Transpose returns a new matrix holding mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// FillGlorot initializes m with Glorot/Xavier-uniform entries drawn from rng:
// U(-l, l) with l = sqrt(6/(fanIn+fanOut)).
func (m *Matrix) FillGlorot(rng *rand.Rand, fanIn, fanOut int) {
	l := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * l
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += "\n "
			for j := 0; j < m.Cols; j++ {
				s += fmt.Sprintf("%8.4f", m.At(i, j))
			}
		}
	}
	return s
}
