package engine

import (
	"partialreduce/internal/cluster"
)

// SimEnv is the simulated Environment: virtual clock, analytic α–β
// communication costs, and — crucially — the modeled traffic accounting
// folded inside. Strategies used to mirror every cost query with a matching
// ChargeRing/ChargeExchange call, a drift hazard (forget one and the comm
// columns silently diverge from the event timeline); here the query and the
// charge are one method, so a collective the engine prices is a collective
// the summary counts, by construction. A `make ci` guard keeps direct
// charging calls from reappearing outside this package.
type SimEnv struct {
	// C is the underlying cluster substrate. Drivers reach through it for
	// workers, the event engine, and the tracer; all traffic charging goes
	// through the methods below.
	C *cluster.Cluster
}

// NewSimEnv wraps a cluster as an engine Environment.
func NewSimEnv(c *cluster.Cluster) *SimEnv { return &SimEnv{C: c} }

// Now implements Environment with the event engine's virtual clock.
func (e *SimEnv) Now() float64 { return e.C.Eng.Now() }

// World implements Environment.
func (e *SimEnv) World() int { return e.C.Cfg.N }

// GroupRing prices one executed ring all-reduce among members and charges
// its traffic (2(g−1)·WireBytes each way plus g·ring/2 modeled seconds per
// ring phase). It returns the modeled duration for the caller to charge the
// event engine. Call it once per attempt: an attempt that later times out
// still moved (some of) its bytes, exactly as the live runtime counts
// aborted attempts' partial traffic.
func (e *SimEnv) GroupRing(members []int) float64 {
	ring := e.C.RingTime(members)
	e.C.ChargeRing(len(members), ring)
	return ring
}

// WorldRing prices and charges one executed full-cluster ring all-reduce.
func (e *SimEnv) WorldRing() float64 {
	ring := e.C.RingTimeAll()
	e.C.ChargeRing(e.C.Cfg.N, ring)
	return ring
}

// Exchanges charges n executed point-to-point model exchanges (a PS
// push/pull round trip, or one half of a pairwise average).
func (e *SimEnv) Exchanges(n int) { e.C.ChargeExchange(n) }

// BootstrapTransfer prices one elastic scale-out bootstrap — the donor
// ships its full model state to the joiner point-to-point — and charges its
// traffic. Like the other methods it returns the modeled duration for the
// caller to charge the event engine.
func (e *SimEnv) BootstrapTransfer(donor, joiner int) float64 {
	dt := e.C.PairTime(donor, joiner)
	e.C.ChargeExchange(1)
	return dt
}
