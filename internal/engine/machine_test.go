package engine

import "testing"

// TestMachineCanonicalPath walks one worker through the full P-Reduce step
// cycle — the exact sequence RunPReduceSim and RunPReduceWorker drive — and
// through the solo-release and barrier-strategy shortcuts.
func TestMachineCanonicalPath(t *testing.T) {
	m := NewMachine(1)
	if got := m.State(0); got != StateIdle {
		t.Fatalf("fresh worker in %v, want idle", got)
	}
	for _, s := range []StepState{
		StateCompute, StateReady, StateReduce, StateApply, // full group cycle
		StateCompute, StateReady, StateCompute, // solo release
		StateReduce, StateApply, StateDone, // barrier shortcut, then finish
	} {
		m.To(0, s)
		if got := m.State(0); got != s {
			t.Fatalf("state %v after To(%v)", got, s)
		}
	}
}

// TestMachineAbortRollback covers the §4 recovery edge: a collective aborted
// under a worker sends it back to ready for the same iteration.
func TestMachineAbortRollback(t *testing.T) {
	m := NewMachine(1)
	m.To(0, StateCompute)
	m.To(0, StateReady)
	m.To(0, StateReduce)
	m.To(0, StateReady) // abort: roll back and re-signal
	m.To(0, StateReduce)
	m.To(0, StateApply)
}

// TestMachineKillAndRejoin: Kill moves to dead from anywhere (a fail-stop is
// an external event), and a checkpoint rejoin resumes at compute.
func TestMachineKillAndRejoin(t *testing.T) {
	for _, path := range [][]StepState{
		{StateCompute},
		{StateCompute, StateReady},
		{StateCompute, StateReady, StateReduce},
		{StateCompute, StateReady, StateReduce, StateApply},
	} {
		m := NewMachine(1)
		for _, s := range path {
			m.To(0, s)
		}
		m.Kill(0)
		if got := m.State(0); got != StateDead {
			t.Fatalf("killed worker in %v after %v", got, path)
		}
		m.To(0, StateCompute) // rejoin
	}
}

// TestMachineIllegalTransitionPanics: the machine is an invariant checker —
// a driver drifting from the documented step order must fail loudly.
func TestMachineIllegalTransitionPanics(t *testing.T) {
	cases := []struct {
		name string
		path []StepState
		bad  StepState
	}{
		{"idle to reduce", nil, StateReduce},
		{"idle to done", nil, StateDone},
		{"compute to apply", []StepState{StateCompute}, StateApply},
		{"compute to compute", []StepState{StateCompute}, StateCompute},
		{"reduce to done", []StepState{StateCompute, StateReady, StateReduce}, StateDone},
		{"done is terminal", []StepState{StateCompute, StateReady, StateDone}, StateCompute},
		{"dead to reduce", []StepState{StateCompute, StateDead}, StateReduce},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(1)
			for _, s := range tc.path {
				m.To(0, s)
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("transition %v accepted after %v", tc.bad, tc.path)
				}
			}()
			m.To(0, tc.bad)
		})
	}
}

// TestMachineTracksWorkersIndependently guards the multi-worker bookkeeping
// RunPReduceSim relies on.
func TestMachineTracksWorkersIndependently(t *testing.T) {
	m := NewMachine(3)
	m.To(0, StateCompute)
	m.To(1, StateCompute)
	m.To(1, StateReady)
	m.Kill(2)
	want := []StepState{StateCompute, StateReady, StateDead}
	for w, s := range want {
		if got := m.State(w); got != s {
			t.Fatalf("worker %d in %v, want %v", w, got, s)
		}
	}
}

func TestStepStateString(t *testing.T) {
	names := map[StepState]string{
		StateIdle: "idle", StateCompute: "compute", StateReady: "ready",
		StateReduce: "reduce", StateApply: "apply", StateDone: "done",
		StateDead: "dead",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", s, got, want)
		}
	}
	if got := StepState(99).String(); got != "state(99)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}
