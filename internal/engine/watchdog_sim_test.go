package engine_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/health"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
)

// watchdogSimRun executes one seeded P-Reduce simulation with a 4x
// straggler (rank 3) and a timed data-plane partition around rank 1
// (which the retry model turns into a burst of timeouts and retries),
// the watchdog armed for blame-spike and retry-storm, and the flight
// recorder writing bundles to dir. Everything runs on the virtual clock,
// so a same-seed replay is byte-reproducible end to end.
func watchdogSimRun(t *testing.T, seed int64, dir string) *health.Recorder {
	t.Helper()
	const n = 4
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 4, Dim: 12, Examples: 800, Separation: 3.2, Noise: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	profile := model.Profile{Name: "wd", WireParams: 1000, BatchCompute: 0.1, BytesPerParam: 4}
	cfg := cluster.Config{
		N:    n,
		Spec: model.Spec{Inputs: 12, Hidden: []int{12}, Classes: 4},
		Seed: seed, Train: train, Test: test,
		BatchSize: 16, Optimizer: optim.Config{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4},
		Profile: profile,
		Hetero:  &hetero.Fixed{Base: profile.BatchCompute, Multipliers: []float64{1, 1, 1, 4}},
		Net:     netmodel.Default(),
		Partitions: hetero.PartitionSchedule{{
			Ranks: []int{1}, From: 3, Until: 6,
		}},
		Retry: cluster.RetryModel{
			MaxAttempts: 3, Timeout: 0.2, BaseDelay: 0.05, MaxDelay: 0.1, Multiplier: 2,
		},
		TraceCap:  4096,
		Threshold: 0.999, EvalEvery: 1000, MaxUpdates: 120,
	}
	c, err := cluster.New(cfg, "watchdog-sim")
	if err != nil {
		t.Fatal(err)
	}
	c.Health = health.New(health.Config{SLO: health.SLO{
		BlameRecent: 0.05, // straggler rule: rank 3 settles near 0.3s recent blame
		RetryStorm:  2,    // >= 2 timeouts+retries per 0.5s evaluation window
	}})
	c.Recorder = health.NewRecorder(dir, c.Tracer, c.Ins, []byte(`{"test":"watchdog-sim"}`))
	c.HealthEvery = 0.5

	ctrl, err := controller.New(controller.Config{N: n, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetTracer(c.Tracer)
	ctrl.SetInstruments(c.Ins)
	if _, _, err := engine.RunPReduceSim(engine.NewSimEnv(c), ctrl, nil, 0); err != nil {
		t.Fatal(err)
	}
	return c.Recorder
}

// TestWatchdogSimFiresOncePerAnomaly: the straggler fires blame-spike
// exactly once and the partition's retry burst fires retry-storm exactly
// once — hysteresis keeps a persisting anomaly from re-capturing — and
// every bundle passes full validation.
func TestWatchdogSimFiresOncePerAnomaly(t *testing.T) {
	dir := t.TempDir()
	rec := watchdogSimRun(t, 11, dir)

	written := rec.Written()
	if len(written) != 2 {
		t.Fatalf("recorder wrote %d bundles %v, want exactly 2", len(written), written)
	}
	byRule := map[string]int{}
	for _, path := range written {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		man, err := health.Validate(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(man.Rules) != 1 {
			t.Fatalf("%s: manifest rules %v, want exactly one", path, man.Rules)
		}
		byRule[man.Rules[0]]++
		if man.At <= 0 {
			t.Fatalf("%s: capture time %v not positive", path, man.At)
		}
	}
	for _, rule := range []string{"blame-spike", "retry-storm"} {
		if byRule[rule] != 1 {
			t.Fatalf("rule %s captured %d bundles, want 1 (all: %v)", rule, byRule[rule], byRule)
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d bundles", rec.Dropped())
	}
}

// TestWatchdogSimDeterministic: a same-seed replay fires the same rules
// at the same virtual times and writes byte-identical bundles — the
// flight recorder inherits the simulator's reproducibility, so a
// postmortem from a seeded run can be regenerated exactly.
func TestWatchdogSimDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	watchdogSimRun(t, 11, dirA)
	watchdogSimRun(t, 11, dirB)

	names := func(dir string) []string {
		matches, err := filepath.Glob(filepath.Join(dir, "postmortem-*.tar"))
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range matches {
			matches[i] = filepath.Base(m)
		}
		return matches
	}
	a, b := names(dirA), names(dirB)
	if len(a) == 0 {
		t.Fatal("no bundles written")
	}
	if len(a) != len(b) {
		t.Fatalf("replay wrote %d bundles, first run wrote %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bundle name diverged: %s vs %s", a[i], b[i])
		}
		ba, err := os.ReadFile(filepath.Join(dirA, a[i]))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(dirB, b[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("bundle %s differs between same-seed replays", a[i])
		}
	}
}
