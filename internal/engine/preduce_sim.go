package engine

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/health"
	"partialreduce/internal/hetero"
	"partialreduce/internal/metrics"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
)

// RunPReduceSim drives Algorithm 2 on the simulated Environment's event
// engine. The controller arrives fully wired (tracer, instruments, policy —
// the strategy layer owns that setup); pol is the attached policy object, or
// nil, needed again when restartEvery > 0 warm-restarts the controller
// (Snapshot → Restore → re-attach wiring) every that many dispatched groups
// — the simulator's deterministic stand-in for live controller failover.
//
// When the cell carries a fail-stop schedule (§4), crashes are handled the
// way the paper says the controller makes cheap: a dead worker's queued
// signal is purged, a group caught mid-collective is aborted and its
// survivors re-signal after one controller round trip, and checkpoint
// rejoins re-admit the worker with its crash-time model.
//
// It returns the final controller: a restart replaces the incarnation
// mid-run, and post-run statistics must come from the survivor.
func RunPReduceSim(env *SimEnv, ctrl *controller.Controller, pol policy.Policy, restartEvery int) (*metrics.Result, *controller.Controller, error) {
	c := env.C
	agg := tensor.NewVector(len(c.Init))
	paramsBuf := make([]tensor.Vector, 0, c.Cfg.N)
	machine := NewMachine(c.Cfg.N)
	var readyErr error

	// inflight tracks dispatched groups until they complete, so a crash can
	// abort exactly the group the corpse was syncing with. aborted seqs make
	// the already-scheduled completion event a no-op.
	inflight := make(map[uint64]controller.Group)
	aborted := make(map[uint64]bool)
	var seq uint64

	// readyAt[w] is the virtual time of w's outstanding ready signal, the
	// start of its KSignalWait span (closed when its group dispatches).
	readyAt := make([]float64, c.Cfg.N)

	var startCompute func(w *cluster.Worker)
	var dispatch func(groups []controller.Group)

	// Elastic membership: events fire in schedule order once the cluster-wide
	// applied update count reaches their trigger. A join waits in
	// pendingJoins until the next ready signal from an eligible donor, which
	// serves the bootstrap from its own stable ready-point state and then
	// signals as usual; the joiner is admitted at assignment time, so group
	// formation deterministically waits for its first signal. Drains mark
	// the rank so its next ready point becomes a Drain → Decommission
	// hand-off instead of a signal. Both rules are exactly the live
	// runtime's, which is what keeps the sim↔live differential's update
	// counts equal.
	elastic := c.Cfg.Elastic
	nextElastic := 0
	pendingJoins := []int(nil)
	drainPending := make([]bool, c.Cfg.N)
	var checkElastic func()

	onGroupDone := func(id uint64, g controller.Group) {
		if aborted[id] {
			delete(aborted, id)
			return
		}
		delete(inflight, id)
		// Weighted model average (Alg. 2 line 7; §3.3 for dynamic weights).
		paramsBuf = paramsBuf[:0]
		for _, wid := range g.Members {
			paramsBuf = append(paramsBuf, c.Workers[wid].Params())
		}
		GroupAverage(agg, g, paramsBuf, c.Init)
		for _, wid := range g.Members {
			w := c.Workers[wid]
			machine.To(wid, StateApply)
			w.Params().CopyFrom(agg)
			w.Iter = g.Iter // fast-forward (§3.3.3)
		}
		c.RecordUpdate()
		checkElastic()
		for _, wid := range g.Members {
			startCompute(c.Workers[wid])
		}
	}

	var signalReady func(w *cluster.Worker)

	// attempt models collective attempt k of group id starting now. An
	// attempt whose members straddle an active partition blocks until the
	// collective timeout fires, then retries after a deterministic backoff —
	// the live runtime's RetryPolicy in virtual time. When the budget is
	// exhausted the controller aborts the op with nobody condemned and every
	// member re-signals after a controller round trip: the same stuck-op
	// path the live service takes for severed links.
	var attempt func(id uint64, g controller.Group, k int)
	attempt = func(id uint64, g controller.Group, k int) {
		if aborted[id] {
			// A crash abort dissolved the group while this attempt was
			// pending; the members have already re-signaled.
			delete(aborted, id)
			return
		}
		ring := env.GroupRing(g.Members)
		if !c.PartitionSplits(g.Members, c.Eng.Now()) {
			// One controller round trip plus a ring all-reduce sized to the
			// group: P-Reduce preserves collective bandwidth utilization
			// while shrinking the synchronization scope (§3.1.1).
			if c.Tracer != nil {
				// The modeled collective: a group-wait span covering the RTT
				// plus the ring, with the two symmetric ring phases ((g−1)
				// steps each) as sub-spans — the sim counterpart of the live
				// runtime's measured KReduceScatter/KAllGather.
				now := c.Eng.Now()
				rtt := c.Cfg.Net.CtrlRTT
				gs := int64(len(g.Members))
				for _, m := range g.Members {
					c.Tracer.SpanAt(trace.KGroupWait, int32(m), int32(g.Iter), now, rtt+ring, int64(id), gs)
					c.Tracer.SpanAt(trace.KReduceScatter, int32(m), int32(g.Iter), now+rtt, ring/2, int64(id), 0)
					c.Tracer.SpanAt(trace.KAllGather, int32(m), int32(g.Iter), now+rtt+ring/2, ring/2, int64(id), 0)
				}
			}
			c.Eng.After(c.Cfg.Net.CtrlRTT+ring, func() { onGroupDone(id, g) })
			return
		}
		rm := c.Cfg.Retry
		timeout := rm.TimeoutOr(c.Cfg.Profile.BatchCompute + ring)
		// Robustness events mirror into the live instruments (when attached)
		// so the watchdog's retry-storm rule sees the same counters in sim
		// and live.
		c.Track.AddComms(metrics.CommStats{Timeouts: 1})
		c.Ins.AddComms(metrics.CommStats{Timeouts: 1})
		c.Tracer.InstantAt(trace.KTimeout, trace.ControllerTrack, int32(g.Iter), c.Eng.Now()+timeout, int64(id), int64(k))
		if k < rm.Attempts() {
			c.Track.AddComms(metrics.CommStats{Retries: 1})
			c.Ins.AddComms(metrics.CommStats{Retries: 1})
			c.Tracer.InstantAt(trace.KRetry, trace.ControllerTrack, int32(g.Iter), c.Eng.Now()+timeout+rm.Backoff(k), int64(id), int64(k+1))
			c.Eng.After(timeout+rm.Backoff(k), func() { attempt(id, g, k+1) })
			return
		}
		// Budget exhausted: the members sit through the final timeout, then
		// the group is aborted (dead = -1: nobody is condemned) and the
		// survivors re-signal for the same iteration.
		c.Track.AddComms(metrics.CommStats{Aborts: 1})
		c.Ins.AddComms(metrics.CommStats{Aborts: 1})
		c.Tracer.InstantAt(trace.KAbort, trace.ControllerTrack, int32(g.Iter), c.Eng.Now()+timeout, int64(id), 0)
		c.Eng.After(timeout, func() {
			if aborted[id] {
				delete(aborted, id)
				return
			}
			delete(inflight, id)
			dispatch(ctrl.AbortGroup(g, -1))
			for _, m := range g.Members {
				if c.Dead[m] {
					continue
				}
				w := c.Workers[m]
				c.Eng.After(c.Cfg.Net.CtrlRTT, func() {
					if !c.Dead[w.ID] {
						signalReady(w)
					}
				})
			}
		})
	}

	// restart is the simulated warm-failover drill: serialize the
	// controller, destroy it, restore a replacement from the snapshot, and
	// re-attach the wiring (tracer, instruments, policy — whose state
	// rides the snapshot and is restored into the same policy object).
	dispatched := 0
	restart := func() {
		next, err := controller.Restore(ctrl.Snapshot())
		if err == nil {
			err = next.SetPolicy(pol) // no-op when pol is nil
		}
		if err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		next.SetTracer(c.Tracer)
		next.SetInstruments(c.Ins)
		ctrl = next
		c.Tracer.Instant(trace.KCtrlRestore, trace.ControllerTrack, -1, 0, 0)
	}

	dispatch = func(groups []controller.Group) {
		for _, g := range groups {
			g := g
			seq++
			id := seq
			inflight[id] = g
			for _, m := range g.Members {
				machine.To(m, StateReduce)
			}
			if c.Tracer != nil {
				// Close each member's signal-wait span: it waited from its
				// ready signal until this dispatch.
				now := c.Eng.Now()
				for i, m := range g.Members {
					c.Tracer.SpanAt(trace.KSignalWait, int32(m), int32(g.Iters[i]), readyAt[m], now-readyAt[m], 0, 0)
				}
			}
			attempt(id, g, 1)
			dispatched++
			if restartEvery > 0 && dispatched%restartEvery == 0 {
				restart()
			}
		}
	}

	// serveBootstrap is the donor side of a join, run at the donor's ready
	// point where its model state is stable: capture params/optimizer/iter
	// (BootstrapSend semantics), admit the joiner immediately — the epoch
	// bumps now, and formation waits for its first signal — and schedule the
	// install after the priced transfer. The donor then signals as usual.
	serveBootstrap := func(donor *cluster.Worker, j int) {
		machine.To(j, StateJoining)
		params := donor.Params().Clone()
		vel, step := donor.Opt.State()
		iter := donor.Iter
		c.Tracer.Instant(trace.KBootstrap, int32(j), int32(iter), int64(donor.ID), int64(len(params)))
		if err := ctrl.Join(j, c.Eng.Now()); err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		dt := env.BootstrapTransfer(donor.ID, j)
		c.Eng.After(dt, func() {
			w := c.Workers[j]
			w.Params().CopyFrom(params)
			if err := w.Opt.Restore(vel, step); err != nil {
				readyErr = err
				c.Eng.Stop()
				return
			}
			w.Iter = iter
			c.Revive(j)
			startCompute(w)
		})
	}

	signalReady = func(w *cluster.Worker) {
		machine.To(w.ID, StateReady)
		if drainPending[w.ID] {
			// The drain lands at the rank's next ready point: it hands off
			// instead of signaling, finishes nothing new, and leaves without
			// being counted as a failure. Shrinking the active set can let
			// the queue fill a group, so both steps may dispatch.
			drainPending[w.ID] = false
			machine.To(w.ID, StateDraining)
			groups, err := ctrl.Drain(w.ID)
			if err != nil {
				readyErr = err
				c.Eng.Stop()
				return
			}
			dispatch(groups)
			more, err := ctrl.Decommission(w.ID)
			if err != nil {
				readyErr = err
				c.Eng.Stop()
				return
			}
			machine.To(w.ID, StateDone)
			// Eval-exclude the departed replica (it left with its model; the
			// cluster's inference average is over current members only).
			c.Kill(w.ID)
			dispatch(more)
			return
		}
		if len(pendingJoins) > 0 && ctrl.IsMember(w.ID) && !ctrl.IsDraining(w.ID) {
			// A join is waiting for a donor and this member just reached its
			// ready point: serve the bootstrap, then fall through — the donor
			// signals the same iteration as usual.
			j := pendingJoins[0]
			pendingJoins = pendingJoins[1:]
			serveBootstrap(w, j)
			if readyErr != nil {
				return
			}
		}
		readyAt[w.ID] = c.Eng.Now()
		groups, err := ctrl.Ready(controller.Signal{Worker: w.ID, Iter: w.Iter, Now: c.Eng.Now(), Epoch: ctrl.Epoch()})
		if err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		dispatch(groups)
	}

	onComputeDone := func(w *cluster.Worker) {
		if c.Dead[w.ID] {
			return // the corpse's in-flight batch is lost with it
		}
		grad, _ := c.Gradient(w)
		w.Opt.Update(w.Params(), grad, 1) // local update (Alg. 2 line 4)
		w.Iter++
		signalReady(w)
	}

	startCompute = func(w *cluster.Worker) {
		if c.Dead[w.ID] {
			return
		}
		machine.To(w.ID, StateCompute)
		c.Snapshot(w)
		dt := c.ComputeTime(w)
		c.Tracer.SpanAt(trace.KCompute, int32(w.ID), int32(w.Iter), c.Eng.Now(), dt, 0, 0)
		c.Eng.After(dt, func() { onComputeDone(w) })
	}

	checkElastic = func() {
		for nextElastic < len(elastic) && elastic[nextElastic].AfterUpdates <= c.Updates() {
			e := elastic[nextElastic]
			nextElastic++
			if e.Kind == hetero.ElasticJoin {
				pendingJoins = append(pendingJoins, e.Worker)
			} else {
				drainPending[e.Worker] = true
			}
		}
	}

	onCrash := func(dead int) {
		machine.Kill(dead)
		// If the corpse was mid-collective, abort that group: the survivors
		// roll back (in the simulator the average simply never lands) and
		// re-signal ready after one controller round trip.
		for id, g := range inflight {
			hit := false
			for _, m := range g.Members {
				if m == dead {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			delete(inflight, id)
			aborted[id] = true
			dispatch(ctrl.AbortGroup(g, dead))
			for _, m := range g.Members {
				if m == dead || c.Dead[m] {
					continue
				}
				w := c.Workers[m]
				c.Eng.After(c.Cfg.Net.CtrlRTT, func() {
					if !c.Dead[w.ID] {
						signalReady(w)
					}
				})
			}
			return
		}
		// Otherwise the worker was computing (its batch is discarded at
		// onComputeDone) or queued (Fail purges the signal). Shrinking the
		// surviving count can let the existing queue fill a group.
		dispatch(ctrl.Fail(dead))
	}

	onRejoin := func(w int) {
		// Checkpoint restart: the replica resumes from its crash-time
		// parameters and iteration count (the state the checkpoint froze).
		if err := ctrl.Rejoin(w); err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		startCompute(c.Workers[w])
	}

	c.ScheduleCrashes(onCrash, onRejoin)

	// The watchdog ticks on the virtual clock, evaluated inside the event
	// loop (the controller's serialization domain), so a same-seed replay
	// fires the same rules at the same virtual times and captures
	// byte-identical bundles. The tick reschedules itself only while other
	// events remain pending — a recurring event must not keep the queue
	// alive after the run drains.
	if c.Health != nil {
		every := c.HealthEvery
		if every <= 0 {
			every = 1.0
		}
		var tick func()
		tick = func() {
			now := c.Eng.Now()
			breaches := c.Health.Eval(now, health.Sample{
				Snap:       c.Ins.Snapshot(),
				QueueDepth: ctrl.QueueDepth(),
				Active:     c.AliveCount(),
			})
			if len(breaches) > 0 && c.Recorder != nil {
				c.Recorder.SetControllerSnapshot(ctrl.Snapshot())
				st := c.Health.State()
				for _, br := range breaches {
					if _, err := c.Recorder.Capture(br.Rule.String(), now, []health.Breach{br}, st); err != nil {
						readyErr = err
						c.Eng.Stop()
						return
					}
				}
			}
			if c.Eng.Pending() > 0 {
				c.Eng.After(every, tick)
			}
		}
		c.Eng.After(every, tick)
	}

	for _, w := range c.Workers {
		w := w
		c.Eng.At(0, func() { startCompute(w) })
	}
	c.Eng.Run()
	if readyErr != nil {
		return nil, ctrl, readyErr
	}
	return c.Finish(), ctrl, nil
}
