package engine

import (
	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/metrics"
	"partialreduce/internal/tensor"
)

// overlapState tracks one worker's pipelining: whether a group reply is
// outstanding and whether a finished gradient is parked waiting for it.
type overlapState struct {
	waitingGroup bool
	stashed      tensor.Vector // finished gradient awaiting the group, nil if none
	stashBuf     tensor.Vector // storage backing stashed
}

// RunOverlappedSim drives Algorithm 2 with communication/computation
// overlapping (the DDP-style pipelining §4 leaves as future work): each
// worker launches its next batch the moment it signals ready, so the group's
// collective and the batch run concurrently. The next local update applies a
// gradient taken at the pre-aggregation snapshot — the bounded inconsistency
// DDP-style pipelining accepts in exchange for hiding communication time.
//
// This driver deliberately does not carry the step Machine: pipelining is
// the one execution mode whose whole point is violating the sequential step
// order (a worker is in compute and reduce at once), so the invariant
// checker would only encode false positives here.
func RunOverlappedSim(env *SimEnv, ctrl *controller.Controller) (*metrics.Result, error) {
	c := env.C
	agg := tensor.NewVector(len(c.Init))
	paramsBuf := make([]tensor.Vector, 0, c.Cfg.N)
	states := make([]overlapState, len(c.Workers))
	for i := range states {
		states[i].stashBuf = tensor.NewVector(len(c.Init))
	}
	var readyErr error

	var startCompute func(w *cluster.Worker)
	var applyAndSignal func(w *cluster.Worker, grad tensor.Vector)

	onGroupDone := func(g controller.Group) {
		paramsBuf = paramsBuf[:0]
		for _, wid := range g.Members {
			paramsBuf = append(paramsBuf, c.Workers[wid].Params())
		}
		GroupAverage(agg, g, paramsBuf, c.Init)
		for _, wid := range g.Members {
			w := c.Workers[wid]
			w.Params().CopyFrom(agg)
			w.Iter = g.Iter
		}
		c.RecordUpdate()
		if c.Eng.Stopped() {
			return
		}
		for _, wid := range g.Members {
			w := c.Workers[wid]
			st := &states[wid]
			st.waitingGroup = false
			if st.stashed != nil {
				// The overlapped batch finished before the group: release it
				// now, on top of the aggregated model.
				grad := st.stashed
				st.stashed = nil
				applyAndSignal(w, grad)
			}
		}
	}

	applyAndSignal = func(w *cluster.Worker, grad tensor.Vector) {
		w.Opt.Update(w.Params(), grad, 1)
		w.Iter++
		st := &states[w.ID]
		groups, err := ctrl.Ready(controller.Signal{Worker: w.ID, Iter: w.Iter})
		if err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		st.waitingGroup = true
		// Pipelining: the next batch starts immediately, concurrent with the
		// group collective.
		startCompute(w)
		for _, g := range groups {
			g := g
			ring := env.GroupRing(g.Members)
			c.Eng.After(c.Cfg.Net.CtrlRTT+ring, func() { onGroupDone(g) })
		}
	}

	onComputeDone := func(w *cluster.Worker) {
		grad, _ := c.Gradient(w)
		st := &states[w.ID]
		if st.waitingGroup {
			// Group still in flight: park the gradient until it lands.
			st.stashBuf.CopyFrom(grad)
			st.stashed = st.stashBuf
			return
		}
		applyAndSignal(w, grad)
	}

	startCompute = func(w *cluster.Worker) {
		c.Snapshot(w)
		c.Eng.After(c.ComputeTime(w), func() { onComputeDone(w) })
	}

	for _, w := range c.Workers {
		w := w
		c.Eng.At(0, func() { startCompute(w) })
	}
	c.Eng.Run()
	if readyErr != nil {
		return nil, readyErr
	}
	return c.Finish(), nil
}
