package engine

import (
	"partialreduce/internal/metrics"
	"partialreduce/internal/tensor"
)

// RunAllReduceSim is the simulated All-Reduce baseline: every iteration all
// N workers barrier, average gradients with one full-cluster ring
// all-reduce, and apply the identical update. The round takes as long as the
// slowest worker — the straggler sensitivity the paper targets. It is the
// same training step RunAllReduceWorker executes live: compute → reduce →
// apply on the step machine, with the gradient mean computed by the shared
// aggregation rule; only the substrate differs (modeled ring time and
// charged traffic here, a real collective there).
//
// All-Reduce honors a crash schedule the only way a global collective can
// (§4): the first fail-stop halts training — every subsequent round would
// block forever on the dead rank — and the run is recorded as not converged.
func RunAllReduceSim(env *SimEnv) (*metrics.Result, error) {
	c := env.C
	n := c.Cfg.N
	avg := tensor.NewVector(len(c.Init))
	weights := UniformWeights(n)
	grads := make([]tensor.Vector, n)
	machine := NewMachine(n)
	c.ScheduleCrashes(func(w int) { machine.Kill(w); c.Eng.Stop() }, nil)

	var round func()
	round = func() {
		// The barrier waits for the slowest worker's batch, then the group
		// pays one full-cluster ring all-reduce.
		var maxDt float64
		for _, w := range c.Workers {
			machine.To(w.ID, StateCompute)
			if dt := c.ComputeTime(w); dt > maxDt {
				maxDt = dt
			}
		}
		ring := env.WorldRing()
		c.Eng.After(maxDt+ring, func() {
			for i, w := range c.Workers {
				machine.To(w.ID, StateReduce)
				grads[i], _ = c.GradientAtCurrent(w)
			}
			tensor.WeightedAverage(avg, weights, grads)
			for _, w := range c.Workers {
				machine.To(w.ID, StateApply)
				w.Opt.Update(w.Params(), avg, 1)
				w.Iter++
			}
			c.RecordUpdate()
			if !c.Eng.Stopped() {
				round()
			}
		})
	}
	c.Eng.At(0, round)
	c.Eng.Run()
	return c.Finish(), nil
}
