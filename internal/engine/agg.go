package engine

import (
	"partialreduce/internal/controller"
	"partialreduce/internal/tensor"
)

// Aggregation rules. Every strategy's model/gradient combination step is a
// convex combination computed by tensor.WeightedAverage, whose accumulation
// order (zero, then one Axpy per input, in input order) is pinned: the
// byte-identical golden runs depend on it.

// GroupAverage computes a formed group's weighted model average into dst
// (Algorithm 2 line 7; §3.3 for dynamic weights): params[i] is the model of
// g.Members[i], and under dynamic weighting a positive g.InitWeight folds in
// the shared initial model x₁ with the leftover EMA mass.
func GroupAverage(dst tensor.Vector, g controller.Group, params []tensor.Vector, init tensor.Vector) {
	tensor.WeightedAverage(dst, g.Weights, params)
	if g.InitWeight > 0 {
		dst.Axpy(g.InitWeight, init)
	}
}

// UniformWeights returns the weight vector {1/n, ..., 1/n} — the barrier
// strategies' gradient average and D-PSGD's 1/3 gossip weights are all
// uniform convex combinations.
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}
