package engine

import (
	"errors"
	"time"

	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/metrics"
	"partialreduce/internal/model"
	"partialreduce/internal/optim"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

// LiveEnv is one worker's live Environment: a real transport endpoint, real
// collective operations, wall-clock time, measured bytes. Where SimEnv
// prices a collective analytically and charges modeled traffic, LiveEnv
// executes it and lets the collective layer count what actually moved (into
// Copts.Stats).
type LiveEnv struct {
	// Rank is this worker's id in the transport world.
	Rank int
	// Trans is the worker's transport endpoint.
	Trans transport.Transport
	// Copts configures every collective this worker runs. Its TraceIter
	// field is updated in place per group op — deliberately persistent, so
	// trailing collectives (the multi-process tail gather/barrier) inherit
	// the last iteration's tag.
	Copts collective.Options
	// Tracer and Instruments are the worker-side telemetry sinks (both
	// nil-safe / optional).
	Tracer      *trace.Tracer
	Instruments *metrics.Instruments

	epoch time.Time
}

// NewLiveEnv returns a live Environment for one rank. copts.Stats should
// point at the caller's per-worker OpStats accumulator.
func NewLiveEnv(rank int, tr transport.Transport, copts collective.Options, tracer *trace.Tracer, ins *metrics.Instruments) *LiveEnv {
	return &LiveEnv{Rank: rank, Trans: tr, Copts: copts, Tracer: tracer, Instruments: ins, epoch: time.Now()}
}

// Now implements Environment: wall seconds since the env was created.
func (e *LiveEnv) Now() float64 { return time.Since(e.epoch).Seconds() }

// World implements Environment.
func (e *LiveEnv) World() int { return e.Trans.Size() }

// GroupReduce executes one P-Reduce group collective: the weighted in-place
// model average over the group's members, tagged with the worker's current
// iteration.
func (e *LiveEnv) GroupReduce(members []int, opID uint32, params tensor.Vector, weight float64, iter int) error {
	e.Copts.TraceIter = int32(iter)
	return collective.WeightedAverageOpts(e.Trans, members, opID, params, weight, e.Copts)
}

// WorldReduceMean executes one full-group mean all-reduce (the AR baseline's
// gradient average) over group.
func (e *LiveEnv) WorldReduceMean(group []int, opID uint32, grad tensor.Vector) error {
	return collective.AllReduceMeanOpts(e.Trans, group, opID, grad, e.Copts)
}

// Directive is the controller's answer to a ready signal: a formed group to
// reduce with, or one of the control outcomes — Skip (proceed solo this
// iteration: tail release, or a signal the controller rejected), Drain (the
// worker's graceful hand-off is complete; leave the loop cleanly), Refresh
// (the signal carried a stale world-view epoch; adopt Epoch and re-signal),
// or a bootstrap assignment (serve your model state to a joining rank, then
// re-signal).
type Directive struct {
	Group controller.Group
	OpID  uint32
	Skip  bool
	// Drain tells the worker its Drain → Decommission hand-off is complete:
	// stop training without an error and without counting as a failure.
	Drain bool
	// Refresh tells the worker its signal was rejected for a stale epoch:
	// adopt Epoch as the current world view and re-signal the same iteration.
	Refresh bool
	// Epoch is the controller's world-view version at answer time; the
	// worker stamps it into its next ready signal.
	Epoch uint64
	// Bootstrap assigns the worker as the join donor for rank BootstrapFor:
	// it sends its model state with the Bootstrap collective under
	// BootstrapOp, then re-signals the same iteration.
	Bootstrap    bool
	BootstrapFor int
	BootstrapOp  uint32
}

// Control is the worker's view of the control plane. The in-process runtime
// implements it over channels to the controller service goroutine; the
// multi-process runtime implements it over the transport's control-tag
// message space. Model data never moves through a Control — it carries only
// ids, iteration numbers, and op tags (§4).
type Control interface {
	// Signal sends the worker's ready signal for iter and blocks until the
	// controller answers. Retransmission of lost signals (bounded reply
	// waits, controller failover) happens inside the implementation; an
	// error means the control plane is unusable and the run is over for
	// this worker.
	Signal(iter int) (Directive, error)
	// SignalNoWait sends the ready signal without waiting for the answer —
	// the crash-injection path: the signal must be in flight when the
	// worker dies, so the controller can form a group containing the corpse.
	SignalNoWait(iter int)
	// ReportDeath reports a peer observed dead inside collective op opID of
	// group g.
	ReportDeath(dead int, g controller.Group, opID uint32) error
	// ReportStuck reports a collective that timed out with no peer known
	// dead (severed link, partition): the controller aborts the op for the
	// whole group and nobody is condemned.
	ReportStuck(g controller.Group, opID uint32) error
	// Finished announces that the worker completed all its iterations.
	Finished() error
}

// LiveWorker is one worker's training state, assembled by a live runtime and
// driven by RunPReduceWorker / RunAllReduceWorker.
type LiveWorker struct {
	Env     *LiveEnv
	Model   model.Model
	Opt     *optim.SGD
	Sampler *data.Sampler
	// Init is the shared initial model x₁ (dynamic weighting folds it in
	// with the leftover EMA mass).
	Init tensor.Vector
	// Iters is the local-iteration budget; StartIter is where the loop
	// counter begins (non-zero after a checkpoint rejoin).
	Iters     int
	StartIter int
	BatchSize int
	// ComputeDelay optionally injects artificial per-batch latency to
	// emulate heterogeneity on real hardware (nil for full speed).
	ComputeDelay func(worker, iter int) time.Duration
	// CrashAt, when positive, fail-stops the worker once its loop counter
	// reaches that iteration (P-Reduce: just after the ready signal goes
	// out; All-Reduce: just before the barrier).
	CrashAt int
	// OnIter, when non-nil, observes every loop-counter advance (the
	// in-process runtime mirrors it into its per-worker progress vector).
	OnIter func(iter int)
}

// Outcome reports how a live worker loop ended.
type Outcome struct {
	// Iter is the final loop-counter value.
	Iter int
	// Groups counts group collectives completed (P-Reduce) or all-reduce
	// rounds completed (AR).
	Groups int
	// Crashed reports that the injected fail-stop fired; the runtime owns
	// what "dying" means (checkpoint + transport down-marks in-process,
	// FailSelf multi-process).
	Crashed bool
	// DeadErr is the collective error that declared this worker dead
	// (somebody else reported us and our own op was aborted against us);
	// the worker must fall silent. Nil otherwise.
	DeadErr error
	// Drained reports a graceful elastic hand-off: the worker drained and
	// decommissioned cleanly before spending its iteration budget. Not a
	// failure, not a crash.
	Drained bool
}

// RunPReduceWorker is the live training-step loop (Algorithm 2), shared by
// the in-process and multi-process runtimes: compute a batch, update
// locally, signal ready, and either proceed solo or reduce with the
// dispatched group — rolling back and re-signaling when the collective is
// aborted under it (§4). A non-nil error is fatal and raw: the calling
// runtime owns wrapping and cleanup (the two runtimes differ in both).
func RunPReduceWorker(w *LiveWorker, ctl Control) (Outcome, error) {
	env := w.Env
	id := env.Rank
	m := w.Model
	grad := tensor.NewVector(m.NumParams())
	pre := tensor.NewVector(m.NumParams())
	var batch *data.Batch
	tracer := env.Tracer
	ins := env.Instruments
	var prevComms collective.OpStats // last OpStats folded into instruments
	machine := NewMachine(1)
	groups := 0
	// The paper's loop counter: fast-forwarded to the group max after every
	// partial reduce (§3.3.3), so stragglers skip caught-up work.
	iter := w.StartIter

	for iter < w.Iters {
		machine.To(0, StateCompute)
		computeStart := tracer.Now()
		if w.ComputeDelay != nil {
			if d := w.ComputeDelay(id, iter); d > 0 {
				time.Sleep(d)
			}
		}
		batch = w.Sampler.Sample(batch, w.BatchSize)
		m.Gradient(grad, batch)
		w.Opt.Update(m.Params(), grad, 1)
		iter++
		if w.OnIter != nil {
			w.OnIter(iter)
		}
		tracer.Span(trace.KCompute, int32(id), int32(iter), computeStart, 0, 0)

		if w.CrashAt > 0 && iter >= w.CrashAt {
			// Fail-stop with the ready signal in flight: the controller may
			// form a group containing this corpse, and the survivors must
			// detect and recover (§4).
			tracer.Instant(trace.KCrash, int32(id), int32(iter), 0, 0)
			ctl.SignalNoWait(iter)
			machine.Kill(0)
			return Outcome{Iter: iter, Groups: groups, Crashed: true}, nil
		}

		for { // signal ready; on a group abort, roll back and re-signal
			if machine.State(0) != StateReady {
				// Refresh and bootstrap directives loop back here with the
				// worker already in StateReady (the re-signal is the same
				// step-machine phase, not a new transition).
				machine.To(0, StateReady)
			}
			waitStart := tracer.Now()
			var waitWall time.Time
			if ins != nil {
				waitWall = time.Now()
			}
			d, err := ctl.Signal(iter)
			if err != nil {
				return Outcome{Iter: iter, Groups: groups}, err
			}
			if ins != nil {
				ins.AddBarrierWait(id, time.Since(waitWall).Seconds())
			}
			solo := int64(0)
			if d.Skip {
				solo = 1
			}
			tracer.Span(trace.KSignalWait, int32(id), int32(iter), waitStart, solo, 0)
			if d.Drain {
				// Graceful hand-off complete: the controller answered the
				// signal with a drain acknowledgment instead of a group. Exit
				// without Finished() — a drained rank is not a completed one.
				machine.To(0, StateDraining)
				machine.To(0, StateDone)
				return Outcome{Iter: iter, Groups: groups, Drained: true}, nil
			}
			if d.Bootstrap {
				// This worker is the join donor: serve its model state to the
				// joining rank, then re-signal the same iteration. A transport
				// failure here means the joiner died mid-bootstrap; the donor
				// is unaffected and simply re-signals.
				vel, step := w.Opt.State()
				st := collective.BootstrapState{
					Params:   m.Params(),
					Velocity: vel,
					Iter:     iter,
					Step:     step,
				}
				tracer.Instant(trace.KBootstrap, int32(id), int32(iter),
					int64(d.BootstrapFor), int64(len(st.Params)))
				if err := collective.BootstrapSend(env.Trans, d.BootstrapFor, d.BootstrapOp, st, env.Copts); err != nil {
					if !transport.IsFailure(err) {
						return Outcome{Iter: iter, Groups: groups}, err
					}
				}
				continue
			}
			if d.Refresh {
				// Stale world-view epoch: the Control implementation has
				// already adopted d.Epoch for the next signal; re-signal the
				// same iteration against the current membership.
				continue
			}
			if d.Skip {
				break // proceed solo this iteration
			}
			g := d.Group
			var weight float64
			for i, member := range g.Members {
				if member == id {
					weight = g.Weights[i]
					break
				}
			}
			machine.To(0, StateReduce)
			pre.CopyFrom(m.Params())
			err = env.GroupReduce(g.Members, d.OpID, m.Params(), weight, iter)
			if ins != nil {
				// Fold this collective's data-plane delta into the live
				// instruments so /metrics is fresh mid-run (the run total
				// still merges once at worker exit).
				cur := *env.Copts.Stats
				ins.AddComms(commsDelta(cur, prevComms))
				prevComms = cur
			}
			if err == nil {
				machine.To(0, StateApply)
				if g.InitWeight > 0 {
					m.Params().Axpy(g.InitWeight, w.Init)
				}
				if g.Iter > iter {
					iter = g.Iter
					if w.OnIter != nil {
						w.OnIter(iter)
					}
				}
				groups++
				break
			}
			if !transport.IsFailure(err) {
				// Hard transport error (e.g. endpoint closed): fatal.
				return Outcome{Iter: iter, Groups: groups}, err
			}
			// A peer died mid-collective (§4): roll back to the pre-group
			// model, report the death, and re-signal ready for this same
			// iteration. The controller will regroup us with survivors.
			m.Params().CopyFrom(pre)
			dead := deadPeer(err)
			if dead == id {
				machine.Kill(0)
				return Outcome{Iter: iter, Groups: groups, DeadErr: err}, nil
			}
			if dead >= 0 {
				if rerr := ctl.ReportDeath(dead, g, d.OpID); rerr != nil {
					return Outcome{Iter: iter, Groups: groups}, rerr
				}
			} else if transport.IsTimeout(err) {
				// The collective timed out (after exhausting any retry
				// budget) with no peer known dead: a severed link or
				// partition. Ask the controller to abort the op for the
				// whole group so every stuck member rolls back and
				// re-signals; nobody is condemned.
				if rerr := ctl.ReportStuck(g, d.OpID); rerr != nil {
					return Outcome{Iter: iter, Groups: groups}, rerr
				}
			}
		}
	}
	if machine.State(0) != StateIdle {
		// A rejoin checkpointed at the final iteration re-enters with the
		// budget already spent; everyone else arrives here from a solo
		// release (ready) or a completed group (apply).
		machine.To(0, StateDone)
	}
	if err := ctl.Finished(); err != nil {
		return Outcome{Iter: iter, Groups: groups}, err
	}
	return Outcome{Iter: iter, Groups: groups}, nil
}

// RunAllReduceWorker is the live All-Reduce baseline's per-rank loop: every
// iteration all workers compute a gradient and average it with one
// full-world mean all-reduce — the synchronous barrier P-Reduce removes.
// There is no ready/controller phase, so the step machine moves compute →
// reduce directly. world is the full transport mesh (for the crash
// injection's down-marks); group must list every rank.
func RunAllReduceWorker(w *LiveWorker, world []transport.Transport, group []int) (Outcome, error) {
	env := w.Env
	id := env.Rank
	m := w.Model
	grad := tensor.NewVector(m.NumParams())
	var batch *data.Batch
	machine := NewMachine(1)

	for iter := 0; iter < w.Iters; iter++ {
		if w.CrashAt > 0 && iter+1 >= w.CrashAt {
			// Fail-stop: drop out right before this iteration's barrier;
			// every peer will see us down inside it.
			machine.Kill(0)
			transport.FailPeerEverywhere(world, id)
			return Outcome{Iter: iter, Crashed: true}, nil
		}
		machine.To(0, StateCompute)
		if w.ComputeDelay != nil {
			if d := w.ComputeDelay(id, iter); d > 0 {
				time.Sleep(d)
			}
		}
		batch = w.Sampler.Sample(batch, w.BatchSize)
		m.Gradient(grad, batch)
		machine.To(0, StateReduce)
		if err := env.WorldReduceMean(group, uint32(iter+1), grad); err != nil {
			return Outcome{Iter: iter}, err
		}
		machine.To(0, StateApply)
		w.Opt.Update(m.Params(), grad, 1)
		if w.OnIter != nil {
			w.OnIter(iter + 1)
		}
	}
	machine.To(0, StateDone)
	return Outcome{Iter: w.Iters, Groups: w.Iters}, nil
}

// commsDelta converts the difference cur−prev of two cumulative OpStats
// readings into the metrics.CommStats shape the live instruments accumulate.
func commsDelta(cur, prev collective.OpStats) metrics.CommStats {
	return metrics.CommStats{
		Ops:            cur.Ops - prev.Ops,
		BytesSent:      cur.BytesSent - prev.BytesSent,
		BytesRecv:      cur.BytesRecv - prev.BytesRecv,
		Segments:       cur.Segments - prev.Segments,
		Retries:        cur.Retries - prev.Retries,
		Timeouts:       cur.Timeouts - prev.Timeouts,
		Aborts:         cur.Aborts - prev.Aborts,
		ReduceScatterS: (cur.ReduceScatter - prev.ReduceScatter).Seconds(),
		AllGatherS:     (cur.AllGather - prev.AllGather).Seconds(),
	}
}

// deadPeer extracts the rank whose death caused a collective failure, or -1.
func deadPeer(err error) int {
	var pd *transport.PeerDownError
	if errors.As(err, &pd) {
		return pd.Peer
	}
	var oa *transport.OpAbortedError
	if errors.As(err, &oa) {
		return oa.Dead
	}
	return -1
}
