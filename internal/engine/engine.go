// Package engine is the unified training-step layer shared by the simulator
// and the live runtime. The paper's claims hinge on the *same*
// synchronization semantics being measured under two lenses — virtual time
// over an analytic cost model, and wall time over real sockets — so the step
// semantics (gradient compute → ready signal → group/collective wait →
// weighted model average → optimizer apply) are defined here exactly once:
//
//   - the worker-step state machine (Machine, StepState) that every P-Reduce
//     execution, simulated or live, advances through;
//   - the aggregation rules (GroupAverage and the uniform/neighbor/pair
//     weight vectors the baselines use), all reducing to
//     tensor.WeightedAverage with a pinned accumulation order;
//   - the Environment backends: SimEnv (wraps cluster.Cluster — virtual
//     clock, analytic α–β costs, traffic charging folded inside the env so
//     no strategy ever touches ChargeRing/ChargeExchange directly) and
//     LiveEnv (wraps a transport endpoint — wall clock, real bytes through
//     the collective package);
//   - the drivers: RunPReduceSim/RunOverlappedSim on the event engine, and
//     RunPReduceWorker/RunAllReduceWorker as the blocking per-rank loops the
//     live runtimes (in-process and multi-process) both execute.
//
// Strategies and runtimes configure an Environment and invoke a driver; they
// never re-implement the step. Adding a strategy or a backend is a
// single-file change against this package.
package engine

import "fmt"

// Environment abstracts the substrate a training step executes on. The two
// backends differ in every operational detail and agree on the semantics:
//
//	backend   clock         communication      cost accounting
//	-------   -----         -------------      ---------------
//	SimEnv    virtual       modeled (α–β)      charged analytically per op
//	LiveEnv   wall          real collectives   measured bytes/durations
//
// The interface itself is deliberately small — drivers are written against
// the concrete backend they schedule on (event-driven vs blocking), and this
// interface pins the shared surface both must provide.
type Environment interface {
	// Now returns the substrate clock in seconds: virtual time for SimEnv,
	// wall time since the run epoch for LiveEnv.
	Now() float64
	// World returns the number of workers sharing the substrate.
	World() int
}

// StepState is one phase of the canonical training step. Every worker,
// simulated or live, advances through these states; Machine enforces that
// only the documented transitions occur, so a refactor that drifts one
// substrate's step order away from the other fails loudly instead of
// silently diverging.
type StepState uint8

const (
	// StateIdle is the pre-run state of a freshly created worker.
	StateIdle StepState = iota
	// StateCompute: the local mini-batch (gradient + local SGD update) runs.
	StateCompute
	// StateReady: the ready signal is issued; the worker waits for the
	// controller's directive (a formed group, or a solo release). Barrier
	// strategies without a controller skip this state.
	StateReady
	// StateReduce: the group collective (ring all-reduce / weighted model
	// average) is in flight.
	StateReduce
	// StateApply: the aggregated model is installed and the loop counter
	// fast-forwards to the group maximum (§3.3.3).
	StateApply
	// StateDone: all iterations completed; terminal.
	StateDone
	// StateDead: fail-stopped. A checkpoint rejoin transitions back to
	// StateCompute.
	StateDead
	// StateJoining: an elastic scale-out rank bootstrapping the freshest
	// checkpointed model from a live donor before its first compute.
	StateJoining
	// StateDraining: a gracefully departing rank that finished its
	// in-flight group and is handing off; it no longer signals ready.
	StateDraining
)

var stepStateNames = [...]string{
	StateIdle:     "idle",
	StateCompute:  "compute",
	StateReady:    "ready",
	StateReduce:   "reduce",
	StateApply:    "apply",
	StateDone:     "done",
	StateDead:     "dead",
	StateJoining:  "joining",
	StateDraining: "draining",
}

// String returns the state's name.
func (s StepState) String() string {
	if int(s) < len(stepStateNames) {
		return stepStateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// legalSteps is the transition relation of the step machine. Reading an
// entry: legalSteps[from] lists the states a worker may move to next.
//
//	idle    → compute                      (run start)
//	compute → ready                        (signal sent, controller strategies)
//	compute → reduce                       (barrier strategies: no signal phase)
//	compute → dead                         (fail-stop after the batch)
//	ready   → reduce                       (group dispatched)
//	ready   → compute                      (solo release: proceed unaveraged)
//	ready   → done                         (solo release on the final iteration)
//	ready   → dead                         (fail-stop while queued)
//	reduce  → apply                        (collective completed)
//	reduce  → ready                        (abort/rollback: re-signal same iter)
//	reduce  → dead                         (member died mid-collective)
//	apply   → compute                      (next step)
//	apply   → done                         (iterations exhausted/fast-forwarded)
//	apply   → dead                         (fail-stop between steps)
//	apply   → draining                     (drain lands after the group applies)
//	dead    → compute                      (checkpoint rejoin)
//	idle    → joining                      (elastic rank starts bootstrapping)
//	joining → compute                      (bootstrap complete: first local step)
//	joining → dead                         (donor lost / bootstrap fail-stop)
//	compute → draining                     (drain lands at the signal point)
//	ready   → draining                     (drain answered instead of a group)
//	draining→ done                         (hand-off acknowledged; terminal exit)
//	draining→ dead                         (fail-stop mid-hand-off)
//	done    → joining                      (a decommissioned slot re-occupied
//	                                        by a fresh joiner)
var legalSteps = [...][]StepState{
	StateIdle:     {StateCompute, StateJoining},
	StateCompute:  {StateReady, StateReduce, StateDead, StateDraining},
	StateReady:    {StateReduce, StateCompute, StateDone, StateDead, StateDraining},
	StateReduce:   {StateApply, StateReady, StateDead},
	StateApply:    {StateCompute, StateDone, StateDead, StateDraining},
	StateDone:     {StateJoining},
	StateDead:     {StateCompute},
	StateJoining:  {StateCompute, StateDead},
	StateDraining: {StateDone, StateDead},
}

// Machine tracks the step state of a set of workers and enforces the legal
// transitions. It is an invariant checker, not a scheduler: drivers tell it
// where each worker is, and an illegal move panics with both states named —
// the same contract as tensor's length checks, because a bad transition is
// always a programming error in a driver, never a data condition.
type Machine struct {
	states []StepState
}

// NewMachine returns a machine tracking n workers, all StateIdle.
func NewMachine(n int) *Machine { return &Machine{states: make([]StepState, n)} }

// State returns worker w's current step state.
func (m *Machine) State(w int) StepState { return m.states[w] }

// To moves worker w to state s, panicking on an illegal transition.
func (m *Machine) To(w int, s StepState) {
	from := m.states[w]
	for _, ok := range legalSteps[from] {
		if s == ok {
			m.states[w] = s
			return
		}
	}
	panic(fmt.Sprintf("engine: illegal step transition for worker %d: %v -> %v", w, from, s))
}

// Kill force-moves worker w to StateDead from any state (a fail-stop is an
// external event, not a step transition).
func (m *Machine) Kill(w int) { m.states[w] = StateDead }
