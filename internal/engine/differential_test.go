package engine_test

import (
	"math"
	"sync"
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/collective"
	"partialreduce/internal/controller"
	"partialreduce/internal/data"
	"partialreduce/internal/engine"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/netmodel"
	"partialreduce/internal/optim"
	"partialreduce/internal/transport"
)

// diffControl adapts a (mutex-serialized) controller.Controller to the
// engine.Control interface for in-memory differential runs: every worker
// goroutine signals through the shared state, and a formed group's directive
// is delivered to each member's waiting channel.
type diffShared struct {
	mu      sync.Mutex
	ctrl    *controller.Controller
	seq     uint32
	waiters map[int]chan engine.Directive
}

type diffControl struct {
	sh *diffShared
	id int
}

func (c *diffControl) Signal(iter int) (engine.Directive, error) {
	ch := make(chan engine.Directive, 1)
	c.sh.mu.Lock()
	c.sh.waiters[c.id] = ch
	groups, err := c.sh.ctrl.Ready(controller.Signal{Worker: c.id, Iter: iter})
	if err != nil {
		c.sh.mu.Unlock()
		return engine.Directive{}, err
	}
	for _, g := range groups {
		c.sh.seq++
		d := engine.Directive{Group: g, OpID: c.sh.seq}
		for _, m := range g.Members {
			c.sh.waiters[m] <- d
		}
	}
	c.sh.mu.Unlock()
	return <-ch, nil
}

func (c *diffControl) SignalNoWait(iter int)                                     {}
func (c *diffControl) ReportDeath(dead int, g controller.Group, op uint32) error { return nil }
func (c *diffControl) ReportStuck(g controller.Group, op uint32) error           { return nil }
func (c *diffControl) Finished() error                                           { return nil }

// TestSimLiveDifferential runs the same tiny seeded workload through both
// Environment backends — RunPReduceSim on the virtual clock and
// RunPReduceWorker over in-memory transports — and asserts they compute the
// same training run: identical group-update counts, identical fast-forwarded
// iteration counters, and matching final weights.
//
// N = P = 2 keeps the group schedule timing-independent (every group is both
// workers, formed when the second signals, with weights ½/½), so the two
// substrates' different clocks cannot reorder the math; what remains is
// exactly what the engine layer claims to share — the step sequence and the
// aggregation rule.
func TestSimLiveDifferential(t *testing.T) {
	const (
		n     = 2
		iters = 12
		batch = 16
		seed  = int64(7)
	)
	ds, err := data.GaussianMixture(data.MixtureConfig{
		Classes: 4, Dim: 12, Examples: 800, Separation: 3.2, Noise: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8)
	spec := model.Spec{Inputs: 12, Hidden: []int{12}, Classes: 4}
	optCfg := optim.Config{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
	profile := model.Profile{Name: "diff", WireParams: 1000, BatchCompute: 0.1, BytesPerParam: 4}

	// Simulated run: stop on the update cap — iters lockstep group averages.
	simCfg := cluster.Config{
		N: n, Spec: spec, Seed: seed, Train: train, Test: test,
		BatchSize: batch, Optimizer: optCfg, Profile: profile,
		Hetero:    hetero.NewHomogeneous(n, profile.BatchCompute, 0.05, seed),
		Net:       netmodel.Default(),
		Threshold: 0.999, EvalEvery: 100 * iters, MaxUpdates: iters,
	}
	c, err := cluster.New(simCfg, "diff")
	if err != nil {
		t.Fatal(err)
	}
	simCtrl, err := controller.New(controller.Config{N: n, P: n})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := engine.RunPReduceSim(engine.NewSimEnv(c), simCtrl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != iters {
		t.Fatalf("sim recorded %d updates, want %d", res.Updates, iters)
	}

	// Live run: same initialization, same shards, same sampler streams.
	base := spec.Build(seed)
	init := base.Params().Clone()
	shards := train.Shard(n)
	world := transport.NewMem(n)
	liveCtrl, err := controller.New(controller.Config{N: n, P: n})
	if err != nil {
		t.Fatal(err)
	}
	sh := &diffShared{ctrl: liveCtrl, waiters: make(map[int]chan engine.Directive)}
	models := make([]model.Model, n)
	outs := make([]engine.Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		m := base.Clone()
		models[id] = m
		wg.Add(1)
		go func(id int, m model.Model) {
			defer wg.Done()
			w := &engine.LiveWorker{
				Env:       engine.NewLiveEnv(id, world[id], collective.Options{}, nil, nil),
				Model:     m,
				Opt:       optim.NewSGD(optCfg, m.NumParams()),
				Sampler:   data.NewSampler(shards[id], cluster.SamplerSeed(seed, int64(id))),
				Init:      init,
				Iters:     iters,
				BatchSize: batch,
			}
			outs[id], errs[id] = engine.RunPReduceWorker(w, &diffControl{sh: sh, id: id})
		}(id, m)
	}
	wg.Wait()

	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("live worker %d: %v", id, errs[id])
		}
		if outs[id].Groups != res.Updates {
			t.Errorf("worker %d completed %d live groups, sim recorded %d updates",
				id, outs[id].Groups, res.Updates)
		}
		if simIter := c.Workers[id].Iter; outs[id].Iter != simIter {
			t.Errorf("worker %d live iter %d, sim iter %d", id, outs[id].Iter, simIter)
		}
	}

	// Both substrates must land on the same model, coordinate for coordinate.
	for id := 0; id < n; id++ {
		simP := c.Workers[id].Params()
		liveP := models[id].Params()
		if len(simP) != len(liveP) {
			t.Fatalf("worker %d: param length %d vs %d", id, len(simP), len(liveP))
		}
		var maxDiff, norm float64
		for i := range simP {
			if d := math.Abs(simP[i] - liveP[i]); d > maxDiff {
				maxDiff = d
			}
			norm += simP[i] * simP[i]
		}
		if norm == 0 {
			t.Fatalf("worker %d: simulated model never trained", id)
		}
		if maxDiff > 1e-9 {
			t.Errorf("worker %d: sim and live weights diverge, max |Δ| = %g", id, maxDiff)
		}
	}
}
