package bufpool

import (
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 10, 10}, {(1 << 10) + 1, 11},
		{1 << maxClass, maxClass}, {(1 << maxClass) + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetFloat64LenCap(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 4096, 5000} {
		buf := GetFloat64(n)
		if len(buf) != n {
			t.Fatalf("len = %d, want %d", len(buf), n)
		}
		if c := cap(buf); c&(c-1) != 0 || c < n {
			t.Fatalf("cap = %d for n = %d: want power of two >= n", c, n)
		}
		PutFloat64(buf)
	}
}

func TestRoundTripReuse(t *testing.T) {
	// After a Put, the next same-class Get must hit the pool. sync.Pool may
	// theoretically drop entries under GC pressure, so retry a few times
	// before declaring failure.
	ok := false
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		buf := GetFloat64(1000)
		buf[0] = 42
		PutFloat64(buf)
		before := Float64Misses()
		again := GetFloat64(900) // same class (1024)
		ok = Float64Misses() == before
		PutFloat64(again)
	}
	if !ok {
		t.Error("GetFloat64 after PutFloat64 of the same class kept missing the pool")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	buf := GetBytes(4096)
	if len(buf) != 4096 || cap(buf) != 4096 {
		t.Fatalf("len/cap = %d/%d", len(buf), cap(buf))
	}
	PutBytes(buf)
	ok := false
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		before := BytesMisses()
		b := GetBytes(2049) // class 4096
		ok = BytesMisses() == before
		PutBytes(b)
	}
	if !ok {
		t.Error("GetBytes after PutBytes of the same class kept missing the pool")
	}
}

func TestPutRejectsForeignCapacities(t *testing.T) {
	// A non-power-of-two capacity must not enter the pool.
	PutFloat64(make([]float64, 3000)) // cap 3000: dropped
	PutBytes(make([]byte, 12))        // cap 12: dropped
	PutFloat64(nil)
	PutBytes(nil)
	// Oversized buffers are also dropped.
	PutFloat64(make([]float64, 0, 1<<maxClass*2))
}

func TestSteadyStateGetPutAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	// Warm one class, then measure: Get+Put of a warm class must not allocate.
	warm := GetFloat64(1 << 12)
	PutFloat64(warm)
	wb := GetBytes(1 << 12)
	PutBytes(wb)
	avg := testing.AllocsPerRun(100, func() {
		b := GetFloat64(1 << 12)
		PutFloat64(b)
		y := GetBytes(1 << 12)
		PutBytes(y)
	})
	if avg > 0.5 {
		t.Errorf("steady-state Get/Put allocates %.1f times per run, want 0", avg)
	}
}
