// Package bufpool provides size-classed buffer pools for the data plane's
// two hot buffer types: []float64 payload vectors and []byte wire frames.
// Buffers are recycled through sync.Pool under power-of-two size classes, so
// a steady-state communication loop — the ring collectives stepping over the
// in-process or TCP transport — performs zero heap allocations once the pools
// are warm. (Slice headers are recycled alongside the backing arrays: boxing
// a *[]T into sync.Pool's interface is pointer-shaped and allocation-free,
// whereas Put(&local) would heap-allocate a header per call.)
//
// Ownership rules (see DESIGN.md "Data plane"):
//
//   - A buffer obtained from Get* is owned by the caller until it either
//     passes ownership on (e.g. the transport hands a pooled payload to a
//     plain Recv caller, after which the buffer simply becomes garbage) or
//     returns it with Put*.
//   - Put* must only be called with buffers no other goroutine can still
//     reference. Double-Put is a caller bug and corrupts the pool.
//   - Put* accepts buffers of any origin (pool or not); capacities that are
//     not an exact size class are quietly dropped rather than poisoning one.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// maxClass bounds the pooled capacity: 1 << maxClass elements. Larger
// requests are served by plain make and dropped on Put (a 2^26-float buffer
// is already half a gigabyte).
const maxClass = 26

// classFor returns the smallest power-of-two class index whose capacity
// holds n elements, or -1 when n is out of pooled range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c > maxClass {
		return -1
	}
	return c
}

// capClass maps an exact power-of-two capacity to its class, or -1.
func capClass(c int) int {
	if c <= 0 || c&(c-1) != 0 {
		return -1
	}
	k := bits.Len(uint(c)) - 1
	if k > maxClass {
		return -1
	}
	return k
}

// Miss counters: the tests and the allocs-per-step CI gate use these to pin
// down steady-state reuse (a warm loop must stop missing).
var (
	f64Misses  atomic.Int64
	byteMisses atomic.Int64
)

// Float64Misses reports how many GetFloat64 calls fell through to a fresh
// allocation (pool miss or out-of-range size) since process start.
func Float64Misses() int64 { return f64Misses.Load() }

// BytesMisses reports how many GetBytes calls fell through to a fresh
// allocation since process start.
func BytesMisses() int64 { return byteMisses.Load() }

var (
	f64Pools   [maxClass + 1]sync.Pool
	f64Headers = sync.Pool{New: func() any { return new([]float64) }}
)

// GetFloat64 returns a []float64 of length n (capacity a power of two >= n)
// from the pool, allocating only on a miss. Contents are unspecified; callers
// that need zeros must clear it.
func GetFloat64(n int) []float64 {
	c := classFor(n)
	if c < 0 {
		f64Misses.Add(1)
		return make([]float64, n)
	}
	if v := f64Pools[c].Get(); v != nil {
		h := v.(*[]float64)
		buf := (*h)[:n]
		*h = nil
		f64Headers.Put(h)
		return buf
	}
	f64Misses.Add(1)
	return make([]float64, n, 1<<c)
}

// PutFloat64 recycles buf for a future GetFloat64. Buffers whose capacity is
// not an exact class size are dropped; nil is a no-op.
func PutFloat64(buf []float64) {
	c := capClass(cap(buf))
	if c < 0 {
		return
	}
	h := f64Headers.Get().(*[]float64)
	*h = buf[:cap(buf)]
	f64Pools[c].Put(h)
}

var (
	bytePools   [maxClass + 1]sync.Pool
	byteHeaders = sync.Pool{New: func() any { return new([]byte) }}
)

// GetBytes returns a []byte of length n (capacity a power of two >= n) from
// the pool, allocating only on a miss. Contents are unspecified.
func GetBytes(n int) []byte {
	c := classFor(n)
	if c < 0 {
		byteMisses.Add(1)
		return make([]byte, n)
	}
	if v := bytePools[c].Get(); v != nil {
		h := v.(*[]byte)
		buf := (*h)[:n]
		*h = nil
		byteHeaders.Put(h)
		return buf
	}
	byteMisses.Add(1)
	return make([]byte, n, 1<<c)
}

// PutBytes recycles buf; non-class capacities are dropped, nil is a no-op.
func PutBytes(buf []byte) {
	c := capClass(cap(buf))
	if c < 0 {
		return
	}
	h := byteHeaders.Get().(*[]byte)
	*h = buf[:cap(buf)]
	bytePools[c].Put(h)
}
