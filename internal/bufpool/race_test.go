//go:build race

package bufpool

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates and would fail the
// allocation-gate assertions.
const raceEnabled = true
