package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run processed %d events", n)
	}
	if !sort.Float64sAreSorted(got) || len(got) != 3 {
		t.Fatalf("order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock at %v, want 3", e.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var trace []Time
	e.After(1, func() {
		trace = append(trace, e.Now())
		e.After(2, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("trace: %v", trace)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(4, func() {})
	})
	e.Run()
}

func TestStopResume(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	if n := e.Run(); n != 2 {
		t.Fatalf("first Run processed %d", n)
	}
	if !e.Stopped() || e.Pending() != 3 {
		t.Fatalf("stopped=%v pending=%d", e.Stopped(), e.Pending())
	}
	if n := e.Run(); n != 3 {
		t.Fatalf("resume processed %d", n)
	}
	if count != 5 {
		t.Fatalf("count=%d", count)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if n := e.RunUntil(2.5); n != 2 {
		t.Fatalf("RunUntil processed %d", n)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock %v, want 2.5", e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	// RunUntil past the last event advances the clock.
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Fatalf("clock %v, want 10", e.Now())
	}
}

func TestStepsCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Fatalf("steps=%d", e.Steps())
	}
}

func TestStreamDeterminismAndIndependence(t *testing.T) {
	a := Stream(1, 2)
	b := Stream(1, 2)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (base,id) stream diverged")
		}
	}
	c := Stream(1, 3)
	d := Stream(2, 2)
	same13, same22 := true, true
	e := Stream(1, 2)
	for i := 0; i < 10; i++ {
		v := e.Int63()
		if c.Int63() != v {
			same13 = false
		}
		if d.Int63() != v {
			same22 = false
		}
	}
	if same13 || same22 {
		t.Fatal("distinct streams produced identical sequences")
	}
}

func TestResourceFIFO(t *testing.T) {
	var e Engine
	r := NewResource(&e)
	var done []Time
	// Three requests submitted at t=0 with 1s service each serialize.
	e.At(0, func() {
		for i := 0; i < 3; i++ {
			r.Schedule(1, func() { done = append(done, e.Now()) })
		}
	})
	e.Run()
	want := []Time{1, 2, 3}
	if len(done) != 3 {
		t.Fatalf("done=%v", done)
	}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("done=%v want %v", done, want)
		}
	}
	if r.Busy() != 3 {
		t.Fatalf("busy=%v", r.Busy())
	}
}

func TestResourceIdleGap(t *testing.T) {
	var e Engine
	r := NewResource(&e)
	var finish Time
	e.At(0, func() { r.Schedule(1, nil) })
	e.At(5, func() { r.Schedule(1, func() { finish = e.Now() }) })
	e.Run()
	if finish != 6 {
		t.Fatalf("second request finished at %v, want 6 (idle gap preserved)", finish)
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	var e Engine
	r := NewResource(&e)
	e.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.Schedule(-1, nil)
	})
	e.Run()
}

// Property: any multiset of event times fires sorted.
func TestQuickOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		var e Engine
		var got []Time
		for _, raw := range times {
			at := Time(raw) / 100
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource completes requests in submission order and never
// overlaps service intervals.
func TestQuickResourceSerialization(t *testing.T) {
	f := func(services []uint8) bool {
		var e Engine
		r := NewResource(&e)
		var ends []Time
		e.At(0, func() {
			for _, s := range services {
				r.Schedule(float64(s)/10, func() { ends = append(ends, e.Now()) })
			}
		})
		e.Run()
		if len(ends) != len(services) {
			return false
		}
		var sum Time
		for i, s := range services {
			sum += Time(s) / 10
			if ends[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving At and After calls from within handlers preserves
// global time ordering and processes every scheduled event exactly once.
func TestQuickNestedScheduling(t *testing.T) {
	f := func(delays []uint8) bool {
		var e Engine
		fired := 0
		expected := len(delays)
		var last Time = -1
		for _, d := range delays {
			d := Time(d) / 50
			e.After(d, func() {
				if e.Now() < last {
					expected = -1 // ordering violation
				}
				last = e.Now()
				fired++
			})
		}
		e.Run()
		return fired == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
