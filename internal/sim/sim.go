// Package sim provides the deterministic discrete-event engine that stands in
// for the paper's physical cluster. Virtual time is a float64 in seconds;
// events fire in (time, insertion) order, so identical seeds give identical
// runs regardless of host scheduling. The engine is single-goroutine by
// design: handlers run sequentially, which keeps every strategy's state
// machine free of locks and makes heterogeneity experiments reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in seconds.
type Time = float64

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	steps   uint64
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it always indicates a broken strategy state machine.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the current handler. Pending events stay
// queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// Run fires events in order until the queue drains or Stop is called.
// It returns the number of events processed in this call.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		n++
		e.steps++
	}
	return n
}

// RunUntil fires events with time <= t (or until Stop), then advances the
// clock to t if it is ahead. It returns the number of events processed.
func (e *Engine) RunUntil(t Time) int {
	e.stopped = false
	n := 0
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		n++
		e.steps++
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	return n
}

// Stream returns a deterministic RNG derived from base and id. Each worker,
// sampler and strategy takes its own stream so adding a consumer never
// perturbs the draws of another.
func Stream(base int64, id int64) *rand.Rand {
	// SplitMix64-style mix keeps nearby (base, id) pairs uncorrelated.
	z := uint64(base)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Resource is a single FIFO server with deterministic service order: requests
// are processed back to back in submission order. It models serialized
// shared links such as a parameter server's NIC, where concurrent pushes
// queue behind each other (the incast bottleneck of §2.2).
type Resource struct {
	eng  *Engine
	free Time // when the server finishes its current backlog
	busy float64
}

// NewResource returns a resource bound to eng.
func NewResource(eng *Engine) *Resource { return &Resource{eng: eng} }

// Schedule enqueues a request needing service seconds of server time and
// calls done when it completes. It returns the completion time.
func (r *Resource) Schedule(service float64, done func()) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	start := r.eng.Now()
	if r.free > start {
		start = r.free
	}
	r.free = start + service
	r.busy += service
	end := r.free
	if done != nil {
		r.eng.At(end, done)
	}
	return end
}

// Busy returns the total service time scheduled so far (utilization numerator).
func (r *Resource) Busy() float64 { return r.busy }
