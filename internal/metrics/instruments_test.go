package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(8)
	// 50×0, 30×1, 15×2, 5×3 — a typical staleness shape.
	for i, c := range []int{50, 30, 15, 5} {
		for j := 0; j < c; j++ {
			h.Observe(int64(i))
		}
	}
	if h.Count() != 100 || h.Max() != 3 || h.Sum() != 30+2*15+3*5 {
		t.Fatalf("count=%d max=%d sum=%d", h.Count(), h.Max(), h.Sum())
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0, 0}, {0.5, 0}, {0.51, 1}, {0.8, 1}, {0.95, 2}, {0.96, 3}, {1, 3},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); got != 0.75 {
		t.Errorf("Mean = %v, want 0.75", got)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram(0) // selects span 64
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-5) // clamps to 0
	counts, overflow := h.Buckets()
	if counts[0] != 1 || overflow != 0 {
		t.Fatalf("negative observation not clamped: %v / %d", counts[0], overflow)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(2)
	h.Observe(100) // beyond span: overflow bucket
	h.Observe(100)
	_, overflow := h.Buckets()
	if overflow != 2 {
		t.Fatalf("overflow = %d, want 2", overflow)
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d, want 100", h.Max())
	}
	// Overflow observations resolve quantiles to Max.
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %d, want 100", got)
	}
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(4)
	if _, _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last point")
	}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(10*i))
	}
	if s.Len() != 4 || s.Evicted() != 6 {
		t.Fatalf("len=%d evicted=%d", s.Len(), s.Evicted())
	}
	ts, vs := s.Points()
	for i := range ts {
		if want := float64(6 + i); ts[i] != want || vs[i] != 10*want {
			t.Fatalf("point %d = (%v, %v), want (%v, %v)", i, ts[i], vs[i], want, 10*want)
		}
	}
	if tLast, vLast, ok := s.Last(); !ok || tLast != 9 || vLast != 90 {
		t.Fatalf("Last = (%v, %v, %v)", tLast, vLast, ok)
	}
}

func TestInstrumentsNilSafe(t *testing.T) {
	var in *Instruments
	in.ObserveStaleness(1)
	in.RecordQueueDepth(0, 3)
	in.AddBarrierWait(0, 1)
	in.SetSyncGauges(2, 1)
	in.CountGroup(true)
	in.CountDeferral()
	in.AddComms(CommStats{Ops: 1})
	in.AddGroupRelease([]int{0, 1}, []float64{0.5, 0}, 1)
	snap := in.Snapshot()
	if snap == nil || snap.Staleness == nil || snap.Staleness.Count() != 0 {
		t.Fatal("nil instruments snapshot not empty")
	}
}

func TestInstrumentsSnapshot(t *testing.T) {
	in := NewInstruments(3)
	in.ObserveStaleness(0)
	in.ObserveStaleness(2)
	in.RecordQueueDepth(1.5, 4)
	in.AddBarrierWait(1, 0.25)
	in.AddBarrierWait(1, 0.25)
	in.AddBarrierWait(7, 1)  // out of range: ignored
	in.AddBarrierWait(0, -1) // non-positive: ignored
	in.SetSyncGauges(3, 1)
	in.CountGroup(false)
	in.CountGroup(true)
	in.CountDeferral()
	in.AddComms(CommStats{Ops: 2, BytesSent: 100, ReduceScatterS: 0.5})
	in.AddComms(CommStats{Ops: 1, AllGatherS: 0.25})

	snap := in.Snapshot()
	if snap.Staleness.Count() != 2 || snap.Staleness.Max() != 2 {
		t.Fatalf("staleness snapshot: count=%d max=%d", snap.Staleness.Count(), snap.Staleness.Max())
	}
	if snap.QueueDepthSample != 4 || snap.QueueDepthNow != 1.5 {
		t.Fatalf("queue depth sample (%v @ %v)", snap.QueueDepthSample, snap.QueueDepthNow)
	}
	if len(snap.BarrierWait) != 3 || snap.BarrierWait[1] != 0.5 || snap.BarrierWait[0] != 0 {
		t.Fatalf("barrier wait %v", snap.BarrierWait)
	}
	if snap.MaxContactAge != 3 || snap.SyncComponents != 1 {
		t.Fatalf("sync gauges (%d, %d)", snap.MaxContactAge, snap.SyncComponents)
	}
	if snap.GroupsFormed != 2 || snap.Interventions != 1 || snap.Deferrals != 1 {
		t.Fatalf("counters (%d, %d, %d)", snap.GroupsFormed, snap.Interventions, snap.Deferrals)
	}
	if snap.Comms.Ops != 3 || snap.Comms.BytesSent != 100 ||
		snap.Comms.ReduceScatterS != 0.5 || snap.Comms.AllGatherS != 0.25 {
		t.Fatalf("comms %+v", snap.Comms)
	}

	// The snapshot is a deep copy: mutating the live instruments afterwards
	// must not change it.
	in.ObserveStaleness(5)
	if snap.Staleness.Count() != 2 {
		t.Fatal("snapshot histogram aliases the live one")
	}
}

func TestAddGroupRelease(t *testing.T) {
	in := NewInstruments(4)
	// Worker 2 arrives last: members 0 and 1 each waited 0.4s and 0.2s
	// longer than it did, so 2 is charged 0.6s of their time.
	in.AddGroupRelease([]int{0, 1, 2}, []float64{0.4, 0.2, 0}, 2)
	snap := in.Snapshot()
	if math.Abs(snap.Blame[2]-0.6) > 1e-12 {
		t.Fatalf("critical blame %v, want 0.6", snap.Blame[2])
	}
	if snap.Blame[0] != 0 || snap.Blame[1] != 0 {
		t.Fatalf("non-critical blame %v %v, want 0", snap.Blame[0], snap.Blame[1])
	}
	if snap.CriticalN[2] != 1 || snap.CriticalN[0] != 0 {
		t.Fatalf("critical counts %v", snap.CriticalN)
	}
	if snap.GroupWait[0] != 0.4 || snap.GroupWait[1] != 0.2 || snap.GroupWait[2] != 0 {
		t.Fatalf("group waits %v", snap.GroupWait)
	}
	if snap.GroupCount[0] != 1 || snap.GroupCount[3] != 0 {
		t.Fatalf("group counts %v", snap.GroupCount)
	}
	if snap.BlameEWMA[2] <= 0 || snap.BlameEWMA[0] != 0 {
		t.Fatalf("blame EWMA %v", snap.BlameEWMA)
	}

	// A second group with a different critical member moves the EWMA:
	// worker 2's recent blame decays, worker 0's rises.
	prev := snap.BlameEWMA[2]
	in.AddGroupRelease([]int{0, 2}, []float64{0, 0.3}, 0)
	snap = in.Snapshot()
	if snap.Blame[0] != 0.3 {
		t.Fatalf("blame[0] = %v, want 0.3", snap.Blame[0])
	}
	if snap.BlameEWMA[2] >= prev {
		t.Fatalf("straggler EWMA did not decay: %v -> %v", prev, snap.BlameEWMA[2])
	}
	if snap.BlameEWMA[0] <= 0 {
		t.Fatalf("new straggler EWMA %v, want > 0", snap.BlameEWMA[0])
	}

	// Degenerate inputs are ignored or tolerated.
	in.AddGroupRelease(nil, nil, 0)
	in.AddGroupRelease([]int{0}, []float64{1, 2}, 0)       // length mismatch
	in.AddGroupRelease([]int{9}, []float64{1}, 9)          // out of range
	in.AddGroupRelease([]int{1, 3}, []float64{0.1, 0}, -1) // unknown critical
	snap2 := in.Snapshot()
	if snap2.Blame[0] != snap.Blame[0] {
		t.Fatal("degenerate release changed blame")
	}
	if math.Abs(snap2.GroupWait[1]-(0.2+0.1)) > 1e-12 {
		t.Fatalf("unknown-critical release must still record waits: %v", snap2.GroupWait)
	}
	if snap2.CriticalN[1] != 0 && snap2.CriticalN[3] != 0 {
		t.Fatal("unknown-critical release charged someone")
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	in := NewInstruments(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in.ObserveStaleness(int64(i % 5))
				in.RecordQueueDepth(float64(i), 2)
				in.AddBarrierWait(g%4, 0.001)
				in.CountGroup(i%7 == 0)
				_ = in.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := in.Snapshot().Staleness.Count(); got != 8*500 {
		t.Fatalf("staleness count %d, want %d", got, 8*500)
	}
}
