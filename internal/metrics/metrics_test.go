package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTrackerConvergence(t *testing.T) {
	tr := NewTracker("X", "w", 0.9)
	tr.Update(1.0)
	tr.Update(2.0)
	if tr.Observe(2.0, 0.5) {
		t.Fatal("converged below threshold")
	}
	tr.Update(3.0)
	if !tr.Observe(3.0, 0.95) {
		t.Fatal("did not converge at threshold")
	}
	r := tr.Result()
	if !r.Converged || r.RunTime != 3.0 || r.Updates != 3 {
		t.Fatalf("result: %+v", r)
	}
	if got := r.PerUpdate(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("per-update %v", got)
	}
	if len(r.Curve) != 2 {
		t.Fatalf("curve length %d", len(r.Curve))
	}
}

func TestTrackerFrozenAfterConvergence(t *testing.T) {
	tr := NewTracker("X", "w", 0.5)
	tr.Update(1)
	tr.Observe(1, 0.6)
	tr.Update(10)
	if tr.Observe(10, 0.9) {
		t.Fatal("second convergence signal")
	}
	r := tr.Result()
	if r.Updates != 1 || r.RunTime != 1 {
		t.Fatalf("post-convergence updates leaked in: %+v", r)
	}
}

func TestTrackerCutoff(t *testing.T) {
	tr := NewTracker("X", "w", 0.99)
	tr.Update(1)
	tr.Observe(1, 0.3)
	tr.Cutoff(50)
	r := tr.Result()
	if r.Converged || r.RunTime != 50 {
		t.Fatalf("cutoff result: %+v", r)
	}
	if !strings.Contains(r.String(), "N/A") {
		t.Fatalf("unconverged result should render N/A: %s", r.String())
	}
	// Cutoff after convergence is a no-op.
	tr2 := NewTracker("X", "w", 0.5)
	tr2.Update(2)
	tr2.Observe(2, 0.9)
	tr2.Cutoff(99)
	if tr2.Result().RunTime != 2 {
		t.Fatal("cutoff overwrote converged run time")
	}
}

func TestPerUpdateZeroUpdates(t *testing.T) {
	r := &Result{RunTime: 10}
	if r.PerUpdate() != 0 {
		t.Fatal("per-update with zero updates should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Result{RunTime: 100}
	fast := &Result{RunTime: 50}
	if got := Speedup(base, fast); math.Abs(got-2) > 1e-12 {
		t.Fatalf("speedup %v", got)
	}
	if Speedup(base, &Result{}) != 0 {
		t.Fatal("zero run time should give 0 speedup")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Strategy: "CON P=3", RunTime: 423, Updates: 3030, FinalAccuracy: 0.91, Converged: true}
	s := r.String()
	for _, want := range []string{"CON P=3", "423", "3030", "converged"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestWriteCurvesCSV(t *testing.T) {
	r := &Result{Strategy: "AR", Curve: []Point{{Time: 1.5, Updates: 10, Accuracy: 0.5}, {Time: 3, Updates: 20, Accuracy: 0.8}}}
	var buf strings.Builder
	if err := WriteCurvesCSV(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"strategy,time_s,updates,accuracy", "AR,1.500,10,0.50000", "AR,3.000,20,0.80000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Count(strings.TrimSpace(out), "\n") + 1
	if lines != 3 {
		t.Fatalf("lines: %d", lines)
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	r := &Result{Strategy: "DYN P=3", Workload: "vgg19/cifar10", Converged: true,
		RunTime: 100, Updates: 400, FinalAccuracy: 0.91}
	var buf strings.Builder
	if err := WriteSummaryCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per_update_s", "DYN P=3,vgg19/cifar10,true,100.000,400,0.25000,0.91000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
