package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCurvesCSV exports the accuracy-vs-time curves of one or more runs as
// CSV with columns strategy,time_s,updates,accuracy — the format the paper's
// convergence figures (7 and 10) plot directly.
func WriteCurvesCSV(w io.Writer, results ...*Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "time_s", "updates", "accuracy"}); err != nil {
		return err
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		for _, p := range r.Curve {
			rec := []string{
				r.Strategy,
				strconv.FormatFloat(p.Time, 'f', 3, 64),
				strconv.Itoa(p.Updates),
				strconv.FormatFloat(p.Accuracy, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryCSV exports one row per run with the three Table 1 metrics.
func WriteSummaryCSV(w io.Writer, results ...*Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "workload", "converged", "run_time_s", "updates", "per_update_s", "final_accuracy",
		"coll_ops", "bytes_sent", "bytes_recv", "segments", "retries", "timeouts", "aborts", "reduce_scatter_s", "all_gather_s"}); err != nil {
		return err
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		rec := []string{
			r.Strategy,
			r.Workload,
			fmt.Sprintf("%t", r.Converged),
			strconv.FormatFloat(r.RunTime, 'f', 3, 64),
			strconv.Itoa(r.Updates),
			strconv.FormatFloat(r.PerUpdate(), 'f', 5, 64),
			strconv.FormatFloat(r.FinalAccuracy, 'f', 5, 64),
			strconv.FormatInt(r.Comms.Ops, 10),
			strconv.FormatInt(r.Comms.BytesSent, 10),
			strconv.FormatInt(r.Comms.BytesRecv, 10),
			strconv.FormatInt(r.Comms.Segments, 10),
			strconv.FormatInt(r.Comms.Retries, 10),
			strconv.FormatInt(r.Comms.Timeouts, 10),
			strconv.FormatInt(r.Comms.Aborts, 10),
			strconv.FormatFloat(r.Comms.ReduceScatterS, 'f', 3, 64),
			strconv.FormatFloat(r.Comms.AllGatherS, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
