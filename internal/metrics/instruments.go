package metrics

// Live instruments: the first-class, queryable counterparts of the trace
// events. Where Result/CommStats summarize a finished run, Instruments
// are sampled while the run is in flight — the telemetry endpoint
// renders them as Prometheus text, and the controller/runtime update
// them as decisions happen. All methods on Instruments are safe for
// concurrent use; Histogram and Series on their own are not (wrap them
// or confine them to one goroutine).

import (
	"math"
	"sync"
)

// Histogram counts small non-negative integer observations exactly:
// values in [0, span) land in per-value buckets, larger ones in one
// overflow bucket. Staleness values are small by construction (the
// group filter bounds them), so exact counting beats log buckets.
type Histogram struct {
	counts   []int64
	overflow int64
	count    int64
	sum      int64
	max      int64
}

// NewHistogram returns a histogram with per-value buckets for [0, span).
// span <= 0 selects 64.
func NewHistogram(span int) *Histogram {
	if span <= 0 {
		span = 64
	}
	return &Histogram{counts: make([]int64, span)}
}

// Observe records v (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if int(v) < len(h.counts) {
		h.counts[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest observation (0 before any).
func (h *Histogram) Max() int64 { return h.max }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average observation (0 before any).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the smallest value v such that at least q of the
// observations are <= v. Overflow observations resolve to Max. q is
// clamped to [0, 1].
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for v, c := range h.counts {
		cum += c
		if cum >= rank {
			return int64(v)
		}
	}
	return h.max
}

// Buckets returns a copy of the per-value counts plus the overflow count.
func (h *Histogram) Buckets() (counts []int64, overflow int64) {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out, h.overflow
}

// clone deep-copies the histogram.
func (h *Histogram) clone() *Histogram {
	if h == nil {
		return nil
	}
	counts, _ := h.Buckets()
	return &Histogram{counts: counts, overflow: h.overflow, count: h.count, sum: h.sum, max: h.max}
}

// Series is a capped time series: it retains the most recent cap points
// in a ring, counting how many older points were evicted.
type Series struct {
	t, v    []float64
	next    int
	wrapped bool
	evicted int64
}

// DefaultSeriesCap bounds a series created with cap <= 0.
const DefaultSeriesCap = 4096

// NewSeries returns a series retaining the most recent cap points.
func NewSeries(cap int) *Series {
	if cap <= 0 {
		cap = DefaultSeriesCap
	}
	return &Series{t: make([]float64, cap), v: make([]float64, cap)}
}

// Append records point (t, v), evicting the oldest when full.
func (s *Series) Append(t, v float64) {
	if s.wrapped {
		s.evicted++
	}
	s.t[s.next] = t
	s.v[s.next] = v
	s.next++
	if s.next == len(s.t) {
		s.next = 0
		s.wrapped = true
	}
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	if s.wrapped {
		return len(s.t)
	}
	return s.next
}

// Evicted returns the number of points dropped after the ring filled.
func (s *Series) Evicted() int64 { return s.evicted }

// Last returns the most recent point, or ok=false on an empty series.
func (s *Series) Last() (t, v float64, ok bool) {
	if s.next == 0 && !s.wrapped {
		return 0, 0, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.t) - 1
	}
	return s.t[i], s.v[i], true
}

// Points returns copies of the retained (t, v) pairs, oldest first.
func (s *Series) Points() (ts, vs []float64) {
	n := s.Len()
	ts = make([]float64, 0, n)
	vs = make([]float64, 0, n)
	if s.wrapped {
		ts = append(ts, s.t[s.next:]...)
		vs = append(vs, s.v[s.next:]...)
	}
	ts = append(ts, s.t[:s.next]...)
	vs = append(vs, s.v[:s.next]...)
	return ts, vs
}

// Instruments is the thread-safe bundle of live instruments one run
// maintains: the staleness histogram (per group member, at formation),
// per-worker barrier-wait totals (time spent waiting for the controller
// and for group peers instead of computing), the ready-queue-depth time
// series, the sync-graph connectivity gauges (the quantity group-frozen
// avoidance bounds), and a running CommStats total.
type Instruments struct {
	mu sync.Mutex

	staleness   *Histogram
	queueDepth  *Series
	barrierWait []float64 // per-worker cumulative seconds

	maxContactAge  int64 // groups since the most-estranged alive pair last met (-1: some pair never met)
	syncComponents int64 // connected components of the windowed sync-graph

	groupsFormed  int64
	interventions int64
	deferrals     int64

	epoch int64 // membership epoch at the latest controller bump

	policyP          int64   // group size at the latest policy decision (0: no policy)
	policyAlpha      float64 // dynamic-weight decay in effect at that decision
	policyDeviations int64   // decisions that deviated from the static default

	// Online blame estimator, fed by the controller at every group
	// release (see AddGroupRelease): per-worker cumulative
	// arrived-but-waiting seconds, cumulative blame (seconds of other
	// members' time the worker consumed by arriving last), counts of
	// groups where the worker was the last arrival, and an EWMA of the
	// worker's per-group blame — the "recent straggler" signal the
	// scoreboard ranks by.
	groupWait  []float64
	blame      []float64
	criticalN  []int64
	blameEWMA  []float64
	groupCount []int64 // groups each worker was a member of

	comms CommStats
}

// blameEWMADecay is the per-group decay of the recent-blame EWMA: each
// new group g updates ewma = decay·ewma + (1−decay)·blame(g). ~0.9 keeps
// roughly the last twenty groups in view.
const blameEWMADecay = 0.9

// NewInstruments returns instruments for an n-worker run.
func NewInstruments(n int) *Instruments {
	return &Instruments{
		staleness:   NewHistogram(64),
		queueDepth:  NewSeries(0),
		barrierWait: make([]float64, n),
		groupWait:   make([]float64, n),
		blame:       make([]float64, n),
		criticalN:   make([]int64, n),
		blameEWMA:   make([]float64, n),
		groupCount:  make([]int64, n),
	}
}

// ObserveStaleness records one member's staleness at group formation.
// Nil-safe.
func (in *Instruments) ObserveStaleness(v int64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.staleness.Observe(v)
	in.mu.Unlock()
}

// RecordQueueDepth appends a ready-queue-depth sample at clock time now.
// Nil-safe.
func (in *Instruments) RecordQueueDepth(now float64, depth int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.queueDepth.Append(now, float64(depth))
	in.mu.Unlock()
}

// AddBarrierWait adds sec seconds to worker w's barrier-wait total.
// Nil-safe; out-of-range workers are ignored.
func (in *Instruments) AddBarrierWait(w int, sec float64) {
	if in == nil || sec <= 0 {
		return
	}
	in.mu.Lock()
	if w >= 0 && w < len(in.barrierWait) {
		in.barrierWait[w] += sec
	}
	in.mu.Unlock()
}

// SetSyncGauges updates the sync-graph connectivity gauges: maxAge is
// the groups-since-last-contact of the most estranged alive pair (-1
// when some pair has never met), components the number of connected
// components of the windowed graph. Nil-safe.
func (in *Instruments) SetSyncGauges(maxAge, components int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.maxContactAge = int64(maxAge)
	in.syncComponents = int64(components)
	in.mu.Unlock()
}

// CountGroup counts one formed group, with its intervention flag.
// Nil-safe.
func (in *Instruments) CountGroup(bridged bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.groupsFormed++
	if bridged {
		in.interventions++
	}
	in.mu.Unlock()
}

// CountDeferral counts one frozen-avoidance deferral. Nil-safe.
func (in *Instruments) CountDeferral() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.deferrals++
	in.mu.Unlock()
}

// RecordPolicyDecision records one formation-policy decision: p the
// chosen group size, alpha the dynamic-weight decay in effect, deviated
// whether the decision differs from the static default (what the
// controller would do with no policy attached). Nil-safe.
func (in *Instruments) RecordPolicyDecision(p int, alpha float64, deviated bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.policyP = int64(p)
	in.policyAlpha = alpha
	if deviated {
		in.policyDeviations++
	}
	in.mu.Unlock()
}

// AddGroupRelease folds one group release into the online blame
// estimator. members are the released workers, waits their
// arrival-to-release waiting seconds (same order, clamped at 0), and
// critical the member that arrived last (-1 when unknown — e.g. a
// single-member solo release). The critical member is charged the sum
// of the other members' arrival gaps relative to its own arrival:
// blame_c += Σ_{i≠c} max(0, wait_i − wait_c) — the seconds of other
// workers' time its lateness consumed. Every member's blame EWMA decays
// toward its per-group charge, so the scoreboard's "recent" column
// tracks the current straggler rather than run-cumulative history.
// Nil-safe; out-of-range workers are ignored.
func (in *Instruments) AddGroupRelease(members []int, waits []float64, critical int) {
	if in == nil || len(members) == 0 || len(members) != len(waits) {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	critWait := 0.0
	if critical >= 0 {
		for i, w := range members {
			if w == critical {
				critWait = waits[i]
			}
		}
	}
	induced := 0.0
	if critical >= 0 {
		for i, w := range members {
			if w == critical {
				continue
			}
			if d := waits[i] - critWait; d > 0 {
				induced += d
			}
		}
	}
	for i, w := range members {
		if w < 0 || w >= len(in.groupWait) {
			continue
		}
		in.groupCount[w]++
		if waits[i] > 0 {
			in.groupWait[w] += waits[i]
		}
		charge := 0.0
		if w == critical {
			charge = induced
			in.criticalN[w]++
			in.blame[w] += induced
		}
		in.blameEWMA[w] = blameEWMADecay*in.blameEWMA[w] + (1-blameEWMADecay)*charge
	}
}

// SetEpoch records the controller's membership epoch so snapshots (and
// the watchdog's epoch-churn rule) can see elastic reconfiguration
// without reaching into the controller. Nil-safe.
func (in *Instruments) SetEpoch(epoch uint64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.epoch = int64(epoch)
	in.mu.Unlock()
}

// AddComms folds a data-plane delta into the running total. Nil-safe.
func (in *Instruments) AddComms(s CommStats) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.comms.Add(s)
	in.mu.Unlock()
}

// InstrumentsSnapshot is a consistent copy of every instrument, safe to
// render without holding the run's locks.
type InstrumentsSnapshot struct {
	Staleness        *Histogram
	QueueDepthTS     []float64
	QueueDepthV      []float64
	BarrierWait      []float64
	MaxContactAge    int64
	SyncComponents   int64
	GroupsFormed     int64
	Interventions    int64
	Deferrals        int64
	Epoch            int64
	PolicyP          int64
	PolicyAlpha      float64
	PolicyDeviations int64
	GroupWait        []float64
	Blame            []float64
	BlameEWMA        []float64
	CriticalN        []int64
	GroupCount       []int64
	Comms            CommStats
	QueueDepthNow    float64
	QueueDepthSample float64
}

// Snapshot returns a deep copy of the current instrument state. Nil-safe
// (returns an empty snapshot).
func (in *Instruments) Snapshot() *InstrumentsSnapshot {
	if in == nil {
		return &InstrumentsSnapshot{Staleness: NewHistogram(1)}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ts, vs := in.queueDepth.Points()
	bw := make([]float64, len(in.barrierWait))
	copy(bw, in.barrierWait)
	copyF := func(src []float64) []float64 {
		out := make([]float64, len(src))
		copy(out, src)
		return out
	}
	copyI := func(src []int64) []int64 {
		out := make([]int64, len(src))
		copy(out, src)
		return out
	}
	snap := &InstrumentsSnapshot{
		Staleness:      in.staleness.clone(),
		QueueDepthTS:   ts,
		QueueDepthV:    vs,
		BarrierWait:    bw,
		GroupWait:      copyF(in.groupWait),
		Blame:          copyF(in.blame),
		BlameEWMA:      copyF(in.blameEWMA),
		CriticalN:      copyI(in.criticalN),
		GroupCount:     copyI(in.groupCount),
		MaxContactAge:  in.maxContactAge,
		SyncComponents: in.syncComponents,
		GroupsFormed:   in.groupsFormed,
		Interventions:  in.interventions,
		Deferrals:      in.deferrals,
		Epoch:          in.epoch,

		PolicyP:          in.policyP,
		PolicyAlpha:      in.policyAlpha,
		PolicyDeviations: in.policyDeviations,

		Comms: in.comms,
	}
	if t, v, ok := in.queueDepth.Last(); ok {
		snap.QueueDepthNow, snap.QueueDepthSample = t, v
	}
	return snap
}
