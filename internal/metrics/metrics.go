// Package metrics defines the measurements the paper's evaluation reports:
// total run time to a convergence threshold, number of updates until
// convergence (statistical efficiency), average time per update (hardware
// efficiency), and accuracy-vs-time curves for the convergence figures.
package metrics

import "fmt"

// Point is one evaluation of the cluster-average model.
type Point struct {
	Time     float64 // virtual seconds
	Updates  int     // updates completed when evaluated
	Accuracy float64 // test accuracy of the averaged model
}

// CommStats aggregates a run's data-plane traffic. The live runtime measures
// it directly from its collectives (collective.OpStats); the simulator models
// it from the message counts of each synchronization primitive. Segment and
// per-phase fields are only populated by measured (live) runs.
type CommStats struct {
	Ops       int64 // collective operations executed
	BytesSent int64 // payload bytes sent across all workers
	BytesRecv int64 // payload bytes received across all workers
	Segments  int64 // pipeline segments shipped (live runtime only)
	// Retries, Timeouts, and Aborts count the robustness events of the run's
	// collectives: attempts re-run after a receive deadline expired, receive
	// deadlines that fired, and collectives abandoned after exhausting their
	// retry budget. The live runtime measures them; the simulator models them
	// from its partition schedule.
	Retries  int64
	Timeouts int64
	Aborts   int64
	// ReduceScatterS and AllGatherS are cumulative seconds spent in each
	// ring phase across all workers. The live runtime measures them from
	// its collectives (wall clock); the simulator models them from the
	// α–β ring cost: each executed ring among g members charges
	// g·ring/2 virtual seconds per phase (the two phases are symmetric —
	// (g−1) steps each), so live-vs-sim phase-time comparison works.
	ReduceScatterS float64
	AllGatherS     float64
}

// Add folds o into s.
func (s *CommStats) Add(o CommStats) {
	s.Ops += o.Ops
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Segments += o.Segments
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.Aborts += o.Aborts
	s.ReduceScatterS += o.ReduceScatterS
	s.AllGatherS += o.AllGatherS
}

// Result summarizes one training run.
type Result struct {
	Strategy  string
	Workload  string
	Converged bool
	// RunTime is the virtual seconds until the threshold was reached, or
	// until the run was cut off (MaxTime/MaxUpdates) if it never converged.
	RunTime float64
	// Updates is the number of synchronization updates until convergence
	// (or cutoff): one per All-Reduce round, per P-Reduce group operation,
	// per PS push, per AD-PSGD pairwise average.
	Updates int
	// FinalAccuracy is the last evaluated accuracy.
	FinalAccuracy float64
	// Curve is the accuracy trajectory.
	Curve []Point
	// Comms is the run's aggregate data-plane traffic.
	Comms CommStats
}

// PerUpdate returns the average seconds per update, the paper's hardware
// efficiency metric. It returns 0 before any update completes.
func (r *Result) PerUpdate() float64 {
	if r.Updates == 0 {
		return 0
	}
	return r.RunTime / float64(r.Updates)
}

// String renders a one-line summary.
func (r *Result) String() string {
	status := "converged"
	if !r.Converged {
		status = "N/A"
	}
	return fmt.Sprintf("%-18s runtime=%8.1fs updates=%6d per-update=%7.3fs acc=%.3f (%s)",
		r.Strategy, r.RunTime, r.Updates, r.PerUpdate(), r.FinalAccuracy, status)
}

// Tracker accumulates a run's metrics. Trainers call Update after every
// synchronization and Observe after every evaluation; Done seals the result.
type Tracker struct {
	res       Result
	threshold float64
}

// NewTracker returns a tracker targeting the given test-accuracy threshold.
func NewTracker(strategy, workload string, threshold float64) *Tracker {
	return &Tracker{
		res:       Result{Strategy: strategy, Workload: workload},
		threshold: threshold,
	}
}

// Update records one completed synchronization update at virtual time now.
func (t *Tracker) Update(now float64) {
	if t.res.Converged {
		return
	}
	t.res.Updates++
	t.res.RunTime = now
}

// Updates returns the updates recorded so far.
func (t *Tracker) Updates() int { return t.res.Updates }

// AddComms folds one synchronization primitive's traffic into the run total.
// Unlike Update it keeps accumulating after convergence: traffic already on
// the wire is still traffic.
func (t *Tracker) AddComms(s CommStats) { t.res.Comms.Add(s) }

// Observe records an evaluation and reports whether the threshold has now
// been reached for the first time (the trainer should stop).
func (t *Tracker) Observe(now float64, accuracy float64) bool {
	if t.res.Converged {
		return false
	}
	t.res.Curve = append(t.res.Curve, Point{Time: now, Updates: t.res.Updates, Accuracy: accuracy})
	t.res.FinalAccuracy = accuracy
	if accuracy >= t.threshold {
		t.res.Converged = true
		t.res.RunTime = now
		return true
	}
	return false
}

// Converged reports whether the threshold has been reached.
func (t *Tracker) Converged() bool { return t.res.Converged }

// Cutoff marks the run as ended at now without convergence (horizon or
// update-budget exhausted). It is a no-op after convergence.
func (t *Tracker) Cutoff(now float64) {
	if !t.res.Converged {
		t.res.RunTime = now
	}
}

// Result returns the sealed result.
func (t *Tracker) Result() *Result {
	r := t.res // copy
	return &r
}

// Speedup returns base.RunTime / r.RunTime, the figure-11 metric.
func Speedup(base, r *Result) float64 {
	if r.RunTime == 0 {
		return 0
	}
	return base.RunTime / r.RunTime
}
