package core

import (
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/hetero"
	"partialreduce/internal/testutil"
)

// TestElasticPReduceScalesThroughSchedule runs the canonical staircase
// (5→8→4 here, the test-sized cousin of the paper-style 8→12→6 sweep):
// three parked ranks bootstrap in mid-run, then four members drain back
// out. Every membership change must complete, none may be recorded as a
// failure, and training keeps making progress throughout.
func TestElasticPReduceScalesThroughSchedule(t *testing.T) {
	cfg := testutil.Config(t, 11)
	cfg.Initial = 5
	cfg.Elastic = hetero.ScaleSchedule(5, 8, 4, 30, 15)
	cfg.Threshold = 0.999 // run to the update cap so every event fires
	cfg.MaxUpdates = 400

	c, err := cluster.New(cfg, "elastic")
	if err != nil {
		t.Fatal(err)
	}
	info, err := NewPReduce(PReduceConfig{P: 3}).RunDetailed(c)
	if err != nil {
		t.Fatal(err)
	}
	st := info.Stats
	if st.Joins != 3 || st.Drains != 4 || st.Decommissions != 4 {
		t.Fatalf("membership changes incomplete: joins=%d drains=%d decommissions=%d",
			st.Joins, st.Drains, st.Decommissions)
	}
	if st.Failures != 0 {
		t.Fatalf("graceful churn condemned %d workers", st.Failures)
	}
	if st.StaleEpochs != 0 {
		t.Fatalf("co-located sim workers signaled stale epochs %d times", st.StaleEpochs)
	}
	// 8 ranks all joined at some point; 4 drained back out (ranks 7..4).
	if got := c.AliveCount(); got != 4 {
		t.Fatalf("want 4 ranks training at the end, got %d", got)
	}
	if res := c.Track.Result(); res.Updates < 120 {
		t.Fatalf("training stalled across the churn: only %d updates", res.Updates)
	}
}

// TestElasticConfigValidation pins the cluster-level schedule checks.
func TestElasticConfigValidation(t *testing.T) {
	cfg := testutil.Config(t, 11)
	cfg.Initial = 1 // below the two-rank floor
	if _, err := cluster.New(cfg, "bad"); err == nil {
		t.Fatal("Initial=1 accepted")
	}
	cfg = testutil.Config(t, 11)
	cfg.Elastic = hetero.ElasticSchedule{{Worker: 3, AfterUpdates: 5, Kind: hetero.ElasticJoin}}
	if _, err := cluster.New(cfg, "bad"); err == nil {
		t.Fatal("join of a founding member accepted")
	}
}
