package core

import (
	"testing"

	"partialreduce/internal/baselines"
	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/hetero"
	"partialreduce/internal/testutil"
)

// runDetailed builds a cluster for cfg and runs P-Reduce, returning the
// cluster and the controller-side observables.
func runDetailed(t *testing.T, cfg cluster.Config, pcfg PReduceConfig) (*cluster.Cluster, *RunInfo) {
	t.Helper()
	p := NewPReduce(pcfg)
	c, err := cluster.New(cfg, p.Name())
	if err != nil {
		t.Fatal(err)
	}
	info, err := p.RunDetailed(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, info
}

// Two of eight workers fail-stop mid-run. P-Reduce excludes the corpses (§4)
// and still reaches the threshold; the corpses stay dead and are reported in
// the controller stats.
func TestPReduceSurvivesCrashes(t *testing.T) {
	cfg := testutil.Config(t, 11)
	cfg.Crashes = hetero.CrashSchedule{
		{Worker: 3, At: 0.5},
		{Worker: 6, At: 0.9},
	}
	c, info := runDetailed(t, cfg, PReduceConfig{P: 3})
	if !info.Result.Converged {
		t.Fatalf("P-Reduce with crashes did not converge: %+v", info.Result)
	}
	if info.Stats.Failures != 2 {
		t.Fatalf("failures = %d, want 2", info.Stats.Failures)
	}
	if !c.Dead[3] || !c.Dead[6] {
		t.Fatalf("dead flags = %v", c.Dead)
	}
	if c.AliveCount() != 6 {
		t.Fatalf("alive = %d, want 6", c.AliveCount())
	}
	// Every surviving replica kept learning past the corpses.
	for _, w := range c.Workers {
		if c.Dead[w.ID] {
			continue
		}
		if acc := c.EvalParams(w.Params()); acc < 0.8 {
			t.Fatalf("survivor %d stuck at accuracy %.3f", w.ID, acc)
		}
	}
}

// A crash that lands while its group is mid-collective aborts the group:
// the survivors re-signal and training continues.
func TestPReduceAbortsInflightGroup(t *testing.T) {
	// On the default network a group's in-flight window (~1 ms) is tiny
	// next to the 100 ms batch, so a random crash time almost never lands
	// mid-collective. Slow the fabric until ring time rivals compute time
	// and sweep a few crash times: at least one must catch a group.
	var aborts int64
	for _, at := range []float64{0.97, 1.31, 1.63} {
		cfg := testutil.Config(t, 12)
		cfg.Net.Bandwidth = 1e8 // ring all-reduce ~70 ms per group
		cfg.Crashes = hetero.CrashSchedule{{Worker: 2, At: at}}
		_, info := runDetailed(t, cfg, PReduceConfig{P: 3})
		if !info.Result.Converged {
			t.Fatalf("crash at %v: did not converge", at)
		}
		aborts += int64(info.Stats.GroupsAborted)
	}
	if aborts == 0 {
		t.Fatal("no group abort observed across crash times")
	}
}

// A crashed worker rejoins from its checkpoint and is re-admitted to
// grouping; the run converges and the rejoin is counted.
func TestPReduceCrashRejoin(t *testing.T) {
	cfg := testutil.Config(t, 13)
	cfg.Crashes = hetero.CrashSchedule{{Worker: 4, At: 0.5, RejoinAt: 1.0}}
	c, info := runDetailed(t, cfg, PReduceConfig{P: 3})
	if !info.Result.Converged {
		t.Fatalf("run with rejoin did not converge: %+v", info.Result)
	}
	if info.Stats.Failures != 1 || info.Stats.Rejoins != 1 {
		t.Fatalf("failures=%d rejoins=%d, want 1/1", info.Stats.Failures, info.Stats.Rejoins)
	}
	if c.Dead[4] {
		t.Fatal("worker 4 still marked dead after rejoin")
	}
	if acc := c.EvalParams(c.Workers[4].Params()); acc < 0.8 {
		t.Fatalf("rejoined worker stuck at accuracy %.3f", acc)
	}
}

// The same schedule against All-Reduce reproduces the paper's asymmetry:
// the first fail-stop halts the global collective and the run misses the
// threshold.
func TestAllReduceHaltsOnCrashSim(t *testing.T) {
	cfg := testutil.Config(t, 11)
	cfg.Crashes = hetero.CrashSchedule{{Worker: 3, At: 1.0}}
	c, err := cluster.New(cfg, "AR")
	if err != nil {
		t.Fatal(err)
	}
	res, err := baselines.NewAllReduce().Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("All-Reduce converged despite a fail-stop: %+v", res)
	}
	if res.RunTime > 2 {
		t.Fatalf("All-Reduce kept running past the crash: RunTime=%v", res.RunTime)
	}
}

// Overlapped P-Reduce does not implement crash recovery and must say so.
func TestOverlapRejectsCrashes(t *testing.T) {
	cfg := testutil.Config(t, 14)
	cfg.Crashes = hetero.CrashSchedule{{Worker: 1, At: 1.0}}
	c, err := cluster.New(cfg, "CON+OV P=3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPReduce(PReduceConfig{P: 3, Overlap: true}).Run(c); err == nil {
		t.Fatal("overlap accepted a crash schedule")
	}
}

// Same seed + same fault schedule => bit-identical metrics, for both
// weighting modes. This is the acceptance criterion that makes fault
// experiments debuggable: a failure replays exactly.
func TestSeedReplayDeterminismWithCrashes(t *testing.T) {
	sched := hetero.CrashSchedule{
		{Worker: 2, At: 0.5},
		{Worker: 5, At: 0.8, RejoinAt: 1.2},
	}
	for _, pcfg := range []PReduceConfig{
		{P: 3},
		{P: 3, Weighting: controller.Dynamic, Approx: controller.ClosestIteration},
	} {
		run := func() (float64, float64, int, controller.Stats) {
			cfg := testutil.Config(t, 21)
			cfg.Crashes = sched
			_, info := runDetailed(t, cfg, pcfg)
			r := info.Result
			return r.RunTime, r.FinalAccuracy, r.Updates, info.Stats
		}
		t1, a1, u1, s1 := run()
		t2, a2, u2, s2 := run()
		if t1 != t2 || a1 != a2 || u1 != u2 {
			t.Fatalf("%s: non-deterministic metrics: (%v,%v,%d) vs (%v,%v,%d)",
				NewPReduce(pcfg).Name(), t1, a1, u1, t2, a2, u2)
		}
		if s1 != s2 {
			t.Fatalf("%s: non-deterministic stats: %+v vs %+v", NewPReduce(pcfg).Name(), s1, s2)
		}
		if s1.Failures != 2 || s1.Rejoins != 1 {
			t.Fatalf("%s: schedule not applied: %+v", NewPReduce(pcfg).Name(), s1)
		}
	}
}

// Schedules violating basic sanity are rejected at cluster construction.
func TestCrashScheduleValidate(t *testing.T) {
	bad := []hetero.CrashSchedule{
		{{Worker: -1, At: 1}},
		{{Worker: 8, At: 1}},
		{{Worker: 1, At: -0.5}},
		{{Worker: 1, At: 1}, {Worker: 1, At: 2}}, // double crash
	}
	for i, s := range bad {
		cfg := testutil.Config(t, 15)
		cfg.Crashes = s
		if _, err := cluster.New(cfg, "CON P=3"); err == nil {
			t.Fatalf("bad schedule %d accepted: %v", i, s)
		}
	}
	// Killing every worker is rejected; killing all but one is not.
	all := make(hetero.CrashSchedule, 0, 8)
	for w := 0; w < 8; w++ {
		all = append(all, hetero.CrashEvent{Worker: w, At: float64(w + 1)})
	}
	cfg := testutil.Config(t, 15)
	cfg.Crashes = all
	if _, err := cluster.New(cfg, "CON P=3"); err == nil {
		t.Fatal("schedule killing every worker accepted")
	}
	cfg.Crashes = all[1:]
	if _, err := cluster.New(cfg, "CON P=3"); err != nil {
		t.Fatalf("schedule leaving one survivor rejected: %v", err)
	}
}

// RandomCrashes is a pure function of its arguments.
func TestRandomCrashesDeterministic(t *testing.T) {
	a := hetero.RandomCrashes(8, 0.5, 100, 42)
	b := hetero.RandomCrashes(8, 0.5, 100, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := a.Validate(8, 1); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for _, e := range a {
		if e.Worker == 0 {
			t.Fatal("worker 0 must be spared")
		}
		if e.At <= 0 || e.At >= 100 {
			t.Fatalf("crash time %v outside (0,100)", e.At)
		}
	}
	if c := hetero.RandomCrashes(8, 1, 100, 7); len(c) != 7 {
		t.Fatalf("rate 1 should crash all but worker 0, got %d events", len(c))
	}
	if c := hetero.RandomCrashes(8, 0, 100, 7); c != nil {
		t.Fatalf("rate 0 should be empty, got %v", c)
	}
}
