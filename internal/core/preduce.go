// Package core implements the paper's contribution: the P-Reduce training
// strategy (Algorithm 2). Each worker computes a mini-batch gradient,
// applies it locally, and sends a ready signal to the controller; once P
// signals queue up, the controller forms a temporary group whose members
// average their models with constant (1/P) or dynamic (staleness-aware EMA)
// weights and immediately continue. Groups overlap in time, so no worker
// ever waits at a global barrier — the property that buys heterogeneity
// tolerance.
package core

import (
	"fmt"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/engine"
	"partialreduce/internal/metrics"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
)

// PReduceConfig configures the strategy.
type PReduceConfig struct {
	P         int                  // group size
	Weighting controller.Weighting // Constant or Dynamic
	Alpha     float64              // EMA decay for Dynamic (0 -> controller default)
	Approx    controller.ApproxRule
	Window    int // sync-graph window (0 -> controller minimum)
	// DisableGroupFilter turns group-frozen avoidance off (ablation only).
	DisableGroupFilter bool
	// Overlap hides group communication behind the next batch's computation
	// (the DDP-style pipelining §4 leaves as future work): a worker starts
	// its next batch immediately after signaling ready; the group's model
	// average lands mid-batch, and the in-flight gradient — computed on the
	// pre-aggregation snapshot — is applied on top of the aggregated model.
	Overlap bool
	// ZoneAffinity makes the controller prefer same-zone groups when the
	// cluster has a geo-distributed topology (cheap intra-DC collectives);
	// group-frozen avoidance still bridges zones periodically.
	ZoneAffinity bool
	// Policy selects a group-formation policy (internal/policy): the zero
	// value keeps the controller's built-in behavior, "adaptive-p" adapts
	// the group size between the spec's bounds from observed worker
	// cadence, "straggler-bias" pulls high-staleness workers into groups
	// first. When adaptive bounds allow shrinking below P and Window is 0,
	// the sync-graph window is sized for the smallest reachable group size
	// so frozen avoidance stays sound at every P the policy may choose.
	Policy policy.Spec
	// CtrlRestartEvery, when positive, warm-restarts the controller
	// (Snapshot → Restore → re-attach tracer/instruments/policy) every
	// that many dispatched groups: the simulator's deterministic stand-in
	// for live controller failover. Replay tests use it to pin that
	// policy state survives a restore exactly.
	CtrlRestartEvery int
}

// PReduce is the partial-reduce training strategy.
type PReduce struct {
	cfg PReduceConfig
}

// NewPReduce returns the strategy for cfg.
func NewPReduce(cfg PReduceConfig) *PReduce { return &PReduce{cfg: cfg} }

// Name implements cluster.Strategy: "CON P=3", "DYN P=3", "CON+OV P=3",
// "ADP P=4" (adaptive-p policy), "SBIAS P=4" (straggler-bias policy)...
func (p *PReduce) Name() string {
	tag := "CON"
	if p.cfg.Weighting == controller.Dynamic {
		tag = "DYN"
	}
	switch p.cfg.Policy.Name {
	case policy.NameAdaptiveP:
		tag = "ADP"
	case policy.NameStragglerBias:
		tag = "SBIAS"
	}
	if p.cfg.Overlap {
		tag += "+OV"
	}
	return fmt.Sprintf("%s P=%d", tag, p.cfg.P)
}

// WithPolicy returns a copy of the strategy with the given formation
// policy spec — how the CLI's -policy/-p-min/-p-max/-policy-window flags
// retrofit a policy onto the named P-Reduce strategies.
func (p *PReduce) WithPolicy(spec policy.Spec) *PReduce {
	cfg := p.cfg
	cfg.Policy = spec
	return NewPReduce(cfg)
}

func (p *PReduce) controllerConfig(c *cluster.Cluster) controller.Config {
	cfg := controller.Config{
		N:                  c.Cfg.N,
		Initial:            c.Cfg.Initial,
		P:                  p.cfg.P,
		Window:             p.cfg.Window,
		Weighting:          p.cfg.Weighting,
		Alpha:              p.cfg.Alpha,
		Approx:             p.cfg.Approx,
		DisableGroupFilter: p.cfg.DisableGroupFilter,
	}
	if p.cfg.ZoneAffinity {
		cfg.ZoneAffinity = true
		zones := make([]int, c.Cfg.N)
		for w := range zones {
			zones[w] = c.Cfg.Topology.ZoneOf(w)
		}
		cfg.Zones = zones
	}
	if cfg.Window == 0 && p.cfg.Policy.Enabled() {
		// An adaptive policy may form groups as small as PMin; the
		// sync-graph window must be able to witness connectivity at that
		// size, so size it for the smallest reachable P, not the
		// configured one.
		if r := p.cfg.Policy.Resolve(p.cfg.P); r.Name == policy.NameAdaptiveP && r.PMin < p.cfg.P {
			cfg.Window = controller.MinWindow(c.Cfg.N, r.PMin)
		}
	}
	return cfg
}

// Run implements cluster.Strategy.
func (p *PReduce) Run(c *cluster.Cluster) (*metrics.Result, error) {
	res, _, err := p.RunWithStats(c)
	return res, err
}

// RunInfo carries a run's result plus the controller-side observables the
// analysis experiments need.
type RunInfo struct {
	Result *metrics.Result
	Stats  controller.Stats
	// MeanW is the empirical average synchronization matrix E[W_k] over the
	// run's groups (§3.2's Assumption 2 object); nil if no group formed.
	MeanW *tensor.Matrix
}

// RunWithStats runs training and also returns the controller's activity
// counters (groups formed, frozen-avoidance interventions), which the
// ablation experiments report.
func (p *PReduce) RunWithStats(c *cluster.Cluster) (*metrics.Result, controller.Stats, error) {
	info, err := p.RunDetailed(c)
	if err != nil {
		return nil, controller.Stats{}, err
	}
	return info.Result, info.Stats, nil
}

// RunDetailed runs training and returns the result together with controller
// statistics and the empirical E[W_k].
func (p *PReduce) RunDetailed(c *cluster.Cluster) (*RunInfo, error) {
	ctrl, err := controller.New(p.controllerConfig(c))
	if err != nil {
		return nil, err
	}
	// runWith returns the final controller: CtrlRestartEvery replaces the
	// incarnation mid-run, and the stats must come from the survivor.
	res, final, err := p.runWith(c, ctrl)
	if err != nil {
		return nil, err
	}
	return &RunInfo{Result: res, Stats: final.Stats(), MeanW: final.MeanW()}, nil
}

// runWith wires the controller (tracer, instruments, policy), builds the
// simulated Environment, and hands the run to the shared step engine
// (internal/engine): RunOverlappedSim for the pipelined variant, otherwise
// RunPReduceSim — the same training-step state machine the live runtime
// executes, driven here by the virtual clock.
func (p *PReduce) runWith(c *cluster.Cluster, ctrl *controller.Controller) (*metrics.Result, *controller.Controller, error) {
	// The controller shares the cluster's virtual-clock tracer (nil when
	// tracing is off), so its ready/group-formed/staleness decisions land on
	// the same timeline as the worker spans.
	ctrl.SetTracer(c.Tracer)
	ctrl.SetInstruments(c.Ins)
	var pol policy.Policy
	if p.cfg.Policy.Enabled() {
		var err error
		pol, err = policy.New(p.cfg.Policy, c.Cfg.N, p.cfg.P)
		if err != nil {
			return nil, ctrl, err
		}
		if err := ctrl.SetPolicy(pol); err != nil {
			return nil, ctrl, err
		}
	}
	env := engine.NewSimEnv(c)
	if p.cfg.Overlap {
		if len(c.Cfg.Crashes) > 0 {
			return nil, ctrl, fmt.Errorf("core: overlapped P-Reduce does not support crash schedules")
		}
		if p.cfg.CtrlRestartEvery > 0 {
			return nil, ctrl, fmt.Errorf("core: overlapped P-Reduce does not support controller restarts")
		}
		res, err := engine.RunOverlappedSim(env, ctrl)
		return res, ctrl, err
	}
	return engine.RunPReduceSim(env, ctrl, pol, p.cfg.CtrlRestartEvery)
}
