// Package core implements the paper's contribution: the P-Reduce training
// strategy (Algorithm 2). Each worker computes a mini-batch gradient,
// applies it locally, and sends a ready signal to the controller; once P
// signals queue up, the controller forms a temporary group whose members
// average their models with constant (1/P) or dynamic (staleness-aware EMA)
// weights and immediately continue. Groups overlap in time, so no worker
// ever waits at a global barrier — the property that buys heterogeneity
// tolerance.
package core

import (
	"fmt"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/metrics"
	"partialreduce/internal/policy"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
)

// PReduceConfig configures the strategy.
type PReduceConfig struct {
	P         int                  // group size
	Weighting controller.Weighting // Constant or Dynamic
	Alpha     float64              // EMA decay for Dynamic (0 -> controller default)
	Approx    controller.ApproxRule
	Window    int // sync-graph window (0 -> controller minimum)
	// DisableGroupFilter turns group-frozen avoidance off (ablation only).
	DisableGroupFilter bool
	// Overlap hides group communication behind the next batch's computation
	// (the DDP-style pipelining §4 leaves as future work): a worker starts
	// its next batch immediately after signaling ready; the group's model
	// average lands mid-batch, and the in-flight gradient — computed on the
	// pre-aggregation snapshot — is applied on top of the aggregated model.
	Overlap bool
	// ZoneAffinity makes the controller prefer same-zone groups when the
	// cluster has a geo-distributed topology (cheap intra-DC collectives);
	// group-frozen avoidance still bridges zones periodically.
	ZoneAffinity bool
	// Policy selects a group-formation policy (internal/policy): the zero
	// value keeps the controller's built-in behavior, "adaptive-p" adapts
	// the group size between the spec's bounds from observed worker
	// cadence, "straggler-bias" pulls high-staleness workers into groups
	// first. When adaptive bounds allow shrinking below P and Window is 0,
	// the sync-graph window is sized for the smallest reachable group size
	// so frozen avoidance stays sound at every P the policy may choose.
	Policy policy.Spec
	// CtrlRestartEvery, when positive, warm-restarts the controller
	// (Snapshot → Restore → re-attach tracer/instruments/policy) every
	// that many dispatched groups: the simulator's deterministic stand-in
	// for live controller failover. Replay tests use it to pin that
	// policy state survives a restore exactly.
	CtrlRestartEvery int
}

// PReduce is the partial-reduce training strategy.
type PReduce struct {
	cfg PReduceConfig
}

// NewPReduce returns the strategy for cfg.
func NewPReduce(cfg PReduceConfig) *PReduce { return &PReduce{cfg: cfg} }

// Name implements cluster.Strategy: "CON P=3", "DYN P=3", "CON+OV P=3",
// "ADP P=4" (adaptive-p policy), "SBIAS P=4" (straggler-bias policy)...
func (p *PReduce) Name() string {
	tag := "CON"
	if p.cfg.Weighting == controller.Dynamic {
		tag = "DYN"
	}
	switch p.cfg.Policy.Name {
	case policy.NameAdaptiveP:
		tag = "ADP"
	case policy.NameStragglerBias:
		tag = "SBIAS"
	}
	if p.cfg.Overlap {
		tag += "+OV"
	}
	return fmt.Sprintf("%s P=%d", tag, p.cfg.P)
}

// WithPolicy returns a copy of the strategy with the given formation
// policy spec — how the CLI's -policy/-p-min/-p-max/-policy-window flags
// retrofit a policy onto the named P-Reduce strategies.
func (p *PReduce) WithPolicy(spec policy.Spec) *PReduce {
	cfg := p.cfg
	cfg.Policy = spec
	return NewPReduce(cfg)
}

func (p *PReduce) controllerConfig(c *cluster.Cluster) controller.Config {
	cfg := controller.Config{
		N:                  c.Cfg.N,
		P:                  p.cfg.P,
		Window:             p.cfg.Window,
		Weighting:          p.cfg.Weighting,
		Alpha:              p.cfg.Alpha,
		Approx:             p.cfg.Approx,
		DisableGroupFilter: p.cfg.DisableGroupFilter,
	}
	if p.cfg.ZoneAffinity {
		cfg.ZoneAffinity = true
		zones := make([]int, c.Cfg.N)
		for w := range zones {
			zones[w] = c.Cfg.Topology.ZoneOf(w)
		}
		cfg.Zones = zones
	}
	if cfg.Window == 0 && p.cfg.Policy.Enabled() {
		// An adaptive policy may form groups as small as PMin; the
		// sync-graph window must be able to witness connectivity at that
		// size, so size it for the smallest reachable P, not the
		// configured one.
		if r := p.cfg.Policy.Resolve(p.cfg.P); r.Name == policy.NameAdaptiveP && r.PMin < p.cfg.P {
			cfg.Window = controller.MinWindow(c.Cfg.N, r.PMin)
		}
	}
	return cfg
}

// Run implements cluster.Strategy.
func (p *PReduce) Run(c *cluster.Cluster) (*metrics.Result, error) {
	res, _, err := p.RunWithStats(c)
	return res, err
}

// RunInfo carries a run's result plus the controller-side observables the
// analysis experiments need.
type RunInfo struct {
	Result *metrics.Result
	Stats  controller.Stats
	// MeanW is the empirical average synchronization matrix E[W_k] over the
	// run's groups (§3.2's Assumption 2 object); nil if no group formed.
	MeanW *tensor.Matrix
}

// RunWithStats runs training and also returns the controller's activity
// counters (groups formed, frozen-avoidance interventions), which the
// ablation experiments report.
func (p *PReduce) RunWithStats(c *cluster.Cluster) (*metrics.Result, controller.Stats, error) {
	info, err := p.RunDetailed(c)
	if err != nil {
		return nil, controller.Stats{}, err
	}
	return info.Result, info.Stats, nil
}

// RunDetailed runs training and returns the result together with controller
// statistics and the empirical E[W_k].
func (p *PReduce) RunDetailed(c *cluster.Cluster) (*RunInfo, error) {
	ctrl, err := controller.New(p.controllerConfig(c))
	if err != nil {
		return nil, err
	}
	// runWith returns the final controller: CtrlRestartEvery replaces the
	// incarnation mid-run, and the stats must come from the survivor.
	res, final, err := p.runWith(c, ctrl)
	if err != nil {
		return nil, err
	}
	return &RunInfo{Result: res, Stats: final.Stats(), MeanW: final.MeanW()}, nil
}

// runWith drives Algorithm 2 on the cluster's event engine. When the cell
// carries a fail-stop schedule (§4), crashes are handled the way the paper
// says the controller makes cheap: a dead worker's queued signal is purged,
// a group caught mid-collective is aborted and its survivors re-signal after
// one controller round trip, and checkpoint rejoins re-admit the worker with
// its crash-time model.
func (p *PReduce) runWith(c *cluster.Cluster, ctrl *controller.Controller) (*metrics.Result, *controller.Controller, error) {
	// The controller shares the cluster's virtual-clock tracer (nil when
	// tracing is off), so its ready/group-formed/staleness decisions land on
	// the same timeline as the worker spans.
	ctrl.SetTracer(c.Tracer)
	ctrl.SetInstruments(c.Ins)
	var pol policy.Policy
	if p.cfg.Policy.Enabled() {
		var err error
		pol, err = policy.New(p.cfg.Policy, c.Cfg.N, p.cfg.P)
		if err != nil {
			return nil, ctrl, err
		}
		if err := ctrl.SetPolicy(pol); err != nil {
			return nil, ctrl, err
		}
	}
	if p.cfg.Overlap {
		if len(c.Cfg.Crashes) > 0 {
			return nil, ctrl, fmt.Errorf("core: overlapped P-Reduce does not support crash schedules")
		}
		if p.cfg.CtrlRestartEvery > 0 {
			return nil, ctrl, fmt.Errorf("core: overlapped P-Reduce does not support controller restarts")
		}
		res, err := p.runOverlapped(c, ctrl)
		return res, ctrl, err
	}
	agg := tensor.NewVector(len(c.Init))
	var readyErr error

	// inflight tracks dispatched groups until they complete, so a crash can
	// abort exactly the group the corpse was syncing with. aborted seqs make
	// the already-scheduled completion event a no-op.
	inflight := make(map[uint64]controller.Group)
	aborted := make(map[uint64]bool)
	var seq uint64

	// readyAt[w] is the virtual time of w's outstanding ready signal, the
	// start of its KSignalWait span (closed when its group dispatches).
	readyAt := make([]float64, c.Cfg.N)

	var startCompute func(w *cluster.Worker)
	var dispatch func(groups []controller.Group)

	onGroupDone := func(id uint64, g controller.Group) {
		if aborted[id] {
			delete(aborted, id)
			return
		}
		delete(inflight, id)
		// Weighted model average (Alg. 2 line 7; §3.3 for dynamic weights).
		agg.Zero()
		for i, wid := range g.Members {
			agg.Axpy(g.Weights[i], c.Workers[wid].Params())
		}
		if g.InitWeight > 0 {
			agg.Axpy(g.InitWeight, c.Init)
		}
		for _, wid := range g.Members {
			w := c.Workers[wid]
			w.Params().CopyFrom(agg)
			w.Iter = g.Iter // fast-forward (§3.3.3)
		}
		c.RecordUpdate()
		for _, wid := range g.Members {
			startCompute(c.Workers[wid])
		}
	}

	var signalReady func(w *cluster.Worker)

	// attempt models collective attempt k of group id starting now. An
	// attempt whose members straddle an active partition blocks until the
	// collective timeout fires, then retries after a deterministic backoff —
	// the live runtime's RetryPolicy in virtual time. When the budget is
	// exhausted the controller aborts the op with nobody condemned and every
	// member re-signals after a controller round trip: the same stuck-op
	// path the live service takes for severed links.
	var attempt func(id uint64, g controller.Group, k int)
	attempt = func(id uint64, g controller.Group, k int) {
		if aborted[id] {
			// A crash abort dissolved the group while this attempt was
			// pending; the members have already re-signaled.
			delete(aborted, id)
			return
		}
		// Charged per attempt: an attempt that times out still moved (some
		// of) its bytes, exactly as the live runtime counts aborted
		// attempts' partial traffic.
		ring := c.RingTime(g.Members)
		c.ChargeRing(len(g.Members), ring)
		if !c.PartitionSplits(g.Members, c.Eng.Now()) {
			// One controller round trip plus a ring all-reduce sized to the
			// group: P-Reduce preserves collective bandwidth utilization
			// while shrinking the synchronization scope (§3.1.1).
			if c.Tracer != nil {
				// The modeled collective: a group-wait span covering the RTT
				// plus the ring, with the two symmetric ring phases ((g−1)
				// steps each) as sub-spans — the sim counterpart of the live
				// runtime's measured KReduceScatter/KAllGather.
				now := c.Eng.Now()
				rtt := c.Cfg.Net.CtrlRTT
				gs := int64(len(g.Members))
				for _, m := range g.Members {
					c.Tracer.SpanAt(trace.KGroupWait, int32(m), int32(g.Iter), now, rtt+ring, int64(id), gs)
					c.Tracer.SpanAt(trace.KReduceScatter, int32(m), int32(g.Iter), now+rtt, ring/2, int64(id), 0)
					c.Tracer.SpanAt(trace.KAllGather, int32(m), int32(g.Iter), now+rtt+ring/2, ring/2, int64(id), 0)
				}
			}
			c.Eng.After(c.Cfg.Net.CtrlRTT+ring, func() { onGroupDone(id, g) })
			return
		}
		rm := c.Cfg.Retry
		timeout := rm.TimeoutOr(c.Cfg.Profile.BatchCompute + ring)
		c.Track.AddComms(metrics.CommStats{Timeouts: 1})
		c.Tracer.InstantAt(trace.KTimeout, trace.ControllerTrack, int32(g.Iter), c.Eng.Now()+timeout, int64(id), int64(k))
		if k < rm.Attempts() {
			c.Track.AddComms(metrics.CommStats{Retries: 1})
			c.Tracer.InstantAt(trace.KRetry, trace.ControllerTrack, int32(g.Iter), c.Eng.Now()+timeout+rm.Backoff(k), int64(id), int64(k+1))
			c.Eng.After(timeout+rm.Backoff(k), func() { attempt(id, g, k+1) })
			return
		}
		// Budget exhausted: the members sit through the final timeout, then
		// the group is aborted (dead = -1: nobody is condemned) and the
		// survivors re-signal for the same iteration.
		c.Track.AddComms(metrics.CommStats{Aborts: 1})
		c.Tracer.InstantAt(trace.KAbort, trace.ControllerTrack, int32(g.Iter), c.Eng.Now()+timeout, int64(id), 0)
		c.Eng.After(timeout, func() {
			if aborted[id] {
				delete(aborted, id)
				return
			}
			delete(inflight, id)
			dispatch(ctrl.AbortGroup(g, -1))
			for _, m := range g.Members {
				if c.Dead[m] {
					continue
				}
				w := c.Workers[m]
				c.Eng.After(c.Cfg.Net.CtrlRTT, func() {
					if !c.Dead[w.ID] {
						signalReady(w)
					}
				})
			}
		})
	}

	// restart is the simulated warm-failover drill: serialize the
	// controller, destroy it, restore a replacement from the snapshot, and
	// re-attach the wiring (tracer, instruments, policy — whose state
	// rides the snapshot and is restored into the same policy object).
	dispatched := 0
	restart := func() {
		next, err := controller.Restore(ctrl.Snapshot())
		if err == nil {
			err = next.SetPolicy(pol) // no-op when pol is nil
		}
		if err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		next.SetTracer(c.Tracer)
		next.SetInstruments(c.Ins)
		ctrl = next
		c.Tracer.Instant(trace.KCtrlRestore, trace.ControllerTrack, -1, 0, 0)
	}

	dispatch = func(groups []controller.Group) {
		for _, g := range groups {
			g := g
			seq++
			id := seq
			inflight[id] = g
			if c.Tracer != nil {
				// Close each member's signal-wait span: it waited from its
				// ready signal until this dispatch.
				now := c.Eng.Now()
				for i, m := range g.Members {
					c.Tracer.SpanAt(trace.KSignalWait, int32(m), int32(g.Iters[i]), readyAt[m], now-readyAt[m], 0, 0)
				}
			}
			attempt(id, g, 1)
			dispatched++
			if p.cfg.CtrlRestartEvery > 0 && dispatched%p.cfg.CtrlRestartEvery == 0 {
				restart()
			}
		}
	}

	signalReady = func(w *cluster.Worker) {
		readyAt[w.ID] = c.Eng.Now()
		groups, err := ctrl.Ready(controller.Signal{Worker: w.ID, Iter: w.Iter, Now: c.Eng.Now()})
		if err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		dispatch(groups)
	}

	onComputeDone := func(w *cluster.Worker) {
		if c.Dead[w.ID] {
			return // the corpse's in-flight batch is lost with it
		}
		grad, _ := c.Gradient(w)
		w.Opt.Update(w.Params(), grad, 1) // local update (Alg. 2 line 4)
		w.Iter++
		signalReady(w)
	}

	startCompute = func(w *cluster.Worker) {
		if c.Dead[w.ID] {
			return
		}
		c.Snapshot(w)
		dt := c.ComputeTime(w)
		c.Tracer.SpanAt(trace.KCompute, int32(w.ID), int32(w.Iter), c.Eng.Now(), dt, 0, 0)
		c.Eng.After(dt, func() { onComputeDone(w) })
	}

	onCrash := func(dead int) {
		// If the corpse was mid-collective, abort that group: the survivors
		// roll back (in the simulator the average simply never lands) and
		// re-signal ready after one controller round trip.
		for id, g := range inflight {
			hit := false
			for _, m := range g.Members {
				if m == dead {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			delete(inflight, id)
			aborted[id] = true
			dispatch(ctrl.AbortGroup(g, dead))
			for _, m := range g.Members {
				if m == dead || c.Dead[m] {
					continue
				}
				w := c.Workers[m]
				c.Eng.After(c.Cfg.Net.CtrlRTT, func() {
					if !c.Dead[w.ID] {
						signalReady(w)
					}
				})
			}
			return
		}
		// Otherwise the worker was computing (its batch is discarded at
		// onComputeDone) or queued (Fail purges the signal). Shrinking the
		// surviving count can let the existing queue fill a group.
		dispatch(ctrl.Fail(dead))
	}

	onRejoin := func(w int) {
		// Checkpoint restart: the replica resumes from its crash-time
		// parameters and iteration count (the state the checkpoint froze).
		if err := ctrl.Rejoin(w); err != nil {
			readyErr = err
			c.Eng.Stop()
			return
		}
		startCompute(c.Workers[w])
	}

	c.ScheduleCrashes(onCrash, onRejoin)
	for _, w := range c.Workers {
		w := w
		c.Eng.At(0, func() { startCompute(w) })
	}
	c.Eng.Run()
	if readyErr != nil {
		return nil, ctrl, readyErr
	}
	return c.Finish(), ctrl, nil
}
