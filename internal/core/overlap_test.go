package core

import (
	"testing"

	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/testutil"
)

func TestOverlapName(t *testing.T) {
	if got := NewPReduce(PReduceConfig{P: 3, Overlap: true}).Name(); got != "CON+OV P=3" {
		t.Fatalf("name %q", got)
	}
}

func TestOverlapConverges(t *testing.T) {
	cfg := testutil.Config(t, 21)
	c := runPReduce(t, cfg, PReduceConfig{P: 3, Overlap: true})
	res := c.Track.Result()
	if !res.Converged {
		t.Fatalf("overlapped P-Reduce did not converge: %+v", res)
	}
}

// Overlap must hide communication: on a communication-heavy profile the
// per-update time drops measurably versus the blocking variant.
func TestOverlapHidesCommunication(t *testing.T) {
	commHeavy := model.Profile{Name: "comm-heavy", WireParams: 140_000_000, BatchCompute: 0.15, BytesPerParam: 4}
	run := func(overlap bool) float64 {
		cfg := testutil.Config(t, 22)
		cfg.Profile = commHeavy
		cfg.Hetero = hetero.NewHomogeneous(cfg.N, commHeavy.BatchCompute, 0.15, 22)
		cfg.Threshold = 0.999 // run to the cap: compare pace, not convergence
		cfg.MaxUpdates = 600
		c := runPReduce(t, cfg, PReduceConfig{P: 3, Overlap: overlap})
		return c.Track.Result().PerUpdate()
	}
	blocking := run(false)
	overlapped := run(true)
	if overlapped >= blocking*0.95 {
		t.Fatalf("overlap did not hide communication: %.4fs vs %.4fs", overlapped, blocking)
	}
}

// The overlapped pipeline must still propagate updates to every replica.
func TestOverlapReplicasHealthy(t *testing.T) {
	cfg := testutil.Config(t, 23)
	cfg.Hetero = hetero.NewGPUSharing(cfg.N, 3, testutil.Profile.BatchCompute, 0.15, 23)
	c := runPReduce(t, cfg, PReduceConfig{P: 3, Overlap: true})
	if !c.Track.Result().Converged {
		t.Fatalf("did not converge: %+v", c.Track.Result())
	}
	for _, w := range c.Workers {
		if acc := c.EvalParams(w.Params()); acc < 0.75 {
			t.Fatalf("worker %d replica degraded to %.3f under overlap", w.ID, acc)
		}
	}
}

func TestOverlapDeterminism(t *testing.T) {
	run := func() (float64, int) {
		cfg := testutil.Config(t, 24)
		c := runPReduce(t, cfg, PReduceConfig{P: 3, Overlap: true})
		r := c.Track.Result()
		return r.RunTime, r.Updates
	}
	t1, u1 := run()
	t2, u2 := run()
	if t1 != t2 || u1 != u2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, u1, t2, u2)
	}
}
