package core

import (
	"testing"

	"partialreduce/internal/cluster"
	"partialreduce/internal/controller"
	"partialreduce/internal/hetero"
	"partialreduce/internal/model"
	"partialreduce/internal/testutil"
)

func runPReduce(t *testing.T, cfg cluster.Config, pcfg PReduceConfig) *cluster.Cluster {
	t.Helper()
	return testutil.Run(t, cfg, NewPReduce(pcfg))
}

func TestNames(t *testing.T) {
	if got := NewPReduce(PReduceConfig{P: 3}).Name(); got != "CON P=3" {
		t.Fatalf("name %q", got)
	}
	if got := NewPReduce(PReduceConfig{P: 5, Weighting: controller.Dynamic}).Name(); got != "DYN P=5" {
		t.Fatalf("name %q", got)
	}
}

func TestConstantPReduceConverges(t *testing.T) {
	cfg := testutil.Config(t, 1)
	c := runPReduce(t, cfg, PReduceConfig{P: 3})
	res := c.Track.Result()
	if !res.Converged {
		t.Fatalf("constant P-Reduce did not converge: %+v", res)
	}
	if res.Updates == 0 || res.RunTime <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}

func TestDynamicPReduceConverges(t *testing.T) {
	cfg := testutil.Config(t, 2)
	cfg.Hetero = hetero.NewGPUSharing(cfg.N, 3, testutil.Profile.BatchCompute, 0.05, 2)
	c := runPReduce(t, cfg, PReduceConfig{P: 3, Weighting: controller.Dynamic})
	if !c.Track.Result().Converged {
		t.Fatalf("dynamic P-Reduce did not converge: %+v", c.Track.Result())
	}
}

func TestInvalidPRejected(t *testing.T) {
	cfg := testutil.Config(t, 3)
	c, err := cluster.New(cfg, "bad")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPReduce(PReduceConfig{P: 1}).Run(c); err == nil {
		t.Fatal("P=1 accepted")
	}
	if _, err := NewPReduce(PReduceConfig{P: 99}).Run(c); err == nil {
		t.Fatal("P>N accepted")
	}
}

// Hardware efficiency: P-Reduce's per-update time must grow with P (larger
// groups barrier more workers and move more data), reproducing Fig. 8's
// left panel.
func TestPerUpdateGrowsWithP(t *testing.T) {
	var prev float64
	for _, p := range []int{2, 4, 8} {
		cfg := testutil.Config(t, 4)
		cfg.Threshold = 0.999 // run to the update cap for stable timing
		cfg.MaxUpdates = 800
		c := runPReduce(t, cfg, PReduceConfig{P: p})
		pu := c.Track.Result().PerUpdate()
		if pu <= prev {
			t.Fatalf("per-update did not grow: P=%d gives %v (prev %v)", p, pu, prev)
		}
		prev = pu
	}
}

// Heterogeneity tolerance: under GPU sharing, P-Reduce's total run time must
// beat All-Reduce-style full barriers. This is checked against the AR
// baseline in the baselines package; here we check P-Reduce degrades
// gracefully: HL=3 run time is within a small factor of HL=1, not the ~3x
// a full barrier would suffer.
func TestHeterogeneityTolerance(t *testing.T) {
	runtimeAt := func(hl int) float64 {
		cfg := testutil.Config(t, 5)
		cfg.Hetero = hetero.NewGPUSharing(cfg.N, hl, testutil.Profile.BatchCompute, 0.05, 5)
		c := runPReduce(t, cfg, PReduceConfig{P: 3})
		res := c.Track.Result()
		if !res.Converged {
			t.Fatalf("HL=%d did not converge", hl)
		}
		return res.RunTime
	}
	homo := runtimeAt(1)
	het := runtimeAt(3)
	if het > 2.2*homo {
		t.Fatalf("P-Reduce degraded %vx under HL=3 (homo %v, het %v)", het/homo, homo, het)
	}
}

func TestRunWithStatsReportsGroups(t *testing.T) {
	cfg := testutil.Config(t, 6)
	c, err := cluster.New(cfg, "CON P=4")
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := NewPReduce(PReduceConfig{P: 4}).RunWithStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GroupsFormed != res.Updates {
		t.Fatalf("groups formed %d != updates %d", stats.GroupsFormed, res.Updates)
	}
}

// Determinism: identical seeds give identical trajectories.
func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int) {
		cfg := testutil.Config(t, 7)
		c := runPReduce(t, cfg, PReduceConfig{P: 3})
		r := c.Track.Result()
		return r.RunTime, r.Updates
	}
	t1, u1 := run()
	t2, u2 := run()
	if t1 != t2 || u1 != u2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, u1, t2, u2)
	}
}

// All replicas agree after convergence within the drift a few outstanding
// groups can explain: the partial reduces propagate every worker's updates.
func TestModelsCollaborativelyConverge(t *testing.T) {
	cfg := testutil.Config(t, 8)
	c := runPReduce(t, cfg, PReduceConfig{P: 2})
	// Every worker individually classifies well — no isolated stale replica.
	for _, w := range c.Workers {
		if acc := c.EvalParams(w.Params()); acc < 0.8 {
			t.Fatalf("worker %d stuck at accuracy %.3f", w.ID, acc)
		}
	}
}

// P-Reduce over the convolutional proxy: the strategy is model-agnostic as
// long as parameters are flat.
func TestPReduceWithConvModel(t *testing.T) {
	cfg := testutil.Config(t, 25)
	cfg.Spec = model.ConvSpec{Inputs: 16, Channels: 12, Kernel: 5, Classes: 4}
	// The GAP bottleneck caps the conv proxy's accuracy on this mixture
	// around 0.76; the test checks trainability, not capacity.
	cfg.Threshold = 0.70
	c, err := cluster.New(cfg, "CON P=3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPReduce(PReduceConfig{P: 3}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("conv-model P-Reduce did not converge: %+v", res)
	}
}
