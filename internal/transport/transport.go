// Package transport provides the live message-passing layer of the runtime:
// point-to-point float64-vector messages between ranks, over either an
// in-process channel mesh (one address space, as in the tests and examples)
// or TCP sockets (stdlib net, length-prefixed binary frames), mirroring the
// prototype's Gloo/TCP split (§4). Collectives in internal/collective are
// built on this interface.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Transport is a rank's endpoint in a fixed-size communication world.
// Sends are asynchronous (buffered); Recv blocks until a message with the
// requested source and tag arrives. A (from, tag) pair identifies at most
// one outstanding message at a time, which the collectives guarantee by
// deriving tags from (operation id, phase, step).
type Transport interface {
	// Rank returns this endpoint's id in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers payload to rank to with the given tag. The payload is
	// copied before Send returns; the caller may reuse it.
	Send(to int, tag uint64, payload []float64) error
	// Recv blocks until a message from rank from with the given tag arrives
	// and returns its payload.
	Recv(from int, tag uint64) ([]float64, error)
	// Close releases the endpoint. Pending Recvs fail.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

type message struct {
	from    int
	tag     uint64
	payload []float64
}

type key struct {
	from int
	tag  uint64
}

// mailbox matches incoming messages to waiting receivers.
type mailbox struct {
	mu      sync.Mutex
	pending map[key][]float64
	waiters map[key]chan []float64
	closed  bool
}

func newMailbox() *mailbox {
	return &mailbox{
		pending: make(map[key][]float64),
		waiters: make(map[key]chan []float64),
	}
}

func (m *mailbox) deliver(msg message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := key{from: msg.from, tag: msg.tag}
	if ch, ok := m.waiters[k]; ok {
		delete(m.waiters, k)
		ch <- msg.payload
		return nil
	}
	if _, dup := m.pending[k]; dup {
		return fmt.Errorf("transport: duplicate message from %d tag %d", msg.from, msg.tag)
	}
	m.pending[k] = msg.payload
	return nil
}

func (m *mailbox) receive(from int, tag uint64) ([]float64, error) {
	k := key{from: from, tag: tag}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := m.pending[k]; ok {
		delete(m.pending, k)
		m.mu.Unlock()
		return p, nil
	}
	ch := make(chan []float64, 1)
	m.waiters[k] = ch
	m.mu.Unlock()

	p, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	return p, nil
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for k, ch := range m.waiters {
		close(ch)
		delete(m.waiters, k)
	}
}

// Mem is an in-process transport world: NewMem returns one endpoint per
// rank, all sharing one delivery fabric. Endpoints are safe for concurrent
// use by multiple goroutines.
type Mem struct {
	rank  int
	world []*mailbox
}

// NewMem creates an n-rank in-process world.
func NewMem(n int) []*Mem {
	if n < 1 {
		panic(fmt.Sprintf("transport: world size %d", n))
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	eps := make([]*Mem, n)
	for i := range eps {
		eps[i] = &Mem{rank: i, world: boxes}
	}
	return eps
}

// Rank implements Transport.
func (m *Mem) Rank() int { return m.rank }

// Size implements Transport.
func (m *Mem) Size() int { return len(m.world) }

// Send implements Transport.
func (m *Mem) Send(to int, tag uint64, payload []float64) error {
	if to < 0 || to >= len(m.world) {
		return fmt.Errorf("transport: rank %d out of range", to)
	}
	cp := make([]float64, len(payload))
	copy(cp, payload)
	return m.world[to].deliver(message{from: m.rank, tag: tag, payload: cp})
}

// Recv implements Transport.
func (m *Mem) Recv(from int, tag uint64) ([]float64, error) {
	if from < 0 || from >= len(m.world) {
		return nil, fmt.Errorf("transport: rank %d out of range", from)
	}
	return m.world[m.rank].receive(from, tag)
}

// Close implements Transport. It closes only this endpoint's mailbox.
func (m *Mem) Close() error {
	m.world[m.rank].close()
	return nil
}
